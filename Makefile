# Verification tiers. `make verify` is the full pre-merge gate; tier-1 is
# `make build test` (the seed gate from ROADMAP.md), and `make race` is the
# concurrency tier covering the grid executor, Runner.Traces, and the
# trace generators. `make stress` is the adversarial concurrency tier:
# randomized broadcast worker counts, store readers racing writers, and
# the sweep service's 100-goroutine single-flight hammer, all under -race.
# `make grid-golden` + `make smoke` pin the grid pipeline: bit-identical
# figures vs the per-cell oracle, and a live nlstables -only run against
# the results store. `make attribution-golden` pins the probe's cause mix
# on a fixed seed (§4.1's eviction-loss claim). `make smoke-serve` is the
# sweep service's end-to-end gate: cold POST simulates, warm POST is
# served from the store byte-identical. `make h2p-golden` pins the
# direction-seam acceptance criterion: the equal-cost TAGE-lite arm
# recovers a nonzero share of the dir-wrong bucket vs the paper gshare.
# `make prefetch-golden` pins the decoupled-frontend prefetch figure:
# FDIP beats next-line on coverage and shrinks the cold-miss bucket.
# `make trace-golden` pins the sim-time trace exporter: byte-identical
# Chrome trace-event JSON on a fixed seed, zero counter perturbation.
# `make corpus-smoke` pins the disk-backed trace corpus: corpus-replayed
# sweep rows byte-identical to generate-fresh, with stale or corrupt
# corpus files degrading to regeneration.

GO ?= go

.PHONY: build vet test race stress fuzz bench bench-check verify figures \
	grid-golden smoke smoke-serve corpus-smoke attribution-golden \
	h2p-golden prefetch-golden trace-golden profile

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Adversarial concurrency tier: the randomized broadcast fan-out sweep,
# store readers racing a writer (atomic-rename visibility + corrupt-cell
# degradation), and the sweep service single-flight hammer (100 identical
# concurrent jobs -> exactly one simulation, byte-identical bodies).
stress:
	$(GO) test -race -run 'Stress|StoreParallelReadersRaceWriter|StoreCorruptCellUnderContention' \
		./internal/fetch ./internal/experiments ./internal/serve

# Short fuzz passes over the trace parser, the chunked iterator, the
# corpus container reader, and the sweep service's untrusted job decoder.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=20s ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzChunked -fuzztime=20s ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzCorpusRead -fuzztime=20s ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzJobDecode -fuzztime=20s ./internal/serve

# Sweep scheduler comparison (see EXPERIMENTS.md "Sweep throughput"). The
# text stream passes through cmd/benchjson, which also records the results
# machine-readably in BENCH_sweep.json (schema nls-bench/v1, committed as
# the throughput baseline; see EXPERIMENTS.md "Benchmark JSON"). The JSON
# is deterministic; the run's timestamp goes to a manifest under
# results/runs/ (gitignored).
bench:
	$(GO) test -run=^$$ -bench='BenchmarkSweep(Broadcast|PerCell|CorpusReplay)$$' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_sweep.json -manifest results/runs

# Re-run the sweep benchmarks and gate three ways, without touching
# BENCH_sweep.json: -compare prints per-benchmark deltas and fails on a
# >10% Mstep/s regression vs the committed file; -require-ratio enforces
# the >=2x broadcast-over-per-cell scheduler claim *within this run*
# (drift-immune: the shared host's effective speed swings tens of percent
# between days, so only same-run ratios compare cleanly — see
# EXPERIMENTS.md "Sweep throughput"); -require-improvement enforces a
# +20% absolute Mstep/s floor over the frozen pre-corpus, pre-pipeline
# BENCH_baseline.json — the same-epoch code gain measured ~+26%
# interleaved old-vs-new, so the floor holds across host epochs while the
# naive cross-epoch "139 vs 93.94" comparison would not. SweepCorpusReplay
# is recorded by `make bench` but deliberately not re-run here: a cold
# process's Mstep/s moves >2x with GC and page-cache state, so gating it
# at 10% would only add flakes (benchjson reports it as missing, which
# never fails the comparison).
bench-check:
	$(GO) test -run=^$$ -bench='BenchmarkSweep(Broadcast|PerCell)$$' -benchmem . \
		| $(GO) run ./cmd/benchjson -o '' -compare BENCH_sweep.json \
			-require-ratio 'SweepBroadcast/SweepPerCell Mstep/s 2.0' \
			-require-improvement 'Mstep/s 20' -improve-over BENCH_baseline.json

# Regenerate every table and figure (EXPERIMENTS.md numbers). Warm runs
# load unchanged cells from results/cells; -force re-simulates.
figures:
	$(GO) run ./cmd/nlstables -n 2000000 -progress -json

# The grid pipeline's equivalence gate: executor output bit-identical to
# the per-cell oracle, across cold, store-less, and warm runs.
grid-golden:
	$(GO) test -run 'TestGridGolden' ./internal/experiments

# The probe pipeline's golden gate: attribution totals restate the engine
# counters exactly, and the eviction-loss cause appears only for the
# line-coupled NLS organization (pinned mixes on a fixed workload seed).
attribution-golden:
	$(GO) test -run 'TestAttributionGolden' ./internal/obs

# The direction seam's golden gate: exact dir-wrong totals for the
# equal-cost gshare vs TAGE-lite pair on a fixed workload seed, plus the
# figure-level recovery check through the executor.
h2p-golden:
	$(GO) test -run 'TestH2PGolden' ./internal/obs
	$(GO) test -run 'TestH2PFigure' ./internal/experiments

# The prefetch figure's golden gate (DESIGN.md §14): FDIP produces useful
# fills and shrinks the cold-miss bucket vs the no-prefetch arm, coverage
# orders FDIP > next-line, and prefetching leaves the prediction
# accounting bit-identical.
prefetch-golden:
	$(GO) test -run 'TestPrefetchGolden' ./internal/experiments

# The trace exporter's golden gate (DESIGN.md §15): the Chrome trace-event
# export of a fixed-seed li run is byte-identical to the committed golden,
# and attaching the recorder leaves every engine counter bit-identical.
trace-golden:
	$(GO) test -run 'TestTraceGolden|TestSimRecorderCountersBitIdentical' ./internal/telemetry

# End-to-end smoke: one figure through the real CLI and store (small n).
smoke:
	$(GO) run ./cmd/nlstables -only fig5 -n 100000 >/dev/null
	$(GO) run ./cmd/nlstables -only fig5 -n 100000 >/dev/null

# Sweep service smoke: start nlsserve on a loopback port with a throwaway
# store, POST a one-cell job cold and warm, assert 200 + store hit +
# byte-identical bodies.
smoke-serve:
	$(GO) run ./cmd/nlsserve -smoke

# The trace-corpus round-trip gate (DESIGN.md §16): one run writes the
# content-keyed corpus, a fresh runner replays it from disk, and the sweep
# rows must be byte-identical to generate-fresh; stale (wrong insns) and
# corrupt corpus files must degrade to regeneration, never to wrong rows.
corpus-smoke:
	$(GO) test -run 'TestCorpusRoundTripSmoke|TestCorpusStaleFileRebuilt|TestCorpusCorruptFileFallsBack' \
		./internal/experiments

# pprof smoke run: a small figure sweep under both profilers, then the
# hottest frames. Profiles land in cpu.prof / mem.prof (gitignored).
profile:
	$(GO) run ./cmd/nlstables -only fig5 -n 300000 -store "" -manifest "" \
		-cpuprofile cpu.prof -memprofile mem.prof >/dev/null
	$(GO) tool pprof -top -nodecount=8 cpu.prof

verify: build vet test race stress grid-golden corpus-smoke attribution-golden h2p-golden prefetch-golden trace-golden smoke smoke-serve
