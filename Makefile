# Verification tiers. `make verify` is the full pre-merge gate; tier-1 is
# `make build test` (the seed gate from ROADMAP.md), and `make race` is the
# concurrency tier covering the grid executor, Runner.Traces, and the
# trace generators. `make grid-golden` + `make smoke` pin the grid
# pipeline: bit-identical figures vs the per-cell oracle, and a live
# nlstables -only run against the results store.

GO ?= go

.PHONY: build vet test race fuzz bench verify figures grid-golden smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the trace parser and the chunked iterator.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=20s ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzChunked -fuzztime=20s ./internal/trace

# Sweep scheduler comparison (see EXPERIMENTS.md "Sweep throughput").
bench:
	$(GO) test -run=^$$ -bench='BenchmarkSweep(Broadcast|PerCell)$$' -benchmem .

# Regenerate every table and figure (EXPERIMENTS.md numbers). Warm runs
# load unchanged cells from results/cells; -force re-simulates.
figures:
	$(GO) run ./cmd/nlstables -n 2000000 -progress -json

# The grid pipeline's equivalence gate: executor output bit-identical to
# the per-cell oracle, across cold, store-less, and warm runs.
grid-golden:
	$(GO) test -run 'TestGridGolden' ./internal/experiments

# End-to-end smoke: one figure through the real CLI and store (small n).
smoke:
	$(GO) run ./cmd/nlstables -only fig5 -n 100000 >/dev/null
	$(GO) run ./cmd/nlstables -only fig5 -n 100000 >/dev/null

verify: build vet test race grid-golden smoke
