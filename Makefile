# Verification tiers. `make verify` is the full pre-merge gate; tier-1 is
# `make build test` (the seed gate from ROADMAP.md), and `make race` is the
# concurrency tier covering the broadcast sweep scheduler, Runner.Traces,
# and the trace generators.

GO ?= go

.PHONY: build vet test race fuzz bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the trace parser and the chunked iterator.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=20s ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzChunked -fuzztime=20s ./internal/trace

# Sweep scheduler comparison (see EXPERIMENTS.md "Sweep throughput").
bench:
	$(GO) test -run=^$$ -bench='BenchmarkSweep(Broadcast|PerCell)$$' -benchmem .

verify: build vet test race
