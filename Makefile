# Verification tiers. `make verify` is the full pre-merge gate; tier-1 is
# `make build test` (the seed gate from ROADMAP.md), and `make race` is the
# concurrency tier covering the grid executor, Runner.Traces, and the
# trace generators. `make grid-golden` + `make smoke` pin the grid
# pipeline: bit-identical figures vs the per-cell oracle, and a live
# nlstables -only run against the results store. `make attribution-golden`
# pins the probe's cause mix on a fixed seed (§4.1's eviction-loss claim).

GO ?= go

.PHONY: build vet test race fuzz bench bench-check verify figures \
	grid-golden smoke attribution-golden profile

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the trace parser and the chunked iterator.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=20s ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzChunked -fuzztime=20s ./internal/trace

# Sweep scheduler comparison (see EXPERIMENTS.md "Sweep throughput"). The
# text stream passes through cmd/benchjson, which also records the results
# machine-readably in BENCH_sweep.json (schema nls-bench/v1, committed as
# the throughput baseline; see EXPERIMENTS.md "Benchmark JSON"). The JSON
# is deterministic; the run's timestamp goes to a manifest under
# results/runs/ (gitignored).
bench:
	$(GO) test -run=^$$ -bench='BenchmarkSweep(Broadcast|PerCell)$$' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_sweep.json -manifest results/runs

# Re-run the sweep benchmarks and gate against the committed baseline:
# prints per-benchmark deltas and fails on a >10% Mstep/s regression,
# without touching BENCH_sweep.json.
bench-check:
	$(GO) test -run=^$$ -bench='BenchmarkSweep(Broadcast|PerCell)$$' -benchmem . \
		| $(GO) run ./cmd/benchjson -o '' -compare BENCH_sweep.json

# Regenerate every table and figure (EXPERIMENTS.md numbers). Warm runs
# load unchanged cells from results/cells; -force re-simulates.
figures:
	$(GO) run ./cmd/nlstables -n 2000000 -progress -json

# The grid pipeline's equivalence gate: executor output bit-identical to
# the per-cell oracle, across cold, store-less, and warm runs.
grid-golden:
	$(GO) test -run 'TestGridGolden' ./internal/experiments

# The probe pipeline's golden gate: attribution totals restate the engine
# counters exactly, and the eviction-loss cause appears only for the
# line-coupled NLS organization (pinned mixes on a fixed workload seed).
attribution-golden:
	$(GO) test -run 'TestAttributionGolden' ./internal/obs

# End-to-end smoke: one figure through the real CLI and store (small n).
smoke:
	$(GO) run ./cmd/nlstables -only fig5 -n 100000 >/dev/null
	$(GO) run ./cmd/nlstables -only fig5 -n 100000 >/dev/null

# pprof smoke run: a small figure sweep under both profilers, then the
# hottest frames. Profiles land in cpu.prof / mem.prof (gitignored).
profile:
	$(GO) run ./cmd/nlstables -only fig5 -n 300000 -store "" -manifest "" \
		-cpuprofile cpu.prof -memprofile mem.prof >/dev/null
	$(GO) tool pprof -top -nodecount=8 cpu.prof

verify: build vet test race grid-golden attribution-golden smoke
