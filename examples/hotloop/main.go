// Hot-loop scenario: the other side of the paper's program-class contrast
// (§7) — when a handful of branch sites carry most of the execution (the
// doduc shape, Q-50 = 3), even a small BTB holds the whole working set and
// the NLS architecture merely matches it.
//
// The example runs a hand-built triple-nested loop kernel and the doduc
// analogue through a deliberately tiny 64-entry BTB and the NLS-table and
// shows both fetch-predicting essentially perfectly.
//
//	go run ./examples/hotloop
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	geom := cache.MustGeometry(8*1024, 32, 1)
	p := metrics.Default()

	// A microkernel with fully understood behaviour.
	prog, err := workload.HotLoopProgram()
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := exec.Trace(prog, 1, 500_000)
	if err != nil {
		log.Fatal(err)
	}

	// And the calibrated doduc analogue.
	doduc, err := workload.Doduc().Trace(1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	for _, tr := range []*trace.Trace{kernel, doduc} {
		st := trace.ComputeStats(tr)
		fmt.Printf("%s: Q-50 = %d sites, Q-90 = %d sites\n", tr.Name, st.Q50, st.Q90)

		mb := fetch.Run(arch.BTB(64, 1).WithGeometry(geom).MustBuild(), tr)
		mn := fetch.Run(arch.NLSTable(1024).WithGeometry(geom).MustBuild(), tr)
		fmt.Printf("  64-entry BTB:    misfetch BEP %.4f, total BEP %.4f\n",
			mb.MisfetchBEP(p), mb.BEP(p))
		fmt.Printf("  1024 NLS-table:  misfetch BEP %.4f, total BEP %.4f\n",
			mn.MisfetchBEP(p), mn.BEP(p))
		fmt.Println("  -> with few hot sites, fetch prediction is easy for both designs")
		fmt.Println()
	}
}
