// Quickstart: build a benchmark-analogue workload, run the paper's two
// fetch architectures over the same trace, and print the §5.2 metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	// 1. A workload: the gcc analogue, 1M executed instructions.
	tr, err := workload.Gcc().Trace(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s, %d instructions\n\n", tr.Name, tr.Len())

	// 2. The two architectures at equivalent hardware cost — a 1024-entry
	// NLS-table vs a 128-entry BTB — straight from the registry of paper
	// configurations (16KB direct-mapped i-cache, 4096-entry gshare PHT,
	// 32-entry return stack).
	p := metrics.Default()
	for _, name := range []string{"nls-table-1024", "btb-128"} {
		spec, ok := arch.Lookup(name)
		if !ok {
			log.Fatalf("unknown arch %q", name)
		}
		eng := spec.MustBuild()
		m := fetch.Run(eng, tr)
		fmt.Printf("%s\n", eng.Name())
		fmt.Printf("  misfetched   %5.2f%% of branches\n", m.PctMisfetched())
		fmt.Printf("  mispredicted %5.2f%% of branches\n", m.PctMispredicted())
		fmt.Printf("  BEP  %.3f cycles/branch (misfetch %.3f + mispredict %.3f)\n",
			m.BEP(p), m.MisfetchBEP(p), m.MispredictBEP(p))
		fmt.Printf("  CPI  %.3f   (i-cache miss rate %.2f%%)\n\n",
			m.CPI(p), 100*m.ICacheMissRate())
	}
}
