// Set prediction for associative caches (§4.2, second approach): each cache
// line carries a field predicting the way its fall-through successor lives
// in, so every access drives a single way and the tag check moves to the
// decode stage — an associative cache with direct-mapped access behaviour.
//
// This example runs workload fetch streams over a 2-way cache with the
// per-line next-way fields and reports the prediction accuracy — the
// fraction of sequential line crossings where only one way had to be
// driven.
//
//	go run ./examples/setprediction
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/workload"
)

func main() {
	for _, spec := range workload.All() {
		tr, err := spec.Trace(500_000)
		if err != nil {
			log.Fatal(err)
		}
		g := cache.MustGeometry(16*1024, 32, 2)
		c := cache.New(g)
		sp := cache.NewSetPredictor(c)

		// Walk the fetch stream; on every sequential crossing into a
		// new line, score the previous line's next-way field.
		type loc struct{ set, way int }
		var prev loc
		var prevLine uint32
		havePrev := false
		for _, r := range tr.Records {
			line := g.LineAddr(r.PC)
			_, resident := c.Probe(r.PC)
			_, way := c.Access(r.PC)
			if havePrev && line != prevLine {
				sequential := line == prevLine+1
				if sequential {
					sp.Observe(prev.set, prev.way, way, resident)
				}
			}
			prev = loc{g.SetIndex(r.PC), way}
			prevLine = line
			havePrev = true
		}
		fmt.Printf("%-15s 2-way 16KB: fall-through way prediction %6.2f%% over %d crossings (miss rate %.2f%%)\n",
			tr.Name, 100*sp.Accuracy(), sp.Predictions(), 100*c.MissRate())
	}
	fmt.Println("\nHigh accuracy means the 2-way cache almost always behaves direct-mapped")
	fmt.Println("on the sequential path, hiding the associative tag-compare latency that")
	fmt.Println("Figure 6 charges the BTB for.")
}
