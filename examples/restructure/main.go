// Cache sensitivity and whole-program restructuring (§7, §8).
//
// The paper's asymmetry: NLS fetch prediction improves whenever the
// instruction cache miss rate falls — more cache, more associativity, or
// better code layout — while the BTB, which stores full addresses, is
// untouched by cache contents. The paper suggests profile-guided layout
// (Pettis & Hansen) as a way to buy NLS performance "at no additional
// architectural cost".
//
// Part 1 demonstrates the asymmetry directly: sweeping the cache from 8K
// direct to 32K 4-way, NLS misfetch-BEP tracks the miss rate down while
// the BTB's is bit-for-bit identical.
//
// Part 2 probes profile-guided procedure layout on the same program. On
// this analogue the effect is small: its misses are dominated by capacity
// (the per-pass working set exceeds even 32K), which layout cannot fix —
// layout pays off when conflict misses dominate. The harness reports
// whatever it measures; see EXPERIMENTS.md for the discussion.
//
//	go run ./examples/restructure
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

const insns = 2_000_000

func measure(tr *trace.Trace, g cache.Geometry) (nlsMf, btbMf, missRate float64) {
	p := metrics.Default()
	mn := fetch.Run(arch.NLSTable(1024).WithGeometry(g).MustBuild(), tr)
	mb := fetch.Run(arch.BTB(128, 1).WithGeometry(g).MustBuild(), tr)
	return mn.MisfetchBEP(p), mb.MisfetchBEP(p), mn.ICacheMissRate()
}

func main() {
	spec := workload.Gcc()
	tr, err := spec.Trace(insns)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Part 1: lowering the miss rate helps NLS, never the BTB")
	fmt.Println("  cache         miss%   NLS misfetch-BEP   BTB misfetch-BEP")
	for _, kb := range []int{8, 16, 32} {
		for _, assoc := range []int{1, 4} {
			g := cache.MustGeometry(kb*1024, 32, assoc)
			nlsMf, btbMf, miss := measure(tr, g)
			fmt.Printf("  %-12s %6.2f %14.4f %18.4f\n", g, 100*miss, nlsMf, btbMf)
		}
	}

	fmt.Println("\nPart 2: profile-guided procedure layout on the same program")
	prog, err := spec.Program()
	if err != nil {
		log.Fatal(err)
	}
	profiler, err := exec.New(prog, spec.Seed)
	if err != nil {
		log.Fatal(err)
	}
	original := trace.Collect(spec.Name, profiler, insns)

	prog.LayoutOrder(cfg.HotFirstOrder(prog, profiler.ProcCounts))
	rerun, err := exec.New(prog, spec.Seed)
	if err != nil {
		log.Fatal(err)
	}
	restructured := trace.Collect(spec.Name+"-hotfirst", rerun, insns)

	g := cache.MustGeometry(8*1024, 32, 1)
	for _, tr := range []*trace.Trace{original, restructured} {
		nlsMf, btbMf, miss := measure(tr, g)
		fmt.Printf("  %-20s miss %5.2f%%   NLS mf-BEP %.4f   BTB mf-BEP %.4f\n",
			tr.Name, 100*miss, nlsMf, btbMf)
	}
	fmt.Println("\n(Capacity-dominated misses move little under layout; the architectural")
	fmt.Println("asymmetry of Part 1 is the paper's point.)")
}
