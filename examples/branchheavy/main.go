// Branch-heavy scenario: the paper's §7 observation that programs with many
// branch sites (gcc, cfront, groff) favour the NLS-table, because its
// smaller entries buy many more of them at the same area than BTB entries
// — the 128-entry BTB takes capacity misses that the 1024-entry NLS-table
// does not.
//
// This example sweeps BTB sizes against the equal-cost NLS-table on the
// gcc analogue and prints the misfetch component, where the entire
// difference lives (the direction predictor is shared).
//
//	go run ./examples/branchheavy
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/area"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	tr, err := workload.Gcc().Trace(2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("workload %s: %d static conditional sites, Q-90 = %d sites\n\n",
		tr.Name, st.StaticCondSites, st.Q90)

	geom := cache.MustGeometry(16*1024, 32, 1)
	p := metrics.Default()

	fmt.Println("architecture                 RBE cost   %misfetch   misfetch-BEP")
	for _, entries := range []int{64, 128, 256, 512} {
		cfg := btb.Config{Entries: entries, Assoc: 1}
		m := fetch.Run(arch.BTB(entries, 1).MustBuild(), tr)
		fmt.Printf("%-28s %8.0f %10.2f%% %13.3f\n",
			cfg, area.BTBRBE(cfg), m.PctMisfetched(), m.MisfetchBEP(p))
	}
	for _, entries := range []int{512, 1024, 2048} {
		m := fetch.Run(arch.NLSTable(entries).MustBuild(), tr)
		fmt.Printf("%-28s %8.0f %10.2f%% %13.3f\n",
			fmt.Sprintf("%d-entry NLS-table", entries),
			area.NLSTableRBE(entries, geom), m.PctMisfetched(), m.MisfetchBEP(p))
	}
	fmt.Println("\nThe 1024-entry NLS-table costs about as much as the 128-entry BTB")
	fmt.Println("but holds eight times the sites — on branch-rich code it misfetches less.")
}
