// Custom workloads: the cfg statement DSL lets you describe a program's
// control structure directly — loops with trip counts, biased or periodic
// conditionals, call trees, indirect dispatch — and run any fetch
// architecture over its execution.
//
// This example hand-builds a tiny "image filter" shape: an outer row loop,
// an inner pixel loop with a boundary test and a rare error path calling a
// cold handler, and a per-row helper call. It then compares NLS-table and
// BTB fetch prediction over it.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	const (
		mainProc = cfg.ProcID(0)
		rowProc  = cfg.ProcID(1)
		coldProc = cfg.ProcID(2)
	)

	// main: for 64 rows { process(row) }
	mainBody := []cfg.Stmt{
		cfg.Straight{N: 6},
		cfg.Loop{Trip: 64, Body: []cfg.Stmt{
			cfg.Straight{N: 3},
			cfg.CallTo{Callee: rowProc},
		}},
	}

	// process: for 48 pixels { boundary test; rare error -> cold handler }
	rowBody := []cfg.Stmt{
		cfg.Straight{N: 4},
		cfg.Loop{Trip: 48, Body: []cfg.Stmt{
			cfg.Straight{N: 5},
			// Boundary pixels every 16th iteration: perfectly
			// periodic, so a two-level predictor nails it.
			cfg.If{
				Cond: cfg.Behavior{Kind: cfg.BehaviorPattern,
					Pattern: boundaryPattern(16)},
				Then: []cfg.Stmt{cfg.Straight{N: 4}},
			},
			// A rare error path into cold code (taken = skip).
			cfg.If{
				Cond: cfg.BiasBehavior(0.995),
				Then: []cfg.Stmt{cfg.CallTo{Callee: coldProc}},
			},
		}},
	}

	coldBody := []cfg.Stmt{
		cfg.Straight{N: 30},
		cfg.If{Cond: cfg.BiasBehavior(0.5), Then: []cfg.Stmt{cfg.Straight{N: 12}}},
	}

	prog, err := cfg.BuildProgram("imagefilter", 0,
		[]string{"main", "process_row", "error_handler"},
		[][]cfg.Stmt{mainBody, rowBody, coldBody})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := exec.Trace(prog, 7, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("program: %d procs, %d blocks, %d static cond sites\n",
		len(prog.Procs), prog.NumBlocks(), prog.StaticCondSites())
	fmt.Printf("trace:   %%breaks %.1f, %%taken %.1f, Q-90 %d sites\n\n",
		st.PctBreaks(), st.PctCondTaken(), st.Q90)

	g := cache.MustGeometry(8*1024, 32, 1)
	p := metrics.Default()
	for _, eng := range []fetch.Engine{
		arch.NLSTable(1024).WithGeometry(g).MustBuild(),
		arch.BTB(128, 1).WithGeometry(g).MustBuild(),
	} {
		m := fetch.Run(eng, tr)
		fmt.Printf("%-36s BEP %.4f (mf %.4f, mp %.4f), cond-acc %.1f%%\n",
			eng.Name(), m.BEP(p), m.MisfetchBEP(p), m.MispredictBEP(p),
			100*m.CondAccuracy())
	}
	_ = mainProc
}

// boundaryPattern is true once every period executions.
func boundaryPattern(period int) []bool {
	pat := make([]bool, period)
	pat[period-1] = true
	return pat
}
