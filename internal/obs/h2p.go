package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fetch"
	"repro/internal/isa"
)

// H2P ("hard to predict") pairs two attribution reports of the same program
// — a base direction predictor and an alternative — and ranks the static
// branches by how much of the dir-wrong cause bucket each predictor pays on
// them. The h2p figure feeds it the equal-cost gshare vs TAGE-lite arms
// (DESIGN.md §13): the tail of branches a short-history gshare keeps
// missing is exactly the population a geometric-history predictor exists to
// recover, and the per-PC delta column shows where the recovery lands.

// H2PRow is one static branch's dir-wrong cost under both predictors.
type H2PRow struct {
	PC     isa.Addr
	Breaks uint64 // executions of the branch (base run; identical in alt)
	// BaseDirWrong and AltDirWrong count penalized dir-wrong executions
	// under each predictor.
	BaseDirWrong uint64
	AltDirWrong  uint64
}

// Recovered returns how many dir-wrong penalties the alternative predictor
// removed on this branch (negative when it regressed the branch).
func (r H2PRow) Recovered() int64 {
	return int64(r.BaseDirWrong) - int64(r.AltDirWrong)
}

// MarshalJSON renders the row with a hex PC, matching PCStats.
func (r H2PRow) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		PC           string `json:"pc"`
		Breaks       uint64 `json:"breaks"`
		BaseDirWrong uint64 `json:"base_dir_wrong"`
		AltDirWrong  uint64 `json:"alt_dir_wrong"`
		Recovered    int64  `json:"recovered"`
	}{r.PC.String(), r.Breaks, r.BaseDirWrong, r.AltDirWrong, r.Recovered()})
}

// H2PRanking is the paired comparison for one program.
type H2PRanking struct {
	Program  string `json:"program"`
	BaseArch string `json:"base_arch"`
	AltArch  string `json:"alt_arch"`
	// BaseTotal and AltTotal are the whole-run dir-wrong bucket sizes.
	BaseTotal uint64 `json:"base_dir_wrong_total"`
	AltTotal  uint64 `json:"alt_dir_wrong_total"`
	// H2PBranches counts static branches that were dir-wrong at least
	// once under either predictor.
	H2PBranches int `json:"h2p_branches"`
	// Rows holds the top branches by base dir-wrong count, descending
	// (ties by PC ascending, so rankings are deterministic).
	Rows []H2PRow `json:"rows"`
}

// RecoveredShare returns the fraction of the base dir-wrong bucket the
// alternative removed (0 when the base bucket is empty).
func (k H2PRanking) RecoveredShare() float64 {
	if k.BaseTotal == 0 {
		return 0
	}
	return float64(int64(k.BaseTotal)-int64(k.AltTotal)) / float64(k.BaseTotal)
}

// RankH2P pairs two attribution reports of the same program and returns the
// per-PC dir-wrong ranking, keeping the top n rows (n <= 0 keeps all). The
// reports must carry full per-PC tables (Attribution.Report with n <= 0);
// truncated reports would silently under-count the alt side of base-heavy
// branches.
func RankH2P(base, alt Report, n int) H2PRanking {
	k := H2PRanking{
		Program:  base.Program,
		BaseArch: base.Arch,
		AltArch:  alt.Arch,
	}
	type cell struct {
		breaks        uint64
		baseDW, altDW uint64
	}
	byPC := map[isa.Addr]*cell{}
	get := func(pc isa.Addr) *cell {
		c := byPC[pc]
		if c == nil {
			c = &cell{}
			byPC[pc] = c
		}
		return c
	}
	for _, s := range base.Top {
		c := get(s.PC)
		c.breaks = s.Breaks
		c.baseDW = s.Causes[fetch.CauseDirWrong]
		k.BaseTotal += c.baseDW
	}
	for _, s := range alt.Top {
		c := get(s.PC)
		if c.breaks == 0 {
			c.breaks = s.Breaks
		}
		c.altDW = s.Causes[fetch.CauseDirWrong]
		k.AltTotal += c.altDW
	}
	rows := make([]H2PRow, 0, len(byPC))
	for pc, c := range byPC {
		if c.baseDW == 0 && c.altDW == 0 {
			continue
		}
		rows = append(rows, H2PRow{
			PC: pc, Breaks: c.breaks,
			BaseDirWrong: c.baseDW, AltDirWrong: c.altDW,
		})
	}
	k.H2PBranches = len(rows)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].BaseDirWrong != rows[j].BaseDirWrong {
			return rows[i].BaseDirWrong > rows[j].BaseDirWrong
		}
		return rows[i].PC < rows[j].PC
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	k.Rows = rows
	return k
}

// RenderH2P formats the per-program rankings (the nlssim -h2p view and the
// h2p figure body). The format is pinned by the h2p golden test.
func RenderH2P(title string, ranks []H2PRanking) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, k := range ranks {
		fmt.Fprintf(&b, "%s: base=%s alt=%s dir-wrong %d -> %d (recovered %.1f%%, h2p-branches=%d)\n",
			k.Program, k.BaseArch, k.AltArch, k.BaseTotal, k.AltTotal,
			100*k.RecoveredShare(), k.H2PBranches)
		if len(k.Rows) == 0 {
			continue
		}
		b.WriteString("  pc              breaks    base-dw     alt-dw  recovered\n")
		for _, r := range k.Rows {
			fmt.Fprintf(&b, "  %s %9d %10d %10d %+10d\n",
				r.PC, r.Breaks, r.BaseDirWrong, r.AltDirWrong, r.Recovered())
		}
	}
	return b.String()
}
