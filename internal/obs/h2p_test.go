package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/workload"
)

// dirEv builds a dir-wrong mispredict event for RankH2P mechanics tests.
func dirEv(pc isa.Addr) fetch.BreakEvent {
	return fetch.BreakEvent{PC: pc, Kind: isa.CondBranch,
		Penalty: fetch.PenaltyMispredict, Cause: fetch.CauseDirWrong}
}

func TestRankH2PMechanics(t *testing.T) {
	p := metrics.Default()
	base, alt := NewAttribution(), NewAttribution()
	// 0x1000: 3 base, 1 alt (recovered 2). 0x2000: 1 base, 0 alt.
	// 0x3000: 0 base, 2 alt (a regression row). 0x4000: dir-clean both
	// sides — must not appear.
	for i := 0; i < 3; i++ {
		base.Break(dirEv(0x1000))
	}
	alt.Break(dirEv(0x1000))
	base.Break(dirEv(0x2000))
	alt.Break(dirEv(0x3000))
	alt.Break(dirEv(0x3000))
	base.Break(ev(0x4000, fetch.PenaltyMisfetch, fetch.CauseCold))
	alt.Break(ev(0x4000, fetch.PenaltyMisfetch, fetch.CauseCold))

	k := RankH2P(base.Report("g", "p", 0, p), alt.Report("t", "p", 0, p), 0)
	if k.BaseTotal != 4 || k.AltTotal != 3 {
		t.Fatalf("totals: %+v", k)
	}
	if k.H2PBranches != 3 || len(k.Rows) != 3 {
		t.Fatalf("h2p branch count: %+v", k)
	}
	// Ordered by base dir-wrong desc, PC tiebreak: 0x1000(3), 0x2000(1),
	// 0x3000(0).
	if k.Rows[0].PC != 0x1000 || k.Rows[1].PC != 0x2000 || k.Rows[2].PC != 0x3000 {
		t.Fatalf("row order: %+v", k.Rows)
	}
	if k.Rows[0].Recovered() != 2 || k.Rows[2].Recovered() != -2 {
		t.Fatalf("recovered deltas: %+v", k.Rows)
	}
	if got := RankH2P(base.Report("g", "p", 0, p), alt.Report("t", "p", 0, p), 2); len(got.Rows) != 2 {
		t.Fatalf("topN truncation: %d rows", len(got.Rows))
	}

	text := RenderH2P("H2P test", []H2PRanking{k})
	for _, want := range []string{"base=g alt=t", "dir-wrong 4 -> 3", "0x00001000"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	raw, err := json.Marshal(k)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Rows []struct {
			PC        string `json:"pc"`
			Recovered int64  `json:"recovered"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("ranking JSON does not round-trip: %v", err)
	}
	if len(back.Rows) != 3 || back.Rows[0].PC != "0x00001000" || back.Rows[0].Recovered != 2 {
		t.Fatalf("JSON shape: %s", raw)
	}
}

// TestH2PGolden pins the tentpole's acceptance criterion on a fixed
// workload seed: the equal-cost TAGE-lite arm recovers a nonzero share of
// the dir-wrong cause bucket against the paper's gshare on the identical
// 1024-entry NLS-table architecture (espresso-like, 200k instructions,
// paper 16KB direct cache). The exact totals are pinned like
// TestAttributionGolden: if this fails after an intentional change,
// re-record with go test ./internal/obs -run H2PGolden -v.
func TestH2PGolden(t *testing.T) {
	const n = 200_000
	tr := workload.Espresso().MustTrace(n)
	g := cache.MustGeometry(arch.DefaultCacheKB*1024, arch.LineBytes, 1)
	p := metrics.Default()

	run := func(d pht.Directional, name string) Report {
		e := fetch.NewNLSTableEngine(g, 1024, d, ras.DefaultDepth)
		a := NewAttribution()
		e.AttachProbe(a)
		fetch.Run(e, tr)
		return a.Report(name, "espresso-like", 0, p)
	}
	gshare := run(pht.NewGShare(arch.PHTEntries, arch.PHTHistoryBits), "gshare")
	tage, err := arch.TAGEPHT().Build()
	if err != nil {
		t.Fatal(err)
	}
	alt := run(tage, "tage")

	k := RankH2P(gshare, alt, 8)
	t.Logf("dir-wrong %d -> %d (recovered %.1f%%, h2p-branches=%d)",
		k.BaseTotal, k.AltTotal, 100*k.RecoveredShare(), k.H2PBranches)
	for _, r := range k.Rows {
		t.Logf("  %s breaks=%d base=%d alt=%d", r.PC, r.Breaks, r.BaseDirWrong, r.AltDirWrong)
	}

	// The acceptance criterion: nonzero recovery at equal storage cost.
	if k.AltTotal >= k.BaseTotal {
		t.Fatalf("TAGE-lite recovers nothing: dir-wrong %d -> %d", k.BaseTotal, k.AltTotal)
	}
	// Pinned totals (see the comment above before editing).
	const pinnedBase, pinnedAlt = 4153, 2299
	if k.BaseTotal != pinnedBase || k.AltTotal != pinnedAlt {
		t.Errorf("h2p totals changed: got %d -> %d, pinned %d -> %d",
			k.BaseTotal, k.AltTotal, pinnedBase, pinnedAlt)
	}
}
