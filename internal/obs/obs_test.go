package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/workload"
)

func ev(pc isa.Addr, penalty fetch.PenaltyClass, cause fetch.Cause) fetch.BreakEvent {
	return fetch.BreakEvent{PC: pc, Kind: isa.CondBranch, Penalty: penalty, Cause: cause}
}

func TestAttributionAccumulation(t *testing.T) {
	a := NewAttribution()
	a.Break(ev(0x1000, fetch.PenaltyNone, fetch.CauseNone))
	a.Break(ev(0x1000, fetch.PenaltyMispredict, fetch.CauseDirWrong))
	a.Break(ev(0x2000, fetch.PenaltyMisfetch, fetch.CauseCold))
	a.Break(ev(0x2000, fetch.PenaltyMisfetch, fetch.CauseStalePointer))
	a.Break(ev(0x3000, fetch.PenaltyNone, fetch.CauseNone))

	p := metrics.Default()
	r := a.Report("test-arch", "test-prog", 0, p)
	if r.Breaks != 5 || r.Misfetches != 2 || r.Mispredicts != 1 {
		t.Fatalf("totals: %+v", r)
	}
	if r.StaticBranches != 3 || len(r.Top) != 3 {
		t.Fatalf("static branches: %+v", r)
	}
	// 2 misfetches (1 cycle) + 1 mispredict (4 cycles).
	if r.PenaltyCycles != 6 {
		t.Fatalf("penalty cycles = %v, want 6", r.PenaltyCycles)
	}
	// 0x1000 costs 4 cycles, 0x2000 costs 2, 0x3000 costs 0.
	if r.Top[0].PC != 0x1000 || r.Top[1].PC != 0x2000 || r.Top[2].PC != 0x3000 {
		t.Fatalf("offender order: %v %v %v", r.Top[0].PC, r.Top[1].PC, r.Top[2].PC)
	}
	if r.Causes[fetch.CauseDirWrong] != 1 || r.Causes[fetch.CauseCold] != 1 ||
		r.Causes[fetch.CauseStalePointer] != 1 {
		t.Fatalf("cause mix: %v", r.Causes)
	}
	if got := a.Report("a", "p", 2, p); len(got.Top) != 2 {
		t.Fatalf("topN truncation: %d rows", len(got.Top))
	}
}

func TestAttributionReportDeterministic(t *testing.T) {
	// Ties (equal penalty cycles) must order by PC, independent of map
	// iteration order.
	a := NewAttribution()
	for _, pc := range []isa.Addr{0x5000, 0x1000, 0x3000, 0x2000, 0x4000} {
		a.Break(ev(pc, fetch.PenaltyMisfetch, fetch.CauseCold))
	}
	p := metrics.Default()
	first := a.Report("a", "p", 0, p)
	for i := 0; i < 10; i++ {
		r := a.Report("a", "p", 0, p)
		for j := range r.Top {
			if r.Top[j].PC != first.Top[j].PC {
				t.Fatalf("iteration %d: nondeterministic order", i)
			}
		}
	}
	for j := 1; j < len(first.Top); j++ {
		if first.Top[j-1].PC >= first.Top[j].PC {
			t.Fatalf("ties not ordered by PC: %v", first.Top)
		}
	}
}

func TestRenderReportsAndJSON(t *testing.T) {
	a := NewAttribution()
	a.Break(ev(0x1000, fetch.PenaltyMispredict, fetch.CauseEvictionLoss))
	p := metrics.Default()
	r := a.Report("2/line NLS-cache", "micro", 10, p)

	text := RenderReports([]Report{r}, p)
	for _, want := range []string{"2/line NLS-cache", "eviction-loss=1", "0x00001000"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Causes map[string]uint64 `json:"causes"`
		Top    []struct {
			PC     string            `json:"pc"`
			Causes map[string]uint64 `json:"causes"`
		} `json:"top"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Causes["eviction-loss"] != 1 || len(back.Top) != 1 || back.Top[0].PC != "0x00001000" {
		t.Fatalf("JSON shape: %s", raw)
	}
}

// TestAttributionGolden pins the attribution report for the paper's central
// comparison on a fixed workload seed: espresso-like, 200k instructions, an
// 8KB direct-mapped cache (small enough to thrash), NLS-table 1024 vs
// NLS-cache 2/line. The eviction-loss cause must be nonzero for the
// NLS-cache and zero for the NLS-table — §4.1's structural claim — and the
// exact mix is pinned like experiments' TestGoldenEventCounts: if this
// fails after an intentional change, re-record with
// go test ./internal/obs -run Golden -v.
func TestAttributionGolden(t *testing.T) {
	const n = 200_000
	tr := workload.Espresso().MustTrace(n)
	g := cache.MustGeometry(8*1024, 32, 1)
	newPHT := func() pht.Predictor {
		return pht.NewGShare(arch.PHTEntries, arch.PHTHistoryBits)
	}
	p := metrics.Default()

	run := func(e fetch.Engine, name string) Report {
		a := NewAttribution()
		e.(fetch.ProbeAttacher).AttachProbe(a)
		m := fetch.Run(e, tr)
		r := a.Report(name, "espresso-like", 5, p)
		// The probe contract: the attribution's totals restate the
		// engine's own counters exactly.
		if r.Breaks != m.Breaks || r.Misfetches != m.Misfetches || r.Mispredicts != m.Mispredicts {
			t.Fatalf("%s: attribution totals diverge from counters", name)
		}
		return r
	}

	table := run(fetch.NewNLSTableEngine(g, 1024, newPHT(), ras.DefaultDepth), "1024 NLS-table")
	coupled := run(fetch.NewNLSCacheEngine(g, 2, newPHT(), ras.DefaultDepth), "2/line NLS-cache")

	t.Logf("table:   mf=%d mp=%d causes=%s", table.Misfetches, table.Mispredicts, causeList(table.Causes))
	t.Logf("coupled: mf=%d mp=%d causes=%s", coupled.Misfetches, coupled.Mispredicts, causeList(coupled.Causes))

	// The acceptance criterion: state lost to eviction appears only for
	// the line-coupled organization.
	if table.Causes[fetch.CauseEvictionLoss] != 0 {
		t.Errorf("NLS-table reports %d eviction losses; its tag-less entries cannot be evicted",
			table.Causes[fetch.CauseEvictionLoss])
	}
	if coupled.Causes[fetch.CauseEvictionLoss] == 0 {
		t.Errorf("NLS-cache reports no eviction losses under an 8KB thrashing cache")
	}

	// Pinned mixes (see the comment above before editing).
	type golden struct {
		mf, mp, dirWrong, stale, evict, rasMiss, cold uint64
	}
	mix := func(r Report) golden {
		return golden{
			mf: r.Misfetches, mp: r.Mispredicts,
			dirWrong: r.Causes[fetch.CauseDirWrong],
			stale:    r.Causes[fetch.CauseStalePointer],
			evict:    r.Causes[fetch.CauseEvictionLoss],
			rasMiss:  r.Causes[fetch.CauseRASMiss],
			cold:     r.Causes[fetch.CauseCold],
		}
	}
	pinnedTable := golden{mf: 107, mp: 4154, dirWrong: 4153, stale: 70, evict: 0, rasMiss: 1, cold: 37}
	pinnedCoupled := golden{mf: 2280, mp: 4148, dirWrong: 4147, stale: 2201, evict: 46, rasMiss: 1, cold: 33}
	if got := mix(table); got != pinnedTable {
		t.Errorf("NLS-table mix changed: got %+v, pinned %+v", got, pinnedTable)
	}
	if got := mix(coupled); got != pinnedCoupled {
		t.Errorf("NLS-cache mix changed: got %+v, pinned %+v", got, pinnedCoupled)
	}
}
