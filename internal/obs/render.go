package obs

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/fetch"
	"repro/internal/metrics"
)

// Pure presentation, in the style of experiments/render.go: reports in,
// text or JSON out, nothing here simulates. The text formats are pinned by
// the attribution golden test.

// MarshalJSON renders the mix as an object keyed by cause name, omitting
// zero causes, so reports stay readable and schema-stable as causes grow.
func (m CauseMix) MarshalJSON() ([]byte, error) {
	o := make(map[string]uint64)
	for c := fetch.CauseNone + 1; c < fetch.NumCauses; c++ {
		if m[c] > 0 {
			o[c.String()] = m[c]
		}
	}
	return json.Marshal(o)
}

// MarshalJSON renders one offender row with a hex PC and named causes.
func (s PCStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		PC          string   `json:"pc"`
		Kind        string   `json:"kind"`
		Breaks      uint64   `json:"breaks"`
		Misfetches  uint64   `json:"misfetches"`
		Mispredicts uint64   `json:"mispredicts"`
		Causes      CauseMix `json:"causes"`
		Polluted    uint64   `json:"polluted,omitempty"`
	}{
		PC: s.PC.String(), Kind: s.Kind.String(),
		Breaks: s.Breaks, Misfetches: s.Misfetches, Mispredicts: s.Mispredicts,
		Causes: s.Causes, Polluted: s.Polluted,
	})
}

// causeList formats the nonzero causes in taxonomy order.
func causeList(m CauseMix) string {
	var parts []string
	for c := fetch.CauseNone + 1; c < fetch.NumCauses; c++ {
		if m[c] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, m[c]))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// RenderReports formats full attribution reports (the nlssim -attribute
// view): run totals, the cause mix, and the top offender branches.
func RenderReports(reports []Report, p metrics.Penalties) string {
	var b strings.Builder
	b.WriteString("Attribution: per-branch penalty causes\n")
	for _, r := range reports {
		fmt.Fprintf(&b, "%s / %s: breaks=%d mf=%d mp=%d penalty-cycles=%.0f static-branches=%d\n",
			r.Arch, r.Program, r.Breaks, r.Misfetches, r.Mispredicts,
			r.PenaltyCycles, r.StaticBranches)
		fmt.Fprintf(&b, "  causes: %s\n", causeList(r.Causes))
		if len(r.Top) == 0 {
			continue
		}
		b.WriteString("  pc          kind        breaks      mf      mp    cycles  causes\n")
		for _, s := range r.Top {
			fmt.Fprintf(&b, "  %s  %-8s %9d %7d %7d %9.0f  %s\n",
				s.PC, s.Kind, s.Breaks, s.Misfetches, s.Mispredicts,
				s.PenaltyCycles(p), causeList(s.Causes))
		}
	}
	return b.String()
}

// RenderCauseMatrix formats the cross-architecture comparison (the
// nlstables attribution figure): one row per architecture with its cause
// mix as a share of penalized breaks, reports aggregated over programs in
// first-appearance arch order.
func RenderCauseMatrix(title string, reports []Report) string {
	type aggRow struct {
		arch      string
		mix       CauseMix
		penalized uint64
	}
	var order []string
	agg := map[string]*aggRow{}
	for _, r := range reports {
		a := agg[r.Arch]
		if a == nil {
			a = &aggRow{arch: r.Arch}
			agg[r.Arch] = a
			order = append(order, r.Arch)
		}
		a.mix.Add(r.Causes)
		a.penalized += r.Misfetches + r.Mispredicts
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("  arch                      penalized")
	for c := fetch.CauseNone + 1; c < fetch.NumCauses; c++ {
		fmt.Fprintf(&b, " %13s", c)
	}
	b.WriteString("\n")
	for _, arch := range order {
		a := agg[arch]
		fmt.Fprintf(&b, "  %-26s %8d", a.arch, a.penalized)
		for c := fetch.CauseNone + 1; c < fetch.NumCauses; c++ {
			if a.penalized == 0 {
				fmt.Fprintf(&b, " %12.1f%%", 0.0)
				continue
			}
			fmt.Fprintf(&b, " %12.1f%%", 100*float64(a.mix[c])/float64(a.penalized))
		}
		b.WriteString("\n")
	}
	return b.String()
}
