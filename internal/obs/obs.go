// Package obs turns the fetch frontend's probe event stream into per-branch
// attribution: which static branches pay the penalty cycles, and why. The
// aggregate counters of package metrics say *how often* each architecture
// pays; the paper's arguments are causal — NLS-cache state dies on line
// eviction (§4.1, §6.1), the RAS saves returns, tag-less tables alias — and
// attribution tables are what make those causes visible per configuration.
//
// An Attribution is a fetch.Probe. It only accumulates; reports are built
// on demand by Report and rendered by the pure functions in render.go, so
// the same collected state can feed the text table, the -json report, and
// the golden tests.
package obs

import (
	"sort"

	"repro/internal/fetch"
	"repro/internal/isa"
	"repro/internal/metrics"
)

// CauseMix counts penalized breaks by root cause, indexed by fetch.Cause.
type CauseMix [fetch.NumCauses]uint64

// Add accumulates another mix.
func (m *CauseMix) Add(o CauseMix) {
	for i, n := range o {
		m[i] += n
	}
}

// Total returns the penalized-break count (CauseNone slots are never
// incremented for penalized breaks, so this sums real causes).
func (m CauseMix) Total() uint64 {
	var t uint64
	for c := fetch.CauseNone + 1; c < fetch.NumCauses; c++ {
		t += m[c]
	}
	return t
}

// PCStats accumulates the attribution for one static branch.
type PCStats struct {
	PC   isa.Addr
	Kind isa.Kind
	// Breaks is the branch's execution count; Misfetches and Mispredicts
	// its penalized executions, split per §5.2.
	Breaks      uint64
	Misfetches  uint64
	Mispredicts uint64
	// Causes classifies the penalized executions.
	Causes CauseMix
	// Polluted counts wrong fetches whose cache touch was modelled.
	Polluted uint64
}

// PenaltyCycles returns the branch's total penalty cost under p.
func (s *PCStats) PenaltyCycles(p metrics.Penalties) float64 {
	return float64(s.Misfetches)*p.Misfetch + float64(s.Mispredicts)*p.Mispredict
}

// Attribution consumes one engine's probe events into per-PC tables. It is
// engine-private, like the probe contract requires: attach one Attribution
// per engine and merge reports afterwards if needed.
type Attribution struct {
	byPC map[isa.Addr]*PCStats
}

// NewAttribution returns an empty collector.
func NewAttribution() *Attribution {
	return &Attribution{byPC: make(map[isa.Addr]*PCStats)}
}

// Break implements fetch.Probe.
func (a *Attribution) Break(ev fetch.BreakEvent) {
	s := a.byPC[ev.PC]
	if s == nil {
		s = &PCStats{PC: ev.PC, Kind: ev.Kind}
		a.byPC[ev.PC] = s
	}
	s.Breaks++
	switch ev.Penalty {
	case fetch.PenaltyMisfetch:
		s.Misfetches++
	case fetch.PenaltyMispredict:
		s.Mispredicts++
	}
	if ev.Cause != fetch.CauseNone {
		s.Causes[ev.Cause]++
	}
	if ev.Polluted {
		s.Polluted++
	}
}

// Report is the attribution summary for one (arch, program) run: totals,
// the cause mix, and the top offender branches by penalty cycles.
type Report struct {
	Arch    string `json:"arch"`
	Program string `json:"program"`
	// Breaks, Misfetches, Mispredicts restate the run's counters as seen
	// through the probe (bit-identical to the engine's own, by contract).
	Breaks      uint64 `json:"breaks"`
	Misfetches  uint64 `json:"misfetches"`
	Mispredicts uint64 `json:"mispredicts"`
	// StaticBranches is the number of distinct break PCs executed.
	StaticBranches int `json:"static_branches"`
	// PenaltyCycles is the total penalty cost under the report's penalties.
	PenaltyCycles float64 `json:"penalty_cycles"`
	// Causes is the whole-run cause mix.
	Causes CauseMix `json:"causes"`
	// Top holds the worst offenders, sorted by penalty cycles descending
	// (ties by PC ascending, so reports are deterministic).
	Top []PCStats `json:"top"`
}

// Report builds the deterministic summary: top n offenders under penalties
// p. n <= 0 means all branches.
func (a *Attribution) Report(arch, program string, n int, p metrics.Penalties) Report {
	r := Report{Arch: arch, Program: program, StaticBranches: len(a.byPC)}
	all := make([]PCStats, 0, len(a.byPC))
	for _, s := range a.byPC {
		all = append(all, *s)
		r.Breaks += s.Breaks
		r.Misfetches += s.Misfetches
		r.Mispredicts += s.Mispredicts
		r.Causes.Add(s.Causes)
	}
	r.PenaltyCycles = float64(r.Misfetches)*p.Misfetch + float64(r.Mispredicts)*p.Mispredict
	sort.Slice(all, func(i, j int) bool {
		ci, cj := all[i].PenaltyCycles(p), all[j].PenaltyCycles(p)
		if ci != cj {
			return ci > cj
		}
		return all[i].PC < all[j].PC
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	r.Top = all
	return r
}
