package arch

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestPHTKindsCoverValidate keeps PHTKinds() (the -list/discoverability
// surface) in lockstep with PHTSpec.Validate (the acceptance surface): every
// listed kind must validate with a minimal sensible spec, and a kind outside
// the list must be rejected.
func TestPHTKindsCoverValidate(t *testing.T) {
	minimal := func(kind string) PHTSpec {
		switch kind {
		case PHTKindTAGE:
			return TAGEPHT()
		case PHTKindGShare, PHTKindGAs, PHTKindBimodal, PHTKindOneBit:
			return PHTSpec{Kind: kind, Entries: 512}
		default: // static and none kinds carry no parameters
			return PHTSpec{Kind: kind}
		}
	}
	kinds := PHTKinds()
	if len(kinds) == 0 {
		t.Fatal("PHTKinds returned nothing")
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("PHTKinds lists %q twice", k)
		}
		seen[k] = true
		s := minimal(k)
		if err := s.Validate(); err != nil {
			t.Errorf("kind %q is listed but its minimal spec fails Validate: %v", k, err)
			continue
		}
		if _, err := s.Build(); err != nil {
			t.Errorf("kind %q validated but Build failed: %v", k, err)
		}
	}
	if !seen[PHTKindNone] || !seen[PHTKindTAGE] || !seen[PHTKindGShare] {
		t.Errorf("PHTKinds missing core kinds: %v", kinds)
	}
	if err := (PHTSpec{Kind: "nonsense"}).Validate(); err == nil {
		t.Error("Validate accepted a kind PHTKinds does not list")
	}
}

// TestTAGESpecValidate: the tage kind's own gate — hostile field mixes that
// must come back as errors, never panics, plus the happy path.
func TestTAGESpecValidate(t *testing.T) {
	ok := TAGEPHT()
	if err := ok.Validate(); err != nil {
		t.Fatalf("TAGEPHT rejected: %v", err)
	}
	mut := func(f func(*PHTSpec)) PHTSpec { s := TAGEPHT(); f(&s); return s }
	bad := []struct {
		name string
		s    PHTSpec
	}{
		{"history_bits on tage", mut(func(s *PHTSpec) { s.HistoryBits = 6 })},
		{"zero tables", mut(func(s *PHTSpec) { s.TageTables = 0 })},
		{"too many tables", mut(func(s *PHTSpec) { s.TageTables = 9 })},
		{"non-pow2 tagged entries", mut(func(s *PHTSpec) { s.TageEntries = 100 })},
		{"oversized tagged entries", mut(func(s *PHTSpec) { s.TageEntries = 1 << 30 })},
		{"oversized base", mut(func(s *PHTSpec) { s.Entries = 1 << 30 })},
		{"tag too narrow", mut(func(s *PHTSpec) { s.TageTagBits = 2 })},
		{"tag too wide", mut(func(s *PHTSpec) { s.TageTagBits = 20 })},
		{"min_hist zero", mut(func(s *PHTSpec) { s.TageMinHist = 0 })},
		{"min >= max hist", mut(func(s *PHTSpec) { s.TageMinHist = 64 })},
		{"max hist beyond cap", mut(func(s *PHTSpec) { s.TageMaxHist = 65 })},
		{"negative everything", mut(func(s *PHTSpec) {
			s.Entries, s.TageTables, s.TageEntries = -1, -1, -1
		})},
		{"tage fields on gshare", PHTSpec{Kind: PHTKindGShare, Entries: 512, TageTables: 4}},
		{"tage fields on none", PHTSpec{Kind: PHTKindNone, TageMaxHist: 64}},
	}
	for _, c := range bad {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Validate panicked: %v", c.name, r)
				}
			}()
			if err := c.s.Validate(); err == nil {
				t.Errorf("%s: Validate accepted it", c.name)
			}
			// Satellite: a hostile spec reaching Build must error, not
			// panic a serve worker.
			if _, err := c.s.Build(); err == nil {
				t.Errorf("%s: Build accepted it", c.name)
			}
		}()
	}
}

// TestPHTSpecJSONStability: the Tage* fields are omitempty, so the JSON form
// of every pre-TAGE spec is byte-identical to before this change — the
// content-addressed result store's hashes (and warm-cache hits) survive the
// schema extension. A TAGE spec round-trips losslessly.
func TestPHTSpecJSONStability(t *testing.T) {
	legacy, err := json.Marshal(PaperPHT())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(legacy), "tage") {
		t.Fatalf("legacy spec JSON mentions tage fields (hash instability): %s", legacy)
	}
	want := `{"kind":"gshare","entries":4096,"history_bits":6}`
	if string(legacy) != want {
		t.Fatalf("legacy spec JSON drifted:\n  got  %s\n  want %s", legacy, want)
	}

	enc, err := json.Marshal(TAGEPHT())
	if err != nil {
		t.Fatal(err)
	}
	var back PHTSpec
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back != TAGEPHT() {
		t.Fatalf("TAGE spec did not round-trip: %+v", back)
	}
}

// TestTAGERegistryArm: the registered h2p comparison arm exists, validates,
// builds, and is equal-cost against the paper gshare (within 1%).
func TestTAGERegistryArm(t *testing.T) {
	s, ok := Lookup("nls-table-1024-tage")
	if !ok {
		t.Fatal("nls-table-1024-tage not registered")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("registered tage arm invalid: %v", err)
	}
	d, err := s.PHT.Build()
	if err != nil {
		t.Fatalf("tage arm Build: %v", err)
	}
	g, err := PaperPHT().Build()
	if err != nil {
		t.Fatal(err)
	}
	tb, gb := d.SizeBits(), g.SizeBits()
	if diff := float64(tb-gb) / float64(gb); diff < -0.01 || diff > 0.01 {
		t.Fatalf("not equal-cost: tage %d bits vs gshare %d bits (%.2f%%)",
			tb, gb, 100*diff)
	}
	if name := d.Name(); !strings.Contains(name, "tage") {
		t.Fatalf("built predictor name %q does not identify tage", name)
	}
	_ = fmt.Sprintf("%v", s) // specs must be printable for -list
}
