package arch

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/pht"
	"repro/internal/workload"
)

// TestRegistryRoundTrip: every registered spec survives JSON encode →
// decode → Build. The decoded value must equal the original field for
// field (the wire format is lossless) and must build an engine with the
// same display name as one built from the original.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	for _, name := range names {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Names() listed %q but Lookup missed", name)
		}
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var decoded Spec
		if err := json.Unmarshal(buf, &decoded); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(s, decoded) {
			t.Fatalf("%s: round trip lost information:\n  in  %+v\n  out %+v", name, s, decoded)
		}
		e, err := decoded.Build()
		if err != nil {
			t.Fatalf("%s: decoded spec does not build: %v", name, err)
		}
		if want := s.MustBuild().Name(); e.Name() != want {
			t.Fatalf("%s: decoded engine %q, original %q", name, e.Name(), want)
		}
	}
}

// TestSpecBuildMatchesHandWired: a spec-built engine is counter-for-counter
// identical to the same architecture wired by hand through the fetch
// constructors — the registry is a description, not a different machine.
func TestSpecBuildMatchesHandWired(t *testing.T) {
	tr, err := workload.Espresso().Trace(100_000)
	if err != nil {
		t.Fatal(err)
	}
	g := cache.MustGeometry(16*1024, LineBytes, 1)
	hand := []fetch.Engine{
		fetch.NewNLSTableEngine(g, 1024, pht.NewGShare(PHTEntries, PHTHistoryBits), 32),
		fetch.NewNLSCacheEngine(g, 2, pht.NewGShare(PHTEntries, PHTHistoryBits), 32),
		fetch.NewBTBEngine(g, btb.Config{Entries: 128, Assoc: 1},
			pht.NewGShare(PHTEntries, PHTHistoryBits), 32),
		fetch.NewCoupledBTBEngine(g, btb.Config{Entries: 128, Assoc: 1}, 32),
		fetch.NewJohnsonEngine(g),
	}
	specs := []Spec{
		NLSTable(1024), NLSCache(2), BTB(128, 1), CoupledBTB(128, 1), Johnson(),
	}
	for i, s := range specs {
		mh := fetch.Run(hand[i], tr)
		ms := fetch.Run(s.MustBuild(), tr)
		if *mh != *ms {
			t.Errorf("%s: spec-built counters diverge from hand-wired", hand[i].Name())
		}
	}
}

// TestValidateRejects: malformed specs fail Validate with a diagnostic.
func TestValidateRejects(t *testing.T) {
	paperC := CacheSpec{SizeBytes: 16 * 1024, LineBytes: LineBytes, Assoc: 1}
	cases := []struct {
		name string
		s    Spec
		want string
	}{
		{"unknown kind",
			Spec{Predictor: PredictorSpec{Kind: "oracle"}, Cache: paperC},
			"unknown predictor kind"},
		{"nls-table without entries",
			Spec{Predictor: PredictorSpec{Kind: KindNLSTable}, Cache: paperC, PHT: PaperPHT()},
			"power of two"},
		{"nls-cache without per_line",
			Spec{Predictor: PredictorSpec{Kind: KindNLSCache}, Cache: paperC, PHT: PaperPHT()},
			"must divide"},
		{"decoupled without PHT",
			Spec{Predictor: PredictorSpec{Kind: KindNLSTable, Entries: 512}, Cache: paperC},
			"needs a PHT"},
		{"coupled with PHT",
			Spec{Predictor: PredictorSpec{Kind: KindJohnson}, Cache: paperC, PHT: PaperPHT()},
			"must be \"none\""},
		{"bad cache geometry",
			Spec{Predictor: PredictorSpec{Kind: KindJohnson},
				Cache: CacheSpec{SizeBytes: 1000, LineBytes: 48, Assoc: 1}},
			""},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestValidateUntrustedNeverPanics: Validate is the gate between untrusted
// JSON (the sweep service's job decoder) and Build, whose constructors
// panic on bad sizes. Every malformed or adversarial spec here must come
// back as an error — never a panic — and anything Validate accepts must
// then Build without panicking.
func TestValidateUntrustedNeverPanics(t *testing.T) {
	paperC := CacheSpec{SizeBytes: 16 * 1024, LineBytes: LineBytes, Assoc: 1}
	adversarial := []struct {
		name string
		s    Spec
	}{
		{"non-pow2 nls-table", Spec{Predictor: PredictorSpec{Kind: KindNLSTable, Entries: 3},
			Cache: paperC, PHT: PaperPHT()}},
		{"oversized nls-table", Spec{Predictor: PredictorSpec{Kind: KindNLSTable, Entries: 1 << 30},
			Cache: paperC, PHT: PaperPHT()}},
		{"negative nls-table", Spec{Predictor: PredictorSpec{Kind: KindNLSTable, Entries: -1024},
			Cache: paperC, PHT: PaperPHT()}},
		{"per_line not dividing the line", Spec{Predictor: PredictorSpec{Kind: KindNLSCache, PerLine: 3},
			Cache: paperC, PHT: PaperPHT()}},
		{"per_line beyond the line", Spec{Predictor: PredictorSpec{Kind: KindNLSCache, PerLine: 1 << 20},
			Cache: paperC, PHT: PaperPHT()}},
		{"non-pow2 pht", Spec{Predictor: PredictorSpec{Kind: KindNLSTable, Entries: 512},
			Cache: paperC, PHT: PHTSpec{Kind: "gshare", Entries: 3000}}},
		{"oversized pht", Spec{Predictor: PredictorSpec{Kind: KindNLSTable, Entries: 512},
			Cache: paperC, PHT: PHTSpec{Kind: "bimodal", Entries: 1 << 30}}},
		{"negative history bits", Spec{Predictor: PredictorSpec{Kind: KindNLSTable, Entries: 512},
			Cache: paperC, PHT: PHTSpec{Kind: "gshare", Entries: 4096, HistoryBits: -7}}},
		{"oversized cache", Spec{Predictor: PredictorSpec{Kind: KindJohnson},
			Cache: CacheSpec{SizeBytes: 1 << 30, LineBytes: LineBytes, Assoc: 1}}},
		{"oversized ras", Spec{Predictor: PredictorSpec{Kind: KindJohnson},
			Cache: paperC, RASDepth: 1 << 24}},
		{"oversized btb", Spec{Predictor: PredictorSpec{Kind: KindBTB, Entries: 1 << 30, Assoc: 1},
			Cache: paperC, PHT: PaperPHT()}},
		{"oversized hybrid btb half", Spec{Predictor: PredictorSpec{Kind: KindHybrid, Entries: 512,
			BTBEntries: 1 << 30, BTBAssoc: 1}, Cache: paperC, PHT: PaperPHT()}},
	}
	for _, c := range adversarial {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Validate panicked: %v", c.name, r)
				}
			}()
			if err := c.s.Validate(); err == nil {
				t.Errorf("%s: Validate accepted an adversarial spec", c.name)
			}
		}()
	}

	// Large-but-legal specs at the caps must still validate and build: the
	// bounds protect the service without shrinking the roadmap's sweep
	// space (multi-MB predictors, 256KB+ caches).
	big := Spec{
		Predictor: PredictorSpec{Kind: KindNLSTable, Entries: 1 << 18},
		Cache:     CacheSpec{SizeBytes: 256 * 1024, LineBytes: LineBytes, Assoc: 4},
		PHT:       PaperPHT(),
	}
	if err := big.Validate(); err != nil {
		t.Fatalf("capped-range spec rejected: %v", err)
	}
	if _, err := big.Build(); err != nil {
		t.Fatalf("capped-range spec does not build: %v", err)
	}
}

// TestRegisterPanics: duplicate and invalid registrations fail loudly at
// init time rather than silently shadowing a paper configuration.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { Register("nls-table-1024", NLSTable(1024)) })
	mustPanic("invalid", func() {
		Register("broken", Spec{Predictor: PredictorSpec{Kind: "oracle"}})
	})
}
