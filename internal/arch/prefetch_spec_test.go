package arch

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/pht"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPrefetchKindsCoverValidate keeps PrefetchKinds() (the -list surface)
// in lockstep with PrefetchSpec.Validate (the acceptance surface): every
// listed kind must validate with a minimal sensible spec and build on a
// registered base arch, and a kind outside the list must be rejected.
func TestPrefetchKindsCoverValidate(t *testing.T) {
	minimal := func(kind string) PrefetchSpec {
		if kind == PrefKindFDIP {
			return PrefetchSpec{Kind: kind, FTQDepth: 8}
		}
		return PrefetchSpec{Kind: kind}
	}
	kinds := PrefetchKinds()
	if len(kinds) == 0 {
		t.Fatal("PrefetchKinds returned nothing")
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("PrefetchKinds lists %q twice", k)
		}
		seen[k] = true
		p := minimal(k)
		if err := p.Validate(); err != nil {
			t.Errorf("kind %q is listed but its minimal spec fails Validate: %v", k, err)
			continue
		}
		s := NLSTable(1024)
		s.Prefetch = &p
		if err := s.Validate(); err != nil {
			t.Errorf("kind %q: full spec fails Validate: %v", k, err)
			continue
		}
		e, err := s.Build()
		if err != nil {
			t.Errorf("kind %q validated but Build failed: %v", k, err)
			continue
		}
		if !strings.Contains(e.Name(), k) {
			t.Errorf("kind %q: engine name %q does not surface the prefetcher", k, e.Name())
		}
	}
	if !seen[PrefKindNextLine] || !seen[PrefKindFDIP] {
		t.Errorf("PrefetchKinds missing core kinds: %v", kinds)
	}
	if err := (PrefetchSpec{Kind: "nonsense"}).Validate(); err == nil {
		t.Error("Validate accepted a kind PrefetchKinds does not list")
	}
}

// TestPrefetchSpecValidate: hostile field mixes must come back as errors —
// never panics — through both the coupled- and decoupled-direction paths of
// Spec.Validate, and meaningless fields are rejected rather than ignored.
func TestPrefetchSpecValidate(t *testing.T) {
	mut := func(f func(*PrefetchSpec)) PrefetchSpec {
		p := PrefetchSpec{Kind: PrefKindFDIP, FTQDepth: 8}
		f(&p)
		return p
	}
	bad := []struct {
		name string
		p    PrefetchSpec
		want string
	}{
		{"empty kind", PrefetchSpec{}, "unknown prefetch kind"},
		{"unknown kind", PrefetchSpec{Kind: "stream"}, "unknown prefetch kind"},
		{"fdip without ftq", mut(func(p *PrefetchSpec) { p.FTQDepth = 0 }), "ftq_depth"},
		{"fdip oversized ftq", mut(func(p *PrefetchSpec) { p.FTQDepth = MaxPrefetchFTQDepth + 1 }), "ftq_depth"},
		{"fdip negative ftq", mut(func(p *PrefetchSpec) { p.FTQDepth = -8 }), "ftq_depth"},
		{"fdip with degree", mut(func(p *PrefetchSpec) { p.Degree = 2 }), "no degree"},
		{"next-line with ftq", PrefetchSpec{Kind: PrefKindNextLine, FTQDepth: 8}, "no ftq_depth"},
		{"next-line oversized degree", PrefetchSpec{Kind: PrefKindNextLine, Degree: MaxPrefetchDegree + 1}, "degree"},
		{"next-line negative degree", PrefetchSpec{Kind: PrefKindNextLine, Degree: -1}, "degree"},
		{"oversized mshrs", mut(func(p *PrefetchSpec) { p.MSHRs = MaxPrefetchMSHRs + 1 }), "mshrs"},
		{"negative mshrs", mut(func(p *PrefetchSpec) { p.MSHRs = -1 }), "mshrs"},
		{"oversized latency", mut(func(p *PrefetchSpec) { p.Latency = MaxPrefetchLatency + 1 }), "latency"},
		{"negative latency", mut(func(p *PrefetchSpec) { p.Latency = -1 }), "latency"},
	}
	for _, c := range bad {
		p := c.p
		if err := p.Validate(); err == nil {
			t.Errorf("%s: PrefetchSpec.Validate accepted it", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		// The block must be rejected through Spec.Validate on both direction
		// styles: decoupled (nls-table + PHT) and coupled (johnson), whose
		// early return must not skip the prefetch checks.
		for _, base := range []Spec{NLSTable(1024), Johnson()} {
			base.Prefetch = &p
			if err := base.Validate(); err == nil {
				t.Errorf("%s: Spec.Validate (%s) accepted it", c.name, base.Predictor.Kind)
			}
		}
	}
}

// TestPrefetchSpecJSONStability: a nil Prefetch block must serialize exactly
// as before the field existed — the store keys of every pre-§14 cell hash
// the canonical JSON, so omitempty is load-bearing — and a populated block
// round-trips losslessly.
func TestPrefetchSpecJSONStability(t *testing.T) {
	buf, err := json.Marshal(NLSTable(1024))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(buf), "prefetch") {
		t.Errorf("nil prefetch block leaked into the wire format: %s", buf)
	}

	s := NLSTable(1024)
	s.Prefetch = &PrefetchSpec{Kind: PrefKindFDIP, FTQDepth: 8, MSHRs: 16, Latency: 30}
	buf, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Spec
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Prefetch == nil || *decoded.Prefetch != *s.Prefetch {
		t.Errorf("prefetch block round trip lost information: %+v", decoded.Prefetch)
	}
}

// TestPrefetchBuildMatchesHandWired: a spec-built prefetching engine is
// counter-for-counter identical to the same machine wired by hand through
// the fetch constructors — including the registered paper arms.
func TestPrefetchBuildMatchesHandWired(t *testing.T) {
	tr, err := workload.Li().Trace(60_000)
	if err != nil {
		t.Fatal(err)
	}
	chunks := func() trace.ChunkSource {
		return trace.Chunk(tr, trace.DefaultChunkRecords).Chunks()
	}
	hand := func(wire func(e *fetch.NLSEngine)) *fetch.NLSEngine {
		g := cache.MustGeometry(16*1024, LineBytes, 1)
		e := fetch.NewNLSTableEngine(g, 1024, pht.NewGShare(PHTEntries, PHTHistoryBits), 32)
		wire(e)
		return e
	}

	for _, c := range []struct {
		arch string
		wire func(e *fetch.NLSEngine)
	}{
		{"nls-table-1024-nextline", func(e *fetch.NLSEngine) {
			ic := e.ICache()
			ic.EnablePrefetch(defaultPrefetchMSHRs, defaultPrefetchLatency)
			e.AttachPrefetcher(fetch.NewNextLinePrefetcher(ic, 1))
		}},
		{"nls-table-1024-fdip", func(e *fetch.NLSEngine) {
			ic := e.ICache()
			ic.EnablePrefetch(defaultPrefetchMSHRs, defaultPrefetchLatency)
			e.SetFTQDepth(8)
			e.AttachPrefetcher(fetch.NewFDIPPrefetcher(ic))
		}},
	} {
		s, ok := Lookup(c.arch)
		if !ok {
			t.Fatalf("registry missing %s", c.arch)
		}
		mh := fetch.RunChunks(hand(c.wire), chunks())
		ms := fetch.RunChunks(s.MustBuild(), chunks())
		if *mh != *ms {
			t.Errorf("%s: spec-built counters diverge from hand-wired\n spec %+v\n hand %+v",
				c.arch, *ms, *mh)
		}
		if ms.PrefIssued == 0 {
			t.Errorf("%s: spec-built engine issued no prefetches", c.arch)
		}
	}
}
