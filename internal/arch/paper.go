package arch

import "fmt"

// Paper-fixed parameters (§5.1): 32-byte lines, a 4096-entry gshare PHT for
// every decoupled architecture, a 32-entry return stack, 2 NLS predictors
// per line for the NLS-cache, and a 16KB direct-mapped cache as the default
// simulation point. internal/experiments aliases these so the sweep matrix
// and the registry cannot drift apart.
const (
	LineBytes      = 32
	PHTEntries     = 4096
	NLSPerLine     = 2
	DefaultCacheKB = 16

	// PHTHistoryBits is the gshare global-history width. The paper XORs
	// "the global history register" with the PC into the 4096-entry PHT
	// without fixing the register's width; McFarling's TN-36 tunes
	// history length separately from index width. Our synthetic traces
	// carry more history entropy than real SPEC92 code (independent
	// per-site generators), so a 6-bit history is the calibration that
	// lands conditional accuracy in the paper-era 82–91% band; the full
	// 12-bit history over-disperses PHT state on these traces. The
	// accuracy is identical for the NLS and BTB architectures either
	// way, which is what the paper's methodology requires (§5.1).
	PHTHistoryBits = 6
)

// paperCache is the default simulation point shared by the registered specs.
func paperCache() CacheSpec {
	return CacheSpec{SizeBytes: DefaultCacheKB * 1024, LineBytes: LineBytes, Assoc: 1}
}

// PaperPHT returns the paper's direction predictor spec: 4096-entry gshare.
func PaperPHT() PHTSpec {
	return PHTSpec{Kind: "gshare", Entries: PHTEntries, HistoryBits: PHTHistoryBits}
}

// TAGEPHT returns the equal-cost TAGE-lite direction predictor (DESIGN.md
// §13): a 512-entry bimodal base plus four 128-entry tagged tables with
// 9-bit tags over geometric history lengths 4..64. Storage is 2·512 +
// 4·128·(9+3+2) + 64 = 8256 bits against the paper gshare's 2·4096 + 6 =
// 8198 — within 0.7%, so h2p rows compare predictors, not budgets. The
// long tables are what the ROADMAP's H2P item buys: loop exits and
// duty-cycle patterns with periods beyond gshare's 6-bit history become
// learnable.
func TAGEPHT() PHTSpec {
	return PHTSpec{
		Kind: PHTKindTAGE, Entries: 512,
		TageTables: 4, TageEntries: 128, TageTagBits: 9,
		TageMinHist: 4, TageMaxHist: 64,
	}
}

// NLSTable returns the paper's NLS-table architecture at the given table
// size (§4.1), on the default cache.
func NLSTable(entries int) Spec {
	return Spec{
		Predictor: PredictorSpec{Kind: KindNLSTable, Entries: entries},
		Cache:     paperCache(),
		PHT:       PaperPHT(),
	}
}

// NLSCache returns the paper's line-coupled NLS architecture (§4.1) with
// perLine predictors per line, on the default cache.
func NLSCache(perLine int) Spec {
	return Spec{
		Predictor: PredictorSpec{Kind: KindNLSCache, PerLine: perLine},
		Cache:     paperCache(),
		PHT:       PaperPHT(),
	}
}

// BTB returns the paper's decoupled BTB architecture (§3), on the default
// cache.
func BTB(entries, assoc int) Spec {
	return Spec{
		Predictor: PredictorSpec{Kind: KindBTB, Entries: entries, Assoc: assoc},
		Cache:     paperCache(),
		PHT:       PaperPHT(),
	}
}

// CoupledBTB returns the Pentium-style coupled BTB baseline (§2), on the
// default cache.
func CoupledBTB(entries, assoc int) Spec {
	return Spec{
		Predictor: PredictorSpec{Kind: KindCoupledBTB, Entries: entries, Assoc: assoc},
		Cache:     paperCache(),
	}
}

// Johnson returns the successor-index baseline (§6.2), on the default
// cache.
func Johnson() Spec {
	return Spec{
		Predictor: PredictorSpec{Kind: KindJohnson},
		Cache:     paperCache(),
	}
}

// Hybrid returns the NLS+BTB hybrid (the ROADMAP extension): an NLS-table
// pointer consulted first with a small BTB supplying full addresses where
// they win — unknown branches, displaced target lines, and returns the RAS
// cannot serve — on the default cache. tableEntries sizes the NLS-table
// half, btbEntries/btbAssoc the fallback BTB.
func Hybrid(tableEntries, btbEntries, btbAssoc int) Spec {
	return Spec{
		Predictor: PredictorSpec{
			Kind: KindHybrid, Entries: tableEntries,
			BTBEntries: btbEntries, BTBAssoc: btbAssoc,
		},
		Cache: paperCache(),
		PHT:   PaperPHT(),
	}
}

func init() {
	for _, entries := range []int{512, 1024, 2048} {
		Register(fmt.Sprintf("nls-table-%d", entries), NLSTable(entries))
	}
	Register("nls-cache", NLSCache(NLSPerLine))
	for _, entries := range []int{128, 256} {
		Register(fmt.Sprintf("btb-%d", entries), BTB(entries, 1))
		Register(fmt.Sprintf("btb-%dx4", entries), BTB(entries, 4))
	}
	Register("coupled-btb-128", CoupledBTB(128, 1))
	Register("johnson", Johnson())
	// The headline NLS-table with its gshare PHT swapped for the
	// equal-cost TAGE-lite arm — the h2p figure's comparison point.
	tage := NLSTable(1024)
	tage.PHT = TAGEPHT()
	Register("nls-table-1024-tage", tage)
	// The equal-cost hybrid point: a 512-entry NLS-table (half the paper's
	// headline table) plus a 64-entry direct BTB lands near the 1024-entry
	// NLS-table / 128-entry BTB storage band of Figure 5.
	Register("hybrid-512-64", Hybrid(512, 64, 1))
	// The headline NLS-table with each prefetch arm of the DESIGN.md §14
	// prefetch figure attached: sequential next-line, and fetch-directed
	// (FDIP) driven by an 8-deep FTQ. Reference MSHR/latency sizing.
	nl := NLSTable(1024)
	nl.Prefetch = &PrefetchSpec{Kind: PrefKindNextLine}
	Register("nls-table-1024-nextline", nl)
	fdip := NLSTable(1024)
	fdip.Prefetch = &PrefetchSpec{Kind: PrefKindFDIP, FTQDepth: 8}
	Register("nls-table-1024-fdip", fdip)
}
