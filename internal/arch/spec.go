// Package arch provides a declarative, JSON-serializable description of a
// complete fetch-architecture configuration — target predictor, instruction
// cache geometry, direction predictor, return stack, and wrong-path
// modelling — plus a registry of named paper configurations. A Spec is the
// single source from which CLIs, experiments, and examples build engines,
// so a new architecture variant is a value, not another copy of engine
// wiring.
package arch

import (
	"fmt"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/pht"
	"repro/internal/ras"
)

// Predictor kinds accepted by PredictorSpec.Kind.
const (
	KindNLSTable   = "nls-table"
	KindNLSCache   = "nls-cache"
	KindBTB        = "btb"
	KindCoupledBTB = "coupled-btb"
	KindJohnson    = "johnson"
	KindHybrid     = "hybrid"
)

// PredictorSpec selects and sizes the target predictor.
type PredictorSpec struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Entries sizes the NLS-table or the BTB (power of two).
	Entries int `json:"entries,omitempty"`
	// Assoc is the BTB associativity (btb / coupled-btb only).
	Assoc int `json:"assoc,omitempty"`
	// PerLine is the number of line-coupled predictors (nls-cache only).
	PerLine int `json:"per_line,omitempty"`
	// BTBEntries and BTBAssoc size the fallback BTB of the hybrid
	// predictor (hybrid only; Entries sizes its NLS-table half).
	BTBEntries int `json:"btb_entries,omitempty"`
	BTBAssoc   int `json:"btb_assoc,omitempty"`
}

// CacheSpec sizes the instruction cache.
type CacheSpec struct {
	SizeBytes int `json:"size_bytes"`
	LineBytes int `json:"line_bytes"`
	Assoc     int `json:"assoc"`
}

// Geometry converts the spec to a validated cache geometry.
func (c CacheSpec) Geometry() (cache.Geometry, error) {
	return cache.NewGeometry(c.SizeBytes, c.LineBytes, c.Assoc)
}

// PHTSpec selects and sizes the decoupled direction predictor. Predictors
// with coupled direction state (coupled-btb, johnson) take no PHT; leave
// Kind empty or "none" for them.
type PHTSpec struct {
	// Kind: "gshare", "gas", "bimodal", "1bit", "static-taken",
	// "static-not-taken", or "none".
	Kind string `json:"kind"`
	// Entries is the table size (gshare, gas, bimodal, 1bit).
	Entries int `json:"entries,omitempty"`
	// HistoryBits is the gshare global-history width.
	HistoryBits int `json:"history_bits,omitempty"`
}

// none reports whether the spec declares no direction predictor.
func (p PHTSpec) none() bool { return p.Kind == "" || p.Kind == "none" }

// Build constructs the direction predictor the spec describes.
func (p PHTSpec) Build() (pht.Predictor, error) {
	switch p.Kind {
	case "gshare":
		return pht.NewGShare(p.Entries, p.HistoryBits), nil
	case "gas":
		return pht.NewGAs(p.Entries), nil
	case "bimodal":
		return pht.NewBimodal(p.Entries), nil
	case "1bit":
		return pht.NewOneBit(p.Entries), nil
	case "static-taken":
		return pht.Static{Taken: true}, nil
	case "static-not-taken":
		return pht.Static{}, nil
	}
	return nil, fmt.Errorf("arch: unknown PHT kind %q", p.Kind)
}

// Spec is a complete, declarative fetch-architecture configuration.
type Spec struct {
	Predictor PredictorSpec `json:"predictor"`
	Cache     CacheSpec     `json:"cache"`
	// PHT is the decoupled direction predictor; ignored (must be empty or
	// "none") for coupled-direction predictor kinds.
	PHT PHTSpec `json:"pht,omitempty"`
	// RASDepth is the return-stack depth; 0 selects ras.DefaultDepth.
	RASDepth int `json:"ras_depth,omitempty"`
	// Pollution enables wrong-path fetch pollution modelling (§5.2).
	Pollution bool `json:"wrong_path_pollution,omitempty"`
}

// WithGeometry returns a copy of the spec with the cache geometry replaced
// — the sweep axis that varies per cell while the architecture stays fixed.
func (s Spec) WithGeometry(g cache.Geometry) Spec {
	s.Cache = CacheSpec{SizeBytes: g.SizeBytes(), LineBytes: g.LineBytes(), Assoc: g.Assoc()}
	return s
}

// Validate checks the spec without building anything.
func (s Spec) Validate() error {
	if _, err := s.Cache.Geometry(); err != nil {
		return err
	}
	coupledDir := false
	switch s.Predictor.Kind {
	case KindNLSTable:
		if s.Predictor.Entries <= 0 {
			return fmt.Errorf("arch: %s needs entries > 0", s.Predictor.Kind)
		}
	case KindNLSCache:
		if s.Predictor.PerLine <= 0 {
			return fmt.Errorf("arch: %s needs per_line > 0", s.Predictor.Kind)
		}
	case KindBTB, KindCoupledBTB:
		if err := (btb.Config{Entries: s.Predictor.Entries, Assoc: s.Predictor.Assoc}).Validate(); err != nil {
			return err
		}
		coupledDir = s.Predictor.Kind == KindCoupledBTB
	case KindHybrid:
		if s.Predictor.Entries <= 0 {
			return fmt.Errorf("arch: %s needs entries > 0 for its NLS-table half", s.Predictor.Kind)
		}
		if err := (btb.Config{Entries: s.Predictor.BTBEntries, Assoc: s.Predictor.BTBAssoc}).Validate(); err != nil {
			return err
		}
	case KindJohnson:
		coupledDir = true
	default:
		return fmt.Errorf("arch: unknown predictor kind %q", s.Predictor.Kind)
	}
	if coupledDir {
		if !s.PHT.none() {
			return fmt.Errorf("arch: %s couples direction prediction; PHT must be \"none\"", s.Predictor.Kind)
		}
		return nil
	}
	if s.PHT.none() {
		return fmt.Errorf("arch: %s needs a PHT", s.Predictor.Kind)
	}
	_, err := s.PHT.Build()
	return err
}

// Build constructs the fetch engine the spec describes.
func (s Spec) Build() (fetch.Engine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := s.Cache.Geometry()
	if err != nil {
		return nil, err
	}
	depth := s.RASDepth
	if depth <= 0 {
		depth = ras.DefaultDepth
	}
	dir := pht.Predictor(nil)
	if !s.PHT.none() {
		if dir, err = s.PHT.Build(); err != nil {
			return nil, err
		}
	}

	switch s.Predictor.Kind {
	case KindNLSTable:
		e := fetch.NewNLSTableEngine(g, s.Predictor.Entries, dir, depth)
		e.SetWrongPathPollution(s.Pollution)
		return e, nil
	case KindNLSCache:
		e := fetch.NewNLSCacheEngine(g, s.Predictor.PerLine, dir, depth)
		e.SetWrongPathPollution(s.Pollution)
		return e, nil
	case KindBTB:
		cfg := btb.Config{Entries: s.Predictor.Entries, Assoc: s.Predictor.Assoc}
		e := fetch.NewBTBEngine(g, cfg, dir, depth)
		e.SetWrongPathPollution(s.Pollution)
		return e, nil
	case KindCoupledBTB:
		cfg := btb.Config{Entries: s.Predictor.Entries, Assoc: s.Predictor.Assoc}
		e := fetch.NewCoupledBTBEngine(g, cfg, depth)
		e.SetWrongPathPollution(s.Pollution)
		return e, nil
	case KindJohnson:
		e := fetch.NewJohnsonEngine(g)
		e.SetWrongPathPollution(s.Pollution)
		return e, nil
	case KindHybrid:
		cfg := btb.Config{Entries: s.Predictor.BTBEntries, Assoc: s.Predictor.BTBAssoc}
		e := fetch.NewHybridEngine(g, s.Predictor.Entries, cfg, dir, depth)
		e.SetWrongPathPollution(s.Pollution)
		return e, nil
	}
	return nil, fmt.Errorf("arch: unknown predictor kind %q", s.Predictor.Kind)
}

// MustBuild is Build panicking on error, for registered (pre-validated)
// specs and tests.
func (s Spec) MustBuild() fetch.Engine {
	e, err := s.Build()
	if err != nil {
		panic(err)
	}
	return e
}
