// Package arch provides a declarative, JSON-serializable description of a
// complete fetch-architecture configuration — target predictor, instruction
// cache geometry, direction predictor, return stack, and wrong-path
// modelling — plus a registry of named paper configurations. A Spec is the
// single source from which CLIs, experiments, and examples build engines,
// so a new architecture variant is a value, not another copy of engine
// wiring.
package arch

import (
	"fmt"
	"math/bits"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/pht"
	"repro/internal/ras"
)

// Upper bounds on every field of a Spec that sizes an allocation. Specs
// arrive from untrusted JSON (the sweep service's job decoder), so Validate
// must reject anything outside these bounds BEFORE Build allocates tables
// from it. The caps are far above any configuration the paper or the
// roadmap sweeps (multi-MB predictors, 256KB+ caches) while keeping the
// worst accepted spec's footprint in the tens of megabytes.
const (
	// MaxPredictorEntries bounds NLS-table, BTB, and hybrid table sizes.
	MaxPredictorEntries = 1 << 22
	// MaxPHTEntries bounds the direction-predictor table.
	MaxPHTEntries = 1 << 24
	// MaxCacheBytes bounds the simulated instruction-cache capacity.
	MaxCacheBytes = 1 << 28
	// MaxRASDepth bounds the return-stack depth.
	MaxRASDepth = 1 << 16
	// MaxPrefetchFTQDepth bounds the fetch-target queue of a decoupled
	// (fdip) frontend.
	MaxPrefetchFTQDepth = 1 << 10
	// MaxPrefetchDegree bounds the next-line prefetch degree.
	MaxPrefetchDegree = 8
	// MaxPrefetchMSHRs bounds the prefetch miss-status holding registers.
	MaxPrefetchMSHRs = 256
	// MaxPrefetchLatency bounds the modelled prefetch fill latency
	// (accesses).
	MaxPrefetchLatency = 1 << 20
)

// pow2InRange reports whether n is a power of two in [1, max].
func pow2InRange(n, max int) bool {
	return n > 0 && n <= max && bits.OnesCount(uint(n)) == 1
}

// Predictor kinds accepted by PredictorSpec.Kind.
const (
	KindNLSTable   = "nls-table"
	KindNLSCache   = "nls-cache"
	KindBTB        = "btb"
	KindCoupledBTB = "coupled-btb"
	KindJohnson    = "johnson"
	KindHybrid     = "hybrid"
)

// PredictorSpec selects and sizes the target predictor.
type PredictorSpec struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Entries sizes the NLS-table or the BTB (power of two).
	Entries int `json:"entries,omitempty"`
	// Assoc is the BTB associativity (btb / coupled-btb only).
	Assoc int `json:"assoc,omitempty"`
	// PerLine is the number of line-coupled predictors (nls-cache only).
	PerLine int `json:"per_line,omitempty"`
	// BTBEntries and BTBAssoc size the fallback BTB of the hybrid
	// predictor (hybrid only; Entries sizes its NLS-table half).
	BTBEntries int `json:"btb_entries,omitempty"`
	BTBAssoc   int `json:"btb_assoc,omitempty"`
}

// CacheSpec sizes the instruction cache.
type CacheSpec struct {
	SizeBytes int `json:"size_bytes"`
	LineBytes int `json:"line_bytes"`
	Assoc     int `json:"assoc"`
}

// Geometry converts the spec to a validated cache geometry.
func (c CacheSpec) Geometry() (cache.Geometry, error) {
	return cache.NewGeometry(c.SizeBytes, c.LineBytes, c.Assoc)
}

// Direction-predictor kinds accepted by PHTSpec.Kind.
const (
	PHTKindGShare         = "gshare"
	PHTKindGAs            = "gas"
	PHTKindBimodal        = "bimodal"
	PHTKindOneBit         = "1bit"
	PHTKindTAGE           = "tage"
	PHTKindStaticTaken    = "static-taken"
	PHTKindStaticNotTaken = "static-not-taken"
	PHTKindNone           = "none"
)

// PHTKinds returns every accepted PHTSpec.Kind, in presentation order
// (what `nlssim -list` enumerates). Kept in lockstep with PHTSpec.Validate
// by TestPHTKindsCoverValidate.
func PHTKinds() []string {
	return []string{
		PHTKindGShare, PHTKindGAs, PHTKindBimodal, PHTKindOneBit, PHTKindTAGE,
		PHTKindStaticTaken, PHTKindStaticNotTaken, PHTKindNone,
	}
}

// Prefetcher kinds accepted by PrefetchSpec.Kind.
const (
	PrefKindNextLine = "next-line"
	PrefKindFDIP     = "fdip"
)

// PrefetchKinds returns every accepted PrefetchSpec.Kind, in presentation
// order (what `nlssim -list` enumerates). Kept in lockstep with
// PrefetchSpec.Validate by TestPrefetchKindsCoverValidate.
func PrefetchKinds() []string {
	return []string{PrefKindNextLine, PrefKindFDIP}
}

// PrefetchSpec selects and sizes the i-cache prefetcher of the decoupled
// frontend (DESIGN.md §14). The whole spec is optional — a Spec without one
// keeps the fused fetch path, bit-identical to pre-§14 behaviour — and
// every sizing field defaults to the reference configuration when 0.
type PrefetchSpec struct {
	// Kind is one of the PrefKind* constants.
	Kind string `json:"kind"`
	// FTQDepth sizes the fetch-target queue (fdip only; must be >= 1
	// there, must be 0 for next-line, which needs no BPU run-ahead).
	FTQDepth int `json:"ftq_depth,omitempty"`
	// Degree is the number of sequential lines prefetched per fetch-block
	// access (next-line only; 0 selects 1).
	Degree int `json:"degree,omitempty"`
	// MSHRs bounds the in-flight prefetches (0 selects 8).
	MSHRs int `json:"mshrs,omitempty"`
	// Latency is the prefetch fill latency in i-cache accesses (0 selects
	// 20).
	Latency int `json:"latency,omitempty"`
}

// Reference prefetch sizing, substituted for zero fields at Build time.
const (
	defaultPrefetchMSHRs   = 8
	defaultPrefetchLatency = 20
	defaultPrefetchDegree  = 1
)

// Validate checks the prefetch spec without building it: untrusted fields
// that size allocations (FTQ entries, MSHR map) or loop bounds (degree) are
// capped here, and fields meaningless for the kind are rejected rather than
// silently ignored so job documents stay canonical.
func (p PrefetchSpec) Validate() error {
	if p.MSHRs < 0 || p.MSHRs > MaxPrefetchMSHRs {
		return fmt.Errorf("arch: prefetch mshrs %d out of range [0, %d]", p.MSHRs, MaxPrefetchMSHRs)
	}
	if p.Latency < 0 || p.Latency > MaxPrefetchLatency {
		return fmt.Errorf("arch: prefetch latency %d out of range [0, %d]", p.Latency, MaxPrefetchLatency)
	}
	switch p.Kind {
	case PrefKindNextLine:
		if p.FTQDepth != 0 {
			return fmt.Errorf("arch: prefetch %q takes no ftq_depth (got %d)", p.Kind, p.FTQDepth)
		}
		if p.Degree < 0 || p.Degree > MaxPrefetchDegree {
			return fmt.Errorf("arch: prefetch degree %d out of range [0, %d]", p.Degree, MaxPrefetchDegree)
		}
		return nil
	case PrefKindFDIP:
		if p.Degree != 0 {
			return fmt.Errorf("arch: prefetch %q takes no degree (got %d)", p.Kind, p.Degree)
		}
		if p.FTQDepth < 1 || p.FTQDepth > MaxPrefetchFTQDepth {
			return fmt.Errorf("arch: prefetch ftq_depth %d out of range [1, %d]", p.FTQDepth, MaxPrefetchFTQDepth)
		}
		return nil
	}
	return fmt.Errorf("arch: unknown prefetch kind %q", p.Kind)
}

// PHTSpec selects and sizes the decoupled direction predictor. Predictors
// with coupled direction state (coupled-btb, johnson) take no PHT; leave
// Kind empty or "none" for them.
type PHTSpec struct {
	// Kind is one of the PHTKind* constants.
	Kind string `json:"kind"`
	// Entries is the table size (gshare, gas, bimodal, 1bit) or, for
	// tage, the bimodal base-table size.
	Entries int `json:"entries,omitempty"`
	// HistoryBits is the gshare global-history width.
	HistoryBits int `json:"history_bits,omitempty"`

	// TAGE geometry (Kind "tage" only; see pht.TAGEConfig). Every field
	// is omitempty so pre-TAGE specs keep their canonical JSON — and
	// therefore their content hashes, store keys, and warm-response
	// byte-identity — unchanged.
	TageTables  int `json:"tage_tables,omitempty"`
	TageEntries int `json:"tage_entries,omitempty"`
	TageTagBits int `json:"tage_tag_bits,omitempty"`
	TageMinHist int `json:"tage_min_hist,omitempty"`
	TageMaxHist int `json:"tage_max_hist,omitempty"`
}

// none reports whether the spec declares no direction predictor.
func (p PHTSpec) none() bool { return p.Kind == "" || p.Kind == PHTKindNone }

// tage converts the spec's TAGE fields to the pht-level configuration.
func (p PHTSpec) tage() pht.TAGEConfig {
	return pht.TAGEConfig{
		BaseEntries: p.Entries, Tables: p.TageTables, Entries: p.TageEntries,
		TagBits: p.TageTagBits, MinHist: p.TageMinHist, MaxHist: p.TageMaxHist,
	}
}

// Validate checks the spec without building it: the error-returning gate
// (shared with pht.CheckEntries and pht.TAGEConfig.Validate) that rejects
// an untrusted spec before any allocation is sized from it. Build also
// calls it, so even a Build bypassing Spec.Validate cannot panic.
func (p PHTSpec) Validate() error {
	if p.Kind != PHTKindTAGE {
		if p.TageTables != 0 || p.TageEntries != 0 || p.TageTagBits != 0 ||
			p.TageMinHist != 0 || p.TageMaxHist != 0 {
			return fmt.Errorf("arch: pht %q accepts no tage_* fields", p.Kind)
		}
	}
	switch p.Kind {
	case "", PHTKindNone, PHTKindStaticTaken, PHTKindStaticNotTaken:
		return nil
	case PHTKindGShare, PHTKindGAs, PHTKindBimodal, PHTKindOneBit:
		if err := pht.CheckEntries(p.Entries); err != nil {
			return fmt.Errorf("arch: pht %q: %w", p.Kind, err)
		}
		if p.Entries > MaxPHTEntries {
			return fmt.Errorf("arch: pht %q entries %d exceeds the %d cap", p.Kind, p.Entries, MaxPHTEntries)
		}
		if p.HistoryBits < 0 || p.HistoryBits > 64 {
			return fmt.Errorf("arch: pht history_bits %d out of range [0, 64]", p.HistoryBits)
		}
		return nil
	case PHTKindTAGE:
		if p.HistoryBits != 0 {
			return fmt.Errorf("arch: pht tage sizes history via tage_min_hist/tage_max_hist, not history_bits")
		}
		if p.Entries > MaxPHTEntries || p.TageEntries > MaxPHTEntries {
			return fmt.Errorf("arch: pht tage tables exceed the %d-entry cap", MaxPHTEntries)
		}
		return p.tage().Validate()
	}
	return fmt.Errorf("arch: unknown PHT kind %q", p.Kind)
}

// Build constructs the direction predictor the spec describes — a legacy
// pht.Predictor or a protocol-native pht.DirectionPredictor, behind the
// pht.Directional surface every engine constructor accepts. It validates
// first: a hostile spec gets an error here, never a panic.
func (p PHTSpec) Build() (pht.Directional, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch p.Kind {
	case "", PHTKindNone:
		// Coupled architectures carry no decoupled PHT; the fetch layer's
		// AsDirection(nil) substitutes an inert static predictor.
		return nil, nil
	case PHTKindGShare:
		return pht.NewGShare(p.Entries, p.HistoryBits), nil
	case PHTKindGAs:
		return pht.NewGAs(p.Entries), nil
	case PHTKindBimodal:
		return pht.NewBimodal(p.Entries), nil
	case PHTKindOneBit:
		return pht.NewOneBit(p.Entries), nil
	case PHTKindTAGE:
		return pht.NewTAGE(p.tage())
	case PHTKindStaticTaken:
		return pht.Static{Taken: true}, nil
	case PHTKindStaticNotTaken:
		return pht.Static{}, nil
	}
	return nil, fmt.Errorf("arch: unknown PHT kind %q", p.Kind)
}

// Spec is a complete, declarative fetch-architecture configuration.
type Spec struct {
	Predictor PredictorSpec `json:"predictor"`
	Cache     CacheSpec     `json:"cache"`
	// PHT is the decoupled direction predictor; ignored (must be empty or
	// "none") for coupled-direction predictor kinds.
	PHT PHTSpec `json:"pht,omitempty"`
	// RASDepth is the return-stack depth; 0 selects ras.DefaultDepth.
	RASDepth int `json:"ras_depth,omitempty"`
	// Pollution enables wrong-path fetch pollution modelling (§5.2).
	Pollution bool `json:"wrong_path_pollution,omitempty"`
	// Prefetch, when non-nil, attaches an i-cache prefetcher (DESIGN.md
	// §14). A pointer with omitempty so every pre-prefetch spec keeps its
	// canonical JSON — and therefore its content hashes, store keys, and
	// warm-response byte-identity — unchanged.
	Prefetch *PrefetchSpec `json:"prefetch,omitempty"`
}

// WithGeometry returns a copy of the spec with the cache geometry replaced
// — the sweep axis that varies per cell while the architecture stays fixed.
func (s Spec) WithGeometry(g cache.Geometry) Spec {
	s.Cache = CacheSpec{SizeBytes: g.SizeBytes(), LineBytes: g.LineBytes(), Assoc: g.Assoc()}
	return s
}

// Validate checks the spec without building anything. It is the gate
// between untrusted input and Build: everything Build (or a constructor it
// calls) would panic on or size an allocation from — non-power-of-two
// tables, a per_line that does not divide the line, out-of-range sizes —
// must be rejected here.
func (s Spec) Validate() error {
	g, err := s.Cache.Geometry()
	if err != nil {
		return err
	}
	if s.Cache.SizeBytes > MaxCacheBytes {
		return fmt.Errorf("arch: cache size %d exceeds the %d-byte cap", s.Cache.SizeBytes, MaxCacheBytes)
	}
	if s.RASDepth > MaxRASDepth {
		return fmt.Errorf("arch: ras_depth %d exceeds the %d cap", s.RASDepth, MaxRASDepth)
	}
	coupledDir := false
	switch s.Predictor.Kind {
	case KindNLSTable:
		if !pow2InRange(s.Predictor.Entries, MaxPredictorEntries) {
			return fmt.Errorf("arch: %s entries %d must be a power of two in [1, %d]",
				s.Predictor.Kind, s.Predictor.Entries, MaxPredictorEntries)
		}
	case KindNLSCache:
		if s.Predictor.PerLine <= 0 || g.InstrsPerLine()%s.Predictor.PerLine != 0 {
			return fmt.Errorf("arch: %s per_line %d must divide the %d instructions per %d-byte line",
				s.Predictor.Kind, s.Predictor.PerLine, g.InstrsPerLine(), g.LineBytes())
		}
	case KindBTB, KindCoupledBTB:
		if err := (btb.Config{Entries: s.Predictor.Entries, Assoc: s.Predictor.Assoc}).Validate(); err != nil {
			return err
		}
		if s.Predictor.Entries > MaxPredictorEntries {
			return fmt.Errorf("arch: %s entries %d exceeds the %d cap",
				s.Predictor.Kind, s.Predictor.Entries, MaxPredictorEntries)
		}
		coupledDir = s.Predictor.Kind == KindCoupledBTB
	case KindHybrid:
		if !pow2InRange(s.Predictor.Entries, MaxPredictorEntries) {
			return fmt.Errorf("arch: %s entries %d (NLS-table half) must be a power of two in [1, %d]",
				s.Predictor.Kind, s.Predictor.Entries, MaxPredictorEntries)
		}
		if err := (btb.Config{Entries: s.Predictor.BTBEntries, Assoc: s.Predictor.BTBAssoc}).Validate(); err != nil {
			return err
		}
		if s.Predictor.BTBEntries > MaxPredictorEntries {
			return fmt.Errorf("arch: %s btb_entries %d exceeds the %d cap",
				s.Predictor.Kind, s.Predictor.BTBEntries, MaxPredictorEntries)
		}
	case KindJohnson:
		coupledDir = true
	default:
		return fmt.Errorf("arch: unknown predictor kind %q", s.Predictor.Kind)
	}
	if coupledDir {
		if !s.PHT.none() {
			return fmt.Errorf("arch: %s couples direction prediction; PHT must be \"none\"", s.Predictor.Kind)
		}
		return s.validatePrefetch()
	}
	if s.PHT.none() {
		return fmt.Errorf("arch: %s needs a PHT", s.Predictor.Kind)
	}
	if err := s.PHT.Validate(); err != nil {
		return err
	}
	return s.validatePrefetch()
}

// validatePrefetch applies the optional prefetch block's checks (shared by
// the coupled-direction early return and the decoupled tail of Validate).
func (s Spec) validatePrefetch() error {
	if s.Prefetch == nil {
		return nil
	}
	return s.Prefetch.Validate()
}

// Build constructs the fetch engine the spec describes.
func (s Spec) Build() (fetch.Engine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := s.Cache.Geometry()
	if err != nil {
		return nil, err
	}
	depth := s.RASDepth
	if depth <= 0 {
		depth = ras.DefaultDepth
	}
	dir := pht.Directional(nil)
	if !s.PHT.none() {
		if dir, err = s.PHT.Build(); err != nil {
			return nil, err
		}
	}

	var e fetch.Engine
	switch s.Predictor.Kind {
	case KindNLSTable:
		eng := fetch.NewNLSTableEngine(g, s.Predictor.Entries, dir, depth)
		eng.SetWrongPathPollution(s.Pollution)
		e = eng
	case KindNLSCache:
		eng := fetch.NewNLSCacheEngine(g, s.Predictor.PerLine, dir, depth)
		eng.SetWrongPathPollution(s.Pollution)
		e = eng
	case KindBTB:
		cfg := btb.Config{Entries: s.Predictor.Entries, Assoc: s.Predictor.Assoc}
		eng := fetch.NewBTBEngine(g, cfg, dir, depth)
		eng.SetWrongPathPollution(s.Pollution)
		e = eng
	case KindCoupledBTB:
		cfg := btb.Config{Entries: s.Predictor.Entries, Assoc: s.Predictor.Assoc}
		eng := fetch.NewCoupledBTBEngine(g, cfg, depth)
		eng.SetWrongPathPollution(s.Pollution)
		e = eng
	case KindJohnson:
		eng := fetch.NewJohnsonEngine(g)
		eng.SetWrongPathPollution(s.Pollution)
		e = eng
	case KindHybrid:
		cfg := btb.Config{Entries: s.Predictor.BTBEntries, Assoc: s.Predictor.BTBAssoc}
		eng := fetch.NewHybridEngine(g, s.Predictor.Entries, cfg, dir, depth)
		eng.SetWrongPathPollution(s.Pollution)
		e = eng
	default:
		return nil, fmt.Errorf("arch: unknown predictor kind %q", s.Predictor.Kind)
	}
	if s.Prefetch != nil {
		if err := attachPrefetch(e, *s.Prefetch); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// attachPrefetch wires a validated PrefetchSpec into the engine's frontend:
// enable the i-cache's prefetch/MSHR model, then attach the policy (and,
// for fdip, size the FTQ that decouples the BPU from fetch).
func attachPrefetch(e fetch.Engine, p PrefetchSpec) error {
	pa, ok := e.(fetch.PrefetchAttacher)
	if !ok {
		return fmt.Errorf("arch: engine %q does not support prefetching", e.Name())
	}
	mshrs := p.MSHRs
	if mshrs == 0 {
		mshrs = defaultPrefetchMSHRs
	}
	latency := p.Latency
	if latency == 0 {
		latency = defaultPrefetchLatency
	}
	ic := pa.ICache()
	ic.EnablePrefetch(mshrs, uint64(latency))
	switch p.Kind {
	case PrefKindNextLine:
		degree := p.Degree
		if degree == 0 {
			degree = defaultPrefetchDegree
		}
		pa.AttachPrefetcher(fetch.NewNextLinePrefetcher(ic, degree))
	case PrefKindFDIP:
		pa.SetFTQDepth(p.FTQDepth)
		pa.AttachPrefetcher(fetch.NewFDIPPrefetcher(ic))
	default:
		return fmt.Errorf("arch: unknown prefetch kind %q", p.Kind)
	}
	return nil
}

// MustBuild is Build panicking on error, for registered (pre-validated)
// specs and tests.
func (s Spec) MustBuild() fetch.Engine {
	e, err := s.Build()
	if err != nil {
		panic(err)
	}
	return e
}
