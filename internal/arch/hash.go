package arch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Spec hashing for the content-addressed results store: a spec's hash is
// the SHA-256 of its canonical JSON encoding, so two specs hash equal
// exactly when every architectural parameter — predictor kind and sizing,
// cache geometry, direction predictor, RAS depth, pollution modelling —
// is equal. Geometry lives inside the spec (CacheSpec), so the hash covers
// the full (architecture × cache) simulation point.
//
// Canonical form: encoding/json marshals struct fields in declaration
// order with deterministic scalar formatting, so the encoding is a stable
// function of the value. Renaming or reordering Spec fields deliberately
// changes hashes — stored cells describe their inputs by this encoding,
// and a schema change must not silently alias old results.

// Hash returns the spec's canonical content hash as lowercase hex.
func (s Spec) Hash() string {
	buf, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable scalar fields; reaching this
		// is a programming error, not an input error.
		panic(err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
