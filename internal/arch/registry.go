package arch

import (
	"fmt"
	"sort"
	"sync"
)

// The named-spec registry. Paper configurations are registered at init
// (paper.go); callers may add their own variants with Register.
var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a named spec. It panics on a duplicate name or an invalid
// spec — registration happens at init time, where a panic is a programming
// error surfaced immediately.
func Register(name string, s Spec) {
	if err := s.Validate(); err != nil {
		panic(fmt.Errorf("arch: registering %q: %w", name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Errorf("arch: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
