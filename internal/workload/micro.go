package workload

import (
	"strconv"

	"repro/internal/cfg"
)

// Hand-built microworkloads with fully understood behaviour, used by tests
// and examples. Unlike the Table-1 analogues they are small and
// deterministic in structure (only biased sites consume randomness).

// HotLoopProgram is a doduc-in-miniature: a triple-nested counted loop with
// a couple of guards — a handful of branch sites carrying all execution.
func HotLoopProgram() (*cfg.Program, error) {
	body := []cfg.Stmt{
		cfg.Straight{N: 4},
		cfg.Loop{Trip: 50, Body: []cfg.Stmt{
			cfg.Straight{N: 3},
			cfg.Loop{Trip: 20, Body: []cfg.Stmt{
				cfg.Straight{N: 2},
				cfg.Loop{Trip: 10, Body: []cfg.Stmt{
					cfg.Straight{N: 6},
					cfg.If{Cond: cfg.BiasBehavior(0.9), Then: []cfg.Stmt{cfg.Straight{N: 3}}},
				}},
			}},
		}},
	}
	return cfg.BuildProgram("hotloop", 0, []string{"main"}, [][]cfg.Stmt{body})
}

// CallTreeProgram builds a program of `levels` tiers of procedures, each
// calling `fan` procedures of the next tier — a call/return stress test for
// the return stack and the call-site predictors.
func CallTreeProgram(levels, fan int) (*cfg.Program, error) {
	if levels < 1 {
		levels = 1
	}
	if fan < 1 {
		fan = 1
	}
	// Procedure IDs: tier t occupies a contiguous range; tier 0 is main.
	var names []string
	var bodies [][]cfg.Stmt
	// Number procedures breadth-first: one per tier per position, but
	// share procedures within a tier to keep the program small: tier t
	// has exactly one procedure called fan times by tier t-1.
	for t := 0; t < levels; t++ {
		name := "tier" + strconv.Itoa(t)
		body := []cfg.Stmt{cfg.Straight{N: 4}}
		if t+1 < levels {
			for i := 0; i < fan; i++ {
				body = append(body, cfg.Straight{N: 2}, cfg.CallTo{Callee: cfg.ProcID(t + 1)})
			}
		} else {
			body = append(body, cfg.Straight{N: 6})
		}
		names = append(names, name)
		bodies = append(bodies, body)
	}
	return cfg.BuildProgram("calltree", 0, names, bodies)
}

// InterpreterProgram is a li-in-miniature: a dispatch loop indirect-jumping
// over ops handlers, a few of which call a shared helper.
func InterpreterProgram(ops int) (*cfg.Program, error) {
	if ops < 2 {
		ops = 2
	}
	cases := make([][]cfg.Stmt, ops)
	weights := make([]float64, ops)
	for i := range cases {
		c := []cfg.Stmt{cfg.Straight{N: 3 + i%5}}
		if i%3 == 0 {
			c = append(c, cfg.CallTo{Callee: 1})
		}
		cases[i] = c
		weights[i] = 1 / float64(i+1)
	}
	main := []cfg.Stmt{
		cfg.Loop{Trip: 100, Body: []cfg.Stmt{
			cfg.Straight{N: 2},
			cfg.Switch{
				Behavior: cfg.Behavior{Kind: cfg.BehaviorIndirectSticky, P: 0.5, Weights: weights},
				Cases:    cases,
			},
		}},
	}
	helper := []cfg.Stmt{
		cfg.Straight{N: 3},
		cfg.If{Cond: cfg.BiasBehavior(0.7), Then: []cfg.Stmt{cfg.Straight{N: 4}}},
	}
	return cfg.BuildProgram("interp", 0, []string{"main", "helper"}, [][]cfg.Stmt{main, helper})
}
