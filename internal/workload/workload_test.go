package workload

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/trace"
)

func TestAllAnaloguesBuildAndValidate(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			p, err := s.Program()
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			tr, err := s.Trace(50000)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Calibration bands: the generated traces must land in the qualitative
// regime of the paper's Table 1 rows. The bands are deliberately loose —
// the reproduction needs the *shape* (which programs are branchy,
// call-heavy, concentrated, predictable), not decimal matches.
func TestTable1Bands(t *testing.T) {
	const n = 300000
	type band struct{ lo, hi float64 }
	checks := map[string]struct {
		pctBreaks band
		pctTaken  band
		pctCBr    band
		pctCall   band
		q90Max    int // execution concentration
		staticMin int
	}{
		"doduc-like":    {band{4, 12}, band{45, 72}, band{80, 100}, band{0.2, 9}, 200, 1200},
		"espresso-like": {band{12, 24}, band{50, 72}, band{88, 100}, band{0.05, 5}, 400, 1500},
		"gcc-like":      {band{10, 20}, band{48, 68}, band{70, 92}, band{2, 10}, 2200, 6000},
		"li-like":       {band{13, 26}, band{42, 68}, band{55, 90}, band{4, 18}, 250, 800},
		"cfront-like":   {band{9, 18}, band{45, 68}, band{65, 92}, band{2, 11}, 1500, 4500},
		"groff-like":    {band{8, 20}, band{45, 68}, band{60, 92}, band{2, 11}, 1200, 2200},
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := checks[s.Name]
			if !ok {
				t.Fatalf("no bands for %s", s.Name)
			}
			st := trace.ComputeStats(s.MustTrace(n))
			chk := func(name string, got float64, b band) {
				if got < b.lo || got > b.hi {
					t.Errorf("%s = %.2f outside [%v, %v]", name, got, b.lo, b.hi)
				}
			}
			chk("%breaks", st.PctBreaks(), want.pctBreaks)
			chk("%taken", st.PctCondTaken(), want.pctTaken)
			chk("%cbr", st.PctOfBreaks(isa.CondBranch), want.pctCBr)
			chk("%call", st.PctOfBreaks(isa.Call), want.pctCall)
			if st.Q90 > want.q90Max {
				t.Errorf("Q90 = %d exceeds %d", st.Q90, want.q90Max)
			}
			if st.StaticCondSites < want.staticMin {
				t.Errorf("static sites = %d below %d", st.StaticCondSites, want.staticMin)
			}
			// Calls and returns must balance: the call DAG guarantees
			// this within the trace window.
			call, ret := st.PctOfBreaks(isa.Call), st.PctOfBreaks(isa.Return)
			if diff := call - ret; diff < -1.5 || diff > 1.5 {
				t.Errorf("call/ret imbalance: %.2f vs %.2f", call, ret)
			}
		})
	}
}

func TestBranchyVsConcentratedContrast(t *testing.T) {
	// The paper's central workload contrast: gcc-class programs expose
	// far more active conditional sites than doduc/espresso/li.
	const n = 300000
	gcc := trace.ComputeStats(Gcc().MustTrace(n))
	doduc := trace.ComputeStats(Doduc().MustTrace(n))
	if gcc.Q90 < 4*doduc.Q90 {
		t.Errorf("gcc Q90 (%d) not ≫ doduc Q90 (%d)", gcc.Q90, doduc.Q90)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("x", Gcc().Params, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("x", Gcc().Params, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() != b.NumBlocks() || a.NumInstrs() != b.NumInstrs() {
		t.Error("same seed produced different programs")
	}
	c, err := Generate("x", Gcc().Params, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumInstrs() == c.NumInstrs() && a.NumBlocks() == c.NumBlocks() {
		t.Error("different seeds produced identical programs (suspicious)")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gcc"); !ok {
		t.Error("short name lookup failed")
	}
	if _, ok := ByName("gcc-like"); !ok {
		t.Error("full name lookup failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("bogus name resolved")
	}
}

func TestPassLengthNearTarget(t *testing.T) {
	// The driver-pass budget keeps the reuse cycle bounded: a 2M-instr
	// trace must span several driver passes for every analogue.
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			p, err := s.Program()
			if err != nil {
				t.Fatal(err)
			}
			e, err := exec.New(p, s.Seed)
			if err != nil {
				t.Fatal(err)
			}
			const n = 1_500_000
			e.Run(n, func(trace.Record) {})
			if e.Restarts() < 3 {
				t.Errorf("only %d restarts in %d instructions: pass too long", e.Restarts(), n)
			}
		})
	}
}

func TestDutyCycle(t *testing.T) {
	cases := []struct {
		p      float64
		period int
	}{
		{0.1, 8}, {0.25, 8}, {0.9, 16}, {0.05, 16}, {0.02, 8},
	}
	for _, c := range cases {
		pat := dutyCycle(c.p, c.period)
		if len(pat) == 0 {
			t.Fatalf("empty pattern for p=%v", c.p)
		}
		taken := 0
		for _, v := range pat {
			if v {
				taken++
			}
		}
		frac := float64(taken) / float64(len(pat))
		// Within one slot of the requested fraction.
		if diff := frac - c.p; diff > 1.0/float64(len(pat))+1e-9 || diff < -1.0/float64(len(pat))-1e-9 {
			t.Errorf("dutyCycle(%v, %d): fraction %v (len %d)", c.p, c.period, frac, len(pat))
		}
		// At least one of each outcome: the site must not be constant.
		if taken == 0 || taken == len(pat) {
			t.Errorf("dutyCycle(%v, %d) is constant", c.p, c.period)
		}
	}
}

func TestCostModelBoundsSubtrees(t *testing.T) {
	// Expected per-entry procedure costs must respect the budget
	// (within the slack of the final construct that crossed it).
	params := Gcc().Params
	g := newGen(params, 1)
	names := make([]string, params.NumProcs)
	_ = names
	// Generate in the same order Generate does.
	for i := params.NumProcs - 1; i >= 1; i-- {
		g.procBody(i, i >= g.coldStart)
	}
	over := 0
	for pid := 1; pid < params.NumProcs; pid++ {
		if g.procCost[pid] > 3*params.SubtreeBudget {
			over++
		}
	}
	if over > 0 {
		t.Errorf("%d procedures exceed 3x the subtree budget", over)
	}
}

func TestMicroWorkloads(t *testing.T) {
	for name, build := range map[string]func() (*cfg.Program, error){
		"hotloop":  HotLoopProgram,
		"calltree": func() (*cfg.Program, error) { return CallTreeProgram(4, 3) },
		"interp":   func() (*cfg.Program, error) { return InterpreterProgram(12) },
	} {
		p, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := exec.Trace(p, 1, 20000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestHotLoopConcentration(t *testing.T) {
	p, err := HotLoopProgram()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := exec.Trace(p, 1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.ComputeStats(tr)
	if st.Q90 > 5 {
		t.Errorf("hot loop Q90 = %d, want tiny", st.Q90)
	}
}
