// Package workload generates the benchmark-analogue programs whose traces
// drive the experiments. The paper traced six programs (doduc, espresso,
// gcc, li, cfront, groff — Table 1); we cannot rerun those binaries, so
// each analogue here is a synthetic program whose *structure* is tuned to
// reproduce the measured attributes the paper reports: the break density
// (%Breaks), the branch-kind mix, the taken rate, the concentration of
// execution over conditional sites (the Q columns), the static site count,
// and the instruction working set relative to the simulated caches.
//
// Programs are built from the structured DSL of package cfg and executed by
// package exec, so the traces carry real loop, call, and dispatch dynamics
// rather than i.i.d. samples.
package workload

import (
	"math"
	"strconv"

	"repro/internal/cfg"
	"repro/internal/xrand"
)

// Params shapes one generated program. The six analogue constructors in
// specs.go each supply a calibrated Params.
type Params struct {
	// NumProcs is the number of procedures including the driver
	// (ProcID 0). ColdFrac of the non-driver procedures are "cold":
	// reachable only through rarely-taken guards, contributing static
	// sites and instruction-cache pollution but little execution.
	NumProcs int
	ColdFrac float64

	// Body shape: each procedure body is SegmentsMin..SegmentsMax
	// top-level constructs; straight-line chunks run StraightMin..
	// StraightMax instructions; construct nesting is bounded by
	// MaxDepth.
	SegmentsMin, SegmentsMax int
	StraightMin, StraightMax int
	MaxDepth                 int

	// Construct mix (relative weights): loops, conditionals, calls,
	// guarded self-recursion, indirect switches, cold-call guards, and
	// plain straight chunks.
	WLoop, WIf, WCall, WRecur, WSwitch, WColdGuard, WStraight float64

	// Loop character: fixed trips in TripMin..TripMax, with WhileFrac of
	// loops using a biased (variable-trip) backedge instead. LoopVolCap
	// bounds the iteration *product* of a loop nest (outer trip × inner
	// trip × ...), so no single innermost site soaks up the whole
	// trace: it is the main lever on the Q-50/Q-90 execution
	// concentration of Table 1. Zero means 200.
	TripMin, TripMax int
	WhileFrac        float64
	WhileP           float64
	LoopVolCap       float64

	// Conditional character: If guards draw their skip-probability from
	// BiasPool; PatternFrac of them use a short repeating pattern
	// (learnable by a two-level predictor) instead. ElseFrac of If
	// sites have an else arm (each executed then-arm ends in an
	// unconditional jump over it — the main source of the %Br column).
	BiasPool    []float64
	PatternFrac float64
	ElseFrac    float64

	// Call graph: call sites pick callees by a Zipf(alpha) over the hot
	// procedures, so low-numbered procedures are hot.
	CallZipfAlpha float64
	// RecurP is the continuation probability of a guarded recursive
	// call (expected extra depth RecurP/(1-RecurP)).
	RecurP float64
	// CallLoopFrac is the probability a top-level call site is wrapped
	// in a short (trip 2–4) loop, multiplying its dynamic call volume
	// while keeping the call tree bounded. This is the lever for
	// call-heavy analogues (li, cfront, groff).
	CallLoopFrac float64

	// Cold guards execute their cold call with probability ColdGuardP.
	ColdGuardP float64

	// Switch (indirect dispatch) character.
	SwitchCasesMin, SwitchCasesMax int
	SwitchSticky                   float64
	SwitchZipfAlpha                float64

	// Driver: the entry procedure loops DriverLoopTrip times over
	// DriverCalls call sites before returning (and restarting).
	DriverCalls    int
	DriverLoopTrip int

	// HotLoopTrips, when non-empty, adds a dominant nested loop to the
	// driver with these trip counts (innermost last) — the doduc-like
	// "three branches are 50% of execution" shape.
	HotLoopTrips []int
	// HotLoopLen is the straight-line length inside the innermost hot
	// loop body.
	HotLoopLen int

	// InterpOps, when positive, adds an interpreter-style dispatch loop
	// to the driver: a loop of InterpTrip iterations around a switch
	// with InterpOps cases of ~InterpLen instructions each.
	InterpOps, InterpLen, InterpTrip int

	// SubtreeBudget caps the *expected* instructions one call of a
	// procedure executes, subtree included (default 2500): the generator
	// stops adding call volume to a procedure beyond it.
	SubtreeBudget float64
	// PassInsns targets the expected length of one full driver iteration
	// (default 120000). The generator keeps adding driver call sites (up
	// to DriverCalls) until the pass reaches it, so a multi-million-
	// instruction trace spans many passes and the predictors and the
	// cache see a realistic reuse cycle.
	PassInsns float64
}

// gen carries the generation state for one program.
type gen struct {
	p          Params
	rng        *xrand.Rng
	hotZipf    *xrand.Zipf
	numHot     int // procs 1..numHot are hot; the rest are cold
	coldStart  int
	numProcs   int
	currentPID int
	recurUsed  bool // at most one self-recursion site per procedure

	// procCost[pid] is the expected instructions per entry of pid,
	// subtree included; filled leaves-first (see cost.go). callSpend is
	// the expected call-subtree cost committed to the procedure being
	// generated so far, checked against SubtreeBudget.
	procCost  []float64
	callSpend float64
}

func newGen(p Params, seed uint64) *gen {
	if p.SubtreeBudget <= 0 {
		p.SubtreeBudget = 2500
	}
	if p.PassInsns <= 0 {
		p.PassInsns = 120000
	}
	g := &gen{p: p, rng: xrand.New(seed), numProcs: p.NumProcs}
	g.procCost = make([]float64, p.NumProcs)
	cold := int(math.Round(float64(p.NumProcs-1) * p.ColdFrac))
	if cold >= p.NumProcs-1 {
		cold = p.NumProcs - 2
	}
	if cold < 0 {
		cold = 0
	}
	g.coldStart = p.NumProcs - cold
	g.numHot = g.coldStart - 1 // procs 1..coldStart-1
	if g.numHot < 1 {
		g.numHot = 1
		g.coldStart = 2
	}
	g.hotZipf = xrand.NewZipf(g.rng, g.numHot, p.CallZipfAlpha)
	return g
}

// numTiers stratifies the hot procedures into call tiers: a procedure only
// calls procedures in strictly deeper tiers, so the direct call graph is a
// DAG of depth at most numTiers and every call returns within a modest
// window. Cycles exist only through the explicitly guarded self-recursion
// sites. Real call graphs are mostly hierarchical in the same way
// (drivers → phases → utilities → leaves).
const numTiers = 6

// tierOf returns the tier of a hot procedure (the driver is tier -1).
func (g *gen) tierOf(pid int) int {
	if pid == 0 {
		return -1
	}
	t := (pid - 1) * numTiers / g.numHot
	if t >= numTiers {
		t = numTiers - 1
	}
	return t
}

// hotCallee picks a hot callee in a strictly deeper tier, Zipf-biased
// toward the earliest (hottest) procedures of that range. Returns false
// when the caller is in the deepest tier (a leaf).
func (g *gen) hotCallee() (cfg.ProcID, bool) {
	t := g.tierOf(g.currentPID)
	if t >= numTiers-1 {
		return 0, false
	}
	lo := 1 + (t+1)*g.numHot/numTiers
	if lo <= g.currentPID {
		// Tier-boundary rounding can place the caller at or past the
		// next tier's start; keep the callee index strictly greater
		// so the direct call graph stays acyclic.
		lo = g.currentPID + 1
	}
	if lo > g.numHot {
		return 0, false
	}
	span := g.numHot - lo + 1
	c := cfg.ProcID(lo + g.hotZipf.Next()%span)
	return c, true
}

// coldCallee picks a cold callee, also call-down within the cold range so
// cold chains terminate. Returns false for the last cold procedure.
func (g *gen) coldCallee() (cfg.ProcID, bool) {
	lo := g.coldStart
	if g.currentPID >= g.coldStart {
		lo = g.currentPID + 1
	}
	if lo >= g.numProcs {
		return 0, false
	}
	return cfg.ProcID(lo + g.rng.Intn(g.numProcs-lo)), true
}

// straightLen samples a straight-chunk length.
func (g *gen) straightLen() int {
	return g.rng.Range(g.p.StraightMin, g.p.StraightMax)
}

// alignedTrip samples a loop trip count from TripMin..TripMax restricted
// to power-of-two-friendly values {2,4,6,8,12,16,24,32,48,64}. Commensurate
// periods keep the global-history language small, so two-level predictor
// state recurs and trains — mirroring how real loop nests expose repeating
// history to gshare.
func (g *gen) alignedTrip() int {
	aligned := []int{2, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	lo, hi := 0, len(aligned)-1
	for lo < len(aligned)-1 && aligned[lo] < g.p.TripMin {
		lo++
	}
	for hi > 0 && aligned[hi] > g.p.TripMax {
		hi--
	}
	if hi < lo {
		return g.p.TripMin
	}
	return aligned[g.rng.Range(lo, hi)]
}

// condBehavior samples an If guard behavior from the bias pool.
//
// Strongly biased sites (p < 0.25 or p > 0.75) become *deterministic*
// duty-cycle patterns — e.g. p = 0.1 is one taken out of every ten
// executions, evenly spread. Real biased branches are structured, not
// i.i.d. coins: loop-carried state, input regularities. Determinism
// matters doubly for a two-level predictor, because every i.i.d. site
// injects noise into the *global history register* that scrambles the
// (pc, history) index of every other branch; with deterministic sites the
// history stream repeats and gshare trains. Mid-range sites stay truly
// random — those are the genuinely data-dependent, hard-to-predict
// branches. PatternFrac of sites use a short random-but-cyclic pattern
// regardless of bias.
func (g *gen) condBehavior() cfg.Behavior {
	if g.rng.Bool(g.p.PatternFrac) {
		n := 4
		pat := make([]bool, n)
		for i := range pat {
			pat[i] = g.rng.Bool(0.5)
		}
		return cfg.PatternBehavior(pat...)
	}
	p := g.p.BiasPool[g.rng.Intn(len(g.p.BiasPool))]
	if p >= 0.25 && p <= 0.75 {
		return cfg.BiasBehavior(p)
	}
	// Power-of-two periods only: mutually commensurate cycles keep the
	// global-history language small enough for the PHT to train (a
	// period-17 site next to a period-16 site would produce histories
	// that essentially never repeat).
	period := 8
	for minority := min(p, 1-p); period < 64 && 1/float64(period) > minority; {
		period *= 2
	}
	return cfg.Behavior{Kind: cfg.BehaviorPattern, Pattern: dutyCycle(p, period)}
}

// dutyCycle builds a deterministic cyclic outcome sequence of the given
// period whose taken fraction approximates p, with the minority outcome
// spread evenly (Bresenham-style). For very small p the period stretches so
// at least one taken still occurs per cycle.
func dutyCycle(p float64, period int) []bool {
	if p > 0.5 {
		inv := dutyCycle(1-p, period)
		for i := range inv {
			inv[i] = !inv[i]
		}
		return inv
	}
	if p > 0 && p < 1/float64(period) {
		period = int(1/p + 0.5)
	}
	k := int(p*float64(period) + 0.5)
	if k < 1 {
		k = 1
	}
	pat := make([]bool, period)
	acc := 0
	for i := range pat {
		acc += k
		if acc >= period {
			acc -= period
			pat[i] = true
		}
	}
	return pat
}

// construct kinds, selected by the P.W* weights.
type constructKind int

const (
	kLoop constructKind = iota
	kIf
	kCall
	kRecur
	kSwitch
	kColdGuard
	kStraight
)

func (g *gen) pickConstruct(depth int, cold bool) constructKind {
	wl, wi, wc, wr, ws, wg, wst := g.p.WLoop, g.p.WIf, g.p.WCall, g.p.WRecur,
		g.p.WSwitch, g.p.WColdGuard, g.p.WStraight
	if depth <= 0 {
		// Innermost level: no further loop or switch nesting, but
		// conditionals remain — real inner loops are full of ifs.
		wl, ws = 0, 0
	}
	if depth < g.p.MaxDepth {
		// No call-producing constructs inside loop bodies: a call
		// site inside a trip-k loop executes k times per procedure
		// entry, which multiplies across the call hierarchy and
		// makes the dynamic call tree supercritical (execution then
		// sinks into one subtree and never spreads). Calls happen at
		// procedure top level and in the driver's explicit call
		// loops, which is where the call volume is controlled.
		wc, wg, wr = 0, 0, 0
	}
	if cold {
		// Cold procedures do not spawn further cold guards and call
		// less (they sit at the leaves of rare paths).
		wg = 0
		wc *= 0.5
		wr = 0
	}
	total := wl + wi + wc + wr + ws + wg + wst
	u := g.rng.Float64() * total
	for i, w := range []float64{wl, wi, wc, wr, ws, wg, wst} {
		u -= w
		if u < 0 {
			return constructKind(i)
		}
	}
	return kStraight
}

// construct produces one statement (possibly a nested subtree). vol is the
// remaining loop-volume budget for this subtree.
func (g *gen) construct(depth int, cold bool, vol float64) cfg.Stmt {
	switch g.pickConstruct(depth, cold) {
	case kLoop:
		trip := g.alignedTrip()
		if float64(trip) > vol {
			trip = int(vol)
		}
		if trip < 4 {
			// Never emit trip-2/3 loops: their backedges alternate
			// too fast for a 2-bit counter and real inner loops
			// that hot iterate more. Spend the volume on straight
			// code instead.
			return cfg.Straight{N: g.straightLen()}
		}
		if g.rng.Bool(g.p.WhileFrac) {
			// A biased backedge with continuation probability p
			// iterates 1/(1-p) times in expectation.
			p := g.p.WhileP
			if exp := 1 / (1 - p); exp > vol {
				p = 1 - 1/vol
			}
			body := g.seq(depth-1, g.rng.Range(1, 2), cold, vol*(1-p))
			return cfg.While{P: p, Body: body}
		}
		body := g.seq(depth-1, g.rng.Range(1, 2), cold, vol/float64(trip))
		return cfg.Loop{Trip: trip, Body: body}
	case kIf:
		then := []cfg.Stmt{cfg.Straight{N: g.straightLen()}}
		if depth > 0 {
			then = g.seq(depth-1, 1, cold, vol)
		}
		stmt := cfg.If{Cond: g.condBehavior(), Then: then}
		if g.rng.Bool(g.p.ElseFrac) {
			stmt.Else = []cfg.Stmt{cfg.Straight{N: g.straightLen()}}
		}
		return stmt
	case kCall:
		c, ok := g.hotCallee()
		if !ok {
			return cfg.Straight{N: g.straightLen()}
		}
		calleeCost := g.procCost[c] + 2
		if depth >= g.p.MaxDepth && g.rng.Bool(g.p.CallLoopFrac) {
			// Trips of 4-8: a trip-2 call loop's backedge alternates
			// taken/not-taken, the worst case for a 2-bit counter.
			trip := 4 * (1 + g.rng.Intn(2))
			if g.callSpend+float64(trip)*calleeCost > g.p.SubtreeBudget {
				return cfg.Straight{N: g.straightLen()}
			}
			g.callSpend += float64(trip) * calleeCost
			return cfg.Loop{
				Trip: trip,
				Body: []cfg.Stmt{cfg.Straight{N: g.straightLen()}, cfg.CallTo{Callee: c}},
			}
		}
		if g.callSpend+calleeCost > g.p.SubtreeBudget {
			return cfg.Straight{N: g.straightLen()}
		}
		g.callSpend += calleeCost
		return cfg.CallTo{Callee: c}
	case kRecur:
		// Guarded self-recursion: recurse with probability RecurP
		// (If skips Then when taken). One site per procedure keeps
		// the expected number of recursive re-entries strictly
		// subcritical — two sites at RecurP ≥ 0.5 would make the
		// recursion a branching process with mean ≥ 1, and execution
		// would sink into that procedure forever.
		if g.recurUsed || g.currentPID == 0 {
			return cfg.Straight{N: g.straightLen()}
		}
		g.recurUsed = true
		return cfg.If{
			Cond: cfg.BiasBehavior(1 - g.p.RecurP),
			Then: []cfg.Stmt{cfg.CallTo{Callee: cfg.ProcID(g.currentPID)}},
		}
	case kSwitch:
		ncases := g.rng.Range(g.p.SwitchCasesMin, g.p.SwitchCasesMax)
		cases := make([][]cfg.Stmt, ncases)
		weights := make([]float64, ncases)
		for i := range cases {
			cases[i] = []cfg.Stmt{cfg.Straight{N: g.straightLen()}}
			weights[i] = 1 / math.Pow(float64(i+1), g.p.SwitchZipfAlpha)
		}
		kind := cfg.BehaviorIndirectWeighted
		if g.p.SwitchSticky > 0 {
			kind = cfg.BehaviorIndirectSticky
		}
		return cfg.Switch{
			Behavior: cfg.Behavior{Kind: kind, P: g.p.SwitchSticky, Weights: weights},
			Cases:    cases,
		}
	case kColdGuard:
		c, ok := g.coldCallee()
		if !ok {
			return cfg.Straight{N: g.straightLen()}
		}
		// Expected cost is the cold subtree weighted by how rarely the
		// guard fires.
		if g.callSpend+g.p.ColdGuardP*(g.procCost[c]+2) > g.p.SubtreeBudget {
			return cfg.Straight{N: g.straightLen()}
		}
		g.callSpend += g.p.ColdGuardP * (g.procCost[c] + 2)
		period := int(1/g.p.ColdGuardP + 0.5)
		return cfg.If{
			// Deterministic rare guard: the cold call executes once
			// per period. Keeping guards deterministic avoids
			// injecting i.i.d. noise into the global history.
			Cond: cfg.Behavior{Kind: cfg.BehaviorPattern, Pattern: dutyCycle(1-g.p.ColdGuardP, period)},
			Then: []cfg.Stmt{cfg.CallTo{Callee: c}},
		}
	default:
		return cfg.Straight{N: g.straightLen()}
	}
}

// seq produces a sequence of n constructs, each preceded by a straight
// chunk (real basic blocks carry computation between control points).
func (g *gen) seq(depth, n int, cold bool, vol float64) []cfg.Stmt {
	out := make([]cfg.Stmt, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, cfg.Straight{N: g.straightLen()})
		out = append(out, g.construct(depth, cold, vol))
	}
	return out
}

// procBody generates a full procedure body and records its expected
// per-entry cost (subtree included) in procCost.
func (g *gen) procBody(pid int, cold bool) []cfg.Stmt {
	g.currentPID = pid
	g.recurUsed = false
	g.callSpend = 0
	n := g.rng.Range(g.p.SegmentsMin, g.p.SegmentsMax)
	vol := g.p.LoopVolCap
	if vol <= 0 {
		vol = 200
	}
	body := g.seq(g.p.MaxDepth, n, cold, vol)
	cost := g.estCost(body, cfg.ProcID(pid)) + 1 // + return
	if g.recurUsed && g.p.RecurP < 1 {
		// One guarded self-recursion site: each entry re-enters the
		// body with probability RecurP, a geometric multiplier.
		cost /= 1 - g.p.RecurP
	}
	g.procCost[pid] = cost
	return body
}

// driverBody generates the entry procedure: the optional dominant hot loop,
// the optional interpreter dispatch loop, and the main call loop.
func (g *gen) driverBody() []cfg.Stmt {
	g.currentPID = 0
	var body []cfg.Stmt

	if len(g.p.HotLoopTrips) > 0 {
		// The innermost body carries a perfectly periodic 50%-taken
		// conditional: together with the two inner backedges this
		// gives a tiny set of sites covering most conditional
		// executions (the doduc Q-50 = 3 shape) while keeping the
		// overall taken rate near 50% and the sites learnable by a
		// two-level predictor.
		inner := []cfg.Stmt{
			cfg.Straight{N: g.p.HotLoopLen},
			cfg.If{
				Cond: cfg.PatternBehavior(true, false),
				Then: []cfg.Stmt{cfg.Straight{N: g.p.HotLoopLen / 2}},
			},
		}
		for i := len(g.p.HotLoopTrips) - 1; i >= 0; i-- {
			inner = []cfg.Stmt{cfg.Loop{Trip: g.p.HotLoopTrips[i], Body: inner}}
		}
		body = append(body, inner...)
	}

	if g.p.InterpOps > 0 {
		ncases := g.p.InterpOps
		cases := make([][]cfg.Stmt, ncases)
		weights := make([]float64, ncases)
		for i := range cases {
			c := []cfg.Stmt{cfg.Straight{N: g.p.InterpLen}}
			// A few opcodes call out to helper procedures, as a
			// real interpreter's complex ops do.
			if callee, ok := g.hotCallee(); ok && i%4 == 0 {
				c = append(c, cfg.CallTo{Callee: callee})
			}
			cases[i] = c
			weights[i] = 1 / math.Pow(float64(i+1), g.p.SwitchZipfAlpha)
		}
		dispatch := cfg.Switch{
			Behavior: cfg.Behavior{
				Kind:    cfg.BehaviorIndirectSticky,
				P:       g.p.SwitchSticky,
				Weights: weights,
			},
			Cases: cases,
		}
		body = append(body, cfg.Loop{
			Trip: g.p.InterpTrip,
			Body: []cfg.Stmt{cfg.Straight{N: 2}, dispatch},
		})
	}

	// The main call loop: add sites until one driver pass reaches the
	// PassInsns target (or the DriverCalls maximum), accounting for the
	// fixed cost of the hot nest and interpreter loop generated above.
	fixed := g.estCost(body, 0)
	perIter := (g.p.PassInsns - fixed) / float64(g.p.DriverLoopTrip)
	var callSeq []cfg.Stmt
	iterCost := 0.0
	for i := 0; i < g.p.DriverCalls && iterCost < perIter; i++ {
		callee, ok := g.hotCallee()
		if !ok {
			break
		}
		n := g.straightLen()
		callSeq = append(callSeq, cfg.Straight{N: n}, cfg.CallTo{Callee: callee})
		iterCost += float64(n) + g.procCost[callee] + 2
	}
	body = append(body, cfg.Loop{Trip: g.p.DriverLoopTrip, Body: callSeq})
	return body
}

// Generate builds a complete, validated, laid-out program from the
// parameters.
func Generate(name string, p Params, seed uint64) (*cfg.Program, error) {
	g := newGen(p, seed)
	names := make([]string, p.NumProcs)
	bodies := make([][]cfg.Stmt, p.NumProcs)
	// Leaves first: procedures call strictly higher ProcIDs, so
	// generating in reverse order means every call site can consult its
	// callee's already-computed expected cost (cost.go).
	for i := p.NumProcs - 1; i >= 1; i-- {
		cold := i >= g.coldStart
		if cold {
			names[i] = "cold_" + strconv.Itoa(i)
		} else {
			names[i] = "proc_" + strconv.Itoa(i)
		}
		bodies[i] = g.procBody(i, cold)
	}
	names[0] = "main"
	bodies[0] = g.driverBody()
	return cfg.BuildProgram(name, 0, names, bodies)
}
