package workload

import (
	"testing"

	"repro/internal/trace"
)

// TestSourceStreamsSameTrace: Spec.Source is seeded identically to
// Spec.Trace, so drawing the records chunk by chunk (as cmd/nlssim -stream
// and the broadcast sweeps do) yields exactly the materialized trace.
func TestSourceStreamsSameTrace(t *testing.T) {
	const n = 40_000
	for _, spec := range All() {
		want, err := spec.Trace(n)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		src, err := spec.Source()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		cs := trace.NewSourceChunks(src, n, 777) // odd size: boundaries everywhere
		i := 0
		for blk := cs.NextChunk(); len(blk) > 0; blk = cs.NextChunk() {
			for _, r := range blk {
				if r != want.Records[i] {
					t.Fatalf("%s: streamed record %d differs", spec.Name, i)
				}
				i++
			}
		}
		if i != n {
			t.Fatalf("%s: streamed %d records, want %d", spec.Name, i, n)
		}
	}
}
