package workload

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/trace"
)

// Spec names one benchmark analogue: a calibrated Params plus the seed that
// fixes its generated program.
type Spec struct {
	Name   string
	Seed   uint64
	Params Params
}

// Program builds the analogue's program (validated and laid out).
func (s Spec) Program() (*cfg.Program, error) {
	p, err := Generate(s.Name, s.Params, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", s.Name, err)
	}
	return p, nil
}

// execSeedMix derives the execution seed from the build seed so the whole
// trace is a pure function of the Spec.
const execSeedMix = 0x9e3779b97f4a7c15

// Trace builds the program and executes n instructions.
func (s Spec) Trace(n int) (*trace.Trace, error) {
	p, err := s.Program()
	if err != nil {
		return nil, err
	}
	return exec.Trace(p, s.Seed^execSeedMix, n)
}

// Source builds the program and returns a fresh executor over it, seeded
// identically to Trace: streaming n records from it yields exactly the
// records Trace(n) materializes, without ever holding them all in memory.
func (s Spec) Source() (*exec.Executor, error) {
	p, err := s.Program()
	if err != nil {
		return nil, err
	}
	return exec.New(p, s.Seed^execSeedMix)
}

// MustTrace is Trace that panics on error, for benchmarks and examples
// using the built-in specs (which are tested to build).
func (s Spec) MustTrace(n int) *trace.Trace {
	t, err := s.Trace(n)
	if err != nil {
		panic(err)
	}
	return t
}

// The six analogues of the paper's Table 1. Comments give the measured
// targets from the paper: %Breaks / %Taken / breaks mix CBr,IJ,Br,Call,Ret
// / Q-50 / static sites, and the qualitative character the parameters
// encode. EXPERIMENTS.md records how close the generated traces land.

// Doduc is the doduc analogue: a FORTRAN nuclear-reactor kernel —
// loop-dominated numeric code where three branch sites cover half of all
// executed conditionals (Q-50 = 3), breaks are sparse (8.5%), taken sits
// near 49%, and most of the 7073 static sites almost never execute.
func Doduc() Spec {
	return Spec{
		Name: "doduc-like",
		Seed: 0xd0d0c,
		Params: Params{
			NumProcs: 300, ColdFrac: 0.72,
			SegmentsMin: 4, SegmentsMax: 7,
			StraightMin: 6, StraightMax: 12,
			MaxDepth: 2,
			WLoop:    1.1, WIf: 1.0, WCall: 1.6, WRecur: 0,
			WSwitch: 0.002, WColdGuard: 0.2, WStraight: 1.0,
			TripMin: 8, TripMax: 24, WhileFrac: 0.12, WhileP: 0.85,
			LoopVolCap:    60,
			BiasPool:      []float64{0.03, 0.06, 0.1, 0.15, 0.9},
			PatternFrac:   0.05,
			ElseFrac:      0.05,
			CallZipfAlpha: 1.1, RecurP: 0, CallLoopFrac: 0.5,
			ColdGuardP:     0.02,
			SwitchCasesMin: 3, SwitchCasesMax: 5, SwitchSticky: 0.7, SwitchZipfAlpha: 1.0,
			DriverCalls: 60, DriverLoopTrip: 2, PassInsns: 60000, SubtreeBudget: 1200,
			HotLoopTrips: []int{15, 12, 8}, HotLoopLen: 14,
		},
	}
}

// Espresso is the espresso analogue: PLA minimization — tight loop nests of
// bit operations, almost all breaks conditional (93% CBr), very few calls,
// a small hot working set (low i-cache miss rate), taken 62%, Q-50 = 44.
func Espresso() Spec {
	return Spec{
		Name: "espresso-like",
		Seed: 0xe59,
		Params: Params{
			NumProcs: 200, ColdFrac: 0.65,
			SegmentsMin: 3, SegmentsMax: 6,
			StraightMin: 2, StraightMax: 5,
			MaxDepth: 3,
			WLoop:    1.6, WIf: 1.6, WCall: 1.1, WRecur: 0,
			WSwitch: 0.006, WColdGuard: 0.04, WStraight: 0.6,
			TripMin: 10, TripMax: 48, WhileFrac: 0.12, WhileP: 0.9,
			LoopVolCap:    120,
			BiasPool:      []float64{0.03, 0.06, 0.1, 0.9, 0.95},
			PatternFrac:   0.05,
			ElseFrac:      0.10,
			CallZipfAlpha: 0.4, RecurP: 0, CallLoopFrac: 0.2,
			ColdGuardP:     0.02,
			SwitchCasesMin: 3, SwitchCasesMax: 5, SwitchSticky: 0.7, SwitchZipfAlpha: 1.0,
			DriverCalls: 120, DriverLoopTrip: 4, PassInsns: 100000, SubtreeBudget: 1500,
		},
	}
}

// Gcc is the gcc analogue: a compiler — a large, flat instruction footprint
// (high i-cache miss rate), thousands of moderately hot conditional sites
// (Q-50 = 245, static 16294), short blocks, indirect jumps from jump
// tables, hard-to-predict branches.
func Gcc() Spec {
	return Spec{
		Name: "gcc-like",
		Seed: 0x9cc,
		Params: Params{
			NumProcs: 1000, ColdFrac: 0.5,
			SegmentsMin: 5, SegmentsMax: 10,
			StraightMin: 3, StraightMax: 7,
			MaxDepth: 3,
			WLoop:    0.5, WIf: 2.2, WCall: 1.8, WRecur: 0.06,
			WSwitch: 0.15, WColdGuard: 0.3, WStraight: 0.7,
			TripMin: 8, TripMax: 16, WhileFrac: 0.1, WhileP: 0.85,
			LoopVolCap:    18,
			BiasPool:      []float64{0.04, 0.06, 0.1, 0.12, 0.88, 0.94},
			PatternFrac:   0.03,
			ElseFrac:      0.08,
			CallZipfAlpha: 0.3, RecurP: 0.35, CallLoopFrac: 0.3,
			ColdGuardP:     0.05,
			SwitchCasesMin: 4, SwitchCasesMax: 10, SwitchSticky: 0.4, SwitchZipfAlpha: 0.9,
			DriverCalls: 250, DriverLoopTrip: 2, PassInsns: 150000, SubtreeBudget: 2000,
		},
	}
}

// Li is the li analogue: a Lisp interpreter — very call-heavy (26% of
// breaks are calls+returns), recursive evaluation, a small hot core
// (Q-50 = 16), indirect dispatch on expression type, taken 47%.
func Li() Spec {
	return Spec{
		Name: "li-like",
		Seed: 0x11,
		Params: Params{
			NumProcs: 260, ColdFrac: 0.6,
			SegmentsMin: 2, SegmentsMax: 4,
			StraightMin: 2, StraightMax: 5,
			MaxDepth: 2,
			WLoop:    0.7, WIf: 1.8, WCall: 1.5, WRecur: 0.45,
			WSwitch: 0.07, WColdGuard: 0.08, WStraight: 0.5,
			TripMin: 8, TripMax: 16, WhileFrac: 0.12, WhileP: 0.8,
			LoopVolCap:    50,
			BiasPool:      []float64{0.05, 0.1, 0.15, 0.85, 0.9},
			PatternFrac:   0.05,
			ElseFrac:      0.15,
			CallZipfAlpha: 0.8, RecurP: 0.4, CallLoopFrac: 0.6,
			ColdGuardP:     0.04,
			SwitchCasesMin: 4, SwitchCasesMax: 8, SwitchSticky: 0.5, SwitchZipfAlpha: 1.0,
			DriverCalls: 40, DriverLoopTrip: 4, PassInsns: 60000, SubtreeBudget: 900,
			InterpOps: 24, InterpLen: 5, InterpTrip: 32,
		},
	}
}

// Cfront is the cfront analogue: the AT&T C++-to-C translator — the largest
// static footprint of the traced programs (17565 sites), compiler-like
// branch behaviour, more calls than gcc (8.7% / 9.3%).
func Cfront() Spec {
	return Spec{
		Name: "cfront-like",
		Seed: 0xcf,
		Params: Params{
			NumProcs: 1200, ColdFrac: 0.55,
			SegmentsMin: 3, SegmentsMax: 6,
			StraightMin: 3, StraightMax: 7,
			MaxDepth: 3,
			WLoop:    0.6, WIf: 1.8, WCall: 3.2, WRecur: 0.1,
			WSwitch: 0.2, WColdGuard: 0.28, WStraight: 0.7,
			TripMin: 8, TripMax: 24, WhileFrac: 0.15, WhileP: 0.85,
			LoopVolCap:    20,
			BiasPool:      []float64{0.05, 0.08, 0.12, 0.15, 0.5, 0.9},
			PatternFrac:   0.04,
			ElseFrac:      0.18,
			CallZipfAlpha: 0.5, RecurP: 0.3, CallLoopFrac: 0.6,
			ColdGuardP:     0.05,
			SwitchCasesMin: 3, SwitchCasesMax: 8, SwitchSticky: 0.5, SwitchZipfAlpha: 0.9,
			DriverCalls: 250, DriverLoopTrip: 2, PassInsns: 150000, SubtreeBudget: 1600,
			InterpOps: 16, InterpLen: 6, InterpTrip: 12,
		},
	}
}

// Groff is the groff analogue: the C++ troff reimplementation — the most
// indirect jumps of any traced program (4.8%, virtual dispatch), many
// returns, a large-but-not-gcc-sized footprint (7434 sites, Q-50 = 107).
func Groff() Spec {
	return Spec{
		Name: "groff-like",
		Seed: 0x960ff,
		Params: Params{
			NumProcs: 650, ColdFrac: 0.5,
			SegmentsMin: 3, SegmentsMax: 6,
			StraightMin: 3, StraightMax: 7,
			MaxDepth: 3,
			WLoop:    0.7, WIf: 1.5, WCall: 3.0, WRecur: 0.08,
			WSwitch: 0.25, WColdGuard: 0.22, WStraight: 0.7,
			TripMin: 8, TripMax: 24, WhileFrac: 0.15, WhileP: 0.85,
			LoopVolCap:    24,
			BiasPool:      []float64{0.05, 0.1, 0.15, 0.85, 0.9},
			PatternFrac:   0.04,
			ElseFrac:      0.08,
			CallZipfAlpha: 0.35, RecurP: 0.25, CallLoopFrac: 0.6,
			ColdGuardP:     0.05,
			SwitchCasesMin: 4, SwitchCasesMax: 10, SwitchSticky: 0.6, SwitchZipfAlpha: 0.8,
			DriverCalls: 180, DriverLoopTrip: 2, PassInsns: 120000, SubtreeBudget: 1400,
			InterpOps: 30, InterpLen: 6, InterpTrip: 24,
		},
	}
}

// All returns the six analogues in the paper's Table 1 order.
func All() []Spec {
	return []Spec{Doduc(), Espresso(), Gcc(), Li(), Cfront(), Groff()}
}

// ByName returns the analogue with the given name (with or without the
// "-like" suffix), or false.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name || s.Name == name+"-like" {
			return s, true
		}
	}
	return Spec{}, false
}
