package workload

import (
	"repro/internal/cfg"
)

// This file implements the expected-cost model that keeps generated
// programs' dynamic structure under control. Procedures are generated in
// reverse ProcID order (leaves first), so when a call site is considered
// the callee's expected cost per entry is already known; the generator
// stops adding call volume when a procedure's expected subtree size would
// exceed SubtreeBudget, and the driver adds call sites until a full driver
// iteration costs about PassInsns instructions. Pinning the pass length is
// what gives traces a realistic reuse cycle: every PassInsns instructions
// the same code re-executes, which is what exercises BTB and NLS capacity
// and the instruction cache the way the paper's programs did.

// estCost returns the expected number of instructions one execution of the
// statement sequence emits, using the generator's procCost table for call
// targets. Self-recursion is handled by the caller (a multiplicative
// factor), so CallTo of the procedure being generated costs only its call
// instruction here.
func (g *gen) estCost(stmts []cfg.Stmt, self cfg.ProcID) float64 {
	total := 0.0
	for _, s := range stmts {
		total += g.estCostOne(s, self)
	}
	return total
}

func (g *gen) estCostOne(s cfg.Stmt, self cfg.ProcID) float64 {
	switch s := s.(type) {
	case cfg.Straight:
		return float64(s.N)
	case cfg.Loop:
		return float64(s.Trip) * (g.estCost(s.Body, self) + 1)
	case cfg.While:
		p := s.P
		if p >= 0.999 {
			p = 0.999
		}
		return (g.estCost(s.Body, self) + 1) / (1 - p)
	case cfg.If:
		pSkip := takenFrac(s.Cond)
		c := 1 + (1-pSkip)*g.estCost(s.Then, self)
		if s.Else != nil {
			// The then-arm ends in a jump over the else-arm.
			c += (1 - pSkip) + pSkip*g.estCost(s.Else, self)
		}
		return c
	case cfg.CallTo:
		if s.Callee == self {
			return 1 // recursion factor applied by the caller
		}
		return 1 + g.procCost[s.Callee] + 1 // call + body + return
	case cfg.Switch:
		total, wsum := 0.0, 0.0
		for i, c := range s.Cases {
			w := 1.0
			if len(s.Behavior.Weights) == len(s.Cases) {
				w = s.Behavior.Weights[i]
			}
			total += w * (g.estCost(c, self) + 1) // case + join jump
			wsum += w
		}
		if wsum == 0 {
			return 1
		}
		return 1 + total/wsum
	}
	return 0
}

// takenFrac returns the long-run taken fraction of a conditional behavior.
func takenFrac(b cfg.Behavior) float64 {
	switch b.Kind {
	case cfg.BehaviorBias:
		return b.P
	case cfg.BehaviorLoop:
		if b.Trip <= 0 {
			return 0
		}
		return float64(b.Trip-1) / float64(b.Trip)
	case cfg.BehaviorPattern:
		if len(b.Pattern) == 0 {
			return 0
		}
		k := 0
		for _, t := range b.Pattern {
			if t {
				k++
			}
		}
		return float64(k) / float64(len(b.Pattern))
	}
	return 0
}
