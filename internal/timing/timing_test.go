package timing

import (
	"math"
	"testing"
)

func TestAssociativePenaltyInPaperBand(t *testing.T) {
	// §6.3 / Figure 6: "the 4-way associative BTB access time is 30 to
	// 40% longer than direct mapped BTBs of the same size."
	for _, entries := range []int{128, 256} {
		r := DirectRatio(entries, 4)
		if r < 1.25 || r > 1.45 {
			t.Errorf("%d entries: 4-way/direct = %.3f, want 1.3-1.4", entries, r)
		}
		r2 := DirectRatio(entries, 2)
		if r2 <= 1.1 || r2 >= r {
			t.Errorf("%d entries: 2-way ratio %.3f out of order with 4-way %.3f", entries, r2, r)
		}
	}
}

func TestAbsoluteTimesInPaperRange(t *testing.T) {
	// Figure 6 plots roughly 4-7 ns for these configurations.
	for _, entries := range []int{128, 256} {
		for _, assoc := range []int{1, 2, 4} {
			ns := BTBAccessNS(entries, assoc)
			if ns < 3.5 || ns > 7.5 {
				t.Errorf("%d-entry %d-way = %.2f ns, outside 3.5-7.5", entries, assoc, ns)
			}
		}
	}
}

func TestMonotonicInEntries(t *testing.T) {
	for _, assoc := range []int{1, 2, 4} {
		if BTBAccessNS(256, assoc) <= BTBAccessNS(128, assoc) {
			t.Errorf("assoc %d: 256-entry not slower than 128-entry", assoc)
		}
	}
}

func TestInvalidInputsAreNaN(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {128, 0}, {2, 4}} {
		if !math.IsNaN(BTBAccessNS(c[0], c[1])) {
			t.Errorf("BTBAccessNS(%d,%d) should be NaN", c[0], c[1])
		}
	}
}
