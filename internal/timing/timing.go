// Package timing estimates BTB access times in the spirit of the CACTI
// model of Wilton & Jouppi, reproducing Figure 6 of the paper. The paper
// uses the model to show that an associative BTB's access time is 30–40%
// longer than a direct-mapped BTB of the same size, because the tag
// comparison and way-select multiplexing sit on the critical path, whereas a
// direct-mapped structure overlaps the tag check with driving the data out.
//
// This is a simplified analytic model — decoder, wordline/bitline, sense,
// comparator, and output stages with constants calibrated to land in the
// paper's reported range (roughly 4–7 ns for 128/256-entry BTBs in
// mid-1990s process technology). As the paper notes for its own figure,
// "the relative values between the BTB access times are more important than
// the absolute values for a particular processor technology."
package timing

import "math"

// Constants of the analytic model, in nanoseconds. Calibrated against the
// paper's Figure 6 (128-entry direct-mapped ≈ 4.2 ns; 4-way ≈ 35% longer).
const (
	baseDelay      = 2.50 // fixed overhead: address drive + sense + output
	decodePerBit   = 0.22 // row decoder, per index bit
	bitlinePerKRow = 1.1  // bitline/wordline RC per 1024 rows (small here)
	comparator     = 1.50 // tag comparator in series (associative only)
	muxPerWayBit   = 0.35 // way-select multiplexor, per log2(ways)
)

// BTBAccessNS estimates the access time of a BTB with the given entry count
// and associativity, in nanoseconds.
func BTBAccessNS(entries, assoc int) float64 {
	if entries <= 0 || assoc <= 0 || entries < assoc {
		return math.NaN()
	}
	rows := entries / assoc
	idxBits := math.Log2(float64(rows))
	t := baseDelay + decodePerBit*idxBits + bitlinePerKRow*float64(rows)/1024
	if assoc > 1 {
		// The comparator output gates the way-select mux before data
		// can be driven out; direct-mapped designs overlap the
		// compare with the data drive instead.
		t += comparator + muxPerWayBit*math.Log2(float64(assoc))
	}
	return t
}

// DirectRatio returns the access-time ratio of an associative BTB to a
// direct-mapped BTB with the same entry count (the paper's 1.3–1.4×).
func DirectRatio(entries, assoc int) float64 {
	return BTBAccessNS(entries, assoc) / BTBAccessNS(entries, 1)
}
