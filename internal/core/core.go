package core
