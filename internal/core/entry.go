// Package core implements the paper's contribution: next cache line and set
// (NLS) prediction. An NLS predictor is a pointer into the instruction cache
// naming the line, the instruction within the line, and — for associative
// caches — the way (the paper's "set") where a branch's target instruction
// resides, together with a 2-bit branch-type field that selects the fetch
// mechanism (§4).
//
// Two organizations are provided, matching the paper:
//
//   - Table: the NLS-table, a tag-less direct-mapped buffer of NLS entries
//     indexed by the branch address, decoupled from the cache (§4.1). This
//     is the design the paper advocates.
//   - LineCoupled: the NLS-cache, k predictors attached to every cache line
//     and discarded when the line is replaced (Johnson's organization,
//     evaluated with 2 predictors per 8-instruction line as in §5.1).
//
// A third variant, JohnsonCoupled, reproduces the related-work design
// (§6.2): one successor pointer per four instructions updated on every
// branch execution, giving implicit one-bit direction prediction, as in the
// TFP (MIPS R8000).
package core

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// EntryType is the NLS type field (2 bits). It selects the prediction
// source for the next fetch (§4's table): invalid entries predict nothing,
// returns use the return stack, conditional branches arbitrate between the
// NLS pointer and the fall-through line using the PHT, and all other branch
// kinds always use the NLS pointer.
type EntryType uint8

const (
	// TypeInvalid marks an unused entry ("00" in the paper).
	TypeInvalid EntryType = iota
	// TypeReturn predicts via the return address stack.
	TypeReturn
	// TypeCond predicts via the NLS pointer, conditional on the PHT.
	TypeCond
	// TypeOther (unconditional, call, indirect) always uses the pointer.
	TypeOther
)

// String names the type field value.
func (t EntryType) String() string {
	switch t {
	case TypeInvalid:
		return "invalid"
	case TypeReturn:
		return "return"
	case TypeCond:
		return "cond"
	case TypeOther:
		return "other"
	}
	return "?"
}

// TypeForKind maps an instruction kind to the NLS type field written at
// update time.
func TypeForKind(k isa.Kind) EntryType {
	switch k {
	case isa.Return:
		return TypeReturn
	case isa.CondBranch:
		return TypeCond
	case isa.UncondBranch, isa.IndirectJump, isa.Call:
		return TypeOther
	}
	return TypeInvalid
}

// Entry is one NLS predictor: the type field plus the cache pointer. Set
// and Offset together are the paper's "line field" (set index high bits,
// instruction-within-line low bits); Way is the paper's "set field".
type Entry struct {
	Type   EntryType
	Set    uint16
	Offset uint8
	Way    uint8
}

// PointsTo reports whether the entry's pointer currently identifies the
// instruction at target: the set and offset must decompose target's address
// and the predicted cache slot must actually hold target's line right now.
// A pointer whose line has been displaced from the cache does NOT point to
// the target — the fetch would return the wrong line and misfetch (§7:
// "a branch destination that has been displaced from the instruction cache
// causes a misfetch penalty").
func (e Entry) PointsTo(c *cache.Cache, target isa.Addr) bool {
	return c.PointsTo(int(e.Set), int(e.Offset), int(e.Way), target)
}

// pointerFor builds the pointer fields for a target resident in way of its
// set.
func pointerFor(g cache.Geometry, target isa.Addr, way int) (set uint16, off, w uint8) {
	return uint16(g.SetIndex(target)), uint8(g.InstrOffset(target)), uint8(way)
}

// EntryBits returns the storage cost in bits of one NLS entry for the given
// cache geometry: 2 type bits + index bits + offset bits + way bits.
func EntryBits(g cache.Geometry) int { return 2 + g.NLSPointerBits() }
