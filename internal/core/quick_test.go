package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/isa"
)

// Property tests (testing/quick) over the NLS data structures.

// Any sequence of updates leaves every entry with a valid type and a
// pointer inside the cache geometry.
func TestQuickTableEntriesStayInRange(t *testing.T) {
	g := cache.MustGeometry(8*1024, 32, 2)
	tab := NewTable(256, g)
	f := func(ops []struct {
		PC     uint16
		Kind   uint8
		Taken  bool
		Target uint16
		Way    uint8
	}) bool {
		for _, op := range ops {
			kind := isa.Kind(op.Kind % uint8(isa.NumKinds))
			way := int(op.Way) % g.Assoc()
			tab.Update(isa.Addr(op.PC)&^3, kind, op.Taken,
				isa.Addr(op.Target)&^3, way)
		}
		for _, op := range ops {
			e := tab.Lookup(isa.Addr(op.PC) &^ 3)
			if e.Type > TypeOther {
				return false
			}
			if int(e.Set) >= g.NumSets() || int(e.Offset) >= g.InstrsPerLine() ||
				int(e.Way) >= g.Assoc() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A taken update immediately followed by a lookup with the target resident
// at the recorded way always points at the target.
func TestQuickUpdateThenPointsTo(t *testing.T) {
	g := cache.MustGeometry(4*1024, 32, 1)
	f := func(pcWord, tgtWord uint16) bool {
		c := cache.New(g)
		tab := NewTable(512, g)
		pc := isa.Addr(uint32(pcWord) * 4)
		target := isa.Addr(uint32(tgtWord) * 4)
		_, way := c.Access(target)
		tab.Update(pc, isa.UncondBranch, true, target, way)
		return tab.Lookup(pc).PointsTo(c, target)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PointsTo never reports true for a target whose line is absent.
func TestQuickPointsToRequiresResidency(t *testing.T) {
	g := cache.MustGeometry(4*1024, 32, 1)
	f := func(tgtWord uint16, set uint16, off, way uint8) bool {
		c := cache.New(g) // empty cache
		e := Entry{
			Type:   TypeOther,
			Set:    set % uint16(g.NumSets()),
			Offset: off % uint8(g.InstrsPerLine()),
			Way:    way % uint8(g.Assoc()),
		}
		return !e.PointsTo(c, isa.Addr(uint32(tgtWord)*4))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The line-coupled organization never returns a valid entry for a line the
// cache has replaced.
func TestQuickLineCoupledInvalidation(t *testing.T) {
	g := cache.MustGeometry(1024, 32, 1)
	f := func(branchWord uint16, evictions []uint16) bool {
		c := cache.New(g)
		l := NewLineCoupled(c, 2)
		branch := isa.Addr(uint32(branchWord) * 4)
		c.Access(branch)
		l.Update(branch, isa.Call, true, 0x2000, 0)
		evicted := false
		for _, w := range evictions {
			a := isa.Addr(uint32(w) * 4)
			if g.SetIndex(a) == g.SetIndex(branch) && g.LineAddr(a) != g.LineAddr(branch) {
				evicted = true
			}
			c.Access(a)
		}
		if !evicted {
			return true // branch line may still be resident; nothing to check
		}
		// After eviction the state must be invalid even if the line
		// returns.
		c.Access(branch)
		return l.Lookup(branch, g.SetIndex(branch), 0).Type == TypeInvalid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
