package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
)

func BenchmarkTableLookup(b *testing.B) {
	g := cache.MustGeometry(16*1024, 32, 1)
	tab := NewTable(1024, g)
	tab.Update(0x1000, isa.CondBranch, true, 0x2000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(isa.Addr(uint32(i*4) & 0xffff))
	}
}

func BenchmarkTableUpdate(b *testing.B) {
	g := cache.MustGeometry(16*1024, 32, 1)
	tab := NewTable(1024, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(isa.Addr(uint32(i*4)&0xffff), isa.CondBranch, i%2 == 0,
			isa.Addr(uint32(i*8)&0xffff), 0)
	}
}

func BenchmarkPointsTo(b *testing.B) {
	g := cache.MustGeometry(16*1024, 32, 2)
	c := cache.New(g)
	target := isa.Addr(0x2000)
	_, way := c.Access(target)
	e := Entry{Type: TypeOther, Set: uint16(g.SetIndex(target)),
		Offset: uint8(g.InstrOffset(target)), Way: uint8(way)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PointsTo(c, target)
	}
}
