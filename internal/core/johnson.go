package core

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// JohnsonCoupled reproduces the related-work design of §6.2: Johnson's
// cache-successor-index architecture as adopted by the TFP (MIPS R8000) —
// one predictor per four instructions, coupled to the cache line, with
// implicit one-bit direction prediction. The successor pointer is updated
// on *every* branch execution (taken → target location, not-taken →
// fall-through location), so the pointer itself encodes the last direction
// outcome. There is no decoupled PHT and no type field arbitration: a
// valid pointer is always followed.
//
// The paper's NLS design differs by updating the pointer only on taken
// branches and delegating direction to the two-level PHT; comparing the two
// isolates the value of decoupling.
type JohnsonCoupled struct {
	c           *cache.Cache
	g           cache.Geometry // c's geometry, cached off the hot paths
	perLine     int
	instrsPer   int
	instrShift  uint // log2(instrsPer)
	valid       []bool
	set         []uint16
	offset      []uint8
	way         []uint8
	slotsPerSet int
}

// JohnsonEntry is a successor pointer: the cache location the last
// execution of the covered branch continued at.
type JohnsonEntry struct {
	Valid  bool
	Set    uint16
	Offset uint8
	Way    uint8
}

// NewJohnson attaches successor-index predictors to the cache, one per four
// instructions as in the TFP.
func NewJohnson(c *cache.Cache) *JohnsonCoupled {
	g := c.Geometry()
	const instrsPerPred = 4
	if g.InstrsPerLine()%instrsPerPred != 0 {
		panic("core: line must hold a multiple of 4 instructions")
	}
	perLine := g.InstrsPerLine() / instrsPerPred
	n := g.NumSets() * g.Assoc() * perLine
	j := &JohnsonCoupled{
		c:           c,
		g:           g,
		perLine:     perLine,
		instrsPer:   instrsPerPred,
		instrShift:  2, // log2(instrsPerPred)
		valid:       make([]bool, n),
		set:         make([]uint16, n),
		offset:      make([]uint8, n),
		way:         make([]uint8, n),
		slotsPerSet: g.Assoc() * perLine,
	}
	c.SetOnReplace(j.invalidateLine)
	return j
}

func (j *JohnsonCoupled) invalidateLine(set, way int) {
	base := set*j.slotsPerSet + way*j.perLine
	for i := 0; i < j.perLine; i++ {
		j.valid[base+i] = false
	}
}

func (j *JohnsonCoupled) slotFor(set, way, offset int) int {
	return set*j.slotsPerSet + way*j.perLine + offset>>j.instrShift
}

// Lookup returns the successor pointer covering the branch at pc, resident
// at (set, way).
func (j *JohnsonCoupled) Lookup(pc isa.Addr, set, way int) JohnsonEntry {
	s := j.slotFor(set, way, j.g.InstrOffset(pc))
	return JohnsonEntry{Valid: j.valid[s], Set: j.set[s], Offset: j.offset[s], Way: j.way[s]}
}

// PointsTo reports whether the pointer currently identifies the instruction
// at target (same check as Entry.PointsTo).
func (e JohnsonEntry) PointsTo(c *cache.Cache, target isa.Addr) bool {
	return e.Valid && c.PointsTo(int(e.Set), int(e.Offset), int(e.Way), target)
}

// Update trains the pointer with where execution actually continued —
// called for every executed branch, taken or not ("the cache index is
// updated even when a non-taken branch is executed", §6.2). next is the
// address of the instruction that executed after the branch and nextWay the
// way where its line resides.
func (j *JohnsonCoupled) Update(pc isa.Addr, next isa.Addr, nextWay int) {
	j.UpdateAt(pc, next, nextWay, j.g.SetIndex(pc), -1)
}

// UpdateAt is Update with the branch's fetch-time cache slot passed in:
// set MUST be pc's set index, and way is a residency hint (see
// LineCoupled.UpdateAt — same contract, same fallback).
func (j *JohnsonCoupled) UpdateAt(pc, next isa.Addr, nextWay, set, way int) {
	if !j.c.HoldsAt(set, way, pc) {
		var resident bool
		if way, resident = j.c.Probe(pc); !resident {
			return
		}
	}
	g := j.g
	s := j.slotFor(set, way, g.InstrOffset(pc))
	j.valid[s] = true
	j.set[s] = uint16(g.SetIndex(next))
	j.offset[s] = uint8(g.InstrOffset(next))
	j.way[s] = uint8(nextWay)
}

// PerLine returns the number of predictors per line.
func (j *JohnsonCoupled) PerLine() int { return j.perLine }

// SizeBits returns the storage cost: pointer plus valid bit per slot.
func (j *JohnsonCoupled) SizeBits() int {
	g := j.c.Geometry()
	return len(j.valid) * (1 + g.NLSPointerBits())
}

// Name identifies the design for reports.
func (j *JohnsonCoupled) Name() string { return "Johnson successor-index" }

// Reset invalidates all predictors.
func (j *JohnsonCoupled) Reset() {
	for i := range j.valid {
		j.valid[i] = false
	}
}
