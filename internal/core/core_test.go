package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
)

func TestTypeForKind(t *testing.T) {
	cases := map[isa.Kind]EntryType{
		isa.Return:       TypeReturn,
		isa.CondBranch:   TypeCond,
		isa.UncondBranch: TypeOther,
		isa.IndirectJump: TypeOther,
		isa.Call:         TypeOther,
		isa.NonBranch:    TypeInvalid,
	}
	for k, want := range cases {
		if got := TypeForKind(k); got != want {
			t.Errorf("TypeForKind(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestEntryTypeString(t *testing.T) {
	for typ, want := range map[EntryType]string{
		TypeInvalid: "invalid", TypeReturn: "return", TypeCond: "cond", TypeOther: "other",
	} {
		if got := typ.String(); got != want {
			t.Errorf("String(%d) = %q", typ, got)
		}
	}
}

func TestEntryBits(t *testing.T) {
	// 8K direct: 256 sets (8 bits) + 3 offset bits + 0 way bits + 2 type
	// bits = 13.
	if got := EntryBits(cache.MustGeometry(8*1024, 32, 1)); got != 13 {
		t.Errorf("EntryBits(8K direct) = %d, want 13", got)
	}
	// 32K 4-way: 256 sets (8) + 3 + 2 way bits + 2 = 15.
	if got := EntryBits(cache.MustGeometry(32*1024, 32, 4)); got != 15 {
		t.Errorf("EntryBits(32K 4-way) = %d, want 15", got)
	}
}

func TestTableUpdateRules(t *testing.T) {
	g := cache.MustGeometry(8*1024, 32, 1)
	tab := NewTable(1024, g)
	pc := isa.Addr(0x1000)
	target := isa.Addr(0x2008)

	// Taken conditional: type and pointer both written.
	tab.Update(pc, isa.CondBranch, true, target, 0)
	e := tab.Lookup(pc)
	if e.Type != TypeCond {
		t.Fatalf("type = %v", e.Type)
	}
	if int(e.Set) != g.SetIndex(target) || int(e.Offset) != g.InstrOffset(target) {
		t.Fatalf("pointer = set %d off %d", e.Set, e.Offset)
	}

	// Not-taken execution: the type is refreshed but the pointer to the
	// taken target must be preserved (§4).
	tab.Update(pc, isa.CondBranch, false, 0, 0)
	e2 := tab.Lookup(pc)
	if e2 != e {
		t.Errorf("not-taken update changed the entry: %+v -> %+v", e, e2)
	}
}

func TestTableTagless(t *testing.T) {
	g := cache.MustGeometry(8*1024, 32, 1)
	tab := NewTable(512, g)
	pc := isa.Addr(0x1000)
	alias := pc + 512*4 // same index mod 512 words
	tab.Update(pc, isa.UncondBranch, true, 0x4000, 0)
	e := tab.Lookup(alias)
	if e.Type != TypeOther {
		t.Error("tag-less table should return the aliasing branch's entry")
	}
}

func TestTableIndexUsesWordAddress(t *testing.T) {
	g := cache.MustGeometry(8*1024, 32, 1)
	tab := NewTable(1024, g)
	tab.Update(0x1000, isa.Call, true, 0x4000, 0)
	if tab.Lookup(0x1004).Type != TypeInvalid {
		t.Error("adjacent instruction unexpectedly shares an entry")
	}
}

func TestPointsToTracksResidency(t *testing.T) {
	g := cache.MustGeometry(1024, 32, 1)
	c := cache.New(g)
	target := isa.Addr(0x2008)
	_, way := c.Access(target)
	e := Entry{Type: TypeOther, Set: uint16(g.SetIndex(target)), Offset: uint8(g.InstrOffset(target)), Way: uint8(way)}
	if !e.PointsTo(c, target) {
		t.Fatal("PointsTo false for resident target")
	}
	// Displace the target's line: the pointer goes stale.
	c.Access(target + 1024)
	if e.PointsTo(c, target) {
		t.Error("PointsTo true after the target line was displaced")
	}
	// Wrong offset within the line: points at a different instruction.
	c.Access(target)
	bad := e
	bad.Offset++
	if bad.PointsTo(c, target) {
		t.Error("PointsTo true with wrong instruction offset")
	}
}

func TestPointsToWrongWay(t *testing.T) {
	g := cache.MustGeometry(2048, 32, 2)
	c := cache.New(g)
	target := isa.Addr(0x2000)
	_, way := c.Access(target)
	e := Entry{Type: TypeOther, Set: uint16(g.SetIndex(target)), Offset: 0, Way: uint8(1 - way)}
	if e.PointsTo(c, target) {
		t.Error("PointsTo true with wrong way prediction")
	}
}

func TestTableSizeBits(t *testing.T) {
	g := cache.MustGeometry(8*1024, 32, 1)
	if got := NewTable(1024, g).SizeBits(); got != 1024*13 {
		t.Errorf("SizeBits = %d", got)
	}
}

func TestTableBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(100) did not panic")
		}
	}()
	NewTable(100, cache.MustGeometry(8*1024, 32, 1))
}

func TestLineCoupledSlotMapping(t *testing.T) {
	g := cache.MustGeometry(1024, 32, 1)
	c := cache.New(g)
	l := NewLineCoupled(c, 2)        // predictor 0 covers insns 0-3, 1 covers 4-7
	branchA := isa.Addr(0x1000)      // offset 0 -> slot 0
	branchB := isa.Addr(0x1000 + 16) // offset 4 -> slot 1
	c.Access(branchA)
	set := g.SetIndex(branchA)
	l.Update(branchA, isa.UncondBranch, true, 0x2000, 0)
	l.Update(branchB, isa.CondBranch, true, 0x3000, 0)
	ea := l.Lookup(branchA, set, 0)
	eb := l.Lookup(branchB, set, 0)
	if ea.Type != TypeOther || eb.Type != TypeCond {
		t.Errorf("slots shared: %v / %v", ea.Type, eb.Type)
	}
}

func TestLineCoupledInvalidationOnReplace(t *testing.T) {
	g := cache.MustGeometry(1024, 32, 1)
	c := cache.New(g)
	l := NewLineCoupled(c, 2)
	branch := isa.Addr(0x1000)
	c.Access(branch)
	l.Update(branch, isa.Call, true, 0x2000, 0)
	set := g.SetIndex(branch)
	if l.Lookup(branch, set, 0).Type != TypeOther {
		t.Fatal("entry not written")
	}
	// Replace the branch's line: predictor state must be discarded.
	c.Access(branch + 1024)
	if l.Lookup(branch, set, 0).Type != TypeInvalid {
		t.Error("prediction state survived line replacement")
	}
}

func TestLineCoupledDropsUpdateWhenNotResident(t *testing.T) {
	g := cache.MustGeometry(1024, 32, 1)
	c := cache.New(g)
	l := NewLineCoupled(c, 2)
	branch := isa.Addr(0x1000)
	// The branch's line is not in the cache at all: update is dropped.
	l.Update(branch, isa.Call, true, 0x2000, 0)
	c.Access(branch)
	if l.Lookup(branch, g.SetIndex(branch), 0).Type != TypeInvalid {
		t.Error("update applied for a non-resident branch line")
	}
}

func TestLineCoupledSizeLinearInCache(t *testing.T) {
	small := NewLineCoupled(cache.New(cache.MustGeometry(8*1024, 32, 1)), 2)
	big := NewLineCoupled(cache.New(cache.MustGeometry(16*1024, 32, 1)), 2)
	if big.SizeBits() <= small.SizeBits() {
		t.Error("NLS-cache size should grow with cache size")
	}
	// Roughly 2x entries; per-entry bits grow by one index bit.
	if ratio := float64(big.SizeBits()) / float64(small.SizeBits()); ratio < 2 || ratio > 2.4 {
		t.Errorf("size ratio 16K/8K = %v, want just over 2", ratio)
	}
}

func TestLineCoupledBadPerLinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLineCoupled(3) did not panic")
		}
	}()
	NewLineCoupled(cache.New(cache.MustGeometry(1024, 32, 1)), 3)
}

func TestJohnsonUpdateOnEveryExecution(t *testing.T) {
	g := cache.MustGeometry(1024, 32, 1)
	c := cache.New(g)
	j := NewJohnson(c)
	branch := isa.Addr(0x1000)
	fall := branch.Next()
	target := isa.Addr(0x1100) // set 8: no conflict with the branch's set-0 line
	c.Access(branch)
	c.Access(target)
	c.Access(fall)
	set := g.SetIndex(branch)

	// Taken execution points the successor at the target.
	j.Update(branch, target, 0)
	e := j.Lookup(branch, set, 0)
	if !e.Valid || !e.PointsTo(c, target) {
		t.Fatal("successor pointer not at target after taken")
	}
	// Not-taken execution re-points at the fall-through — Johnson's
	// one-bit behaviour (§6.2).
	j.Update(branch, fall, 0)
	e = j.Lookup(branch, set, 0)
	if !e.PointsTo(c, fall) {
		t.Error("successor pointer not re-pointed at fall-through")
	}
}

func TestJohnsonInvalidationOnReplace(t *testing.T) {
	g := cache.MustGeometry(1024, 32, 1)
	c := cache.New(g)
	j := NewJohnson(c)
	branch := isa.Addr(0x1000)
	c.Access(branch)
	j.Update(branch, 0x2000, 0)
	c.Access(branch + 1024) // replace
	if j.Lookup(branch, g.SetIndex(branch), 0).Valid {
		t.Error("Johnson pointer survived line replacement")
	}
}

func TestJohnsonPerLine(t *testing.T) {
	c := cache.New(cache.MustGeometry(1024, 32, 1))
	j := NewJohnson(c)
	if j.PerLine() != 2 { // 8 instructions per line / 4 per predictor
		t.Errorf("PerLine = %d, want 2", j.PerLine())
	}
}
