package core

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/isa"
)

// Table is the NLS-table: a tag-less, direct-mapped buffer of NLS entries
// indexed by the low-order bits of the branch instruction's address (§4.1).
// Because the table has no tags, two branches that alias to the same entry
// can use each other's prediction state; the paper shows this effect is
// small compared with the benefits of decoupling.
type Table struct {
	entries []Entry
	geom    cache.Geometry
	mask    uint32
}

// NewTable builds an NLS-table with the given number of entries (a power of
// two; the paper evaluates 512, 1024, and 2048) for a cache of the given
// geometry.
func NewTable(entries int, g cache.Geometry) *Table {
	if entries <= 0 || bits.OnesCount(uint(entries)) != 1 {
		panic(fmt.Sprintf("core: table entries %d must be a positive power of two", entries))
	}
	return &Table{
		entries: make([]Entry, entries),
		geom:    g,
		mask:    uint32(entries - 1),
	}
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Geometry returns the cache geometry the table's pointers refer to.
func (t *Table) Geometry() cache.Geometry { return t.geom }

func (t *Table) index(pc isa.Addr) uint32 { return pc.Word() & t.mask }

// Lookup returns the entry for the branch at pc. Tag-less: it always
// returns an entry, possibly one written by an aliasing branch.
func (t *Table) Lookup(pc isa.Addr) Entry { return t.entries[t.index(pc)] }

// Update trains the entry after the branch at pc resolves. All branches
// update the type field; only taken branches update the pointer, so a
// not-taken conditional preserves the pointer to its taken target (§4:
// "A conditional branch which executes the fall-through should not update
// the set and line field, since that would erase the pointer to the target
// instruction").
//
// For taken branches, target is the branch destination and way is the way
// of the cache set where the destination line resides (0 for direct
// mapped).
func (t *Table) Update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, way int) {
	e := &t.entries[t.index(pc)]
	e.Type = TypeForKind(kind)
	if taken {
		e.Set, e.Offset, e.Way = pointerFor(t.geom, target, way)
	}
}

// SizeBits returns the table's storage cost in bits.
func (t *Table) SizeBits() int { return len(t.entries) * EntryBits(t.geom) }

// Name identifies the table for reports, e.g. "1024 NLS-table".
func (t *Table) Name() string { return fmt.Sprintf("%d NLS-table", len(t.entries)) }

// Reset invalidates every entry.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = Entry{}
	}
}
