package core

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/isa"
)

// LineCoupled is the NLS-cache organization: k NLS predictors attached to
// every instruction cache line, sharing the line's address tag. Predictor
// slot j of a line covers instructions [j·(instrsPerLine/k),
// (j+1)·(instrsPerLine/k)) of that line; the paper found 2 predictors per
// 8-instruction line most effective, the first covering the first four
// instructions (§5.1).
//
// Because the predictors are coupled to the cache, their state is discarded
// when the line is replaced — the organization's central weakness (§4.1,
// §6.1) — and a lookup is only possible for a branch whose line is
// currently resident (which it always is at fetch time, since the branch
// was just fetched from the cache).
type LineCoupled struct {
	c           *cache.Cache
	g           cache.Geometry // c's geometry, cached off the hot paths
	perLine     int
	instrsPer   int  // instructions covered by one predictor slot
	instrShift  uint // log2(instrsPer); instrsPer divides a power of two
	entries     []Entry
	slotsPerSet int
}

// NewLineCoupled attaches perLine NLS predictors to every line of the
// cache. perLine must divide the instructions-per-line count. The
// constructor registers a replacement hook on the cache to discard
// predictor state when lines are replaced.
func NewLineCoupled(c *cache.Cache, perLine int) *LineCoupled {
	g := c.Geometry()
	if perLine <= 0 || g.InstrsPerLine()%perLine != 0 {
		panic(fmt.Sprintf("core: %d predictors per line does not divide %d instructions",
			perLine, g.InstrsPerLine()))
	}
	instrsPer := g.InstrsPerLine() / perLine
	l := &LineCoupled{
		c:           c,
		g:           g,
		perLine:     perLine,
		instrsPer:   instrsPer,
		instrShift:  uint(bits.TrailingZeros(uint(instrsPer))),
		entries:     make([]Entry, g.NumSets()*g.Assoc()*perLine),
		slotsPerSet: g.Assoc() * perLine,
	}
	c.SetOnReplace(l.invalidateLine)
	return l
}

// invalidateLine discards the predictors of the line at (set, way),
// modelling the loss of prediction state on replacement.
func (l *LineCoupled) invalidateLine(set, way int) {
	base := set*l.slotsPerSet + way*l.perLine
	for i := 0; i < l.perLine; i++ {
		l.entries[base+i] = Entry{}
	}
}

// slotFor maps a branch resident at (set, way) with the given
// instruction-offset-in-line to its predictor slot index. instrsPer
// divides the power-of-two instructions-per-line count, so it is itself a
// power of two and the divide is a shift.
func (l *LineCoupled) slotFor(set, way, offset int) int {
	return set*l.slotsPerSet + way*l.perLine + offset>>l.instrShift
}

// Lookup returns the NLS entry covering the branch at pc, which must be
// resident at (set, way) of the cache (the fetch that delivered the branch
// establishes this).
func (l *LineCoupled) Lookup(pc isa.Addr, set, way int) Entry {
	return l.entries[l.slotFor(set, way, l.g.InstrOffset(pc))]
}

// Update trains the predictor covering the branch at pc after it resolves.
// If the branch's line is no longer resident (it was displaced between
// fetch and update), the update is dropped — the state would have been
// discarded with the line anyway. Type is always written; the pointer only
// on taken branches, as for the NLS-table.
func (l *LineCoupled) Update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, targetWay int) {
	l.UpdateAt(pc, kind, taken, target, targetWay, l.g.SetIndex(pc), -1)
}

// UpdateAt is Update with the branch's fetch-time cache slot passed in:
// set MUST be pc's set index, and way is a residency hint (the way the
// branch was fetched from). When (set, way) still holds pc's line — the
// common case, since at most one fill can intervene between fetch and
// update — the residency probe collapses to a single tag compare; any
// stale or out-of-range hint falls back to the full probe, preserving
// Update's drop-on-displacement semantics bit for bit.
func (l *LineCoupled) UpdateAt(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, targetWay, set, way int) {
	if !l.c.HoldsAt(set, way, pc) {
		var resident bool
		if way, resident = l.c.Probe(pc); !resident {
			return
		}
	}
	g := l.g
	e := &l.entries[l.slotFor(set, way, g.InstrOffset(pc))]
	e.Type = TypeForKind(kind)
	if taken {
		e.Set, e.Offset, e.Way = pointerFor(g, target, targetWay)
	}
}

// PerLine returns the number of predictors per cache line.
func (l *LineCoupled) PerLine() int { return l.perLine }

// SizeBits returns the predictor storage cost in bits. The tag is shared
// with the cache line, so only the entries themselves are counted — this is
// why NLS-cache cost grows linearly with cache size (§6).
func (l *LineCoupled) SizeBits() int {
	return len(l.entries) * EntryBits(l.c.Geometry())
}

// Name identifies the organization for reports.
func (l *LineCoupled) Name() string {
	return fmt.Sprintf("NLS-cache (%d/line)", l.perLine)
}

// Reset invalidates all predictors (the cache is reset separately).
func (l *LineCoupled) Reset() {
	for i := range l.entries {
		l.entries[i] = Entry{}
	}
}
