package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nls_jobs_total", "Jobs received.")
	led := r.NewCounter("nls_flights_total", "Flights by role.", Label{"role", "leader"})
	shared := r.NewCounter("nls_flights_total", "Flights by role.", Label{"role", "shared"})
	g := r.NewGauge("nls_inflight", "Jobs executing now.")
	h := r.NewHistogram("nls_job_seconds", "Job latency.", []float64{0.1, 1, 10})

	c.Add(3)
	c.Inc()
	led.Inc()
	shared.Add(99)
	g.Set(7)
	g.Add(-2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	want := []string{
		"# HELP nls_jobs_total Jobs received.",
		"# TYPE nls_jobs_total counter",
		"nls_jobs_total 4",
		`nls_flights_total{role="leader"} 1`,
		`nls_flights_total{role="shared"} 99`,
		"# TYPE nls_inflight gauge",
		"nls_inflight 5",
		"# TYPE nls_job_seconds histogram",
		`nls_job_seconds_bucket{le="0.1"} 1`,
		`nls_job_seconds_bucket{le="1"} 2`,
		`nls_job_seconds_bucket{le="10"} 3`,
		`nls_job_seconds_bucket{le="+Inf"} 4`,
		"nls_job_seconds_sum 55.55",
		"nls_job_seconds_count 4",
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q\n--- got ---\n%s", line, out)
		}
	}

	// Families are sorted by name: flights before inflight before jobs_total
	// before job_seconds? Lexicographic over full names.
	flights := strings.Index(out, "nls_flights_total")
	inflight := strings.Index(out, "nls_inflight")
	jobs := strings.Index(out, "nls_jobs_total")
	if !(flights < inflight && inflight < jobs) {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestRegistryDeterministicOutput(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "b")
	r.NewCounter("a_total", "a")
	r.NewGauge("c", "c")
	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatal("exposition output is not deterministic across renders")
		}
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "x")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter accepted a negative delta: %d", c.Value())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "h", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(2)
	h.Observe(3)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, line := range []string{
		`h_bucket{le="1"} 1`, `h_bucket{le="2"} 2`, `h_bucket{le="+Inf"} 3`, `h_count 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if h.Count() != 3 || h.Sum() != 6 {
		t.Errorf("count/sum = %d/%g, want 3/6", h.Count(), h.Sum())
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("ok_total", "ok")
	mustPanic("invalid name", func() { r.NewCounter("bad name", "x") })
	mustPanic("invalid label", func() { r.NewCounter("ok2_total", "x", Label{"bad key", "v"}) })
	mustPanic("kind mismatch", func() { r.NewGauge("ok_total", "x") })
	mustPanic("duplicate series", func() { r.NewCounter("ok_total", "ok") })
	mustPanic("non-ascending buckets", func() { r.NewHistogram("h", "h", []float64{2, 1}) })
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", "e", Label{"path", `a"b\c` + "\n"})
	c.Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if want := `esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want+"\n") {
		t.Errorf("escaped series missing; got:\n%s", b.String())
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h", "h", []float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				var b strings.Builder
				if i%100 == 0 {
					r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-0.25*workers*per) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), 0.25*workers*per)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1\n") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}
