// Package telemetry is the repo's dependency-free observability layer: a
// metrics registry of atomic counters, gauges, and fixed-bucket histograms
// with Prometheus text-format exposition (DESIGN.md §15), plus a sim-time
// trace-event exporter riding the fetch probe and prefetcher seams (see
// simtrace.go).
//
// The registry is the single source of truth for every service counter:
// nlsserve's /metricsz scrapes it directly and /statsz is re-expressed as a
// JSON view over the same atomics, so the two endpoints can never disagree
// about a counter's value. Everything is allocation-free on the update
// path — Counter.Add and Gauge.Set are one atomic op, Histogram.Observe is
// a branchless bucket walk plus two atomics — so metrics are safe to thread
// through the worker pool and the executor without perturbing throughput.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name=value pair attached to a metric series at
// registration time. Series of the same family (metric name) are
// distinguished by their label sets.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain one from Registry.NewCounter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0; a negative delta is a
// programming error and is dropped to keep the series monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are cumulative in the
// exposition (Prometheus `le` semantics); Observe is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefSecondsBuckets is the default latency bucket layout, sized for jobs
// that span from sub-millisecond warm store hits to multi-second cold
// sweeps.
func DefSecondsBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// metricKind tags a family's exposition TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one registered (family, label set) pair.
type series struct {
	labels []Label
	key    string // rendered label signature, for ordering and dedup
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration takes a lock; updates via the returned handles are
// lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration-independent sorted order, rebuilt lazily
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// register validates and inserts one series, panicking on programmer error
// (invalid name, kind mismatch within a family, duplicate label set):
// metric registration happens at construction time with literal names, so
// failing loudly beats silently dropping a series.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *series {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l.Key, name))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	s := &series{labels: sorted, key: renderLabels(sorted)}

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.names = nil
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	for _, prev := range f.series {
		if prev.key == s.key {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.key))
		}
	}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	return s
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	s.c = &Counter{}
	return s.c
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	s.g = &Gauge{}
	return s.g
}

// NewHistogram registers and returns a histogram series with the given
// ascending upper bucket bounds (+Inf is implicit; nil takes
// DefSecondsBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefSecondsBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	s := r.register(name, help, kindHistogram, labels)
	s.h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return s.h
}

// renderLabels formats a sorted label set as {k="v",...}, or "" when empty.
// Values are escaped per the exposition format (backslash, quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// withExtraLabel re-renders a label set with one more pair appended (used
// for histogram `le`).
func withExtraLabel(labels []Label, key, value string) string {
	all := append(append([]Label(nil), labels...), Label{key, value})
	return renderLabels(all)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4), families sorted by name and series by label signature,
// so the output is deterministic for a fixed set of values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	if r.names == nil {
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
	}
	names := r.names
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.key, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.key, s.g.Value())
			case kindHistogram:
				h := s.h
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, withExtraLabel(s.labels, "le", formatFloat(bound)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, withExtraLabel(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.key, formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.key, cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the exposition (the /metricsz
// endpoint body).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
