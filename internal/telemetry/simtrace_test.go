package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/fetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

const traceTestInsns = 60_000

// traceTestSpec is the recorded configuration: the paper NLS-table frontend
// decoupled through an 8-entry FTQ with FDIP prefetching into an 8KB
// cache — small enough that the li workload at 60k instructions produces
// breaks, prefetch traffic, and real FTQ occupancy swings.
func traceTestSpec() arch.Spec {
	s := arch.NLSTable(1024)
	s.Cache.SizeBytes = 8 * 1024
	s.Prefetch = &arch.PrefetchSpec{Kind: arch.PrefKindFDIP, FTQDepth: 8}
	return s
}

// recordTrace replays li through a recorder-attached engine and returns the
// recorder plus the run's counters.
func recordTrace(t *testing.T, opts SimRecorderOptions) (*SimRecorder, uint64) {
	t.Helper()
	engine := traceTestSpec().MustBuild()
	rec := NewSimRecorder(opts)
	if err := rec.Attach(engine); err != nil {
		t.Fatal(err)
	}
	src, err := workload.Li().Source()
	if err != nil {
		t.Fatal(err)
	}
	m := fetch.RunChunks(engine, trace.NewSourceChunks(src, traceTestInsns, trace.DefaultChunkRecords))
	return rec, m.Breaks
}

// TestTraceGolden pins the byte-exact trace-event export for a fixed
// (workload, spec, options) triple — the `make trace-golden` gate. The
// export must be deterministic: sim-time timestamps only, fixed event
// order, sorted JSON keys. Regenerate with `go test ./internal/telemetry
// -run TraceGolden -update` and review the diff.
func TestTraceGolden(t *testing.T) {
	rec, _ := recordTrace(t, SimRecorderOptions{SampleEvery: 256, MaxEvents: 1200})
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export diverged from %s (%d vs %d bytes); regenerate with -update and review",
			golden, buf.Len(), len(want))
	}

	// The golden must be a valid trace-event document with the pinned schema.
	var doc struct {
		Schema      string       `json:"schema"`
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Schema != TraceSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, TraceSchema)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export holds no events")
	}
}

// TestTraceContent checks the recorder saw the run: break instants,
// FTQ occupancy samples, and the full prefetch lifecycle.
func TestTraceContent(t *testing.T) {
	rec, breaks := recordTrace(t, SimRecorderOptions{SampleEvery: 64})
	tot := rec.Totals()
	if tot.Breaks != breaks {
		t.Errorf("recorder saw %d breaks, engine counted %d", tot.Breaks, breaks)
	}
	if tot.WrongBreaks == 0 || len(tot.Causes) == 0 {
		t.Errorf("no wrong breaks recorded (wrong=%d causes=%v)", tot.WrongBreaks, tot.Causes)
	}
	if tot.FTQSamples == 0 {
		t.Error("no FTQ occupancy samples")
	}
	for _, kind := range []string{"issue", "fill", "useful"} {
		if tot.Prefetch[kind] == 0 {
			t.Errorf("no %q prefetch lifecycle events (got %v)", kind, tot.Prefetch)
		}
	}

	phs := map[string]int{}
	cats := map[string]int{}
	var lastTS uint64
	tsOrdered := true
	for _, ev := range rec.Events() {
		phs[ev.Ph]++
		cats[ev.Cat]++
		if ev.Ph != "M" {
			if ev.TS < lastTS {
				tsOrdered = false
			}
			lastTS = ev.TS
		}
	}
	if !tsOrdered {
		t.Error("event timestamps are not monotone in emission order")
	}
	for _, ph := range []string{"M", "i", "C", "b", "e"} {
		if phs[ph] == 0 {
			t.Errorf("no %q-phase events (got %v)", ph, phs)
		}
	}
	for _, cat := range []string{"break", "ftq", "prefetch"} {
		if cats[cat] == 0 {
			t.Errorf("no %q-category events (got %v)", cat, cats)
		}
	}
	if names := rec.CauseNames(); len(names) == 0 {
		t.Error("CauseNames is empty")
	}
}

// TestTraceEventCap: past MaxEvents, events are dropped and counted, and
// the totals keep accumulating.
func TestTraceEventCap(t *testing.T) {
	rec, _ := recordTrace(t, SimRecorderOptions{SampleEvery: 16, MaxEvents: 50})
	if got := len(rec.Events()); got > 50 {
		t.Errorf("cap 50 exceeded: %d events", got)
	}
	tot := rec.Totals()
	if tot.DroppedEvents == 0 {
		t.Error("tiny cap dropped nothing")
	}
	if tot.Breaks == 0 || tot.FTQSamples == 0 {
		t.Errorf("totals stopped at the cap: breaks=%d samples=%d", tot.Breaks, tot.FTQSamples)
	}
}

// TestSimRecorderCountersBitIdentical is the zero-perturbation gate: a
// recorder-attached replay must produce counters bit-identical to a bare
// replay of the same spec, both with and without a prefetcher in the spec.
func TestSimRecorderCountersBitIdentical(t *testing.T) {
	specs := map[string]arch.Spec{
		"fdip": traceTestSpec(),
		"bare": arch.NLSTable(1024),
	}
	for name, s := range specs {
		t.Run(name, func(t *testing.T) {
			run := func(record bool) string {
				engine := s.MustBuild()
				if record {
					rec := NewSimRecorder(SimRecorderOptions{SampleEvery: 32})
					if err := rec.Attach(engine); err != nil {
						t.Fatal(err)
					}
				}
				src, err := workload.Li().Source()
				if err != nil {
					t.Fatal(err)
				}
				m := fetch.RunChunks(engine, trace.NewSourceChunks(src, traceTestInsns, trace.DefaultChunkRecords))
				b, err := json.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
				return string(b)
			}
			bare, recorded := run(false), run(true)
			if bare != recorded {
				t.Errorf("recorder perturbed the run:\nbare     %s\nrecorded %s", bare, recorded)
			}
		})
	}
}
