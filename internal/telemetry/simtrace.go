package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/isa"
)

// Sim-time pipeline trace export (DESIGN.md §15). A SimRecorder rides the
// two zero-perturbation observation seams the decoupled frontend exposes —
// the fetch.Probe break stream and the fetch.Prefetcher access/FTQ streams,
// plus the cache's prefetch lifecycle observer — and emits Chrome
// trace-event JSON (schema nls-trace/v1) viewable in Perfetto or
// chrome://tracing. Time is simulation time: the i-cache's access clock,
// rendered as one microsecond per access, so a trace of the same workload
// at the same seed is byte-deterministic (pinned by `make trace-golden`).
//
// The recorder observes; it must not change what the engine computes. It
// forwards the prefetcher streams to the policy it wraps verbatim, and the
// probe contract already guarantees counter bit-identity — asserted by
// TestSimRecorderCountersBitIdentical for both prefetching and
// non-prefetching specs.

// TraceSchema identifies the trace-event document layout.
const TraceSchema = "nls-trace/v1"

// TraceEvent is one Chrome trace-event object. Field order is fixed by the
// struct so the export is deterministic.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceTotals is the whole-run summary embedded in the document's
// otherData, so a trace is self-describing even when the event cap dropped
// the tail.
type TraceTotals struct {
	Breaks        uint64            `json:"breaks"`
	WrongBreaks   uint64            `json:"wrong_breaks"`
	Causes        map[string]uint64 `json:"causes,omitempty"`
	FTQSamples    uint64            `json:"ftq_samples"`
	Prefetch      map[string]uint64 `json:"prefetch,omitempty"`
	DroppedEvents uint64            `json:"dropped_events"`
}

// traceDoc is the on-disk document: the standard trace-event container
// object with the schema and totals in otherData.
type traceDoc struct {
	Schema          string         `json:"schema"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
	TraceEvents     []TraceEvent   `json:"traceEvents"`
}

// Trace-event thread ids: one lane per pipeline stage.
const (
	tidFetch    = 1 // break-cause instants (the fetch/decode stage)
	tidFTQ      = 2 // FTQ occupancy counter
	tidPrefetch = 3 // prefetch lifecycle spans and instants
)

// SimRecorderOptions sizes a recorder.
type SimRecorderOptions struct {
	// SampleEvery is the fetch-block access period between counter samples
	// (FTQ occupancy, prefetch lifecycle curves). <= 0 takes 64.
	SampleEvery int
	// MaxEvents caps the emitted event count; past it events are counted
	// in Totals.DroppedEvents instead of stored. <= 0 takes 20000.
	MaxEvents int
}

func (o SimRecorderOptions) withDefaults() SimRecorderOptions {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 20000
	}
	return o
}

// SimRecorder collects sim-time pipeline events from one engine replay. It
// implements fetch.Probe and fetch.Prefetcher; build with NewSimRecorder,
// wire with Attach, replay, then WriteJSON. A recorder is single-run,
// single-goroutine, like the probe protocol it rides.
type SimRecorder struct {
	opts   SimRecorderOptions
	events []TraceEvent
	totals TraceTotals

	icache *cache.Cache
	ftqLen func() int
	inner  fetch.Prefetcher

	accesses uint64 // fetch-block accesses seen, for the sample cadence
}

// NewSimRecorder builds a recorder.
func NewSimRecorder(opts SimRecorderOptions) *SimRecorder {
	r := &SimRecorder{opts: opts.withDefaults()}
	r.totals.Causes = make(map[string]uint64)
	r.totals.Prefetch = make(map[string]uint64)
	r.events = append(r.events,
		TraceEvent{Name: "thread_name", Ph: "M", TID: tidFetch,
			Args: map[string]any{"name": "fetch breaks"}},
		TraceEvent{Name: "thread_name", Ph: "M", TID: tidFTQ,
			Args: map[string]any{"name": "ftq"}},
		TraceEvent{Name: "thread_name", Ph: "M", TID: tidPrefetch,
			Args: map[string]any{"name": "prefetch"}},
	)
	return r
}

// Attach wires the recorder to a Frontend-based engine: the break probe
// always; the prefetcher wrap, FTQ occupancy source, and cache lifecycle
// observer when the engine supports them. Attach before the run starts and
// attach each recorder to exactly one engine.
func (r *SimRecorder) Attach(e fetch.Engine) error {
	pa, ok := e.(fetch.ProbeAttacher)
	if !ok {
		return fmt.Errorf("telemetry: engine %T supports no probe", e)
	}
	pa.AttachProbe(r)

	if pfa, ok := e.(fetch.PrefetchAttacher); ok {
		r.icache = pfa.ICache()
		if r.icache.PrefetchEnabled() {
			r.icache.SetPrefetchObserver(r.onPrefetchEvent)
		}
		if pg, ok := e.(interface{ Prefetcher() fetch.Prefetcher }); ok {
			r.inner = pg.Prefetcher()
		}
		pfa.AttachPrefetcher(r)
	}
	if fl, ok := e.(interface{ FTQLen() int }); ok {
		r.ftqLen = fl.FTQLen
	}
	return nil
}

// now returns the sim-time timestamp: the i-cache access clock.
func (r *SimRecorder) now() uint64 {
	if r.icache == nil {
		return r.accesses
	}
	return r.icache.Clock()
}

// emit appends one event, honoring the cap.
func (r *SimRecorder) emit(ev TraceEvent) {
	if len(r.events) >= r.opts.MaxEvents {
		r.totals.DroppedEvents++
		return
	}
	r.events = append(r.events, ev)
}

// Break implements fetch.Probe: wrong fetches become instant events named
// by their root cause, on the fetch lane.
func (r *SimRecorder) Break(ev fetch.BreakEvent) {
	r.totals.Breaks++
	if ev.Penalty == fetch.PenaltyNone {
		return
	}
	r.totals.WrongBreaks++
	cause := ev.Cause.String()
	r.totals.Causes[cause]++
	r.emit(TraceEvent{
		Name: cause, Cat: "break", Ph: "i", TS: r.now(), TID: tidFetch,
		Args: map[string]any{
			"pc":      fmt.Sprintf("%#x", uint64(ev.PC)),
			"kind":    ev.Kind.String(),
			"penalty": ev.Penalty.String(),
		},
	})
}

// OnAccess implements fetch.Prefetcher: forward to the wrapped policy, then
// sample the occupancy and lifecycle counters on the configured cadence.
func (r *SimRecorder) OnAccess(pc isa.Addr, hit bool) {
	if r.inner != nil {
		r.inner.OnAccess(pc, hit)
	}
	r.accesses++
	if r.accesses%uint64(r.opts.SampleEvery) != 0 {
		return
	}
	r.sample()
}

// OnFTQPush implements fetch.Prefetcher: forward only (occupancy is
// sampled on the fetch-stage cadence, where the queue is quiescent).
func (r *SimRecorder) OnFTQPush(addr isa.Addr) {
	if r.inner != nil {
		r.inner.OnFTQPush(addr)
	}
}

// Name implements fetch.Prefetcher.
func (r *SimRecorder) Name() string {
	if r.inner != nil {
		return r.inner.Name() + " (traced)"
	}
	return "trace-recorder"
}

// Reset implements fetch.Prefetcher, forwarding to the wrapped policy. The
// recorder's own stream is cumulative across Reset — a reset mid-recording
// shows up in the trace rather than erasing it.
func (r *SimRecorder) Reset() {
	if r.inner != nil {
		r.inner.Reset()
	}
}

// sample emits the periodic counter events: FTQ occupancy and the
// cumulative prefetch lifecycle curves.
func (r *SimRecorder) sample() {
	ts := r.now()
	r.totals.FTQSamples++
	if r.ftqLen != nil {
		r.emit(TraceEvent{Name: "ftq_occupancy", Cat: "ftq", Ph: "C", TS: ts,
			TID: tidFTQ, Args: map[string]any{"entries": r.ftqLen()}})
	}
	if r.icache != nil && r.icache.PrefetchEnabled() {
		st := r.icache.PrefetchStats()
		r.emit(TraceEvent{Name: "prefetch_lifecycle", Cat: "prefetch", Ph: "C",
			TS: ts, TID: tidPrefetch, Args: map[string]any{
				"issued": st.Issued, "useful": st.Useful, "late": st.Late,
				"dropped": st.Dropped, "unused": st.Unused,
			}})
	}
}

// onPrefetchEvent receives the cache's lifecycle transitions: issue→fill is
// an async span per line (id = the line tag), everything else an instant.
func (r *SimRecorder) onPrefetchEvent(ev cache.PrefetchEvent) {
	r.totals.Prefetch[ev.Kind.String()]++
	id := fmt.Sprintf("%#x", ev.Line)
	switch ev.Kind {
	case cache.PrefetchIssue:
		r.emit(TraceEvent{Name: "inflight", Cat: "prefetch", Ph: "b", TS: ev.Clock,
			TID: tidPrefetch, ID: id})
	case cache.PrefetchFill, cache.PrefetchLate:
		// Both end the in-flight span: a fill installs the line, a late
		// demand miss takes over the MSHR.
		r.emit(TraceEvent{Name: "inflight", Cat: "prefetch", Ph: "e", TS: ev.Clock,
			TID: tidPrefetch, ID: id,
			Args: map[string]any{"outcome": ev.Kind.String()}})
	default:
		r.emit(TraceEvent{Name: ev.Kind.String(), Cat: "prefetch", Ph: "i",
			TS: ev.Clock, TID: tidPrefetch, ID: id})
	}
}

// Totals returns the whole-run summary.
func (r *SimRecorder) Totals() TraceTotals { return r.totals }

// Events returns the collected events (metadata first, then emission
// order).
func (r *SimRecorder) Events() []TraceEvent { return r.events }

// WriteJSON writes the trace-event document. The output is deterministic
// for a deterministic replay: events are emitted in simulation order and
// map keys marshal sorted.
func (r *SimRecorder) WriteJSON(w io.Writer) error {
	doc := traceDoc{
		Schema:          TraceSchema,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"totals": r.totals},
		TraceEvents:     r.events,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// CauseNames returns the recorded break causes sorted by count descending
// (ties by name), for reports.
func (r *SimRecorder) CauseNames() []string {
	names := make([]string, 0, len(r.totals.Causes))
	for k := range r.totals.Causes {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		ci, cj := r.totals.Causes[names[i]], r.totals.Causes[names[j]]
		if ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	return names
}
