package btb

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{128, 1}, true},
		{Config{128, 4}, true},
		{Config{256, 2}, true},
		{Config{0, 1}, false},
		{Config{100, 1}, false},
		{Config{128, 3}, false},
		{Config{128, 0}, false},
		{Config{2, 4}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestConfigString(t *testing.T) {
	if got := (Config{128, 1}).String(); got != "128-entry direct BTB" {
		t.Errorf("String = %q", got)
	}
	if got := (Config{256, 4}).String(); got != "256-entry 4-way BTB" {
		t.Errorf("String = %q", got)
	}
}

func TestTakenOnlyAllocation(t *testing.T) {
	b := New(Config{Entries: 16, Assoc: 1})
	pc := isa.Addr(0x1000)
	if _, hit := b.Lookup(pc); hit {
		t.Error("cold lookup hit")
	}
	b.RecordTaken(pc, 0x2000, isa.CondBranch)
	e, hit := b.Lookup(pc)
	if !hit || e.Target != 0x2000 || e.Kind != isa.CondBranch {
		t.Fatalf("after RecordTaken: %+v hit=%v", e, hit)
	}
}

func TestEntryRetainedOnNotTaken(t *testing.T) {
	// The paper's policy: a not-taken execution does not touch the BTB,
	// so the taken target stays available. The engine simply never
	// calls RecordTaken for not-taken branches; the entry must persist
	// across other lookups.
	b := New(Config{Entries: 16, Assoc: 1})
	pc := isa.Addr(0x1000)
	b.RecordTaken(pc, 0x2000, isa.CondBranch)
	for i := 0; i < 10; i++ {
		b.Lookup(pc) // not-taken executions only look up
	}
	e, hit := b.Probe(pc)
	if !hit || e.Target != 0x2000 {
		t.Error("entry lost without a conflicting allocation")
	}
}

func TestIndirectTargetRefresh(t *testing.T) {
	b := New(Config{Entries: 16, Assoc: 1})
	pc := isa.Addr(0x1000)
	b.RecordTaken(pc, 0x2000, isa.IndirectJump)
	b.RecordTaken(pc, 0x3000, isa.IndirectJump)
	e, _ := b.Probe(pc)
	if e.Target != 0x3000 {
		t.Errorf("indirect target not refreshed: %v", e.Target)
	}
}

func TestTagDisambiguation(t *testing.T) {
	b := New(Config{Entries: 16, Assoc: 1})
	pc := isa.Addr(0x1000)
	alias := pc + 16*4 // same set (16 sets, word-indexed), different tag
	b.RecordTaken(pc, 0x2000, isa.CondBranch)
	if _, hit := b.Probe(alias); hit {
		t.Error("aliasing address hit a tagged entry")
	}
}

func TestConflictEviction(t *testing.T) {
	b := New(Config{Entries: 16, Assoc: 1})
	pc := isa.Addr(0x1000)
	alias := pc + 16*4
	b.RecordTaken(pc, 0x2000, isa.CondBranch)
	b.RecordTaken(alias, 0x4000, isa.UncondBranch)
	if _, hit := b.Probe(pc); hit {
		t.Error("direct-mapped conflict did not evict")
	}
	e, hit := b.Probe(alias)
	if !hit || e.Target != 0x4000 || e.Kind != isa.UncondBranch {
		t.Error("replacing entry wrong")
	}
}

func TestLRUWithin4Way(t *testing.T) {
	b := New(Config{Entries: 16, Assoc: 4}) // 4 sets
	// Five branches mapping to set 0: word-index multiples of 4.
	pcs := make([]isa.Addr, 5)
	for i := range pcs {
		pcs[i] = isa.Addr(0x1000 + i*4*4*4) // word = 0x400+16i, set 0
	}
	for _, pc := range pcs[:4] {
		b.RecordTaken(pc, 0x2000, isa.CondBranch)
	}
	b.Lookup(pcs[0]) // refresh oldest
	b.RecordTaken(pcs[4], 0x2000, isa.CondBranch)
	if _, hit := b.Probe(pcs[1]); hit {
		t.Error("LRU victim (pcs[1]) still resident")
	}
	if _, hit := b.Probe(pcs[0]); !hit {
		t.Error("refreshed entry evicted")
	}
}

func TestHitRate(t *testing.T) {
	b := New(Config{Entries: 16, Assoc: 1})
	if b.HitRate() != 0 {
		t.Error("HitRate nonzero before lookups")
	}
	b.Lookup(0x1000)
	b.RecordTaken(0x1000, 0x2000, isa.Call)
	b.Lookup(0x1000)
	if got := b.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v", got)
	}
}

func TestReset(t *testing.T) {
	b := New(Config{Entries: 16, Assoc: 2})
	b.RecordTaken(0x1000, 0x2000, isa.Call)
	b.Lookup(0x1000)
	b.Reset()
	if _, hit := b.Probe(0x1000); hit {
		t.Error("contents survived Reset")
	}
	if b.HitRate() != 0 {
		t.Error("stats survived Reset")
	}
}

// refBTB is a straightforward map+LRU-list model for cross-checking.
type refBTB struct {
	cfg  Config
	sets [][]refEntry
}

type refEntry struct {
	word   uint32
	target isa.Addr
	kind   isa.Kind
}

func newRefBTB(cfg Config) *refBTB {
	return &refBTB{cfg: cfg, sets: make([][]refEntry, cfg.Entries/cfg.Assoc)}
}

func (r *refBTB) setOf(pc isa.Addr) int {
	return int(pc.Word()) % len(r.sets)
}

func (r *refBTB) lookup(pc isa.Addr) (Entry, bool) {
	s := r.sets[r.setOf(pc)]
	for i, e := range s {
		if e.word == pc.Word() {
			copy(s[1:i+1], s[:i])
			s[0] = e
			return Entry{Target: e.target, Kind: e.kind}, true
		}
	}
	return Entry{}, false
}

func (r *refBTB) recordTaken(pc, target isa.Addr, kind isa.Kind) {
	set := r.setOf(pc)
	s := r.sets[set]
	for i, e := range s {
		if e.word == pc.Word() {
			e.target, e.kind = target, kind
			copy(s[1:i+1], s[:i])
			s[0] = e
			return
		}
	}
	s = append([]refEntry{{pc.Word(), target, kind}}, s...)
	if len(s) > r.cfg.Assoc {
		s = s[:r.cfg.Assoc]
	}
	r.sets[set] = s
}

func TestAgainstReferenceModel(t *testing.T) {
	for _, assoc := range []int{1, 2, 4} {
		cfg := Config{Entries: 64, Assoc: assoc}
		b := New(cfg)
		ref := newRefBTB(cfg)
		rng := rand.New(rand.NewSource(int64(assoc)))
		for i := 0; i < 50000; i++ {
			pc := isa.Addr(uint32(rng.Intn(1024)*4) + 0x1000)
			if rng.Intn(2) == 0 {
				got, hitGot := b.Lookup(pc)
				want, hitWant := ref.lookup(pc)
				if hitGot != hitWant || (hitGot && got != want) {
					t.Fatalf("assoc=%d step=%d lookup(%v): got %+v/%v want %+v/%v",
						assoc, i, pc, got, hitGot, want, hitWant)
				}
			} else {
				target := isa.Addr(uint32(rng.Intn(1024)*4) + 0x8000)
				kind := isa.Kind(1 + rng.Intn(4))
				b.RecordTaken(pc, target, kind)
				ref.recordTaken(pc, target, kind)
			}
		}
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{Entries: 100, Assoc: 1})
}
