// Package btb implements the decoupled branch target buffer the paper
// compares NLS against (§3).
//
// The BTB stores, per entry, a tag identifying the branch, the full target
// address of the branch's most recent taken execution, and the branch type.
// Following the paper: only taken branches are allocated; when a resident
// branch executes not-taken, the entry (and its target) is retained ("If a
// branch is not taken while it is in the BTB, we leave the entry in the BTB
// unmodified"); replacement is LRU within a set. Direction prediction is
// NOT stored here — it lives in the decoupled PHT (package pht).
package btb

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// Config sizes a BTB.
type Config struct {
	Entries int // total entries (power of two)
	Assoc   int // 1, 2, or 4 in the paper
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0 || bits.OnesCount(uint(c.Entries)) != 1:
		return fmt.Errorf("btb: entries %d must be a positive power of two", c.Entries)
	case c.Assoc <= 0 || bits.OnesCount(uint(c.Assoc)) != 1:
		return fmt.Errorf("btb: associativity %d must be a positive power of two", c.Assoc)
	case c.Entries < c.Assoc:
		return fmt.Errorf("btb: %d entries cannot support associativity %d", c.Entries, c.Assoc)
	}
	return nil
}

// String describes the configuration, e.g. "128-entry 4-way BTB".
func (c Config) String() string {
	if c.Assoc == 1 {
		return fmt.Sprintf("%d-entry direct BTB", c.Entries)
	}
	return fmt.Sprintf("%d-entry %d-way BTB", c.Entries, c.Assoc)
}

// Entry is the payload returned by a BTB hit.
type Entry struct {
	Target isa.Addr
	Kind   isa.Kind
}

type slot struct {
	tag    uint32
	target isa.Addr
	kind   isa.Kind
	valid  bool
	stamp  uint64
}

// BTB is a set-associative, LRU, taken-allocate branch target buffer.
type BTB struct {
	cfg     Config
	sets    int
	setMask uint32
	slots   []slot
	clock   uint64

	lookups, hits uint64
}

// New builds an empty BTB. It panics on an invalid configuration (use
// Config.Validate to check first).
func New(cfg Config) *BTB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Entries / cfg.Assoc
	return &BTB{
		cfg:     cfg,
		sets:    sets,
		setMask: uint32(sets - 1),
		slots:   make([]slot, cfg.Entries),
	}
}

// Config returns the BTB's configuration.
func (b *BTB) Config() Config { return b.cfg }

func (b *BTB) setOf(pc isa.Addr) int { return int(pc.Word() & b.setMask) }

func (b *BTB) tagOf(pc isa.Addr) uint32 { return pc.Word() >> uint(bits.TrailingZeros(uint(b.sets))) }

// Lookup probes the BTB at fetch time. A hit refreshes the entry's LRU
// state, models the real access.
func (b *BTB) Lookup(pc isa.Addr) (Entry, bool) {
	b.lookups++
	set, tag := b.setOf(pc), b.tagOf(pc)
	b.clock++
	for w := 0; w < b.cfg.Assoc; w++ {
		s := &b.slots[set*b.cfg.Assoc+w]
		if s.valid && s.tag == tag {
			s.stamp = b.clock
			b.hits++
			return Entry{Target: s.target, Kind: s.kind}, true
		}
	}
	return Entry{}, false
}

// Probe is Lookup without any state change or statistics, for tests.
func (b *BTB) Probe(pc isa.Addr) (Entry, bool) {
	set, tag := b.setOf(pc), b.tagOf(pc)
	for w := 0; w < b.cfg.Assoc; w++ {
		s := &b.slots[set*b.cfg.Assoc+w]
		if s.valid && s.tag == tag {
			return Entry{Target: s.target, Kind: s.kind}, true
		}
	}
	return Entry{}, false
}

// RecordTaken updates the BTB after a taken branch resolves: an existing
// entry is refreshed with the new target (indirect branches move), otherwise
// the LRU way of the set is replaced. Not-taken branches must NOT be passed
// here — the paper's policy never allocates or modifies on not-taken.
func (b *BTB) RecordTaken(pc, target isa.Addr, kind isa.Kind) {
	set, tag := b.setOf(pc), b.tagOf(pc)
	b.clock++
	victim, victimStamp := 0, ^uint64(0)
	for w := 0; w < b.cfg.Assoc; w++ {
		s := &b.slots[set*b.cfg.Assoc+w]
		if s.valid && s.tag == tag {
			s.target = target
			s.kind = kind
			s.stamp = b.clock
			return
		}
		if !s.valid {
			if victimStamp != 0 {
				victim, victimStamp = w, 0
			}
			continue
		}
		if s.stamp < victimStamp {
			victim, victimStamp = w, s.stamp
		}
	}
	s := &b.slots[set*b.cfg.Assoc+victim]
	*s = slot{tag: tag, target: target, kind: kind, valid: true, stamp: b.clock}
}

// SizeBits returns the BTB's storage cost in bits: per entry, a tag (the
// 30-bit instruction word address less the set-index bits), a 30-bit full
// target address (matching the RAS convention), a 3-bit branch kind, and a
// valid bit. LRU stamps are bookkeeping, not modelled storage.
func (b *BTB) SizeBits() int {
	tagBits := 30 - bits.TrailingZeros(uint(b.sets))
	return b.cfg.Entries * (tagBits + 30 + 3 + 1)
}

// HitRate returns hits/lookups, or 0 before any lookup.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// Cold reports whether the buffer holds no entries — i.e. its future
// lookup/allocate behaviour is indistinguishable from a freshly built BTB
// of the same configuration. The hit-rate statistics are deliberately
// ignored: they never feed back into prediction.
func (b *BTB) Cold() bool {
	for i := range b.slots {
		if b.slots[i].valid {
			return false
		}
	}
	return true
}

// Reset empties the BTB and clears statistics.
func (b *BTB) Reset() {
	for i := range b.slots {
		b.slots[i] = slot{}
	}
	b.clock = 0
	b.lookups = 0
	b.hits = 0
}
