package area

import (
	"math"
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
)

func g(kb int) cache.Geometry { return cache.MustGeometry(kb*1024, 32, 1) }

// The paper's calibration anchors (§6): a 1024-entry NLS-table costs about
// as much as a 128-entry BTB, and the 256-entry BTB costs roughly twice the
// 1024-entry NLS-table.
func TestPaperCostEquivalences(t *testing.T) {
	nls1024 := NLSTableRBE(1024, g(16))
	btb128 := BTBRBE(btb.Config{Entries: 128, Assoc: 1})
	btb256 := BTBRBE(btb.Config{Entries: 256, Assoc: 1})

	if ratio := btb128 / nls1024; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("128-BTB / 1024-NLS cost ratio = %.2f, want ~1", ratio)
	}
	if ratio := btb256 / nls1024; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("256-BTB / 1024-NLS cost ratio = %.2f, want ~2", ratio)
	}
}

func TestNLSTableGrowsLogarithmically(t *testing.T) {
	// Doubling the cache adds one line-field bit per entry: the table
	// grows by a constant amount, not a factor.
	c8 := NLSTableRBE(1024, g(8))
	c16 := NLSTableRBE(1024, g(16))
	c32 := NLSTableRBE(1024, g(32))
	d1 := c16 - c8
	d2 := c32 - c16
	if d1 <= 0 || d2 <= 0 {
		t.Fatal("table cost not increasing with cache size")
	}
	if math.Abs(d1-d2) > 1e-6 {
		t.Errorf("increments differ: %v vs %v (should be one bit per entry)", d1, d2)
	}
	if c16/c8 > 1.15 {
		t.Errorf("16K/8K table ratio = %.3f, should be logarithmic (small)", c16/c8)
	}
}

func TestNLSCacheGrowsLinearly(t *testing.T) {
	c8 := NLSCacheRBE(2, g(8))
	c16 := NLSCacheRBE(2, g(16))
	c64 := NLSCacheRBE(2, g(64))
	if ratio := c16 / c8; ratio < 2 || ratio > 2.3 {
		t.Errorf("16K/8K NLS-cache ratio = %.2f, want just over 2", ratio)
	}
	if c64 <= 4*c8 {
		t.Errorf("64K NLS-cache (%v) should exceed 4x 8K (%v)", c64, 4*c8)
	}
}

func TestNLSCacheMatches512TableAt8K(t *testing.T) {
	// §6.1: the NLS-cache and the 512-entry table have equivalent costs
	// at 8K (256 lines × 2 predictors = 512 predictors of the same
	// shape).
	if NLSCacheRBE(2, g(8)) != NLSTableRBE(512, g(8)) {
		t.Error("8K NLS-cache and 512-entry table should cost the same")
	}
}

func TestBTBCostIndependentOfCache(t *testing.T) {
	// Nothing in the BTB cost depends on a cache geometry — the
	// signature proves it, but assert the absolute value is stable and
	// positive.
	c := BTBRBE(btb.Config{Entries: 128, Assoc: 1})
	if c <= 0 {
		t.Fatal("non-positive BTB cost")
	}
}

func TestBTBAssociativityCostsMore(t *testing.T) {
	d := BTBRBE(btb.Config{Entries: 128, Assoc: 1})
	w2 := BTBRBE(btb.Config{Entries: 128, Assoc: 2})
	w4 := BTBRBE(btb.Config{Entries: 128, Assoc: 4})
	if !(d < w2 && w2 < w4) {
		t.Errorf("BTB cost not increasing with associativity: %v %v %v", d, w2, w4)
	}
	// But only modestly (wider tags + LRU, not a new structure).
	if w4/d > 1.2 {
		t.Errorf("4-way premium = %.2f, want < 1.2", w4/d)
	}
}

func TestBTBDoublingEntriesNearlyDoublesCost(t *testing.T) {
	c128 := BTBRBE(btb.Config{Entries: 128, Assoc: 1})
	c256 := BTBRBE(btb.Config{Entries: 256, Assoc: 1})
	if ratio := c256 / c128; ratio < 1.9 || ratio > 2.05 {
		t.Errorf("256/128 BTB ratio = %.3f", ratio)
	}
}

func TestWayFieldCostsAppearWithAssociativity(t *testing.T) {
	da := NLSTableRBE(1024, cache.MustGeometry(16*1024, 32, 1))
	wa := NLSTableRBE(1024, cache.MustGeometry(16*1024, 32, 4))
	// 4-way: index shrinks 2 bits, way field adds 2 bits — same total.
	if da != wa {
		t.Errorf("direct %v vs 4-way %v: pointer bits should balance", da, wa)
	}
}
