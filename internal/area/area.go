// Package area implements the register-bit-equivalent (RBE) on-chip memory
// area model of Mulder, Quach & Flynn as the paper applies it in §6
// (Figure 3). One RBE is the area of one register bit cell.
//
// The model distinguishes plain SRAM storage bits from tag bits: a tag bit
// must be both stored and compared, so it carries the area of its comparator
// circuitry — this is what makes a BTB entry much more expensive than an NLS
// entry of similar payload, and it is calibrated here to reproduce the
// paper's stated equivalences:
//
//   - a 1024-entry NLS-table costs about the same as a 128-entry BTB,
//   - a 256-entry BTB costs roughly twice the 1024-entry NLS-table,
//   - NLS-cache area grows linearly with cache size, NLS-table area
//     logarithmically, and BTB area is independent of cache size.
package area

import (
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/core"
)

// Model costs for on-chip memory cells, in RBE per bit.
const (
	// SRAMBit is the area of a six-transistor SRAM storage cell relative
	// to a register bit (Mulder et al. report on-chip SRAM at ~0.6 RBE).
	SRAMBit = 0.6
	// TagBit is the area of a tag bit including its share of the
	// comparator and match logic. Calibrated so the paper's BTB/NLS cost
	// equivalences hold.
	TagBit = 2.0
)

// BTBAddressBits is the number of significant instruction-address bits in
// the paper's cost accounting: a 32-bit byte address space with 4-byte
// instructions leaves 30 bits ("we assumed a 32-bit address space, so the
// target address stored in the BTB is 30 bits").
const BTBAddressBits = 30

// NLSTableRBE returns the area of an NLS-table with the given number of
// entries, pointing into a cache of geometry g. Every bit is plain SRAM:
// the table is tag-less.
func NLSTableRBE(entries int, g cache.Geometry) float64 {
	return float64(entries*core.EntryBits(g)) * SRAMBit
}

// NLSCacheRBE returns the *additional* area the NLS-cache organization adds
// to an instruction cache of geometry g with perLine predictors per line.
// The predictors share the line's existing tag, so only the entries
// themselves are counted — but there is one group per line, so the total
// grows linearly with the number of lines.
func NLSCacheRBE(perLine int, g cache.Geometry) float64 {
	return float64(g.NumLines()*perLine*core.EntryBits(g)) * SRAMBit
}

// BTBRBE returns the area of a BTB. Each entry stores a tag (compared on
// every lookup), the full target address, a 2-bit type field, and a valid
// bit; associative organizations add per-set LRU state.
func BTBRBE(cfg btb.Config) float64 {
	sets := cfg.Entries / cfg.Assoc
	indexBits := 0
	for s := sets; s > 1; s >>= 1 {
		indexBits++
	}
	tagBits := BTBAddressBits - indexBits
	payloadBits := BTBAddressBits + 2 + 1 // target + type + valid
	perEntry := float64(tagBits)*TagBit + float64(payloadBits)*SRAMBit
	total := float64(cfg.Entries) * perEntry
	// True-LRU state per set: log2(ways!) bits, i.e. 0, 1, 5 bits for
	// 1-, 2-, 4-way.
	var lruBits int
	switch cfg.Assoc {
	case 2:
		lruBits = 1
	case 4:
		lruBits = 5
	default:
		if cfg.Assoc > 4 {
			lruBits = cfg.Assoc // coarse upper bound for wider BTBs
		}
	}
	total += float64(sets*lruBits) * SRAMBit
	return total
}
