package experiments

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
)

// Ablations beyond the paper's headline figures, covering design choices
// the paper discusses in passing: the number of NLS predictors per cache
// line (§5.1), coupling direction prediction to the BTB entry (§2) or to
// the successor pointer (§6.2, Johnson/TFP), and the choice of direction
// predictor.

// PerLineSweep evaluates the NLS-cache with 1, 2, 4 predictors per line
// (§5.1: "we used one to four NLS predictors per cache line ... two NLS
// predictors per cache line gave performance comparable to the NLS-table").
func (r *Runner) PerLineSweep() ([]Average, error) {
	var factories []Factory
	for _, per := range []int{1, 2, 4} {
		factories = append(factories,
			SpecFactory(fmt.Sprintf("NLS-cache %d/line", per), arch.NLSCache(per)))
	}
	factories = append(factories, NLSTableFactory(1024))
	caches := []cache.Geometry{
		cache.MustGeometry(8*1024, LineBytes, 1),
		cache.MustGeometry(16*1024, LineBytes, 1),
	}
	results, err := r.Sweep(factories, caches)
	if err != nil {
		return nil, err
	}
	return r.Averages(results), nil
}

// CoupledSweep compares the decoupled BTB+PHT design against the coupled
// (Pentium-style) BTB with per-entry 2-bit counters, and against Johnson's
// coupled one-bit successor-index design — isolating the value of
// decoupling, the design decision both the paper and its predecessor
// emphasize. Both 128-entry and 32-entry BTBs are swept: the coupled
// design's weakness — a branch evicted from the BTB also loses its
// direction state and falls back to static prediction — scales with BTB
// capacity pressure, so the small configuration shows it starkly.
func (r *Runner) CoupledSweep() ([]Average, error) {
	var factories []Factory
	for _, entries := range []int{128, 32} {
		factories = append(factories,
			BTBFactory(btb.Config{Entries: entries, Assoc: 1}),
			SpecFactory(fmt.Sprintf("coupled %d-entry BTB", entries),
				arch.CoupledBTB(entries, 1)))
	}
	factories = append(factories, JohnsonFactory(), NLSTableFactory(1024))
	caches := []cache.Geometry{cache.MustGeometry(16*1024, LineBytes, 1)}
	results, err := r.Sweep(factories, caches)
	if err != nil {
		return nil, err
	}
	return r.Averages(results), nil
}

// PHTRow is one row of the direction-predictor ablation.
type PHTRow struct {
	PHT      string
	Arch     string
	CondAcc  float64
	BEP      float64
	SizeBits int
}

// PHTSweep runs both architectures under different direction predictors of
// equal entry count: the paper's gshare, the pure-global GAs degenerate
// scheme, a per-address bimodal table, a one-bit table, and static
// not-taken. The PHT is architecturally identical across NLS and BTB in
// every row (§5.1's methodological requirement).
func (r *Runner) PHTSweep() ([]PHTRow, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	kinds := []struct {
		name string
		pht  arch.PHTSpec
	}{
		{"gshare-4096", arch.PaperPHT()},
		{"GAs-4096", arch.PHTSpec{Kind: "gas", Entries: PHTEntries}},
		{"bimodal-4096", arch.PHTSpec{Kind: "bimodal", Entries: PHTEntries}},
		{"1bit-4096", arch.PHTSpec{Kind: "1bit", Entries: PHTEntries}},
		{"static-not-taken", arch.PHTSpec{Kind: "static-not-taken"}},
	}
	g := cache.MustGeometry(16*1024, LineBytes, 1)
	var rows []PHTRow
	for _, k := range kinds {
		for _, a := range []struct {
			name string
			base arch.Spec
		}{
			{"1024 NLS-table", arch.NLSTable(1024)},
			{"128-entry direct BTB", arch.BTB(128, 1)},
		} {
			spec := a.base.WithGeometry(g)
			spec.PHT = k.pht
			var accSum, bepSum float64
			var size int
			for _, t := range traces {
				dir, err := k.pht.Build()
				if err != nil {
					return nil, err
				}
				size = dir.SizeBits()
				m := fetch.Run(spec.MustBuild(), t)
				accSum += m.CondAccuracy()
				bepSum += m.BEP(r.Cfg.Penalties)
			}
			n := float64(len(traces))
			rows = append(rows, PHTRow{
				PHT: k.name, Arch: a.name,
				CondAcc: accSum / n, BEP: bepSum / n, SizeBits: size,
			})
		}
	}
	return rows, nil
}

// RenderPHTSweep formats the direction-predictor ablation.
func RenderPHTSweep(rows []PHTRow) string {
	var b strings.Builder
	b.WriteString("Ablation: direction predictor choice (16KB direct i-cache)\n")
	b.WriteString("  PHT                  arch                   cond-acc     BEP    bits\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %-22s %7.2f%% %7.3f %7d\n",
			r.PHT, r.Arch, 100*r.CondAcc, r.BEP, r.SizeBits)
	}
	return b.String()
}
