package experiments

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// TestStoreParallelReadersRaceWriter has many readers hammering Load on one
// cell key while a writer repeatedly Saves it. The atomic temp+rename write
// guarantees every reader sees either a miss (before the first rename) or
// the complete saved document — never an error, never a partial read. Run
// under -race via `make stress`.
func TestStoreParallelReadersRaceWriter(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
	want := metrics.Counters{Instructions: 123_456, Breaks: 789, Misfetches: 42}

	const readers = 8
	const saves = 50
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < saves; i++ {
			if err := store.Save(key, want); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()

	hits := make([]int, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var got metrics.Counters
				ok, err := store.Load(key, &got)
				if err != nil {
					t.Errorf("reader %d: Load returned error under contention: %v", r, err)
					return
				}
				if ok {
					hits[r]++
					if got != want {
						t.Errorf("reader %d: loaded %+v, want %+v (partial write visible?)", r, got, want)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	// The writer finished before the last reads, so at least someone hit.
	total := 0
	for _, h := range hits {
		total += h
	}
	if total == 0 {
		t.Error("no reader ever observed the saved cell")
	}
}

// TestStoreCorruptCellUnderContention races readers against a writer that
// clobbers the cell file with garbage via direct, non-atomic writes.
// Whatever interleaving the scheduler picks, Load must degrade to a miss —
// (false, nil) — never an error and never a fabricated document.
func TestStoreCorruptCellUnderContention(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "0badc0de0badc0de0badc0de0badc0de0badc0de0badc0de0badc0de0badc0de"
	path := store.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			// Deliberately not atomic: readers may see empty or truncated
			// garbage mid-write.
			if err := os.WriteFile(path, []byte("{{{ not json"), 0o644); err != nil {
				t.Errorf("corrupting write: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var got metrics.Counters
				ok, err := store.Load(key, &got)
				if err != nil {
					t.Errorf("reader %d: corrupt cell produced an error: %v", r, err)
					return
				}
				if ok {
					t.Errorf("reader %d: corrupt cell loaded as %+v", r, got)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// A corrupt cell must also be silently repairable: one Save overwrites
	// the garbage and the next Load hits.
	want := metrics.Counters{Instructions: 7}
	if err := store.Save(key, want); err != nil {
		t.Fatal(err)
	}
	var got metrics.Counters
	ok, err := store.Load(key, &got)
	if err != nil || !ok || got != want {
		t.Fatalf("Load after repair = %v, %v, %+v; want hit of %+v", ok, err, got, want)
	}
}
