package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/workload"
)

func corpusTestConfig() Config {
	cfg := DefaultConfig(15_000)
	cfg.Programs = []workload.Spec{workload.Li(), workload.Espresso()}
	return cfg
}

func corpusSweep(t *testing.T, x *Executor) []Row {
	t.Helper()
	g := Grid{Name: "corpus-smoke", Arms: []Arm{
		{Name: "nls", Spec: NLSTableFactory(512).Spec, Caches: []cache.Geometry{
			cache.MustGeometry(8*1024, LineBytes, 1),
			cache.MustGeometry(16*1024, LineBytes, 4),
		}},
		{Name: "btb", Spec: BTBFactory(BTBConfigs()[0]).Spec, Caches: []cache.Geometry{
			cache.MustGeometry(8*1024, LineBytes, 1),
		}},
	}}
	rs, err := x.RunGrids(false, g)
	if err != nil {
		t.Fatal(err)
	}
	return rs.Rows(g)
}

// TestCorpusRoundTripSmoke is the corpus round-trip gate run by `make
// verify`: a run with a corpus directory builds the content-keyed corpus
// file; a second, fresh run reopens that file, decodes every trace from it
// (no regeneration), and must produce bit-identical sweep rows.
func TestCorpusRoundTripSmoke(t *testing.T) {
	cfg := corpusTestConfig()
	dir := t.TempDir()

	// Baseline: no corpus anywhere near the run.
	base := &Executor{R: NewRunner(cfg)}
	want := corpusSweep(t, base)

	// First corpus run: builds the file.
	x1 := &Executor{R: NewRunner(cfg), CorpusDir: dir}
	got1 := corpusSweep(t, x1)
	defer x1.R.CloseCorpus()

	path := CorpusPath(dir, cfg)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("first corpus run did not build %s: %v", path, err)
	}

	// Second corpus run in a fresh runner: must decode, not regenerate.
	x2 := &Executor{R: NewRunner(cfg), CorpusDir: dir}
	got2 := corpusSweep(t, x2)
	defer x2.R.CloseCorpus()
	if x2.R.attachedCorpus() == nil {
		t.Fatal("second run did not attach the corpus")
	}

	if len(want) != len(got1) || len(want) != len(got2) {
		t.Fatalf("row counts diverge: %d / %d / %d", len(want), len(got1), len(got2))
	}
	for i := range want {
		if got1[i].M != want[i].M {
			t.Errorf("row %d (%s/%s/%s): corpus-building run diverges from baseline",
				i, want[i].Program, want[i].Arch, want[i].Cache())
		}
		if got2[i].M != want[i].M {
			t.Errorf("row %d (%s/%s/%s): corpus-replay run diverges from baseline\n got %+v\nwant %+v",
				i, want[i].Program, want[i].Arch, want[i].Cache(), got2[i].M, want[i].M)
		}
	}
}

// TestCorpusStaleFileRebuilt: a corpus at the right path but with the
// wrong contents (here: a different instruction budget) is a miss; the run
// rebuilds it in place and still produces correct rows.
func TestCorpusStaleFileRebuilt(t *testing.T) {
	cfg := corpusTestConfig()
	dir := t.TempDir()

	// Plant a corpus for a different budget at this config's keyed path.
	other := cfg
	other.Insns = 5_000
	xo := &Executor{R: NewRunner(other), CorpusDir: dir}
	corpusSweep(t, xo)
	xo.R.CloseCorpus()
	stale := CorpusPath(dir, other)
	if err := os.Rename(stale, CorpusPath(dir, cfg)); err != nil {
		t.Fatal(err)
	}

	base := &Executor{R: NewRunner(cfg)}
	want := corpusSweep(t, base)
	x := &Executor{R: NewRunner(cfg), CorpusDir: dir}
	got := corpusSweep(t, x)
	defer x.R.CloseCorpus()
	for i := range want {
		if got[i].M != want[i].M {
			t.Errorf("row %d diverges after stale-corpus rebuild", i)
		}
	}

	// The rebuilt file must now be a valid hit for a fresh runner.
	x2 := &Executor{R: NewRunner(cfg), CorpusDir: dir}
	corpusSweep(t, x2)
	defer x2.R.CloseCorpus()
	if x2.R.attachedCorpus() == nil {
		t.Error("rebuilt corpus not attached by a fresh runner")
	}
}

// TestCorpusCorruptFileFallsBack: flipping payload bytes must not error a
// run or change its rows — the corpus is a cache, so corruption degrades
// to regeneration.
func TestCorpusCorruptFileFallsBack(t *testing.T) {
	cfg := corpusTestConfig()
	dir := t.TempDir()
	x1 := &Executor{R: NewRunner(cfg), CorpusDir: dir}
	want := corpusSweep(t, x1)
	x1.R.CloseCorpus()

	path := CorpusPath(dir, cfg)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte past the head magic; the index stays intact,
	// so the corpus opens and the per-program checksum catches it.
	data[len(data)/4] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	x2 := &Executor{R: NewRunner(cfg), CorpusDir: dir}
	got := corpusSweep(t, x2)
	defer x2.R.CloseCorpus()
	for i := range want {
		if got[i].M != want[i].M {
			t.Errorf("row %d diverges after payload corruption fallback", i)
		}
	}
}

// TestCorpusKeyStability: the key must change with any generation input
// and ignore replay-only inputs.
func TestCorpusKeyStability(t *testing.T) {
	cfg := corpusTestConfig()
	k := CorpusKey(cfg)
	if k2 := CorpusKey(cfg); k2 != k {
		t.Fatalf("key not deterministic: %s vs %s", k, k2)
	}
	ins := cfg
	ins.Insns++
	if CorpusKey(ins) == k {
		t.Error("key ignores the instruction budget")
	}
	progs := cfg
	progs.Programs = progs.Programs[:1]
	if CorpusKey(progs) == k {
		t.Error("key ignores the workload set")
	}
	pen := cfg
	pen.Penalties.Misfetch++
	if CorpusKey(pen) != k {
		t.Error("key depends on penalties, which do not affect traces")
	}
	if filepath.Base(CorpusPath("d", cfg)) != "traces-"+k[:16]+".nlsc" {
		t.Errorf("CorpusPath does not embed the content key: %s", CorpusPath("d", cfg))
	}
}
