package experiments

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/workload"
)

// testRunner builds a runner small enough for CI but large enough that the
// paper's qualitative shapes are stable.
func testRunner() *Runner {
	return NewRunner(DefaultConfig(400_000))
}

// runnerOn builds a runner over a subset of programs.
func runnerOn(insns int, specs ...workload.Spec) *Runner {
	cfg := DefaultConfig(insns)
	cfg.Programs = specs
	return NewRunner(cfg)
}

func avgBEP(avgs []Average, arch string, cacheStr string) (float64, bool) {
	for _, a := range avgs {
		if a.Arch == arch && (cacheStr == "" || a.Cache.String() == cacheStr) {
			return a.BEP(), true
		}
	}
	return 0, false
}

// runFigure executes one figure on a store-less executor and returns the
// resolved result set alongside the figure.
func runFigure(t testing.TB, r *Runner, name string) (Figure, *ResultSet) {
	t.Helper()
	f, ok := FigureByName(name)
	if !ok {
		t.Fatalf("unknown figure %q", name)
	}
	rs, err := (&Executor{R: r}).Run(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, rs
}

// figureData executes one figure and returns its rendered text and -json
// data rows.
func figureData(t testing.TB, r *Runner, name string) (string, any) {
	t.Helper()
	f, rs := runFigure(t, r, name)
	text, data := f.Render(rs.Context(f))
	return text, data
}

// figureRows executes one figure and returns its grid's resolved rows.
func figureRows(t testing.TB, r *Runner, name string) []Row {
	t.Helper()
	f, rs := runFigure(t, r, name)
	return rs.Rows(f.Grid)
}

// figureAverages executes one figure and averages its rows over programs.
func figureAverages(t testing.TB, r *Runner, name string) []Average {
	t.Helper()
	return Averages(figureRows(t, r, name), r.Cfg.Penalties)
}

func TestTable1Renders(t *testing.T) {
	r := runnerOn(100_000, workload.Espresso())
	out, _ := figureData(t, r, "table1")
	if !strings.Contains(out, "espresso-like") {
		t.Errorf("table missing program:\n%s", out)
	}
}

// Shape 1 (Figure 4): the NLS-table outperforms the NLS-cache, and larger
// tables help with diminishing returns (512 -> 1024 > 1024 -> 2048).
func TestShapeNLSTableBeatsNLSCache(t *testing.T) {
	r := testRunner()
	avgs := figureAverages(t, r, "fig4")
	for _, cacheStr := range []string{"8KB direct", "16KB direct", "32KB direct"} {
		nlsCache, ok1 := avgBEP(avgs, "NLS-cache", cacheStr)
		nlsTable, ok2 := avgBEP(avgs, "1024 NLS-table", cacheStr)
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %s", cacheStr)
		}
		if nlsTable >= nlsCache {
			t.Errorf("%s: 1024 NLS-table BEP %.4f not better than NLS-cache %.4f",
				cacheStr, nlsTable, nlsCache)
		}
	}
	// Diminishing returns from table growth.
	b512, _ := avgBEP(avgs, "512 NLS-table", "16KB direct")
	b1024, _ := avgBEP(avgs, "1024 NLS-table", "16KB direct")
	b2048, _ := avgBEP(avgs, "2048 NLS-table", "16KB direct")
	if !(b512 >= b1024 && b1024 >= b2048) {
		t.Errorf("table size ordering violated: %.4f %.4f %.4f", b512, b1024, b2048)
	}
	if (b512 - b1024) < (b1024 - b2048) {
		t.Errorf("returns not diminishing: 512->1024 %.4f, 1024->2048 %.4f",
			b512-b1024, b1024-b2048)
	}
}

// Shape 2 (Figure 5): the 1024-entry NLS-table at least matches the
// equal-cost 128-entry BTB on average BEP.
func TestShapeNLSMatchesEqualCostBTB(t *testing.T) {
	r := testRunner()
	avgs := figureAverages(t, r, "fig5")
	btb128, ok := avgBEP(avgs, "128-entry direct BTB", "")
	if !ok {
		t.Fatal("no 128-entry BTB row")
	}
	nls, ok := avgBEP(avgs, "1024 NLS-table", "16KB direct")
	if !ok {
		t.Fatal("no NLS-table row")
	}
	if nls > btb128 {
		t.Errorf("1024 NLS-table BEP %.4f worse than equal-cost 128-BTB %.4f", nls, btb128)
	}
	// And roughly comparable to the double-cost 256-entry BTB.
	btb256, _ := avgBEP(avgs, "256-entry direct BTB", "")
	if nls > btb256*1.08 {
		t.Errorf("1024 NLS-table BEP %.4f not comparable to 256-BTB %.4f", nls, btb256)
	}
}

// Shape 3 (Figure 7): NLS BEP falls as the cache grows; BTB BEP is flat in
// cache configuration by construction.
func TestShapeNLSImprovesWithCacheSize(t *testing.T) {
	// Use the branchy programs where the effect is visible.
	r := runnerOn(400_000, workload.Gcc(), workload.Cfront())
	avgs := figureAverages(t, r, "fig4")
	small, _ := avgBEP(avgs, "1024 NLS-table", "8KB direct")
	large, _ := avgBEP(avgs, "1024 NLS-table", "32KB direct")
	if large >= small {
		t.Errorf("NLS BEP did not improve with cache size: 8K %.4f -> 32K %.4f", small, large)
	}
}

// Shape 4 (Figure 7): branch-rich programs benefit most from NLS; programs
// with few hot sites show parity.
func TestShapeProgramClassContrast(t *testing.T) {
	r := testRunner()
	rows := figureRows(t, r, "fig7")
	byProg := map[string][]Row{}
	for _, res := range rows {
		byProg[res.Program] = append(byProg[res.Program], res)
	}
	p := r.Cfg.Penalties
	relAdvantage := func(prog string) float64 {
		var btbMf, nlsMf float64
		found := 0
		for _, res := range byProg[prog] {
			if res.Arch == "128-entry direct BTB" {
				btbMf = res.M.MisfetchBEP(p)
				found++
			}
			if res.Arch == "1024 NLS-table" && res.Cache().String() == "16KB direct" {
				nlsMf = res.M.MisfetchBEP(p)
				found++
			}
		}
		if found != 2 {
			t.Fatalf("missing results for %s", prog)
		}
		return btbMf - nlsMf // positive: NLS wins on misfetch
	}
	gcc := relAdvantage("gcc-like")
	doduc := relAdvantage("doduc-like")
	if gcc <= 0 {
		t.Errorf("NLS should beat the 128-BTB on gcc-like misfetch (delta %.4f)", gcc)
	}
	if gcc <= doduc {
		t.Errorf("NLS advantage should be larger on gcc-like (%.4f) than doduc-like (%.4f)",
			gcc, doduc)
	}
}

// Shape 5 (Figure 3): area scaling laws.
func TestShapeAreaScaling(t *testing.T) {
	rows := Fig3()
	get := func(label string) float64 {
		for _, r := range rows {
			if r.Label == label {
				return r.RBE
			}
		}
		t.Fatalf("missing row %q", label)
		return 0
	}
	// NLS-cache linear: 64K is ~8x the 8K cost.
	if ratio := get("NLS-cache 64K") / get("NLS-cache 8K"); ratio < 7 {
		t.Errorf("NLS-cache 64K/8K = %.2f, want ~8 (linear)", ratio)
	}
	// NLS-table logarithmic: 64K is barely above 8K.
	if ratio := get("1024 NLS-table 64K") / get("1024 NLS-table 8K"); ratio > 1.4 {
		t.Errorf("NLS-table 64K/8K = %.2f, want close to 1 (logarithmic)", ratio)
	}
	// BTB flat in cache size (no cache label at all) and 128 ≈ NLS-1024.
	if ratio := get("128 BTB 1-way") / get("1024 NLS-table 16K"); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("128-BTB / 1024-table = %.2f, want ~1", ratio)
	}
}

// Shape 6 (Figure 6): associative access-time penalty.
func TestShapeAccessTime(t *testing.T) {
	rows := Fig6()
	var direct, way4 float64
	for _, r := range rows {
		if r.Entries == 128 && r.Assoc == 1 {
			direct = r.NS
		}
		if r.Entries == 128 && r.Assoc == 4 {
			way4 = r.NS
		}
	}
	if ratio := way4 / direct; ratio < 1.25 || ratio > 1.45 {
		t.Errorf("4-way/direct = %.3f, want 1.3-1.4", ratio)
	}
}

// Figure 8: CPI ordering is consistent with BEP plus miss penalties, and
// every CPI is >= 1.
func TestFig8CPI(t *testing.T) {
	r := runnerOn(400_000, workload.Gcc(), workload.Espresso())
	avgs := figureAverages(t, r, "fig8")
	if len(avgs) == 0 {
		t.Fatal("no CPI rows")
	}
	for _, a := range avgs {
		if a.CPI < 1 {
			t.Errorf("%s %s: CPI %.3f < 1", a.Arch, a.Cache, a.CPI)
		}
	}
	// Bigger caches give lower CPI for the same architecture.
	c8, _ := avgCPI(avgs, "1024 NLS-table", "8KB direct")
	c32, _ := avgCPI(avgs, "1024 NLS-table", "32KB direct")
	if c32 >= c8 {
		t.Errorf("CPI did not improve with cache size: %.4f -> %.4f", c8, c32)
	}
}

func avgCPI(avgs []Average, arch, cacheStr string) (float64, bool) {
	for _, a := range avgs {
		if a.Arch == arch && a.Cache.String() == cacheStr {
			return a.CPI, true
		}
	}
	return 0, false
}

func TestSweepDeterministic(t *testing.T) {
	r := runnerOn(100_000, workload.Li())
	f := []Factory{NLSTableFactory(1024)}
	c := []cache.Geometry{cache.MustGeometry(8*1024, LineBytes, 1)}
	a, err := r.Sweep(f, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Sweep(f, c)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].M != b[0].M {
		t.Error("repeated sweep diverged")
	}
}

func TestJohnsonWorseThanNLS(t *testing.T) {
	// §6.2: the decoupled two-level design beats Johnson's coupled
	// one-bit successor-index scheme.
	r := runnerOn(400_000, workload.Gcc(), workload.Espresso())
	caches := []cache.Geometry{cache.MustGeometry(16*1024, LineBytes, 1)}
	res, err := r.Sweep([]Factory{NLSTableFactory(1024), JohnsonFactory()}, caches)
	if err != nil {
		t.Fatal(err)
	}
	avgs := Averages(res, r.Cfg.Penalties)
	nls, _ := avgBEP(avgs, "1024 NLS-table", "")
	johnson, _ := avgBEP(avgs, "Johnson 1-bit", "")
	if nls >= johnson {
		t.Errorf("NLS BEP %.4f should beat Johnson %.4f", nls, johnson)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if out := RenderFig3(Fig3()); !strings.Contains(out, "NLS-cache 8K") {
		t.Error("Fig3 render incomplete")
	}
	if out := RenderFig6(Fig6()); !strings.Contains(out, "128-entry") {
		t.Error("Fig6 render incomplete")
	}
}

func TestBTBConfigsAndCaches(t *testing.T) {
	if len(BTBConfigs()) != 4 {
		t.Error("expected 4 BTB configurations")
	}
	if len(PaperCaches()) != 6 {
		t.Error("expected 6 paper cache configurations")
	}
	if len(AllCaches()) != 9 {
		t.Error("expected 9 extended cache configurations")
	}
}
