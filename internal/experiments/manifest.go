package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema identifies the run-manifest JSON layout; bump it when the
// shape changes incompatibly.
const ManifestSchema = "nls-run/v1"

// DefaultManifestDir is where the CLIs write run manifests.
func DefaultManifestDir() string { return filepath.Join("results", "runs") }

// BuildEnv records the toolchain that produced a run, from the binary's own
// embedded build info.
type BuildEnv struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// String renders the build environment as the one-line `-version` output
// the CLIs share: module, Go version, and the VCS revision when the binary
// carries one (a trailing + marks a dirty tree).
func (e BuildEnv) String() string {
	mod := e.Module
	if mod == "" {
		mod = "(devel)"
	}
	rev := e.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if e.Modified {
		rev += "+"
	}
	return fmt.Sprintf("%s %s (rev %s)", mod, e.GoVersion, rev)
}

// ReadBuildEnv reads the running binary's build information. Everything
// beyond the Go version is best-effort: test binaries and `go run` builds
// carry no VCS stamps.
func ReadBuildEnv() BuildEnv {
	env := BuildEnv{GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		env.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				env.Revision = s.Value
			case "vcs.modified":
				env.Modified = s.Value == "true"
			}
		}
	}
	return env
}

// RunManifest is the telemetry record of one executor run: what was asked
// for, what the store served vs what was simulated, how fast the replay
// went, where the wall time of each simulated cell was spent, and which
// toolchain built the binary. nlstables writes one per run under
// results/runs/ so result and performance trajectories can be tracked
// across commits without scraping the report text.
type RunManifest struct {
	Schema          string    `json:"schema"`
	CreatedAt       time.Time `json:"created_at"`
	Command         []string  `json:"command,omitempty"`
	InsnsPerProgram int       `json:"insns_per_program"`
	Figures         []string  `json:"figures,omitempty"`
	Build           BuildEnv  `json:"build"`

	// Store accounting: Loaded cells were served by the content-addressed
	// store (hits), Simulated were replayed this run (misses), Deduped
	// were requested by more than one grid and gathered once.
	CellsLoaded    int `json:"cells_loaded"`
	CellsSimulated int `json:"cells_simulated"`
	CellsDeduped   int `json:"cells_deduped"`
	// Replays counts program traces actually replayed (0 on a warm run).
	Replays int `json:"trace_replays"`

	// Replay throughput over the whole run.
	Records   int64   `json:"records_replayed"`
	Seconds   float64 `json:"seconds"`
	RecPerSec float64 `json:"records_per_sec"`

	// Stages is the run's per-executor-stage wall time (gather,
	// gen-corpus, trace-gen, replay, store-save); Cells is the per-cell
	// engine wall time (simulated cells only).
	Stages []StageSpan  `json:"stages,omitempty"`
	Cells  []CellTiming `json:"cells,omitempty"`
}

// NewRunManifest assembles the manifest of a finished run from the
// executor's sweep statistics and the result set's accounting. figures
// names what was rendered; command is the CLI invocation (os.Args).
func NewRunManifest(x *Executor, rs *ResultSet, figures, command []string) RunManifest {
	s := x.R.LastSweepStats()
	return RunManifest{
		Schema:          ManifestSchema,
		CreatedAt:       time.Now(),
		Command:         command,
		InsnsPerProgram: x.R.Cfg.Insns,
		Figures:         figures,
		Build:           ReadBuildEnv(),
		CellsLoaded:     rs.Loaded,
		CellsSimulated:  rs.Simulated,
		CellsDeduped:    rs.Deduped,
		Replays:         rs.Replays,
		Records:         s.Records,
		Seconds:         s.Elapsed.Seconds(),
		RecPerSec:       s.RecordsPerSec(),
		Stages:          rs.Stages,
		Cells:           rs.Timings,
	}
}

// Write persists the manifest under dir as <timestamp>.json (nanosecond
// resolution, so concurrent runs cannot collide in practice) and returns
// the written path.
func (m RunManifest) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := m.CreatedAt.UTC().Format("20060102T150405.000000000Z") + ".json"
	path := filepath.Join(dir, name)
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
