package experiments

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/workload"
)

// Golden regression values: exact event counts for fixed (workload, seed,
// architecture) configurations. Workloads, the executor, and the engines
// are all deterministic, so any change to these numbers means a behavioural
// change somewhere in the stack — intentional recalibrations must update
// the constants below *and* re-run the full experiment suite so
// EXPERIMENTS.md and results/experiments_2M.txt stay truthful.
func TestGoldenEventCounts(t *testing.T) {
	const n = 200_000
	tr := workload.Espresso().MustTrace(n)
	g := cache.MustGeometry(16*1024, LineBytes, 1)

	nls := fetch.NewNLSTableEngine(g, 1024, newPHT(), RASDepth)
	mn := fetch.Run(nls, tr)
	bt := fetch.NewBTBEngine(g, btb.Config{Entries: 128, Assoc: 1}, newPHT(), RASDepth)
	mb := fetch.Run(bt, tr)

	type golden struct {
		breaks, nlsMf, nlsMp, btbMf, btbMp, misses uint64
	}
	// Recorded from the calibrated build; see the comment above before
	// editing.
	want := golden{
		breaks: mn.Breaks,
		nlsMf:  mn.Misfetches, nlsMp: mn.Mispredicts,
		btbMf: mb.Misfetches, btbMp: mb.Mispredicts,
		misses: mn.ICacheMisses,
	}
	got := golden{mn.Breaks, mn.Misfetches, mn.Mispredicts,
		mb.Misfetches, mb.Mispredicts, mn.ICacheMisses}
	if got != want {
		t.Fatalf("golden self-check failed: %+v vs %+v", got, want)
	}

	// The actual pinned values. If this fails after an intentional
	// change, re-record: go test ./internal/experiments -run Golden -v
	pinned := golden{
		breaks: 36321,
		nlsMf:  84, nlsMp: 4154,
		btbMf: 378, btbMp: 4160,
		misses: 212,
	}
	t.Logf("current: breaks=%d nlsMf=%d nlsMp=%d btbMf=%d btbMp=%d misses=%d",
		got.breaks, got.nlsMf, got.nlsMp, got.btbMf, got.btbMp, got.misses)
	if got != pinned {
		t.Errorf("behaviour changed: got %+v, pinned %+v", got, pinned)
	}
}
