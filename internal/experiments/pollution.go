package experiments

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/metrics"
)

// PollutionRow compares an architecture with and without wrong-path fetch
// pollution modelling.
type PollutionRow struct {
	Arch             string
	CleanMissRate    float64
	PollutedMissRate float64
	CleanMisfetchBEP float64
	PollutedMisfetch float64
	CleanCPI         float64
	PollutedCPI      float64
}

// PollutionSweep quantifies the §5.2 remark that the architectures "may
// fetch different instructions, even for the same cache organization":
// wrong-path fetches touch the cache, raising the miss rate — and, for the
// NLS architecture only, feeding back into fetch prediction (displaced
// lines invalidate pointers).
func (r *Runner) PollutionSweep() ([]PollutionRow, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	g := cache.MustGeometry(8*1024, LineBytes, 1)
	p := r.Cfg.Penalties

	variants := []struct {
		name string
		spec arch.Spec
	}{
		{"1024 NLS-table", arch.NLSTable(1024).WithGeometry(g)},
		{"128-entry direct BTB", arch.BTB(128, 1).WithGeometry(g)},
	}

	var rows []PollutionRow
	for _, v := range variants {
		row := PollutionRow{Arch: v.name}
		for _, pollute := range []bool{false, true} {
			spec := v.spec
			spec.Pollution = pollute
			var miss, mf, cpi float64
			for _, t := range traces {
				m := fetch.Run(spec.MustBuild(), t)
				miss += m.ICacheMissRate()
				mf += m.MisfetchBEP(p)
				cpi += m.CPI(p)
			}
			n := float64(len(traces))
			if pollute {
				row.PollutedMissRate = miss / n
				row.PollutedMisfetch = mf / n
				row.PollutedCPI = cpi / n
			} else {
				row.CleanMissRate = miss / n
				row.CleanMisfetchBEP = mf / n
				row.CleanCPI = cpi / n
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPollutionSweep formats the wrong-path ablation.
func RenderPollutionSweep(rows []PollutionRow, p metrics.Penalties) string {
	var b strings.Builder
	b.WriteString("Ablation: wrong-path fetch pollution (8KB direct i-cache)\n")
	b.WriteString("  arch                       miss% clean/poll   mf-BEP clean/poll    CPI clean/poll\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %6.2f / %-6.2f %10.4f / %-8.4f %7.3f / %-7.3f\n",
			r.Arch, 100*r.CleanMissRate, 100*r.PollutedMissRate,
			r.CleanMisfetchBEP, r.PollutedMisfetch,
			r.CleanCPI, r.PollutedCPI)
	}
	return b.String()
}
