package experiments

import (
	"repro/internal/arch"
	"repro/internal/obs"
)

// H2PTopN is the per-program branch-ranking depth the h2p figure and
// nlssim -h2p print.
const H2PTopN = 8

// H2PGrid is the hard-to-predict-branch comparison (DESIGN.md §13): the
// paper's headline 1024-entry NLS-table carrying its gshare PHT against the
// identical architecture with the equal-cost TAGE-lite direction predictor
// (8198 vs 8256 bits). Same target predictor, same cache, same trace — the
// only degree of freedom is direction prediction, so any movement in the
// dir-wrong cause bucket is the direction seam's doing.
func H2PGrid() Grid {
	tage := arch.NLSTable(1024)
	tage.PHT = arch.TAGEPHT()
	return Grid{Name: "h2p", Arms: []Arm{
		{Name: "1024 NLS-table (gshare)", Spec: arch.NLSTable(1024)},
		{Name: "1024 NLS-table (tage)", Spec: tage},
	}}
}

// h2pFigure ranks the branches gshare keeps mispredicting and measures how
// much of that dir-wrong tail the equal-cost TAGE-lite arm recovers. Like
// the attribution figure it is Probed: the comparison is an event-stream
// product (per-PC cause counts), not a stored counter row. Reports come
// back in cell order — program-major, two arms per program — and each
// ranking pairs full (untruncated) per-PC tables so the alt side of every
// base-heavy branch is counted.
func h2pFigure() Figure {
	g := H2PGrid()
	return Figure{
		Name: "h2p",
		Grid: Grid{Name: "h2p"}, // no stored cells; Probed replays itself
		Probed: func(x *Executor) (string, any, error) {
			reports, err := x.RunAttribution(g, 0)
			if err != nil {
				return "", nil, err
			}
			ranks := make([]obs.H2PRanking, len(reports)/2)
			for p := range ranks {
				ranks[p] = obs.RankH2P(reports[2*p], reports[2*p+1], H2PTopN)
			}
			text := obs.RenderH2P(
				"H2P: dir-wrong recovery, equal-cost gshare vs TAGE-lite (1024 NLS-table)",
				ranks)
			return text, ranks, nil
		},
	}
}
