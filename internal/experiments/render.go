package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/area"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/timing"
)

// Pure presentation: every function here maps result rows (or the static
// area/timing models) to text and to the machine-readable rows behind the
// -json report. Nothing in this file simulates; renderers may be re-run
// over stored rows at will. The text formats are pinned by
// TestGridGolden against the pre-grid drivers.

// Fig3Row is one bar group of Figure 3.
type Fig3Row struct {
	Label string
	RBE   float64
}

// Fig3 reproduces Figure 3: register-bit-equivalent costs for the NLS-cache
// and the 512/1024/2048-entry NLS-tables at 8K–64K cache sizes, and for
// 128- and 256-entry BTBs at associativities 1, 2, 4. No simulation — pure
// area model.
func Fig3() []Fig3Row {
	var rows []Fig3Row
	sizes := []int{8, 16, 32, 64}
	for _, kb := range sizes {
		g := cache.MustGeometry(kb*1024, LineBytes, 1)
		rows = append(rows, Fig3Row{
			Label: fmt.Sprintf("NLS-cache %dK", kb),
			RBE:   area.NLSCacheRBE(NLSPerLine, g),
		})
	}
	for _, entries := range NLSTableSizes {
		for _, kb := range sizes {
			g := cache.MustGeometry(kb*1024, LineBytes, 1)
			rows = append(rows, Fig3Row{
				Label: fmt.Sprintf("%d NLS-table %dK", entries, kb),
				RBE:   area.NLSTableRBE(entries, g),
			})
		}
	}
	for _, entries := range []int{128, 256} {
		for _, assoc := range []int{1, 2, 4} {
			rows = append(rows, Fig3Row{
				Label: fmt.Sprintf("%d BTB %d-way", entries, assoc),
				RBE:   area.BTBRBE(btb.Config{Entries: entries, Assoc: assoc}),
			})
		}
	}
	return rows
}

// RenderFig3 formats Figure 3 as a table with bars.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: register bit equivalent costs (RBE)\n")
	max := 0.0
	for _, r := range rows {
		if r.RBE > max {
			max = r.RBE
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %9.0f %s\n", r.Label, r.RBE, bar(r.RBE, max, 40))
	}
	return b.String()
}

// Fig6Row is one bar of Figure 6.
type Fig6Row struct {
	Entries, Assoc int
	NS             float64
}

// Fig6 reproduces Figure 6: estimated BTB access times.
func Fig6() []Fig6Row {
	var rows []Fig6Row
	for _, entries := range []int{128, 256} {
		for _, assoc := range []int{1, 2, 4} {
			rows = append(rows, Fig6Row{entries, assoc, timing.BTBAccessNS(entries, assoc)})
		}
	}
	return rows
}

// RenderFig6 formats Figure 6.
func RenderFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: BTB access time (ns, CACTI-style model)\n")
	for _, r := range rows {
		way := fmt.Sprintf("%d-way", r.Assoc)
		if r.Assoc == 1 {
			way = "direct"
		}
		fmt.Fprintf(&b, "  %3d-entry %-6s %5.2f ns %s\n", r.Entries, way, r.NS, bar(r.NS, 8, 32))
	}
	return b.String()
}

// RenderAverages formats BEP averages as stacked misfetch/mispredict rows,
// the textual equivalent of the paper's stacked bars.
func RenderAverages(title string, avgs []Average) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("  arch                        cache        misfetch  mispredict   BEP\n")
	max := 0.0
	for _, a := range avgs {
		if a.BEP() > max {
			max = a.BEP()
		}
	}
	for _, a := range avgs {
		fmt.Fprintf(&b, "  %-26s %-12s %8.3f %10.3f %7.3f %s\n",
			a.Arch, a.Cache, a.MfBEP, a.MpBEP, a.BEP(), bar(a.BEP(), max, 30))
	}
	return b.String()
}

// RenderCPI formats Figure 8.
func RenderCPI(avgs []Average) string {
	var b strings.Builder
	b.WriteString("Figure 8: cycles per instruction (single issue, 5-cycle miss penalty)\n")
	b.WriteString("  arch                        cache          CPI   icache-miss%\n")
	for _, a := range avgs {
		fmt.Fprintf(&b, "  %-26s %-12s %6.3f %10.2f\n", a.Arch, a.Cache, a.CPI, 100*a.MissRate)
	}
	return b.String()
}

// RenderFig7 formats the per-program comparison. Rows must be the fig7
// grid's rows (program-major); programs print sorted by name, each with
// its rows in grid arm order. BTBs are cache-independent, so their cache
// column collapses to "(any)".
func RenderFig7(rows []Row, programs int, p metrics.Penalties) string {
	var b strings.Builder
	b.WriteString("Figure 7: per-program branch execution penalty\n")
	perProg := 0
	if programs > 0 {
		perProg = len(rows) / programs
	}
	byProg := map[string][]Row{}
	names := make([]string, 0, programs)
	for i := 0; i < programs; i++ {
		prog := rows[i*perProg : (i+1)*perProg]
		byProg[prog[0].Program] = prog
		names = append(names, prog[0].Program)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%s:\n", name)
		for _, res := range byProg[name] {
			cacheLabel := res.Cache().String()
			if strings.Contains(res.Arch, "BTB") {
				cacheLabel = "(any)"
			}
			fmt.Fprintf(&b, "  %-26s %-12s mf=%6.3f mp=%6.3f BEP=%6.3f\n",
				res.Arch, cacheLabel, res.M.MisfetchBEP(p), res.M.MispredictBEP(p), res.M.BEP(p))
		}
	}
	return b.String()
}

// PHTRow is one row of the direction-predictor ablation.
type PHTRow struct {
	PHT      string
	Arch     string
	CondAcc  float64
	BEP      float64
	SizeBits int
}

// RenderPHTSweep formats the direction-predictor ablation.
func RenderPHTSweep(rows []PHTRow) string {
	var b strings.Builder
	b.WriteString("Ablation: direction predictor choice (16KB direct i-cache)\n")
	b.WriteString("  PHT                  arch                   cond-acc     BEP    bits\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %-22s %7.2f%% %7.3f %7d\n",
			r.PHT, r.Arch, 100*r.CondAcc, r.BEP, r.SizeBits)
	}
	return b.String()
}

// WidthRow is one point of the multi-issue extension sweep (§8): an
// architecture evaluated under a W-wide fetch front end.
type WidthRow struct {
	Arch         string
	Width        int
	IPC          float64
	PenaltyShare float64
}

// RenderWidthSweep formats the multi-issue sweep.
func RenderWidthSweep(rows []WidthRow) string {
	var b strings.Builder
	b.WriteString("Extension (§8): fetch-width sweep, 16KB direct i-cache\n")
	b.WriteString("  arch                       width    IPC   penalty-share\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %5d %7.3f %11.1f%%\n",
			r.Arch, r.Width, r.IPC, 100*r.PenaltyShare)
	}
	return b.String()
}

// PollutionRow compares an architecture with and without wrong-path fetch
// pollution modelling.
type PollutionRow struct {
	Arch             string
	CleanMissRate    float64
	PollutedMissRate float64
	CleanMisfetchBEP float64
	PollutedMisfetch float64
	CleanCPI         float64
	PollutedCPI      float64
}

// RenderPollutionSweep formats the wrong-path ablation.
func RenderPollutionSweep(rows []PollutionRow, p metrics.Penalties) string {
	var b strings.Builder
	b.WriteString("Ablation: wrong-path fetch pollution (8KB direct i-cache)\n")
	b.WriteString("  arch                       miss% clean/poll   mf-BEP clean/poll    CPI clean/poll\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %6.2f / %-6.2f %10.4f / %-8.4f %7.3f / %-7.3f\n",
			r.Arch, 100*r.CleanMissRate, 100*r.PollutedMissRate,
			r.CleanMisfetchBEP, r.PollutedMisfetch,
			r.CleanCPI, r.PollutedCPI)
	}
	return b.String()
}

// HybridRow is one arm of the hybrid equal-cost comparison.
type HybridRow struct {
	Arch     string  `json:"arch"`
	MfBEP    float64 `json:"misfetch_bep"`
	MpBEP    float64 `json:"mispredict_bep"`
	BEP      float64 `json:"bep"`
	SizeBits int     `json:"size_bits"`
}

// RenderHybrid formats the hybrid comparison, Figure-5-style with a
// predictor-cost column.
func RenderHybrid(rows []HybridRow) string {
	var b strings.Builder
	b.WriteString("Extension: hybrid NLS-table + BTB, equal-cost comparison (16KB direct i-cache)\n")
	b.WriteString("  arch                        misfetch  mispredict   BEP      bits\n")
	max := 0.0
	for _, r := range rows {
		if r.BEP > max {
			max = r.BEP
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %8.3f %10.3f %7.3f %9d %s\n",
			r.Arch, r.MfBEP, r.MpBEP, r.BEP, r.SizeBits, bar(r.BEP, max, 30))
	}
	return b.String()
}

// avgRow flattens an Average for the -json report (cache.Geometry renders
// as its display string).
type avgRow struct {
	Arch     string  `json:"arch"`
	Cache    string  `json:"cache"`
	MfBEP    float64 `json:"misfetch_bep"`
	MpBEP    float64 `json:"mispredict_bep"`
	BEP      float64 `json:"bep"`
	CPI      float64 `json:"cpi"`
	MissRate float64 `json:"icache_miss_rate"`
}

func avgRows(avgs []Average) []avgRow {
	rows := make([]avgRow, len(avgs))
	for i, a := range avgs {
		rows[i] = avgRow{
			Arch: a.Arch, Cache: a.Cache.String(),
			MfBEP: a.MfBEP, MpBEP: a.MpBEP, BEP: a.BEP(),
			CPI: a.CPI, MissRate: a.MissRate,
		}
	}
	return rows
}

// resultRow flattens one per-program Row for the -json report.
type resultRow struct {
	Program string  `json:"program"`
	Arch    string  `json:"arch"`
	Cache   string  `json:"cache"`
	MfBEP   float64 `json:"misfetch_bep"`
	MpBEP   float64 `json:"mispredict_bep"`
	BEP     float64 `json:"bep"`
}

// bar renders a proportional ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n)
}
