package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/workload"
)

// TestRecordsPerSecGuardsZeroElapsed pins the derived-rate guard: a
// snapshot taken before any wall time has accumulated (or with a clock
// anomaly driving Elapsed negative) reports 0, never Inf or NaN.
func TestRecordsPerSecGuardsZeroElapsed(t *testing.T) {
	cases := []struct {
		name string
		s    SweepStats
		want float64
	}{
		{"zero elapsed", SweepStats{Records: 1000}, 0},
		{"negative elapsed", SweepStats{Records: 1000, Elapsed: -time.Second}, 0},
		{"zero records", SweepStats{Elapsed: time.Second}, 0},
		{"normal", SweepStats{Records: 3000, Elapsed: 2 * time.Second}, 1500},
	}
	for _, c := range cases {
		if got := c.s.RecordsPerSec(); got != c.want {
			t.Errorf("%s: RecordsPerSec() = %g, want %g", c.name, got, c.want)
		}
	}
}

// TestBuildEnvString covers the -version rendering the CLIs share.
func TestBuildEnvString(t *testing.T) {
	e := BuildEnv{GoVersion: "go1.24.0", Module: "repro",
		Revision: "0123456789abcdef0123", Modified: true}
	got := e.String()
	for _, want := range []string{"repro", "go1.24.0", "0123456789ab+"} {
		if !strings.Contains(got, want) {
			t.Errorf("BuildEnv.String() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "0123456789abc") {
		t.Errorf("revision not truncated to 12 chars: %q", got)
	}
	bare := BuildEnv{GoVersion: "go1.24.0"}
	if s := bare.String(); !strings.Contains(s, "unknown") {
		t.Errorf("bare BuildEnv.String() = %q, want a rev placeholder", s)
	}

	if live := ReadBuildEnv(); live.GoVersion == "" {
		t.Error("ReadBuildEnv returned an empty Go version")
	}
}

// TestManifestCarriesStageSpans: a store-backed run produces all five
// executor stage spans and they survive the manifest's JSON round trip.
func TestManifestCarriesStageSpans(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(20_000)
	cfg.Programs = []workload.Spec{workload.Li()}
	x := &Executor{R: NewRunner(cfg), Store: store}
	g := Grid{Name: "manifest-stages", Arms: []Arm{
		{Name: "base", Spec: arch.NLSTable(1024), Caches: cache16KDirect()},
	}}
	rs, err := x.RunGrids(false, g)
	if err != nil {
		t.Fatal(err)
	}

	m := NewRunManifest(x, rs, []string{"manifest-stages"}, []string{"test"})
	if len(m.Stages) != 5 {
		t.Fatalf("manifest has %d stages, want 5: %+v", len(m.Stages), m.Stages)
	}
	byName := map[string]float64{}
	for _, sp := range m.Stages {
		byName[sp.Stage] = sp.Seconds
	}
	for _, stage := range []string{"gather", "gen-corpus", "trace-gen", "replay", "store-save"} {
		if _, ok := byName[stage]; !ok {
			t.Errorf("manifest missing stage %q", stage)
		}
	}
	if byName["replay"] <= 0 {
		t.Errorf("cold run replay span = %g, want > 0", byName["replay"])
	}

	dir := t.TempDir()
	path, err := m.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, filepath.Base(path)))
	if err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != len(m.Stages) {
		t.Errorf("round-tripped %d stages, want %d", len(back.Stages), len(m.Stages))
	}
}
