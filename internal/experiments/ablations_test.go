package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestPerLineSweepOrdering(t *testing.T) {
	// §5.1: two predictors per line approach the NLS-table; one per
	// line is worse (half the predictors, more intra-line conflicts).
	r := runnerOn(300_000, workload.Gcc(), workload.Groff())
	avgs := figureAverages(t, r, "perline")
	one, ok1 := avgBEP(avgs, "NLS-cache 1/line", "8KB direct")
	two, ok2 := avgBEP(avgs, "NLS-cache 2/line", "8KB direct")
	four, ok4 := avgBEP(avgs, "NLS-cache 4/line", "8KB direct")
	if !ok1 || !ok2 || !ok4 {
		t.Fatal("missing sweep rows")
	}
	if two > one {
		t.Errorf("2/line BEP %.4f should not exceed 1/line %.4f", two, one)
	}
	if four > two {
		t.Errorf("4/line BEP %.4f should not exceed 2/line %.4f", four, two)
	}
}

func TestCoupledSweepDecouplingWinsUnderPressure(t *testing.T) {
	r := runnerOn(300_000, workload.Gcc(), workload.Espresso())
	avgs := figureAverages(t, r, "coupled")
	dec32, ok1 := avgBEP(avgs, "32-entry direct BTB", "")
	cpl32, ok2 := avgBEP(avgs, "coupled 32-entry BTB", "")
	dec128, ok3 := avgBEP(avgs, "128-entry direct BTB", "")
	cpl128, ok4 := avgBEP(avgs, "coupled 128-entry BTB", "")
	johnson, ok5 := avgBEP(avgs, "Johnson 1-bit", "")
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		t.Fatal("missing sweep rows")
	}
	// The decoupling mechanism: shrinking the BTB costs the coupled
	// design direction state (entries evicted fall back to static
	// prediction) on top of the target state both designs lose, so
	// decoupling's relative value must GROW as the BTB shrinks. (On
	// these synthetic traces the tagged per-entry counters are strong
	// enough that the coupled design wins in absolute terms — real
	// SPEC92 branch streams reward global history more; see
	// EXPERIMENTS.md — but the capacity mechanism is direction-
	// independent.)
	if (dec32 - cpl32) >= (dec128 - cpl128) {
		t.Errorf("decoupling advantage should grow under pressure: gap@32 %.4f, gap@128 %.4f",
			dec32-cpl32, dec128-cpl128)
	}
	if cpl32 <= cpl128 {
		t.Errorf("coupled-32 BEP %.4f should be worse than coupled-128 %.4f", cpl32, cpl128)
	}
	// The one-bit successor-index design trails the 2-bit coupled BTB.
	if johnson <= cpl128 {
		t.Errorf("Johnson BEP %.4f should trail the coupled-128 BTB %.4f", johnson, cpl128)
	}
}

func TestPHTSweep(t *testing.T) {
	r := runnerOn(300_000, workload.Espresso())
	_, data := figureData(t, r, "pht")
	rows := data.([]PHTRow)
	get := func(phtName, arch string) PHTRow {
		for _, row := range rows {
			if row.PHT == phtName && row.Arch == arch {
				return row
			}
		}
		t.Fatalf("missing row %s/%s", phtName, arch)
		return PHTRow{}
	}
	gsh := get("gshare-4096", "1024 NLS-table")
	bim := get("bimodal-4096", "1024 NLS-table")
	one := get("1bit-4096", "1024 NLS-table")
	static := get("static-not-taken", "1024 NLS-table")
	// The dynamic predictors must land in the era-realistic band and
	// beat the 1-bit and static baselines. (On these synthetic traces
	// per-address and global-history predictors are closer than on real
	// SPEC92 code — see EXPERIMENTS.md.)
	for _, row := range []PHTRow{gsh, bim} {
		if row.CondAcc < 0.80 {
			t.Errorf("%s acc %.3f below 0.80", row.PHT, row.CondAcc)
		}
	}
	if bim.CondAcc < one.CondAcc-0.02 {
		t.Errorf("bimodal acc %.3f well below 1-bit %.3f", bim.CondAcc, one.CondAcc)
	}
	if static.CondAcc > one.CondAcc {
		t.Errorf("static acc %.3f above 1-bit %.3f", static.CondAcc, one.CondAcc)
	}
	// BEP tracks accuracy inversely.
	if gsh.BEP > static.BEP {
		t.Errorf("gshare BEP %.4f worse than static %.4f", gsh.BEP, static.BEP)
	}
	// The PHT accuracy is the same for both architectures (the paper's
	// methodological requirement) up to indirect/return differences.
	btbRow := get("gshare-4096", "128-entry direct BTB")
	if diff := gsh.CondAcc - btbRow.CondAcc; diff > 0.001 || diff < -0.001 {
		t.Errorf("cond accuracy differs across architectures: %.4f vs %.4f",
			gsh.CondAcc, btbRow.CondAcc)
	}
}

func TestRenderPHTSweep(t *testing.T) {
	r := runnerOn(100_000, workload.Li())
	out, _ := figureData(t, r, "pht")
	if !strings.Contains(out, "gshare-4096") || !strings.Contains(out, "static-not-taken") {
		t.Error("render incomplete")
	}
}
