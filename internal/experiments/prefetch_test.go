package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// prefetchTestConfig runs the prefetch grid on two paper workloads, big
// enough that the 8KB cache sees real capacity pressure.
func prefetchTestConfig() Config {
	cfg := DefaultConfig(200_000)
	cfg.Programs = []workload.Spec{workload.Li(), workload.Gcc()}
	return cfg
}

// TestPrefetchGolden pins the prefetch figure's headline claims (the
// `make prefetch-golden` gate):
//
//   - FDIP actually prefetches (useful fills > 0) and its run-ahead absorbs
//     compulsory misses: the cold bucket shrinks vs the no-prefetch arm on
//     every paper workload tested.
//   - Coverage orders FDIP > next-line > none: the predicted stream beats
//     the sequential heuristic.
//   - Prefetching perturbs nothing in the prediction accounting: Breaks and
//     CondDirWrong are bit-identical across the three arms per program.
func TestPrefetchGolden(t *testing.T) {
	cfg := prefetchTestConfig()
	f := prefetchFigure()

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := (&Executor{R: NewRunner(cfg), Store: store}).Run(f)
	if err != nil {
		t.Fatal(err)
	}
	rows := rs.Rows(f.Grid)
	arms := len(f.Grid.Arms)
	if len(rows) != arms*len(cfg.Programs) {
		t.Fatalf("got %d rows, want %d", len(rows), arms*len(cfg.Programs))
	}

	coldImproved := 0
	for p, prog := range cfg.Programs {
		base, fdip := rows[p*arms].M, rows[p*arms+2].M
		nextline := rows[p*arms+1].M
		for a := 1; a < arms; a++ {
			m := rows[p*arms+a].M
			if m.Breaks != base.Breaks || m.CondDirWrong != base.CondDirWrong {
				t.Errorf("%s arm %q: prefetching perturbed prediction accounting: breaks %d/%d, dir-wrong %d/%d",
					prog.Name, rows[p*arms+a].Arch, m.Breaks, base.Breaks, m.CondDirWrong, base.CondDirWrong)
			}
		}
		if base.PrefIssued != 0 {
			t.Errorf("%s: no-prefetch arm issued %d prefetches", prog.Name, base.PrefIssued)
		}
		if fdip.PrefUseful == 0 {
			t.Errorf("%s: fdip arm produced no useful prefetches", prog.Name)
		}
		if base.ICacheColdMisses == 0 || base.ICacheMisses == 0 {
			t.Errorf("%s: baseline run never missed (cold=%d misses=%d); the grid's cache is not under pressure",
				prog.Name, base.ICacheColdMisses, base.ICacheMisses)
		}
		if fdip.ICacheColdMisses < base.ICacheColdMisses {
			coldImproved++
		}
		if !(fdip.PrefCoverage() > nextline.PrefCoverage()) {
			t.Errorf("%s: fdip coverage %.3f not above next-line %.3f",
				prog.Name, fdip.PrefCoverage(), nextline.PrefCoverage())
		}
		if fdip.ICacheMisses >= base.ICacheMisses {
			t.Errorf("%s: fdip misses %d did not improve on baseline %d",
				prog.Name, fdip.ICacheMisses, base.ICacheMisses)
		}
	}
	if coldImproved == 0 {
		t.Errorf("fdip reduced the cold bucket on no workload")
	}

	text, _, err := (&Executor{R: NewRunner(cfg), Store: store}).RenderFigure(f, rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FDIP", "next-line", "cold"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, text)
		}
	}

	// Warm pass: every prefetch cell must round-trip the store (the new
	// counters serialize and the stale-cell guard does not age them).
	warm, err := (&Executor{R: NewRunner(cfg), Store: store}).Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated != 0 {
		t.Errorf("warm run re-simulated %d prefetch cells", warm.Simulated)
	}
	warmRows := warm.Rows(f.Grid)
	for i := range rows {
		if warmRows[i].M != rows[i].M {
			t.Errorf("cell %d: warm-loaded counters differ from cold run", i)
		}
	}
}
