package experiments

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/workload"
)

// A Grid is the declarative form of one experiment: the architecture arms
// to simulate and, per arm, the cache geometries to sweep them over. The
// program axis comes from the Runner's Config, so one Grid declaration
// serves any program set. Every table and figure of the evaluation is a
// Grid plus a renderer (see Figures); the executor is the only code that
// turns grids into simulations.
//
// A Grid round-trips through JSON (arch.Spec and cache.Geometry both
// serialize, the latter validated on decode), which is what lets the sweep
// service accept grids as wire-format jobs (internal/serve).
type Grid struct {
	Name string `json:"name"`
	Arms []Arm  `json:"arms"`
}

// An Arm is one architecture axis entry: a display name, the declarative
// spec, and the cache geometries to instantiate it on. An empty Caches list
// means "the spec's own geometry" (a single cell per program).
//
// Two arms of different grids whose (spec, geometry) coincide denote the
// same cell: the executor simulates it once and every renderer reads it
// under its own arm name.
type Arm struct {
	Name   string           `json:"name"`
	Spec   arch.Spec        `json:"spec"`
	Caches []cache.Geometry `json:"caches,omitempty"`
}

// A Cell is one fully resolved simulation point of a grid: a program and a
// complete spec (geometry applied). Cell identity for the executor and the
// results store is the content key — see Key — not the arm name, which is
// presentation only.
type Cell struct {
	Prog workload.Spec
	Arm  string
	Spec arch.Spec
}

// Key returns the cell's content-addressed store key under the given
// penalties and instruction budget.
func (c Cell) Key(cfg Config) string {
	return cellKey(c.Prog, cfg.Insns, c.Spec, cfg.Penalties)
}

// Cells enumerates the grid's cells program-major; it is the exported view
// the sweep service uses to content-address a job (every cell's Key is a
// store key) without running anything.
func (g Grid) Cells(programs []workload.Spec) []Cell {
	return g.cells(programs)
}

// cells enumerates the grid's cells program-major (all of one program's
// cells, arm-major, then the next program's). The order is load-bearing:
// renderers aggregate per (arm, cache) key by walking rows in this order,
// which reproduces the per-key program-order float accumulation of the
// pre-grid drivers bit for bit.
func (g Grid) cells(programs []workload.Spec) []Cell {
	cells := make([]Cell, 0, len(programs)*g.cellsPerProgram())
	for _, p := range programs {
		for _, a := range g.Arms {
			if len(a.Caches) == 0 {
				cells = append(cells, Cell{Prog: p, Arm: a.Name, Spec: a.Spec})
				continue
			}
			for _, geo := range a.Caches {
				cells = append(cells, Cell{Prog: p, Arm: a.Name, Spec: a.Spec.WithGeometry(geo)})
			}
		}
	}
	return cells
}

// cellsPerProgram returns the number of cells each program contributes.
func (g Grid) cellsPerProgram() int {
	n := 0
	for _, a := range g.Arms {
		if len(a.Caches) == 0 {
			n++
		} else {
			n += len(a.Caches)
		}
	}
	return n
}
