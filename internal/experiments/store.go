package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// The content-addressed results store. Every simulated grid cell is
// persisted as one JSON file named by the SHA-256 of everything its
// counters depend on — the workload spec (name, seed, generator
// parameters), the instruction budget, the complete arch.Spec (predictor
// sizing, cache geometry, PHT, RAS depth, pollution flag), and the penalty
// assumptions. A later run whose inputs are unchanged loads the cell
// instead of re-simulating it; any change to any input changes the key, so
// stale results can never be served (invalidation is structural, not
// tracked). Keys use the canonical-JSON convention of arch.Spec.Hash:
// encoding/json marshals struct fields in declaration order with
// deterministic formatting, and a deliberate schema change must not
// silently alias old cells — hence the version tag in each key document.

// cellSchema versions the cell key derivation. Bump it when the meaning of
// a stored cell changes without any key field changing (e.g. an engine
// recalibration), so every old cell misses and is recomputed.
const cellSchema = "nls-cell/v1"

// infoSchema versions the per-program replay-derived info (Table-1 stats
// and fetch-block counts).
const infoSchema = "nls-info/v1"

// cellKey derives the store key of one simulation cell.
func cellKey(w workload.Spec, insns int, s arch.Spec, p metrics.Penalties) string {
	return hashDoc(struct {
		Schema    string            `json:"schema"`
		Workload  workload.Spec     `json:"workload"`
		Insns     int               `json:"insns"`
		Spec      arch.Spec         `json:"spec"`
		Penalties metrics.Penalties `json:"penalties"`
	}{cellSchema, w, insns, s, p})
}

// infoKey derives the store key of a program's replay-derived info.
func infoKey(w workload.Spec, insns int) string {
	return hashDoc(struct {
		Schema    string        `json:"schema"`
		Workload  workload.Spec `json:"workload"`
		Insns     int           `json:"insns"`
		LineBytes int           `json:"line_bytes"`
		Widths    []int         `json:"widths"`
	}{infoSchema, w, insns, LineBytes, FetchWidths()})
}

// hashDoc returns the lowercase-hex SHA-256 of the document's canonical
// JSON encoding.
func hashDoc(doc any) string {
	buf, err := json.Marshal(doc)
	if err != nil {
		// Key documents contain only marshalable fields; reaching this is
		// a programming error.
		panic(err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// DefaultStoreDir is where the CLIs keep the results store, relative to
// the working directory.
func DefaultStoreDir() string { return filepath.Join("results", "cells") }

// Store is a content-addressed directory of JSON documents keyed by hex
// hashes. Concurrent writers of distinct keys are safe (each key is its
// own file, written via rename); two writers of the same key write the
// same content by construction.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path shards keys by their first byte to keep directories small.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Load reads the document stored under key into v. A missing or unreadable
// document reports (false, nil): the store is a cache, so corruption
// degrades to recomputation, never to an error.
func (s *Store) Load(key string, v any) (bool, error) {
	buf, err := os.ReadFile(s.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return false, nil // corrupt cell: treat as a miss and overwrite
	}
	return true, nil
}

// staleCell reports that a loaded cell predates the icache_cold_misses
// schema extension. The first demand miss of any run is by definition
// compulsory, so ICacheMisses > 0 forces ICacheColdMisses >= 1 in every
// freshly simulated cell; a zero cold count next to a nonzero miss count
// can only mean the cell was serialized before the field existed. Detecting
// staleness from the invariant keeps the cell key schema — and with it
// every already-valid stored hash — unchanged.
func staleCell(m *metrics.Counters) bool {
	return m.ICacheMisses > 0 && m.ICacheColdMisses == 0
}

// Save writes v under key, atomically replacing any previous document.
func (s *Store) Save(key string, v any) error {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
