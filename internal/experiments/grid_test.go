package experiments

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// gridTestConfig is shared by the golden and accounting tests: two
// programs with contrasting branch behaviour, small enough to oracle
// every cell per-cell.
func gridTestConfig() Config {
	cfg := DefaultConfig(80_000)
	cfg.Programs = []workload.Spec{workload.Espresso(), workload.Gcc()}
	return cfg
}

// TestGridGolden is the equivalence test for the whole pipeline: every
// figure's rendered output from the grid executor must be identical (a)
// to a per-cell oracle that replays each cell's trace independently
// through fetch.Run, and (b) across a cold store-backed run, a store-less
// run, and a warm run that loads every cell. This pins the refactor's
// bit-for-bit claim: shared replay, cell dedup across figures, and the
// store round-trip change nothing observable.
func TestGridGolden(t *testing.T) {
	cfg := gridTestConfig()
	figs := Figures()

	// Cold run, store-backed.
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coldR := NewRunner(cfg)
	cold, err := (&Executor{R: coldR, Store: store}).Run(figs...)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Loaded != 0 {
		t.Errorf("cold run loaded %d cells from an empty store", cold.Loaded)
	}

	// Per-cell oracle: every unique cell of every grid, replayed
	// independently on the materialized trace.
	traces := map[string]int{}
	for i, p := range cfg.Programs {
		traces[p.Name] = i
	}
	r := NewRunner(cfg)
	checked := map[string]bool{}
	for _, f := range figs {
		rows := cold.Rows(f.Grid)
		for i, c := range f.Grid.cells(cfg.Programs) {
			k := c.Key(cfg)
			if checked[k] {
				continue
			}
			checked[k] = true
			tr, err := r.TraceOne(traces[c.Prog.Name])
			if err != nil {
				t.Fatal(err)
			}
			var want *metrics.Counters
			if c.Spec.Prefetch != nil {
				// A decoupled (prefetching) frontend's FTQ run-ahead is
				// bounded by the replay block, so its independent oracle
				// is the executor's own chunking, not per-record Step.
				want = fetch.RunChunks(c.Spec.MustBuild(),
					trace.Chunk(tr, trace.DefaultChunkRecords).Chunks())
			} else {
				want = fetch.Run(c.Spec.MustBuild(), tr)
			}
			if rows[i].M != *want {
				t.Errorf("%s cell %s/%s: executor counters diverge from per-cell oracle\n got %+v\nwant %+v",
					f.Name, c.Prog.Name, c.Arm, rows[i].M, *want)
			}
		}
	}

	// Render every figure from three sources; all must match byte for byte.
	// Probed figures bypass the store and the result set entirely (their
	// replay is exercised by TestRunAttribution), so they are skipped here.
	renderAll := func(rs *ResultSet) map[string]string {
		out := map[string]string{}
		for _, f := range figs {
			if f.Probed != nil {
				continue
			}
			text, _ := f.Render(rs.Context(f))
			out[f.Name] = text
		}
		return out
	}
	coldText := renderAll(cold)

	noStore, err := (&Executor{R: NewRunner(cfg)}).Run(figs...)
	if err != nil {
		t.Fatal(err)
	}
	for name, text := range renderAll(noStore) {
		if text != coldText[name] {
			t.Errorf("figure %s: store-less run differs from cold store-backed run\n%q\nvs\n%q",
				name, text, coldText[name])
		}
	}

	warmR := NewRunner(cfg)
	warm, err := (&Executor{R: warmR, Store: store}).Run(figs...)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated != 0 || warm.Replays != 0 {
		t.Errorf("warm run simulated %d cells, replayed %d traces; want 0, 0",
			warm.Simulated, warm.Replays)
	}
	if warm.Loaded != cold.Loaded+cold.Simulated {
		t.Errorf("warm run loaded %d cells, want %d", warm.Loaded, cold.Simulated)
	}
	for name, text := range renderAll(warm) {
		if text != coldText[name] {
			t.Errorf("figure %s: warm store-backed run differs from cold run\n%q\nvs\n%q",
				name, text, coldText[name])
		}
	}
	// A fully warm run must not even generate traces (laziness is what
	// makes the warm path fast).
	if s := warmR.LastSweepStats(); s.Records != 0 {
		t.Errorf("warm run replayed %d records, want 0", s.Records)
	}
}

// TestExecutorReplayAccounting pins the tentpole's scheduling claim: a
// full multi-figure run replays each program's trace EXACTLY once, no
// matter how many figures and cells share it, and a warm run replays
// nothing.
func TestExecutorReplayAccounting(t *testing.T) {
	cfg := gridTestConfig()
	figs := Figures()

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(cfg)
	rs, err := (&Executor{R: r, Store: store}).Run(figs...)
	if err != nil {
		t.Fatal(err)
	}
	s := r.LastSweepStats()
	if s.Replays != len(cfg.Programs) || rs.Replays != len(cfg.Programs) {
		t.Errorf("cold run replayed %d/%d traces, want exactly %d (one per program)",
			s.Replays, rs.Replays, len(cfg.Programs))
	}
	wantRecords := int64(len(cfg.Programs)) * int64(cfg.Insns)
	if s.Records != wantRecords {
		t.Errorf("cold run replayed %d records, want %d (each trace read once)",
			s.Records, wantRecords)
	}
	if s.Cells != s.TotalCells || s.Cells != rs.Simulated {
		t.Errorf("cell accounting: Cells=%d TotalCells=%d Simulated=%d", s.Cells, s.TotalCells, rs.Simulated)
	}

	warmR := NewRunner(cfg)
	warm, err := (&Executor{R: warmR, Store: store}).Run(figs...)
	if err != nil {
		t.Fatal(err)
	}
	ws := warmR.LastSweepStats()
	if warm.Replays != 0 || ws.Records != 0 {
		t.Errorf("warm run: replays=%d records=%d, want 0, 0", warm.Replays, ws.Records)
	}
	if ws.Loaded != s.TotalCells {
		t.Errorf("warm run loaded %d cells, want %d", ws.Loaded, s.TotalCells)
	}

	// -force bypasses the warm path and re-simulates everything.
	forceR := NewRunner(cfg)
	forced, err := (&Executor{R: forceR, Store: store, Force: true}).Run(figs...)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Loaded != 0 || forced.Replays != len(cfg.Programs) {
		t.Errorf("forced run: loaded=%d replays=%d, want 0, %d",
			forced.Loaded, forced.Replays, len(cfg.Programs))
	}
}

// TestCellDedupAcrossGrids: two grids declaring the same (spec, cache)
// under different arm names share one cell, and each reads it back under
// its own labels.
func TestCellDedupAcrossGrids(t *testing.T) {
	cfg := Config{Insns: 50_000, Programs: []workload.Spec{workload.Li()},
		Penalties: DefaultConfig(0).Penalties}
	a := Grid{Name: "a", Arms: []Arm{{Name: "first name", Spec: arch.NLSTable(1024), Caches: cache16KDirect()}}}
	b := Grid{Name: "b", Arms: []Arm{{Name: "second name", Spec: arch.NLSTable(1024), Caches: cache16KDirect()}}}
	r := NewRunner(cfg)
	rs, err := (&Executor{R: r}).RunGrids(false, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Simulated != 1 {
		t.Errorf("simulated %d cells for two aliased grids, want 1", rs.Simulated)
	}
	ra, rb := rs.Rows(a), rs.Rows(b)
	if ra[0].Arch != "first name" || rb[0].Arch != "second name" {
		t.Errorf("arm labels not applied per grid: %q, %q", ra[0].Arch, rb[0].Arch)
	}
	if ra[0].M != rb[0].M {
		t.Error("aliased cells returned different counters")
	}
}
