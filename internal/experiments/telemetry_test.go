package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/fetch"
	"repro/internal/workload"
)

// TestRunAttribution exercises the probed replay path end to end on a
// small run: one report per grid cell in cell order, totals that are real
// (every arm breaks somewhere), and the §4.1 structural claim — eviction
// loss only for the line-coupled organizations — holding on the full
// attribution grid, not just the two-engine golden pair in package obs.
func TestRunAttribution(t *testing.T) {
	cfg := DefaultConfig(60_000)
	cfg.Programs = []workload.Spec{workload.Espresso(), workload.Gcc()}
	x := &Executor{R: NewRunner(cfg)}
	g := AttributionGrid()

	reports, err := x.RunAttribution(g, AttributionTopN)
	if err != nil {
		t.Fatal(err)
	}
	cells := g.cells(cfg.Programs)
	if len(reports) != len(cells) {
		t.Fatalf("got %d reports for %d cells", len(reports), len(cells))
	}
	for i, rep := range reports {
		if rep.Arch != cells[i].Arm || rep.Program != cells[i].Prog.Name {
			t.Errorf("report %d labeled %s/%s, cell is %s/%s",
				i, rep.Arch, rep.Program, cells[i].Arm, cells[i].Prog.Name)
		}
		if rep.Breaks == 0 || rep.StaticBranches == 0 {
			t.Errorf("report %d (%s/%s) saw no breaks", i, rep.Arch, rep.Program)
		}
		if len(rep.Top) > AttributionTopN {
			t.Errorf("report %d has %d offenders, cap is %d", i, len(rep.Top), AttributionTopN)
		}
		evict := rep.Causes[fetch.CauseEvictionLoss]
		lineCoupled := strings.Contains(rep.Arch, "NLS-cache") || strings.Contains(rep.Arch, "Johnson")
		if !lineCoupled && evict != 0 {
			t.Errorf("%s/%s reports %d eviction losses; only line-coupled state can die with a line",
				rep.Arch, rep.Program, evict)
		}
	}
}

// TestRunAttributionMatchesCounters pins the probe contract at the
// executor level: a probed replay reports exactly the counters an
// unprobed grid run produces for the same cells.
func TestRunAttributionMatchesCounters(t *testing.T) {
	cfg := DefaultConfig(50_000)
	cfg.Programs = []workload.Spec{workload.Li()}
	g := AttributionGrid()

	reports, err := (&Executor{R: NewRunner(cfg)}).RunAttribution(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := (&Executor{R: NewRunner(cfg)}).RunGrids(false, g)
	if err != nil {
		t.Fatal(err)
	}
	rows := rs.Rows(g)
	for i, rep := range reports {
		m := rows[i].M
		if rep.Breaks != m.Breaks || rep.Misfetches != m.Misfetches || rep.Mispredicts != m.Mispredicts {
			t.Errorf("%s/%s: attribution (%d/%d/%d) diverges from counters (%d/%d/%d)",
				rep.Arch, rep.Program, rep.Breaks, rep.Misfetches, rep.Mispredicts,
				m.Breaks, m.Misfetches, m.Mispredicts)
		}
	}
}

// TestAttributionFigureRenders drives the registered figure through the
// CLI's dispatch path.
func TestAttributionFigureRenders(t *testing.T) {
	f, ok := FigureByName("attribution")
	if !ok {
		t.Fatal("attribution figure not registered")
	}
	if f.Probed == nil {
		t.Fatal("attribution figure must be Probed")
	}
	cfg := DefaultConfig(40_000)
	cfg.Programs = []workload.Spec{workload.Espresso()}
	x := &Executor{R: NewRunner(cfg)}
	rs, err := x.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	text, data, err := x.RenderFigure(f, rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Attribution", "NLS-cache 2/line", "dir-wrong"} {
		if !strings.Contains(text, want) {
			t.Errorf("figure text missing %q:\n%s", want, text)
		}
	}
	if _, err := json.Marshal(data); err != nil {
		t.Errorf("figure data not JSON-marshalable: %v", err)
	}
}

// TestCellTimingsAndDedup checks the executor's telemetry accounting:
// every simulated cell gets a wall-time entry, store-served cells get
// none, and cross-grid duplicate requests are counted.
func TestCellTimingsAndDedup(t *testing.T) {
	cfg := Config{Insns: 40_000, Programs: []workload.Spec{workload.Li()},
		Penalties: DefaultConfig(0).Penalties}
	a := Grid{Name: "a", Arms: []Arm{{Name: "nls", Spec: arch.NLSTable(1024), Caches: cache16KDirect()}}}
	b := Grid{Name: "b", Arms: []Arm{
		{Name: "nls again", Spec: arch.NLSTable(1024), Caches: cache16KDirect()},
		{Name: "btb", Spec: arch.BTB(128, 1), Caches: cache16KDirect()},
	}}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	x := &Executor{R: NewRunner(cfg), Store: store}
	rs, err := x.RunGrids(false, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Deduped != 1 {
		t.Errorf("Deduped = %d, want 1 (the aliased NLS cell)", rs.Deduped)
	}
	if len(rs.Timings) != rs.Simulated {
		t.Fatalf("%d timings for %d simulated cells", len(rs.Timings), rs.Simulated)
	}
	for _, ct := range rs.Timings {
		if ct.Program == "" || ct.Arch == "" || ct.Cache == "" || ct.Seconds < 0 {
			t.Errorf("malformed timing entry: %+v", ct)
		}
	}

	// Warm run: everything store-served, so no timings.
	warm := &Executor{R: NewRunner(cfg), Store: store}
	wrs, err := warm.RunGrids(false, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrs.Timings) != 0 {
		t.Errorf("warm run produced %d timings, want 0", len(wrs.Timings))
	}

	// The manifest assembles the run's accounting and writes valid JSON.
	m := NewRunManifest(x, rs, []string{"a", "b"}, []string{"test"})
	if m.Schema != ManifestSchema || m.CellsSimulated != rs.Simulated ||
		m.CellsDeduped != 1 || m.Build.GoVersion == "" {
		t.Errorf("manifest accounting: %+v", m)
	}
	dir := t.TempDir()
	path, err := m.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Schema != ManifestSchema || back.CellsSimulated != m.CellsSimulated ||
		len(back.Cells) != len(m.Cells) {
		t.Errorf("manifest round-trip mismatch: %+v vs %+v", back, m)
	}
}
