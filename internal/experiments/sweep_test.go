package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
)

// sweepMatrix is the architecture axis used by the scheduler tests: one
// factory per engine family, so the differential covers every Step path.
func sweepMatrix() []Factory {
	return []Factory{
		NLSCacheFactory(NLSPerLine),
		NLSTableFactory(1024),
		BTBFactory(btb.Config{Entries: 128, Assoc: 1}),
		JohnsonFactory(),
	}
}

// TestSweepMatchesPerCellOracle is the differential test for the
// shared-replay scheduler: for the fixed built-in seeds, Sweep (broadcast
// path) must produce bit-identical metrics.Counters for EVERY
// (program × arch × cache) cell versus the legacy per-cell fetch.Run path,
// in the same deterministic order.
func TestSweepMatchesPerCellOracle(t *testing.T) {
	r := NewRunner(DefaultConfig(120_000))
	factories := sweepMatrix()
	caches := PaperCaches()

	got, err := r.Sweep(factories, caches)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.sweepPerCell(factories, caches)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Sweep returned %d cells, oracle %d", len(got), len(want))
	}
	if len(got) != len(r.Cfg.Programs)*len(factories)*len(caches) {
		t.Fatalf("unexpected cell count %d", len(got))
	}
	for i := range want {
		if got[i].Program != want[i].Program || got[i].Arch != want[i].Arch ||
			got[i].Spec.Cache != want[i].Spec.Cache {
			t.Fatalf("cell %d keyed (%s, %s, %s), oracle (%s, %s, %s)",
				i, got[i].Program, got[i].Arch, got[i].Cache(),
				want[i].Program, want[i].Arch, want[i].Cache())
		}
		if got[i].M != want[i].M {
			t.Errorf("cell %d (%s, %s, %s): counters diverge\n got %+v\nwant %+v",
				i, got[i].Program, got[i].Arch, got[i].Cache(), got[i].M, want[i].M)
		}
	}
}

// TestSweepPropertyRandomMatrix: randomized differential for the grouped
// fetch-oracle scheduler. Each trial draws a random architecture matrix —
// factories duplicated and reordered, wrong-path pollution flipped per arm
// (pollution-on arms must take the private-cache fallback), line sizes and
// associativities mixed so geometry groups form and dissolve — and asserts
// the broadcast Sweep is counter-for-counter identical to the per-cell
// replay. The probed/unprobed mix is asserted at the fetch layer
// (TestBroadcastMixedEligibility); Sweep itself never attaches probes.
func TestSweepPropertyRandomMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1995)) // deterministic trials
	pool := func() []Factory {
		return []Factory{
			NLSCacheFactory(NLSPerLine),
			NLSCacheFactory(1),
			NLSTableFactory(256),
			NLSTableFactory(1024),
			BTBFactory(btb.Config{Entries: 128, Assoc: 1}),
			BTBFactory(btb.Config{Entries: 256, Assoc: 4}),
			JohnsonFactory(),
		}
	}
	allCaches := []cache.Geometry{
		cache.MustGeometry(4*1024, 16, 1),
		cache.MustGeometry(8*1024, 32, 1),
		cache.MustGeometry(8*1024, 32, 4),
		cache.MustGeometry(16*1024, 64, 2),
	}

	for trial := 0; trial < 4; trial++ {
		src := pool()
		var factories []Factory
		for len(factories) < 2+rng.Intn(4) {
			f := src[rng.Intn(len(src))]
			if rng.Intn(2) == 0 {
				f.Name += " (polluted)"
				f.Spec.Pollution = true
			}
			factories = append(factories, f)
		}
		caches := append([]cache.Geometry(nil), allCaches...)
		rng.Shuffle(len(caches), func(i, j int) { caches[i], caches[j] = caches[j], caches[i] })
		caches = caches[:1+rng.Intn(len(caches))]

		cfg := DefaultConfig(40_000)
		cfg.Programs = cfg.Programs[:2]
		r := NewRunner(cfg)
		got, err := r.Sweep(factories, caches)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.sweepPerCell(factories, caches)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Sweep returned %d cells, oracle %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].M != want[i].M {
				t.Errorf("trial %d cell %d (%s, %s, %s): counters diverge\n got %+v\nwant %+v",
					trial, i, got[i].Program, got[i].Arch, got[i].Cache(), got[i].M, want[i].M)
			}
		}
	}
}

// TestSweepStats: the scheduler's counters account every cell and every
// record exactly once per program replay.
func TestSweepStats(t *testing.T) {
	r := NewRunner(DefaultConfig(50_000))
	var calls int
	r.Progress = func(SweepStats) { calls++ }
	factories := sweepMatrix()
	caches := PaperCaches()[:2]
	if _, err := r.Sweep(factories, caches); err != nil {
		t.Fatal(err)
	}
	s := r.LastSweepStats()
	wantCells := len(r.Cfg.Programs) * len(factories) * len(caches)
	if s.Cells != wantCells || s.TotalCells != wantCells {
		t.Errorf("cells = %d/%d, want %d", s.Cells, s.TotalCells, wantCells)
	}
	// Shared replay: each program's trace is read once, NOT once per cell.
	wantRecords := int64(len(r.Cfg.Programs)) * int64(r.Cfg.Insns)
	if s.Records != wantRecords {
		t.Errorf("records replayed = %d, want %d (one replay per program)", s.Records, wantRecords)
	}
	if s.Elapsed <= 0 || s.RecordsPerSec() <= 0 {
		t.Errorf("elapsed/throughput not populated: %+v", s)
	}
	if calls != len(r.Cfg.Programs) {
		t.Errorf("Progress called %d times, want %d", calls, len(r.Cfg.Programs))
	}
}
