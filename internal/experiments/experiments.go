// Package experiments reproduces every table and figure of the paper's
// evaluation — Table 1, Figures 3–8, and the repo's ablations — as one
// declarative pipeline: each experiment is a Grid (architecture arms ×
// cache geometries; the program axis comes from Config) plus a pure
// renderer over result Rows, a single Executor partitions every requested
// cell by program and replays each program's trace ONCE for all of them
// via fetch.Broadcast, and a content-addressed Store persists cells so
// unchanged ones are loaded instead of re-simulated across invocations.
// See DESIGN.md §9 for the layering and EXPERIMENTS.md for paper-vs-
// measured results.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Paper-fixed parameters (§5.1): 32-byte lines, a 4096-entry gshare PHT and
// a 32-entry return stack for every architecture, 2 NLS predictors per line
// for the NLS-cache, and the three NLS-table sizes. The values live in
// package arch (the single source the named-spec registry is built from);
// the aliases keep this package's sweep matrix from drifting away from the
// registry. See arch.PHTHistoryBits for the gshare history calibration
// note.
const (
	LineBytes      = arch.LineBytes
	PHTEntries     = arch.PHTEntries
	RASDepth       = ras.DefaultDepth
	NLSPerLine     = arch.NLSPerLine
	PHTHistoryBits = arch.PHTHistoryBits
)

// NLSTableSizes are the NLS-table sizes the paper evaluates.
var NLSTableSizes = []int{512, 1024, 2048}

// CacheSizesKB are the instruction cache sizes the paper simulates.
var CacheSizesKB = []int{8, 16, 32}

// FetchWidths returns the fetch widths of the §8 multi-issue extension.
// The executor pre-counts fetch blocks for exactly these widths during the
// per-program replay, so the width renderer is pure arithmetic.
func FetchWidths() []int { return []int{1, 2, 4, 8} }

// PaperCaches returns the cache geometries of the paper's BEP figures:
// 8K/16K/32K, direct-mapped and 4-way.
func PaperCaches() []cache.Geometry {
	var gs []cache.Geometry
	for _, kb := range CacheSizesKB {
		for _, assoc := range []int{1, 4} {
			gs = append(gs, cache.MustGeometry(kb*1024, LineBytes, assoc))
		}
	}
	return gs
}

// AllCaches returns every simulated cache configuration (§5.1 also includes
// 2-way), for the extended sweeps.
func AllCaches() []cache.Geometry {
	var gs []cache.Geometry
	for _, kb := range CacheSizesKB {
		for _, assoc := range []int{1, 2, 4} {
			gs = append(gs, cache.MustGeometry(kb*1024, LineBytes, assoc))
		}
	}
	return gs
}

// BTBConfigs returns the paper's BTB organizations for the BEP figures
// (128 and 256 entries, direct-mapped and 4-way).
func BTBConfigs() []btb.Config {
	return []btb.Config{
		{Entries: 128, Assoc: 1},
		{Entries: 128, Assoc: 4},
		{Entries: 256, Assoc: 1},
		{Entries: 256, Assoc: 4},
	}
}

// newPHT builds the paper's direction predictor: 4096-entry gshare.
func newPHT() pht.Predictor { return pht.NewGShare(PHTEntries, PHTHistoryBits) }

// Factory pairs a display name with a declarative spec whose cache
// geometry varies per sweep cell. Factories are the ad-hoc (non-Figure)
// sweep axis: Runner.Sweep turns them into a one-off Grid.
type Factory struct {
	Name string
	Spec arch.Spec
}

// New builds the factory's engine on the given cache geometry. The spec
// must be valid (a registered or helper-built spec always is).
func (f Factory) New(g cache.Geometry) fetch.Engine {
	return f.Spec.WithGeometry(g).MustBuild()
}

// SpecFactory adapts a declarative arch.Spec to a sweep Factory.
func SpecFactory(name string, s arch.Spec) Factory {
	return Factory{Name: name, Spec: s}
}

// NLSTableFactory returns a factory for the NLS-table architecture.
func NLSTableFactory(entries int) Factory {
	return SpecFactory(fmt.Sprintf("%d NLS-table", entries), arch.NLSTable(entries))
}

// NLSCacheFactory returns a factory for the NLS-cache architecture.
func NLSCacheFactory(perLine int) Factory {
	return SpecFactory("NLS-cache", arch.NLSCache(perLine))
}

// BTBFactory returns a factory for the decoupled BTB architecture.
func BTBFactory(cfg btb.Config) Factory {
	return SpecFactory(cfg.String(), arch.BTB(cfg.Entries, cfg.Assoc))
}

// JohnsonFactory returns a factory for the Johnson successor-index baseline
// (§6.2 related work).
func JohnsonFactory() Factory {
	return SpecFactory("Johnson 1-bit", arch.Johnson())
}

// Config drives a run: which programs, how many instructions each, and the
// penalty assumptions. All three are part of every cell's store key.
type Config struct {
	Insns     int
	Programs  []workload.Spec
	Penalties metrics.Penalties
}

// DefaultConfig returns the paper's setup over all six analogues.
func DefaultConfig(insns int) Config {
	return Config{
		Insns:     insns,
		Programs:  workload.All(),
		Penalties: metrics.Default(),
	}
}

// Runner generates and caches the per-program traces, lazily and
// independently per program: a warm-store run that needs no cell of some
// program never pays that program's trace generation.
type Runner struct {
	Cfg Config

	// Progress, when set, is called after each program of a run finishes
	// replaying, with a snapshot of the run so far. Calls are serialized;
	// the callback must not invoke the Runner.
	Progress func(SweepStats)

	progs []progTrace

	// corpus, when attached by UseCorpus, serves program traces by
	// decoding instead of generating (corpus.go).
	corpusMu sync.Mutex
	corpus   *trace.Corpus

	statsMu sync.Mutex
	stats   SweepStats
}

// progTrace is one program's lazily generated trace.
type progTrace struct {
	once sync.Once
	t    *trace.Trace
	ct   *trace.Chunked
	err  error
}

// NewRunner builds a runner.
func NewRunner(cfg Config) *Runner {
	return &Runner{Cfg: cfg, progs: make([]progTrace, len(cfg.Programs))}
}

// genOne generates (once) program i's trace and its chunked form. With a
// corpus attached (UseCorpus), the trace is decoded from the corpus
// instead; a corpus whose entry is unusable falls back to generation — the
// corpus is a cache, so corruption degrades to recomputation, never to an
// error.
func (r *Runner) genOne(i int) *progTrace {
	pt := &r.progs[i]
	pt.once.Do(func() {
		if c := r.attachedCorpus(); c != nil {
			if t, err := c.Trace(r.Cfg.Programs[i].Name); err == nil && len(t.Records) == r.Cfg.Insns {
				pt.t = t
				pt.ct = trace.Chunk(t, trace.DefaultChunkRecords)
				return
			}
		}
		pt.t, pt.err = r.Cfg.Programs[i].Trace(r.Cfg.Insns)
		if pt.err == nil {
			pt.ct = trace.Chunk(pt.t, trace.DefaultChunkRecords)
		}
	})
	return pt
}

// TraceOne returns program i's trace, generating it on first use.
func (r *Runner) TraceOne(i int) (*trace.Trace, error) {
	pt := r.genOne(i)
	return pt.t, pt.err
}

// ChunkedOne returns program i's chunked trace, generating it on first use.
func (r *Runner) ChunkedOne(i int) (*trace.Chunked, error) {
	pt := r.genOne(i)
	return pt.ct, pt.err
}

// Traces generates (in parallel, once each) and returns all per-program
// traces.
func (r *Runner) Traces() ([]*trace.Trace, error) {
	var wg sync.WaitGroup
	for i := range r.Cfg.Programs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.genOne(i)
		}(i)
	}
	wg.Wait()
	out := make([]*trace.Trace, len(r.progs))
	for i := range r.progs {
		if r.progs[i].err != nil {
			return nil, r.progs[i].err
		}
		out[i] = r.progs[i].t
	}
	return out, nil
}

// Chunked returns all per-program traces in chunked form.
func (r *Runner) Chunked() ([]*trace.Chunked, error) {
	if _, err := r.Traces(); err != nil {
		return nil, err
	}
	out := make([]*trace.Chunked, len(r.progs))
	for i := range r.progs {
		out[i] = r.progs[i].ct
	}
	return out, nil
}

// Row is the single result type of the pipeline: the outcome of one
// (program, architecture, cache) cell, carrying the complete declarative
// spec it was simulated under and the raw counters. It is what the store
// persists and what every renderer consumes; derived metrics (BEP, CPI,
// rates) are computed at render time from M and the penalties.
type Row struct {
	Program string           `json:"program"`
	Arch    string           `json:"arch"`
	Spec    arch.Spec        `json:"spec"`
	M       metrics.Counters `json:"counters"`
}

// Cache returns the row's cache geometry (from its spec).
func (r Row) Cache() cache.Geometry {
	return cache.MustGeometry(r.Spec.Cache.SizeBytes, r.Spec.Cache.LineBytes, r.Spec.Cache.Assoc)
}

// SweepStats reports the progress and throughput of a run: how many cells
// completed (simulated or loaded), how many trace records were replayed
// through the broadcaster (each program's trace is read once, shared by all
// of its pending cells), how many cells the store served, how many program
// traces were actually replayed, and the wall-clock time so far.
type SweepStats struct {
	Cells      int
	TotalCells int
	Records    int64
	Loaded     int
	Replays    int
	Elapsed    time.Duration
}

// RecordsPerSec returns the replay throughput in records per second.
func (s SweepStats) RecordsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Records) / s.Elapsed.Seconds()
}

// LastSweepStats returns the stats of the most recent run (final state if
// it finished, a snapshot if one is running).
func (r *Runner) LastSweepStats() SweepStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

// Sweep runs every (program × factory × cache) combination and returns the
// rows in deterministic order: program-major, then factory, then cache.
// It is the ad-hoc form of the grid pipeline — a one-off Grid run through
// an Executor without a store — and shares all of its scheduling
// (DESIGN.md §7, §9): each program's trace is replayed once through
// fetch.Broadcast for all of the program's cells. Engines are
// deterministic, so results are bit-identical to the per-cell replay
// (asserted by TestSweepMatchesPerCellOracle).
func (r *Runner) Sweep(factories []Factory, caches []cache.Geometry) ([]Row, error) {
	arms := make([]Arm, len(factories))
	for i, f := range factories {
		arms[i] = Arm{Name: f.Name, Spec: f.Spec, Caches: caches}
	}
	g := Grid{Name: "sweep", Arms: arms}
	x := &Executor{R: r}
	rs, err := x.RunGrids(false, g)
	if err != nil {
		return nil, err
	}
	return rs.Rows(g), nil
}

// sweepPerCell is the legacy scheduler: every (program × factory × cache)
// cell replays the full materialized trace independently through fetch.Run.
// It is kept, unexported, as the differential-test oracle for the grid
// executor and as the baseline the root-level BenchmarkSweepPerCell
// measures against.
func (r *Runner) sweepPerCell(factories []Factory, caches []cache.Geometry) ([]Row, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	results := make([]Row, len(traces)*len(factories)*len(caches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	idx := 0
	for _, t := range traces {
		for _, f := range factories {
			for _, g := range caches {
				wg.Add(1)
				sem <- struct{}{}
				go func(slot int, t *trace.Trace, f Factory, g cache.Geometry) {
					defer wg.Done()
					defer func() { <-sem }()
					e := f.New(g)
					m := fetch.Run(e, t)
					results[slot] = Row{Program: t.Name, Arch: f.Name,
						Spec: f.Spec.WithGeometry(g), M: *m}
				}(idx, t, f, g)
				idx++
			}
		}
	}
	wg.Wait()
	return results, nil
}

func maxParallel() int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 2
	}
	return n
}

// Average aggregates rows over programs: for each (arch, cache) pair the
// arithmetic means of the per-program BEP components and CPI inputs. Order
// follows first appearance.
type Average struct {
	Arch  string
	Cache cache.Geometry
	// Mean penalty components and rates over programs.
	MfBEP, MpBEP, CPI, MissRate float64
}

// BEP returns the average's total branch execution penalty.
func (a Average) BEP() float64 { return a.MfBEP + a.MpBEP }

// Averages computes per-(arch, cache) means over programs. Accumulation
// follows row order, so program-major rows reproduce the program-order
// float summation of the pre-grid drivers exactly.
func Averages(rows []Row, p metrics.Penalties) []Average {
	type key struct {
		arch  string
		cache arch.CacheSpec
	}
	order := []key{}
	sums := map[key]*Average{}
	counts := map[key]int{}
	for _, res := range rows {
		k := key{res.Arch, res.Spec.Cache}
		a, ok := sums[k]
		if !ok {
			a = &Average{Arch: res.Arch, Cache: res.Cache()}
			sums[k] = a
			order = append(order, k)
		}
		a.MfBEP += res.M.MisfetchBEP(p)
		a.MpBEP += res.M.MispredictBEP(p)
		a.CPI += res.M.CPI(p)
		a.MissRate += res.M.ICacheMissRate()
		counts[k]++
	}
	out := make([]Average, 0, len(order))
	for _, k := range order {
		a := sums[k]
		c := float64(counts[k])
		out = append(out, Average{
			Arch: a.Arch, Cache: a.Cache,
			MfBEP: a.MfBEP / c, MpBEP: a.MpBEP / c,
			CPI: a.CPI / c, MissRate: a.MissRate / c,
		})
	}
	return out
}
