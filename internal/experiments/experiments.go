// Package experiments reproduces every table and figure of the paper's
// evaluation: Table 1 (traced-program attributes), Figure 3 (RBE area
// costs), Figure 4 (NLS-cache vs NLS-table BEP), Figure 5 (BTB vs NLS-table
// BEP averages), Figure 6 (BTB access times), Figure 7 (per-program BEP
// comparison), and Figure 8 (CPI). See DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Paper-fixed parameters (§5.1): 32-byte lines, a 4096-entry gshare PHT and
// a 32-entry return stack for every architecture, 2 NLS predictors per line
// for the NLS-cache, and the three NLS-table sizes.
const (
	LineBytes  = 32
	PHTEntries = 4096
	RASDepth   = ras.DefaultDepth
	NLSPerLine = 2

	// PHTHistoryBits is the gshare global-history width. The paper XORs
	// "the global history register" with the PC into the 4096-entry PHT
	// without fixing the register's width; McFarling's TN-36 tunes
	// history length separately from index width. Our synthetic traces
	// carry more history entropy than real SPEC92 code (independent
	// per-site generators), so a 6-bit history is the calibration that
	// lands conditional accuracy in the paper-era 82–91% band; the full
	// 12-bit history over-disperses PHT state on these traces. The
	// accuracy is identical for the NLS and BTB architectures either
	// way, which is what the paper's methodology requires (§5.1).
	PHTHistoryBits = 6
)

// NLSTableSizes are the NLS-table sizes the paper evaluates.
var NLSTableSizes = []int{512, 1024, 2048}

// CacheSizesKB are the instruction cache sizes the paper simulates.
var CacheSizesKB = []int{8, 16, 32}

// PaperCaches returns the cache geometries of the paper's BEP figures:
// 8K/16K/32K, direct-mapped and 4-way.
func PaperCaches() []cache.Geometry {
	var gs []cache.Geometry
	for _, kb := range CacheSizesKB {
		for _, assoc := range []int{1, 4} {
			gs = append(gs, cache.MustGeometry(kb*1024, LineBytes, assoc))
		}
	}
	return gs
}

// AllCaches returns every simulated cache configuration (§5.1 also includes
// 2-way), for the extended sweeps.
func AllCaches() []cache.Geometry {
	var gs []cache.Geometry
	for _, kb := range CacheSizesKB {
		for _, assoc := range []int{1, 2, 4} {
			gs = append(gs, cache.MustGeometry(kb*1024, LineBytes, assoc))
		}
	}
	return gs
}

// BTBConfigs returns the paper's BTB organizations for the BEP figures
// (128 and 256 entries, direct-mapped and 4-way).
func BTBConfigs() []btb.Config {
	return []btb.Config{
		{Entries: 128, Assoc: 1},
		{Entries: 128, Assoc: 4},
		{Entries: 256, Assoc: 1},
		{Entries: 256, Assoc: 4},
	}
}

// newPHT builds the paper's direction predictor: 4096-entry gshare.
func newPHT() pht.Predictor { return pht.NewGShare(PHTEntries, PHTHistoryBits) }

// Factory builds a fetch engine for a given cache geometry. Factories keep
// the architecture axis of the sweeps orthogonal to the cache axis.
type Factory struct {
	Name string
	New  func(g cache.Geometry) fetch.Engine
}

// NLSTableFactory returns a factory for the NLS-table architecture.
func NLSTableFactory(entries int) Factory {
	return Factory{
		Name: fmt.Sprintf("%d NLS-table", entries),
		New: func(g cache.Geometry) fetch.Engine {
			return fetch.NewNLSTableEngine(g, entries, newPHT(), RASDepth)
		},
	}
}

// NLSCacheFactory returns a factory for the NLS-cache architecture.
func NLSCacheFactory(perLine int) Factory {
	return Factory{
		Name: "NLS-cache",
		New: func(g cache.Geometry) fetch.Engine {
			return fetch.NewNLSCacheEngine(g, perLine, newPHT(), RASDepth)
		},
	}
}

// BTBFactory returns a factory for the decoupled BTB architecture.
func BTBFactory(cfg btb.Config) Factory {
	return Factory{
		Name: cfg.String(),
		New: func(g cache.Geometry) fetch.Engine {
			return fetch.NewBTBEngine(g, cfg, newPHT(), RASDepth)
		},
	}
}

// JohnsonFactory returns a factory for the Johnson successor-index baseline
// (§6.2 related work).
func JohnsonFactory() Factory {
	return Factory{
		Name: "Johnson 1-bit",
		New:  func(g cache.Geometry) fetch.Engine { return fetch.NewJohnsonEngine(g) },
	}
}

// Config drives a sweep: which programs, how many instructions each, and
// the penalty assumptions.
type Config struct {
	Insns     int
	Programs  []workload.Spec
	Penalties metrics.Penalties
}

// DefaultConfig returns the paper's setup over all six analogues.
func DefaultConfig(insns int) Config {
	return Config{
		Insns:     insns,
		Programs:  workload.All(),
		Penalties: metrics.Default(),
	}
}

// Runner generates and caches the per-program traces and runs engine
// sweeps over them in parallel.
type Runner struct {
	Cfg Config

	once   sync.Once
	traces []*trace.Trace
	genErr error
}

// NewRunner builds a runner.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

// Traces generates (once) and returns the per-program traces.
func (r *Runner) Traces() ([]*trace.Trace, error) {
	r.once.Do(func() {
		r.traces = make([]*trace.Trace, len(r.Cfg.Programs))
		var wg sync.WaitGroup
		errs := make([]error, len(r.Cfg.Programs))
		for i, s := range r.Cfg.Programs {
			wg.Add(1)
			go func(i int, s workload.Spec) {
				defer wg.Done()
				r.traces[i], errs[i] = s.Trace(r.Cfg.Insns)
			}(i, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				r.genErr = err
				return
			}
		}
	})
	return r.traces, r.genErr
}

// Result is the outcome of one (program, architecture, cache) simulation.
type Result struct {
	Program string
	Arch    string
	Cache   cache.Geometry
	M       metrics.Counters
}

// BEP returns the result's branch execution penalty under the runner's
// penalties.
func (r *Runner) BEP(res Result) float64 { return res.M.BEP(r.Cfg.Penalties) }

// Sweep runs every (program × factory × cache) combination in parallel and
// returns the results in deterministic order: program-major, then factory,
// then cache.
func (r *Runner) Sweep(factories []Factory, caches []cache.Geometry) ([]Result, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	n := len(traces) * len(factories) * len(caches)
	results := make([]Result, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	idx := 0
	for ti, t := range traces {
		for fi, f := range factories {
			for ci, g := range caches {
				wg.Add(1)
				go func(slot int, t *trace.Trace, f Factory, g cache.Geometry) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					e := f.New(g)
					m := fetch.Run(e, t)
					results[slot] = Result{Program: t.Name, Arch: f.Name, Cache: g, M: *m}
				}(idx, t, f, g)
				idx++
				_ = ti
				_ = fi
				_ = ci
			}
		}
	}
	wg.Wait()
	return results, nil
}

// Average aggregates results over programs: for each (arch, cache) pair it
// returns a Result whose metrics are the arithmetic means of the per-program
// BEP components and CPI inputs, with Program set to "average". Order
// follows first appearance.
type Average struct {
	Arch  string
	Cache cache.Geometry
	// Mean penalty components and rates over programs.
	MfBEP, MpBEP, CPI, MissRate float64
}

// Averages computes per-(arch, cache) means over programs.
func (r *Runner) Averages(results []Result) []Average {
	type key struct {
		arch  string
		cache cache.Geometry
	}
	order := []key{}
	sums := map[key]*Average{}
	counts := map[key]int{}
	for _, res := range results {
		k := key{res.Arch, res.Cache}
		a, ok := sums[k]
		if !ok {
			a = &Average{Arch: res.Arch, Cache: res.Cache}
			sums[k] = a
			order = append(order, k)
		}
		p := r.Cfg.Penalties
		a.MfBEP += res.M.MisfetchBEP(p)
		a.MpBEP += res.M.MispredictBEP(p)
		a.CPI += res.M.CPI(p)
		a.MissRate += res.M.ICacheMissRate()
		counts[k]++
	}
	out := make([]Average, 0, len(order))
	for _, k := range order {
		a := sums[k]
		c := float64(counts[k])
		out = append(out, Average{
			Arch: a.Arch, Cache: a.Cache,
			MfBEP: a.MfBEP / c, MpBEP: a.MpBEP / c,
			CPI: a.CPI / c, MissRate: a.MissRate / c,
		})
	}
	return out
}

// BEP returns the average's total branch execution penalty.
func (a Average) BEP() float64 { return a.MfBEP + a.MpBEP }
