// Package experiments reproduces every table and figure of the paper's
// evaluation: Table 1 (traced-program attributes), Figure 3 (RBE area
// costs), Figure 4 (NLS-cache vs NLS-table BEP), Figure 5 (BTB vs NLS-table
// BEP averages), Figure 6 (BTB access times), Figure 7 (per-program BEP
// comparison), and Figure 8 (CPI). See DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Paper-fixed parameters (§5.1): 32-byte lines, a 4096-entry gshare PHT and
// a 32-entry return stack for every architecture, 2 NLS predictors per line
// for the NLS-cache, and the three NLS-table sizes. The values live in
// package arch (the single source the named-spec registry is built from);
// the aliases keep this package's sweep matrix from drifting away from the
// registry. See arch.PHTHistoryBits for the gshare history calibration
// note.
const (
	LineBytes      = arch.LineBytes
	PHTEntries     = arch.PHTEntries
	RASDepth       = ras.DefaultDepth
	NLSPerLine     = arch.NLSPerLine
	PHTHistoryBits = arch.PHTHistoryBits
)

// NLSTableSizes are the NLS-table sizes the paper evaluates.
var NLSTableSizes = []int{512, 1024, 2048}

// CacheSizesKB are the instruction cache sizes the paper simulates.
var CacheSizesKB = []int{8, 16, 32}

// PaperCaches returns the cache geometries of the paper's BEP figures:
// 8K/16K/32K, direct-mapped and 4-way.
func PaperCaches() []cache.Geometry {
	var gs []cache.Geometry
	for _, kb := range CacheSizesKB {
		for _, assoc := range []int{1, 4} {
			gs = append(gs, cache.MustGeometry(kb*1024, LineBytes, assoc))
		}
	}
	return gs
}

// AllCaches returns every simulated cache configuration (§5.1 also includes
// 2-way), for the extended sweeps.
func AllCaches() []cache.Geometry {
	var gs []cache.Geometry
	for _, kb := range CacheSizesKB {
		for _, assoc := range []int{1, 2, 4} {
			gs = append(gs, cache.MustGeometry(kb*1024, LineBytes, assoc))
		}
	}
	return gs
}

// BTBConfigs returns the paper's BTB organizations for the BEP figures
// (128 and 256 entries, direct-mapped and 4-way).
func BTBConfigs() []btb.Config {
	return []btb.Config{
		{Entries: 128, Assoc: 1},
		{Entries: 128, Assoc: 4},
		{Entries: 256, Assoc: 1},
		{Entries: 256, Assoc: 4},
	}
}

// newPHT builds the paper's direction predictor: 4096-entry gshare.
func newPHT() pht.Predictor { return pht.NewGShare(PHTEntries, PHTHistoryBits) }

// Factory builds a fetch engine for a given cache geometry. Factories keep
// the architecture axis of the sweeps orthogonal to the cache axis.
type Factory struct {
	Name string
	New  func(g cache.Geometry) fetch.Engine
}

// SpecFactory adapts a declarative arch.Spec to a sweep Factory: each cell
// rebuilds the spec with that cell's cache geometry. The spec must be valid
// (a registered or helper-built spec always is); a broken spec panics at
// the first cell rather than poisoning a sweep with nil engines.
func SpecFactory(name string, s arch.Spec) Factory {
	return Factory{
		Name: name,
		New: func(g cache.Geometry) fetch.Engine {
			return s.WithGeometry(g).MustBuild()
		},
	}
}

// NLSTableFactory returns a factory for the NLS-table architecture.
func NLSTableFactory(entries int) Factory {
	return SpecFactory(fmt.Sprintf("%d NLS-table", entries), arch.NLSTable(entries))
}

// NLSCacheFactory returns a factory for the NLS-cache architecture.
func NLSCacheFactory(perLine int) Factory {
	return SpecFactory("NLS-cache", arch.NLSCache(perLine))
}

// BTBFactory returns a factory for the decoupled BTB architecture.
func BTBFactory(cfg btb.Config) Factory {
	return SpecFactory(cfg.String(), arch.BTB(cfg.Entries, cfg.Assoc))
}

// JohnsonFactory returns a factory for the Johnson successor-index baseline
// (§6.2 related work).
func JohnsonFactory() Factory {
	return SpecFactory("Johnson 1-bit", arch.Johnson())
}

// Config drives a sweep: which programs, how many instructions each, and
// the penalty assumptions.
type Config struct {
	Insns     int
	Programs  []workload.Spec
	Penalties metrics.Penalties
}

// DefaultConfig returns the paper's setup over all six analogues.
func DefaultConfig(insns int) Config {
	return Config{
		Insns:     insns,
		Programs:  workload.All(),
		Penalties: metrics.Default(),
	}
}

// Runner generates and caches the per-program traces and runs engine
// sweeps over them in parallel.
type Runner struct {
	Cfg Config

	// Progress, when set, is called after each program of a sweep
	// finishes replaying, with a snapshot of the sweep so far. Calls are
	// serialized; the callback must not invoke the Runner.
	Progress func(SweepStats)

	once   sync.Once
	traces []*trace.Trace
	genErr error

	chunkOnce sync.Once
	chunked   []*trace.Chunked

	statsMu sync.Mutex
	stats   SweepStats
}

// NewRunner builds a runner.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

// Traces generates (once) and returns the per-program traces.
func (r *Runner) Traces() ([]*trace.Trace, error) {
	r.once.Do(func() {
		r.traces = make([]*trace.Trace, len(r.Cfg.Programs))
		var wg sync.WaitGroup
		errs := make([]error, len(r.Cfg.Programs))
		for i, s := range r.Cfg.Programs {
			wg.Add(1)
			go func(i int, s workload.Spec) {
				defer wg.Done()
				r.traces[i], errs[i] = s.Trace(r.Cfg.Insns)
			}(i, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				r.genErr = err
				return
			}
		}
	})
	return r.traces, r.genErr
}

// Result is the outcome of one (program, architecture, cache) simulation.
type Result struct {
	Program string
	Arch    string
	Cache   cache.Geometry
	M       metrics.Counters
}

// BEP returns the result's branch execution penalty under the runner's
// penalties.
func (r *Runner) BEP(res Result) float64 { return res.M.BEP(r.Cfg.Penalties) }

// Chunked returns the per-program traces in chunked form, splitting them
// (once) into DefaultChunkRecords-sized blocks that alias the cached flat
// traces.
func (r *Runner) Chunked() ([]*trace.Chunked, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	r.chunkOnce.Do(func() {
		r.chunked = make([]*trace.Chunked, len(traces))
		for i, t := range traces {
			r.chunked[i] = trace.Chunk(t, trace.DefaultChunkRecords)
		}
	})
	return r.chunked, nil
}

// SweepStats reports the progress and throughput of a sweep: how many
// (program × arch × cache) cells have completed, how many trace records
// have been replayed through the broadcaster (each program's trace is read
// once, shared by all of its cells), and the wall-clock time so far.
type SweepStats struct {
	Cells      int
	TotalCells int
	Records    int64
	Elapsed    time.Duration
}

// RecordsPerSec returns the replay throughput in records per second.
func (s SweepStats) RecordsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Records) / s.Elapsed.Seconds()
}

// LastSweepStats returns the stats of the most recent Sweep (final state if
// the sweep finished, a snapshot if one is running).
func (r *Runner) LastSweepStats() SweepStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

// Sweep runs every (program × factory × cache) combination and returns the
// results in deterministic order: program-major, then factory, then cache.
//
// Scheduling (DESIGN.md §7): each program's trace is replayed ONCE through
// fetch.Broadcast, fanning every chunk out to all of the program's engines
// (factories × caches), instead of re-reading the full trace per cell.
// Programs run concurrently under a bounded pool — the semaphore is
// acquired before the goroutine is spawned, so at most progPar program
// goroutines exist at any time — and the leftover parallelism budget goes
// to each broadcast's worker pool. Engines are deterministic, so results
// are bit-identical to the per-cell replay (asserted by
// TestSweepMatchesPerCellOracle).
func (r *Runner) Sweep(factories []Factory, caches []cache.Geometry) ([]Result, error) {
	chunked, err := r.Chunked()
	if err != nil {
		return nil, err
	}
	cellsPerProg := len(factories) * len(caches)
	results := make([]Result, len(chunked)*cellsPerProg)
	start := time.Now()
	r.statsMu.Lock()
	r.stats = SweepStats{TotalCells: len(results)}
	r.statsMu.Unlock()

	budget := maxParallel()
	progPar := len(chunked)
	if progPar > budget {
		progPar = budget
	}
	if progPar < 1 {
		progPar = 1
	}
	perProg := budget / progPar
	if perProg < 1 {
		perProg = 1
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, progPar)
	for pi, ct := range chunked {
		wg.Add(1)
		sem <- struct{}{} // bound concurrency before spawning
		go func(pi int, ct *trace.Chunked) {
			defer wg.Done()
			defer func() { <-sem }()
			engines := make([]fetch.Engine, 0, cellsPerProg)
			for _, f := range factories {
				for _, g := range caches {
					engines = append(engines, f.New(g))
				}
			}
			n := fetch.BroadcastWorkers(sweepSource(ct, caches), perProg, engines...)
			slot := pi * cellsPerProg
			for _, f := range factories {
				for _, g := range caches {
					results[slot] = Result{Program: ct.Name, Arch: f.Name, Cache: g,
						M: *engines[slot-pi*cellsPerProg].Counters()}
					slot++
				}
			}
			r.statsMu.Lock()
			r.stats.Cells += cellsPerProg
			r.stats.Records += n
			r.stats.Elapsed = time.Since(start)
			if r.Progress != nil {
				r.Progress(r.stats) // statsMu held: calls are serialized
			}
			r.statsMu.Unlock()
		}(pi, ct)
	}
	wg.Wait()
	r.statsMu.Lock()
	r.stats.Elapsed = time.Since(start)
	r.statsMu.Unlock()
	return results, nil
}

// sweepSource picks the chunk source for one program's broadcast: when
// every cache of the sweep shares one line size (always true for the
// paper's 32-byte-line matrix), the blocks carry the trace's memoized
// same-line run annotations (trace.Chunked.RunLens), so the run-boundary
// scan happens once per chunk instead of once per engine. Mixed line sizes
// fall back to plain blocks and per-engine scanning.
func sweepSource(ct *trace.Chunked, caches []cache.Geometry) trace.ChunkSource {
	if len(caches) == 0 {
		return ct.Chunks()
	}
	lb := caches[0].LineBytes()
	for _, g := range caches[1:] {
		if g.LineBytes() != lb {
			return ct.Chunks()
		}
	}
	return ct.ChunksRuns(lb)
}

// sweepPerCell is the legacy scheduler: every (program × factory × cache)
// cell replays the full materialized trace independently through fetch.Run.
// It is kept, unexported, as the differential-test oracle for Sweep and as
// the baseline the root-level BenchmarkSweepPerCell measures against.
func (r *Runner) sweepPerCell(factories []Factory, caches []cache.Geometry) ([]Result, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(traces)*len(factories)*len(caches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	idx := 0
	for _, t := range traces {
		for _, f := range factories {
			for _, g := range caches {
				wg.Add(1)
				sem <- struct{}{}
				go func(slot int, t *trace.Trace, f Factory, g cache.Geometry) {
					defer wg.Done()
					defer func() { <-sem }()
					e := f.New(g)
					m := fetch.Run(e, t)
					results[slot] = Result{Program: t.Name, Arch: f.Name, Cache: g, M: *m}
				}(idx, t, f, g)
				idx++
			}
		}
	}
	wg.Wait()
	return results, nil
}

// Average aggregates results over programs: for each (arch, cache) pair it
// returns a Result whose metrics are the arithmetic means of the per-program
// BEP components and CPI inputs, with Program set to "average". Order
// follows first appearance.
type Average struct {
	Arch  string
	Cache cache.Geometry
	// Mean penalty components and rates over programs.
	MfBEP, MpBEP, CPI, MissRate float64
}

// Averages computes per-(arch, cache) means over programs.
func (r *Runner) Averages(results []Result) []Average {
	type key struct {
		arch  string
		cache cache.Geometry
	}
	order := []key{}
	sums := map[key]*Average{}
	counts := map[key]int{}
	for _, res := range results {
		k := key{res.Arch, res.Cache}
		a, ok := sums[k]
		if !ok {
			a = &Average{Arch: res.Arch, Cache: res.Cache}
			sums[k] = a
			order = append(order, k)
		}
		p := r.Cfg.Penalties
		a.MfBEP += res.M.MisfetchBEP(p)
		a.MpBEP += res.M.MispredictBEP(p)
		a.CPI += res.M.CPI(p)
		a.MissRate += res.M.ICacheMissRate()
		counts[k]++
	}
	out := make([]Average, 0, len(order))
	for _, k := range order {
		a := sums[k]
		c := float64(counts[k])
		out = append(out, Average{
			Arch: a.Arch, Cache: a.Cache,
			MfBEP: a.MfBEP / c, MpBEP: a.MpBEP / c,
			CPI: a.CPI / c, MissRate: a.MissRate / c,
		})
	}
	return out
}

// BEP returns the average's total branch execution penalty.
func (a Average) BEP() float64 { return a.MfBEP + a.MpBEP }
