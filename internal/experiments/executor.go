package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/multiissue"
	"repro/internal/trace"
)

// Executor turns grids into results. It is the only code in the pipeline
// that simulates: it gathers every requested cell across all grids of a
// run, serves unchanged cells from the Store, partitions the rest by
// program, and replays each program's trace exactly once through
// fetch.Broadcast for all of that program's pending cells — so a full
// `nlstables` regeneration reads each trace one time no matter how many
// figures request overlapping cells.
type Executor struct {
	// R supplies the configuration and the lazily generated traces.
	R *Runner
	// Store, when non-nil, serves unchanged cells and persists new ones.
	Store *Store
	// Force re-simulates (and overwrites) stored cells.
	Force bool
	// CorpusDir, when non-empty, enables the disk-backed trace corpus: a
	// run needing any trace attaches the content-keyed corpus under this
	// directory (CorpusPath), building it once if absent, so later runs
	// decode traces instead of regenerating them (corpus.go).
	CorpusDir string
	// Observer, when non-nil, receives one StageSpan per executor stage at
	// the end of each run — the seam the serve layer hangs its stage
	// histograms on. It is called from the goroutine that ran RunGrids,
	// after the replay pool has drained.
	Observer func(StageSpan)
}

// StageSpan is the wall time one executor stage consumed across a run,
// summed over the per-program goroutines where the stage is parallel. The
// spans feed both the run manifest (Stages) and, through
// Executor.Observer, the serve layer's metrics registry — the same
// measurement in both places, so they cannot disagree.
type StageSpan struct {
	// Stage is one of "gather" (cell enumeration and store probing),
	// "gen-corpus" (trace corpus build or open, 0 when no CorpusDir is
	// set or no trace was needed), "trace-gen" (workload trace
	// generation/chunking — decode, on a corpus hit), "replay" (the
	// broadcast replay itself), "store-save" (persisting rows).
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// NewExecutor builds an executor without a store.
func NewExecutor(cfg Config) *Executor { return &Executor{R: NewRunner(cfg)} }

// ProgramInfo is the per-program data derived from the replay pass itself
// rather than from any engine: the Table-1 trace statistics and the §8
// fetch-block counts for FetchWidths at LineBytes-sized lines. It is
// collected by teeing the broadcast's single trace read (trace.TeeChunks),
// so statistics cost no extra replay, and is stored content-addressed like
// cells.
type ProgramInfo struct {
	Program string `json:"program"`
	Insns   int    `json:"insns"`
	// Stats is the program's Table-1 row.
	Stats *trace.Stats `json:"stats"`
	// FetchBlocks maps fetch width to the W-wide fetch-cycle count of the
	// trace (multiissue.FetchBlocks at LineBytes lines).
	FetchBlocks map[int]uint64 `json:"fetch_blocks"`
}

// ResultSet holds a run's outcome: every unique cell's Row (by store key)
// and every program's ProgramInfo, plus accounting for the tests and the
// CLIs.
type ResultSet struct {
	cfg   Config
	rows  map[string]Row
	infos map[string]*ProgramInfo

	// Loaded counts cells served from the store, Simulated cells computed
	// this run, Replays program traces actually replayed (0 on a fully
	// warm run), and Deduped cell requests that were satisfied by another
	// grid's identical cell (same content key) within the same run.
	Loaded, Simulated, Replays, Deduped int

	// Timings holds the engine wall time of every simulated cell (empty
	// for store-served cells), in completion order; it feeds the run
	// manifest.
	Timings []CellTiming

	// Stages holds the run's per-stage wall time (see StageSpan), in fixed
	// stage order.
	Stages []StageSpan
}

// CellTiming is the wall time one cell's engine spent replaying its
// program, measured inside the broadcast worker that owned the engine.
type CellTiming struct {
	Program string  `json:"program"`
	Arch    string  `json:"arch"`
	Cache   string  `json:"cache"`
	Seconds float64 `json:"seconds"`
}

// Rows resolves a grid against the result set: one Row per grid cell, in
// cell order (program-major, arm-major, cache-minor), each labeled with
// the grid's own program and arm names. Two grids sharing a cell each see
// it under their own labels.
func (rs *ResultSet) Rows(g Grid) []Row {
	cells := g.cells(rs.cfg.Programs)
	rows := make([]Row, len(cells))
	for i, c := range cells {
		row := rs.rows[c.Key(rs.cfg)]
		row.Program, row.Arch, row.Spec = c.Prog.Name, c.Arm, c.Spec
		rows[i] = row
	}
	return rows
}

// Info returns a program's replay-derived info, or nil when the run did
// not collect it.
func (rs *ResultSet) Info(program string) *ProgramInfo { return rs.infos[program] }

// Context resolves a figure against the result set, producing everything
// its renderer needs.
func (rs *ResultSet) Context(f Figure) RenderContext {
	ctx := RenderContext{Cfg: rs.cfg, Grid: f.Grid, Rows: rs.Rows(f.Grid)}
	if f.NeedsInfo {
		ctx.Infos = make([]*ProgramInfo, len(rs.cfg.Programs))
		for i, p := range rs.cfg.Programs {
			ctx.Infos[i] = rs.infos[p.Name]
		}
	}
	return ctx
}

// Run executes the grids of the given figures in one pass (shared cells
// simulated once) and returns the result set; render each figure with
// Figure.Render(rs.Context(f)).
func (x *Executor) Run(figs ...Figure) (*ResultSet, error) {
	grids := make([]Grid, len(figs))
	needInfo := false
	for i, f := range figs {
		grids[i] = f.Grid
		needInfo = needInfo || f.NeedsInfo
	}
	return x.RunGrids(needInfo, grids...)
}

// progWork is one program's share of a run: the cells not served by the
// store, and whether the replay must also collect ProgramInfo.
type progWork struct {
	cells    []Cell
	keys     []string
	needInfo bool
}

// RunGrids executes grids directly (Run without Figure metadata); needInfo
// requests per-program replay statistics.
func (x *Executor) RunGrids(needInfo bool, grids ...Grid) (*ResultSet, error) {
	r := x.R
	cfg := r.Cfg
	rs := &ResultSet{
		cfg:   cfg,
		rows:  make(map[string]Row),
		infos: make(map[string]*ProgramInfo),
	}

	progIdx := make(map[string]int, len(cfg.Programs))
	for i, p := range cfg.Programs {
		progIdx[p.Name] = i
	}

	// Per-stage wall-time accumulators. gather is single-threaded; the
	// other three sum across the per-program goroutines under mu.
	gatherStart := time.Now()
	var traceGenDur, replayDur, saveDur time.Duration

	// Gather the unique cells of the whole run, probing the store first.
	work := make([]progWork, len(cfg.Programs))
	seen := make(map[string]bool)
	total := 0
	for _, g := range grids {
		for _, c := range g.cells(cfg.Programs) {
			k := c.Key(cfg)
			if seen[k] {
				rs.Deduped++
				continue
			}
			seen[k] = true
			total++
			if x.Store != nil && !x.Force {
				var row Row
				ok, err := x.Store.Load(k, &row)
				if err != nil {
					return nil, err
				}
				if ok && staleCell(&row.M) {
					// A cell written before icache_cold_misses existed
					// decodes the field as 0, which the invariant below
					// rules out for any run that missed at all. Age it
					// like a corrupt cell: recompute and overwrite.
					ok = false
				}
				if ok {
					rs.rows[k] = row
					rs.Loaded++
					continue
				}
			}
			i := progIdx[c.Prog.Name]
			work[i].cells = append(work[i].cells, c)
			work[i].keys = append(work[i].keys, k)
		}
	}
	if needInfo {
		for i, p := range cfg.Programs {
			if x.Store != nil && !x.Force {
				var info ProgramInfo
				ok, err := x.Store.Load(infoKey(p, cfg.Insns), &info)
				if err != nil {
					return nil, err
				}
				if ok {
					rs.infos[p.Name] = &info
					continue
				}
			}
			work[i].needInfo = true
		}
	}

	gatherDur := time.Since(gatherStart)

	start := time.Now()
	r.statsMu.Lock()
	r.stats = SweepStats{TotalCells: total, Cells: rs.Loaded, Loaded: rs.Loaded}
	r.statsMu.Unlock()

	var active []int
	for i := range work {
		if len(work[i].cells) > 0 || work[i].needInfo {
			active = append(active, i)
		}
	}

	// Traces are about to be needed: attach (building if absent) the
	// content-keyed corpus, so genOne decodes instead of generating. A
	// fully store-served run skips this — it needs no trace, so it should
	// not build a corpus either.
	var corpusDur time.Duration
	if x.CorpusDir != "" && len(active) > 0 {
		d, err := r.UseCorpus(CorpusPath(x.CorpusDir, cfg))
		if err != nil {
			return nil, err
		}
		corpusDur = d
	}

	// Same bounded-pool shape as the PR1 scheduler: at most progPar
	// program goroutines, the leftover parallelism budget going to each
	// broadcast's worker pool.
	budget := maxParallel()
	progPar := len(active)
	if progPar > budget {
		progPar = budget
	}
	if progPar < 1 {
		progPar = 1
	}
	perProg := budget / progPar
	if perProg < 1 {
		perProg = 1
	}

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, progPar)
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, i := range active {
		wg.Add(1)
		sem <- struct{}{} // bound concurrency before spawning
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			w := work[i]
			tgStart := time.Now()
			ct, err := r.ChunkedOne(i)
			mu.Lock()
			traceGenDur += time.Since(tgStart)
			mu.Unlock()
			if err != nil {
				fail(err)
				return
			}
			engines := make([]fetch.Engine, len(w.cells))
			durs := make([]*time.Duration, len(w.cells))
			for j, c := range w.cells {
				e, err := c.Spec.Build()
				if err != nil {
					fail(fmt.Errorf("cell %s/%s: %w", c.Prog.Name, c.Arm, err))
					return
				}
				engines[j], durs[j] = timeEngine(e)
			}
			src := cellSource(ct, w.cells)

			// Tee the single replay read into the statistics collectors.
			var sc *trace.StatsCollector
			var bcs []*multiissue.BlockCounter
			if w.needInfo {
				sc = trace.NewStatsCollector(ct.Name, ct.StaticCondSites)
				for _, width := range FetchWidths() {
					bc, err := multiissue.NewBlockCounter(multiissue.Config{
						Width: width, LineBytes: LineBytes,
					})
					if err != nil {
						fail(err)
						return
					}
					bcs = append(bcs, bc)
				}
				src = trace.TeeChunks(src, func(recs []trace.Record) {
					sc.Add(recs)
					for _, bc := range bcs {
						bc.Add(recs)
					}
				})
			}

			replayStart := time.Now()
			var n int64
			if len(engines) > 0 {
				n = fetch.BroadcastWorkers(src, perProg, engines...)
			} else {
				// Info-only replay: every cell was served by the store but
				// the statistics were not; drain the trace through the tee.
				for blk := src.NextChunk(); len(blk) > 0; blk = src.NextChunk() {
					n += int64(len(blk))
				}
			}
			mu.Lock()
			replayDur += time.Since(replayStart)
			mu.Unlock()

			rows := make([]Row, len(w.cells))
			timings := make([]CellTiming, len(w.cells))
			for j, c := range w.cells {
				rows[j] = Row{Program: c.Prog.Name, Arch: c.Arm, Spec: c.Spec,
					M: *engines[j].Counters()}
				timings[j] = CellTiming{Program: c.Prog.Name, Arch: c.Arm,
					Cache: rows[j].Cache().String(), Seconds: durs[j].Seconds()}
			}
			var info *ProgramInfo
			if w.needInfo {
				blocks := make(map[int]uint64, len(bcs))
				for _, bc := range bcs {
					blocks[bc.Width()] = bc.Blocks()
				}
				info = &ProgramInfo{Program: ct.Name, Insns: cfg.Insns,
					Stats: sc.Stats(), FetchBlocks: blocks}
			}

			mu.Lock()
			for j := range rows {
				rs.rows[w.keys[j]] = rows[j]
			}
			rs.Timings = append(rs.Timings, timings...)
			rs.Simulated += len(rows)
			if info != nil {
				rs.infos[ct.Name] = info
			}
			rs.Replays++
			mu.Unlock()

			if x.Store != nil {
				saveStart := time.Now()
				for j := range rows {
					if err := x.Store.Save(w.keys[j], rows[j]); err != nil {
						fail(err)
						return
					}
				}
				if info != nil {
					if err := x.Store.Save(infoKey(cfg.Programs[i], cfg.Insns), info); err != nil {
						fail(err)
						return
					}
				}
				mu.Lock()
				saveDur += time.Since(saveStart)
				mu.Unlock()
			}

			r.statsMu.Lock()
			r.stats.Cells += len(w.cells)
			r.stats.Records += n
			r.stats.Replays++
			r.stats.Elapsed = time.Since(start)
			if r.Progress != nil {
				r.Progress(r.stats) // statsMu held: calls are serialized
			}
			r.statsMu.Unlock()
		}(i)
	}
	wg.Wait()
	r.statsMu.Lock()
	r.stats.Elapsed = time.Since(start)
	r.statsMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	rs.Stages = []StageSpan{
		{Stage: "gather", Seconds: gatherDur.Seconds()},
		{Stage: "gen-corpus", Seconds: corpusDur.Seconds()},
		{Stage: "trace-gen", Seconds: traceGenDur.Seconds()},
		{Stage: "replay", Seconds: replayDur.Seconds()},
		{Stage: "store-save", Seconds: saveDur.Seconds()},
	}
	if x.Observer != nil {
		for _, sp := range rs.Stages {
			x.Observer(sp)
		}
	}
	return rs, nil
}

// timedEngine wraps a cell's engine to meter the wall time spent stepping
// it. An engine is owned by exactly one worker for a whole replay
// (fetch.BroadcastWorkers), so dur needs no locking; time.Now is taken once
// per block (tens of thousands of records), so the meter is invisible next
// to the replay itself.
type timedEngine struct {
	fetch.Engine
	dur time.Duration
}

func (t *timedEngine) StepBlock(recs []trace.Record) {
	start := time.Now()
	t.Engine.StepBlock(recs)
	t.dur += time.Since(start)
}

// runFastPath mirrors the broadcaster's optional shared-run-annotation
// interface; the timing wrapper must forward it, or wrapping would silently
// demote every engine to the per-engine boundary-scan path.
type runFastPath interface {
	StepBlockRuns(recs []trace.Record, runs []uint8)
	ICache() *cache.Cache
}

// oracleFastPath mirrors the broadcaster's shared-fetch-oracle interface
// (DESIGN.md §11); like runFastPath, the timing wrapper must forward it or
// wrapped engines would silently lose oracle grouping and re-simulate
// their i-caches privately.
type oracleFastPath interface {
	StepBlockAnnotated(recs []trace.Record, ann *cache.AccessAnnotations, runs []uint8)
	StepBlockEvents(recs []trace.Record, ann *cache.AccessAnnotations)
	OracleGroup() (cache.Geometry, bool)
}

// timedRunEngine is timedEngine for engines that consume shared run
// annotations (all the built-in engines).
type timedRunEngine struct {
	timedEngine
	fast runFastPath
	orc  oracleFastPath // nil when the engine has no annotated path
}

func (t *timedRunEngine) StepBlockRuns(recs []trace.Record, runs []uint8) {
	start := time.Now()
	t.fast.StepBlockRuns(recs, runs)
	t.dur += time.Since(start)
}

func (t *timedRunEngine) ICache() *cache.Cache { return t.fast.ICache() }

func (t *timedRunEngine) StepBlockAnnotated(recs []trace.Record, ann *cache.AccessAnnotations, runs []uint8) {
	start := time.Now()
	t.orc.StepBlockAnnotated(recs, ann, runs)
	t.dur += time.Since(start)
}

func (t *timedRunEngine) StepBlockEvents(recs []trace.Record, ann *cache.AccessAnnotations) {
	start := time.Now()
	t.orc.StepBlockEvents(recs, ann)
	t.dur += time.Since(start)
}

// EchoFrontend forwards the broadcaster's echo-dedup hook (like
// runFastPath/oracleFastPath, the wrapper must forward it or wrapped
// engines would silently lose cross-geometry echoing); nil means the
// wrapped engine has no Frontend to echo.
func (t *timedRunEngine) EchoFrontend() *fetch.Frontend {
	if es, ok := t.Engine.(interface{ EchoFrontend() *fetch.Frontend }); ok {
		return es.EchoFrontend()
	}
	return nil
}

// OracleGroup forwards the wrapped engine's grouping key; an engine with
// no annotated path is simply never eligible. The meter only times the
// member-side annotated replay — the shared oracle's own simulation is
// broadcast overhead, attributed to no single cell.
func (t *timedRunEngine) OracleGroup() (cache.Geometry, bool) {
	if t.orc == nil {
		return cache.Geometry{}, false
	}
	return t.orc.OracleGroup()
}

// timeEngine wraps e with the timing meter matching its capabilities and
// returns the wrapped engine plus a pointer to its accumulated duration
// (valid to read once the replay's broadcast has returned).
func timeEngine(e fetch.Engine) (fetch.Engine, *time.Duration) {
	if f, ok := e.(runFastPath); ok {
		te := &timedRunEngine{timedEngine: timedEngine{Engine: e}, fast: f}
		te.orc, _ = e.(oracleFastPath)
		return te, &te.dur
	}
	te := &timedEngine{Engine: e}
	return te, &te.dur
}

// cellSource picks the chunk source for one program's broadcast: when
// every pending cell shares one line size (always true for the paper's
// 32-byte-line matrix), the blocks carry the trace's memoized same-line
// run annotations (trace.Chunked.RunLens), so the run-boundary scan
// happens once per chunk instead of once per engine. Mixed line sizes fall
// back to plain blocks and per-engine scanning; an info-only replay uses
// plain blocks (no engine consumes annotations).
func cellSource(ct *trace.Chunked, cells []Cell) trace.ChunkSource {
	if len(cells) == 0 {
		return ct.Chunks()
	}
	lb := cells[0].Spec.Cache.LineBytes
	for _, c := range cells[1:] {
		if c.Spec.Cache.LineBytes != lb {
			return ct.Chunks()
		}
	}
	return ct.ChunksRuns(lb)
}

// RenderContext is everything a figure renderer may consume: the resolved
// rows of the figure's grid (program-major, arm-major, cache-minor), the
// run configuration, and — for NeedsInfo figures — the per-program replay
// statistics, parallel to Cfg.Programs.
type RenderContext struct {
	Cfg   Config
	Grid  Grid
	Rows  []Row
	Infos []*ProgramInfo
}

// ProgramRows returns the rows of program p (all arms, arm-major).
func (c RenderContext) ProgramRows(p int) []Row {
	cpp := c.Grid.cellsPerProgram()
	return c.Rows[p*cpp : (p+1)*cpp]
}

// ArmRows returns the rows of one arm across all programs, program-major
// (cache-minor within a program).
func (c RenderContext) ArmRows(arm int) []Row {
	cpp := c.Grid.cellsPerProgram()
	off, width := 0, 0
	for i, a := range c.Grid.Arms {
		w := len(a.Caches)
		if w == 0 {
			w = 1
		}
		if i < arm {
			off += w
		}
		if i == arm {
			width = w
		}
	}
	out := make([]Row, 0, len(c.Cfg.Programs)*width)
	for p := 0; p < len(c.Cfg.Programs); p++ {
		out = append(out, c.Rows[p*cpp+off:p*cpp+off+width]...)
	}
	return out
}
