package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/multiissue"
	"repro/internal/obs"
	"repro/internal/trace"
)

// A Figure is one deliverable of the evaluation: a name (the CLI's -only
// key), the Grid of cells it needs, whether it also needs the per-program
// replay statistics (Table 1, fetch-block counts), and a pure renderer
// from the resolved RenderContext to the display text plus the rows behind
// the -json report. The registry below is the entire experiment matrix;
// one Executor.Run over any subset simulates each distinct cell once and
// each program's trace at most once, however many figures share them.
type Figure struct {
	Name      string
	Grid      Grid
	NeedsInfo bool
	Render    func(RenderContext) (text string, data any)
	// Probed, when set, replaces Render: the figure drives its own
	// probe-attached replay against the executor instead of resolving
	// stored grid cells (attribution is an event-stream product the
	// counter store cannot serve). Grid stays empty for such figures.
	Probed func(*Executor) (text string, data any, err error)
}

// Figures returns the full registry in presentation order (the order the
// `-exp all` run prints).
func Figures() []Figure {
	return []Figure{
		table1Figure(),
		fig3Figure(),
		fig4Figure(),
		fig5Figure(),
		fig6Figure(),
		fig7Figure(),
		fig8Figure(),
		perLineFigure(),
		coupledFigure(),
		phtFigure(),
		widthFigure(),
		pollutionFigure(),
		hybridFigure(),
		prefetchFigure(),
		attributionFigure(),
		h2pFigure(),
	}
}

// FigureByName looks a figure up by its CLI name.
func FigureByName(name string) (Figure, bool) {
	for _, f := range Figures() {
		if f.Name == name {
			return f, true
		}
	}
	return Figure{}, false
}

// RenderFigure renders one figure of a finished run: Probed figures replay
// through the executor, everything else resolves against the result set.
// This is the uniform dispatch the CLIs use after Executor.Run.
func (x *Executor) RenderFigure(f Figure, rs *ResultSet) (string, any, error) {
	if f.Probed != nil {
		return f.Probed(x)
	}
	text, data := f.Render(rs.Context(f))
	return text, data, nil
}

// cache16KDirect is the figure suite's reference cache configuration.
func cache16KDirect() []cache.Geometry {
	return []cache.Geometry{cache.MustGeometry(16*1024, LineBytes, 1)}
}

// table1Figure reproduces Table 1 — the measured attributes of each
// generated trace — from the replay pass itself (no grid cells).
func table1Figure() Figure {
	return Figure{
		Name:      "table1",
		Grid:      Grid{Name: "table1"},
		NeedsInfo: true,
		Render: func(ctx RenderContext) (string, any) {
			rows := make([]*trace.Stats, len(ctx.Infos))
			for i, info := range ctx.Infos {
				rows[i] = info.Stats
			}
			out := trace.FormatTable(rows)
			return "Table 1: measured attributes of the traced programs\n" + out, out
		},
	}
}

// fig3Figure reproduces Figure 3 (pure area model, no simulation).
func fig3Figure() Figure {
	return Figure{
		Name: "fig3",
		Grid: Grid{Name: "fig3"},
		Render: func(RenderContext) (string, any) {
			rows := Fig3()
			return RenderFig3(rows), rows
		},
	}
}

// fig4Figure reproduces Figure 4: average BEP of the NLS-cache and the
// three NLS-table sizes over the paper's cache configurations.
func fig4Figure() Figure {
	arms := []Arm{{Name: "NLS-cache", Spec: arch.NLSCache(NLSPerLine), Caches: PaperCaches()}}
	for _, n := range NLSTableSizes {
		arms = append(arms, Arm{
			Name: fmt.Sprintf("%d NLS-table", n), Spec: arch.NLSTable(n), Caches: PaperCaches(),
		})
	}
	return Figure{
		Name: "fig4",
		Grid: Grid{Name: "fig4", Arms: arms},
		Render: func(ctx RenderContext) (string, any) {
			avgs := Averages(ctx.Rows, ctx.Cfg.Penalties)
			return RenderAverages("Figure 4: average BEP, NLS-cache vs NLS-table", avgs), avgRows(avgs)
		},
	}
}

// btbVsNLSArms is the shared arm set of Figures 5 and 7: the four BTB
// organizations on one cache (BTB BEP is cache-independent) and the
// 1024-entry NLS-table on every paper cache. Declaring the same arms in
// both grids costs nothing — the executor dedupes cells by content key.
func btbVsNLSArms() []Arm {
	var arms []Arm
	for _, cfg := range BTBConfigs() {
		arms = append(arms, Arm{
			Name: cfg.String(), Spec: arch.BTB(cfg.Entries, cfg.Assoc), Caches: cache16KDirect(),
		})
	}
	return append(arms, Arm{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: PaperCaches()})
}

// fig5Figure reproduces Figure 5: average BEP of the four BTB
// organizations and the 1024-entry NLS-table.
func fig5Figure() Figure {
	return Figure{
		Name: "fig5",
		Grid: Grid{Name: "fig5", Arms: btbVsNLSArms()},
		Render: func(ctx RenderContext) (string, any) {
			avgs := Averages(ctx.Rows, ctx.Cfg.Penalties)
			return RenderAverages("Figure 5: average BEP, BTB vs 1024 NLS-table", avgs), avgRows(avgs)
		},
	}
}

// fig6Figure reproduces Figure 6 (pure timing model, no simulation).
func fig6Figure() Figure {
	return Figure{
		Name: "fig6",
		Grid: Grid{Name: "fig6"},
		Render: func(RenderContext) (string, any) {
			rows := Fig6()
			return RenderFig6(rows), rows
		},
	}
}

// fig7Figure reproduces Figure 7: the per-program BEP comparison over the
// same cells as Figure 5.
func fig7Figure() Figure {
	return Figure{
		Name: "fig7",
		Grid: Grid{Name: "fig7", Arms: btbVsNLSArms()},
		Render: func(ctx RenderContext) (string, any) {
			p := ctx.Cfg.Penalties
			data := map[string][]resultRow{}
			for _, res := range ctx.Rows {
				data[res.Program] = append(data[res.Program], resultRow{
					Program: res.Program, Arch: res.Arch, Cache: res.Cache().String(),
					MfBEP: res.M.MisfetchBEP(p), MpBEP: res.M.MispredictBEP(p),
					BEP: res.M.BEP(p),
				})
			}
			return RenderFig7(ctx.Rows, len(ctx.Cfg.Programs), p), data
		},
	}
}

// fig8Figure reproduces Figure 8: average CPI for the BTB organizations
// and the 1024-entry NLS-table over each cache configuration. Unlike BEP,
// CPI depends on the cache for every architecture (the 5-cycle miss
// penalty), so everything runs on all configurations.
func fig8Figure() Figure {
	var arms []Arm
	for _, cfg := range BTBConfigs() {
		arms = append(arms, Arm{
			Name: cfg.String(), Spec: arch.BTB(cfg.Entries, cfg.Assoc), Caches: PaperCaches(),
		})
	}
	arms = append(arms, Arm{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: PaperCaches()})
	return Figure{
		Name: "fig8",
		Grid: Grid{Name: "fig8", Arms: arms},
		Render: func(ctx RenderContext) (string, any) {
			avgs := Averages(ctx.Rows, ctx.Cfg.Penalties)
			return RenderCPI(avgs), avgRows(avgs)
		},
	}
}

// perLineFigure evaluates the NLS-cache with 1, 2, 4 predictors per line
// (§5.1: "we used one to four NLS predictors per cache line ... two NLS
// predictors per cache line gave performance comparable to the
// NLS-table").
func perLineFigure() Figure {
	caches := []cache.Geometry{
		cache.MustGeometry(8*1024, LineBytes, 1),
		cache.MustGeometry(16*1024, LineBytes, 1),
	}
	var arms []Arm
	for _, per := range []int{1, 2, 4} {
		arms = append(arms, Arm{
			Name: fmt.Sprintf("NLS-cache %d/line", per), Spec: arch.NLSCache(per), Caches: caches,
		})
	}
	arms = append(arms, Arm{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: caches})
	return Figure{
		Name: "perline",
		Grid: Grid{Name: "perline", Arms: arms},
		Render: func(ctx RenderContext) (string, any) {
			avgs := Averages(ctx.Rows, ctx.Cfg.Penalties)
			return RenderAverages("Ablation: NLS-cache predictors per line (§5.1)", avgs), avgRows(avgs)
		},
	}
}

// coupledFigure compares the decoupled BTB+PHT design against the coupled
// (Pentium-style) BTB with per-entry 2-bit counters, and against Johnson's
// coupled one-bit successor-index design — isolating the value of
// decoupling, the design decision both the paper and its predecessor
// emphasize. Both 128-entry and 32-entry BTBs are swept: the coupled
// design's weakness — a branch evicted from the BTB also loses its
// direction state and falls back to static prediction — scales with BTB
// capacity pressure, so the small configuration shows it starkly.
func coupledFigure() Figure {
	var arms []Arm
	for _, entries := range []int{128, 32} {
		arms = append(arms,
			Arm{Name: btb.Config{Entries: entries, Assoc: 1}.String(),
				Spec: arch.BTB(entries, 1), Caches: cache16KDirect()},
			Arm{Name: fmt.Sprintf("coupled %d-entry BTB", entries),
				Spec: arch.CoupledBTB(entries, 1), Caches: cache16KDirect()},
		)
	}
	arms = append(arms,
		Arm{Name: "Johnson 1-bit", Spec: arch.Johnson(), Caches: cache16KDirect()},
		Arm{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: cache16KDirect()},
	)
	return Figure{
		Name: "coupled",
		Grid: Grid{Name: "coupled", Arms: arms},
		Render: func(ctx RenderContext) (string, any) {
			avgs := Averages(ctx.Rows, ctx.Cfg.Penalties)
			return RenderAverages("Ablation: decoupled vs coupled designs (§2, §6.2)", avgs), avgRows(avgs)
		},
	}
}

// phtKinds are the direction predictors of the PHT ablation: the paper's
// gshare, the pure-global GAs degenerate scheme, a per-address bimodal
// table, a one-bit table, and static not-taken.
func phtKinds() []struct {
	name string
	pht  arch.PHTSpec
} {
	return []struct {
		name string
		pht  arch.PHTSpec
	}{
		{"gshare-4096", arch.PaperPHT()},
		{"GAs-4096", arch.PHTSpec{Kind: "gas", Entries: PHTEntries}},
		{"bimodal-4096", arch.PHTSpec{Kind: "bimodal", Entries: PHTEntries}},
		{"1bit-4096", arch.PHTSpec{Kind: "1bit", Entries: PHTEntries}},
		{"static-not-taken", arch.PHTSpec{Kind: "static-not-taken"}},
	}
}

// phtArchs are the two equal-cost architectures each direction predictor
// is paired with (§5.1's methodological requirement: the PHT is
// architecturally identical across NLS and BTB in every row).
func phtArchs() []struct {
	name string
	base arch.Spec
} {
	return []struct {
		name string
		base arch.Spec
	}{
		{"1024 NLS-table", arch.NLSTable(1024)},
		{"128-entry direct BTB", arch.BTB(128, 1)},
	}
}

// phtFigure runs both architectures under different direction predictors
// of equal entry count.
func phtFigure() Figure {
	kinds, archs := phtKinds(), phtArchs()
	var arms []Arm
	for _, k := range kinds {
		for _, a := range archs {
			spec := a.base
			spec.PHT = k.pht
			arms = append(arms, Arm{
				Name: fmt.Sprintf("%s (%s)", a.name, k.name), Spec: spec, Caches: cache16KDirect(),
			})
		}
	}
	return Figure{
		Name: "pht",
		Grid: Grid{Name: "pht", Arms: arms},
		Render: func(ctx RenderContext) (string, any) {
			var rows []PHTRow
			arm := 0
			for _, k := range kinds {
				for _, a := range archs {
					var accSum, bepSum float64
					armRows := ctx.ArmRows(arm)
					for _, res := range armRows {
						accSum += res.M.CondAccuracy()
						bepSum += res.M.BEP(ctx.Cfg.Penalties)
					}
					n := float64(len(armRows))
					rows = append(rows, PHTRow{
						PHT: k.name, Arch: a.name,
						CondAcc: accSum / n, BEP: bepSum / n, SizeBits: phtSizeBits(k.pht),
					})
					arm++
				}
			}
			return RenderPHTSweep(rows), rows
		},
	}
}

// phtSizeBits returns the storage cost of a direction predictor spec. The
// ablation's specs are static and valid, so Build cannot fail.
func phtSizeBits(s arch.PHTSpec) int {
	dir, err := s.Build()
	if err != nil {
		panic(err)
	}
	return dir.SizeBits()
}

// widthFigure evaluates the equal-cost 1024-entry NLS-table and 128-entry
// BTB under fetch widths 1–8 (averaged over programs). The paper argues
// penalties grow in importance with issue width and that nothing in NLS is
// hostile to wide fetch; the sweep quantifies both: penalty share rises
// with W for every architecture, and the NLS-vs-BTB IPC gap widens. The
// penalty events are width-independent, so each architecture costs one
// cell per program; the per-width fetch-block counts come from the replay
// pass (ProgramInfo), making the width axis pure arithmetic.
func widthFigure() Figure {
	arms := []Arm{
		{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: cache16KDirect()},
		{Name: btb.Config{Entries: 128, Assoc: 1}.String(), Spec: arch.BTB(128, 1), Caches: cache16KDirect()},
	}
	return Figure{
		Name:      "width",
		Grid:      Grid{Name: "width", Arms: arms},
		NeedsInfo: true,
		Render: func(ctx RenderContext) (string, any) {
			var rows []WidthRow
			for arm := range arms {
				armRows := ctx.ArmRows(arm)
				for _, width := range FetchWidths() {
					var ipcSum, shareSum float64
					for i, res := range armRows {
						r := multiissue.EvaluateBlocks(ctx.Infos[i].FetchBlocks[width], &res.M,
							multiissue.Config{Width: width, LineBytes: LineBytes}, ctx.Cfg.Penalties)
						ipcSum += r.IPC
						shareSum += r.PenaltyShare
					}
					n := float64(len(armRows))
					rows = append(rows, WidthRow{
						Arch: armRows[0].Arch, Width: width,
						IPC: ipcSum / n, PenaltyShare: shareSum / n,
					})
				}
			}
			return RenderWidthSweep(rows), rows
		},
	}
}

// pollutionFigure quantifies the §5.2 remark that the architectures "may
// fetch different instructions, even for the same cache organization":
// wrong-path fetches touch the cache, raising the miss rate — and, for the
// NLS architecture only, feeding back into fetch prediction (displaced
// lines invalidate pointers).
func pollutionFigure() Figure {
	cache8K := []cache.Geometry{cache.MustGeometry(8*1024, LineBytes, 1)}
	variants := []struct {
		name string
		spec arch.Spec
	}{
		{"1024 NLS-table", arch.NLSTable(1024)},
		{"128-entry direct BTB", arch.BTB(128, 1)},
	}
	var arms []Arm
	for _, v := range variants {
		polluted := v.spec
		polluted.Pollution = true
		arms = append(arms,
			Arm{Name: v.name, Spec: v.spec, Caches: cache8K},
			Arm{Name: v.name + " (polluted)", Spec: polluted, Caches: cache8K},
		)
	}
	return Figure{
		Name: "pollution",
		Grid: Grid{Name: "pollution", Arms: arms},
		Render: func(ctx RenderContext) (string, any) {
			p := ctx.Cfg.Penalties
			var rows []PollutionRow
			for i, v := range variants {
				row := PollutionRow{Arch: v.name}
				for j, pollute := range []bool{false, true} {
					var miss, mf, cpi float64
					armRows := ctx.ArmRows(2*i + j)
					for _, res := range armRows {
						miss += res.M.ICacheMissRate()
						mf += res.M.MisfetchBEP(p)
						cpi += res.M.CPI(p)
					}
					n := float64(len(armRows))
					if pollute {
						row.PollutedMissRate = miss / n
						row.PollutedMisfetch = mf / n
						row.PollutedCPI = cpi / n
					} else {
						row.CleanMissRate = miss / n
						row.CleanMisfetchBEP = mf / n
						row.CleanCPI = cpi / n
					}
				}
				rows = append(rows, row)
			}
			return RenderPollutionSweep(rows, p), rows
		},
	}
}

// hybridFigure is the equal-cost comparison for the hybrid NLS+BTB
// predictor (satellite of the grid refactor): the hybrid keeps the
// NLS-table's cache-relative pointer as the first-class target source and
// falls back to a small BTB for lines the cache has displaced. Its
// neighbours in predictor-cost space bracket it from both sides — the two
// pure NLS-tables and the two pure direct BTBs — so the row shows what the
// fallback buys at what cost. Only the hybrid cell is new; the four
// comparison arms reuse cells other figures already simulate.
func hybridFigure() Figure {
	arms := []Arm{
		{Name: btb.Config{Entries: 128, Assoc: 1}.String(), Spec: arch.BTB(128, 1), Caches: cache16KDirect()},
		{Name: btb.Config{Entries: 256, Assoc: 1}.String(), Spec: arch.BTB(256, 1), Caches: cache16KDirect()},
		{Name: "512 NLS-table", Spec: arch.NLSTable(512), Caches: cache16KDirect()},
		{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: cache16KDirect()},
		{Name: "512 NLS+64 BTB hybrid", Spec: arch.Hybrid(512, 64, 1), Caches: cache16KDirect()},
	}
	return Figure{
		Name: "hybrid",
		Grid: Grid{Name: "hybrid", Arms: arms},
		Render: func(ctx RenderContext) (string, any) {
			p := ctx.Cfg.Penalties
			rows := make([]HybridRow, 0, len(arms))
			for arm := range arms {
				armRows := ctx.ArmRows(arm)
				var mf, mp float64
				for _, res := range armRows {
					mf += res.M.MisfetchBEP(p)
					mp += res.M.MispredictBEP(p)
				}
				n := float64(len(armRows))
				rows = append(rows, HybridRow{
					Arch:  armRows[0].Arch,
					MfBEP: mf / n, MpBEP: mp / n, BEP: (mf + mp) / n,
					SizeBits: specSizeBits(armRows[0].Spec),
				})
			}
			return RenderHybrid(rows), rows
		},
	}
}

// attributionFigure compares *why* each equal-cost configuration pays its
// penalty cycles — the per-branch cause taxonomy of the fetch probe
// (dir-wrong, stale pointers, state lost to line eviction, RAS misses, BTB
// conflicts, cold branches) aggregated into a cause matrix. It is the only
// Probed figure: the executor replays the AttributionGrid with probe-attached
// engines rather than resolving stored counter cells.
func attributionFigure() Figure {
	g := AttributionGrid()
	return Figure{
		Name: "attribution",
		Grid: Grid{Name: "attribution"}, // no stored cells; Probed replays itself
		Probed: func(x *Executor) (string, any, error) {
			reports, err := x.RunAttribution(g, AttributionTopN)
			if err != nil {
				return "", nil, err
			}
			text := obs.RenderCauseMatrix(
				"Attribution: penalty-cause mix across equal-cost configs (8KB direct i-cache)",
				reports)
			return text, reports, nil
		},
	}
}

// specSizeBits returns the target-predictor storage cost of a spec by
// building its engine (cheap: table allocation only, no simulation).
func specSizeBits(s arch.Spec) int {
	type sizer interface{ PredictorSizeBits() int }
	e, err := s.Build()
	if err != nil {
		panic(err)
	}
	if sz, ok := e.(sizer); ok {
		return sz.PredictorSizeBits()
	}
	return 0
}
