package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/area"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/timing"
	"repro/internal/trace"
)

func maxParallel() int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 2
	}
	return n
}

// Table1 reproduces Table 1: the measured attributes of each generated
// trace.
func (r *Runner) Table1() (string, error) {
	traces, err := r.Traces()
	if err != nil {
		return "", err
	}
	rows := make([]*trace.Stats, len(traces))
	for i, t := range traces {
		rows[i] = trace.ComputeStats(t)
	}
	return trace.FormatTable(rows), nil
}

// Fig3Row is one bar group of Figure 3.
type Fig3Row struct {
	Label string
	RBE   float64
}

// Fig3 reproduces Figure 3: register-bit-equivalent costs for the NLS-cache
// and the 512/1024/2048-entry NLS-tables at 8K–64K cache sizes, and for
// 128- and 256-entry BTBs at associativities 1, 2, 4. No simulation — pure
// area model.
func Fig3() []Fig3Row {
	var rows []Fig3Row
	sizes := []int{8, 16, 32, 64}
	for _, kb := range sizes {
		g := cache.MustGeometry(kb*1024, LineBytes, 1)
		rows = append(rows, Fig3Row{
			Label: fmt.Sprintf("NLS-cache %dK", kb),
			RBE:   area.NLSCacheRBE(NLSPerLine, g),
		})
	}
	for _, entries := range NLSTableSizes {
		for _, kb := range sizes {
			g := cache.MustGeometry(kb*1024, LineBytes, 1)
			rows = append(rows, Fig3Row{
				Label: fmt.Sprintf("%d NLS-table %dK", entries, kb),
				RBE:   area.NLSTableRBE(entries, g),
			})
		}
	}
	for _, entries := range []int{128, 256} {
		for _, assoc := range []int{1, 2, 4} {
			rows = append(rows, Fig3Row{
				Label: fmt.Sprintf("%d BTB %d-way", entries, assoc),
				RBE:   area.BTBRBE(btb.Config{Entries: entries, Assoc: assoc}),
			})
		}
	}
	return rows
}

// RenderFig3 formats Figure 3 as a table with bars.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: register bit equivalent costs (RBE)\n")
	max := 0.0
	for _, r := range rows {
		if r.RBE > max {
			max = r.RBE
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %9.0f %s\n", r.Label, r.RBE, bar(r.RBE, max, 40))
	}
	return b.String()
}

// Fig4 reproduces Figure 4: average BEP of the NLS-cache and the three
// NLS-table sizes over the paper's cache configurations.
func (r *Runner) Fig4() ([]Average, error) {
	factories := []Factory{NLSCacheFactory(NLSPerLine)}
	for _, n := range NLSTableSizes {
		factories = append(factories, NLSTableFactory(n))
	}
	results, err := r.Sweep(factories, PaperCaches())
	if err != nil {
		return nil, err
	}
	return r.Averages(results), nil
}

// Fig5 reproduces Figure 5: average BEP of the four BTB organizations and
// the 1024-entry NLS-table. BTB BEP is cache-independent, so BTBs run on a
// single cache configuration; the NLS-table runs on all of them.
func (r *Runner) Fig5() ([]Average, error) {
	oneCache := []cache.Geometry{cache.MustGeometry(16*1024, LineBytes, 1)}
	var btbFacts []Factory
	for _, cfg := range BTBConfigs() {
		btbFacts = append(btbFacts, BTBFactory(cfg))
	}
	btbRes, err := r.Sweep(btbFacts, oneCache)
	if err != nil {
		return nil, err
	}
	nlsRes, err := r.Sweep([]Factory{NLSTableFactory(1024)}, PaperCaches())
	if err != nil {
		return nil, err
	}
	return append(r.Averages(btbRes), r.Averages(nlsRes)...), nil
}

// Fig6Row is one bar of Figure 6.
type Fig6Row struct {
	Entries, Assoc int
	NS             float64
}

// Fig6 reproduces Figure 6: estimated BTB access times.
func Fig6() []Fig6Row {
	var rows []Fig6Row
	for _, entries := range []int{128, 256} {
		for _, assoc := range []int{1, 2, 4} {
			rows = append(rows, Fig6Row{entries, assoc, timing.BTBAccessNS(entries, assoc)})
		}
	}
	return rows
}

// RenderFig6 formats Figure 6.
func RenderFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: BTB access time (ns, CACTI-style model)\n")
	for _, r := range rows {
		way := fmt.Sprintf("%d-way", r.Assoc)
		if r.Assoc == 1 {
			way = "direct"
		}
		fmt.Fprintf(&b, "  %3d-entry %-6s %5.2f ns %s\n", r.Entries, way, r.NS, bar(r.NS, 8, 32))
	}
	return b.String()
}

// Fig7 reproduces Figure 7: per-program BEP comparison between the BTBs
// (cache-independent, shown once) and the 1024-entry NLS-table on every
// paper cache configuration. Results are keyed by program name.
func (r *Runner) Fig7() (map[string][]Result, error) {
	oneCache := []cache.Geometry{cache.MustGeometry(16*1024, LineBytes, 1)}
	var btbFacts []Factory
	for _, cfg := range BTBConfigs() {
		btbFacts = append(btbFacts, BTBFactory(cfg))
	}
	btbRes, err := r.Sweep(btbFacts, oneCache)
	if err != nil {
		return nil, err
	}
	nlsRes, err := r.Sweep([]Factory{NLSTableFactory(1024)}, PaperCaches())
	if err != nil {
		return nil, err
	}
	byProg := map[string][]Result{}
	for _, res := range append(btbRes, nlsRes...) {
		byProg[res.Program] = append(byProg[res.Program], res)
	}
	return byProg, nil
}

// Fig8 reproduces Figure 8: average CPI for the BTB organizations and the
// 1024-entry NLS-table over each cache configuration. Unlike BEP, CPI
// depends on the cache for every architecture (the 5-cycle miss penalty),
// so everything runs on all configurations.
func (r *Runner) Fig8() ([]Average, error) {
	var factories []Factory
	for _, cfg := range BTBConfigs() {
		factories = append(factories, BTBFactory(cfg))
	}
	factories = append(factories, NLSTableFactory(1024))
	results, err := r.Sweep(factories, PaperCaches())
	if err != nil {
		return nil, err
	}
	return r.Averages(results), nil
}

// RenderAverages formats BEP averages as stacked misfetch/mispredict rows,
// the textual equivalent of the paper's stacked bars.
func RenderAverages(title string, avgs []Average) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("  arch                        cache        misfetch  mispredict   BEP\n")
	max := 0.0
	for _, a := range avgs {
		if a.BEP() > max {
			max = a.BEP()
		}
	}
	for _, a := range avgs {
		fmt.Fprintf(&b, "  %-26s %-12s %8.3f %10.3f %7.3f %s\n",
			a.Arch, a.Cache, a.MfBEP, a.MpBEP, a.BEP(), bar(a.BEP(), max, 30))
	}
	return b.String()
}

// RenderCPI formats Figure 8.
func RenderCPI(avgs []Average) string {
	var b strings.Builder
	b.WriteString("Figure 8: cycles per instruction (single issue, 5-cycle miss penalty)\n")
	b.WriteString("  arch                        cache          CPI   icache-miss%\n")
	for _, a := range avgs {
		fmt.Fprintf(&b, "  %-26s %-12s %6.3f %10.2f\n", a.Arch, a.Cache, a.CPI, 100*a.MissRate)
	}
	return b.String()
}

// RenderFig7 formats the per-program comparison.
func RenderFig7(r *Runner, byProg map[string][]Result) string {
	var b strings.Builder
	b.WriteString("Figure 7: per-program branch execution penalty\n")
	names := make([]string, 0, len(byProg))
	for n := range byProg {
		names = append(names, n)
	}
	sort.Strings(names)
	p := r.Cfg.Penalties
	for _, name := range names {
		fmt.Fprintf(&b, "%s:\n", name)
		for _, res := range byProg[name] {
			cacheLabel := res.Cache.String()
			if strings.Contains(res.Arch, "BTB") {
				cacheLabel = "(any)"
			}
			fmt.Fprintf(&b, "  %-26s %-12s mf=%6.3f mp=%6.3f BEP=%6.3f\n",
				res.Arch, cacheLabel, res.M.MisfetchBEP(p), res.M.MispredictBEP(p), res.M.BEP(p))
		}
	}
	return b.String()
}

// bar renders a proportional ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n)
}
