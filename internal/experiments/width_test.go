package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestWidthSweepShapes(t *testing.T) {
	r := runnerOn(300_000, workload.Gcc(), workload.Li())
	_, data := figureData(t, r, "width")
	rows := data.([]WidthRow)
	get := func(arch string, width int) WidthRow {
		for _, row := range rows {
			if row.Arch == arch && row.Width == width {
				return row
			}
		}
		t.Fatalf("missing row %s/%d", arch, width)
		return WidthRow{}
	}
	nls := "1024 NLS-table"
	btb := "128-entry direct BTB"

	// IPC grows with width but sub-linearly; penalty share grows.
	prevIPC, prevShare := 0.0, -1.0
	for _, w := range []int{1, 2, 4, 8} {
		row := get(nls, w)
		if row.IPC <= prevIPC {
			t.Errorf("width %d: IPC %v did not grow", w, row.IPC)
		}
		if row.PenaltyShare <= prevShare {
			t.Errorf("width %d: penalty share %v did not grow", w, row.PenaltyShare)
		}
		prevIPC, prevShare = row.IPC, row.PenaltyShare
	}
	if eightX := get(nls, 8).IPC / get(nls, 1).IPC; eightX >= 8 {
		t.Errorf("width-8 speedup %v should be sublinear", eightX)
	}

	// §8's implication: the NLS advantage over the equal-cost BTB does
	// not shrink as fetch widens (the penalty events are
	// width-independent, and they are the architectures' only
	// difference).
	gap1 := get(nls, 1).IPC - get(btb, 1).IPC
	gap8 := get(nls, 8).IPC - get(btb, 8).IPC
	if gap8 < gap1 {
		t.Errorf("NLS IPC advantage shrank with width: %v -> %v", gap1, gap8)
	}
}

func TestRenderWidthSweep(t *testing.T) {
	r := runnerOn(100_000, workload.Espresso())
	out, _ := figureData(t, r, "width")
	if !strings.Contains(out, "width") || !strings.Contains(out, "NLS-table") {
		t.Error("render incomplete")
	}
}
