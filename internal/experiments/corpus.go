package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

// The disk-backed trace corpus: generate once, replay many. Trace
// generation is the one stage of a sweep whose cost is independent of how
// many cells the store already holds — every fresh process regenerates the
// synthetic traces before it can replay anything. A corpus persists the
// generated traces next to the results store in one content-keyed
// container (trace.Corpus, nls-corpus/v1), so only the first run of a
// (workloads, insns) configuration pays generation; every later run —
// including every fresh process of a sweep service — decodes the corpus
// instead. The key scheme mirrors the cell store: any change to any
// generation input changes the file name, so a stale corpus can never be
// served.

// corpusSchema versions the corpus content key derivation. Bump it when
// trace generation changes meaning without any key field changing, so
// every old corpus misses and is regenerated.
const corpusSchema = "nls-corpus-key/v1"

// CorpusKey derives the content key of a configuration's trace-generation
// inputs: the workload specs (name, seed, generator parameters) and the
// instruction budget. Penalties and arch specs are deliberately absent —
// they affect replay, not the traces.
func CorpusKey(cfg Config) string {
	return hashDoc(struct {
		Schema    string          `json:"schema"`
		Workloads []workload.Spec `json:"workloads"`
		Insns     int             `json:"insns"`
	}{corpusSchema, cfg.Programs, cfg.Insns})
}

// DefaultCorpusDir is where the CLIs keep trace corpora, beside the
// results store (results/cells).
func DefaultCorpusDir() string { return filepath.Join("results", "corpus") }

// CorpusPath returns the content-keyed corpus file path for cfg under dir.
func CorpusPath(dir string, cfg Config) string {
	return filepath.Join(dir, "traces-"+CorpusKey(cfg)[:16]+".nlsc")
}

// UseCorpus attaches the corpus at path to the runner, building the file
// first when it is missing, stale, or corrupt: a build generates every
// program trace (memoizing them for this run) and streams them through a
// trace.CorpusWriter. On a hit the corpus is opened (memory-mapped where
// supported) and genOne decodes programs from it instead of generating.
// The returned duration is the wall time spent on corpus work — the
// "gen-corpus" stage: generation plus serialization on a build, open and
// validation on a hit.
func (r *Runner) UseCorpus(path string) (time.Duration, error) {
	start := time.Now()
	r.corpusMu.Lock()
	if r.corpus != nil {
		r.corpusMu.Unlock()
		return time.Since(start), nil
	}
	if c, err := trace.OpenCorpus(path); err == nil {
		if r.corpusMatches(c) {
			r.corpus = c
			r.corpusMu.Unlock()
			return time.Since(start), nil
		}
		// The content-keyed name makes a mismatch effectively mean the
		// file was written under a different key scheme or tampered with
		// below the checksums' notice; either way it is a miss.
		c.Close()
	}
	// Build outside the lock: generation goes through genOne, which reads
	// the (still nil) corpus under corpusMu. Two racing callers at worst
	// build the same file twice; the atomic rename keeps it consistent.
	r.corpusMu.Unlock()
	if err := r.buildCorpus(path); err != nil {
		return time.Since(start), err
	}
	return time.Since(start), nil
}

// corpusMatches reports whether the corpus holds every configured program
// at the configured instruction budget.
func (r *Runner) corpusMatches(c *trace.Corpus) bool {
	byName := make(map[string]trace.CorpusProgram, len(c.Programs()))
	for _, p := range c.Programs() {
		byName[p.Name] = p
	}
	for _, w := range r.Cfg.Programs {
		p, ok := byName[w.Name]
		if !ok || p.Records != r.Cfg.Insns {
			return false
		}
	}
	return true
}

// buildCorpus generates all traces and writes them to path. The traces
// stay memoized in the runner, so the run that builds a corpus never
// decodes it back.
func (r *Runner) buildCorpus(path string) error {
	traces, err := r.Traces()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	w, err := trace.CreateCorpus(path)
	if err != nil {
		return err
	}
	for _, t := range traces {
		if err := w.Add(t); err != nil {
			w.Abort()
			return fmt.Errorf("experiments: corpus %s: %w", path, err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("experiments: corpus %s: %w", path, err)
	}
	return nil
}

// attachedCorpus returns the corpus attached by UseCorpus, if any.
func (r *Runner) attachedCorpus() *trace.Corpus {
	r.corpusMu.Lock()
	defer r.corpusMu.Unlock()
	return r.corpus
}

// CloseCorpus detaches and closes the attached corpus (releasing its
// mapping); traces already decoded stay valid (decoding copies records out
// of the mapped bytes).
func (r *Runner) CloseCorpus() error {
	r.corpusMu.Lock()
	defer r.corpusMu.Unlock()
	if r.corpus == nil {
		return nil
	}
	err := r.corpus.Close()
	r.corpus = nil
	return err
}
