package experiments

import (
	"fmt"
	"strings"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/metrics"
	"repro/internal/multiissue"
)

// WidthRow is one point of the multi-issue extension sweep (§8): an
// architecture evaluated under a W-wide fetch front end.
type WidthRow struct {
	Arch         string
	Width        int
	IPC          float64
	PenaltyShare float64
}

// WidthSweep evaluates the equal-cost 1024-entry NLS-table and 128-entry
// BTB under fetch widths 1–8 (averaged over programs). The paper argues
// penalties grow in importance with issue width and that nothing in NLS is
// hostile to wide fetch; the sweep quantifies both: penalty share rises
// with W for every architecture, and the NLS-vs-BTB IPC gap widens.
func (r *Runner) WidthSweep() ([]WidthRow, error) {
	traces, err := r.Traces()
	if err != nil {
		return nil, err
	}
	g := cache.MustGeometry(16*1024, LineBytes, 1)
	archs := []Factory{
		NLSTableFactory(1024),
		BTBFactory(btb.Config{Entries: 128, Assoc: 1}),
	}
	var rows []WidthRow
	for _, f := range archs {
		// One simulation per (arch, program): the penalty events are
		// width-independent; only the useful-fetch cycle count depends
		// on W.
		counters := make([]*metrics.Counters, len(traces))
		for i, t := range traces {
			e := f.New(g)
			counters[i] = fetch.Run(e, t)
		}
		for _, width := range []int{1, 2, 4, 8} {
			var ipcSum, shareSum float64
			for i, t := range traces {
				res, err := multiissue.Evaluate(t, counters[i], multiissue.Config{
					Width: width, LineBytes: LineBytes,
				}, r.Cfg.Penalties)
				if err != nil {
					return nil, err
				}
				ipcSum += res.IPC
				shareSum += res.PenaltyShare
			}
			n := float64(len(traces))
			rows = append(rows, WidthRow{
				Arch: f.Name, Width: width,
				IPC: ipcSum / n, PenaltyShare: shareSum / n,
			})
		}
	}
	return rows, nil
}

// RenderWidthSweep formats the multi-issue sweep.
func RenderWidthSweep(rows []WidthRow) string {
	var b strings.Builder
	b.WriteString("Extension (§8): fetch-width sweep, 16KB direct i-cache\n")
	b.WriteString("  arch                       width    IPC   penalty-share\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %5d %7.3f %11.1f%%\n",
			r.Arch, r.Width, r.IPC, 100*r.PenaltyShare)
	}
	return b.String()
}
