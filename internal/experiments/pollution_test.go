package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestPollutionSweepDirections(t *testing.T) {
	r := runnerOn(300_000, workload.Gcc())
	_, data := figureData(t, r, "pollution")
	rows := data.([]PollutionRow)
	for _, row := range rows {
		// Wrong-path fetches can only add accesses and misses.
		if row.PollutedMissRate < row.CleanMissRate*0.99 {
			t.Errorf("%s: pollution lowered the miss rate %.4f -> %.4f",
				row.Arch, row.CleanMissRate, row.PollutedMissRate)
		}
		if row.PollutedCPI < row.CleanCPI*0.999 {
			t.Errorf("%s: pollution lowered CPI %.4f -> %.4f",
				row.Arch, row.CleanCPI, row.PollutedCPI)
		}
	}
	// Only the NLS architecture's *fetch prediction* feels the
	// pollution (displaced lines invalidate pointers); the BTB's
	// misfetch accounting is cache-independent and must be unchanged.
	for _, row := range rows {
		if strings.Contains(row.Arch, "BTB") {
			if row.PollutedMisfetch != row.CleanMisfetchBEP {
				t.Errorf("BTB misfetch changed under pollution: %.5f -> %.5f",
					row.CleanMisfetchBEP, row.PollutedMisfetch)
			}
		} else if row.PollutedMisfetch < row.CleanMisfetchBEP*0.98 {
			// Pollution usually hurts NLS fetch prediction; the odd
			// accidental-prefetch can move it a hair the other way,
			// so only a material improvement is a bug.
			t.Errorf("NLS misfetch improved materially under pollution: %.5f -> %.5f",
				row.CleanMisfetchBEP, row.PollutedMisfetch)
		}
	}
}

func TestRenderPollutionSweep(t *testing.T) {
	r := runnerOn(100_000, workload.Espresso())
	out, _ := figureData(t, r, "pollution")
	if !strings.Contains(out, "NLS-table") || !strings.Contains(out, "BTB") {
		t.Error("render incomplete")
	}
}
