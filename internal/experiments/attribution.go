package experiments

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/obs"
)

// AttributionTopN is the offender-table depth the attribution figure and
// nlssim -attribute report per (arch, program) run.
const AttributionTopN = 5

// AttributionGrid is the cause-mix comparison the attribution figure
// explains: the paper's equal-cost contenders side by side on an 8KB
// direct-mapped cache. The small cache is deliberate — it displaces hot
// lines, which is the only condition under which the line-coupled designs'
// "state lost to eviction" cause can appear, so the figure separates the
// architectures by *why* they pay rather than just how much (§4.1, §6.1).
func AttributionGrid() Grid {
	cache8K := []cache.Geometry{cache.MustGeometry(8*1024, LineBytes, 1)}
	arms := []Arm{
		{Name: "NLS-cache 2/line", Spec: arch.NLSCache(NLSPerLine), Caches: cache8K},
		{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: cache8K},
		{Name: "128-entry direct BTB", Spec: arch.BTB(128, 1), Caches: cache8K},
		{Name: "coupled 128-entry BTB", Spec: arch.CoupledBTB(128, 1), Caches: cache8K},
		{Name: "Johnson 1-bit", Spec: arch.Johnson(), Caches: cache8K},
		{Name: "512 NLS+64 BTB hybrid", Spec: arch.Hybrid(512, 64, 1), Caches: cache8K},
	}
	return Grid{Name: "attribution", Arms: arms}
}

// RunAttribution replays each program once through probe-attached engines
// for every cell of the grid and returns one attribution report per cell,
// in cell order (program-major, arm-major). Unlike RunGrids, results never
// come from or go to the store: attribution is an event-stream product, not
// a counter row, and the store only holds counters. The replay shares the
// executor's scheduling shape — one bounded goroutine per program, the
// leftover parallelism going to each broadcast's worker pool — and engines
// are owned by exactly one broadcast worker, so the per-engine Attribution
// collectors need no locking.
func (x *Executor) RunAttribution(g Grid, topN int) ([]obs.Report, error) {
	r := x.R
	cfg := r.Cfg
	cells := g.cells(cfg.Programs)
	cpp := g.cellsPerProgram()
	reports := make([]obs.Report, len(cells))

	budget := maxParallel()
	progPar := len(cfg.Programs)
	if progPar > budget {
		progPar = budget
	}
	if progPar < 1 {
		progPar = 1
	}
	perProg := budget / progPar
	if perProg < 1 {
		perProg = 1
	}

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, progPar)
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i := range cfg.Programs {
		wg.Add(1)
		sem <- struct{}{} // bound concurrency before spawning
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			progCells := cells[i*cpp : (i+1)*cpp]
			ct, err := r.ChunkedOne(i)
			if err != nil {
				fail(err)
				return
			}
			engines := make([]fetch.Engine, len(progCells))
			atts := make([]*obs.Attribution, len(progCells))
			for j, c := range progCells {
				e, err := c.Spec.Build()
				if err != nil {
					fail(fmt.Errorf("cell %s/%s: %w", c.Prog.Name, c.Arm, err))
					return
				}
				pa, ok := e.(fetch.ProbeAttacher)
				if !ok {
					fail(fmt.Errorf("cell %s/%s: engine %T accepts no probe", c.Prog.Name, c.Arm, e))
					return
				}
				atts[j] = obs.NewAttribution()
				pa.AttachProbe(atts[j])
				engines[j] = e
			}
			fetch.BroadcastWorkers(cellSource(ct, progCells), perProg, engines...)
			// reports slots are disjoint per program; no lock needed.
			for j, c := range progCells {
				reports[i*cpp+j] = atts[j].Report(c.Arm, c.Prog.Name, topN, cfg.Penalties)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return reports, nil
}
