package experiments

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/cache"
)

// PrefetchFTQDepth is the fetch-target-queue depth of the FDIP arm: eight
// fetch blocks of run-ahead, the reference point DESIGN.md §14 sizes the
// prefetch fill latency against (a block is ~8 sequential accesses, so the
// queue's lead comfortably covers the 20-access fill).
const PrefetchFTQDepth = 8

// PrefetchGrid is the instruction-prefetch comparison (DESIGN.md §14): the
// paper's headline 1024-entry NLS-table bare, with a sequential next-line
// prefetcher, and with fetch-directed prefetching driven by the decoupled
// frontend's FTQ. All three arms share the architecture, the direction
// predictor, and the trace — the prefetcher is the only degree of freedom,
// and the equality of the Breaks/CondDirWrong columns across arms is the
// proof that prefetching perturbs nothing in the prediction accounting.
// The 8KB direct cache is the pressure point where the paper's workloads
// actually miss (the 16KB default nearly fits them).
func PrefetchGrid() Grid {
	cache8K := []cache.Geometry{cache.MustGeometry(8*1024, LineBytes, 1)}
	nl := arch.NLSTable(1024)
	nl.Prefetch = &arch.PrefetchSpec{Kind: arch.PrefKindNextLine}
	fdip := arch.NLSTable(1024)
	fdip.Prefetch = &arch.PrefetchSpec{Kind: arch.PrefKindFDIP, FTQDepth: PrefetchFTQDepth}
	return Grid{Name: "prefetch", Arms: []Arm{
		{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: cache8K},
		{Name: "+ next-line", Spec: nl, Caches: cache8K},
		{Name: "+ FDIP (ftq 8)", Spec: fdip, Caches: cache8K},
	}}
}

// PrefetchRow is one arm of the prefetch figure, averaged over programs.
// ColdMisses is the fetch-side compulsory-miss count (first demand touch of
// a line): a timely prefetch absorbs the line's first touch, so FDIP's
// run-ahead shrinks this bucket — the signature the figure exists to show.
type PrefetchRow struct {
	Arch       string  `json:"arch"`
	MissRate   float64 `json:"icache_miss_rate"`
	ColdMisses float64 `json:"icache_cold_misses"`
	Issued     float64 `json:"pref_issued"`
	Coverage   float64 `json:"pref_coverage"`
	Accuracy   float64 `json:"pref_accuracy"`
	Timeliness float64 `json:"pref_timeliness"`
	CPI        float64 `json:"cpi"`
}

// RenderPrefetch formats the prefetch comparison: per-arm miss rate, the
// cold (compulsory) demand-miss count, the prefetch lifecycle ratios, and
// CPI with the miss-rate bar.
func RenderPrefetch(rows []PrefetchRow) string {
	var b strings.Builder
	b.WriteString("Extension: i-cache prefetching, next-line vs fetch-directed (8KB direct i-cache)\n")
	b.WriteString("  arch                        miss%    cold   issued  cover   acc  timely    CPI\n")
	max := 0.0
	for _, r := range rows {
		if r.MissRate > max {
			max = r.MissRate
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %6.2f %7.0f %8.0f %6.2f %5.2f %7.2f %6.3f %s\n",
			r.Arch, 100*r.MissRate, r.ColdMisses, r.Issued,
			r.Coverage, r.Accuracy, r.Timeliness, r.CPI, bar(r.MissRate, max, 24))
	}
	return b.String()
}

// prefetchFigure compares the prefetch arms on miss elimination (coverage),
// wasted fills (accuracy), lead time (timeliness), and the cold bucket —
// the demand misses only a predicted-stream prefetcher can remove, since a
// demand-triggered policy cannot act before the first touch it reacts to.
func prefetchFigure() Figure {
	g := PrefetchGrid()
	return Figure{
		Name: "prefetch",
		Grid: g,
		Render: func(ctx RenderContext) (string, any) {
			p := ctx.Cfg.Penalties
			rows := make([]PrefetchRow, 0, len(g.Arms))
			for arm := range g.Arms {
				armRows := ctx.ArmRows(arm)
				var row PrefetchRow
				row.Arch = armRows[0].Arch
				for _, res := range armRows {
					row.MissRate += res.M.ICacheMissRate()
					row.ColdMisses += float64(res.M.ICacheColdMisses)
					row.Issued += float64(res.M.PrefIssued)
					row.Coverage += res.M.PrefCoverage()
					row.Accuracy += res.M.PrefAccuracy()
					row.Timeliness += res.M.PrefTimeliness()
					row.CPI += res.M.CPI(p)
				}
				n := float64(len(armRows))
				row.MissRate /= n
				row.ColdMisses /= n
				row.Issued /= n
				row.Coverage /= n
				row.Accuracy /= n
				row.Timeliness /= n
				row.CPI /= n
				rows = append(rows, row)
			}
			return RenderPrefetch(rows), rows
		},
	}
}
