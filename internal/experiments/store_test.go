package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func testCell() (workload.Spec, arch.Spec) {
	spec := arch.NLSTable(1024).WithGeometry(cache.MustGeometry(16*1024, LineBytes, 1))
	return workload.Li(), spec
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, spec := testCell()
	key := cellKey(w, 100_000, spec, metrics.Default())

	var missing Row
	if ok, err := s.Load(key, &missing); err != nil || ok {
		t.Fatalf("empty store Load = (%v, %v), want miss", ok, err)
	}

	in := Row{Program: w.Name, Arch: "1024 NLS-table", Spec: spec,
		M: metrics.Counters{Instructions: 100_000, Breaks: 12345, Misfetches: 67}}
	if err := s.Save(key, in); err != nil {
		t.Fatal(err)
	}
	var out Row
	ok, err := s.Load(key, &out)
	if err != nil || !ok {
		t.Fatalf("Load after Save = (%v, %v), want hit", ok, err)
	}
	if out.M != in.M || out.Program != in.Program || out.Spec != in.Spec {
		t.Errorf("round trip mutated the row:\n in %+v\nout %+v", in, out)
	}
}

func TestStoreCorruptCellIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, spec := testCell()
	key := cellKey(w, 100_000, spec, metrics.Default())
	if err := s.Save(key, Row{Program: w.Name}); err != nil {
		t.Fatal(err)
	}
	// Truncate the stored document mid-JSON: the store is a cache, so the
	// damage must degrade to a recomputation, not an error.
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"program": "li-`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out Row
	if ok, err := s.Load(key, &out); err != nil || ok {
		t.Errorf("corrupt cell Load = (%v, %v), want miss without error", ok, err)
	}
}

// TestCellKeyInvalidation: the content key must change whenever ANY input
// the counters depend on changes — and must not change otherwise. This is
// the store's only invalidation mechanism.
func TestCellKeyInvalidation(t *testing.T) {
	w, spec := testCell()
	p := metrics.Default()
	base := cellKey(w, 100_000, spec, p)

	if k := cellKey(w, 100_000, spec, p); k != base {
		t.Error("identical inputs produced different keys")
	}

	mutations := map[string]string{}
	mutations["insns"] = cellKey(w, 200_000, spec, p)

	w2 := w
	w2.Seed = w.Seed + 1
	mutations["workload seed"] = cellKey(w2, 100_000, spec, p)

	s2 := spec.WithGeometry(cache.MustGeometry(32*1024, LineBytes, 1))
	mutations["cache geometry"] = cellKey(w, 100_000, s2, p)

	s3 := spec
	s3.Predictor.Entries = 512
	mutations["predictor size"] = cellKey(w, 100_000, s3, p)

	s4 := spec
	s4.Pollution = true
	mutations["pollution flag"] = cellKey(w, 100_000, s4, p)

	s5 := spec
	s5.PHT = arch.PHTSpec{Kind: "bimodal", Entries: PHTEntries}
	mutations["direction predictor"] = cellKey(w, 100_000, s5, p)

	p2 := p
	p2.Mispredict = 6
	mutations["penalties"] = cellKey(w, 100_000, spec, p2)

	seen := map[string]string{base: "base"}
	for name, k := range mutations {
		if k == base {
			t.Errorf("changing %s did not change the cell key", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutations %s and %s alias to one key", name, prev)
		}
		seen[k] = name
	}
}

// TestInfoKeySeparateNamespace: per-program replay info and cells must
// never collide, and info keys must track their own inputs.
func TestInfoKeySeparateNamespace(t *testing.T) {
	w, spec := testCell()
	if infoKey(w, 100_000) == cellKey(w, 100_000, spec, metrics.Default()) {
		t.Error("info and cell key namespaces collide")
	}
	if infoKey(w, 100_000) == infoKey(w, 200_000) {
		t.Error("info key ignores the instruction budget")
	}
	if infoKey(w, 100_000) != infoKey(w, 100_000) {
		t.Error("info key not deterministic")
	}
}

// TestStoreInvalidationEndToEnd: a stored cell is served for the exact
// same configuration but re-simulated after the instruction budget
// changes.
func TestStoreInvalidationEndToEnd(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{Name: "one", Arms: []Arm{
		{Name: "1024 NLS-table", Spec: arch.NLSTable(1024), Caches: cache16KDirect()},
	}}
	cfg := Config{Insns: 40_000, Programs: []workload.Spec{workload.Li()},
		Penalties: metrics.Default()}

	rs, err := (&Executor{R: NewRunner(cfg), Store: store}).RunGrids(false, g)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Simulated != 1 || rs.Loaded != 0 {
		t.Fatalf("cold: simulated=%d loaded=%d", rs.Simulated, rs.Loaded)
	}

	rs, err = (&Executor{R: NewRunner(cfg), Store: store}).RunGrids(false, g)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Simulated != 0 || rs.Loaded != 1 {
		t.Fatalf("warm: simulated=%d loaded=%d", rs.Simulated, rs.Loaded)
	}

	bigger := cfg
	bigger.Insns = 60_000
	rs, err = (&Executor{R: NewRunner(bigger), Store: store}).RunGrids(false, g)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Simulated != 1 || rs.Loaded != 0 {
		t.Fatalf("changed insns: simulated=%d loaded=%d, want re-simulation", rs.Simulated, rs.Loaded)
	}
}
