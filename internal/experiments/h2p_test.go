package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestH2PFigure exercises the probed h2p path end to end on a small run:
// one ranking per program, both arms labeled, and the tentpole's acceptance
// criterion — the equal-cost TAGE-lite arm recovers dir-wrong penalties the
// gshare arm pays — holding through the executor, not just the two-engine
// golden pair in package obs.
func TestH2PFigure(t *testing.T) {
	cfg := DefaultConfig(120_000)
	cfg.Programs = []workload.Spec{workload.Espresso(), workload.Li()}
	x := &Executor{R: NewRunner(cfg)}

	f, ok := FigureByName("h2p")
	if !ok {
		t.Fatal("h2p figure not registered")
	}
	if f.Probed == nil {
		t.Fatal("h2p figure is not Probed")
	}
	text, data, err := f.Probed(x)
	if err != nil {
		t.Fatal(err)
	}
	ranks, ok := data.([]obs.H2PRanking)
	if !ok {
		t.Fatalf("h2p data is %T, want []obs.H2PRanking", data)
	}
	if len(ranks) != len(cfg.Programs) {
		t.Fatalf("got %d rankings for %d programs", len(ranks), len(cfg.Programs))
	}
	var recoveredSomewhere bool
	for i, k := range ranks {
		if k.Program != cfg.Programs[i].Name {
			t.Errorf("ranking %d labeled %q, program is %q", i, k.Program, cfg.Programs[i].Name)
		}
		if !strings.Contains(k.BaseArch, "gshare") || !strings.Contains(k.AltArch, "tage") {
			t.Errorf("ranking %d arms %q vs %q; want gshare base, tage alt", i, k.BaseArch, k.AltArch)
		}
		if k.BaseTotal == 0 {
			t.Errorf("%s: gshare pays no dir-wrong penalties; the comparison is vacuous", k.Program)
		}
		if len(k.Rows) > H2PTopN {
			t.Errorf("%s: %d rows, cap is %d", k.Program, len(k.Rows), H2PTopN)
		}
		if k.AltTotal < k.BaseTotal {
			recoveredSomewhere = true
		}
	}
	if !recoveredSomewhere {
		t.Error("TAGE-lite recovered nothing on any program")
	}
	for _, want := range []string{"H2P:", "recovered", "base-dw"} {
		if !strings.Contains(text, want) {
			t.Errorf("figure text missing %q:\n%s", want, text)
		}
	}
}
