package trace

import (
	"testing"

	"repro/internal/isa"
)

// syntheticTrace builds an n-record trace with varied kinds and addresses
// (chaining is irrelevant to the chunked representation).
func syntheticTrace(n int) *Trace {
	tr := &Trace{Name: "synthetic", StaticCondSites: 7}
	for i := 0; i < n; i++ {
		kind := isa.NonBranch
		taken := false
		if i%5 == 1 {
			kind, taken = isa.CondBranch, i%2 == 0
		}
		tr.Append(Record{
			PC:     isa.Addr(0x1000 + 4*i),
			Target: isa.Addr(0x9000 + 4*(i%13)),
			Kind:   kind,
			Taken:  taken,
		})
	}
	return tr
}

func TestChunkShapes(t *testing.T) {
	cases := []struct {
		n, size    int
		wantChunks int
	}{
		{0, 4, 0},
		{3, 4, 1},   // shorter than one chunk
		{8, 4, 2},   // exact multiple
		{9, 4, 3},   // one-record tail
		{10, 0, 1},  // size <= 0 falls back to the default
		{10, -1, 1}, // size <= 0 falls back to the default
	}
	for _, c := range cases {
		tr := syntheticTrace(c.n)
		ch := Chunk(tr, c.size)
		if ch.Len() != c.n || ch.NumChunks() != c.wantChunks {
			t.Errorf("Chunk(%d recs, size %d): Len=%d NumChunks=%d, want %d/%d",
				c.n, c.size, ch.Len(), ch.NumChunks(), c.n, c.wantChunks)
		}
		if ch.Name != tr.Name || ch.StaticCondSites != tr.StaticCondSites {
			t.Errorf("metadata lost: %q/%d", ch.Name, ch.StaticCondSites)
		}
		total := 0
		for i := 0; i < ch.NumChunks(); i++ {
			blk := ch.Block(i)
			if i < ch.NumChunks()-1 && c.size > 0 && len(blk) != c.size {
				t.Errorf("non-final block %d has %d records, want %d", i, len(blk), c.size)
			}
			for j, r := range blk {
				if r != tr.Records[total+j] {
					t.Fatalf("block %d record %d differs", i, j)
				}
			}
			total += len(blk)
		}
		if total != c.n {
			t.Errorf("blocks hold %d records, want %d", total, c.n)
		}
	}
}

func TestChunkFlattenRoundTrip(t *testing.T) {
	tr := syntheticTrace(101)
	flat := Chunk(tr, 16).Flatten()
	if flat.Name != tr.Name || flat.StaticCondSites != tr.StaticCondSites {
		t.Fatal("metadata lost in round trip")
	}
	if len(flat.Records) != len(tr.Records) {
		t.Fatalf("round trip has %d records, want %d", len(flat.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if flat.Records[i] != tr.Records[i] {
			t.Fatalf("record %d changed in round trip", i)
		}
	}
}

func TestChunkIterAsSource(t *testing.T) {
	tr := syntheticTrace(50)
	it := Chunk(tr, 8).Chunks()
	// Drain through the Source view in awkward strides so the cursor
	// crosses chunk boundaries mid-Run.
	var got []Record
	for _, stride := range []int{5, 11, 1, 40} {
		it.Run(stride, func(r Record) { got = append(got, r) })
	}
	if len(got) != 50 {
		t.Fatalf("drained %d records, want 50", len(got))
	}
	for i := range got {
		if got[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if it.Run(1, func(Record) {}) != 0 || len(it.NextChunk()) != 0 {
		t.Fatal("exhausted iterator yielded more records")
	}

	// A partially Run iterator hands the remainder of its current block
	// to NextChunk before resuming whole blocks.
	it.Reset()
	it.Run(3, func(Record) {})
	blk := it.NextChunk()
	if len(blk) != 5 || blk[0] != tr.Records[3] {
		t.Fatalf("partial block: len=%d first=%v", len(blk), blk[0])
	}
	if blk2 := it.NextChunk(); len(blk2) != 8 || blk2[0] != tr.Records[8] {
		t.Fatalf("next block misaligned: len=%d", len(blk2))
	}
}

// checkRunLens verifies the RunLens contract for every block against a
// brute-force per-record scan: runs[i] records after i are non-branches in
// record i's lineBytes-aligned line, runs[i] is 0 for breaks, and the run
// stops at the first violating record (or the 255 cap, or block end).
func checkRunLens(t *testing.T, c *Chunked, lineBytes int) {
	t.Helper()
	mask := ^isa.Addr(lineBytes - 1)
	runs := c.RunLens(lineBytes)
	if len(runs) != c.NumChunks() {
		t.Fatalf("RunLens has %d blocks, want %d", len(runs), c.NumChunks())
	}
	for bi := 0; bi < c.NumChunks(); bi++ {
		blk, rn := c.Block(bi), runs[bi]
		if len(rn) != len(blk) {
			t.Fatalf("block %d annotation has %d entries, want %d", bi, len(rn), len(blk))
		}
		for i, r := range blk {
			want := 0
			if !r.IsBreak() {
				for j := i + 1; j < len(blk) && want < 255; j++ {
					if blk[j].Kind != isa.NonBranch || blk[j].PC&mask != r.PC&mask {
						break
					}
					want++
				}
			}
			if int(rn[i]) != want {
				t.Fatalf("block %d record %d (line %dB): run %d, want %d",
					bi, i, lineBytes, rn[i], want)
			}
		}
	}
}

func TestRunLens(t *testing.T) {
	tr := syntheticTrace(203) // 4-byte strided PCs, a cond branch every 5th
	for _, lineBytes := range []int{16, 32, 64} {
		checkRunLens(t, Chunk(tr, 17), lineBytes)
	}

	// Memoized: same line size returns the identical slice; iterators from
	// ChunksRuns annotate blocks with it.
	c := Chunk(tr, 17)
	r1, r2 := c.RunLens(32), c.RunLens(32)
	if &r1[0] != &r2[0] {
		t.Fatal("RunLens recomputed instead of memoizing")
	}
	it := c.ChunksRuns(32)
	if it.RunLineBytes() != 32 {
		t.Fatalf("RunLineBytes = %d, want 32", it.RunLineBytes())
	}
	for bi := 0; ; bi++ {
		recs, runs := it.NextChunkRuns()
		if len(recs) == 0 {
			break
		}
		if len(runs) != len(recs) {
			t.Fatalf("block %d: runs len %d, recs len %d", bi, len(runs), len(recs))
		}
	}

	// A plain Chunks iterator satisfies the same interface but never
	// annotates (RunLineBytes 0, nil runs).
	plain := c.Chunks()
	if plain.RunLineBytes() != 0 {
		t.Fatal("plain iterator claims an annotation line size")
	}
	if recs, runs := plain.NextChunkRuns(); len(recs) == 0 || runs != nil {
		t.Fatal("plain iterator yielded an annotation")
	}

	// Mid-block Source consumption: the remainder carries the annotation
	// suffix, still aligned with its records.
	it2 := c.ChunksRuns(32)
	it2.Run(5, func(Record) {})
	recs, runs := it2.NextChunkRuns()
	if len(recs) != 12 || len(runs) != 12 {
		t.Fatalf("partial block: %d recs, %d runs, want 12/12", len(recs), len(runs))
	}
	if runs[0] != c.RunLens(32)[0][5] {
		t.Fatal("annotation suffix misaligned with record suffix")
	}
}

func TestSourceChunksMatchesSource(t *testing.T) {
	tr := syntheticTrace(100)
	for _, total := range []int{0, 1, 7, 99, 100, 250} {
		src := NewSourceChunks(&SliceSource{Records: tr.Records}, total, 8)
		var got []Record
		for blk := src.NextChunk(); len(blk) > 0; blk = src.NextChunk() {
			got = append(got, blk...)
		}
		want := total
		if want > len(tr.Records) {
			want = len(tr.Records) // underlying source exhausts early
		}
		if len(got) != want {
			t.Fatalf("total=%d: drained %d records, want %d", total, len(got), want)
		}
		for i := range got {
			if got[i] != tr.Records[i] {
				t.Fatalf("total=%d: record %d differs", total, i)
			}
		}
	}
}
