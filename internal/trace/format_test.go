package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

func roundtrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestRoundtripBasic(t *testing.T) {
	tr := statTrace()
	tr.StaticCondSites = 1234
	got := roundtrip(t, tr)
	if got.Name != tr.Name || got.StaticCondSites != 1234 {
		t.Errorf("metadata lost: %q %d", got.Name, got.StaticCondSites)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count %d != %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: got %+v want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestRoundtripEmpty(t *testing.T) {
	got := roundtrip(t, &Trace{Name: ""})
	if got.Len() != 0 {
		t.Errorf("empty trace read back %d records", got.Len())
	}
}

// TestRoundtripRandomChains is a property test: random well-formed chained
// traces survive the delta encoding exactly.
func TestRoundtripRandomChains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		tr := &Trace{Name: "prop"}
		pc := isa.Addr(0x1000)
		for i := 0; i < 200; i++ {
			kind := isa.Kind(rng.Intn(int(isa.NumKinds)))
			r := Record{PC: pc, Kind: kind}
			switch {
			case kind == isa.NonBranch:
			case kind == isa.CondBranch && rng.Intn(2) == 0:
				// not taken
			default:
				r.Taken = true
				r.Target = isa.Addr(uint32(0x1000+4*rng.Intn(1<<16)) &^ 3)
			}
			tr.Append(r)
			pc = r.Next()
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("generator made invalid trace: %v", err)
		}
		got := roundtrip(t, tr)
		if err := got.Validate(); err != nil {
			t.Fatalf("roundtripped trace invalid: %v", err)
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				t.Fatalf("trial %d record %d mismatch", trial, i)
			}
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("XXXXjunkjunk")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, statTrace()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{3, 5, len(b) / 2, len(b) - 1} {
		if _, err := Read(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCompression(t *testing.T) {
	// A mostly sequential trace should encode in much less than the
	// 12+ bytes per in-memory record.
	tr := &Trace{Name: "seq"}
	pc := isa.Addr(0x1000)
	for i := 0; i < 10000; i++ {
		tr.Append(Record{PC: pc, Kind: isa.NonBranch})
		pc = pc.Next()
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / 10000; perRec > 1.5 {
		t.Errorf("sequential trace encodes at %.2f bytes/record, want ~1", perRec)
	}
}
