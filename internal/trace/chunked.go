package trace

import (
	"sync"

	"repro/internal/isa"
)

// This file adds the chunked trace representation behind the shared-replay
// sweep scheduler (DESIGN.md §7). A trace is split into fixed-size blocks
// of records so the executor and the replay machinery can hand simulators
// one block at a time: a sweep then needs O(chunk) live memory per stream
// instead of a fully materialized record slice, and a block that is hot in
// cache can be fanned out to many engines before the next one is touched.

// DefaultChunkRecords is the default records-per-chunk. At 16 bytes per
// Record a chunk is 64KB — small enough to stay resident in a per-core L2
// while every engine of a sweep cell replays it, large enough that the
// per-chunk dispatch overhead (one channel send and one dynamic call per
// engine) is amortized over thousands of records.
const DefaultChunkRecords = 4096

// A ChunkSource yields consecutive trace records one block at a time. It is
// the streaming counterpart of Source: the records of the successive
// non-empty blocks, concatenated, are the trace.
type ChunkSource interface {
	// NextChunk returns the next block of records, or an empty slice
	// when the source is exhausted. The returned slice must not be
	// modified and remains valid after further NextChunk calls, so
	// blocks can be handed to concurrent consumers without copying.
	NextChunk() []Record
}

// A RunChunkSource additionally annotates each block with its
// sequential-fetch run lengths, computed once and shared by every consumer
// of the block (the broadcast replay hands one annotation to all engines of
// a sweep cell instead of each engine re-deriving it).
type RunChunkSource interface {
	ChunkSource
	// NextChunkRuns is NextChunk plus the block's run annotation: runs,
	// when non-nil, is parallel to recs and runs[i] counts the records
	// after i that are non-branches lying in the same RunLineBytes-sized
	// aligned line as record i (0 whenever record i is a branch). runs
	// may be nil for a block the source cannot annotate; consumers then
	// fall back to scanning.
	NextChunkRuns() (recs []Record, runs []uint8)
	// RunLineBytes is the aligned line size the annotations assume.
	RunLineBytes() int
}

// Chunked is an instruction trace stored as fixed-size blocks of records.
// All blocks hold exactly chunkSize records except the last, which may be
// shorter.
type Chunked struct {
	Name string
	// StaticCondSites mirrors Trace.StaticCondSites.
	StaticCondSites int

	chunkSize int
	blocks    [][]Record
	n         int

	// Memoized per-block run annotations, keyed by line size (RunLens).
	runsMu sync.Mutex
	runsBy map[int][][]uint8
}

// Chunk splits a flat trace into blocks of chunkSize records without
// copying: the blocks alias the trace's record slice. chunkSize <= 0
// selects DefaultChunkRecords.
func Chunk(t *Trace, chunkSize int) *Chunked {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkRecords
	}
	recs := t.Records
	c := &Chunked{
		Name:            t.Name,
		StaticCondSites: t.StaticCondSites,
		chunkSize:       chunkSize,
		blocks:          make([][]Record, 0, (len(recs)+chunkSize-1)/chunkSize),
		n:               len(recs),
	}
	for len(recs) > 0 {
		k := chunkSize
		if k > len(recs) {
			k = len(recs)
		}
		c.blocks = append(c.blocks, recs[:k:k])
		recs = recs[k:]
	}
	return c
}

// Len returns the number of records.
func (c *Chunked) Len() int { return c.n }

// NumChunks returns the number of blocks.
func (c *Chunked) NumChunks() int { return len(c.blocks) }

// ChunkSize returns the nominal records-per-block.
func (c *Chunked) ChunkSize() int { return c.chunkSize }

// Block returns the i-th block. The caller must not modify it.
func (c *Chunked) Block(i int) []Record { return c.blocks[i] }

// Flatten copies the blocks back into a flat trace.
func (c *Chunked) Flatten() *Trace {
	t := &Trace{
		Name:            c.Name,
		StaticCondSites: c.StaticCondSites,
		Records:         make([]Record, 0, c.n),
	}
	for _, blk := range c.blocks {
		t.Records = append(t.Records, blk...)
	}
	return t
}

// RunLens returns the per-block run annotations for lineBytes-sized cache
// lines, computing them once per line size and memoizing the result (safe
// for concurrent callers). For block b, RunLens()[b][i] counts the records
// immediately after record i that are non-branches lying in the same
// lineBytes-aligned line as record i — i.e. the records a replay may batch
// into one LRU-refreshing cache access after stepping record i — and is 0
// whenever record i is a break. Runs never cross block boundaries and are
// capped at 255 (a run longer than a uint8 simply continues under a new
// leader, which is still a pure sequential fetch).
//
// The annotation depends only on the records and the line size, so one
// computation is shared by every engine whose i-cache uses lineBytes lines:
// this is what lets a broadcast sweep scan each chunk's run structure once
// instead of once per engine. lineBytes must be a power of two.
func (c *Chunked) RunLens(lineBytes int) [][]uint8 {
	c.runsMu.Lock()
	defer c.runsMu.Unlock()
	if r, ok := c.runsBy[lineBytes]; ok {
		return r
	}
	mask := ^isa.Addr(lineBytes - 1)
	all := make([][]uint8, len(c.blocks))
	for bi, blk := range c.blocks {
		runs := make([]uint8, len(blk))
		for i := len(blk) - 2; i >= 0; i-- {
			r := blk[i]
			if r.IsBreak() {
				continue
			}
			nxt := blk[i+1]
			if nxt.Kind != isa.NonBranch || nxt.PC&mask != r.PC&mask {
				continue
			}
			if n := runs[i+1]; n < 255 {
				runs[i] = n + 1
			} else {
				runs[i] = 255
			}
		}
		all[bi] = runs
	}
	if c.runsBy == nil {
		c.runsBy = make(map[int][][]uint8, 1)
	}
	c.runsBy[lineBytes] = all
	return all
}

// Chunks returns a fresh iterator over the blocks. The iterator implements
// both ChunkSource and Source, so a chunked trace can drive anything a flat
// trace can.
func (c *Chunked) Chunks() *ChunkIter { return &ChunkIter{c: c} }

// ChunksRuns returns a fresh iterator whose NextChunkRuns annotates each
// block with the trace's memoized RunLens for lineBytes-sized cache lines,
// making the iterator a useful RunChunkSource (a plain Chunks iterator also
// satisfies the interface but always yields nil runs).
func (c *Chunked) ChunksRuns(lineBytes int) *ChunkIter {
	return &ChunkIter{c: c, runs: c.RunLens(lineBytes), lineBytes: lineBytes}
}

// ChunkIter iterates a Chunked trace. It implements ChunkSource (block at a
// time), RunChunkSource (annotated blocks, when built by ChunksRuns) and
// Source (record at a time); the views share one cursor.
type ChunkIter struct {
	c         *Chunked
	runs      [][]uint8 // per-block annotations; nil unless built by ChunksRuns
	lineBytes int
	block     int
	off       int // record offset within the current block (Source view only)
}

// NextChunk implements ChunkSource. A block partially consumed through Run
// is finished first (its remaining records are returned as one short
// chunk).
func (it *ChunkIter) NextChunk() []Record {
	if it.block >= len(it.c.blocks) {
		return nil
	}
	blk := it.c.blocks[it.block][it.off:]
	it.block++
	it.off = 0
	return blk
}

// Run implements Source: it emits up to n records from the cursor.
func (it *ChunkIter) Run(n int, emit func(Record)) int {
	count := 0
	for count < n && it.block < len(it.c.blocks) {
		blk := it.c.blocks[it.block]
		for it.off < len(blk) && count < n {
			emit(blk[it.off])
			it.off++
			count++
		}
		if it.off == len(blk) {
			it.block++
			it.off = 0
		}
	}
	return count
}

// NextChunkRuns implements RunChunkSource. runs is nil when the iterator
// was built by Chunks rather than ChunksRuns. A block partially consumed
// through Run yields its remaining records with the matching annotation
// suffix (each record's run count is independent of the records before it,
// so the suffix annotation stays valid).
func (it *ChunkIter) NextChunkRuns() (recs []Record, runs []uint8) {
	if it.block >= len(it.c.blocks) {
		return nil, nil
	}
	recs = it.c.blocks[it.block][it.off:]
	if it.runs != nil {
		runs = it.runs[it.block][it.off:]
	}
	it.block++
	it.off = 0
	return recs, runs
}

// RunLineBytes implements RunChunkSource; it is 0 for an iterator built by
// Chunks (whose NextChunkRuns never annotates).
func (it *ChunkIter) RunLineBytes() int { return it.lineBytes }

// Reset rewinds the iterator to the first record.
func (it *ChunkIter) Reset() { it.block, it.off = 0, 0 }

// SourceChunks adapts any Source (for example an exec.Executor walking a
// synthetic program) into a ChunkSource bounded to a total record budget.
// Each NextChunk call draws up to chunkSize records into a freshly
// allocated block, so at any moment only the blocks still referenced by
// consumers are live: a streamed 2M-record run needs O(chunk) memory, not
// O(trace).
type SourceChunks struct {
	src       Source
	remaining int
	chunkSize int
}

// NewSourceChunks bounds src to total records in blocks of chunkSize
// (<= 0 selects DefaultChunkRecords).
func NewSourceChunks(src Source, total, chunkSize int) *SourceChunks {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkRecords
	}
	return &SourceChunks{src: src, remaining: total, chunkSize: chunkSize}
}

// NextChunk implements ChunkSource.
func (s *SourceChunks) NextChunk() []Record {
	if s.remaining <= 0 {
		return nil
	}
	k := s.chunkSize
	if k > s.remaining {
		k = s.remaining
	}
	blk := make([]Record, 0, k)
	got := s.src.Run(k, func(r Record) { blk = append(blk, r) })
	s.remaining -= k
	if got == 0 {
		s.remaining = 0 // source exhausted early
		return nil
	}
	return blk
}
