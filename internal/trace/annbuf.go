package trace

import "sync"

// Chunk-annotation buffer pool. The broadcast replay annotates each chunk
// with small per-record byte streams — the memoized RunLens runs are one
// such annotation, owned by the trace; the per-geometry access annotations
// of the shared fetch oracle (cache.AccessAnnotations) are another, but
// those are transient: one live buffer per geometry group per in-flight
// chunk, not one per (trace, geometry). Pooling them here keeps a sweep's
// steady-state allocation independent of how many chunks it replays.
var annBufPool = sync.Pool{
	New: func() any {
		b := make([]uint8, 0, DefaultChunkRecords)
		return &b
	},
}

// GetAnnBuf returns a length-n annotation buffer from the pool, growing it
// if the pooled capacity is short (chunks longer than DefaultChunkRecords
// are legal, just unusual). Contents are unspecified.
func GetAnnBuf(n int) []uint8 {
	b := *annBufPool.Get().(*[]uint8)
	if cap(b) < n {
		b = make([]uint8, n)
	}
	return b[:n]
}

// PutAnnBuf recycles a buffer obtained from GetAnnBuf. Nil (or foreign,
// zero-capacity) slices are ignored, so callers can release
// unconditionally.
func PutAnnBuf(b []uint8) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	annBufPool.Put(&b)
}

// Event-list buffer pool, the uint32 sibling of the annotation pool: the
// shared fetch oracle emits one packed replay event per fill/break position
// of a chunk (cache.AccessAnnotations.Events), and those lists recycle
// through here with the same lifetime as their slot buffers.
var evtBufPool = sync.Pool{
	New: func() any {
		b := make([]uint32, 0, DefaultChunkRecords/2)
		return &b
	},
}

// GetEvtBuf returns an empty event buffer with capacity for at least n
// events, from the pool.
func GetEvtBuf(n int) []uint32 {
	b := *evtBufPool.Get().(*[]uint32)
	if cap(b) < n {
		b = make([]uint32, 0, n)
	}
	return b[:0]
}

// PutEvtBuf recycles a buffer obtained from GetEvtBuf.
func PutEvtBuf(b []uint32) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	evtBufPool.Put(&b)
}
