//go:build unix

package trace

import (
	"os"
	"syscall"
)

// corpusMmap maps the file read-only. A failure (empty file, exotic
// filesystem, size overflow) reports ok=false and the caller falls back to
// a sequential read.
func corpusMmap(f *os.File) (data []byte, ok bool) {
	fi, err := f.Stat()
	if err != nil {
		return nil, false
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, false
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return data, true
}

func corpusUnmap(data []byte) error { return syscall.Munmap(data) }
