package trace

import (
	"testing"

	"repro/internal/isa"
)

func rec(pc uint32, kind isa.Kind, taken bool, target uint32) Record {
	return Record{PC: isa.Addr(pc), Kind: kind, Taken: taken, Target: isa.Addr(target)}
}

func TestRecordNext(t *testing.T) {
	r := rec(0x1000, isa.CondBranch, false, 0x2000)
	if r.Next() != 0x1004 {
		t.Errorf("not-taken Next() = %v", r.Next())
	}
	r.Taken = true
	if r.Next() != 0x2000 {
		t.Errorf("taken Next() = %v", r.Next())
	}
}

func TestRecordValidate(t *testing.T) {
	cases := []struct {
		name string
		r    Record
		ok   bool
	}{
		{"plain", rec(0x1000, isa.NonBranch, false, 0), true},
		{"taken cond", rec(0x1000, isa.CondBranch, true, 0x2000), true},
		{"not-taken cond", rec(0x1000, isa.CondBranch, false, 0), true},
		{"call", rec(0x1000, isa.Call, true, 0x4000), true},
		{"invalid kind", Record{PC: 0x1000, Kind: isa.Kind(99)}, false},
		{"misaligned pc", rec(0x1001, isa.NonBranch, false, 0), false},
		{"taken non-branch", rec(0x1000, isa.NonBranch, true, 0x2000), false},
		{"not-taken uncond", rec(0x1000, isa.UncondBranch, false, 0), false},
		{"not-taken return", rec(0x1000, isa.Return, false, 0), false},
		{"misaligned target", rec(0x1000, isa.UncondBranch, true, 0x2001), false},
	}
	for _, c := range cases {
		err := c.r.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestTraceValidateChaining(t *testing.T) {
	tr := &Trace{Name: "t"}
	tr.Append(rec(0x1000, isa.NonBranch, false, 0))
	tr.Append(rec(0x1004, isa.UncondBranch, true, 0x2000))
	tr.Append(rec(0x2000, isa.NonBranch, false, 0))
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	tr.Append(rec(0x9000, isa.NonBranch, false, 0)) // breaks the chain
	if err := tr.Validate(); err == nil {
		t.Fatal("broken chain accepted")
	}
}

func TestSliceSource(t *testing.T) {
	src := &SliceSource{Records: []Record{
		rec(0x1000, isa.NonBranch, false, 0),
		rec(0x1004, isa.NonBranch, false, 0),
		rec(0x1008, isa.NonBranch, false, 0),
	}}
	var got []Record
	n := src.Run(2, func(r Record) { got = append(got, r) })
	if n != 2 || len(got) != 2 {
		t.Fatalf("first Run emitted %d", n)
	}
	n = src.Run(5, func(r Record) { got = append(got, r) })
	if n != 1 || len(got) != 3 {
		t.Fatalf("second Run emitted %d (total %d)", n, len(got))
	}
	src.Reset()
	if n := src.Run(10, func(Record) {}); n != 3 {
		t.Fatalf("after Reset Run emitted %d", n)
	}
}

func TestCollect(t *testing.T) {
	src := &SliceSource{Records: make([]Record, 10)}
	for i := range src.Records {
		src.Records[i] = rec(uint32(0x1000+4*i), isa.NonBranch, false, 0)
	}
	tr := Collect("c", src, 7)
	if tr.Len() != 7 || tr.Name != "c" {
		t.Fatalf("Collect produced %d records, name %q", tr.Len(), tr.Name)
	}
}
