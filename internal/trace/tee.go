package trace

// TeeChunks wraps a chunk source so every drawn block is also handed to
// observe, in order, before the consumer sees it. This is how the grid
// executor derives per-program statistics (StatsCollector, fetch-block
// counts) from the same single trace read that drives the broadcast replay:
// the broadcaster draws blocks through the tee, and the observer runs on
// the drawing goroutine, serialized with the draws.
//
// When src also implements RunChunkSource, the returned source does too,
// forwarding the run annotations untouched — wrapping never downgrades the
// broadcaster's shared-annotation fast path.
func TeeChunks(src ChunkSource, observe func([]Record)) ChunkSource {
	t := teeChunks{src: src, observe: observe}
	if rs, ok := src.(RunChunkSource); ok {
		return &teeRunChunks{teeChunks: t, rs: rs}
	}
	return &t
}

type teeChunks struct {
	src     ChunkSource
	observe func([]Record)
}

// NextChunk implements ChunkSource.
func (t *teeChunks) NextChunk() []Record {
	blk := t.src.NextChunk()
	if len(blk) > 0 {
		t.observe(blk)
	}
	return blk
}

type teeRunChunks struct {
	teeChunks
	rs RunChunkSource
}

// NextChunkRuns implements RunChunkSource.
func (t *teeRunChunks) NextChunkRuns() (recs []Record, runs []uint8) {
	recs, runs = t.rs.NextChunkRuns()
	if len(recs) > 0 {
		t.observe(recs)
	}
	return recs, runs
}

// RunLineBytes implements RunChunkSource.
func (t *teeRunChunks) RunLineBytes() int { return t.rs.RunLineBytes() }
