package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Stats reproduces the "Measured attributes of the traced programs" columns
// of Table 1 in the paper for a trace.
type Stats struct {
	Name string
	// Instructions is the total number of instructions traced.
	Instructions uint64
	// Breaks is the number of executed control-transfer instructions.
	Breaks uint64
	// BreaksByKind counts executed breaks per kind.
	BreaksByKind [isa.NumKinds]uint64
	// CondTaken is the number of taken executed conditional branches.
	CondTaken uint64
	// Q50, Q90, Q99, Q100 are the numbers of distinct conditional-branch
	// sites that account for 50/90/99/100% of executed conditional
	// branches, ordered by execution frequency (the Q columns of Table 1).
	Q50, Q90, Q99, Q100 int
	// StaticCondSites is the number of conditional-branch sites in the
	// program, including never-executed ones, when the trace carries that
	// metadata; otherwise it equals Q100.
	StaticCondSites int
}

// PctBreaks returns the percentage of instructions that are breaks
// (the "%Breaks" column).
func (s *Stats) PctBreaks() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 100 * float64(s.Breaks) / float64(s.Instructions)
}

// PctCondTaken returns the percentage of executed conditional branches that
// were taken (the "%Taken" column).
func (s *Stats) PctCondTaken() float64 {
	c := s.BreaksByKind[isa.CondBranch]
	if c == 0 {
		return 0
	}
	return 100 * float64(s.CondTaken) / float64(c)
}

// PctOfBreaks returns the percentage of breaks with the given kind (the
// %CBr / %IJ / %Br / %Call / %Ret columns).
func (s *Stats) PctOfBreaks(k isa.Kind) float64 {
	if s.Breaks == 0 {
		return 0
	}
	return 100 * float64(s.BreaksByKind[k]) / float64(s.Breaks)
}

// ComputeStats scans a trace and produces its Table 1 row. It is the
// one-shot form of StatsCollector: feeding the collector the same records
// block by block yields an identical result.
func ComputeStats(t *Trace) *Stats {
	c := NewStatsCollector(t.Name, t.StaticCondSites)
	c.Add(t.Records)
	return c.Stats()
}

// quantileSites returns how many of the most frequently executed sites are
// needed to cover 50/90/99/100% of all executions.
func quantileSites(counts map[isa.Addr]uint64) (q50, q90, q99, q100 int) {
	if len(counts) == 0 {
		return 0, 0, 0, 0
	}
	freqs := make([]uint64, 0, len(counts))
	var total uint64
	for _, c := range counts {
		freqs = append(freqs, c)
		total += c
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	var cum uint64
	for i, c := range freqs {
		cum += c
		n := i + 1
		if q50 == 0 && 100*cum >= 50*total {
			q50 = n
		}
		if q90 == 0 && 100*cum >= 90*total {
			q90 = n
		}
		if q99 == 0 && 100*cum >= 99*total {
			q99 = n
		}
	}
	q100 = len(freqs)
	return q50, q90, q99, q100
}

// TableRow renders the stats as one row in the format of the paper's
// Table 1.
func (s *Stats) TableRow() string {
	return fmt.Sprintf("%-10s %13d %7.2f %6d %6d %6d %7d %7d %8.2f %7.2f %5.2f %5.2f %6.2f %5.2f",
		s.Name, s.Instructions, s.PctBreaks(),
		s.Q50, s.Q90, s.Q99, s.Q100, s.StaticCondSites,
		s.PctCondTaken(),
		s.PctOfBreaks(isa.CondBranch), s.PctOfBreaks(isa.IndirectJump),
		s.PctOfBreaks(isa.UncondBranch), s.PctOfBreaks(isa.Call),
		s.PctOfBreaks(isa.Return))
}

// TableHeader returns the header line matching TableRow's columns.
func TableHeader() string {
	return fmt.Sprintf("%-10s %13s %7s %6s %6s %6s %7s %7s %8s %7s %5s %5s %6s %5s",
		"Program", "#Insns", "%Brk", "Q-50", "Q-90", "Q-99", "Q-100",
		"Static", "%Taken", "%CBr", "%IJ", "%Br", "%Call", "%Ret")
}

// FormatTable renders a full Table 1 for a set of stats rows.
func FormatTable(rows []*Stats) string {
	var b strings.Builder
	b.WriteString(TableHeader())
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(r.TableRow())
		b.WriteByte('\n')
	}
	return b.String()
}
