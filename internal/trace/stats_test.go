package trace

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// statTrace builds a hand-constructed trace with known statistics: 10
// instructions, 4 breaks (2 conds at distinct sites, 1 call, 1 return).
func statTrace() *Trace {
	tr := &Trace{Name: "hand"}
	tr.Append(rec(0x1000, isa.NonBranch, false, 0))
	tr.Append(rec(0x1004, isa.CondBranch, true, 0x2000)) // site A taken
	tr.Append(rec(0x2000, isa.NonBranch, false, 0))
	tr.Append(rec(0x2004, isa.Call, true, 0x3000))
	tr.Append(rec(0x3000, isa.NonBranch, false, 0))
	tr.Append(rec(0x3004, isa.Return, true, 0x2008))
	tr.Append(rec(0x2008, isa.CondBranch, false, 0)) // site B not taken
	tr.Append(rec(0x200c, isa.NonBranch, false, 0))
	tr.Append(rec(0x2010, isa.NonBranch, false, 0))
	tr.Append(rec(0x2014, isa.NonBranch, false, 0))
	return tr
}

func TestComputeStatsCounts(t *testing.T) {
	s := ComputeStats(statTrace())
	if s.Instructions != 10 {
		t.Errorf("Instructions = %d", s.Instructions)
	}
	if s.Breaks != 4 {
		t.Errorf("Breaks = %d", s.Breaks)
	}
	if got := s.PctBreaks(); got != 40 {
		t.Errorf("PctBreaks = %v", got)
	}
	if s.CondTaken != 1 || s.BreaksByKind[isa.CondBranch] != 2 {
		t.Errorf("cond counts: taken=%d total=%d", s.CondTaken, s.BreaksByKind[isa.CondBranch])
	}
	if got := s.PctCondTaken(); got != 50 {
		t.Errorf("PctCondTaken = %v", got)
	}
	if got := s.PctOfBreaks(isa.Call); got != 25 {
		t.Errorf("PctOfBreaks(call) = %v", got)
	}
}

func TestComputeStatsQuantiles(t *testing.T) {
	// Three cond sites with execution counts 60, 30, 10: Q50 needs 1
	// site, Q90 needs 2, Q99 and Q100 need all 3.
	tr := &Trace{Name: "q"}
	add := func(pc uint32, n int) {
		for i := 0; i < n; i++ {
			tr.Append(rec(pc, isa.CondBranch, true, pc)) // chaining unused here
		}
	}
	add(0x1000, 60)
	add(0x2000, 30)
	add(0x3000, 10)
	s := ComputeStats(tr)
	if s.Q50 != 1 || s.Q90 != 2 || s.Q99 != 3 || s.Q100 != 3 {
		t.Errorf("quantiles = %d/%d/%d/%d, want 1/2/3/3", s.Q50, s.Q90, s.Q99, s.Q100)
	}
}

func TestStaticSitesFallback(t *testing.T) {
	tr := statTrace()
	s := ComputeStats(tr)
	if s.StaticCondSites != 2 {
		t.Errorf("fallback static = %d, want Q100=2", s.StaticCondSites)
	}
	tr.StaticCondSites = 99
	s = ComputeStats(tr)
	if s.StaticCondSites != 99 {
		t.Errorf("explicit static = %d", s.StaticCondSites)
	}
}

func TestEmptyTraceStats(t *testing.T) {
	s := ComputeStats(&Trace{Name: "empty"})
	if s.PctBreaks() != 0 || s.PctCondTaken() != 0 || s.PctOfBreaks(isa.Call) != 0 {
		t.Error("empty trace produced nonzero percentages")
	}
	if s.Q50 != 0 || s.Q100 != 0 {
		t.Error("empty trace produced nonzero quantiles")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]*Stats{ComputeStats(statTrace())})
	if !strings.Contains(out, "hand") {
		t.Errorf("table missing program name:\n%s", out)
	}
	if !strings.HasPrefix(out, TableHeader()) {
		t.Error("table missing header")
	}
}
