package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// PayloadChunks is a streaming decoder over one corpus program's payload
// bytes: it decodes the NLST varint stream chunk by chunk instead of
// materializing the whole record slice, so a corpus-driven sweep touches
// the mapped file sequentially and keeps O(chunk) decoded state live.
// It implements ChunkSource.
type PayloadChunks struct {
	// Name and StaticCondSites mirror the payload's trace header.
	Name            string
	StaticCondSites int

	r         *bytes.Reader
	remaining uint64
	chunkSize int
	// Delta-decoder state carried across chunks.
	prevPCWord, prevNextWord uint32
	err                      error
	rec                      uint64 // records decoded, for error positions
}

// newPayloadDecoder validates the payload's NLST header and returns a
// decoder positioned at the first record.
func newPayloadDecoder(payload []byte, chunkSize int) (*PayloadChunks, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkRecords
	}
	r := bytes.NewReader(payload)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if string(magic[:]) != formatMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errBadFormat, magic)
	}
	ver, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errBadFormat, ver)
	}
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: name too long", errBadFormat)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	static, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	// count is untrusted, but it is never pre-allocated here: each chunk
	// allocates at most chunkSize records and a lying count fails with
	// EOF mid-decode.
	return &PayloadChunks{
		Name:            string(name),
		StaticCondSites: int(static),
		r:               r,
		remaining:       count,
		chunkSize:       chunkSize,
	}, nil
}

// Len returns the number of records the payload header declares.
func (p *PayloadChunks) Len() int { return int(p.remaining + p.rec) }

// Err reports the first decode error, if any; NextChunk returns nil both
// at clean exhaustion and on error.
func (p *PayloadChunks) Err() error { return p.err }

// NextChunk implements ChunkSource. Each chunk is freshly allocated and
// stays valid across further calls.
func (p *PayloadChunks) NextChunk() []Record {
	if p.err != nil || p.remaining == 0 {
		return nil
	}
	k := uint64(p.chunkSize)
	if k > p.remaining {
		k = p.remaining
	}
	recs := make([]Record, 0, k)
	for i := uint64(0); i < k; i++ {
		head, err := p.r.ReadByte()
		if err != nil {
			p.fail(fmt.Errorf("trace: record %d: %w", p.rec, err))
			return nil
		}
		kind := isa.Kind(head & 0x7)
		if !kind.Valid() {
			p.fail(fmt.Errorf("%w: record %d kind %d", errBadFormat, p.rec, kind))
			return nil
		}
		taken := head&(1<<3) != 0
		var pcWord uint32
		if head&(1<<4) != 0 {
			pcWord = p.prevNextWord
		} else {
			d, err := binary.ReadVarint(p.r)
			if err != nil {
				p.fail(fmt.Errorf("trace: record %d pc delta: %w", p.rec, err))
				return nil
			}
			pcWord = uint32(int64(p.prevPCWord) + d)
		}
		rec := Record{PC: isa.Addr(pcWord * isa.InstrBytes), Kind: kind, Taken: taken}
		if taken {
			d, err := binary.ReadVarint(p.r)
			if err != nil {
				p.fail(fmt.Errorf("trace: record %d target delta: %w", p.rec, err))
				return nil
			}
			rec.Target = isa.Addr(uint32(int64(pcWord)+d) * isa.InstrBytes)
		}
		recs = append(recs, rec)
		p.prevPCWord = pcWord
		p.prevNextWord = rec.Next().Word()
		p.rec++
	}
	p.remaining -= k
	return recs
}

func (p *PayloadChunks) fail(err error) {
	p.err = err
	p.remaining = 0
}
