package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

// FuzzRead exercises the binary trace parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-serialize to a byte stream
// that parses back to the same trace.
func FuzzRead(f *testing.F) {
	// Seed with valid encodings.
	var buf bytes.Buffer
	if err := Write(&buf, statTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := Write(&buf, &Trace{Name: "empty"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NLST"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-serialized trace failed to parse: %v", err)
		}
		if tr2.Name != tr.Name || len(tr2.Records) != len(tr.Records) {
			t.Fatal("roundtrip changed the trace")
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("record %d changed in roundtrip", i)
			}
		}
	})
}

// FuzzRecordValidate: Validate never panics on arbitrary records.
func FuzzRecordValidate(f *testing.F) {
	f.Add(uint32(0x1000), uint32(0x2000), uint8(1), true)
	f.Fuzz(func(t *testing.T, pc, target uint32, kind uint8, taken bool) {
		r := Record{PC: isa.Addr(pc), Target: isa.Addr(target), Kind: isa.Kind(kind), Taken: taken}
		_ = r.Validate()
		if r.Validate() == nil {
			// Valid records have computable successors.
			_ = r.Next()
		}
	})
}
