package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

// FuzzRead exercises the binary trace parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-serialize to a byte stream
// that parses back to the same trace.
func FuzzRead(f *testing.F) {
	// Seed with valid encodings.
	var buf bytes.Buffer
	if err := Write(&buf, statTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := Write(&buf, &Trace{Name: "empty"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NLST"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-serialized trace failed to parse: %v", err)
		}
		if tr2.Name != tr.Name || len(tr2.Records) != len(tr.Records) {
			t.Fatal("roundtrip changed the trace")
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("record %d changed in roundtrip", i)
			}
		}
	})
}

// FuzzChunked round-trips arbitrary parsed traces through the chunked
// representation at arbitrary chunk sizes: chunked↔flat conversion and the
// chunk iterator (in both its ChunkSource and Source views) must reproduce
// the records exactly, including records straddling chunk boundaries.
func FuzzChunked(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, statTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), uint16(1))
	f.Add(buf.Bytes(), uint16(3)) // 10 records: boundary mid-trace + short tail
	f.Add(buf.Bytes(), uint16(5)) // exact multiple of the record count
	f.Add(buf.Bytes(), uint16(0)) // default chunk size
	f.Add([]byte{}, uint16(7))

	f.Fuzz(func(t *testing.T, data []byte, chunkSize uint16) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		c := Chunk(tr, int(chunkSize))
		if c.Len() != len(tr.Records) {
			t.Fatalf("Chunk dropped records: %d != %d", c.Len(), len(tr.Records))
		}

		// Flat view.
		flat := c.Flatten()
		if flat.Name != tr.Name || len(flat.Records) != len(tr.Records) {
			t.Fatal("Flatten changed the trace")
		}
		for i := range tr.Records {
			if flat.Records[i] != tr.Records[i] {
				t.Fatalf("Flatten changed record %d", i)
			}
		}

		// ChunkSource view: concatenated blocks are the trace, and
		// every block except the last is exactly chunkSize long.
		it := c.Chunks()
		i := 0
		for blk := it.NextChunk(); len(blk) > 0; blk = it.NextChunk() {
			for _, r := range blk {
				if r != tr.Records[i] {
					t.Fatalf("chunk iterator changed record %d", i)
				}
				i++
			}
			if i < len(tr.Records) && chunkSize > 0 && len(blk) != int(chunkSize) {
				t.Fatalf("non-final block has %d records, want %d", len(blk), chunkSize)
			}
		}
		if i != len(tr.Records) {
			t.Fatalf("chunk iterator yielded %d records, want %d", i, len(tr.Records))
		}

		// Source view through the same iterator type.
		i = 0
		c.Chunks().Run(len(tr.Records)+1, func(r Record) {
			if r != tr.Records[i] {
				t.Fatalf("Run view changed record %d", i)
			}
			i++
		})
		if i != len(tr.Records) {
			t.Fatalf("Run view yielded %d records, want %d", i, len(tr.Records))
		}

		// Run annotations: every entry must satisfy the RunLens contract
		// (breaks annotate 0; otherwise the count of following same-line
		// non-branches, capped at 255 and stopping at the block edge).
		const lineBytes = 32
		mask := ^isa.Addr(lineBytes - 1)
		for bi, rn := range c.RunLens(lineBytes) {
			blk := c.Block(bi)
			if len(rn) != len(blk) {
				t.Fatalf("block %d annotation length %d, want %d", bi, len(rn), len(blk))
			}
			for i, r := range blk {
				want := 0
				if !r.IsBreak() {
					for j := i + 1; j < len(blk) && want < 255; j++ {
						if blk[j].Kind != isa.NonBranch || blk[j].PC&mask != r.PC&mask {
							break
						}
						want++
					}
				}
				if int(rn[i]) != want {
					t.Fatalf("block %d record %d: run %d, want %d", bi, i, rn[i], want)
				}
			}
		}
	})
}

// FuzzRecordValidate: Validate never panics on arbitrary records.
func FuzzRecordValidate(f *testing.F) {
	f.Add(uint32(0x1000), uint32(0x2000), uint8(1), true)
	f.Fuzz(func(t *testing.T, pc, target uint32, kind uint8, taken bool) {
		r := Record{PC: isa.Addr(pc), Target: isa.Addr(target), Kind: isa.Kind(kind), Taken: taken}
		_ = r.Validate()
		if r.Validate() == nil {
			// Valid records have computable successors.
			_ = r.Next()
		}
	})
}
