// Package trace defines the instruction-trace representation consumed by the
// fetch-prediction simulators, the statistics pass that reproduces Table 1 of
// the paper, and a compact binary file format for saving and reloading
// traces.
//
// A trace is the sequence of *executed* instructions of a program run. Each
// record carries the instruction's address, its kind, whether it was taken
// (for breaks), and its taken-target address. The simulator is trace-driven,
// exactly as in the paper (§5, "We used trace driven simulation...").
package trace

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Record is one executed instruction.
//
// For a taken break, Target is the destination address. For a not-taken
// conditional branch and for non-branches, Target is ignored and the next
// instruction executes at PC+4.
type Record struct {
	PC     isa.Addr
	Target isa.Addr
	Kind   isa.Kind
	Taken  bool
}

// Next returns the address of the instruction that actually executes after
// this one.
func (r Record) Next() isa.Addr {
	if r.Taken {
		return r.Target
	}
	return r.PC.Next()
}

// IsBreak reports whether the record is a control-transfer instruction
// (taken or not).
func (r Record) IsBreak() bool { return r.Kind.IsBranch() }

// Validate reports structural problems with a record: misaligned addresses,
// invalid kinds, or taken flags inconsistent with the kind.
func (r Record) Validate() error {
	if !r.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", uint8(r.Kind))
	}
	if !r.PC.Aligned() {
		return fmt.Errorf("trace: misaligned PC %s", r.PC)
	}
	if r.Kind == isa.NonBranch && r.Taken {
		return errors.New("trace: non-branch marked taken")
	}
	if r.Kind.AlwaysTaken() && !r.Taken {
		return fmt.Errorf("trace: %s marked not taken", r.Kind)
	}
	if r.Taken && !r.Target.Aligned() {
		return fmt.Errorf("trace: misaligned target %s", r.Target)
	}
	return nil
}

// Trace is an in-memory instruction trace plus identifying metadata.
type Trace struct {
	Name string
	// StaticCondSites is the number of conditional-branch sites in the
	// *program* (the "Static" column of Table 1), including sites that
	// never executed. Zero when unknown; Stats then falls back to the
	// number of distinct executed sites.
	StaticCondSites int
	Records         []Record
}

// Len returns the number of instructions in the trace.
func (t *Trace) Len() int { return len(t.Records) }

// Append adds a record to the trace.
func (t *Trace) Append(r Record) { t.Records = append(t.Records, r) }

// Validate checks every record and the chaining invariant: each record's
// actual successor must be the next record's PC.
func (t *Trace) Validate() error {
	for i, r := range t.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		if i+1 < len(t.Records) && r.Next() != t.Records[i+1].PC {
			return fmt.Errorf("record %d: successor %s but next record at %s",
				i, r.Next(), t.Records[i+1].PC)
		}
	}
	return nil
}

// A Source yields trace records one at a time. Run returns the number of
// records produced, which may be less than n if the source is exhausted.
type Source interface {
	// Run invokes emit for up to n records.
	Run(n int, emit func(Record)) int
}

// Collect drains up to n records from a source into a new Trace. A
// non-positive n yields an empty trace (matching Source.Run semantics).
func Collect(name string, src Source, n int) *Trace {
	if n < 0 {
		n = 0
	}
	t := &Trace{Name: name, Records: make([]Record, 0, n)}
	src.Run(n, func(r Record) { t.Append(r) })
	return t
}

// SliceSource adapts a []Record to the Source interface, for tests and for
// replaying saved traces.
type SliceSource struct {
	Records []Record
	pos     int
}

// Run emits up to n records from the current position.
func (s *SliceSource) Run(n int, emit func(Record)) int {
	count := 0
	for count < n && s.pos < len(s.Records) {
		emit(s.Records[s.pos])
		s.pos++
		count++
	}
	return count
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }
