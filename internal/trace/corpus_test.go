package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

// corpusTrace builds a random well-formed chained trace for corpus tests.
func corpusTrace(name string, n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: name, StaticCondSites: n / 10}
	pc := isa.Addr(0x1000)
	for i := 0; i < n; i++ {
		kind := isa.Kind(rng.Intn(int(isa.NumKinds)))
		r := Record{PC: pc, Kind: kind}
		switch {
		case kind == isa.NonBranch:
		case kind == isa.CondBranch && rng.Intn(2) == 0:
		default:
			r.Taken = true
			r.Target = isa.Addr(uint32(0x1000+4*rng.Intn(1<<16)) &^ 3)
		}
		tr.Append(r)
		pc = r.Next()
	}
	return tr
}

func writeTestCorpus(t *testing.T, path string, traces []*Trace) {
	t.Helper()
	w, err := CreateCorpus(path)
	if err != nil {
		t.Fatalf("CreateCorpus: %v", err)
	}
	for _, tr := range traces {
		if err := w.Add(tr); err != nil {
			t.Fatalf("Add(%s): %v", tr.Name, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	traces := []*Trace{
		corpusTrace("alpha", 500, 1),
		corpusTrace("beta", 3000, 2),
		{Name: "empty"},
	}
	path := filepath.Join(t.TempDir(), "test.nlsc")
	writeTestCorpus(t, path, traces)

	c, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	defer c.Close()

	progs := c.Programs()
	if len(progs) != len(traces) {
		t.Fatalf("Programs: %d entries, want %d", len(progs), len(traces))
	}
	for i, tr := range traces {
		if progs[i].Name != tr.Name || progs[i].Records != len(tr.Records) {
			t.Errorf("index entry %d: %q/%d, want %q/%d",
				i, progs[i].Name, progs[i].Records, tr.Name, len(tr.Records))
		}
		got, err := c.Trace(tr.Name)
		if err != nil {
			t.Fatalf("Trace(%s): %v", tr.Name, err)
		}
		if got.Name != tr.Name || got.StaticCondSites != tr.StaticCondSites {
			t.Errorf("%s: metadata lost: %q %d", tr.Name, got.Name, got.StaticCondSites)
		}
		if len(got.Records) != len(tr.Records) {
			t.Fatalf("%s: %d records, want %d", tr.Name, len(got.Records), len(tr.Records))
		}
		for j := range tr.Records {
			if got.Records[j] != tr.Records[j] {
				t.Fatalf("%s: record %d changed in corpus roundtrip", tr.Name, j)
			}
		}
	}

	if _, err := c.Trace("nonexistent"); err == nil {
		t.Error("Trace on a missing program succeeded")
	}
}

// TestCorpusChunkSource drains the streaming decoder at several chunk
// sizes and checks the concatenated chunks reproduce the trace exactly,
// including chunks straddling every internal decoder-state boundary.
func TestCorpusChunkSource(t *testing.T) {
	tr := corpusTrace("stream", 2500, 3)
	path := filepath.Join(t.TempDir(), "stream.nlsc")
	writeTestCorpus(t, path, []*Trace{tr})

	c, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	defer c.Close()

	for _, chunk := range []int{1, 7, 1024, 2500, 4096, 0} {
		src, err := c.ChunkSource("stream", chunk)
		if err != nil {
			t.Fatalf("ChunkSource(chunk=%d): %v", chunk, err)
		}
		p := src.(*PayloadChunks)
		if p.Name != tr.Name || p.StaticCondSites != tr.StaticCondSites || p.Len() != len(tr.Records) {
			t.Errorf("chunk=%d: header %q/%d/%d, want %q/%d/%d", chunk,
				p.Name, p.StaticCondSites, p.Len(),
				tr.Name, tr.StaticCondSites, len(tr.Records))
		}
		// Hold every chunk: the contract says chunks stay valid across
		// further NextChunk calls.
		var held [][]Record
		for blk := src.NextChunk(); len(blk) > 0; blk = src.NextChunk() {
			held = append(held, blk)
		}
		if err := p.Err(); err != nil {
			t.Fatalf("chunk=%d: decode error: %v", chunk, err)
		}
		i := 0
		for _, blk := range held {
			for _, r := range blk {
				if r != tr.Records[i] {
					t.Fatalf("chunk=%d: record %d changed in streaming decode", chunk, i)
				}
				i++
			}
		}
		if i != len(tr.Records) {
			t.Fatalf("chunk=%d: decoded %d records, want %d", chunk, i, len(tr.Records))
		}
	}
}

// TestCorpusDetectsCorruption flips every byte of a small corpus in turn:
// each corrupted image must either fail to open, fail to decode, or decode
// to the identical records — silent corruption is the only failure.
func TestCorpusDetectsCorruption(t *testing.T) {
	tr := corpusTrace("c", 64, 4)
	path := filepath.Join(t.TempDir(), "c.nlsc")
	writeTestCorpus(t, path, []*Trace{tr})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for off := range orig {
		data := bytes.Clone(orig)
		data[off] ^= 0xFF
		c, err := OpenCorpusBytes(data)
		if err != nil {
			continue
		}
		got, err := c.Trace("c")
		if err != nil {
			continue
		}
		if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
			t.Fatalf("byte %d corrupted silently (metadata)", off)
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				t.Fatalf("byte %d corrupted record %d silently", off, i)
			}
		}
	}
}

func TestCorpusTruncationRejected(t *testing.T) {
	tr := corpusTrace("t", 128, 5)
	path := filepath.Join(t.TempDir(), "t.nlsc")
	writeTestCorpus(t, path, []*Trace{tr})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(corpusMagic), len(orig) / 2, len(orig) - 1} {
		if _, err := OpenCorpusBytes(orig[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestCorpusWriterAtomic: an aborted or failed write never leaves a file
// at the final path, and a Close makes the file appear complete.
func TestCorpusWriterAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.nlsc")
	w, err := CreateCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(corpusTrace("x", 32, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corpus visible at final path before Close (stat err %v)", err)
	}
	w.Abort()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("Abort left the temp file (stat err %v)", err)
	}

	writeTestCorpus(t, path, []*Trace{corpusTrace("x", 32, 6)})
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("Close left the temp file (stat err %v)", err)
	}
	c, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	c.Close()
}

// FuzzCorpusRead exercises the corpus header/index parser and both decode
// paths with arbitrary bytes: no input may panic or demand an allocation
// not bounded by the input size, and anything accepted must decode
// consistently between the materializing and streaming readers.
func FuzzCorpusRead(f *testing.F) {
	seedCorpus := func(traces []*Trace) []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.nlsc")
		w, err := CreateCorpus(path)
		if err != nil {
			f.Fatal(err)
		}
		for _, tr := range traces {
			if err := w.Add(tr); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seedCorpus([]*Trace{corpusTrace("a", 100, 7), corpusTrace("b", 40, 8)}))
	f.Add(seedCorpus(nil))
	f.Add([]byte(corpusMagic))
	f.Add([]byte(corpusTail))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := OpenCorpusBytes(data)
		if err != nil {
			return // rejection is fine; panics and OOM are not
		}
		for _, p := range c.Programs() {
			tr, err := c.Trace(p.Name)
			if err != nil {
				continue
			}
			src, err := c.ChunkSource(p.Name, 64)
			if err != nil {
				t.Fatalf("Trace accepted %q but ChunkSource rejected it: %v", p.Name, err)
			}
			i := 0
			for blk := src.NextChunk(); len(blk) > 0; blk = src.NextChunk() {
				for _, r := range blk {
					if i >= len(tr.Records) || r != tr.Records[i] {
						t.Fatalf("program %q: streaming decode diverges at record %d", p.Name, i)
					}
					i++
				}
			}
			if err := src.(*PayloadChunks).Err(); err != nil {
				t.Fatalf("Trace accepted %q but streaming decode failed: %v", p.Name, err)
			}
			if i != len(tr.Records) {
				t.Fatalf("program %q: streaming decode yielded %d records, want %d", p.Name, i, len(tr.Records))
			}
		}
	})
}
