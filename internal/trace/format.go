package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace file format.
//
// Traces compress extremely well with delta encoding because instruction
// streams are mostly sequential. The format is:
//
//	magic   [4]byte  "NLST"
//	version uint8    (1)
//	name    uvarint length + bytes
//	static  uvarint  (static conditional sites, 0 if unknown)
//	count   uvarint  (number of records)
//	records:
//	  head byte: kind (3 bits) | taken (1 bit, bit 3) | seq (1 bit, bit 4)
//	    seq=1 means PC == previous record's successor (the common case);
//	    otherwise a signed varint word delta from the previous PC follows.
//	  if taken: signed varint word delta of Target from PC.
//
// Word deltas (address/4) keep varints short.

const (
	formatMagic   = "NLST"
	formatVersion = 1
)

// errBadFormat reports a malformed trace file.
var errBadFormat = errors.New("trace: malformed trace file")

// Write serializes the trace to w in the binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(t.Name)))
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	writeUvarint(bw, uint64(t.StaticCondSites))
	writeUvarint(bw, uint64(len(t.Records)))
	var prevNextWord uint32 // successor of the previous record, in words
	var prevPCWord uint32
	for i, r := range t.Records {
		head := byte(r.Kind) & 0x7
		if r.Taken {
			head |= 1 << 3
		}
		seq := i > 0 && r.PC.Word() == prevNextWord
		if seq {
			head |= 1 << 4
		}
		if err := bw.WriteByte(head); err != nil {
			return err
		}
		if !seq {
			writeVarint(bw, int64(r.PC.Word())-int64(prevPCWord))
		}
		if r.Taken {
			writeVarint(bw, int64(r.Target.Word())-int64(r.PC.Word()))
		}
		prevPCWord = r.PC.Word()
		prevNextWord = r.Next().Word()
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic[:]) != formatMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errBadFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errBadFormat, ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: name too long", errBadFormat)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	static, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: string(nameBuf), StaticCondSites: int(static)}
	// count comes from the (untrusted) stream; a record occupies at least
	// one byte, so a lying count fails with EOF below — but only if the
	// pre-allocation is capped rather than trusted (a 20-byte input must
	// not demand a multi-terabyte slice).
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t.Records = make([]Record, 0, prealloc)
	var prevNextWord, prevPCWord uint32
	for i := uint64(0); i < count; i++ {
		head, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		kind := isa.Kind(head & 0x7)
		if !kind.Valid() {
			return nil, fmt.Errorf("%w: record %d kind %d", errBadFormat, i, kind)
		}
		taken := head&(1<<3) != 0
		seq := head&(1<<4) != 0
		var pcWord uint32
		if seq {
			pcWord = prevNextWord
		} else {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d pc delta: %w", i, err)
			}
			pcWord = uint32(int64(prevPCWord) + d)
		}
		rec := Record{PC: isa.Addr(pcWord * isa.InstrBytes), Kind: kind, Taken: taken}
		if taken {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d target delta: %w", i, err)
			}
			rec.Target = isa.Addr(uint32(int64(pcWord)+d) * isa.InstrBytes)
		}
		t.Records = append(t.Records, rec)
		prevPCWord = pcWord
		prevNextWord = rec.Next().Word()
	}
	return t, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
