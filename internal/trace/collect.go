package trace

import "repro/internal/isa"

// StatsCollector accumulates Table-1 statistics incrementally, block by
// block, so the grid executor's single broadcast replay of a program can
// derive the trace's Stats from the same read that feeds the simulators
// (instead of re-scanning the materialized trace per figure). Feeding the
// collector every record of a trace exactly once and finalizing yields a
// Stats identical to ComputeStats on the flat trace.
type StatsCollector struct {
	s          Stats
	condCounts map[isa.Addr]uint64
}

// NewStatsCollector starts a collector for a trace with the given name and
// static conditional-site metadata (0 when the trace carries none).
func NewStatsCollector(name string, staticCondSites int) *StatsCollector {
	return &StatsCollector{
		s:          Stats{Name: name, StaticCondSites: staticCondSites},
		condCounts: make(map[isa.Addr]uint64),
	}
}

// Add accumulates one block of consecutive trace records.
func (c *StatsCollector) Add(recs []Record) {
	for _, r := range recs {
		c.s.Instructions++
		if !r.IsBreak() {
			continue
		}
		c.s.Breaks++
		c.s.BreaksByKind[r.Kind]++
		if r.Kind == isa.CondBranch {
			c.condCounts[r.PC]++
			if r.Taken {
				c.s.CondTaken++
			}
		}
	}
}

// Stats finalizes and returns the collected statistics: the quantile
// columns are derived from the accumulated per-site counts. The collector
// may keep accumulating; each call finalizes the records seen so far.
func (c *StatsCollector) Stats() *Stats {
	s := c.s
	s.Q50, s.Q90, s.Q99, s.Q100 = quantileSites(c.condCounts)
	if s.StaticCondSites == 0 {
		s.StaticCondSites = s.Q100
	}
	return &s
}
