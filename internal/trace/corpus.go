package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Disk-backed trace corpus: generate once, replay many.
//
// A corpus is a single versioned container holding the binary payloads of
// many program traces, so a sweep can pay trace generation one time and
// every later run decodes instead of regenerating. The layout
// (nls-corpus/v1) is:
//
//	magic    "nls-corpus/v1\n"
//	payloads one per program, back to back, each in the existing "NLST"
//	         chunked varint trace format (Write/Read in format.go)
//	index    uvarint program count, then per program:
//	           uvarint name length + name bytes
//	           uvarint record count
//	           uvarint payload offset (from file start)
//	           uvarint payload length
//	           uint32  payload CRC32 (IEEE), little endian
//	footer   uint32 index CRC32 (IEEE, over the index bytes), little endian
//	         uint64 index offset (from file start), little endian
//	         tail magic "nlsCORP1"
//
// The index lives at the end so the writer streams payloads without
// knowing their sizes up front; the reader finds it through the fixed-size
// footer. Every structure an attacker could inflate (name lengths, counts,
// offsets) is bounds-checked against the file size before any allocation,
// and both the index and each payload are checksummed.

const (
	corpusMagic = "nls-corpus/v1\n"
	corpusTail  = "nlsCORP1"
	// corpusFooterLen is the fixed footer: index CRC32 + index offset +
	// tail magic.
	corpusFooterLen = 4 + 8 + len(corpusTail)
	// corpusMaxNameLen bounds a program name read from an untrusted
	// index.
	corpusMaxNameLen = 1 << 12
)

// errBadCorpus reports a malformed or corrupt corpus file.
var errBadCorpus = errors.New("trace: malformed corpus file")

// CorpusProgram is one program's entry in a corpus index.
type CorpusProgram struct {
	// Name is the workload name, duplicated from the payload's own
	// header so listing a corpus needs no payload decode.
	Name string
	// Records is the payload's record count.
	Records int

	off, length int64
	crc         uint32
}

// CorpusWriter streams program traces into a corpus file. The index and
// footer are written by Close; until then the corpus is a temp file, so a
// crashed or abandoned write never leaves a half-valid corpus behind.
type CorpusWriter struct {
	f       *os.File
	path    string
	off     int64
	entries []CorpusProgram
	err     error
}

// CreateCorpus starts a new corpus at path (via an adjacent temp file,
// renamed into place on Close).
func CreateCorpus(path string) (*CorpusWriter, error) {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	w := &CorpusWriter{f: f, path: path}
	if _, err := f.WriteString(corpusMagic); err != nil {
		w.Abort()
		return nil, err
	}
	w.off = int64(len(corpusMagic))
	return w, nil
}

// Add appends one program trace as a payload section.
func (w *CorpusWriter) Add(t *Trace) error {
	if w.err != nil {
		return w.err
	}
	var buf bytes.Buffer
	if err := Write(&buf, t); err != nil {
		w.err = err
		return err
	}
	payload := buf.Bytes()
	if _, err := w.f.Write(payload); err != nil {
		w.err = err
		return err
	}
	w.entries = append(w.entries, CorpusProgram{
		Name:    t.Name,
		Records: len(t.Records),
		off:     w.off,
		length:  int64(len(payload)),
		crc:     crc32.ChecksumIEEE(payload),
	})
	w.off += int64(len(payload))
	return nil
}

// Close writes the index and footer, syncs, and renames the temp file into
// place. The writer is unusable afterwards.
func (w *CorpusWriter) Close() error {
	if w.err != nil {
		w.Abort()
		return w.err
	}
	var idx bytes.Buffer
	putUvarint(&idx, uint64(len(w.entries)))
	for _, e := range w.entries {
		putUvarint(&idx, uint64(len(e.Name)))
		idx.WriteString(e.Name)
		putUvarint(&idx, uint64(e.Records))
		putUvarint(&idx, uint64(e.off))
		putUvarint(&idx, uint64(e.length))
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], e.crc)
		idx.Write(crc[:])
	}
	var footer [corpusFooterLen]byte
	binary.LittleEndian.PutUint32(footer[0:4], crc32.ChecksumIEEE(idx.Bytes()))
	binary.LittleEndian.PutUint64(footer[4:12], uint64(w.off))
	copy(footer[12:], corpusTail)
	if _, err := w.f.Write(idx.Bytes()); err != nil {
		w.Abort()
		return err
	}
	if _, err := w.f.Write(footer[:]); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.path + ".tmp")
		return err
	}
	w.f = nil
	return os.Rename(w.path+".tmp", w.path)
}

// Abort discards the partial corpus.
func (w *CorpusWriter) Abort() {
	if w.f != nil {
		w.f.Close()
		os.Remove(w.path + ".tmp")
		w.f = nil
	}
}

// Corpus is a read-only open corpus: the raw file bytes (memory-mapped
// when the platform supports it, read into memory otherwise) plus the
// decoded index.
type Corpus struct {
	data   []byte
	mapped bool
	progs  []CorpusProgram
	byName map[string]int
}

// OpenCorpus opens and validates a corpus file: magic, footer, index
// checksum, and every index bound. Payload checksums are verified lazily,
// by Trace.
func OpenCorpus(path string) (*Corpus, error) {
	data, mapped, err := corpusLoad(path)
	if err != nil {
		return nil, err
	}
	c := &Corpus{data: data, mapped: mapped}
	if err := c.parseIndex(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// OpenCorpusBytes opens a corpus from an in-memory image (the fuzz
// harness's entry point; OpenCorpus validates through the same path).
func OpenCorpusBytes(data []byte) (*Corpus, error) {
	c := &Corpus{data: data}
	if err := c.parseIndex(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Corpus) parseIndex() error {
	data := c.data
	if len(data) < len(corpusMagic)+corpusFooterLen {
		return fmt.Errorf("%w: truncated (%d bytes)", errBadCorpus, len(data))
	}
	if string(data[:len(corpusMagic)]) != corpusMagic {
		return fmt.Errorf("%w: bad magic", errBadCorpus)
	}
	footer := data[len(data)-corpusFooterLen:]
	if string(footer[12:]) != corpusTail {
		return fmt.Errorf("%w: bad tail magic", errBadCorpus)
	}
	idxOff := binary.LittleEndian.Uint64(footer[4:12])
	idxEnd := uint64(len(data) - corpusFooterLen)
	if idxOff < uint64(len(corpusMagic)) || idxOff > idxEnd {
		return fmt.Errorf("%w: index offset %d out of range", errBadCorpus, idxOff)
	}
	idx := data[idxOff:idxEnd]
	if crc32.ChecksumIEEE(idx) != binary.LittleEndian.Uint32(footer[0:4]) {
		return fmt.Errorf("%w: index checksum mismatch", errBadCorpus)
	}
	r := bytes.NewReader(idx)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: index count: %v", errBadCorpus, err)
	}
	// A lying count must not demand a huge allocation: every entry takes
	// at least 8 index bytes (4 varints + CRC), so the index length
	// itself bounds the plausible count.
	if count > uint64(len(idx)) {
		return fmt.Errorf("%w: index count %d exceeds index size", errBadCorpus, count)
	}
	c.progs = make([]CorpusProgram, 0, count)
	c.byName = make(map[string]int, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("%w: entry %d name length: %v", errBadCorpus, i, err)
		}
		if nameLen > corpusMaxNameLen {
			return fmt.Errorf("%w: entry %d name too long", errBadCorpus, i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return fmt.Errorf("%w: entry %d name: %v", errBadCorpus, i, err)
		}
		records, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("%w: entry %d records: %v", errBadCorpus, i, err)
		}
		off, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("%w: entry %d offset: %v", errBadCorpus, i, err)
		}
		length, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("%w: entry %d length: %v", errBadCorpus, i, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return fmt.Errorf("%w: entry %d checksum: %v", errBadCorpus, i, err)
		}
		if off < uint64(len(corpusMagic)) || length > idxOff || off > idxOff-length {
			return fmt.Errorf("%w: entry %d payload [%d,+%d) out of range", errBadCorpus, i, off, length)
		}
		// records is untrusted but only ever used as a size hint capped
		// by the payload length (a record takes at least one payload
		// byte, see Read).
		if records > length {
			return fmt.Errorf("%w: entry %d record count %d exceeds payload", errBadCorpus, i, records)
		}
		c.byName[string(name)] = len(c.progs)
		c.progs = append(c.progs, CorpusProgram{
			Name:    string(name),
			Records: int(records),
			off:     int64(off),
			length:  int64(length),
			crc:     binary.LittleEndian.Uint32(crcBuf[:]),
		})
	}
	return nil
}

// Programs lists the corpus's index entries.
func (c *Corpus) Programs() []CorpusProgram { return c.progs }

// Trace decodes the named program's payload, verifying its checksum
// first.
func (c *Corpus) Trace(name string) (*Trace, error) {
	i, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("trace: corpus has no program %q", name)
	}
	e := c.progs[i]
	payload := c.data[e.off : e.off+e.length]
	if crc32.ChecksumIEEE(payload) != e.crc {
		return nil, fmt.Errorf("%w: program %q payload checksum mismatch", errBadCorpus, name)
	}
	t, err := Read(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("trace: corpus program %q: %w", name, err)
	}
	if t.Name != e.Name || len(t.Records) != e.Records {
		return nil, fmt.Errorf("%w: program %q payload disagrees with index", errBadCorpus, name)
	}
	return t, nil
}

// ChunkSource returns a sequential decoder over the named program's
// payload, yielding chunks of at most chunkSize records directly off the
// (mapped or loaded) corpus bytes without materializing the whole trace.
// Each returned chunk is freshly allocated, so callers may hold chunks
// across further NextChunk calls (the broadcast pipelines require it).
func (c *Corpus) ChunkSource(name string, chunkSize int) (ChunkSource, error) {
	i, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("trace: corpus has no program %q", name)
	}
	e := c.progs[i]
	payload := c.data[e.off : e.off+e.length]
	if crc32.ChecksumIEEE(payload) != e.crc {
		return nil, fmt.Errorf("%w: program %q payload checksum mismatch", errBadCorpus, name)
	}
	d, err := newPayloadDecoder(payload, chunkSize)
	if err != nil {
		return nil, fmt.Errorf("trace: corpus program %q: %w", name, err)
	}
	return d, nil
}

// Close releases the mapping (or lets the loaded copy be collected).
func (c *Corpus) Close() error {
	var err error
	if c.mapped {
		err = corpusUnmap(c.data)
	}
	c.data = nil
	c.mapped = false
	return err
}

// corpusLoad reads the file, preferring a read-only memory map; the
// sequential fallback loads it into memory.
func corpusLoad(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	if data, ok := corpusMmap(f); ok {
		return data, true, nil
	}
	data, err = io.ReadAll(f)
	return data, false, err
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}
