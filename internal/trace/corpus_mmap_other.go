//go:build !unix

package trace

import "os"

// corpusMmap always falls back to a sequential read on platforms without
// the unix mmap syscall surface.
func corpusMmap(*os.File) ([]byte, bool) { return nil, false }

func corpusUnmap([]byte) error { return nil }
