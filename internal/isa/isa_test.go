package isa

import "testing"

func TestAddrNext(t *testing.T) {
	if got := Addr(0x1000).Next(); got != 0x1004 {
		t.Errorf("Next() = %v, want 0x1004", got)
	}
}

func TestAddrAligned(t *testing.T) {
	cases := []struct {
		a    Addr
		want bool
	}{
		{0, true}, {4, true}, {1, false}, {2, false}, {3, false}, {0xfffffffc, true},
	}
	for _, c := range cases {
		if got := c.a.Aligned(); got != c.want {
			t.Errorf("Aligned(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestAddrWord(t *testing.T) {
	if got := Addr(0x100c).Word(); got != 0x403 {
		t.Errorf("Word() = %#x, want 0x403", got)
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0xdeadbeec).String(); got != "0xdeadbeec" {
		t.Errorf("String() = %q", got)
	}
}

func TestKindIsBranch(t *testing.T) {
	if NonBranch.IsBranch() {
		t.Error("NonBranch.IsBranch() = true")
	}
	for _, k := range []Kind{CondBranch, UncondBranch, IndirectJump, Call, Return} {
		if !k.IsBranch() {
			t.Errorf("%v.IsBranch() = false", k)
		}
	}
	if Kind(200).IsBranch() {
		t.Error("invalid kind reports IsBranch")
	}
}

func TestKindAlwaysTaken(t *testing.T) {
	cases := map[Kind]bool{
		NonBranch:    false,
		CondBranch:   false,
		UncondBranch: true,
		IndirectJump: true,
		Call:         true,
		Return:       true,
	}
	for k, want := range cases {
		if got := k.AlwaysTaken(); got != want {
			t.Errorf("%v.AlwaysTaken() = %v, want %v", k, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		NonBranch:    "non-branch",
		CondBranch:   "cond",
		UncondBranch: "uncond",
		IndirectJump: "indirect",
		Call:         "call",
		Return:       "return",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(k), got, want)
		}
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Errorf("invalid kind String() = %q", got)
	}
}

func TestKindValid(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if !k.Valid() {
			t.Errorf("kind %d should be valid", k)
		}
	}
	if Kind(NumKinds).Valid() {
		t.Error("NumKinds should not be valid")
	}
}
