// Package isa defines the minimal instruction-set abstractions used by the
// NLS/BTB fetch-prediction simulator: instruction kinds, addresses, and the
// fixed geometry the paper assumes (4-byte instructions in a 32-bit address
// space).
//
// The paper (Calder & Grunwald, "Next Cache Line and Set Prediction",
// ISCA 1995) traces DEC Alpha programs; the simulator is ISA-agnostic and
// only needs to classify each instruction as one of the break kinds in
// Table 1 of the paper: conditional branch, unconditional branch, indirect
// jump, procedure call, or procedure return.
package isa

import "fmt"

// InstrBytes is the size of every instruction, as in the paper
// ("32 byte cache lines and 4 byte instructions").
const InstrBytes = 4

// Addr is a 32-bit instruction address. The paper assumes a 32-bit address
// space when costing the BTB.
type Addr uint32

// Next returns the address of the sequential (fall-through) successor.
func (a Addr) Next() Addr { return a + InstrBytes }

// Aligned reports whether the address is instruction-aligned.
func (a Addr) Aligned() bool { return a%InstrBytes == 0 }

// Word returns the instruction index of the address (address / 4). BTB and
// NLS index functions hash on the word, not the raw byte address, because
// the low two bits are always zero.
func (a Addr) Word() uint32 { return uint32(a) / InstrBytes }

// String formats the address as hexadecimal.
func (a Addr) String() string { return fmt.Sprintf("0x%08x", uint32(a)) }

// Kind classifies an instruction. Every executed instruction in a trace has
// a Kind; kinds other than NonBranch are "breaks" in the paper's vocabulary.
type Kind uint8

const (
	// NonBranch is any instruction that cannot change control flow.
	NonBranch Kind = iota
	// CondBranch is a conditional direct branch (taken or not taken).
	CondBranch
	// UncondBranch is an unconditional direct branch (always taken).
	UncondBranch
	// IndirectJump is a register-indirect jump (e.g. a switch dispatch).
	IndirectJump
	// Call is a direct procedure call; it pushes a return address.
	Call
	// Return is a procedure return; its target comes from the call stack.
	Return

	// NumKinds is the number of instruction kinds (for fixed-size tables).
	NumKinds
)

var kindNames = [NumKinds]string{
	NonBranch:    "non-branch",
	CondBranch:   "cond",
	UncondBranch: "uncond",
	IndirectJump: "indirect",
	Call:         "call",
	Return:       "return",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsBranch reports whether the kind is a break in control flow. Note that a
// not-taken conditional branch is still a branch: it is a break *site* even
// when control falls through.
func (k Kind) IsBranch() bool { return k != NonBranch && k < NumKinds }

// AlwaysTaken reports whether the kind transfers control unconditionally.
// Only conditional branches can fall through.
func (k Kind) AlwaysTaken() bool {
	switch k {
	case UncondBranch, IndirectJump, Call, Return:
		return true
	}
	return false
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < NumKinds }
