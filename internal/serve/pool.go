package serve

import (
	"context"
	"errors"
	"sync"
)

// Pool errors, mapped to 503 by the HTTP layer.
var (
	// ErrDraining reports a submit after shutdown began.
	ErrDraining = errors.New("serve: server is draining")
	// ErrBusy reports a full job queue (the backpressure signal; clients
	// should retry).
	ErrBusy = errors.New("serve: job queue is full")
)

// pool is the bounded worker pool jobs execute on: a fixed number of
// workers draining a bounded queue. Submission never blocks — a full
// queue is an explicit ErrBusy so the HTTP layer can shed load instead of
// accumulating goroutines — and shutdown drains everything already
// accepted (queued and running) before returning.
type pool struct {
	mu       sync.Mutex
	draining bool
	tasks    chan func()

	inflight sync.WaitGroup // accepted tasks not yet finished
	workers  sync.WaitGroup
}

// newPool starts workers goroutines over a queue of depth slots.
func newPool(workers, depth int) *pool {
	p := &pool{tasks: make(chan func(), depth)}
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// submit enqueues a task, or reports why it cannot: ErrDraining once
// shutdown began, ErrBusy when the queue is full. A nil return guarantees
// the task will run (shutdown drains the queue).
func (p *pool) submit(task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrDraining
	}
	p.inflight.Add(1)
	wrapped := func() {
		defer p.inflight.Done()
		task()
	}
	select {
	case p.tasks <- wrapped:
		return nil
	default:
		p.inflight.Done()
		return ErrBusy
	}
}

// shutdown stops accepting work and waits for every accepted task —
// running or still queued — to finish. The context bounds the wait: on
// cancellation shutdown returns its error with workers still draining in
// the background (the process is exiting; nothing re-opens the pool).
func (p *pool) shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.tasks)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.inflight.Wait()
		p.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
