package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Wire-format schemas. JobSchema tags a request document (optional on the
// wire but rejected when it names anything else); ResultSchema tags the
// response; flightSchema versions the single-flight key derivation, so a
// change to what a flight covers can never alias an old key.
const (
	JobSchema    = "nls-job/v1"
	ResultSchema = "nls-result/v1"
	flightSchema = "nls-flight/v1"
)

// Job is the request document of POST /v1/jobs: an experiments.Grid (the
// same declarative form the figure pipeline runs, reusing the arch.Spec
// and cache.Geometry JSON), the built-in programs to sweep it over, the
// per-program instruction budget, and optionally non-default penalties.
// Everything in a Job is untrusted: DecodeJob validates it completely
// before anything is allocated or scheduled from it.
type Job struct {
	Schema string `json:"schema,omitempty"`
	// Insns is the per-program instruction budget (bounded by Limits).
	Insns int `json:"insns"`
	// Programs names built-in workload analogues ("li", "gcc-like", ...);
	// empty means all six of Table 1.
	Programs []string `json:"programs,omitempty"`
	// Penalties overrides the paper's penalty assumptions (part of every
	// cell's content key); nil means metrics.Default().
	Penalties *metrics.Penalties `json:"penalties,omitempty"`
	// Grid declares the architecture arms × cache geometries to simulate.
	Grid experiments.Grid `json:"grid"`
}

// Limits bounds what an untrusted job may ask for.
type Limits struct {
	// MaxBodyBytes bounds the request document size.
	MaxBodyBytes int64
	// MaxInsns bounds the per-program instruction budget.
	MaxInsns int
	// MaxCells bounds the cell count of one job (programs × arm points).
	MaxCells int
}

// DefaultLimits returns the service defaults: 1MB bodies, 20M instructions
// per program, 4096 cells per job.
func DefaultLimits() Limits {
	return Limits{MaxBodyBytes: 1 << 20, MaxInsns: 20_000_000, MaxCells: 4096}
}

// withDefaults fills zero fields.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = d.MaxBodyBytes
	}
	if l.MaxInsns <= 0 {
		l.MaxInsns = d.MaxInsns
	}
	if l.MaxCells <= 0 {
		l.MaxCells = d.MaxCells
	}
	return l
}

// CompiledJob is a fully validated job, ready to schedule: the executor
// configuration and grid, plus the flight key identifying the job's exact
// content (see jobKey).
type CompiledJob struct {
	Cfg  experiments.Config
	Grid experiments.Grid
	// Key is the single-flight key: a hash over the content-addressed
	// store keys of every cell the job resolves to, plus the presentation
	// labels the response carries. Two requests with equal keys produce
	// byte-identical response bodies by construction.
	Key string
	// Cells is the number of grid cells the job resolves to.
	Cells int
}

// Result is the response document of POST /v1/jobs. It is deliberately a
// pure function of the job's content — no timestamps, no store accounting
// (that varies between a cold and a warm run and lives in response headers
// and /statsz instead) — so a warm re-request is byte-identical to the
// cold response it deduplicates.
type Result struct {
	Schema string            `json:"schema"`
	Key    string            `json:"key"`
	Insns  int               `json:"insns"`
	Rows   []experiments.Row `json:"rows"`
}

// DecodeJob reads, decodes, and validates one job document from r under
// the given limits. The reader is hard-capped at MaxBodyBytes, unknown
// fields are rejected, and every geometry and spec is validated before
// return — a CompiledJob can always be built and run without panicking,
// and nothing is allocated whose size an unvalidated field chose.
func DecodeJob(r io.Reader, lim Limits) (*CompiledJob, error) {
	lim = lim.withDefaults()
	// Read one byte past the cap so an oversized body is distinguishable
	// from one that exactly fits; an outer http.MaxBytesReader (if any)
	// fires first and its error propagates for the 413 mapping.
	body, err := io.ReadAll(io.LimitReader(r, lim.MaxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("serve: bad job document: %w", err)
	}
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, fmt.Errorf("serve: job document exceeds the %d-byte cap", lim.MaxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var j Job
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("serve: bad job document: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after the job document")
	}
	return CompileJob(j, lim)
}

// CompileJob validates a decoded job and resolves it to an executor
// configuration, grid, and flight key.
func CompileJob(j Job, lim Limits) (*CompiledJob, error) {
	lim = lim.withDefaults()
	if j.Schema != "" && j.Schema != JobSchema {
		return nil, fmt.Errorf("serve: job schema %q, want %q", j.Schema, JobSchema)
	}
	if j.Insns <= 0 || j.Insns > lim.MaxInsns {
		return nil, fmt.Errorf("serve: insns %d out of range [1, %d]", j.Insns, lim.MaxInsns)
	}

	programs, err := resolvePrograms(j.Programs)
	if err != nil {
		return nil, err
	}

	pen := metrics.Default()
	if j.Penalties != nil {
		pen = *j.Penalties
		if pen.Misfetch < 0 || pen.Mispredict < 0 || pen.CacheMiss < 0 {
			return nil, fmt.Errorf("serve: penalties must be non-negative: %+v", pen)
		}
	}

	if len(j.Grid.Arms) == 0 {
		return nil, fmt.Errorf("serve: job grid has no arms")
	}
	// Bound the cell count arithmetically BEFORE expanding the cell list,
	// so an adversarial arms×caches product never sizes an allocation.
	perProgram := 0
	for i, a := range j.Grid.Arms {
		if a.Name == "" {
			return nil, fmt.Errorf("serve: grid arm %d has no name", i)
		}
		points := len(a.Caches)
		if points == 0 {
			points = 1
		}
		perProgram += points
		if perProgram > lim.MaxCells {
			return nil, fmt.Errorf("serve: job exceeds the %d-cell cap", lim.MaxCells)
		}
		// Validate the spec on every geometry it will be instantiated on;
		// the geometries themselves were validated by cache.Geometry's
		// UnmarshalJSON at decode time.
		if len(a.Caches) == 0 {
			if err := a.Spec.Validate(); err != nil {
				return nil, fmt.Errorf("serve: arm %q: %w", a.Name, err)
			}
		}
		for _, g := range a.Caches {
			if err := a.Spec.WithGeometry(g).Validate(); err != nil {
				return nil, fmt.Errorf("serve: arm %q on %s: %w", a.Name, g, err)
			}
		}
	}
	total := perProgram * len(programs)
	if total > lim.MaxCells {
		return nil, fmt.Errorf("serve: job resolves to %d cells, cap is %d", total, lim.MaxCells)
	}

	cfg := experiments.Config{Insns: j.Insns, Programs: programs, Penalties: pen}
	cells := j.Grid.Cells(programs)
	return &CompiledJob{
		Cfg:   cfg,
		Grid:  j.Grid,
		Key:   jobKey(cfg, cells),
		Cells: len(cells),
	}, nil
}

// resolvePrograms maps workload names to built-in specs; empty means all
// six analogues. Unknown names and duplicates are rejected (a duplicate
// would double-count rows while simulating once — surprising, so illegal).
func resolvePrograms(names []string) ([]workload.Spec, error) {
	if len(names) == 0 {
		return workload.All(), nil
	}
	out := make([]workload.Spec, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("serve: unknown program %q", n)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("serve: duplicate program %q", n)
		}
		seen[s.Name] = true
		out = append(out, s)
	}
	return out, nil
}

// jobKey derives the single-flight key of a compiled job from the content
// keys of its cells. Each cell key is the content-addressed store key —
// the SHA-256 over workload, budget, complete spec, and penalties — so the
// flight key covers exactly what the response body depends on: the cell
// contents plus the (program, arm) labels the rows are presented under, in
// grid order. A one-cell job's flight key is therefore a pure function of
// that cell's content hash and its labels.
func jobKey(cfg experiments.Config, cells []experiments.Cell) string {
	type cellDoc struct {
		Program string `json:"program"`
		Arm     string `json:"arm"`
		Key     string `json:"key"`
	}
	docs := make([]cellDoc, len(cells))
	for i, c := range cells {
		docs[i] = cellDoc{Program: c.Prog.Name, Arm: c.Arm, Key: c.Key(cfg)}
	}
	doc := struct {
		Schema string    `json:"schema"`
		Insns  int       `json:"insns"`
		Cells  []cellDoc `json:"cells"`
	}{flightSchema, cfg.Insns, docs}
	buf, err := json.Marshal(doc)
	if err != nil {
		// The document contains only strings and ints; reaching this is a
		// programming error.
		panic(err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
