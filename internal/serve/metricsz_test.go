package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/experiments"
)

// tinyArchSpec mirrors tinyJob's arm as a native spec, for driving the
// executor directly.
func tinyArchSpec() arch.Spec {
	return arch.Spec{
		Predictor: arch.PredictorSpec{Kind: arch.KindNLSTable, Entries: 256},
		Cache:     arch.CacheSpec{SizeBytes: 4096, LineBytes: 32, Assoc: 1},
		PHT:       arch.PHTSpec{Kind: "gshare", Entries: 512, HistoryBits: 4},
	}
}

// scrapeProm GETs /metricsz and parses the exposition into a
// series-with-labels -> value map.
func scrapeProm(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metricsz content-type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func scrapeStatsz(t *testing.T, base string) StatsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestMetricszMatchesStatsz drives the server through every counter path —
// a led flight, a store-served warm re-request, concurrent shared joiners,
// and an invalid job — then asserts /metricsz and /statsz agree on every
// shared counter. The endpoints read the same registry atomics, so at a
// quiescent moment they must match exactly.
func TestMetricszMatchesStatsz(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	readAll(t, postJob(t, ts.URL, tinyJob)) // cold: simulated
	readAll(t, postJob(t, ts.URL, tinyJob)) // warm: store-served

	// Concurrent identical requests: at least one flight shared when they
	// overlap; either way the counters stay consistent.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			readAll(t, postJob(t, ts.URL, tinyJob))
		}()
	}
	wg.Wait()

	readAll(t, postJob(t, ts.URL, `{"schema":"bogus"}`)) // rejected: invalid

	snap := scrapeStatsz(t, ts.URL)
	prom := scrapeProm(t, ts.URL)

	checks := []struct {
		name string
		stat int64
		prom string
	}{
		{"jobs_received", snap.JobsReceived, "nls_jobs_received_total"},
		{"jobs_failed", snap.JobsFailed, "nls_jobs_failed_total"},
		{"flights_led", snap.FlightsLed, "nls_flights_led_total"},
		{"flights_shared", snap.FlightsShared, "nls_flights_shared_total"},
		{"cells_loaded", snap.CellsLoaded, "nls_cells_loaded_total"},
		{"cells_simulated", snap.CellsSimulated, "nls_cells_simulated_total"},
		{"cells_deduped", snap.CellsDeduped, "nls_cells_deduped_total"},
		{"trace_replays", snap.TraceReplays, "nls_trace_replays_total"},
		{"inflight_jobs", snap.InflightJobs, "nls_inflight_jobs"},
		{"queued_jobs", snap.QueuedJobs, "nls_queued_jobs"},
	}
	for _, c := range checks {
		got, ok := prom[c.prom]
		if !ok {
			t.Errorf("metricsz missing %s", c.prom)
			continue
		}
		if got != float64(c.stat) {
			t.Errorf("%s: metricsz %s=%g, statsz=%d", c.name, c.prom, got, c.stat)
		}
	}

	// jobs_rejected is the sum of the per-reason series; the invalid job
	// must land in reason="invalid".
	rejected := prom[`nls_jobs_rejected_total{reason="draining"}`] +
		prom[`nls_jobs_rejected_total{reason="invalid"}`] +
		prom[`nls_jobs_rejected_total{reason="too_large"}`]
	if rejected != float64(snap.JobsRejected) {
		t.Errorf("rejected: metricsz sum=%g, statsz=%d", rejected, snap.JobsRejected)
	}
	if prom[`nls_jobs_rejected_total{reason="invalid"}`] < 1 {
		t.Errorf("invalid job not counted under reason=invalid: %v",
			prom[`nls_jobs_rejected_total{reason="invalid"}`])
	}

	// Every led flight observed one job latency and one queue wait.
	if got := prom["nls_job_seconds_count"]; got != float64(snap.FlightsLed) {
		t.Errorf("nls_job_seconds_count=%g, want %d (one per led flight)", got, snap.FlightsLed)
	}
	if got := prom["nls_queue_wait_seconds_count"]; got != float64(snap.FlightsLed) {
		t.Errorf("nls_queue_wait_seconds_count=%g, want %d", got, snap.FlightsLed)
	}
	if prom["nls_job_seconds_sum"] <= 0 {
		t.Error("nls_job_seconds_sum is zero; job latency not measured")
	}

	// Executor stage spans: one observation per stage per executed job run.
	for _, stage := range executorStages {
		key := `nls_executor_stage_seconds_count{stage="` + stage + `"}`
		if got := prom[key]; got != float64(snap.FlightsLed) {
			t.Errorf("%s = %g, want %d", key, got, snap.FlightsLed)
		}
	}

	// Derived rates: this sequence both simulated and loaded cells, so the
	// hit rate is strictly between 0 and 1 and consistent with the counters.
	wantHit := float64(snap.CellsLoaded) / float64(snap.CellsLoaded+snap.CellsSimulated)
	if snap.StoreHitRate != wantHit {
		t.Errorf("store_hit_rate=%g, want %g", snap.StoreHitRate, wantHit)
	}
	if snap.StoreHitRate <= 0 || snap.StoreHitRate >= 1 {
		t.Errorf("store_hit_rate=%g, want in (0,1) after cold+warm", snap.StoreHitRate)
	}
	if s.stats.FlightsLed.Value() == 0 {
		t.Error("no flights led")
	}
}

// TestStatszZeroDenominators: a fresh server reports 0 (not NaN) for the
// derived rates, and the registry exposes valid numbers throughout.
func TestStatszZeroDenominators(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	snap := scrapeStatsz(t, ts.URL)
	if snap.StoreHitRate != 0 || snap.FlightShareRate != 0 {
		t.Errorf("fresh rates = %g/%g, want 0/0", snap.StoreHitRate, snap.FlightShareRate)
	}
	if snap.Schema != StatsSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, StatsSchema)
	}
	prom := scrapeProm(t, ts.URL)
	if prom["nls_pool_workers"] <= 0 {
		t.Errorf("nls_pool_workers = %g, want > 0", prom["nls_pool_workers"])
	}
}

// TestStatszDrainingEndToEnd: Draining flips in /statsz and nls_draining in
// /metricsz the moment Shutdown begins, and both agree with /healthz.
func TestStatszDrainingEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	if snap := scrapeStatsz(t, ts.URL); snap.Draining {
		t.Fatal("fresh server reports draining")
	}
	if prom := scrapeProm(t, ts.URL); prom["nls_draining"] != 0 {
		t.Fatalf("fresh nls_draining = %g", prom["nls_draining"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	if snap := scrapeStatsz(t, ts.URL); !snap.Draining {
		t.Error("statsz draining=false after Shutdown")
	}
	if prom := scrapeProm(t, ts.URL); prom["nls_draining"] != 1 {
		t.Errorf("nls_draining = %g after Shutdown, want 1", prom["nls_draining"])
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	// And a job posted while draining lands in the draining reason bucket.
	readAll(t, postJob(t, ts.URL, tinyJob))
	if got := scrapeProm(t, ts.URL)[`nls_jobs_rejected_total{reason="draining"}`]; got != 1 {
		t.Errorf("draining rejection not counted: %g", got)
	}
}

// TestExecutorStageSpans pins the executor-side seam directly: a run
// reports all four stages, replay dominated by actual time, and the
// Observer receives exactly the manifest's spans.
func TestExecutorStageSpans(t *testing.T) {
	store, err := experiments.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.DefaultConfig(20_000)
	cfg.Programs = cfg.Programs[:1]
	var observed []experiments.StageSpan
	x := &experiments.Executor{R: experiments.NewRunner(cfg), Store: store,
		Observer: func(sp experiments.StageSpan) { observed = append(observed, sp) }}
	rs, err := x.RunGrids(false, experiments.Grid{Name: "spans", Arms: []experiments.Arm{
		{Name: "nls", Spec: tinyArchSpec()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Stages) != 5 {
		t.Fatalf("got %d stages, want 5: %+v", len(rs.Stages), rs.Stages)
	}
	wantOrder := []string{"gather", "gen-corpus", "trace-gen", "replay", "store-save"}
	for i, sp := range rs.Stages {
		if sp.Stage != wantOrder[i] {
			t.Errorf("stage[%d] = %q, want %q", i, sp.Stage, wantOrder[i])
		}
		if sp.Seconds < 0 {
			t.Errorf("stage %q has negative span %g", sp.Stage, sp.Seconds)
		}
	}
	if len(observed) != len(rs.Stages) {
		t.Fatalf("observer saw %d spans, manifest has %d", len(observed), len(rs.Stages))
	}
	for i := range observed {
		if observed[i] != rs.Stages[i] {
			t.Errorf("observer span %d = %+v, manifest %+v", i, observed[i], rs.Stages[i])
		}
	}
	// The cold run simulated, so replay took real time.
	if rs.Stages[3].Seconds <= 0 {
		t.Errorf("replay span = %g on a cold run, want > 0", rs.Stages[3].Seconds)
	}
}
