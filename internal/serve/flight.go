package serve

import (
	"sync"

	"repro/internal/experiments"
)

// Accounting is the per-flight store accounting, surfaced in response
// headers and aggregated into /statsz. It is deliberately NOT part of the
// response body: a warm re-request must be byte-identical to the cold
// response, and Loaded/Simulated differ between the two.
type Accounting struct {
	Loaded    int
	Simulated int
	Deduped   int
	Replays   int
}

// A flight is one in-progress or finished execution of a job key: the
// single unit N identical concurrent requests share. The leader executes;
// everyone (leader included) waits on done and then reads body/acct/err,
// which are written exactly once before done is closed.
type flight struct {
	key  string
	hub  *progressHub
	done chan struct{}

	body []byte
	acct Accounting
	err  error
}

// flightGroup is the single-flight layer: at most one inflight flight per
// job key. Keys are content hashes over the job's cell store keys (see
// jobKey), so "identical request" means identical simulation content, not
// identical bytes on the wire.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

// join returns the flight for key, creating it when none is inflight.
// leader reports whether the caller owns execution; followers share the
// leader's result without costing a simulation.
func (g *flightGroup) join(key string) (fl *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight == nil {
		g.inflight = make(map[string]*flight)
	}
	if fl := g.inflight[key]; fl != nil {
		return fl, false
	}
	fl = &flight{key: key, hub: newProgressHub(), done: make(chan struct{})}
	g.inflight[key] = fl
	return fl, true
}

// finish publishes the flight's outcome and retires it: the flight leaves
// the inflight map BEFORE done is closed, so a request arriving after
// completion starts a fresh flight (and is served from the store) rather
// than joining a finished one. Waiters blocked on done observe
// body/acct/err safely (the writes happen-before close).
func (g *flightGroup) finish(fl *flight, body []byte, acct Accounting, err error) {
	g.mu.Lock()
	delete(g.inflight, fl.key)
	g.mu.Unlock()
	fl.body, fl.acct, fl.err = body, acct, err
	fl.hub.close()
	close(fl.done)
}

// progressHub fans one job's executor progress out to any number of
// streaming subscribers. Channels hold one element and publish is
// latest-wins: a slow subscriber never blocks the executor's progress
// callback (which runs under the Runner's stats lock) and always sees the
// most recent snapshot next.
type progressHub struct {
	mu     sync.Mutex
	subs   map[chan experiments.SweepStats]struct{}
	closed bool
}

func newProgressHub() *progressHub {
	return &progressHub{subs: make(map[chan experiments.SweepStats]struct{})}
}

// subscribe registers a listener; cancel unregisters it. The channel is
// closed when the flight finishes (or immediately if it already has).
func (h *progressHub) subscribe() (<-chan experiments.SweepStats, func()) {
	ch := make(chan experiments.SweepStats, 1)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}

// publish delivers a snapshot to every subscriber without blocking: a full
// channel has its stale element replaced.
func (h *progressHub) publish(s experiments.SweepStats) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- s:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- s:
			default:
			}
		}
	}
}

// close ends every subscription; publish becomes a no-op.
func (h *progressHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}
