package serve

import "sync/atomic"

// serverStats holds the service counters behind /statsz. Flight counters
// pin the dedup claims: FlightsLed counts executor submissions (one per
// unique inflight key), FlightsShared counts requests that joined an
// existing flight — the thundering-herd savings. Cell counters aggregate
// the executor's run-manifest accounting across jobs, so store hit rate is
// CellsLoaded / (CellsLoaded + CellsSimulated).
type serverStats struct {
	JobsReceived  atomic.Int64
	JobsRejected  atomic.Int64
	JobsFailed    atomic.Int64
	FlightsLed    atomic.Int64
	FlightsShared atomic.Int64

	CellsLoaded    atomic.Int64
	CellsSimulated atomic.Int64
	CellsDeduped   atomic.Int64
	TraceReplays   atomic.Int64

	InflightJobs atomic.Int64 // gauge: jobs currently executing
}

// StatsSnapshot is the /statsz document.
type StatsSnapshot struct {
	Schema        string `json:"schema"`
	JobsReceived  int64  `json:"jobs_received"`
	JobsRejected  int64  `json:"jobs_rejected"`
	JobsFailed    int64  `json:"jobs_failed"`
	FlightsLed    int64  `json:"flights_led"`
	FlightsShared int64  `json:"flights_shared"`

	CellsLoaded    int64 `json:"cells_loaded"`
	CellsSimulated int64 `json:"cells_simulated"`
	CellsDeduped   int64 `json:"cells_deduped"`
	TraceReplays   int64 `json:"trace_replays"`

	InflightJobs int64 `json:"inflight_jobs"`
	Draining     bool  `json:"draining"`
}

// StatsSchema versions the /statsz document.
const StatsSchema = "nls-stats/v1"

func (s *serverStats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Schema:         StatsSchema,
		JobsReceived:   s.JobsReceived.Load(),
		JobsRejected:   s.JobsRejected.Load(),
		JobsFailed:     s.JobsFailed.Load(),
		FlightsLed:     s.FlightsLed.Load(),
		FlightsShared:  s.FlightsShared.Load(),
		CellsLoaded:    s.CellsLoaded.Load(),
		CellsSimulated: s.CellsSimulated.Load(),
		CellsDeduped:   s.CellsDeduped.Load(),
		TraceReplays:   s.TraceReplays.Load(),
		InflightJobs:   s.InflightJobs.Load(),
	}
}
