package serve

import "repro/internal/telemetry"

// Rejection reasons, the label values of nls_jobs_rejected_total. /statsz's
// jobs_rejected is their sum.
const (
	rejectDraining = "draining"  // shutdown began, or the queue refused
	rejectInvalid  = "invalid"   // the job document failed validation
	rejectTooLarge = "too_large" // the body blew MaxBodyBytes
)

var rejectReasons = []string{rejectDraining, rejectInvalid, rejectTooLarge}

// executorStages are the experiments.StageSpan stage names, pre-registered
// as nls_executor_stage_seconds{stage=...} series.
var executorStages = []string{"gather", "gen-corpus", "trace-gen", "replay", "store-save"}

// serverStats holds the service counters. Every field is a handle into the
// server's telemetry.Registry — /metricsz scrapes the registry and /statsz
// (snapshot) reads the same atomics, so the two endpoints can never
// disagree. Flight counters pin the dedup claims: FlightsLed counts
// executor submissions (one per unique inflight key), FlightsShared counts
// requests that joined an existing flight — the thundering-herd savings.
// Cell counters aggregate the executor's run-manifest accounting across
// jobs, so store hit rate is CellsLoaded / (CellsLoaded + CellsSimulated).
type serverStats struct {
	JobsReceived  *telemetry.Counter
	JobsFailed    *telemetry.Counter
	FlightsLed    *telemetry.Counter
	FlightsShared *telemetry.Counter

	CellsLoaded    *telemetry.Counter
	CellsSimulated *telemetry.Counter
	CellsDeduped   *telemetry.Counter
	TraceReplays   *telemetry.Counter

	InflightJobs *telemetry.Gauge // jobs currently executing
	QueuedJobs   *telemetry.Gauge // jobs accepted but not yet running
	PoolWorkers  *telemetry.Gauge // configured pool size (constant)
	Draining     *telemetry.Gauge // 1 once Shutdown began

	JobSeconds       *telemetry.Histogram // execution time per led flight
	QueueWaitSeconds *telemetry.Histogram // submit-to-start wait per led flight

	rejected map[string]*telemetry.Counter   // by reason label
	stage    map[string]*telemetry.Histogram // executor stage wall time
}

// newServerStats registers every service metric on reg.
func newServerStats(reg *telemetry.Registry) *serverStats {
	s := &serverStats{
		JobsReceived:  reg.NewCounter("nls_jobs_received_total", "Jobs received by POST /v1/jobs."),
		JobsFailed:    reg.NewCounter("nls_jobs_failed_total", "Accepted jobs whose flight finished with an error."),
		FlightsLed:    reg.NewCounter("nls_flights_led_total", "Unique flights submitted to the executor pool."),
		FlightsShared: reg.NewCounter("nls_flights_shared_total", "Requests that joined an already-inflight identical flight."),

		CellsLoaded:    reg.NewCounter("nls_cells_loaded_total", "Grid cells served from the content-addressed store."),
		CellsSimulated: reg.NewCounter("nls_cells_simulated_total", "Grid cells simulated by the executor."),
		CellsDeduped:   reg.NewCounter("nls_cells_deduped_total", "Cell requests satisfied by an identical cell within the same run."),
		TraceReplays:   reg.NewCounter("nls_trace_replays_total", "Program traces replayed by the executor."),

		InflightJobs: reg.NewGauge("nls_inflight_jobs", "Flights currently executing on the worker pool."),
		QueuedJobs:   reg.NewGauge("nls_queued_jobs", "Flights accepted by the pool but not yet running."),
		PoolWorkers:  reg.NewGauge("nls_pool_workers", "Configured worker pool size."),
		Draining:     reg.NewGauge("nls_draining", "1 once shutdown began, else 0."),

		JobSeconds: reg.NewHistogram("nls_job_seconds",
			"Wall time one flight spent executing (queue wait excluded).", nil),
		QueueWaitSeconds: reg.NewHistogram("nls_queue_wait_seconds",
			"Wall time one flight spent queued before a worker picked it up.", nil),

		rejected: make(map[string]*telemetry.Counter, len(rejectReasons)),
		stage:    make(map[string]*telemetry.Histogram, len(executorStages)),
	}
	for _, reason := range rejectReasons {
		s.rejected[reason] = reg.NewCounter("nls_jobs_rejected_total",
			"Jobs rejected before execution, by reason.",
			telemetry.Label{Key: "reason", Value: reason})
	}
	for _, st := range executorStages {
		s.stage[st] = reg.NewHistogram("nls_executor_stage_seconds",
			"Executor wall time per stage, one observation per job run.", nil,
			telemetry.Label{Key: "stage", Value: st})
	}
	return s
}

// Reject counts one rejection under its reason.
func (s *serverStats) Reject(reason string) { s.rejected[reason].Inc() }

// JobsRejected sums the per-reason rejection counters (the /statsz view).
func (s *serverStats) JobsRejected() int64 {
	var n int64
	for _, c := range s.rejected {
		n += c.Value()
	}
	return n
}

// ObserveStage records one executor stage span; unknown stage names are
// dropped (the executor owns the vocabulary).
func (s *serverStats) ObserveStage(stage string, seconds float64) {
	if h, ok := s.stage[stage]; ok {
		h.Observe(seconds)
	}
}

// StatsSnapshot is the /statsz document.
type StatsSnapshot struct {
	Schema        string `json:"schema"`
	JobsReceived  int64  `json:"jobs_received"`
	JobsRejected  int64  `json:"jobs_rejected"`
	JobsFailed    int64  `json:"jobs_failed"`
	FlightsLed    int64  `json:"flights_led"`
	FlightsShared int64  `json:"flights_shared"`

	CellsLoaded    int64 `json:"cells_loaded"`
	CellsSimulated int64 `json:"cells_simulated"`
	CellsDeduped   int64 `json:"cells_deduped"`
	TraceReplays   int64 `json:"trace_replays"`

	// StoreHitRate is CellsLoaded / (CellsLoaded + CellsSimulated);
	// FlightShareRate is FlightsShared / (FlightsLed + FlightsShared).
	// Both are 0 while their denominator is 0.
	StoreHitRate    float64 `json:"store_hit_rate"`
	FlightShareRate float64 `json:"flight_share_rate"`

	InflightJobs int64 `json:"inflight_jobs"`
	QueuedJobs   int64 `json:"queued_jobs"`
	Draining     bool  `json:"draining"`
}

// StatsSchema versions the /statsz document.
const StatsSchema = "nls-stats/v2"

// ratio returns num/(num+rest), or 0 when the denominator is 0.
func ratio(num, rest int64) float64 {
	if num+rest == 0 {
		return 0
	}
	return float64(num) / float64(num+rest)
}

func (s *serverStats) snapshot() StatsSnapshot {
	loaded, simulated := s.CellsLoaded.Value(), s.CellsSimulated.Value()
	led, shared := s.FlightsLed.Value(), s.FlightsShared.Value()
	return StatsSnapshot{
		Schema:          StatsSchema,
		JobsReceived:    s.JobsReceived.Value(),
		JobsRejected:    s.JobsRejected(),
		JobsFailed:      s.JobsFailed.Value(),
		FlightsLed:      led,
		FlightsShared:   shared,
		CellsLoaded:     loaded,
		CellsSimulated:  simulated,
		CellsDeduped:    s.CellsDeduped.Value(),
		TraceReplays:    s.TraceReplays.Value(),
		StoreHitRate:    ratio(loaded, simulated),
		FlightShareRate: ratio(shared, led),
		InflightJobs:    s.InflightJobs.Value(),
		QueuedJobs:      s.QueuedJobs.Value(),
		Draining:        s.Draining.Value() != 0,
	}
}
