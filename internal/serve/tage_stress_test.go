package serve

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// tageJob is a one-program job whose only arm carries the equal-cost
// TAGE-lite direction predictor — the new PHTSpec surface going through the
// whole service path: decode, validate, build, simulate, render.
const tageJob = `{
  "schema": "nls-job/v1",
  "insns": 20000,
  "programs": ["li"],
  "grid": {
    "name": "tage-tiny",
    "arms": [
      {
        "name": "nls-tage",
        "spec": {
          "predictor": {"kind": "nls-table", "entries": 256},
          "cache": {"size_bytes": 4096, "line_bytes": 32, "assoc": 1},
          "pht": {"kind": "tage", "entries": 512, "tage_tables": 4, "tage_entries": 128, "tage_tag_bits": 9, "tage_min_hist": 4, "tage_max_hist": 64}
        }
      }
    ]
  }
}`

// TestStressTAGEJobsUnderHostileSpecs runs the TAGE decode surface under
// -race (the `make stress` tier): concurrent clients POST a mix of the
// legal TAGE job and hostile mutations that probe every Max* cap. The
// hostile documents must come back 400 — never a panic, a 500, or an
// allocation sized from an unvalidated field — while the legal job keeps
// returning byte-identical 200s alongside them.
func TestStressTAGEJobsUnderHostileSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 64})

	hostile := []string{
		strings.Replace(tageJob, `"tage_tables": 4`, `"tage_tables": 64`, 1),
		strings.Replace(tageJob, `"tage_entries": 128`, `"tage_entries": 4611686018427387904`, 1),
		strings.Replace(tageJob, `"tage_tag_bits": 9`, `"tage_tag_bits": 99`, 1),
		strings.Replace(tageJob, `"tage_min_hist": 4`, `"tage_min_hist": 1000`, 1),
		strings.Replace(tageJob, `"tage_max_hist": 64`, `"tage_max_hist": 100000`, 1),
		strings.Replace(tageJob, `"entries": 512,`, `"entries": -512,`, 1),
		strings.Replace(tageJob, `"kind": "tage"`, `"kind": "tage", "history_bits": 12`, 1),
		strings.Replace(tageJob, `"kind": "tage"`, `"kind": "gshare"`, 1),
	}

	const rounds = 4
	type result struct {
		status int
		body   []byte
	}
	legal := make([]result, rounds)
	bad := make([][]result, len(hostile))
	for i := range bad {
		bad[i] = make([]result, rounds)
	}
	var wg sync.WaitGroup
	post := func(doc string, slot *result) {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		slot.status = resp.StatusCode
		slot.body, _ = io.ReadAll(resp.Body)
	}
	for r := 0; r < rounds; r++ {
		wg.Add(1 + len(hostile))
		go post(tageJob, &legal[r])
		for i, doc := range hostile {
			go post(doc, &bad[i][r])
		}
	}
	wg.Wait()

	for r := 0; r < rounds; r++ {
		if legal[r].status != http.StatusOK {
			t.Fatalf("legal TAGE job round %d: status %d: %s", r, legal[r].status, legal[r].body)
		}
		if !bytes.Equal(legal[r].body, legal[0].body) {
			t.Fatalf("legal TAGE job round %d body differs from round 0", r)
		}
	}
	for i := range hostile {
		for r := 0; r < rounds; r++ {
			if bad[i][r].status != http.StatusBadRequest {
				t.Errorf("hostile spec %d round %d: status %d, want 400: %s",
					i, r, bad[i][r].status, bad[i][r].body)
			}
		}
	}
}
