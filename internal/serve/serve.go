// Package serve turns the grid executor into a long-running concurrent
// sweep service: an HTTP API that accepts grid/arch-spec jobs as JSON
// (the same experiments.Grid and arch.Spec documents the figure pipeline
// uses), validates them as untrusted input, schedules them on a bounded
// worker pool, and serves results out of the content-addressed cell store
// with single-flight deduplication — N concurrent identical requests cost
// exactly one simulation and receive byte-identical bodies, and a warm
// re-request is served from the store byte-identical to the cold
// response. See DESIGN.md §12 for the architecture and EXPERIMENTS.md
// "Serving sweeps" for the wire format.
//
// Every counter lives in one telemetry.Registry (DESIGN.md §15): /metricsz
// is the registry's Prometheus exposition and /statsz is a JSON view over
// the same atomics, so the two endpoints cannot disagree. Requests are
// logged through a structured slog.Logger with a per-job ID that follows
// the job through the pool to its completion record.
//
// Endpoints:
//
//	POST /v1/jobs            run (or join) a job; body = Job, response = Result
//	POST /v1/jobs?stream=1   same, as ndjson: progress events, then the Result
//	GET  /healthz            liveness ("ok", or 503 once draining)
//	GET  /statsz             counters as JSON: flights, dedup, store hits, rates
//	GET  /metricsz           the same counters plus latency histograms,
//	                         Prometheus text format
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Store serves warm cells and persists new ones; nil disables caching
	// (every job simulates).
	Store *experiments.Store
	// CorpusDir, when non-empty, gives every job's executor a disk-backed
	// trace corpus directory (experiments.Executor.CorpusDir): the first
	// job of a (workloads, insns) configuration generates its traces once
	// into a content-keyed container, later jobs replay from disk.
	CorpusDir string
	// Limits bounds untrusted jobs; zero fields take DefaultLimits.
	Limits Limits
	// Workers is the executor pool size (defaults to GOMAXPROCS). Each
	// job's internal replay parallelism is additionally bounded by the
	// executor itself; Workers bounds how many jobs simulate at once.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default 64);
	// beyond it the service sheds load with 503 + Retry-After.
	QueueDepth int
	// Logger receives structured request/job records; nil discards them.
	Logger *slog.Logger
}

// execFunc runs one compiled job and returns the response body and the
// store accounting. It is a field (not a method call) so the stress tests
// can count executor invocations under the hammer.
type execFunc func(job *CompiledJob, progress func(experiments.SweepStats)) ([]byte, Accounting, error)

// Server is the sweep service. Create with New, expose via Handler, stop
// with Shutdown.
type Server struct {
	store     *experiments.Store
	corpusDir string
	limits    Limits
	flights   flightGroup
	pool      *pool
	mux       *http.ServeMux
	exec      execFunc
	log       *slog.Logger

	reg    *telemetry.Registry
	stats  *serverStats
	jobSeq atomic.Int64 // per-process job ID sequence
}

// New builds a Server.
func New(opts Options) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		store:     opts.Store,
		corpusDir: opts.CorpusDir,
		limits:    opts.Limits.withDefaults(),
		pool:      newPool(workers, depth),
		log:       logger,
		reg:       reg,
		stats:     newServerStats(reg),
	}
	s.stats.PoolWorkers.Set(int64(workers))
	s.exec = s.runJob
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.Handle("GET /metricsz", reg.Handler())
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry (the /metricsz source),
// for embedding the service alongside other instrumented subsystems.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// draining reports whether Shutdown began. The flag lives in the stats
// gauge so /statsz, /metricsz, and the request paths all read one atomic.
func (s *Server) draining() bool { return s.stats.Draining.Value() != 0 }

// Shutdown drains the service: new jobs are rejected with 503 immediately,
// and every job already accepted — running or queued — completes before
// Shutdown returns (their waiting clients get their responses). The
// context bounds the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stats.Draining.Set(1)
	s.log.Info("draining")
	return s.pool.shutdown(ctx)
}

// runJob is the default execFunc: one executor run over the job's grid,
// serving unchanged cells from the store, then the deterministic response
// document. Each job gets its own Runner (trace caches are per-run;
// cross-job reuse happens at the cell store, which is keyed by content).
// Executor stage spans feed the registry's stage histograms.
func (s *Server) runJob(job *CompiledJob, progress func(experiments.SweepStats)) ([]byte, Accounting, error) {
	r := experiments.NewRunner(job.Cfg)
	r.Progress = progress
	defer r.CloseCorpus() // release the mapping when the job attached one
	x := &experiments.Executor{R: r, Store: s.store, CorpusDir: s.corpusDir,
		Observer: func(sp experiments.StageSpan) { s.stats.ObserveStage(sp.Stage, sp.Seconds) }}
	rs, err := x.RunGrids(false, job.Grid)
	if err != nil {
		return nil, Accounting{}, err
	}
	doc := Result{Schema: ResultSchema, Key: job.Key, Insns: job.Cfg.Insns, Rows: rs.Rows(job.Grid)}
	body, err := json.Marshal(doc)
	if err != nil {
		return nil, Accounting{}, err
	}
	acct := Accounting{Loaded: rs.Loaded, Simulated: rs.Simulated,
		Deduped: rs.Deduped, Replays: rs.Replays}
	return append(body, '\n'), acct, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	buf, _ := json.MarshalIndent(s.stats.snapshot(), "", "  ")
	w.Write(append(buf, '\n'))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobID := fmt.Sprintf("job-%06d", s.jobSeq.Add(1))
	s.stats.JobsReceived.Inc()
	if s.draining() {
		s.stats.Reject(rejectDraining)
		s.log.Warn("job rejected", "job", jobID, "reason", rejectDraining)
		w.Header().Set("Retry-After", "1")
		http.Error(w, ErrDraining.Error(), http.StatusServiceUnavailable)
		return
	}

	job, err := DecodeJob(http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes), s.limits)
	if err != nil {
		reason := rejectInvalid
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			reason = rejectTooLarge
			status = http.StatusRequestEntityTooLarge
		}
		s.stats.Reject(reason)
		s.log.Warn("job rejected", "job", jobID, "reason", reason, "err", err)
		http.Error(w, err.Error(), status)
		return
	}

	fl, leader := s.flights.join(job.Key)
	if leader {
		s.stats.FlightsLed.Inc()
		s.log.Info("flight led", "job", jobID, "key", job.Key, "insns", job.Cfg.Insns)
		queuedAt := time.Now()
		s.stats.QueuedJobs.Add(1)
		submitErr := s.pool.submit(func() {
			s.stats.QueuedJobs.Add(-1)
			s.stats.QueueWaitSeconds.Observe(time.Since(queuedAt).Seconds())
			s.stats.InflightJobs.Add(1)
			defer s.stats.InflightJobs.Add(-1)
			start := time.Now()
			body, acct, err := s.exec(job, fl.hub.publish)
			elapsed := time.Since(start)
			s.stats.JobSeconds.Observe(elapsed.Seconds())
			if err == nil {
				s.stats.CellsLoaded.Add(int64(acct.Loaded))
				s.stats.CellsSimulated.Add(int64(acct.Simulated))
				s.stats.CellsDeduped.Add(int64(acct.Deduped))
				s.stats.TraceReplays.Add(int64(acct.Replays))
				s.log.Info("job done", "job", jobID, "key", fl.key,
					"seconds", elapsed.Seconds(), "cells_loaded", acct.Loaded,
					"cells_simulated", acct.Simulated)
			} else {
				s.log.Error("job failed", "job", jobID, "key", fl.key,
					"seconds", elapsed.Seconds(), "err", err)
			}
			s.flights.finish(fl, body, acct, err)
		})
		if submitErr != nil {
			// The flight never ran; fail every waiter (they all requested
			// the same overloaded moment).
			s.stats.QueuedJobs.Add(-1)
			s.log.Warn("job shed", "job", jobID, "key", job.Key, "err", submitErr)
			s.flights.finish(fl, nil, Accounting{}, submitErr)
		}
	} else {
		s.stats.FlightsShared.Inc()
		s.log.Debug("flight shared", "job", jobID, "key", job.Key)
	}

	if r.URL.Query().Get("stream") != "" {
		s.streamResult(w, r, fl, leader)
		return
	}
	select {
	case <-fl.done:
	case <-r.Context().Done():
		return // client gone; the flight keeps running for other waiters
	}
	s.writeResult(w, fl, leader)
}

// writeResult sends a finished flight: the shared deterministic body, with
// the per-request accounting in headers (never in the body — see Result).
func (s *Server) writeResult(w http.ResponseWriter, fl *flight, leader bool) {
	if fl.err != nil {
		s.stats.JobsFailed.Inc()
		status := http.StatusInternalServerError
		if errors.Is(fl.err, ErrDraining) || errors.Is(fl.err, ErrBusy) {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, fl.err.Error(), status)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-NLS-Job", fl.key)
	if leader {
		h.Set("X-NLS-Flight", "leader")
	} else {
		h.Set("X-NLS-Flight", "shared")
	}
	h.Set("X-NLS-Cells-Loaded", strconv.Itoa(fl.acct.Loaded))
	h.Set("X-NLS-Cells-Simulated", strconv.Itoa(fl.acct.Simulated))
	w.Write(fl.body)
}

// progressEvent is one line of a streamed response.
type progressEvent struct {
	Type       string  `json:"type"` // "progress"
	Cells      int     `json:"cells"`
	TotalCells int     `json:"total_cells"`
	Records    int64   `json:"records"`
	Seconds    float64 `json:"seconds"`
	RecPerSec  float64 `json:"records_per_sec"`
}

// streamResult writes an ndjson stream: executor progress snapshots as
// they arrive (latest-wins; a slow client skips intermediate snapshots,
// never blocks the executor), then the flight's result document — the
// exact bytes a plain request gets — as the final line.
func (s *Server) streamResult(w http.ResponseWriter, r *http.Request, fl *flight, leader bool) {
	ch, cancel := fl.hub.subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-NLS-Job", fl.key)
	if leader {
		h.Set("X-NLS-Flight", "leader")
	} else {
		h.Set("X-NLS-Flight", "shared")
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	for {
		select {
		case <-r.Context().Done():
			return
		case st, ok := <-ch:
			if !ok {
				ch = nil // flight finished; fall through to done
				continue
			}
			enc.Encode(progressEvent{Type: "progress", Cells: st.Cells,
				TotalCells: st.TotalCells, Records: st.Records,
				Seconds: st.Elapsed.Seconds(), RecPerSec: st.RecordsPerSec()})
			if flusher != nil {
				flusher.Flush()
			}
		case <-fl.done:
			if fl.err != nil {
				s.stats.JobsFailed.Inc()
				enc.Encode(struct {
					Type  string `json:"type"`
					Error string `json:"error"`
				}{"error", fl.err.Error()})
				return
			}
			w.Write(fl.body)
			return
		}
	}
}
