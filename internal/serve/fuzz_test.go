package serve

import (
	"strings"
	"testing"
)

// FuzzJobDecode exercises the job decoder — the service's untrusted-input
// surface — with arbitrary bytes: it must never panic or size an allocation
// from an unvalidated field, and anything it accepts must compile to a job
// that is bounded by the limits, re-validates cleanly, and derives a stable
// flight key.
func FuzzJobDecode(f *testing.F) {
	// Seeds: the valid documents plus the interesting rejection shapes.
	f.Add(validJob)
	f.Add(tinyJob)
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"insns": 1, "grid": {"name": "g", "arms": []}}`)
	f.Add(validJob[:len(validJob)/2])                                       // truncated mid-document
	f.Add(strings.Replace(validJob, `"entries": 512`, `"entries": 513`, 1)) // non-pow2 table
	f.Add(strings.Replace(validJob, `"entries": 512`, `"entries": 4611686018427387904`, 1))
	f.Add(strings.Replace(validJob, `"entries": 512`, `"entries": -8`, 1))
	f.Add(strings.Replace(validJob, `"line_bytes": 32`, `"line_bytes": 31`, 1)) // bad geometry
	f.Add(strings.Replace(validJob, `"size_bytes": 8192`, `"size_bytes": 1073741824`, 1))
	f.Add(strings.Replace(validJob, `["li", "gcc"]`, `["quake"]`, 1)) // unknown program
	f.Add(strings.Replace(validJob, `"insns": 40000`, `"insns": 99999999999`, 1))
	f.Add(strings.Replace(validJob, `"kind": "nls-table"`, `"kind": "nls-cache", "per_line": 3`, 1))
	f.Add(strings.Replace(validJob, `"kind": "gshare"`, `"kind": "gas"`, 1))
	f.Add(`{"schema": "nls-job/v1", "insns": 1000, "grid": {"arms": [{"name": "a", "spec": {}}]}}`)
	// TAGE spec surface: one legal arm, then the hostile shapes Validate
	// must reject without sizing an allocation from them — table count
	// beyond MaxTAGETables, tag width beyond MaxTAGETagBits, an inverted
	// history range, entries beyond MaxPHTEntries, tage fields leaking
	// onto a gshare kind, and legacy history_bits leaking onto tage.
	const tagePHT = `{"kind": "tage", "entries": 512, "tage_tables": 4, "tage_entries": 128, "tage_tag_bits": 9, "tage_min_hist": 4, "tage_max_hist": 64}`
	legacyPHT := `{"kind": "gshare", "entries": 1024, "history_bits": 6}`
	f.Add(strings.Replace(validJob, legacyPHT, tagePHT, 1))
	f.Add(strings.Replace(validJob, legacyPHT, strings.Replace(tagePHT, `"tage_tables": 4`, `"tage_tables": 9`, 1), 1))
	f.Add(strings.Replace(validJob, legacyPHT, strings.Replace(tagePHT, `"tage_tag_bits": 9`, `"tage_tag_bits": 99`, 1), 1))
	f.Add(strings.Replace(validJob, legacyPHT, strings.Replace(tagePHT, `"tage_min_hist": 4`, `"tage_min_hist": 64`, 1), 1))
	f.Add(strings.Replace(validJob, legacyPHT, strings.Replace(tagePHT, `"tage_entries": 128`, `"tage_entries": 4611686018427387904`, 1), 1))
	f.Add(strings.Replace(validJob, legacyPHT, strings.Replace(tagePHT, `"tage_max_hist": 64`, `"tage_max_hist": -1`, 1), 1))
	f.Add(strings.Replace(validJob, `"kind": "gshare", "entries": 1024`, `"kind": "gshare", "tage_tables": 4, "entries": 1024`, 1))
	f.Add(strings.Replace(validJob, legacyPHT, strings.Replace(tagePHT, `"kind": "tage"`, `"kind": "tage", "history_bits": 6`, 1), 1))
	// PrefetchSpec surface: the two legal kinds, then hostile shapes —
	// fields meaningless for the kind, every sizing cap overshot (FTQ depth,
	// degree, MSHRs, latency — each sizes an allocation or a loop bound),
	// and negatives.
	withPref := func(pref string) string {
		return strings.Replace(validJob, legacyPHT, legacyPHT+`, "prefetch": `+pref, 1)
	}
	f.Add(withPref(`{"kind": "fdip", "ftq_depth": 8}`))
	f.Add(withPref(`{"kind": "next-line", "degree": 2, "mshrs": 16, "latency": 30}`))
	f.Add(withPref(`{"kind": "stream"}`))
	f.Add(withPref(`{"kind": "fdip"}`))
	f.Add(withPref(`{"kind": "fdip", "ftq_depth": 8, "degree": 2}`))
	f.Add(withPref(`{"kind": "fdip", "ftq_depth": 4611686018427387904}`))
	f.Add(withPref(`{"kind": "fdip", "ftq_depth": -8}`))
	f.Add(withPref(`{"kind": "next-line", "ftq_depth": 8}`))
	f.Add(withPref(`{"kind": "next-line", "degree": 4611686018427387904}`))
	f.Add(withPref(`{"kind": "fdip", "ftq_depth": 8, "mshrs": 4611686018427387904}`))
	f.Add(withPref(`{"kind": "fdip", "ftq_depth": 8, "latency": -20}`))

	lim := Limits{MaxBodyBytes: 1 << 16, MaxInsns: 1 << 20, MaxCells: 64}

	f.Fuzz(func(t *testing.T, doc string) {
		job, err := DecodeJob(strings.NewReader(doc), lim)
		if err != nil {
			return // rejection is fine; panics and unbounded allocation are not
		}
		// Accepted jobs must respect every limit...
		if job.Cfg.Insns <= 0 || job.Cfg.Insns > lim.MaxInsns {
			t.Fatalf("accepted job with insns %d outside (0, %d]", job.Cfg.Insns, lim.MaxInsns)
		}
		if job.Cells <= 0 || job.Cells > lim.MaxCells {
			t.Fatalf("accepted job with %d cells, cap %d", job.Cells, lim.MaxCells)
		}
		if len(job.Cfg.Programs) == 0 {
			t.Fatal("accepted job resolved to no programs")
		}
		// ...be buildable without panicking (Validate really covered Build)...
		for _, a := range job.Grid.Arms {
			if len(a.Caches) == 0 {
				a.Spec.MustBuild()
				continue
			}
			for _, g := range a.Caches {
				a.Spec.WithGeometry(g).MustBuild()
			}
		}
		// ...and key deterministically.
		again, err := DecodeJob(strings.NewReader(doc), lim)
		if err != nil {
			t.Fatalf("accepted document rejected on second decode: %v", err)
		}
		if again.Key != job.Key {
			t.Fatalf("flight key not deterministic: %s vs %s", job.Key, again.Key)
		}
	})
}
