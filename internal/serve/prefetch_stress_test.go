package serve

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// prefetchJob is a one-program job whose arms carry the decoupled-frontend
// prefetch surface (DESIGN.md §14): an FDIP arm with an FTQ and a next-line
// arm — the PrefetchSpec document going through the whole service path:
// decode, validate, build, simulate, render.
const prefetchJob = `{
  "schema": "nls-job/v1",
  "insns": 20000,
  "programs": ["li"],
  "grid": {
    "name": "prefetch-tiny",
    "arms": [
      {
        "name": "nls-fdip",
        "spec": {
          "predictor": {"kind": "nls-table", "entries": 256},
          "cache": {"size_bytes": 4096, "line_bytes": 32, "assoc": 1},
          "pht": {"kind": "gshare", "entries": 1024, "history_bits": 6},
          "prefetch": {"kind": "fdip", "ftq_depth": 8, "mshrs": 8, "latency": 20}
        }
      },
      {
        "name": "nls-nextline",
        "spec": {
          "predictor": {"kind": "nls-table", "entries": 256},
          "cache": {"size_bytes": 4096, "line_bytes": 32, "assoc": 1},
          "pht": {"kind": "gshare", "entries": 1024, "history_bits": 6},
          "prefetch": {"kind": "next-line", "degree": 2}
        }
      }
    ]
  }
}`

// TestStressPrefetchJobsUnderHostileSpecs runs the PrefetchSpec decode
// surface under -race (the `make stress` tier): concurrent clients POST a
// mix of the legal prefetch job and hostile mutations probing every
// MaxPrefetch* cap plus fields meaningless for the kind. The hostile
// documents must come back 400 — never a panic, a 500, or an allocation
// sized from an unvalidated field (the FTQ ring and MSHR map are both sized
// from this document) — while the legal job keeps returning byte-identical
// 200s alongside them.
func TestStressPrefetchJobsUnderHostileSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 64})

	hostile := []string{
		strings.Replace(prefetchJob, `"kind": "fdip"`, `"kind": "markov"`, 1),
		strings.Replace(prefetchJob, `"ftq_depth": 8`, `"ftq_depth": 0`, 1),
		strings.Replace(prefetchJob, `"ftq_depth": 8`, `"ftq_depth": 4611686018427387904`, 1),
		strings.Replace(prefetchJob, `"ftq_depth": 8`, `"ftq_depth": -8`, 1),
		strings.Replace(prefetchJob, `"kind": "fdip", "ftq_depth": 8`, `"kind": "fdip", "ftq_depth": 8, "degree": 2`, 1),
		strings.Replace(prefetchJob, `"kind": "next-line", "degree": 2`, `"kind": "next-line", "degree": 2, "ftq_depth": 8`, 1),
		strings.Replace(prefetchJob, `"degree": 2`, `"degree": 4611686018427387904`, 1),
		strings.Replace(prefetchJob, `"mshrs": 8`, `"mshrs": 4611686018427387904`, 1),
		strings.Replace(prefetchJob, `"latency": 20`, `"latency": -20`, 1),
		strings.Replace(prefetchJob, `"latency": 20`, `"latency": 4611686018427387904`, 1),
	}

	const rounds = 4
	type result struct {
		status int
		body   []byte
	}
	legal := make([]result, rounds)
	bad := make([][]result, len(hostile))
	for i := range bad {
		bad[i] = make([]result, rounds)
	}
	var wg sync.WaitGroup
	post := func(doc string, slot *result) {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		slot.status = resp.StatusCode
		slot.body, _ = io.ReadAll(resp.Body)
	}
	for r := 0; r < rounds; r++ {
		wg.Add(1 + len(hostile))
		go post(prefetchJob, &legal[r])
		for i, doc := range hostile {
			go post(doc, &bad[i][r])
		}
	}
	wg.Wait()

	for r := 0; r < rounds; r++ {
		if legal[r].status != http.StatusOK {
			t.Fatalf("legal prefetch job round %d: status %d: %s", r, legal[r].status, legal[r].body)
		}
		if !bytes.Equal(legal[r].body, legal[0].body) {
			t.Fatalf("legal prefetch job round %d body differs from round 0", r)
		}
	}
	for i := range hostile {
		for r := 0; r < rounds; r++ {
			if bad[i][r].status != http.StatusBadRequest {
				t.Errorf("hostile spec %d round %d: status %d, want 400: %s",
					i, r, bad[i][r].status, bad[i][r].body)
			}
		}
	}
}
