package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestStressSingleFlightHammer is the single-flight acceptance test: 100
// goroutines POST the identical job concurrently, and the claim under test
// is N→1 — exactly one executor invocation serves every request, all 100
// bodies are byte-identical, and /statsz shows 1 flight led + 99 shared.
// A warm re-request afterwards is byte-identical to the hammered response.
// Run under -race via `make stress`.
func TestStressSingleFlightHammer(t *testing.T) {
	const clients = 100

	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: clients})

	// Count executor invocations and hold the first one until every client
	// has joined the flight (observable as flights led + shared), so the
	// test proves dedup rather than racing request arrival against a fast
	// simulation. Responses only flow after the executor runs, so clients
	// cannot signal this themselves.
	var invocations atomic.Int64
	inner := s.exec
	s.exec = func(job *CompiledJob, progress func(experiments.SweepStats)) ([]byte, Accounting, error) {
		invocations.Add(1)
		for s.stats.FlightsLed.Value()+s.stats.FlightsShared.Value() < clients {
			time.Sleep(time.Millisecond)
		}
		return inner(job, progress)
	}

	bodies := make([][]byte, clients)
	status := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tinyJob))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			status[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	if got := invocations.Load(); got != 1 {
		t.Fatalf("executor ran %d times for %d identical requests, want exactly 1", got, clients)
	}
	for i := 0; i < clients; i++ {
		if status[i] != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, status[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs from client 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.FlightsLed != 1 || snap.FlightsShared != clients-1 {
		t.Errorf("flights led/shared = %d/%d, want 1/%d", snap.FlightsLed, snap.FlightsShared, clients-1)
	}
	if snap.CellsSimulated != 1 || snap.CellsLoaded != 0 {
		t.Errorf("cells simulated/loaded = %d/%d, want 1/0 (one cold run)", snap.CellsSimulated, snap.CellsLoaded)
	}

	// /metricsz at the quiescent moment must agree with /statsz on every
	// counter the hammer exercised — both are views over one registry.
	prom := scrapeProm(t, ts.URL)
	for promKey, stat := range map[string]int64{
		"nls_flights_led_total":     snap.FlightsLed,
		"nls_flights_shared_total":  snap.FlightsShared,
		"nls_cells_simulated_total": snap.CellsSimulated,
		"nls_cells_loaded_total":    snap.CellsLoaded,
		"nls_jobs_received_total":   snap.JobsReceived,
		"nls_inflight_jobs":         0,
		"nls_queued_jobs":           0,
	} {
		if got := prom[promKey]; got != float64(stat) {
			t.Errorf("after hammer: metricsz %s=%g disagrees with statsz %d", promKey, got, stat)
		}
	}

	// Warm re-request: a fresh flight served entirely from the store,
	// byte-identical to what the hammer saw.
	warm := postJob(t, ts.URL, tinyJob)
	warmBody := readAll(t, warm)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm POST: %d", warm.StatusCode)
	}
	if got := warm.Header.Get("X-NLS-Cells-Loaded"); got != "1" {
		t.Errorf("warm loaded = %q, want 1", got)
	}
	if !bytes.Equal(warmBody, bodies[0]) {
		t.Error("warm response differs from the hammered response")
	}
}

// TestStressDistinctJobsDoNotShare is the negative control: two jobs that
// differ only in instruction budget must lead distinct flights and return
// different bodies.
func TestStressDistinctJobsDoNotShare(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	other := strings.Replace(tinyJob, `"insns": 20000`, `"insns": 21000`, 1)

	var wg sync.WaitGroup
	out := make([][]byte, 2)
	for i, doc := range []string{tinyJob, other} {
		wg.Add(1)
		go func(i int, doc string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			out[i], _ = io.ReadAll(resp.Body)
		}(i, doc)
	}
	wg.Wait()

	if bytes.Equal(out[0], out[1]) {
		t.Error("jobs with different budgets returned identical bodies")
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.FlightsLed != 2 || snap.FlightsShared != 0 {
		t.Errorf("flights led/shared = %d/%d, want 2/0", snap.FlightsLed, snap.FlightsShared)
	}
}
