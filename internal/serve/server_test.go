package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// tinyJob is a one-program, one-arm job small enough that the full
// HTTP-to-simulator path stays fast under -race.
const tinyJob = `{
  "schema": "nls-job/v1",
  "insns": 20000,
  "programs": ["li"],
  "grid": {
    "name": "tiny",
    "arms": [
      {
        "name": "nls",
        "spec": {
          "predictor": {"kind": "nls-table", "entries": 256},
          "cache": {"size_bytes": 4096, "line_bytes": 32, "assoc": 1},
          "pht": {"kind": "gshare", "entries": 512, "history_bits": 4}
        }
      }
    ]
  }
}`

// newTestServer builds a Server over a fresh store in t.TempDir and an
// httptest front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Store == nil {
		store, err := experiments.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = store
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServerHealthz(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

func TestServerJobColdThenWarm(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	cold := postJob(t, ts.URL, tinyJob)
	coldBody := readAll(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold POST = %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-NLS-Cells-Simulated"); got != "1" {
		t.Errorf("cold simulated = %q, want 1", got)
	}
	if got := cold.Header.Get("X-NLS-Flight"); got != "leader" {
		t.Errorf("cold flight = %q, want leader", got)
	}

	var doc Result
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatalf("cold body is not a Result: %v", err)
	}
	if doc.Schema != ResultSchema || doc.Insns != 20000 || len(doc.Rows) != 1 {
		t.Errorf("Result = schema %q, insns %d, %d rows; want %q, 20000, 1",
			doc.Schema, doc.Insns, len(doc.Rows), ResultSchema)
	}
	if doc.Rows[0].Program != "li-like" || doc.Rows[0].Arch != "nls" {
		t.Errorf("row labeled %q/%q, want li-like/nls", doc.Rows[0].Program, doc.Rows[0].Arch)
	}
	if doc.Key != cold.Header.Get("X-NLS-Job") {
		t.Errorf("body key %q != X-NLS-Job header %q", doc.Key, cold.Header.Get("X-NLS-Job"))
	}

	warm := postJob(t, ts.URL, tinyJob)
	warmBody := readAll(t, warm)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm POST = %d: %s", warm.StatusCode, warmBody)
	}
	if got := warm.Header.Get("X-NLS-Cells-Loaded"); got != "1" {
		t.Errorf("warm loaded = %q, want 1 (not served from store)", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm response differs from cold:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
}

func TestServerJobRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{Limits: Limits{MaxBodyBytes: 2048}})

	cases := map[string]struct {
		body string
		want int
	}{
		"malformed json":  {body: `{"insns": `, want: http.StatusBadRequest},
		"unknown program": {body: strings.Replace(tinyJob, `["li"]`, `["quake"]`, 1), want: http.StatusBadRequest},
		"bad spec":        {body: strings.Replace(tinyJob, `"entries": 256`, `"entries": 257`, 1), want: http.StatusBadRequest},
		"oversized":       {body: tinyJob + strings.Repeat(" ", 4096), want: http.StatusRequestEntityTooLarge},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			resp := postJob(t, ts.URL, tc.body)
			body := readAll(t, resp)
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d (%s), want %d", resp.StatusCode, bytes.TrimSpace(body), tc.want)
			}
		})
	}
}

func TestServerStatsz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	readAll(t, postJob(t, ts.URL, tinyJob))
	readAll(t, postJob(t, ts.URL, tinyJob))

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != StatsSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, StatsSchema)
	}
	if snap.JobsReceived != 2 || snap.FlightsLed != 2 {
		t.Errorf("received/led = %d/%d, want 2/2 (sequential requests lead distinct flights)",
			snap.JobsReceived, snap.FlightsLed)
	}
	if snap.CellsSimulated != 1 || snap.CellsLoaded != 1 {
		t.Errorf("simulated/loaded = %d/%d, want 1/1 (cold simulates, warm loads)",
			snap.CellsSimulated, snap.CellsLoaded)
	}
	if snap.Draining {
		t.Error("draining = true on a live server")
	}
}

func TestServerStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJob(t, ts.URL, tinyJob+"") // warm the store? no — cold is fine for streaming
	readAll(t, resp)

	r, err := http.Post(ts.URL+"/v1/jobs?stream=1", "application/json", strings.NewReader(tinyJob))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stream POST = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	// Every line but the last is a progress event; the last line is the
	// exact Result document a plain request returns.
	var last []byte
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		last = append(last[:0], sc.Bytes()...)
		var probe struct {
			Type   string `json:"type"`
			Schema string `json:"schema"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("line %d is not JSON: %q", lines, sc.Bytes())
		}
		if probe.Type == "error" {
			t.Fatalf("stream reported error: %s", probe.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream produced no lines")
	}
	var doc Result
	if err := json.Unmarshal(last, &doc); err != nil || doc.Schema != ResultSchema {
		t.Fatalf("final stream line is not a Result: %q (err %v)", last, err)
	}

	// The streamed result must match a plain request byte-for-byte (modulo
	// the trailing newline scanner strips).
	plain := readAll(t, postJob(t, ts.URL, tinyJob))
	if !bytes.Equal(append(last, '\n'), plain) {
		t.Error("streamed result differs from plain response")
	}
}

func TestServerShutdownRejectsNewJobs(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postJob(t, ts.URL, tinyJob)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST after Shutdown = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

func TestServerShutdownDrainsAcceptedJobs(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{})
	inner := s.exec
	s.exec = func(job *CompiledJob, progress func(experiments.SweepStats)) ([]byte, Accounting, error) {
		<-release
		return inner(job, progress)
	}

	done := make(chan []byte, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tinyJob))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			done <- nil
			return
		}
		done <- b
	}()

	// Wait until the job is inflight, then shut down while it is blocked.
	waitFor(t, func() bool { return s.stats.FlightsLed.Value() == 1 })
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()

	// Shutdown must not complete while the accepted job is still running.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned (%v) before the inflight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if body := <-done; body == nil {
		t.Fatal("the drained job's client did not get its 200 response")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolBusyAndDraining(t *testing.T) {
	p := newPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.submit(func() { close(started); <-block }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // the worker holds task 1; the queue slot is free
	// Worker busy; the single queue slot takes one more.
	if err := p.submit(func() {}); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if err := p.submit(func() {}); err != ErrBusy {
		t.Fatalf("over-capacity submit = %v, want ErrBusy", err)
	}

	close(block)
	if err := p.shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := p.submit(func() {}); err != ErrDraining {
		t.Fatalf("submit after shutdown = %v, want ErrDraining", err)
	}
	// Shutdown is idempotent.
	if err := p.shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestPoolShutdownHonorsContext(t *testing.T) {
	p := newPool(1, 1)
	block := make(chan struct{})
	defer close(block)
	if err := p.submit(func() { <-block }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown with stuck task = %v, want DeadlineExceeded", err)
	}
}

func TestFlightGroupJoinFinish(t *testing.T) {
	var g flightGroup
	fl, leader := g.join("k")
	if !leader {
		t.Fatal("first join is not leader")
	}
	fl2, leader2 := g.join("k")
	if leader2 || fl2 != fl {
		t.Fatal("second join did not share the inflight flight")
	}
	if flOther, leaderOther := g.join("k2"); !leaderOther || flOther == fl {
		t.Fatal("distinct key shared a flight")
	}

	g.finish(fl, []byte("body"), Accounting{Loaded: 3}, nil)
	<-fl.done
	if string(fl.body) != "body" || fl.acct.Loaded != 3 || fl.err != nil {
		t.Fatalf("finished flight = %q/%+v/%v", fl.body, fl.acct, fl.err)
	}
	// A post-completion join starts a fresh flight.
	if _, leader3 := g.join("k"); !leader3 {
		t.Fatal("join after finish did not lead a fresh flight")
	}
}

func TestProgressHubLatestWins(t *testing.T) {
	h := newProgressHub()
	ch, cancel := h.subscribe()
	defer cancel()

	h.publish(experiments.SweepStats{Cells: 1})
	h.publish(experiments.SweepStats{Cells: 2}) // replaces the unread 1
	if st := <-ch; st.Cells != 2 {
		t.Fatalf("read %d, want the latest snapshot 2", st.Cells)
	}

	h.close()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed by hub close")
	}
	// Publish and double-close after close are no-ops.
	h.publish(experiments.SweepStats{Cells: 3})
	h.close()

	// Subscribing to a closed hub yields an already-closed channel.
	ch2, cancel2 := h.subscribe()
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Fatal("subscription to a closed hub was not closed")
	}
}

// TestProgressHubConcurrent hammers publish/subscribe/cancel under -race.
func TestProgressHubConcurrent(t *testing.T) {
	h := newProgressHub()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel := h.subscribe()
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		h.publish(experiments.SweepStats{Cells: i})
	}
	close(stop)
	wg.Wait()
	h.close()
}

// TestProgressHubSlowSubscriber pins the latest-wins contract the executor
// depends on: a subscriber that never reads (a stalled streaming client)
// must not block publish — the publisher replaces the stale element and
// moves on — and a healthy subscriber on the same hub keeps receiving
// fresh snapshots. publish runs on the goroutine that holds the Runner's
// stats lock, so a block here would stall the whole sweep. Run under -race
// via `make stress`.
func TestProgressHubSlowSubscriber(t *testing.T) {
	h := newProgressHub()

	slow, cancelSlow := h.subscribe() // never read until the very end
	defer cancelSlow()
	fast, cancelFast := h.subscribe()
	defer cancelFast()

	// Publish far more snapshots than any channel buffers (capacity 1); if
	// publish could block on the stalled subscriber, this loop would hang
	// and the test would time out.
	const publishes = 10_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= publishes; i++ {
			h.publish(experiments.SweepStats{Cells: i})
			if i%100 == 0 {
				// Drain the healthy subscriber occasionally; it must see
				// ever-fresher snapshots despite its stalled sibling.
				if st := <-fast; st.Cells == 0 {
					t.Error("fast subscriber read a zero snapshot")
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish blocked on a stalled subscriber")
	}

	// The stalled subscriber's buffered element is the most recent publish
	// that reached it — latest-wins replaced everything older.
	select {
	case st := <-slow:
		if st.Cells == 0 {
			t.Errorf("stalled subscriber saw zero snapshot %+v", st)
		}
	default:
		t.Error("stalled subscriber has no buffered snapshot")
	}
	h.close()
}
