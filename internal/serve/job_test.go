package serve

import (
	"strings"
	"testing"
)

// validJob is a small, completely legal two-arm job used across the decode
// tests. 40k instructions keeps any test that actually runs it fast.
const validJob = `{
  "schema": "nls-job/v1",
  "insns": 40000,
  "programs": ["li", "gcc"],
  "grid": {
    "name": "t",
    "arms": [
      {
        "name": "nls",
        "spec": {
          "predictor": {"kind": "nls-table", "entries": 512},
          "cache": {"size_bytes": 8192, "line_bytes": 32, "assoc": 1},
          "pht": {"kind": "gshare", "entries": 1024, "history_bits": 6}
        }
      },
      {
        "name": "btb",
        "spec": {
          "predictor": {"kind": "btb", "entries": 256, "assoc": 4},
          "cache": {"size_bytes": 8192, "line_bytes": 32, "assoc": 1},
          "pht": {"kind": "gshare", "entries": 1024, "history_bits": 6}
        },
        "caches": [
          {"size_bytes": 8192, "line_bytes": 32, "assoc": 1},
          {"size_bytes": 16384, "line_bytes": 32, "assoc": 2}
        ]
      }
    ]
  }
}`

func TestDecodeJobValid(t *testing.T) {
	job, err := DecodeJob(strings.NewReader(validJob), Limits{})
	if err != nil {
		t.Fatalf("DecodeJob: %v", err)
	}
	// 2 programs × (1 + 2 geometry points) = 6 cells.
	if job.Cells != 6 {
		t.Errorf("Cells = %d, want 6", job.Cells)
	}
	if job.Cfg.Insns != 40000 {
		t.Errorf("Insns = %d, want 40000", job.Cfg.Insns)
	}
	if got := len(job.Cfg.Programs); got != 2 {
		t.Errorf("programs = %d, want 2", got)
	}
	if len(job.Key) != 64 {
		t.Errorf("Key = %q, want 64 hex chars", job.Key)
	}
}

func TestDecodeJobKeyDeterministic(t *testing.T) {
	a, err := DecodeJob(strings.NewReader(validJob), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeJob(strings.NewReader(validJob), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != b.Key {
		t.Errorf("same document, different keys: %s vs %s", a.Key, b.Key)
	}

	// Any content change must move the key: budget, spec sizing, penalties,
	// and presentation labels are all covered.
	for name, mutate := range map[string]string{
		"insns":     strings.Replace(validJob, `"insns": 40000`, `"insns": 40001`, 1),
		"entries":   strings.Replace(validJob, `"entries": 512`, `"entries": 1024`, 1),
		"penalties": strings.Replace(validJob, `"insns": 40000,`, `"insns": 40000, "penalties": {"misfetch": 2, "mispredict": 4, "cache_miss": 5},`, 1),
		"arm label": strings.Replace(validJob, `"name": "nls"`, `"name": "nls2"`, 1),
		"programs":  strings.Replace(validJob, `["li", "gcc"]`, `["li"]`, 1),
	} {
		m, err := DecodeJob(strings.NewReader(mutate), Limits{})
		if err != nil {
			t.Fatalf("%s variant failed to decode: %v", name, err)
		}
		if m.Key == a.Key {
			t.Errorf("changing %s did not change the flight key", name)
		}
	}
}

func TestDecodeJobDefaultsToAllPrograms(t *testing.T) {
	doc := strings.Replace(validJob, `"programs": ["li", "gcc"],`, ``, 1)
	job, err := DecodeJob(strings.NewReader(doc), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(job.Cfg.Programs); got != 6 {
		t.Errorf("defaulted to %d programs, want all 6", got)
	}
}

func TestDecodeJobRejects(t *testing.T) {
	cases := map[string]struct {
		doc  string
		lim  Limits
		want string // substring of the error
	}{
		"empty":          {doc: ``, want: "bad job document"},
		"not json":       {doc: `nope`, want: "bad job document"},
		"trailing data":  {doc: validJob + `{"x":1}`, want: "trailing data"},
		"unknown field":  {doc: strings.Replace(validJob, `"insns"`, `"bogus": 1, "insns"`, 1), want: "bogus"},
		"bad schema":     {doc: strings.Replace(validJob, "nls-job/v1", "nls-job/v9", 1), want: `want "nls-job/v1"`},
		"zero insns":     {doc: strings.Replace(validJob, `"insns": 40000`, `"insns": 0`, 1), want: "out of range"},
		"negative insns": {doc: strings.Replace(validJob, `"insns": 40000`, `"insns": -5`, 1), want: "out of range"},
		"insns over cap": {doc: validJob, lim: Limits{MaxInsns: 1000}, want: "out of range"},
		"unknown program": {
			doc:  strings.Replace(validJob, `["li", "gcc"]`, `["li", "quake"]`, 1),
			want: `unknown program "quake"`,
		},
		"duplicate program": {
			// "gcc" and "gcc-like" alias the same built-in spec.
			doc:  strings.Replace(validJob, `["li", "gcc"]`, `["gcc", "gcc-like"]`, 1),
			want: "duplicate program",
		},
		"negative penalty": {
			doc:  strings.Replace(validJob, `"insns": 40000,`, `"insns": 40000, "penalties": {"misfetch": -1, "mispredict": 4, "cache_miss": 5},`, 1),
			want: "non-negative",
		},
		"no arms": {
			doc:  strings.Replace(validJob, `"arms": [`, `"arms2": [`, 1),
			want: "", // unknown field wins, any error is fine
		},
		"unnamed arm": {
			doc:  strings.Replace(validJob, `"name": "nls"`, `"name": ""`, 1),
			want: "has no name",
		},
		"non-pow2 entries": {
			doc:  strings.Replace(validJob, `"entries": 512`, `"entries": 513`, 1),
			want: "power of two",
		},
		"huge entries": {
			doc:  strings.Replace(validJob, `"entries": 512`, `"entries": 1073741824`, 1),
			want: "power of two",
		},
		"bad geometry": {
			doc:  strings.Replace(validJob, `{"size_bytes": 16384, "line_bytes": 32, "assoc": 2}`, `{"size_bytes": 16384, "line_bytes": 0, "assoc": 2}`, 1),
			want: "geometry",
		},
		"cell cap": {doc: validJob, lim: Limits{MaxCells: 3}, want: "cap"},
		"body cap": {doc: validJob, lim: Limits{MaxBodyBytes: 64}, want: "exceeds the 64-byte cap"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := DecodeJob(strings.NewReader(tc.doc), tc.lim)
			if err == nil {
				t.Fatal("DecodeJob accepted the document")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLimitsWithDefaults(t *testing.T) {
	d := Limits{}.withDefaults()
	if d != DefaultLimits() {
		t.Errorf("zero Limits = %+v, want defaults %+v", d, DefaultLimits())
	}
	custom := Limits{MaxBodyBytes: 99, MaxInsns: 7, MaxCells: 3}
	if got := custom.withDefaults(); got != custom {
		t.Errorf("explicit Limits were overridden: %+v", got)
	}
}
