package cfg

import (
	"testing"

	"repro/internal/isa"
)

// twoProc builds a tiny valid program: main calls helper inside a loop.
func twoProc(t *testing.T) *Program {
	t.Helper()
	p, err := BuildProgram("two", 0,
		[]string{"main", "helper"},
		[][]Stmt{
			{
				Straight{N: 3},
				Loop{Trip: 4, Body: []Stmt{
					Straight{N: 2},
					CallTo{Callee: 1},
				}},
			},
			{
				Straight{N: 2},
				If{Cond: BiasBehavior(0.5), Then: []Stmt{Straight{N: 1}}},
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildProgramValidatesAndLaysOut(t *testing.T) {
	p := twoProc(t)
	if !p.LaidOut() {
		t.Fatal("program not laid out")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() == 0 || p.NumInstrs() == 0 {
		t.Fatal("empty program")
	}
	if p.CodeBytes() != p.NumInstrs()*isa.InstrBytes {
		t.Error("CodeBytes inconsistent")
	}
}

func TestLayoutContiguityAndAlignment(t *testing.T) {
	p := twoProc(t)
	for _, pr := range p.Procs {
		// Procedure entries are 32-byte aligned.
		if uint32(pr.Blocks[0].Addr)%32 != 0 {
			t.Errorf("proc %q entry %v not 32B aligned", pr.Name, pr.Blocks[0].Addr)
		}
		// Blocks are contiguous within the procedure.
		for i := 1; i < len(pr.Blocks); i++ {
			prev := pr.Blocks[i-1]
			want := prev.Addr + isa.Addr(prev.NumInstrs*isa.InstrBytes)
			if pr.Blocks[i].Addr != want {
				t.Errorf("proc %q block %d at %v, want %v", pr.Name, i, pr.Blocks[i].Addr, want)
			}
		}
	}
}

func TestLayoutNoOverlap(t *testing.T) {
	p := twoProc(t)
	type span struct{ lo, hi isa.Addr }
	var spans []span
	for _, pr := range p.Procs {
		first := pr.Blocks[0].Addr
		last := pr.Blocks[len(pr.Blocks)-1]
		spans = append(spans, span{first, last.Addr + isa.Addr(last.NumInstrs*4)})
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("procs %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

func TestLowerLoopTargetsHead(t *testing.T) {
	pr := LowerProc(0, "p", []Stmt{
		Straight{N: 2},
		Loop{Trip: 3, Body: []Stmt{Straight{N: 1}}},
	})
	// Find the loop backedge.
	var backedge *Block
	var headIdx int
	for i, b := range pr.Blocks {
		if b.Term.Kind == isa.CondBranch {
			backedge = b
			_ = i
		}
	}
	if backedge == nil {
		t.Fatal("no backedge lowered")
	}
	if backedge.Term.Behavior.Kind != BehaviorLoop || backedge.Term.Behavior.Trip != 3 {
		t.Errorf("backedge behavior %+v", backedge.Term.Behavior)
	}
	headIdx = backedge.Term.Target.Index
	// The backedge block itself contains the loop body here (single
	// block loop), so it targets itself.
	if pr.Blocks[headIdx] != backedge {
		t.Errorf("single-block loop should target itself; got block %d", headIdx)
	}
}

func TestLowerIfSkipsThen(t *testing.T) {
	pr := LowerProc(0, "p", []Stmt{
		If{Cond: BiasBehavior(0.5), Then: []Stmt{Straight{N: 5}}},
		Straight{N: 1},
	})
	cond := pr.Blocks[0]
	if cond.Term.Kind != isa.CondBranch {
		t.Fatalf("first block terminator %v", cond.Term.Kind)
	}
	// The taken target is the join: the block after the then-blocks.
	join := cond.Term.Target.Index
	if join != 2 { // block 1 is the 5-insn then-block; block 2 the join
		t.Errorf("taken target block %d, want 2", join)
	}
}

func TestLowerIfElse(t *testing.T) {
	pr := LowerProc(0, "p", []Stmt{
		If{
			Cond: BiasBehavior(0.3),
			Then: []Stmt{Straight{N: 2}},
			Else: []Stmt{Straight{N: 3}},
		},
	})
	cond := pr.Blocks[0]
	elseStart := cond.Term.Target.Index
	// Then-block ends with an unconditional jump over the else.
	overElse := pr.Blocks[elseStart-1]
	if overElse.Term.Kind != isa.UncondBranch {
		t.Fatalf("no jump over else: %v", overElse.Term.Kind)
	}
	join := overElse.Term.Target.Index
	if join <= elseStart {
		t.Errorf("join %d not after else %d", join, elseStart)
	}
	// The join exists (the final Return block).
	if pr.Blocks[join].Term.Kind != isa.Return {
		t.Errorf("join terminator %v", pr.Blocks[join].Term.Kind)
	}
}

func TestLowerSwitch(t *testing.T) {
	pr := LowerProc(0, "p", []Stmt{
		Switch{
			Behavior: Behavior{Kind: BehaviorIndirectWeighted},
			Cases:    [][]Stmt{{Straight{N: 1}}, {Straight{N: 2}}, {}},
		},
	})
	sw := pr.Blocks[0]
	if sw.Term.Kind != isa.IndirectJump {
		t.Fatalf("switch terminator %v", sw.Term.Kind)
	}
	if len(sw.Term.IndirectTargets) != 3 {
		t.Fatalf("indirect targets %d", len(sw.Term.IndirectTargets))
	}
	// Every case's jump lands on the same join.
	var join *BlockID
	for _, tgt := range sw.Term.IndirectTargets {
		// Walk from the case start to its terminating uncond jump.
		idx := tgt.Index
		for pr.Blocks[idx].Term.Kind != isa.UncondBranch {
			idx++
		}
		j := pr.Blocks[idx].Term.Target
		if join == nil {
			join = &j
		} else if *join != j {
			t.Errorf("case joins differ: %v vs %v", *join, j)
		}
	}
}

func TestLowerProcEndsInReturn(t *testing.T) {
	pr := LowerProc(0, "p", []Stmt{Straight{N: 4}})
	last := pr.Blocks[len(pr.Blocks)-1]
	if last.Term.Kind != isa.Return {
		t.Errorf("last terminator %v", last.Term.Kind)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mutate func(p *Program)) error {
		p := &Program{Name: "bad", Procs: []*Proc{
			{Name: "main", Blocks: []*Block{
				{NumInstrs: 1, Term: Term{Kind: isa.Return}},
			}},
		}}
		mutate(p)
		return p.Validate()
	}
	if err := mk(func(p *Program) {}); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"no procs", func(p *Program) { p.Procs = nil }},
		{"bad entry", func(p *Program) { p.Entry = 7 }},
		{"empty proc", func(p *Program) { p.Procs[0].Blocks = nil }},
		{"zero-length block", func(p *Program) { p.Procs[0].Blocks[0].NumInstrs = 0 }},
		{"fallthrough last", func(p *Program) { p.Procs[0].Blocks[0].Term = Term{} }},
		{"call last", func(p *Program) { p.Procs[0].Blocks[0].Term = Term{Kind: isa.Call} }},
		{"cond without behavior", func(p *Program) {
			p.Procs[0].Blocks = append(p.Procs[0].Blocks, p.Procs[0].Blocks[0])
			p.Procs[0].Blocks[0] = &Block{NumInstrs: 1, Term: Term{Kind: isa.CondBranch}}
		}},
		{"bad target proc", func(p *Program) {
			p.Procs[0].Blocks = append([]*Block{{NumInstrs: 1, Term: Term{
				Kind: isa.UncondBranch, Target: BlockID{Proc: 9}}}}, p.Procs[0].Blocks...)
		}},
		{"bad callee", func(p *Program) {
			p.Procs[0].Blocks = append([]*Block{{NumInstrs: 1, Term: Term{
				Kind: isa.Call, Callee: 5}}}, p.Procs[0].Blocks...)
		}},
		{"indirect without targets", func(p *Program) {
			p.Procs[0].Blocks = append([]*Block{{NumInstrs: 1, Term: Term{
				Kind: isa.IndirectJump}}}, p.Procs[0].Blocks...)
		}},
		{"loop trip zero", func(p *Program) {
			p.Procs[0].Blocks = append([]*Block{{NumInstrs: 1, Term: Term{
				Kind: isa.CondBranch, Target: BlockID{0, 1},
				Behavior: Behavior{Kind: BehaviorLoop, Trip: 0}}}}, p.Procs[0].Blocks...)
		}},
		{"bias out of range", func(p *Program) {
			p.Procs[0].Blocks = append([]*Block{{NumInstrs: 1, Term: Term{
				Kind: isa.CondBranch, Target: BlockID{0, 1},
				Behavior: Behavior{Kind: BehaviorBias, P: 1.5}}}}, p.Procs[0].Blocks...)
		}},
	}
	for _, c := range cases {
		if err := mk(c.mutate); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestStaticCondSites(t *testing.T) {
	p := twoProc(t)
	// One loop backedge in main, one If in helper.
	if got := p.StaticCondSites(); got != 2 {
		t.Errorf("StaticCondSites = %d, want 2", got)
	}
}

func TestHotFirstOrder(t *testing.T) {
	p := twoProc(t)
	order := HotFirstOrder(p, []uint64{5, 100})
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("order = %v, want [1 0]", order)
	}
	// Re-laying out with a new order changes addresses but preserves
	// validity.
	oldEntry := p.EntryAddr()
	p.LayoutOrder(order)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.EntryAddr() == oldEntry {
		t.Error("reordering did not move the entry procedure")
	}
}

func TestLayoutOrderRejectsDuplicates(t *testing.T) {
	p := twoProc(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate order accepted")
		}
	}()
	p.LayoutOrder([]ProcID{0, 0})
}

func TestTermAddr(t *testing.T) {
	b := &Block{NumInstrs: 4, Addr: 0x1000}
	if got := b.TermAddr(); got != 0x100c {
		t.Errorf("TermAddr = %v", got)
	}
}
