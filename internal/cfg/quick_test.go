package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// randomStmts generates a random structured statement tree — the
// property-test input for the lowering pass.
func randomStmts(rng *rand.Rand, depth, budget *int) []Stmt {
	var out []Stmt
	n := 1 + rng.Intn(3)
	for i := 0; i < n && *budget > 0; i++ {
		*budget--
		switch k := rng.Intn(6); {
		case k == 0 && depth != nil && *depth > 0:
			d := *depth - 1
			out = append(out, Loop{Trip: 1 + rng.Intn(9), Body: randomStmts(rng, &d, budget)})
		case k == 1 && depth != nil && *depth > 0:
			d := *depth - 1
			stmt := If{Cond: BiasBehavior(rng.Float64()), Then: randomStmts(rng, &d, budget)}
			if rng.Intn(2) == 0 {
				d2 := *depth - 1
				stmt.Else = randomStmts(rng, &d2, budget)
			}
			out = append(out, stmt)
		case k == 2 && depth != nil && *depth > 0:
			d := *depth - 1
			cases := make([][]Stmt, 2+rng.Intn(3))
			for j := range cases {
				dj := d
				cases[j] = randomStmts(rng, &dj, budget)
			}
			out = append(out, Switch{
				Behavior: Behavior{Kind: BehaviorIndirectWeighted},
				Cases:    cases,
			})
		case k == 3 && depth != nil && *depth > 0:
			d := *depth - 1
			out = append(out, While{P: rng.Float64() * 0.9, Body: randomStmts(rng, &d, budget)})
		case k == 4:
			out = append(out, CallTo{Callee: 1})
		default:
			out = append(out, Straight{N: 1 + rng.Intn(8)})
		}
	}
	if len(out) == 0 {
		out = append(out, Straight{N: 1})
	}
	return out
}

// TestQuickLoweringAlwaysValidates: any random statement tree lowers to a
// program that passes full structural validation and lays out without
// overlap.
func TestQuickLoweringAlwaysValidates(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		depth, budget := 3, 40
		body := randomStmts(rng, &depth, &budget)
		helperDepth, helperBudget := 2, 10
		helper := randomStmts(rng, &helperDepth, &helperBudget)
		// Strip calls from the helper so the call graph stays a DAG.
		for i, s := range helper {
			if _, ok := s.(CallTo); ok {
				helper[i] = Straight{N: 2}
			}
		}
		p, err := BuildProgram("quick", 0, []string{"main", "helper"},
			[][]Stmt{body, helper})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Layout invariants: contiguity inside procs, no overlap.
		for _, pr := range p.Procs {
			for i := 1; i < len(pr.Blocks); i++ {
				prev := pr.Blocks[i-1]
				if pr.Blocks[i].Addr != prev.Addr+isa.Addr(prev.NumInstrs*isa.InstrBytes) {
					t.Fatalf("seed %d: blocks not contiguous", seed)
				}
			}
		}
		// Every conditional has a behavior and a resolvable target.
		for _, pr := range p.Procs {
			for _, b := range pr.Blocks {
				if b.Term.Kind == isa.CondBranch && b.Term.Behavior.Kind == BehaviorNone {
					t.Fatalf("seed %d: conditional without behavior", seed)
				}
			}
		}
	}
}

// TestQuickLoweringDeterministic: lowering the same tree twice produces
// structurally identical programs.
func TestQuickLoweringDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	depth, budget := 3, 30
	body := randomStmts(rng, &depth, &budget)
	a := LowerProc(0, "p", body)
	b := LowerProc(0, "p", body)
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("block counts differ")
	}
	for i := range a.Blocks {
		if a.Blocks[i].NumInstrs != b.Blocks[i].NumInstrs ||
			a.Blocks[i].Term.Kind != b.Blocks[i].Term.Kind ||
			a.Blocks[i].Term.Target != b.Blocks[i].Term.Target {
			t.Fatalf("block %d differs", i)
		}
	}
}
