package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// BaseAddr is the address of the first laid-out instruction. Nonzero so
// that address zero never aliases a real instruction.
const BaseAddr = isa.Addr(0x0001_0000)

// Layout assigns addresses to every block: procedures in Procs order, each
// procedure's blocks contiguous in index order (the executor's fall-through
// semantics depend on this), each procedure aligned to a cache-line-friendly
// 32-byte boundary, as linkers commonly do.
func (p *Program) Layout() {
	p.LayoutOrder(nil)
}

// LayoutOrder lays out procedures in the given order (a permutation of all
// ProcIDs); nil means natural order. Re-laying out with a different order
// models whole-program restructuring ("intelligent procedure layout", §7):
// the control-flow graph is unchanged, only addresses move.
func (p *Program) LayoutOrder(order []ProcID) {
	if order == nil {
		order = make([]ProcID, len(p.Procs))
		for i := range order {
			order[i] = ProcID(i)
		}
	}
	if len(order) != len(p.Procs) {
		panic(fmt.Sprintf("cfg: layout order has %d procs, program has %d", len(order), len(p.Procs)))
	}
	seen := make([]bool, len(p.Procs))
	addr := BaseAddr
	for _, pid := range order {
		if seen[pid] {
			panic(fmt.Sprintf("cfg: proc %d appears twice in layout order", pid))
		}
		seen[pid] = true
		// Align procedure entries to 32-byte (cache line) boundaries.
		const align = 32
		if rem := uint32(addr) % align; rem != 0 {
			addr += isa.Addr(align - rem)
		}
		for _, b := range p.Procs[pid].Blocks {
			b.Addr = addr
			addr += isa.Addr(b.NumInstrs * isa.InstrBytes)
		}
	}
	p.laidOut = true
}

// LaidOut reports whether addresses have been assigned.
func (p *Program) LaidOut() bool { return p.laidOut }

// EntryAddr returns the address of the first instruction executed.
func (p *Program) EntryAddr() isa.Addr {
	return p.Procs[p.Entry].Blocks[0].Addr
}

// HotFirstOrder returns a procedure layout order that places the most
// frequently executed procedures first (and therefore adjacent), given a
// profile of per-procedure execution counts — a simple form of the
// profile-guided procedure layout of Pettis & Hansen that the paper cites
// as a way to lower the instruction cache miss rate and thereby improve NLS
// performance (§7).
func HotFirstOrder(p *Program, procCounts []uint64) []ProcID {
	if len(procCounts) != len(p.Procs) {
		panic(fmt.Sprintf("cfg: profile has %d procs, program has %d", len(procCounts), len(p.Procs)))
	}
	order := make([]ProcID, len(p.Procs))
	for i := range order {
		order[i] = ProcID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return procCounts[order[i]] > procCounts[order[j]]
	})
	return order
}
