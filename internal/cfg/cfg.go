// Package cfg models the synthetic programs whose execution traces drive
// the simulator.
//
// The paper traced SPEC92 and C++ programs with ATOM on DEC Alpha hardware;
// we cannot rerun those binaries, so this package provides the substitute
// substrate (see DESIGN.md §2): a program is a set of procedures, each a
// contiguous sequence of basic blocks whose terminators are the break kinds
// of the paper's Table 1. An executor (package exec) actually *walks* the
// control-flow graph, so traces exhibit the correlated branch behaviour,
// call/return nesting, and instruction locality that the predictors and the
// instruction cache respond to.
package cfg

import (
	"fmt"

	"repro/internal/isa"
)

// ProcID identifies a procedure by its index in Program.Procs.
type ProcID int

// BlockID identifies a basic block within a program.
type BlockID struct {
	Proc  ProcID
	Index int
}

// BehaviorKind selects how a branch site behaves dynamically.
type BehaviorKind uint8

const (
	// BehaviorNone is for terminators that need no dynamics
	// (unconditional branches, calls, returns, fall-through).
	BehaviorNone BehaviorKind = iota
	// BehaviorLoop: a loop backedge taken Trip-1 consecutive times, then
	// not taken once, repeating — the body executes Trip times per trip
	// through the loop.
	BehaviorLoop
	// BehaviorBias: taken with independent probability P each execution.
	BehaviorBias
	// BehaviorPattern: cycles through the fixed Pattern of outcomes —
	// the kind of repeating history a two-level predictor learns.
	BehaviorPattern
	// BehaviorIndirectWeighted: an indirect jump choosing target i with
	// probability Weights[i] each execution.
	BehaviorIndirectWeighted
	// BehaviorIndirectSticky: an indirect jump repeating its previous
	// target with probability P, otherwise resampling from Weights —
	// models receiver locality in dynamic dispatch.
	BehaviorIndirectSticky
)

// Behavior parameterizes a branch site's dynamics. Unused fields are zero.
type Behavior struct {
	Kind    BehaviorKind
	Trip    int
	P       float64
	Pattern []bool
	Weights []float64
}

// LoopBehavior returns a fixed-trip loop backedge behavior.
func LoopBehavior(trip int) Behavior { return Behavior{Kind: BehaviorLoop, Trip: trip} }

// BiasBehavior returns an independent-bias behavior taken with probability p.
func BiasBehavior(p float64) Behavior { return Behavior{Kind: BehaviorBias, P: p} }

// PatternBehavior returns a cyclic-outcome behavior.
func PatternBehavior(pattern ...bool) Behavior {
	return Behavior{Kind: BehaviorPattern, Pattern: pattern}
}

// Term is a basic block's terminator. Kind isa.NonBranch means the block
// has no terminator and control falls through to the next block of the
// procedure.
type Term struct {
	Kind isa.Kind
	// Target is the taken destination for CondBranch and the destination
	// for UncondBranch.
	Target BlockID
	// Callee is the called procedure for Call.
	Callee ProcID
	// IndirectTargets are the possible destinations of an IndirectJump.
	IndirectTargets []BlockID
	// Behavior drives CondBranch outcomes and IndirectJump target
	// choice.
	Behavior Behavior
}

// Block is a basic block: NumInstrs instructions laid out contiguously, the
// last of which is the terminator (when Term.Kind != NonBranch).
type Block struct {
	NumInstrs int
	Term      Term
	// Addr is the address of the block's first instruction, assigned by
	// Program.Layout.
	Addr isa.Addr
}

// TermAddr returns the address of the block's terminator instruction.
func (b *Block) TermAddr() isa.Addr {
	return b.Addr + isa.Addr((b.NumInstrs-1)*isa.InstrBytes)
}

// Proc is a procedure: a named, contiguous sequence of blocks. Execution
// enters at block 0.
type Proc struct {
	Name   string
	Blocks []*Block
}

// Program is a complete synthetic program.
type Program struct {
	Name  string
	Procs []*Proc
	// Entry is the procedure where execution starts (and restarts when
	// the outermost procedure returns).
	Entry ProcID

	laidOut bool
}

// Block resolves a BlockID.
func (p *Program) Block(id BlockID) *Block {
	return p.Procs[id.Proc].Blocks[id.Index]
}

// NumBlocks returns the total number of basic blocks.
func (p *Program) NumBlocks() int {
	n := 0
	for _, pr := range p.Procs {
		n += len(pr.Blocks)
	}
	return n
}

// NumInstrs returns the total number of instructions (the code footprint in
// instructions).
func (p *Program) NumInstrs() int {
	n := 0
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			n += b.NumInstrs
		}
	}
	return n
}

// CodeBytes returns the code footprint in bytes.
func (p *Program) CodeBytes() int { return p.NumInstrs() * isa.InstrBytes }

// StaticCondSites counts conditional-branch sites (the "Static" column of
// Table 1).
func (p *Program) StaticCondSites() int {
	n := 0
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			if b.Term.Kind == isa.CondBranch {
				n++
			}
		}
	}
	return n
}

// Validate checks the structural invariants the executor relies on.
func (p *Program) Validate() error {
	if len(p.Procs) == 0 {
		return fmt.Errorf("cfg: program %q has no procedures", p.Name)
	}
	if p.Entry < 0 || int(p.Entry) >= len(p.Procs) {
		return fmt.Errorf("cfg: entry %d out of range", p.Entry)
	}
	for pi, pr := range p.Procs {
		if len(pr.Blocks) == 0 {
			return fmt.Errorf("cfg: proc %q has no blocks", pr.Name)
		}
		for bi, b := range pr.Blocks {
			where := fmt.Sprintf("proc %q block %d", pr.Name, bi)
			if b.NumInstrs < 1 {
				return fmt.Errorf("cfg: %s has %d instructions", where, b.NumInstrs)
			}
			last := bi == len(pr.Blocks)-1
			switch b.Term.Kind {
			case isa.NonBranch, isa.Call, isa.CondBranch:
				// These continue at the next block (fall
				// through, return from call, or not-taken).
				if last {
					return fmt.Errorf("cfg: %s is last but terminator %v needs a successor",
						where, b.Term.Kind)
				}
			case isa.UncondBranch, isa.Return:
			case isa.IndirectJump:
				if len(b.Term.IndirectTargets) == 0 {
					return fmt.Errorf("cfg: %s indirect jump has no targets", where)
				}
			default:
				return fmt.Errorf("cfg: %s has invalid terminator kind %d", where, b.Term.Kind)
			}
			switch b.Term.Kind {
			case isa.CondBranch:
				if err := p.checkTarget(b.Term.Target); err != nil {
					return fmt.Errorf("cfg: %s: %w", where, err)
				}
				switch b.Term.Behavior.Kind {
				case BehaviorLoop:
					if b.Term.Behavior.Trip < 1 {
						return fmt.Errorf("cfg: %s loop trip %d", where, b.Term.Behavior.Trip)
					}
				case BehaviorBias:
					if b.Term.Behavior.P < 0 || b.Term.Behavior.P > 1 {
						return fmt.Errorf("cfg: %s bias %v", where, b.Term.Behavior.P)
					}
				case BehaviorPattern:
					if len(b.Term.Behavior.Pattern) == 0 {
						return fmt.Errorf("cfg: %s empty pattern", where)
					}
				default:
					return fmt.Errorf("cfg: %s conditional needs a behavior", where)
				}
			case isa.UncondBranch:
				if err := p.checkTarget(b.Term.Target); err != nil {
					return fmt.Errorf("cfg: %s: %w", where, err)
				}
			case isa.Call:
				if b.Term.Callee < 0 || int(b.Term.Callee) >= len(p.Procs) {
					return fmt.Errorf("cfg: %s calls invalid proc %d", where, b.Term.Callee)
				}
			case isa.IndirectJump:
				for _, t := range b.Term.IndirectTargets {
					if err := p.checkTarget(t); err != nil {
						return fmt.Errorf("cfg: %s: %w", where, err)
					}
				}
				bk := b.Term.Behavior.Kind
				if bk != BehaviorIndirectWeighted && bk != BehaviorIndirectSticky {
					return fmt.Errorf("cfg: %s indirect jump needs an indirect behavior", where)
				}
				if w := b.Term.Behavior.Weights; len(w) != 0 && len(w) != len(b.Term.IndirectTargets) {
					return fmt.Errorf("cfg: %s has %d weights for %d targets",
						where, len(w), len(b.Term.IndirectTargets))
				}
			}
		}
		_ = pi
	}
	return nil
}

func (p *Program) checkTarget(id BlockID) error {
	if id.Proc < 0 || int(id.Proc) >= len(p.Procs) {
		return fmt.Errorf("target proc %d out of range", id.Proc)
	}
	if id.Index < 0 || id.Index >= len(p.Procs[id.Proc].Blocks) {
		return fmt.Errorf("target block %d out of range in proc %q", id.Index, p.Procs[id.Proc].Name)
	}
	return nil
}
