package cfg

import (
	"fmt"

	"repro/internal/isa"
)

// This file provides a small structured-program DSL that lowers to basic
// blocks. Workload generators compose Stmt trees (straight-line code,
// loops, conditionals, calls, switches) and LowerProc produces a Proc with
// all block indices and branch targets resolved. Generating *structured*
// programs — rather than random block graphs — is what gives traces the
// loop trip counts, call nesting, and correlated conditional outcomes that
// real programs exhibit and that the paper's predictors exploit.

// Stmt is a structured program statement.
type Stmt interface{ isStmt() }

// Straight is n plain (non-branch) instructions.
type Straight struct{ N int }

// Loop executes Body exactly Trip times, terminated by a conditional
// backedge with BehaviorLoop dynamics (taken Trip-1 times, then not taken).
type Loop struct {
	Trip int
	Body []Stmt
}

// While executes Body repeatedly, continuing after each iteration with
// probability P (a biased conditional backedge).
type While struct {
	P    float64
	Body []Stmt
}

// If lowers to a conditional branch that *skips* Then when taken: Cond's
// taken-probability is the probability that Then does NOT execute. When
// Else is non-nil, the taken path runs Else instead.
type If struct {
	Cond Behavior
	Then []Stmt
	Else []Stmt
}

// CallTo is a direct procedure call.
type CallTo struct{ Callee ProcID }

// Switch is an indirect jump dispatching among Cases according to Behavior
// (an interpreter dispatch, a virtual call, a jump table).
type Switch struct {
	Behavior Behavior
	Cases    [][]Stmt
}

func (Straight) isStmt() {}
func (Loop) isStmt()     {}
func (While) isStmt()    {}
func (If) isStmt()       {}
func (CallTo) isStmt()   {}
func (Switch) isStmt()   {}

// lowerer accumulates blocks for one procedure.
type lowerer struct {
	pid    ProcID
	blocks []*Block
	curLen int // straight-line instructions awaiting a block
}

// flushFall closes the pending straight-line instructions into a
// fall-through block, if any.
func (l *lowerer) flushFall() {
	if l.curLen > 0 {
		l.blocks = append(l.blocks, &Block{NumInstrs: l.curLen})
		l.curLen = 0
	}
}

// flushTerm closes the pending instructions plus a terminator into a block
// and returns it for target patching.
func (l *lowerer) flushTerm(t Term) *Block {
	b := &Block{NumInstrs: l.curLen + 1, Term: t}
	l.blocks = append(l.blocks, b)
	l.curLen = 0
	return b
}

// nextIdx returns the index the next created block will get. After a flush
// this is the landing point of any forward branch.
func (l *lowerer) nextIdx() int { return len(l.blocks) }

func (l *lowerer) here(idx int) BlockID { return BlockID{Proc: l.pid, Index: idx} }

func (l *lowerer) lower(stmts []Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case Straight:
			if s.N < 0 {
				panic(fmt.Sprintf("cfg: Straight with negative length %d", s.N))
			}
			l.curLen += s.N

		case Loop:
			if s.Trip < 1 {
				panic(fmt.Sprintf("cfg: Loop with trip %d", s.Trip))
			}
			l.flushFall()
			head := l.nextIdx()
			l.lower(s.Body)
			l.flushTerm(Term{
				Kind:     isa.CondBranch,
				Target:   l.here(head),
				Behavior: LoopBehavior(s.Trip),
			})

		case While:
			l.flushFall()
			head := l.nextIdx()
			l.lower(s.Body)
			l.flushTerm(Term{
				Kind:     isa.CondBranch,
				Target:   l.here(head),
				Behavior: BiasBehavior(s.P),
			})

		case If:
			cond := l.flushTerm(Term{Kind: isa.CondBranch, Behavior: s.Cond})
			l.lower(s.Then)
			if s.Else != nil {
				overElse := l.flushTerm(Term{Kind: isa.UncondBranch})
				cond.Term.Target = l.here(l.nextIdx())
				l.lower(s.Else)
				l.flushFall()
				overElse.Term.Target = l.here(l.nextIdx())
			} else {
				l.flushFall()
				cond.Term.Target = l.here(l.nextIdx())
			}

		case CallTo:
			l.flushTerm(Term{Kind: isa.Call, Callee: s.Callee})

		case Switch:
			if len(s.Cases) == 0 {
				panic("cfg: Switch with no cases")
			}
			sw := l.flushTerm(Term{Kind: isa.IndirectJump, Behavior: s.Behavior})
			jumps := make([]*Block, 0, len(s.Cases))
			starts := make([]BlockID, 0, len(s.Cases))
			for _, c := range s.Cases {
				starts = append(starts, l.here(l.nextIdx()))
				l.lower(c)
				jumps = append(jumps, l.flushTerm(Term{Kind: isa.UncondBranch}))
			}
			join := l.here(l.nextIdx())
			for _, j := range jumps {
				j.Term.Target = join
			}
			sw.Term.IndirectTargets = starts

		default:
			panic(fmt.Sprintf("cfg: unknown statement %T", s))
		}
	}
}

// LowerProc lowers a statement body into a procedure with the given ID and
// name. A Return terminator is appended, so every procedure returns after
// its body.
func LowerProc(pid ProcID, name string, body []Stmt) *Proc {
	l := &lowerer{pid: pid}
	l.lower(body)
	l.flushTerm(Term{Kind: isa.Return})
	return &Proc{Name: name, Blocks: l.blocks}
}

// BuildProgram assembles, validates, and lays out a program from procedure
// bodies. bodies[i] becomes ProcID(i); entry names the start procedure.
func BuildProgram(name string, entry ProcID, names []string, bodies [][]Stmt) (*Program, error) {
	if len(names) != len(bodies) {
		return nil, fmt.Errorf("cfg: %d names for %d bodies", len(names), len(bodies))
	}
	p := &Program{Name: name, Entry: entry}
	for i, body := range bodies {
		p.Procs = append(p.Procs, LowerProc(ProcID(i), names[i], body))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Layout()
	return p, nil
}
