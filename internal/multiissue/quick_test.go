package multiissue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/trace"
)

// randomChained builds a random valid trace for property tests.
func randomChained(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &trace.Trace{Name: "rnd"}
	pc := isa.Addr(0x1000)
	for i := 0; i < n; i++ {
		r := trace.Record{PC: pc, Kind: isa.NonBranch}
		if rng.Intn(4) == 0 {
			r.Kind = isa.UncondBranch
			r.Taken = true
			r.Target = isa.Addr(0x1000 + uint32(rng.Intn(256))*4)
		}
		t.Append(r)
		pc = r.Next()
	}
	return t
}

// Properties: for any trace and width, ceil(n/width') <= blocks <= n where
// width' accounts for line limits, and blocks at width 1 equals n exactly.
func TestQuickFetchBlockBounds(t *testing.T) {
	f := func(seed int64, widthRaw uint8) bool {
		width := 1 + int(widthRaw%16)
		tr := randomChained(seed, 300)
		blocks, err := FetchBlocks(tr, Config{Width: width, LineBytes: 32})
		if err != nil {
			return false
		}
		n := uint64(tr.Len())
		if blocks > n {
			return false
		}
		// A block never exceeds min(width, instrs-per-line) useful
		// instructions.
		maxPerBlock := uint64(width)
		if maxPerBlock > 8 {
			maxPerBlock = 8
		}
		if blocks*maxPerBlock < n {
			return false
		}
		one, err := FetchBlocks(tr, Config{Width: 1})
		return err == nil && one == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: blocks are non-increasing in width for any trace.
func TestQuickFetchBlocksMonotone(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomChained(seed, 300)
		prev := uint64(1 << 62)
		for _, w := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
			blocks, err := FetchBlocks(tr, Config{Width: w, LineBytes: 32})
			if err != nil || blocks > prev {
				return false
			}
			prev = blocks
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
