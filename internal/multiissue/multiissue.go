// Package multiissue models the wide-fetch extension the paper closes with
// (§8: "we focused on the improvements offered by single-issue
// architectures and are currently investigating a number of design
// extensions for multi-issue architectures. Nothing in the design of the
// NLS architecture appears to be a problem for wide-issue architectures").
//
// The model: a W-wide fetch unit delivers up to W sequential instructions
// per cycle, but a fetch block ends early at a taken control transfer (the
// redirect happens between cycles) and at an instruction-cache line
// boundary (a block cannot straddle lines). The §5.2 penalties stay
// per-event — a misfetch still inserts one bubble cycle, a mispredict
// four, a line miss five — so total cycles are
//
//	cycles = fetchBlocks + misfetches·1 + mispredicts·4 + misses·5
//
// and IPC = instructions / cycles. As W grows, the useful-fetch cycle
// count shrinks toward the taken-break limit while the penalty cycles do
// not shrink at all, so fetch prediction quality dominates exactly as the
// paper's introduction argues ("As processors issue more instructions
// concurrently, these penalties increase").
package multiissue

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config describes the fetch front end.
type Config struct {
	// Width is the fetch width in instructions per cycle (1 reproduces
	// the paper's single-issue accounting up to line-boundary effects).
	Width int
	// LineBytes is the instruction cache line size; a fetch block never
	// crosses a line boundary. Zero disables the line constraint.
	LineBytes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width < 1 {
		return fmt.Errorf("multiissue: width %d must be >= 1", c.Width)
	}
	if c.LineBytes < 0 || (c.LineBytes > 0 && c.LineBytes%isa.InstrBytes != 0) {
		return fmt.Errorf("multiissue: line size %d invalid", c.LineBytes)
	}
	return nil
}

// BlockCounter counts fetch blocks incrementally, block of records by block
// of records, so the count can be accumulated during a single streamed
// trace replay (the grid executor feeds it from the same read that drives
// the simulators). A fetch block may span record-block boundaries: the
// in-progress block carries over between Add calls, so feeding a trace in
// any chunking yields exactly FetchBlocks of the flat trace.
type BlockCounter struct {
	cfg           Config
	instrsPerLine int
	blocks        uint64
	inBlock       int
}

// NewBlockCounter validates the configuration and starts a counter.
func NewBlockCounter(cfg Config) (*BlockCounter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	instrsPerLine := 0
	if cfg.LineBytes > 0 {
		instrsPerLine = cfg.LineBytes / isa.InstrBytes
	}
	return &BlockCounter{cfg: cfg, instrsPerLine: instrsPerLine}, nil
}

// Add accumulates consecutive trace records.
func (b *BlockCounter) Add(recs []trace.Record) {
	for _, r := range recs {
		if b.inBlock == 0 {
			b.blocks++
		}
		b.inBlock++
		endOfLine := b.instrsPerLine > 0 &&
			r.PC.Word()%uint32(b.instrsPerLine) == uint32(b.instrsPerLine-1)
		if b.inBlock >= b.cfg.Width || (r.IsBreak() && r.Taken) || endOfLine {
			b.inBlock = 0
		}
	}
}

// Blocks returns the fetch blocks counted so far.
func (b *BlockCounter) Blocks() uint64 { return b.blocks }

// Width returns the configured fetch width.
func (b *BlockCounter) Width() int { return b.cfg.Width }

// FetchBlocks counts the fetch cycles a W-wide front end needs to deliver
// the trace, assuming perfect next-block prediction (penalties are added
// separately from the simulated engine's counters). A block ends at:
//   - W instructions,
//   - a taken break (the next instruction starts a new block at the
//     target), or
//   - a cache line boundary.
func FetchBlocks(t *trace.Trace, cfg Config) (uint64, error) {
	bc, err := NewBlockCounter(cfg)
	if err != nil {
		return 0, err
	}
	bc.Add(t.Records)
	return bc.Blocks(), nil
}

// Result is the wide-fetch performance of one simulated configuration.
type Result struct {
	Width       int
	FetchBlocks uint64
	Cycles      float64
	IPC         float64
	// PenaltyShare is the fraction of cycles spent on branch and cache
	// penalties — the quantity that grows with width.
	PenaltyShare float64
}

// Evaluate combines a trace's fetch-block count with an engine's measured
// penalty events into wide-fetch IPC.
func Evaluate(t *trace.Trace, m *metrics.Counters, cfg Config, p metrics.Penalties) (Result, error) {
	blocks, err := FetchBlocks(t, cfg)
	if err != nil {
		return Result{}, err
	}
	return EvaluateBlocks(blocks, m, cfg, p), nil
}

// EvaluateBlocks is Evaluate with the fetch-block count already known — the
// pure-arithmetic half, usable when the count was accumulated during a
// replay (BlockCounter) or loaded from the results store.
func EvaluateBlocks(blocks uint64, m *metrics.Counters, cfg Config, p metrics.Penalties) Result {
	penalty := float64(m.Misfetches)*p.Misfetch +
		float64(m.Mispredicts)*p.Mispredict +
		float64(m.ICacheMisses)*p.CacheMiss
	cycles := float64(blocks) + penalty
	res := Result{
		Width:       cfg.Width,
		FetchBlocks: blocks,
		Cycles:      cycles,
		IPC:         float64(m.Instructions) / cycles,
	}
	if cycles > 0 {
		res.PenaltyShare = penalty / cycles
	}
	return res
}
