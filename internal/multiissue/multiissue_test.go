package multiissue

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func seqTrace(n int) *trace.Trace {
	t := &trace.Trace{Name: "seq"}
	pc := isa.Addr(0x1000) // line-aligned
	for i := 0; i < n; i++ {
		t.Append(trace.Record{PC: pc, Kind: isa.NonBranch})
		pc = pc.Next()
	}
	return t
}

func TestValidate(t *testing.T) {
	if (Config{Width: 0}).Validate() == nil {
		t.Error("width 0 accepted")
	}
	if (Config{Width: 4, LineBytes: 13}).Validate() == nil {
		t.Error("odd line size accepted")
	}
	if (Config{Width: 4, LineBytes: 32}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func TestFetchBlocksWidth1EqualsInstructions(t *testing.T) {
	tr := seqTrace(100)
	blocks, err := FetchBlocks(tr, Config{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 100 {
		t.Errorf("width-1 blocks = %d, want 100", blocks)
	}
}

func TestFetchBlocksStraightLine(t *testing.T) {
	// 64 sequential instructions, width 4, no line constraint: 16 blocks.
	tr := seqTrace(64)
	blocks, err := FetchBlocks(tr, Config{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 16 {
		t.Errorf("blocks = %d, want 16", blocks)
	}
}

func TestFetchBlocksLineBoundary(t *testing.T) {
	// Width 8 over line-aligned code with 32-byte lines: each line (8
	// instructions) is one block; 64 instructions -> 8 blocks. Width 16
	// cannot do better: still line-limited.
	tr := seqTrace(64)
	for _, w := range []int{8, 16} {
		blocks, err := FetchBlocks(tr, Config{Width: w, LineBytes: 32})
		if err != nil {
			t.Fatal(err)
		}
		if blocks != 8 {
			t.Errorf("width %d: blocks = %d, want 8 (line-limited)", w, blocks)
		}
	}
}

func TestFetchBlocksTakenBreakEndsBlock(t *testing.T) {
	// A tight 4-instruction loop (3 plain + taken backedge), width 8:
	// every iteration is its own block.
	tr := &trace.Trace{Name: "loop"}
	for i := 0; i < 10; i++ {
		pc := isa.Addr(0x1000)
		tr.Append(trace.Record{PC: pc, Kind: isa.NonBranch})
		tr.Append(trace.Record{PC: pc + 4, Kind: isa.NonBranch})
		tr.Append(trace.Record{PC: pc + 8, Kind: isa.NonBranch})
		tr.Append(trace.Record{PC: pc + 12, Kind: isa.CondBranch, Taken: true, Target: pc})
	}
	blocks, err := FetchBlocks(tr, Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 10 {
		t.Errorf("blocks = %d, want 10 (one per iteration)", blocks)
	}
}

func TestNotTakenBreakDoesNotEndBlock(t *testing.T) {
	tr := &trace.Trace{Name: "nt"}
	pc := isa.Addr(0x1000)
	tr.Append(trace.Record{PC: pc, Kind: isa.CondBranch, Taken: false})
	tr.Append(trace.Record{PC: pc + 4, Kind: isa.NonBranch})
	tr.Append(trace.Record{PC: pc + 8, Kind: isa.NonBranch})
	blocks, err := FetchBlocks(tr, Config{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 1 {
		t.Errorf("blocks = %d, want 1 (fall-through continues the block)", blocks)
	}
}

func TestBlocksMonotoneInWidth(t *testing.T) {
	// Wider fetch never needs more blocks.
	tr := &trace.Trace{Name: "mixed"}
	pc := isa.Addr(0x1000)
	for i := 0; i < 200; i++ {
		if i%7 == 6 {
			r := trace.Record{PC: pc, Kind: isa.UncondBranch, Taken: true,
				Target: pc + 32}
			tr.Append(r)
			pc = r.Next()
			continue
		}
		tr.Append(trace.Record{PC: pc, Kind: isa.NonBranch})
		pc = pc.Next()
	}
	prev := uint64(1 << 62)
	for _, w := range []int{1, 2, 4, 8, 16} {
		blocks, err := FetchBlocks(tr, Config{Width: w, LineBytes: 32})
		if err != nil {
			t.Fatal(err)
		}
		if blocks > prev {
			t.Errorf("width %d needs %d blocks, more than narrower %d", w, blocks, prev)
		}
		prev = blocks
	}
}

func TestEvaluate(t *testing.T) {
	tr := seqTrace(100)
	var m metrics.Counters
	m.Instructions = 100
	m.Misfetches = 2
	m.Mispredicts = 3
	m.ICacheMisses = 1
	res, err := Evaluate(tr, &m, Config{Width: 4}, metrics.Default())
	if err != nil {
		t.Fatal(err)
	}
	// blocks = 25; penalty = 2 + 12 + 5 = 19; cycles = 44.
	if res.FetchBlocks != 25 {
		t.Errorf("blocks = %d", res.FetchBlocks)
	}
	if res.Cycles != 44 {
		t.Errorf("cycles = %v", res.Cycles)
	}
	if got := res.IPC; got < 2.27 || got > 2.28 {
		t.Errorf("IPC = %v, want ~2.273", got)
	}
	if got := res.PenaltyShare; got < 0.43 || got > 0.44 {
		t.Errorf("penalty share = %v", got)
	}
}

func TestPenaltyShareGrowsWithWidth(t *testing.T) {
	tr := seqTrace(1000)
	var m metrics.Counters
	m.Instructions = 1000
	m.Mispredicts = 20
	var prev float64 = -1
	for _, w := range []int{1, 2, 4, 8} {
		res, err := Evaluate(tr, &m, Config{Width: w, LineBytes: 32}, metrics.Default())
		if err != nil {
			t.Fatal(err)
		}
		if res.PenaltyShare <= prev {
			t.Errorf("width %d: penalty share %v did not grow", w, res.PenaltyShare)
		}
		prev = res.PenaltyShare
	}
}
