// Package prof wires the standard pprof profilers into the CLIs: both
// nlssim and nlstables take -cpuprofile/-memprofile flags, and the `make
// profile` target smoke-runs them. It exists so the two commands share one
// correct shutdown order (stop the CPU profile, then GC, then snapshot the
// heap) instead of two slightly different copies.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. cpu and mem name the output files;
// either may be empty to skip that profile. The returned stop function
// flushes and closes everything and must run on the success path before
// the process exits (os.Exit skips defers — call it explicitly). When
// nothing is requested, stop is a no-op.
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // snapshot live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
