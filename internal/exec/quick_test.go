package exec_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/trace"
)

// randomProgram builds a random two-procedure structured program (main may
// call helper; helper is leaf), the execution-side property-test input.
func randomProgram(t *testing.T, seed int64) *cfg.Program {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var gen func(depth, budget *int, allowCalls bool) []cfg.Stmt
	gen = func(depth, budget *int, allowCalls bool) []cfg.Stmt {
		var out []cfg.Stmt
		n := 1 + rng.Intn(3)
		for i := 0; i < n && *budget > 0; i++ {
			*budget--
			switch k := rng.Intn(6); {
			case k == 0 && *depth > 0:
				d := *depth - 1
				out = append(out, cfg.Loop{Trip: 1 + rng.Intn(8), Body: gen(&d, budget, allowCalls)})
			case k == 1 && *depth > 0:
				d := *depth - 1
				out = append(out, cfg.If{
					Cond: cfg.BiasBehavior(rng.Float64()),
					Then: gen(&d, budget, allowCalls),
				})
			case k == 2 && *depth > 0:
				d := *depth - 1
				cases := make([][]cfg.Stmt, 2+rng.Intn(3))
				for j := range cases {
					dj := d
					cases[j] = gen(&dj, budget, allowCalls)
				}
				out = append(out, cfg.Switch{
					Behavior: cfg.Behavior{Kind: cfg.BehaviorIndirectSticky, P: rng.Float64()},
					Cases:    cases,
				})
			case k == 3 && *depth > 0:
				d := *depth - 1
				out = append(out, cfg.While{P: rng.Float64() * 0.85, Body: gen(&d, budget, allowCalls)})
			case k == 4 && allowCalls:
				out = append(out, cfg.CallTo{Callee: 1})
			default:
				out = append(out, cfg.Straight{N: 1 + rng.Intn(6)})
			}
		}
		if len(out) == 0 {
			out = append(out, cfg.Straight{N: 1})
		}
		return out
	}
	d1, b1 := 3, 30
	d2, b2 := 2, 12
	p, err := cfg.BuildProgram("quick", 0, []string{"main", "helper"},
		[][]cfg.Stmt{gen(&d1, &b1, true), gen(&d2, &b2, false)})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return p
}

// TestQuickExecutionProducesValidTraces: any random structured program
// executes into a perfectly chained trace whose taken targets all land on
// laid-out instruction addresses, with balanced calls and returns.
func TestQuickExecutionProducesValidTraces(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := randomProgram(t, seed)
		e, err := exec.New(p, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := trace.Collect(p.Name, e, 5000)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every PC in the trace lies inside the program's address span.
		lo := cfg.BaseAddr
		var hi isa.Addr
		for _, pr := range p.Procs {
			last := pr.Blocks[len(pr.Blocks)-1]
			end := last.Addr + isa.Addr(last.NumInstrs*isa.InstrBytes)
			if end > hi {
				hi = end
			}
		}
		var calls, rets int
		for _, r := range tr.Records {
			if r.PC < lo || r.PC >= hi {
				t.Fatalf("seed %d: PC %v outside program [%v, %v)", seed, r.PC, lo, hi)
			}
			switch r.Kind {
			case isa.Call:
				calls++
			case isa.Return:
				rets++
			}
		}
		// Every return is either matched to a call or is one of the
		// entry-procedure restart returns; the residue is at most the
		// live nesting depth when the trace window closed.
		if d := calls - (rets - int(e.Restarts())); d < -2 || d > 2 {
			t.Fatalf("seed %d: call/return imbalance %d calls, %d rets, %d restarts",
				seed, calls, rets, e.Restarts())
		}
	}
}
