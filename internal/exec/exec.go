// Package exec executes synthetic programs (package cfg), emitting the
// instruction traces that drive the fetch simulators. Execution is a real
// walk of the control-flow graph — loop counters count, call stacks nest,
// indirect dispatches sample their target distributions — so the emitted
// traces carry the temporal structure (correlated branch outcomes,
// call/return pairing, instruction locality) that the paper's predictors
// and caches respond to.
package exec

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// maxCallDepth bounds the software call stack. Recursion deeper than this
// stops pushing frames (the deepest returns then pop earlier frames), which
// keeps traces well-formed under pathological recursion while still letting
// the 32-entry RAS overflow realistically on deep call chains.
const maxCallDepth = 4096

// frame is a saved return position: execution resumes at block resume of
// proc, which is the block following the call site.
type frame struct {
	proc   cfg.ProcID
	resume int
	addr   isa.Addr
}

// siteState is the per-branch-site dynamic state.
type siteState struct {
	loopCount  int
	patternPos int
	lastTarget int // for sticky indirect dispatch
}

// Executor walks a program. It implements trace.Source, so it can either
// stream records or be collected into a trace.Trace. State persists across
// Run calls: a long trace can be drawn in chunks.
type Executor struct {
	prog *cfg.Program
	rng  *xrand.Rng

	// Flattened block metadata, indexed by global block index.
	state      []siteState
	globalBase []int // per proc, index of its first block in state

	// ProcCounts tallies procedure entries, usable as the profile for
	// the restructuring ablation (cfg.HotFirstOrder).
	ProcCounts []uint64

	stack []frame
	proc  cfg.ProcID
	block int
	instr int // next instruction offset within the current block

	restarts uint64
}

// New builds an executor for a validated, laid-out program.
func New(p *cfg.Program, seed uint64) (*Executor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.LaidOut() {
		return nil, fmt.Errorf("exec: program %q has no layout", p.Name)
	}
	e := &Executor{
		prog:       p,
		rng:        xrand.New(seed),
		globalBase: make([]int, len(p.Procs)),
		ProcCounts: make([]uint64, len(p.Procs)),
		proc:       p.Entry,
	}
	n := 0
	for i, pr := range p.Procs {
		e.globalBase[i] = n
		n += len(pr.Blocks)
	}
	e.state = make([]siteState, n)
	e.ProcCounts[p.Entry]++
	return e, nil
}

// Restarts reports how many times the program returned from its entry
// procedure and was restarted (the implicit outer driver loop).
func (e *Executor) Restarts() uint64 { return e.restarts }

func (e *Executor) global(p cfg.ProcID, b int) int { return e.globalBase[p] + b }

// Run implements trace.Source: it emits up to n records and returns how
// many were produced (always n; a program never exhausts — the entry
// procedure restarts when it returns).
func (e *Executor) Run(n int, emit func(trace.Record)) int {
	emitted := 0
	for emitted < n {
		blk := e.prog.Procs[e.proc].Blocks[e.block]
		// Plain instructions before the terminator. The cursor
		// e.instr makes Run resumable: a budget that ends mid-block
		// continues at the right instruction on the next call.
		plain := blk.NumInstrs
		if blk.Term.Kind != isa.NonBranch {
			plain--
		}
		for e.instr < plain && emitted < n {
			emit(trace.Record{PC: blk.Addr + isa.Addr(e.instr*isa.InstrBytes), Kind: isa.NonBranch})
			e.instr++
			emitted++
		}
		if e.instr < plain || (emitted >= n && blk.Term.Kind != isa.NonBranch) {
			break // budget exhausted before the terminator
		}
		e.instr = 0
		switch blk.Term.Kind {
		case isa.NonBranch:
			e.block++

		case isa.CondBranch:
			taken := e.evalCond(blk)
			rec := trace.Record{PC: blk.TermAddr(), Kind: isa.CondBranch, Taken: taken}
			if taken {
				rec.Target = e.prog.Block(blk.Term.Target).Addr
				emit(rec)
				emitted++
				e.proc, e.block = blk.Term.Target.Proc, blk.Term.Target.Index
				continue
			}
			emit(rec)
			emitted++
			e.block++

		case isa.UncondBranch:
			t := blk.Term.Target
			emit(trace.Record{PC: blk.TermAddr(), Kind: isa.UncondBranch, Taken: true,
				Target: e.prog.Block(t).Addr})
			emitted++
			e.proc, e.block = t.Proc, t.Index

		case isa.Call:
			callee := blk.Term.Callee
			target := e.prog.Procs[callee].Blocks[0].Addr
			emit(trace.Record{PC: blk.TermAddr(), Kind: isa.Call, Taken: true, Target: target})
			emitted++
			if len(e.stack) < maxCallDepth {
				e.stack = append(e.stack, frame{
					proc:   e.proc,
					resume: e.block + 1,
					addr:   blk.TermAddr().Next(),
				})
			}
			e.proc, e.block = callee, 0
			e.ProcCounts[callee]++

		case isa.Return:
			var target isa.Addr
			if len(e.stack) > 0 {
				f := e.stack[len(e.stack)-1]
				e.stack = e.stack[:len(e.stack)-1]
				target = f.addr
				emit(trace.Record{PC: blk.TermAddr(), Kind: isa.Return, Taken: true, Target: target})
				emitted++
				e.proc, e.block = f.proc, f.resume
			} else {
				// Returning from the entry procedure: restart at
				// the program entry — the implicit driver loop.
				target = e.prog.EntryAddr()
				emit(trace.Record{PC: blk.TermAddr(), Kind: isa.Return, Taken: true, Target: target})
				emitted++
				e.proc, e.block = e.prog.Entry, 0
				e.restarts++
				e.ProcCounts[e.prog.Entry]++
			}

		case isa.IndirectJump:
			ti := e.evalIndirect(blk)
			t := blk.Term.IndirectTargets[ti]
			emit(trace.Record{PC: blk.TermAddr(), Kind: isa.IndirectJump, Taken: true,
				Target: e.prog.Block(t).Addr})
			emitted++
			e.proc, e.block = t.Proc, t.Index
		}
	}
	return emitted
}

// evalCond decides a conditional branch's outcome from its behavior.
func (e *Executor) evalCond(blk *cfg.Block) bool {
	st := &e.state[e.global(e.proc, e.block)]
	switch b := blk.Term.Behavior; b.Kind {
	case cfg.BehaviorLoop:
		st.loopCount++
		if st.loopCount >= b.Trip {
			st.loopCount = 0
			return false
		}
		return true
	case cfg.BehaviorBias:
		return e.rng.Bool(b.P)
	case cfg.BehaviorPattern:
		v := b.Pattern[st.patternPos]
		st.patternPos = (st.patternPos + 1) % len(b.Pattern)
		return v
	}
	return false
}

// evalIndirect picks an indirect jump's target index from its behavior.
func (e *Executor) evalIndirect(blk *cfg.Block) int {
	st := &e.state[e.global(e.proc, e.block)]
	b := blk.Term.Behavior
	switch b.Kind {
	case cfg.BehaviorIndirectSticky:
		if e.rng.Bool(b.P) {
			return st.lastTarget
		}
		st.lastTarget = e.sampleWeighted(b.Weights, len(blk.Term.IndirectTargets))
		return st.lastTarget
	case cfg.BehaviorIndirectWeighted:
		st.lastTarget = e.sampleWeighted(b.Weights, len(blk.Term.IndirectTargets))
		return st.lastTarget
	}
	return 0
}

// sampleWeighted samples an index from weights (uniform over n when weights
// is empty).
func (e *Executor) sampleWeighted(weights []float64, n int) int {
	if len(weights) == 0 {
		return e.rng.Intn(n)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := e.rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Trace builds a complete trace of n instructions, carrying the program's
// static conditional-site count for Table 1.
func Trace(p *cfg.Program, seed uint64, n int) (*trace.Trace, error) {
	e, err := New(p, seed)
	if err != nil {
		return nil, err
	}
	t := trace.Collect(p.Name, e, n)
	t.StaticCondSites = p.StaticCondSites()
	return t, nil
}
