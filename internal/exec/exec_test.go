package exec_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func loopProgram(t *testing.T) *cfg.Program {
	t.Helper()
	p, err := cfg.BuildProgram("loop", 0, []string{"main"}, [][]cfg.Stmt{{
		cfg.Straight{N: 2},
		cfg.Loop{Trip: 5, Body: []cfg.Stmt{cfg.Straight{N: 3}}},
		cfg.Straight{N: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTraceChainsAndValidates(t *testing.T) {
	p := loopProgram(t)
	tr, err := exec.Trace(p, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("trace length %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopTripCountExact(t *testing.T) {
	p := loopProgram(t)
	e, err := exec.New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One full main execution: 2 straight + 5×(3 body + backedge) +
	// 1 straight + 1 return = 24 instructions.
	var conds, condTaken int
	e.Run(24, func(r trace.Record) {
		if r.Kind == isa.CondBranch {
			conds++
			if r.Taken {
				condTaken++
			}
		}
	})
	if conds != 5 || condTaken != 4 {
		t.Errorf("backedge executed %d times, %d taken; want 5/4", conds, condTaken)
	}
}

func TestRestartOnEntryReturn(t *testing.T) {
	p := loopProgram(t)
	e, err := exec.New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var returns int
	var lastTarget isa.Addr
	e.Run(100, func(r trace.Record) {
		if r.Kind == isa.Return {
			returns++
			lastTarget = r.Target
		}
	})
	if returns == 0 {
		t.Fatal("program never returned from main")
	}
	if e.Restarts() == 0 {
		t.Error("restarts not counted")
	}
	if lastTarget != p.EntryAddr() {
		t.Errorf("restart return targeted %v, want entry %v", lastTarget, p.EntryAddr())
	}
}

func TestCallReturnPairing(t *testing.T) {
	p, err := workload.CallTreeProgram(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exec.New(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Track that every non-restart return targets the instruction after
	// its matching call.
	var stack []isa.Addr
	bad := 0
	e.Run(20000, func(r trace.Record) {
		switch r.Kind {
		case isa.Call:
			stack = append(stack, r.PC.Next())
		case isa.Return:
			if len(stack) > 0 {
				want := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if r.Target != want {
					bad++
				}
			}
		}
	})
	if bad != 0 {
		t.Errorf("%d returns did not match their calls", bad)
	}
}

func TestDeterminism(t *testing.T) {
	spec := workload.Li()
	a := spec.MustTrace(20000)
	b := spec.MustTrace(20000)
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestRunResumable(t *testing.T) {
	// Drawing a trace in chunks gives exactly the same records as one
	// call, even when chunk boundaries fall mid-block.
	p := loopProgram(t)
	e1, _ := exec.New(p, 3)
	var whole []trace.Record
	e1.Run(997, func(r trace.Record) { whole = append(whole, r) })

	e2, _ := exec.New(p, 3)
	var chunked []trace.Record
	for _, n := range []int{1, 2, 3, 5, 7, 11, 968} {
		e2.Run(n, func(r trace.Record) { chunked = append(chunked, r) })
	}
	if len(whole) != len(chunked) {
		t.Fatalf("lengths differ: %d vs %d", len(whole), len(chunked))
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("diverge at %d: %+v vs %+v", i, whole[i], chunked[i])
		}
	}
}

func TestPatternBehaviorCycles(t *testing.T) {
	p, err := cfg.BuildProgram("pat", 0, []string{"main"}, [][]cfg.Stmt{{
		cfg.Loop{Trip: 100, Body: []cfg.Stmt{
			cfg.Straight{N: 1},
			cfg.If{Cond: cfg.PatternBehavior(true, false, false), Then: []cfg.Stmt{cfg.Straight{N: 1}}},
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := exec.New(p, 1)
	var outcomes []bool
	e.Run(2000, func(r trace.Record) {
		if r.Kind == isa.CondBranch && r.Target != p.EntryAddr() {
			// Filter to the pattern site (the backedge targets the
			// loop head; the pattern If jumps forward). Identify by
			// behavior: the backedge is the block whose taken target
			// is backward.
			if r.Target > r.PC || !r.Taken {
				outcomes = append(outcomes, r.Taken)
			}
		}
	})
	// The pattern site cycles T,F,F exactly.
	if len(outcomes) < 30 {
		t.Fatalf("too few pattern executions: %d", len(outcomes))
	}
	// Find the site's stream: outcomes contains both sites' not-taken
	// records; simpler check: the fraction of taken among forward
	// branches is 1/3.
	taken := 0
	for _, o := range outcomes {
		if o {
			taken++
		}
	}
	frac := float64(taken) / float64(len(outcomes))
	if frac < 0.25 || frac > 0.42 {
		t.Errorf("pattern taken fraction = %v, want ~1/3", frac)
	}
}

func TestIndirectTargetsAreDeclared(t *testing.T) {
	p, err := workload.InterpreterProgram(8)
	if err != nil {
		t.Fatal(err)
	}
	// Collect declared indirect target addresses.
	declared := map[isa.Addr]bool{}
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			if b.Term.Kind == isa.IndirectJump {
				for _, tgt := range b.Term.IndirectTargets {
					declared[p.Block(tgt).Addr] = true
				}
			}
		}
	}
	e, _ := exec.New(p, 5)
	bad := 0
	e.Run(20000, func(r trace.Record) {
		if r.Kind == isa.IndirectJump && !declared[r.Target] {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d indirect jumps left the declared target set", bad)
	}
}

func TestStickyIndirectRepeats(t *testing.T) {
	p, err := cfg.BuildProgram("sticky", 0, []string{"main"}, [][]cfg.Stmt{{
		cfg.Loop{Trip: 1000, Body: []cfg.Stmt{
			cfg.Straight{N: 1},
			cfg.Switch{
				Behavior: cfg.Behavior{Kind: cfg.BehaviorIndirectSticky, P: 0.9},
				Cases:    [][]cfg.Stmt{{cfg.Straight{N: 1}}, {cfg.Straight{N: 1}}, {cfg.Straight{N: 1}}},
			},
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := exec.New(p, 9)
	var prev isa.Addr
	repeats, total := 0, 0
	e.Run(20000, func(r trace.Record) {
		if r.Kind != isa.IndirectJump {
			return
		}
		if total > 0 && r.Target == prev {
			repeats++
		}
		prev = r.Target
		total++
	})
	if total < 100 {
		t.Fatalf("too few dispatches: %d", total)
	}
	if frac := float64(repeats) / float64(total-1); frac < 0.8 {
		t.Errorf("sticky repeat fraction = %v, want > 0.8", frac)
	}
}

func TestNewRejectsUnlaidProgram(t *testing.T) {
	p := &cfg.Program{Name: "raw", Procs: []*cfg.Proc{
		{Name: "main", Blocks: []*cfg.Block{{NumInstrs: 1, Term: cfg.Term{Kind: isa.Return}}}},
	}}
	if _, err := exec.New(p, 1); err == nil {
		t.Error("executor accepted a program without layout")
	}
}

func TestProcCountsProfile(t *testing.T) {
	p, err := workload.CallTreeProgram(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := exec.New(p, 1)
	e.Run(5000, func(trace.Record) {})
	// Tier 1 is called twice per main execution, tier 2 four times.
	if e.ProcCounts[1] == 0 || e.ProcCounts[2] == 0 {
		t.Fatal("callee procs never entered")
	}
	if e.ProcCounts[2] < e.ProcCounts[1] {
		t.Errorf("fan-out profile wrong: %v", e.ProcCounts[:3])
	}
}
