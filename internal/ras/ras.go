// Package ras implements the return address stack used by both architectures
// to predict procedure returns (Kaeli & Emma). The paper uses a 32-entry
// stack (§3, §5.1).
package ras

import "repro/internal/isa"

// DefaultDepth is the paper's return-stack depth.
const DefaultDepth = 32

// Stack is a fixed-depth circular return address stack. When calls nest
// deeper than the stack, the oldest entries are overwritten (hardware
// behaviour): the stack never refuses a push, and deeply nested returns
// simply mispredict once they pop past the wrapped region.
type Stack struct {
	entries []isa.Addr
	top     int // index of the next free slot
	depth   int // live entries, capped at len(entries)

	pushes, pops uint64
}

// New builds a stack with the given depth. Depth must be positive.
func New(depth int) *Stack {
	if depth <= 0 {
		panic("ras: depth must be positive")
	}
	return &Stack{entries: make([]isa.Addr, depth)}
}

// Push records a return address (called when a procedure call is fetched).
func (s *Stack) Push(a isa.Addr) {
	s.entries[s.top] = a
	s.top = (s.top + 1) % len(s.entries)
	if s.depth < len(s.entries) {
		s.depth++
	}
	s.pushes++
}

// Pop removes and returns the most recent return address. ok is false when
// the stack is empty (the prediction is then unavailable).
func (s *Stack) Pop() (a isa.Addr, ok bool) {
	s.pops++
	if s.depth == 0 {
		return 0, false
	}
	s.top = (s.top - 1 + len(s.entries)) % len(s.entries)
	s.depth--
	return s.entries[s.top], true
}

// Top returns the most recent return address without removing it.
func (s *Stack) Top() (a isa.Addr, ok bool) {
	if s.depth == 0 {
		return 0, false
	}
	return s.entries[(s.top-1+len(s.entries))%len(s.entries)], true
}

// Depth returns the number of live entries.
func (s *Stack) Depth() int { return s.depth }

// Cap returns the stack's capacity.
func (s *Stack) Cap() int { return len(s.entries) }

// SizeBits returns the storage cost in bits (30-bit word addresses, as the
// paper's RBE accounting assumes a 32-bit byte address space with 4-byte
// instructions).
func (s *Stack) SizeBits() int { return 30 * len(s.entries) }

// Reset empties the stack and clears statistics.
func (s *Stack) Reset() {
	s.top = 0
	s.depth = 0
	s.pushes = 0
	s.pops = 0
}
