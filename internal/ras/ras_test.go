package ras

import (
	"testing"

	"repro/internal/isa"
)

func TestPushPopLIFO(t *testing.T) {
	s := New(8)
	s.Push(0x1000)
	s.Push(0x2000)
	s.Push(0x3000)
	for _, want := range []isa.Addr{0x3000, 0x2000, 0x1000} {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %v/%v, want %v", got, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Error("Pop on empty stack succeeded")
	}
}

func TestTopNonDestructive(t *testing.T) {
	s := New(4)
	if _, ok := s.Top(); ok {
		t.Error("Top on empty stack succeeded")
	}
	s.Push(0x1000)
	for i := 0; i < 3; i++ {
		got, ok := s.Top()
		if !ok || got != 0x1000 {
			t.Fatalf("Top = %v/%v", got, ok)
		}
	}
	if s.Depth() != 1 {
		t.Errorf("Top consumed entries: depth %d", s.Depth())
	}
}

func TestOverflowWrapsOverwritingOldest(t *testing.T) {
	s := New(4)
	for i := 1; i <= 6; i++ {
		s.Push(isa.Addr(i * 0x1000))
	}
	if s.Depth() != 4 {
		t.Fatalf("depth = %d, want capped at 4", s.Depth())
	}
	// The newest four survive: 6,5,4,3. Entries 1 and 2 are gone.
	for _, want := range []isa.Addr{0x6000, 0x5000, 0x4000, 0x3000} {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %v/%v, want %v", got, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Error("wrapped entries resurrected")
	}
}

func TestDeepCallReturnSequence(t *testing.T) {
	// Balanced call/return nesting within capacity predicts perfectly.
	s := New(DefaultDepth)
	var addrs []isa.Addr
	for i := 0; i < DefaultDepth; i++ {
		a := isa.Addr(0x1000 + 4*i)
		s.Push(a)
		addrs = append(addrs, a)
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		got, ok := s.Pop()
		if !ok || got != addrs[i] {
			t.Fatalf("depth-%d return mispredicted", i)
		}
	}
}

func TestReset(t *testing.T) {
	s := New(4)
	s.Push(0x1000)
	s.Reset()
	if s.Depth() != 0 {
		t.Error("Reset left entries")
	}
	if _, ok := s.Pop(); ok {
		t.Error("Pop after Reset succeeded")
	}
}

func TestSizeBits(t *testing.T) {
	if got := New(32).SizeBits(); got != 32*30 {
		t.Errorf("SizeBits = %d", got)
	}
}

func TestCapAndDepth(t *testing.T) {
	s := New(16)
	if s.Cap() != 16 || s.Depth() != 0 {
		t.Errorf("Cap/Depth = %d/%d", s.Cap(), s.Depth())
	}
	s.Push(1 * 4)
	if s.Depth() != 1 {
		t.Errorf("Depth = %d", s.Depth())
	}
}

func TestZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}
