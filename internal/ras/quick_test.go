package ras

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// Property test: for any interleaving of pushes and pops, the hardware
// stack agrees with an unbounded software stack whenever nesting depth has
// not exceeded capacity since the last time the stacks were provably in
// sync — i.e. a wrap is the only divergence mechanism.
func TestQuickMatchesUnboundedStackWithinCapacity(t *testing.T) {
	f := func(ops []bool, addrs []uint16) bool {
		s := New(8)
		var ref []isa.Addr
		overflowed := false
		ai := 0
		for _, push := range ops {
			if push {
				a := isa.Addr(0x1000)
				if ai < len(addrs) {
					a = isa.Addr(uint32(addrs[ai])*4 + 0x1000)
					ai++
				}
				s.Push(a)
				ref = append(ref, a)
				if len(ref) > s.Cap() {
					overflowed = true
				}
			} else {
				got, ok := s.Pop()
				var want isa.Addr
				wantOK := len(ref) > 0
				if wantOK {
					want = ref[len(ref)-1]
					ref = ref[:len(ref)-1]
				}
				if !overflowed {
					if ok != wantOK || (ok && got != want) {
						return false
					}
				}
				if len(ref) == 0 && s.Depth() == 0 {
					// Both empty: back in provable sync.
					overflowed = false
				}
			}
		}
		return s.Depth() <= s.Cap()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
