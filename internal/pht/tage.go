package pht

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
)

// TAGE-lite: a tagged-geometric-history direction predictor implementing
// the DirectionPredictor protocol natively (DESIGN.md §13). The shape is
// Seznec's TAGE reduced to its load-bearing parts: a bimodal base table
// plus a few tagged tables indexed by geometrically increasing slices of a
// speculative global history register, provider = longest matching
// history, allocate-on-mispredict governed by usefulness counters. What
// the lite version drops (alternate-prediction confidence, periodic u
// reset, randomized allocation) it drops for determinism — every
// simulation must replay bit-identically.
//
// Speculative state: Predict shifts the *predicted* outcome into the
// history register and checkpoints the pre-shift history plus everything
// the matching Resolve needs (per-table indices/tags, provider, both
// predictions). Resolve repairs the register from the checkpoint when the
// guess was wrong or a wrong-path excursion poisoned it; WrongPath models
// that poisoning by shifting wrong-path bits in, unwound at the next
// Resolve or Predict (the fetch redirect).

// Caps on every TAGEConfig field that sizes an allocation. TAGE specs
// arrive from untrusted JSON via arch.PHTSpec, whose Validate delegates to
// TAGEConfig.Validate — so the bounds live here, next to the allocations
// they protect.
const (
	// MaxTAGETables bounds the number of tagged tables.
	MaxTAGETables = 8
	// MaxTAGEEntries bounds the base table and each tagged table.
	MaxTAGEEntries = 1 << 22
	// MaxTAGEHistory bounds the geometric history lengths (the history
	// register is one 64-bit word).
	MaxTAGEHistory = 64
	// MinTAGETagBits and MaxTAGETagBits bound the per-entry tag width.
	MinTAGETagBits = 4
	MaxTAGETagBits = 16
)

// tageCkptRing is the checkpoint ring depth — comfortably above the one
// in-flight prediction the frontend's break pipeline produces, so resolves
// arriving in order can never miss their checkpoint.
const tageCkptRing = 16

// TAGEConfig sizes a TAGE-lite predictor.
type TAGEConfig struct {
	// BaseEntries sizes the bimodal base table (2-bit counters).
	BaseEntries int
	// Tables is the number of tagged tables; Entries sizes each one.
	Tables  int
	Entries int
	// TagBits is the per-entry partial tag width.
	TagBits int
	// MinHist and MaxHist are the shortest and longest geometric history
	// lengths; intermediate tables interpolate geometrically.
	MinHist int
	MaxHist int
}

// Validate rejects any configuration whose construction would misbehave —
// the error-returning gate arch.PHTSpec.Validate surfaces, so a hostile
// spec can never panic (or size an unbounded allocation in) a serve
// worker.
func (c TAGEConfig) Validate() error {
	if err := CheckEntries(c.BaseEntries); err != nil {
		return fmt.Errorf("tage base: %w", err)
	}
	if c.BaseEntries > MaxTAGEEntries {
		return fmt.Errorf("pht: tage base entries %d exceeds the %d cap", c.BaseEntries, MaxTAGEEntries)
	}
	if err := CheckEntries(c.Entries); err != nil {
		return fmt.Errorf("tage tables: %w", err)
	}
	if c.Entries > MaxTAGEEntries {
		return fmt.Errorf("pht: tage entries %d exceeds the %d cap", c.Entries, MaxTAGEEntries)
	}
	if c.Tables < 1 || c.Tables > MaxTAGETables {
		return fmt.Errorf("pht: tage tables %d out of range [1, %d]", c.Tables, MaxTAGETables)
	}
	if c.TagBits < MinTAGETagBits || c.TagBits > MaxTAGETagBits {
		return fmt.Errorf("pht: tage tag_bits %d out of range [%d, %d]", c.TagBits, MinTAGETagBits, MaxTAGETagBits)
	}
	if c.MinHist < 1 || c.MaxHist < c.MinHist || c.MaxHist > MaxTAGEHistory {
		return fmt.Errorf("pht: tage history lengths [%d, %d] out of range [1, %d]",
			c.MinHist, c.MaxHist, MaxTAGEHistory)
	}
	if c.Tables > 1 && c.MinHist == c.MaxHist {
		return fmt.Errorf("pht: tage needs min_hist < max_hist for %d tables", c.Tables)
	}
	return nil
}

// histLens returns the geometric history-length series, strictly
// increasing from MinHist to MaxHist. Deterministic: same config, same
// lengths.
func (c TAGEConfig) histLens() []int {
	lens := make([]int, c.Tables)
	lens[0] = c.MinHist
	if c.Tables == 1 {
		lens[0] = c.MaxHist
		return lens
	}
	r := math.Pow(float64(c.MaxHist)/float64(c.MinHist), 1/float64(c.Tables-1))
	for i := 1; i < c.Tables; i++ {
		l := int(math.Round(float64(c.MinHist) * math.Pow(r, float64(i))))
		if l <= lens[i-1] {
			l = lens[i-1] + 1
		}
		lens[i] = l
	}
	lens[c.Tables-1] = c.MaxHist
	return lens
}

// SizeBits returns the modelled storage cost: the base counters, each
// tagged entry's tag + 3-bit counter + 2-bit usefulness, and the history
// register. (The Go-side valid flag models the hardware's reserved
// tag/usefulness encodings and costs no modelled bits.)
func (c TAGEConfig) SizeBits() int {
	return 2*c.BaseEntries + c.Tables*c.Entries*(c.TagBits+3+2) + c.MaxHist
}

// tageEntry is one tagged-table entry.
type tageEntry struct {
	tag   uint16
	ctr   uint8 // 3-bit saturating, taken if >= 4
	u     uint8 // 2-bit usefulness
	valid bool
}

// tageCkpt is the per-prediction checkpoint Resolve repairs from.
type tageCkpt struct {
	tok       Token
	hist      uint64 // history before the speculative shift
	idx       [MaxTAGETables]uint32
	tag       [MaxTAGETables]uint16
	provider  int8 // tagged table that provided, -1 = base
	predTaken bool
	altTaken  bool
}

// TAGE is the TAGE-lite predictor. It implements DirectionPredictor (not
// the legacy Predictor — its speculative history cannot round-trip through
// a stateless Predict/Update pair).
type TAGE struct {
	cfg     TAGEConfig
	lens    []int
	base    []uint8
	tables  [][]tageEntry
	idxBits int
	idxMask uint32
	tagMask uint16
	ckpt    [tageCkptRing]tageCkpt
	seq     Token

	hist uint64 // speculative global history, newest outcome at bit 0

	// Wrong-path poison bookkeeping: prePoison holds the history to
	// unwind to when poisonDepth > 0 (see WrongPath).
	prePoison   uint64
	poisonDepth int
}

// NewTAGE builds a TAGE-lite predictor, rejecting invalid configurations
// with an error rather than a panic — this constructor sits on the
// untrusted-spec path.
func NewTAGE(cfg TAGEConfig) (*TAGE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &TAGE{
		cfg:     cfg,
		lens:    cfg.histLens(),
		base:    make([]uint8, cfg.BaseEntries),
		tables:  make([][]tageEntry, cfg.Tables),
		idxBits: bits.TrailingZeros(uint(cfg.Entries)),
		idxMask: uint32(cfg.Entries - 1),
		tagMask: uint16(1<<uint(cfg.TagBits) - 1),
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, cfg.Entries)
	}
	t.Reset()
	return t, nil
}

// MustTAGE is NewTAGE panicking on error, for static configurations in
// tests and examples.
func MustTAGE(cfg TAGEConfig) *TAGE {
	t, err := NewTAGE(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// HistLens exposes the geometric history lengths (for reports and tests).
func (t *TAGE) HistLens() []int { return append([]int(nil), t.lens...) }

// fold compresses the low histLen bits of h into outBits by XOR-folding.
func fold(h uint64, histLen, outBits int) uint32 {
	if histLen < 64 {
		h &= 1<<uint(histLen) - 1
	}
	var f uint64
	m := uint64(1)<<uint(outBits) - 1
	for h != 0 {
		f ^= h & m
		h >>= uint(outBits)
	}
	return uint32(f)
}

// slot computes table i's index and tag for pc under history h.
func (t *TAGE) slot(i int, pc isa.Addr, h uint64) (uint32, uint16) {
	w := pc.Word()
	idx := (w ^ w>>uint(t.idxBits) ^ fold(h, t.lens[i], t.idxBits) ^ uint32(i)) & t.idxMask
	tag := uint16(w^fold(h, t.lens[i], t.cfg.TagBits)^fold(h, t.lens[i], t.cfg.TagBits-1)<<1) & t.tagMask
	return idx, tag
}

func (t *TAGE) baseIdx(pc isa.Addr) uint32 {
	return pc.Word() & uint32(t.cfg.BaseEntries-1)
}

// lookup evaluates the prediction for pc under history h, filling the
// checkpoint's per-table slots when ck is non-nil. The provider is the
// longest-history tag match; the alternative is the next match below it,
// falling back to the bimodal base.
func (t *TAGE) lookup(pc isa.Addr, h uint64, ck *tageCkpt) (predTaken, altTaken bool, provider int8) {
	var idxs [MaxTAGETables]uint32
	provider, alt := int8(-1), int8(-1)
	for i := t.cfg.Tables - 1; i >= 0; i-- {
		idx, tag := t.slot(i, pc, h)
		idxs[i] = idx
		if ck != nil {
			ck.idx[i], ck.tag[i] = idx, tag
		}
		e := &t.tables[i][idx]
		if e.valid && e.tag == tag {
			if provider < 0 {
				provider = int8(i)
			} else if alt < 0 {
				alt = int8(i)
			}
		}
	}
	baseTaken := counterTaken(t.base[t.baseIdx(pc)])
	predTaken, altTaken = baseTaken, baseTaken
	if alt >= 0 {
		altTaken = t.tables[alt][idxs[alt]].ctr >= 4
	}
	if provider >= 0 {
		predTaken = t.tables[provider][idxs[provider]].ctr >= 4
	}
	return predTaken, altTaken, provider
}

// Predict implements DirectionPredictor: evaluate the tables under the
// current speculative history, checkpoint, and shift the predicted outcome
// in.
func (t *TAGE) Predict(pc isa.Addr) (bool, Token) {
	// A wrong-path excursion with no conditional in flight is unwound by
	// the redirect that precedes the next prediction.
	if t.poisonDepth > 0 {
		t.hist = t.prePoison
		t.poisonDepth = 0
	}
	t.seq++
	tok := t.seq
	ck := &t.ckpt[tok%tageCkptRing]
	*ck = tageCkpt{tok: tok, hist: t.hist}
	predTaken, altTaken, provider := t.lookup(pc, t.hist, ck)
	ck.predTaken, ck.altTaken, ck.provider = predTaken, altTaken, provider
	t.hist <<= 1
	if predTaken {
		t.hist |= 1
	}
	return predTaken, tok
}

// Query implements DirectionPredictor: the prediction Predict would make
// for pc right now, as a pure read — no checkpoint, no history shift.
func (t *TAGE) Query(pc isa.Addr) bool {
	predTaken, _, _ := t.lookup(pc, t.hist, nil)
	return predTaken
}

// Resolve implements DirectionPredictor: train on the actual outcome of
// the prediction issued under tok and repair the speculative history if
// the predicted bit was wrong or a wrong-path excursion poisoned it.
func (t *TAGE) Resolve(pc isa.Addr, tok Token, taken bool) {
	ck := &t.ckpt[tok%tageCkptRing]
	if ck.tok != tok {
		// Checkpoint lost (overwritten by deeper speculation than the
		// ring holds, or a stale token). Degrade gracefully: train the
		// base table, leave history alone — never panic.
		bi := t.baseIdx(pc)
		t.base[bi] = counterUpdate(t.base[bi], taken)
		return
	}
	ck.tok = 0 // consume

	mispred := ck.predTaken != taken

	// Train the provider (3-bit counter), or the base table when no
	// tagged table provided.
	if p := int(ck.provider); p >= 0 {
		e := &t.tables[p][ck.idx[p]]
		e.ctr = ctr3Update(e.ctr, taken)
		// Usefulness tracks "provider beat the alternative".
		if ck.predTaken != ck.altTaken {
			if ck.predTaken == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		bi := t.baseIdx(pc)
		t.base[bi] = counterUpdate(t.base[bi], taken)
	}

	// Allocate a longer-history entry on a mispredict: first table above
	// the provider whose slot is not useful; if all are defending their
	// state, age them instead (Seznec's u-decrement on allocation
	// failure). Deterministic first-fit replaces the hardware LFSR.
	if mispred && int(ck.provider) < t.cfg.Tables-1 {
		allocated := false
		for j := int(ck.provider) + 1; j < t.cfg.Tables; j++ {
			e := &t.tables[j][ck.idx[j]]
			if !e.valid || e.u == 0 {
				*e = tageEntry{tag: ck.tag[j], ctr: ctr3Weak(taken), valid: true}
				allocated = true
				break
			}
		}
		if !allocated {
			for j := int(ck.provider) + 1; j < t.cfg.Tables; j++ {
				e := &t.tables[j][ck.idx[j]]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	// History repair: the checkpoint predates both the speculative shift
	// and any wrong-path poison, so one restore fixes both. When the
	// prediction was right and nothing was poisoned, the register already
	// holds exactly this value — leaving it untouched keeps overlapped
	// (pending-resolve) prediction sequences intact.
	if mispred || t.poisonDepth > 0 {
		t.hist = ck.hist << 1
		if taken {
			t.hist |= 1
		}
		t.poisonDepth = 0
	}
}

// WrongPath implements DirectionPredictor: a wrong-path fetch shifts a
// bogus "outcome" derived from the fetched address into the speculative
// history, modelling the corruption a real front end's speculative history
// register suffers until recovery. The pre-poison history is kept so the
// next Resolve (mispredict recovery) or Predict (fetch redirect) unwinds
// it exactly.
func (t *TAGE) WrongPath(addr isa.Addr) {
	if t.poisonDepth == 0 {
		t.prePoison = t.hist
	}
	t.poisonDepth++
	t.hist = t.hist<<1 | uint64(addr.Word()&1)
}

// SizeBits implements Directional.
func (t *TAGE) SizeBits() int { return t.cfg.SizeBits() }

// Name implements Directional.
func (t *TAGE) Name() string {
	return fmt.Sprintf("tage-%dx%d+b%d", t.cfg.Tables, t.cfg.Entries, t.cfg.BaseEntries)
}

// Reset implements Directional.
func (t *TAGE) Reset() {
	for i := range t.base {
		t.base[i] = counterInit
	}
	for _, tbl := range t.tables {
		for i := range tbl {
			tbl[i] = tageEntry{}
		}
	}
	t.ckpt = [tageCkptRing]tageCkpt{}
	t.seq = 0
	t.hist = 0
	t.prePoison = 0
	t.poisonDepth = 0
}

// ctr3Update saturates a 3-bit counter toward the outcome.
func ctr3Update(c uint8, taken bool) uint8 {
	if taken {
		if c < 7 {
			return c + 1
		}
		return 7
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// ctr3Weak returns the weak 3-bit state agreeing with the outcome, the
// allocation value for a fresh entry.
func ctr3Weak(taken bool) uint8 {
	if taken {
		return 4
	}
	return 3
}
