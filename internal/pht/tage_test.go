package pht

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// smallTAGE is the unit-test configuration: small tables so allocation
// pressure is visible, full-range geometric history.
func smallTAGE() TAGEConfig {
	return TAGEConfig{BaseEntries: 128, Tables: 4, Entries: 64, TagBits: 9, MinHist: 4, MaxHist: 64}
}

// trainTAGE runs the predictor through the protocol at one site — Predict,
// then Resolve with the architectural outcome, as the frontend does — and
// returns the accuracy over the final pass.
func trainTAGE(p DirectionPredictor, pc isa.Addr, pattern []bool, passes int) float64 {
	for i := 0; i < passes-1; i++ {
		for _, taken := range pattern {
			_, tok := p.Predict(pc)
			p.Resolve(pc, tok, taken)
		}
	}
	correct := 0
	for _, taken := range pattern {
		pred, tok := p.Predict(pc)
		if pred == taken {
			correct++
		}
		p.Resolve(pc, tok, taken)
	}
	return float64(correct) / float64(len(pattern))
}

func TestTAGEConfigValidate(t *testing.T) {
	if err := smallTAGE().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []struct {
		name string
		mod  func(*TAGEConfig)
	}{
		{"base not pow2", func(c *TAGEConfig) { c.BaseEntries = 127 }},
		{"base zero", func(c *TAGEConfig) { c.BaseEntries = 0 }},
		{"base negative", func(c *TAGEConfig) { c.BaseEntries = -8 }},
		{"base over cap", func(c *TAGEConfig) { c.BaseEntries = MaxTAGEEntries * 2 }},
		{"entries not pow2", func(c *TAGEConfig) { c.Entries = 65 }},
		{"entries huge", func(c *TAGEConfig) { c.Entries = 1 << 40 }},
		{"no tables", func(c *TAGEConfig) { c.Tables = 0 }},
		{"too many tables", func(c *TAGEConfig) { c.Tables = MaxTAGETables + 1 }},
		{"tag too narrow", func(c *TAGEConfig) { c.TagBits = MinTAGETagBits - 1 }},
		{"tag too wide", func(c *TAGEConfig) { c.TagBits = MaxTAGETagBits + 1 }},
		{"zero min hist", func(c *TAGEConfig) { c.MinHist = 0 }},
		{"inverted hist", func(c *TAGEConfig) { c.MinHist = 32; c.MaxHist = 8 }},
		{"hist over register", func(c *TAGEConfig) { c.MaxHist = MaxTAGEHistory + 1 }},
		{"flat hist multi-table", func(c *TAGEConfig) { c.MinHist = 8; c.MaxHist = 8 }},
	}
	for _, tc := range bad {
		cfg := smallTAGE()
		tc.mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, cfg)
		}
		if _, err := NewTAGE(cfg); err == nil {
			t.Errorf("%s: NewTAGE accepted %+v", tc.name, cfg)
		}
	}
}

func TestTAGEHistLensGeometricAndIncreasing(t *testing.T) {
	cfg := smallTAGE()
	lens := MustTAGE(cfg).HistLens()
	if len(lens) != cfg.Tables {
		t.Fatalf("got %d lengths for %d tables", len(lens), cfg.Tables)
	}
	if lens[0] != cfg.MinHist || lens[len(lens)-1] != cfg.MaxHist {
		t.Fatalf("lengths %v do not span [%d, %d]", lens, cfg.MinHist, cfg.MaxHist)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Fatalf("lengths %v not strictly increasing", lens)
		}
	}
}

func TestTAGESizeBits(t *testing.T) {
	cfg := smallTAGE()
	want := 2*128 + 4*64*(9+3+2) + 64
	if got := MustTAGE(cfg).SizeBits(); got != want {
		t.Fatalf("SizeBits = %d, want %d", got, want)
	}
}

// TestTAGELearnsLongLoopExit: the payoff behind the whole predictor. A
// trip-24 loop backedge needs ≥24 outcomes of history to pin the exit
// phase; a 6-bit-history gshare cannot separate the exit from the 23 taken
// iterations, TAGE's long tables can.
func TestTAGELearnsLongLoopExit(t *testing.T) {
	pat := make([]bool, 24)
	for i := range pat {
		pat[i] = i != 23
	}
	tg := MustTAGE(smallTAGE())
	if acc := trainTAGE(tg, 0x1000, pat, 80); acc != 1 {
		t.Errorf("TAGE accuracy on trip-24 loop = %v, want 1", acc)
	}
	g := NewGShare(4096, 6)
	if acc := train(g, 0x1000, pat, 80); acc == 1 {
		t.Errorf("6-bit gshare should not fully learn a trip-24 loop (control for the claim above)")
	}
}

// TestTAGECheckpointRepairOnMispredict: a wrong speculative bit must be
// replaced by the actual outcome, leaving the history exactly as if the
// prediction had been right all along.
func TestTAGECheckpointRepairOnMispredict(t *testing.T) {
	tg := MustTAGE(smallTAGE())
	pc := isa.Addr(0x2000)
	// Drive a deterministic outcome stream; after every Resolve the
	// speculative history must equal the architectural outcome history.
	var arch uint64
	outcomes := []bool{true, true, false, true, false, false, true, false, true, true}
	for pass := 0; pass < 50; pass++ {
		for _, taken := range outcomes {
			_, tok := tg.Predict(pc)
			tg.Resolve(pc, tok, taken)
			arch = arch<<1 | b2u(taken)
			if tg.hist != arch {
				t.Fatalf("pass %d: speculative history %b diverged from architectural %b", pass, tg.hist, arch)
			}
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TestTAGEPendingResolveSequences: overlapped speculation — two Predicts in
// flight, resolved in order. A correct first resolve must not clobber the
// second prediction's speculative bit; a wrong first resolve must squash
// it (the second branch was wrong-path).
func TestTAGEPendingResolveSequences(t *testing.T) {
	pcA, pcB := isa.Addr(0x3000), isa.Addr(0x3100)

	tg := MustTAGE(smallTAGE())
	predA, tokA := tg.Predict(pcA)
	predB, tokB := tg.Predict(pcB)
	histBoth := tg.hist
	// Resolve A correctly: B's speculative bit stays in place.
	tg.Resolve(pcA, tokA, predA)
	if tg.hist != histBoth {
		t.Fatalf("correct resolve clobbered in-flight speculation: %b -> %b", histBoth, tg.hist)
	}
	tg.Resolve(pcB, tokB, predB)
	if tg.hist != histBoth {
		t.Fatalf("correct second resolve changed history: %b -> %b", histBoth, tg.hist)
	}

	tg.Reset()
	_, tokA = tg.Predict(pcA)
	tg.Predict(pcB)
	ckHist := tg.ckpt[tokA%tageCkptRing].hist
	// Resolve A as a mispredict: history rewinds to A's checkpoint plus
	// the actual outcome — B's speculative bit is squashed.
	actual := !tg.ckpt[tokA%tageCkptRing].predTaken
	tg.Resolve(pcA, tokA, actual)
	want := ckHist<<1 | b2u(actual)
	if tg.hist != want {
		t.Fatalf("mispredict repair: history %b, want %b", tg.hist, want)
	}
}

// TestTAGEWrongPathPoisonAndRepair: WrongPath corrupts the speculative
// history; the pending Resolve (mispredict recovery) or the next Predict
// (fetch redirect) must restore it exactly.
func TestTAGEWrongPathPoisonAndRepair(t *testing.T) {
	tg := MustTAGE(smallTAGE())
	pc := isa.Addr(0x4000)

	// Warm some history in.
	for i := 0; i < 40; i++ {
		_, tok := tg.Predict(pc)
		tg.Resolve(pc, tok, i%3 != 0)
	}

	// Case 1: poison between Predict and Resolve — Resolve repairs, even
	// when the direction guess itself was right.
	pred, tok := tg.Predict(pc)
	clean := tg.hist
	tg.WrongPath(0x5000)
	tg.WrongPath(0x5004)
	if tg.hist == clean {
		t.Fatal("WrongPath did not perturb speculative history")
	}
	tg.Resolve(pc, tok, pred) // correct prediction, poisoned history
	if tg.hist != clean {
		t.Fatalf("resolve did not repair poison: %b, want %b", tg.hist, clean)
	}

	// Case 2: poison with no conditional in flight (a wrong non-cond
	// break) — the next Predict unwinds it before reading the tables.
	before := tg.hist
	tg.WrongPath(0x6000)
	tg.WrongPath(0x6004)
	tg.WrongPath(0x6008)
	predPoisoned, tok2 := tg.Predict(pc)
	if got := tg.ckpt[tok2%tageCkptRing].hist; got != before {
		t.Fatalf("Predict did not unwind poison: checkpointed %b, want %b", got, before)
	}
	tg.Resolve(pc, tok2, predPoisoned)

	// Query reads through whatever is currently speculative (it is a
	// pure read), but must never mutate state.
	h := tg.hist
	seq := tg.seq
	tg.Query(pc)
	if tg.hist != h || tg.seq != seq {
		t.Fatal("Query mutated predictor state")
	}
}

// TestTAGEStaleTokenDegradesGracefully: a Resolve whose checkpoint has been
// recycled must train conservatively and never panic or repair from a
// mismatched checkpoint.
func TestTAGEStaleTokenDegradesGracefully(t *testing.T) {
	tg := MustTAGE(smallTAGE())
	pc := isa.Addr(0x7000)
	_, stale := tg.Predict(pc)
	// Overrun the checkpoint ring.
	for i := 0; i < tageCkptRing+4; i++ {
		_, tok := tg.Predict(pc + isa.Addr(4*i))
		tg.Resolve(pc+isa.Addr(4*i), tok, true)
	}
	h := tg.hist
	tg.Resolve(pc, stale, false) // stale: must not rewind history
	if tg.hist != h {
		t.Fatalf("stale resolve rewound history: %b -> %b", h, tg.hist)
	}
	// Resolving with a never-issued token is equally harmless.
	tg.Resolve(pc, Token(999999), true)
}

// TestTAGEAllocationPressure: irreducibly random branches mispredict
// forever; they must not monopolize the tagged tables. After heavy traffic
// the usefulness discipline must leave entries allocatable (some u == 0),
// and deterministic replay must hold.
func TestTAGEDeterministicReplay(t *testing.T) {
	run := func() uint64 {
		tg := MustTAGE(smallTAGE())
		var sig uint64
		rng := uint32(0x9e3779b9)
		for i := 0; i < 20000; i++ {
			rng = rng*1664525 + 1013904223
			pc := isa.Addr(0x1000 + (rng>>8)%257*4)
			taken := rng&7 != 0 && (rng>>12)&1 == 1
			pred, tok := tg.Predict(pc)
			if pred {
				sig = sig*3 + 1
			}
			if rng&15 == 0 {
				tg.WrongPath(isa.Addr(rng))
			}
			tg.Resolve(pc, tok, taken)
			sig = sig*31 + tg.hist
		}
		return sig
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replays diverged: %#x vs %#x", a, b)
	}
}

func TestTAGEResetRestoresColdState(t *testing.T) {
	tg := MustTAGE(smallTAGE())
	cold := tg.Query(0x1000)
	for i := 0; i < 500; i++ {
		_, tok := tg.Predict(0x1000)
		tg.Resolve(0x1000, tok, true)
	}
	tg.Reset()
	if tg.hist != 0 || tg.seq != 0 || tg.poisonDepth != 0 {
		t.Fatal("Reset left speculative state behind")
	}
	if got := tg.Query(0x1000); got != cold {
		t.Fatalf("post-Reset prediction %v differs from cold %v", got, cold)
	}
}

func TestTAGEName(t *testing.T) {
	name := MustTAGE(smallTAGE()).Name()
	if !strings.HasPrefix(name, "tage-") {
		t.Fatalf("name %q does not identify the scheme", name)
	}
}
