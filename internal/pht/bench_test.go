package pht

import (
	"testing"

	"repro/internal/isa"
)

func benchPredictor(b *testing.B, p Predictor) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := isa.Addr(uint32(i*4) & 0xffff)
		taken := p.Predict(pc)
		p.Update(pc, !taken == (i%3 == 0))
	}
}

func BenchmarkGShare(b *testing.B)  { benchPredictor(b, NewGShare(4096, 6)) }
func BenchmarkGAs(b *testing.B)     { benchPredictor(b, NewGAs(4096)) }
func BenchmarkBimodal(b *testing.B) { benchPredictor(b, NewBimodal(4096)) }
func BenchmarkOneBit(b *testing.B)  { benchPredictor(b, NewOneBit(4096)) }
