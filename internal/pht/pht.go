// Package pht implements the conditional-branch direction predictors used by
// both the NLS and BTB fetch architectures.
//
// The paper's decoupled design keeps direction prediction in a pattern
// history table (PHT) separate from the target predictor, so that every
// conditional branch — including ones that miss in the BTB or have an
// invalid NLS entry — gets a dynamic prediction. The paper's configuration
// is McFarling's two-level scheme (gshare): the global history register
// XORed with the program counter indexes a 4096-entry table of 2-bit
// saturating counters (§3). The other predictors here support the ablation
// study: the pure-global degenerate scheme of Pan et al. (GAs), a
// per-address bimodal table, a one-bit table (as coupled to the TFP/R8000
// NLS-cache), and static predictors.
package pht

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// Predictor predicts conditional-branch directions. Implementations are
// trained with the resolved outcome after each conditional branch executes.
type Predictor interface {
	// Predict returns true if the branch at pc is predicted taken.
	Predict(pc isa.Addr) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc isa.Addr, taken bool)
	// SizeBits returns the predictor's storage cost in bits.
	SizeBits() int
	// Name identifies the predictor for reports.
	Name() string
	// Reset restores the initial state.
	Reset()
}

// counter2 operations: 2-bit saturating counter, 0-1 predict not taken,
// 2-3 predict taken. Initialized to 1 (weakly not taken).
const counterInit = 1

func counterTaken(c uint8) bool { return c >= 2 }

func counterUpdate(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// CheckEntries validates a predictor table size: a positive power of two.
// It is the single source of truth shared by this package's constructors
// and arch.PHTSpec.Validate, so an untrusted spec is rejected with an
// error before any constructor runs — a hostile spec reaching Build can
// never panic a serve worker.
func CheckEntries(entries int) error {
	if entries <= 0 || bits.OnesCount(uint(entries)) != 1 {
		return fmt.Errorf("pht: entries %d must be a positive power of two", entries)
	}
	return nil
}

// mustEntries guards the direct constructors, where a bad size is a
// programming error: the panic value is the same validated error
// CheckEntries reports.
func mustEntries(entries int) {
	if err := CheckEntries(entries); err != nil {
		panic(err)
	}
}

// GShare is McFarling's combining predictor: index = (PC>>2 XOR global
// history) mod entries, over 2-bit counters. This is the paper's PHT for
// both architectures ("we XOR the global history register with the program
// counter and use this to index into a 4096 entry (1KByte) PHT").
type GShare struct {
	table    []uint8
	history  uint32
	histBits uint
	mask     uint32
}

// NewGShare builds a gshare predictor. histBits is clamped to
// log2(entries); the paper uses a history as wide as the index.
func NewGShare(entries int, histBits int) *GShare {
	mustEntries(entries)
	idxBits := bits.TrailingZeros(uint(entries))
	if histBits <= 0 || histBits > idxBits {
		histBits = idxBits
	}
	g := &GShare{
		table:    make([]uint8, entries),
		histBits: uint(histBits),
		mask:     uint32(entries - 1),
	}
	g.Reset()
	return g
}

func (g *GShare) index(pc isa.Addr) uint32 {
	return (pc.Word() ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(pc isa.Addr) bool {
	return counterTaken(g.table[g.index(pc)])
}

// Update implements Predictor. The global history shifts in the outcome of
// every conditional branch.
func (g *GShare) Update(pc isa.Addr, taken bool) {
	i := g.index(pc)
	g.table[i] = counterUpdate(g.table[i], taken)
	g.history = (g.history << 1) & ((1 << g.histBits) - 1)
	if taken {
		g.history |= 1
	}
}

// SizeBits implements Predictor (2 bits per counter plus the history
// register).
func (g *GShare) SizeBits() int { return 2*len(g.table) + int(g.histBits) }

// Name implements Predictor.
func (g *GShare) Name() string { return fmt.Sprintf("gshare-%d", len(g.table)) }

// StateKey reports a key identifying the predictor's full configuration —
// including the history width, which Name omits — and whether the predictor
// is in its cold (freshly built or Reset) state. The broadcast echo dedup
// (package fetch) uses it to prove that two engines' direction state will
// evolve identically from here on under the same trace.
func (g *GShare) StateKey() (string, bool) {
	if g.history != 0 {
		return "", false
	}
	for _, c := range g.table {
		if c != counterInit {
			return "", false
		}
	}
	return fmt.Sprintf("gshare(%d,%d)", len(g.table), g.histBits), true
}

// AdoptState copies src's counter table and branch history into g when src
// is a GShare of identical configuration, reporting whether the copy
// happened. The broadcast replay uses this to hand a shared direction-bit
// stream's trained state to the engines that consumed the stream instead
// of training their own identical predictor (fetch.BroadcastWorkers), so
// sharing stays invisible to anything that runs the engines afterwards.
func (g *GShare) AdoptState(src Predictor) bool {
	s, ok := src.(*GShare)
	if !ok || len(g.table) != len(s.table) || g.histBits != s.histBits {
		return false
	}
	copy(g.table, s.table)
	g.history = s.history
	return true
}

// Reset implements Predictor.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = counterInit
	}
	g.history = 0
}

// GAs is the degenerate two-level scheme of Pan et al.: the global history
// register alone indexes the counter table.
type GAs struct {
	table    []uint8
	history  uint32
	histBits uint
}

// NewGAs builds a pure-global two-level predictor with log2(entries) history
// bits.
func NewGAs(entries int) *GAs {
	mustEntries(entries)
	g := &GAs{
		table:    make([]uint8, entries),
		histBits: uint(bits.TrailingZeros(uint(entries))),
	}
	g.Reset()
	return g
}

// Predict implements Predictor.
func (g *GAs) Predict(isa.Addr) bool { return counterTaken(g.table[g.history]) }

// Update implements Predictor.
func (g *GAs) Update(_ isa.Addr, taken bool) {
	g.table[g.history] = counterUpdate(g.table[g.history], taken)
	g.history = (g.history << 1) & uint32(len(g.table)-1)
	if taken {
		g.history |= 1
	}
}

// SizeBits implements Predictor.
func (g *GAs) SizeBits() int { return 2*len(g.table) + int(g.histBits) }

// Name implements Predictor.
func (g *GAs) Name() string { return fmt.Sprintf("GAs-%d", len(g.table)) }

// Reset implements Predictor.
func (g *GAs) Reset() {
	for i := range g.table {
		g.table[i] = counterInit
	}
	g.history = 0
}

// Bimodal is a per-address table of 2-bit counters (Smith's classic
// predictor), indexed by PC alone.
type Bimodal struct {
	table []uint8
	mask  uint32
}

// NewBimodal builds a bimodal predictor.
func NewBimodal(entries int) *Bimodal {
	mustEntries(entries)
	b := &Bimodal{table: make([]uint8, entries), mask: uint32(entries - 1)}
	b.Reset()
	return b
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc isa.Addr) bool {
	return counterTaken(b.table[pc.Word()&b.mask])
}

// Update implements Predictor.
func (b *Bimodal) Update(pc isa.Addr, taken bool) {
	i := pc.Word() & b.mask
	b.table[i] = counterUpdate(b.table[i], taken)
}

// SizeBits implements Predictor.
func (b *Bimodal) SizeBits() int { return 2 * len(b.table) }

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = counterInit
	}
}

// OneBit is a per-address table of last-outcome bits — the prediction
// coupled to the TFP (MIPS R8000) NLS-cache entries (§6.2).
type OneBit struct {
	table []bool
	mask  uint32
}

// NewOneBit builds a one-bit last-outcome predictor.
func NewOneBit(entries int) *OneBit {
	mustEntries(entries)
	return &OneBit{table: make([]bool, entries), mask: uint32(entries - 1)}
}

// Predict implements Predictor.
func (o *OneBit) Predict(pc isa.Addr) bool { return o.table[pc.Word()&o.mask] }

// Update implements Predictor.
func (o *OneBit) Update(pc isa.Addr, taken bool) { o.table[pc.Word()&o.mask] = taken }

// SizeBits implements Predictor.
func (o *OneBit) SizeBits() int { return len(o.table) }

// Name implements Predictor.
func (o *OneBit) Name() string { return fmt.Sprintf("1bit-%d", len(o.table)) }

// Reset implements Predictor.
func (o *OneBit) Reset() {
	for i := range o.table {
		o.table[i] = false
	}
}

// Static predicts a fixed direction for every branch.
type Static struct {
	Taken bool
}

// Predict implements Predictor.
func (s Static) Predict(isa.Addr) bool { return s.Taken }

// Update implements Predictor (no state).
func (s Static) Update(isa.Addr, bool) {}

// SizeBits implements Predictor.
func (s Static) SizeBits() int { return 0 }

// Name implements Predictor.
func (s Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// Reset implements Predictor (no state).
func (s Static) Reset() {}
