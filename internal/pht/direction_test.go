package pht

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// TestAdapterExactness: the bit-identity contract behind the protocol
// refactor. Driving a legacy predictor through the DirectionPredictor
// adapter — with the frontend's full call mix of Predict, Query, Resolve,
// and WrongPath — must leave it in exactly the state the pre-protocol
// Predict/Update call sequence produces, prediction for prediction.
func TestAdapterExactness(t *testing.T) {
	mk := []func() Predictor{
		func() Predictor { return NewGShare(512, 6) },
		func() Predictor { return NewGAs(256) },
		func() Predictor { return NewBimodal(512) },
		func() Predictor { return NewOneBit(512) },
		func() Predictor { return Static{Taken: true} },
		func() Predictor { return Static{} },
	}
	for _, f := range mk {
		legacy := f()
		viaProto := AsDirection(f())
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			pc := isa.Addr(0x1000 + uint32(rng.Intn(300))*4)
			switch rng.Intn(4) {
			case 0: // conditional break: predict then resolve
				taken := rng.Intn(2) == 0
				want := legacy.Predict(pc)
				legacy.Update(pc, taken)
				got, tok := viaProto.Predict(pc)
				viaProto.Resolve(pc, tok, taken)
				if got != want {
					t.Fatalf("%s: step %d: adapter predicted %v, legacy %v", legacy.Name(), i, got, want)
				}
			case 1: // non-cond break: direction read only
				want := legacy.Predict(pc)
				if got := viaProto.Query(pc); got != want {
					t.Fatalf("%s: step %d: Query %v, legacy Predict %v", legacy.Name(), i, got, want)
				}
			case 2: // wrong-path report: invisible to legacy predictors
				viaProto.WrongPath(pc)
			case 3: // pure read on both sides keeps states comparable
				if legacy.Predict(pc) != viaProto.Query(pc) {
					t.Fatalf("%s: step %d: states diverged", legacy.Name(), i)
				}
			}
		}
		if legacy.SizeBits() != viaProto.SizeBits() || legacy.Name() != viaProto.Name() {
			t.Fatalf("adapter changed identity: %s/%d vs %s/%d",
				legacy.Name(), legacy.SizeBits(), viaProto.Name(), viaProto.SizeBits())
		}
	}
}

// TestAsDirectionPassThrough: native protocol implementations are not
// double-wrapped, nil becomes inert, and Unwrap reaches the legacy
// predictor through the adapter.
func TestAsDirectionPassThrough(t *testing.T) {
	tg := MustTAGE(smallTAGE())
	if AsDirection(tg) != DirectionPredictor(tg) {
		t.Fatal("native DirectionPredictor was wrapped")
	}
	g := NewGShare(512, 0)
	d := AsDirection(g)
	if Unwrap(d) != Predictor(g) {
		t.Fatal("Unwrap did not return the adapted predictor")
	}
	if Unwrap(tg) != nil {
		t.Fatal("Unwrap of a native predictor should be nil")
	}
	inert := AsDirection(nil)
	if taken, tok := inert.Predict(0x1000); taken || tok != 0 {
		t.Fatal("nil promotes to a non-inert predictor")
	}
	inert.Resolve(0x1000, 0, true)
	inert.WrongPath(0x1000)
	if inert.Query(0x1000) {
		t.Fatal("inert predictor learned")
	}
}

// TestCheckEntriesErrors: the validated-error seam that replaced the
// constructor panic (a hostile spec is rejected with these errors before
// any constructor runs).
func TestCheckEntriesErrors(t *testing.T) {
	for _, bad := range []int{0, -1, -8, 3, 513, 1<<62 + 1} {
		if err := CheckEntries(bad); err == nil {
			t.Errorf("CheckEntries(%d) accepted", bad)
		}
	}
	for _, good := range []int{1, 2, 512, 1 << 20} {
		if err := CheckEntries(good); err != nil {
			t.Errorf("CheckEntries(%d): %v", good, err)
		}
	}
	// The direct constructors still guard programming errors, now with
	// the validated error as the panic value.
	defer func() {
		if recover() == nil {
			t.Fatal("NewGShare(513) did not panic")
		}
	}()
	NewGShare(513, 0)
}
