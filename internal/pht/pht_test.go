package pht

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// train runs a predictor over a repeating outcome sequence at one site and
// returns the accuracy over the final pass.
func train(p Predictor, pc isa.Addr, pattern []bool, passes int) float64 {
	for i := 0; i < passes-1; i++ {
		for _, taken := range pattern {
			p.Predict(pc)
			p.Update(pc, taken)
		}
	}
	// Final pass: measure, still updating so the history keeps
	// advancing as it would in the pipeline.
	correct := 0
	for _, taken := range pattern {
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(len(pattern))
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pat := []bool{true, true, true, true, true, true, true, false}
	if acc := train(b, 0x1000, pat, 10); acc < 0.8 {
		t.Errorf("bimodal accuracy on 7/8 biased = %v", acc)
	}
}

func TestBimodalAlternatingIsHard(t *testing.T) {
	b := NewBimodal(1024)
	// Alternating outcomes defeat a 2-bit counter — this is exactly why
	// trip-2 loop backedges are catastrophic for per-address predictors.
	if acc := train(b, 0x1000, []bool{true, false}, 50); acc > 0.6 {
		t.Errorf("bimodal should not learn alternation, got %v", acc)
	}
}

func TestGShareLearnsAlternating(t *testing.T) {
	g := NewGShare(4096, 0)
	if acc := train(g, 0x1000, []bool{true, false}, 50); acc != 1 {
		t.Errorf("gshare accuracy on alternating = %v, want 1", acc)
	}
}

func TestGShareLearnsLoopExit(t *testing.T) {
	g := NewGShare(4096, 0)
	// A trip-6 loop backedge: five takens then one not-taken. With its
	// own history in the register, gshare learns the exit exactly.
	pat := []bool{true, true, true, true, true, false}
	if acc := train(g, 0x1000, pat, 60); acc != 1 {
		t.Errorf("gshare accuracy on trip-6 loop = %v, want 1", acc)
	}
}

func TestGAsLearnsGlobalPattern(t *testing.T) {
	g := NewGAs(4096)
	pat := []bool{true, true, false, true, false, false}
	if acc := train(g, 0x1000, pat, 80); acc != 1 {
		t.Errorf("GAs accuracy on periodic pattern = %v, want 1", acc)
	}
}

func TestOneBitTracksLastOutcome(t *testing.T) {
	o := NewOneBit(256)
	pc := isa.Addr(0x1000)
	o.Update(pc, true)
	if !o.Predict(pc) {
		t.Error("one-bit did not follow taken")
	}
	o.Update(pc, false)
	if o.Predict(pc) {
		t.Error("one-bit did not follow not-taken")
	}
}

func TestStatic(t *testing.T) {
	if !(Static{Taken: true}).Predict(0x1000) {
		t.Error("static-taken predicted not-taken")
	}
	if (Static{}).Predict(0x1000) {
		t.Error("static-not-taken predicted taken")
	}
	if (Static{Taken: true}).Name() != "static-taken" || (Static{}).Name() != "static-not-taken" {
		t.Error("static names wrong")
	}
}

func TestCounterSaturation(t *testing.T) {
	c := uint8(counterInit)
	for i := 0; i < 10; i++ {
		c = counterUpdate(c, true)
	}
	if c != 3 {
		t.Errorf("counter did not saturate at 3: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = counterUpdate(c, false)
	}
	if c != 0 {
		t.Errorf("counter did not saturate at 0: %d", c)
	}
}

// TestCountersStayInRange is a property test over random update sequences.
func TestCountersStayInRange(t *testing.T) {
	f := func(pcs []uint16, outcomes []bool) bool {
		g := NewGShare(256, 0)
		b := NewBimodal(256)
		for i, pc := range pcs {
			taken := i < len(outcomes) && outcomes[i]
			a := isa.Addr(pc) &^ 3
			g.Update(a, taken)
			b.Update(a, taken)
		}
		for _, c := range g.table {
			if c > 3 {
				return false
			}
		}
		for _, c := range b.table {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistoryBitsClamped(t *testing.T) {
	g := NewGShare(4096, 99)
	if g.histBits != 12 {
		t.Errorf("history bits = %d, want clamped to 12", g.histBits)
	}
	g = NewGShare(4096, 6)
	if g.histBits != 6 {
		t.Errorf("history bits = %d, want 6", g.histBits)
	}
}

func TestSizeBits(t *testing.T) {
	if got := NewGShare(4096, 12).SizeBits(); got != 2*4096+12 {
		t.Errorf("gshare SizeBits = %d", got)
	}
	if got := NewBimodal(4096).SizeBits(); got != 8192 {
		t.Errorf("bimodal SizeBits = %d", got)
	}
	if got := NewOneBit(1024).SizeBits(); got != 1024 {
		t.Errorf("one-bit SizeBits = %d", got)
	}
	if got := (Static{}).SizeBits(); got != 0 {
		t.Errorf("static SizeBits = %d", got)
	}
}

func TestReset(t *testing.T) {
	g := NewGShare(256, 0)
	for i := 0; i < 100; i++ {
		g.Update(0x1000, true)
	}
	g.Reset()
	if g.history != 0 {
		t.Error("history survived reset")
	}
	for _, c := range g.table {
		if c != counterInit {
			t.Fatal("counters not reinitialized")
		}
	}
}

func TestBadEntriesPanics(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("entries=%d did not panic", n)
				}
			}()
			NewBimodal(n)
		}()
	}
}

func TestPredictorsAreIndependentAcrossSites(t *testing.T) {
	b := NewBimodal(1024)
	b.Update(0x1004, true)
	b.Update(0x1004, true)
	// A different, non-aliasing address (word index 2 vs 1 mod 1024) is
	// unaffected.
	if b.Predict(0x1008) {
		t.Error("training leaked across non-aliasing sites")
	}
}
