package pht

import (
	"fmt"

	"repro/internal/isa"
)

// The DirectionPredictor protocol.
//
// The stateless Predictor interface above is enough for the paper-era
// schemes: gshare and friends read a table, then fold the resolved outcome
// back in, and nothing in between can disturb them. History-based
// predictors with *speculative* state — TAGE-class schemes that shift the
// predicted outcome into a global history register at predict time and must
// repair it when the prediction resolves wrong — need a richer seam, shaped
// like fetch.TargetPredictor: a Predict that opens an in-flight prediction
// and hands back a token, a Resolve that closes it with the architectural
// outcome, and a WrongPath hook through which the frontend reports
// wrong-path fetches so the predictor can model (and later repair) history
// corruption. The frontend traffics exclusively in this protocol; legacy
// predictors are lifted onto it by AsDirection's adapter, whose mapping is
// exact enough that every pre-protocol predictor remains bit-identical.

// Token identifies one in-flight Predict so the matching Resolve can find
// its checkpoint. Tokens are meaningful only to the predictor that issued
// them; stateless predictors issue (and ignore) zero.
type Token uint64

// Directional is the configuration surface every direction predictor —
// legacy Predictor or protocol-native DirectionPredictor — shares. Engine
// constructors and arch.PHTSpec.Build traffic in this type so both worlds
// plug into the same parameter; the frontend promotes it with AsDirection.
type Directional interface {
	// SizeBits returns the predictor's storage cost in bits.
	SizeBits() int
	// Name identifies the predictor for reports.
	Name() string
	// Reset restores the initial state.
	Reset()
}

// DirectionPredictor is the full direction-prediction protocol the fetch
// frontend drives (DESIGN.md §13). Call discipline, mirroring the
// simulator's one-break-in-flight pipeline:
//
//   - Predict opens an in-flight prediction for a conditional branch: it
//     may shift the predicted outcome into speculative history and must
//     checkpoint whatever Resolve needs to repair a wrong guess.
//   - Query is a pure read — the prediction Predict would return, with no
//     state opened. The frontend uses it where a direction value feeds
//     target arbitration for breaks that never resolve a direction
//     (aliased tag-less NLS entries consult it for non-conditionals).
//   - Resolve closes the prediction Predict opened under tok: train on the
//     actual outcome and repair speculative history if the guess (or a
//     wrong-path excursion since) corrupted it. Every Predict is resolved
//     exactly once, in order, before the next Predict for the same stream.
//   - WrongPath reports the address of a wrong-path fetch between a
//     Predict and its Resolve (or between breaks); predictors modelling
//     speculative-history corruption poison their history here and repair
//     it at the next Resolve or Predict.
type DirectionPredictor interface {
	Directional
	// Predict returns the predicted direction for the conditional branch
	// at pc and a token for the matching Resolve.
	Predict(pc isa.Addr) (taken bool, tok Token)
	// Query returns the prediction for pc without opening any state.
	Query(pc isa.Addr) bool
	// Resolve trains the predictor with the resolved outcome of the
	// prediction issued under tok.
	Resolve(pc isa.Addr, tok Token, taken bool)
	// WrongPath reports a wrong-path fetch at addr.
	WrongPath(addr isa.Addr)
}

// AsDirection promotes p onto the DirectionPredictor protocol: native
// implementations pass through, legacy Predictors are wrapped in the exact
// adapter below, and nil becomes an inert never-taken predictor (the
// placeholder coupled-direction architectures carry). Any other type is a
// programming error — specs cannot reach here, see arch.PHTSpec.Validate.
func AsDirection(p Directional) DirectionPredictor {
	switch d := p.(type) {
	case DirectionPredictor:
		return d
	case Predictor:
		return adapted{d}
	case nil:
		return adapted{Static{}}
	}
	panic(fmt.Sprintf("pht: %T implements neither Predictor nor DirectionPredictor", p))
}

// adapted lifts a legacy stateless Predictor onto the protocol. The mapping
// keeps the underlying predictor's call sequence exactly what the
// pre-protocol frontend produced — Predict and Query both read via
// Predict, Resolve trains via Update, WrongPath is invisible — so every
// legacy predictor's state, and therefore every golden counter, is
// bit-identical through the new seam (asserted by TestAdapterExactness).
type adapted struct {
	p Predictor
}

// Predict implements DirectionPredictor; legacy predictors have no
// speculative state, so the token is always zero.
func (a adapted) Predict(pc isa.Addr) (bool, Token) { return a.p.Predict(pc), 0 }

// Query implements DirectionPredictor.
func (a adapted) Query(pc isa.Addr) bool { return a.p.Predict(pc) }

// Resolve implements DirectionPredictor.
func (a adapted) Resolve(pc isa.Addr, _ Token, taken bool) { a.p.Update(pc, taken) }

// WrongPath implements DirectionPredictor: stateless predictors hold no
// speculative history to corrupt.
func (a adapted) WrongPath(isa.Addr) {}

// SizeBits implements Directional.
func (a adapted) SizeBits() int { return a.p.SizeBits() }

// Name implements Directional.
func (a adapted) Name() string { return a.p.Name() }

// Reset implements Directional.
func (a adapted) Reset() { a.p.Reset() }

// Unwrap exposes the adapted legacy predictor, or nil for protocol-native
// predictors (tests use it to reach through the seam).
func Unwrap(d DirectionPredictor) Predictor {
	if a, ok := d.(adapted); ok {
		return a.p
	}
	return nil
}
