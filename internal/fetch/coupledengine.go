package fetch

import (
	"fmt"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
)

// CoupledBTBEngine simulates the *coupled* BTB design of §2 — the Intel
// Pentium organization: each BTB entry carries its own 2-bit saturating
// direction counter, so dynamic direction prediction exists only for
// branches resident in the BTB; a conditional that misses the BTB falls
// back to static not-taken prediction.
//
// The paper (and its predecessor, Calder & Grunwald 1994) uses this design
// as the baseline that the decoupled PHT improves on: under BTB capacity
// pressure, evicting an entry also forgets the branch's direction history.
// This engine exists for that ablation; the paper's own BTB results use
// the decoupled BTBEngine.
type CoupledBTBEngine struct {
	base // dir predictor unused; counters live in the entries

	cfg     btb.Config
	sets    int
	setMask uint32

	tags    []uint32
	targets []isa.Addr
	kinds   []isa.Kind
	counter []uint8 // 2-bit saturating, >=2 predicts taken
	valid   []bool
	stamp   []uint64
	clock   uint64
}

// NewCoupledBTBEngine builds a coupled-BTB architecture simulator.
func NewCoupledBTBEngine(g cache.Geometry, cfg btb.Config, rasDepth int) *CoupledBTBEngine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Entries / cfg.Assoc
	return &CoupledBTBEngine{
		base:    newBase(g, noDir{}, rasDepth),
		cfg:     cfg,
		sets:    sets,
		setMask: uint32(sets - 1),
		tags:    make([]uint32, cfg.Entries),
		targets: make([]isa.Addr, cfg.Entries),
		kinds:   make([]isa.Kind, cfg.Entries),
		counter: make([]uint8, cfg.Entries),
		valid:   make([]bool, cfg.Entries),
		stamp:   make([]uint64, cfg.Entries),
	}
}

// Name implements Engine.
func (e *CoupledBTBEngine) Name() string {
	return fmt.Sprintf("coupled %s + %s", e.cfg, e.icache.Geometry())
}

// Reset implements Engine.
func (e *CoupledBTBEngine) Reset() {
	e.resetBase()
	for i := range e.valid {
		e.valid[i] = false
		e.stamp[i] = 0
	}
	e.clock = 0
}

func (e *CoupledBTBEngine) setOf(pc isa.Addr) int { return int(pc.Word() & e.setMask) }

func (e *CoupledBTBEngine) tagOf(pc isa.Addr) uint32 {
	t := pc.Word()
	for s := e.sets; s > 1; s >>= 1 {
		t >>= 1
	}
	return t
}

// find returns the slot index of pc's entry, or -1.
func (e *CoupledBTBEngine) find(pc isa.Addr) int {
	set, tag := e.setOf(pc), e.tagOf(pc)
	for w := 0; w < e.cfg.Assoc; w++ {
		s := set*e.cfg.Assoc + w
		if e.valid[s] && e.tags[s] == tag {
			return s
		}
	}
	return -1
}

// insert allocates (or refreshes) an entry for a taken branch.
func (e *CoupledBTBEngine) insert(pc, target isa.Addr, kind isa.Kind) int {
	e.clock++
	set, tag := e.setOf(pc), e.tagOf(pc)
	victim, victimStamp := set*e.cfg.Assoc, ^uint64(0)
	for w := 0; w < e.cfg.Assoc; w++ {
		s := set*e.cfg.Assoc + w
		if e.valid[s] && e.tags[s] == tag {
			e.targets[s] = target
			e.kinds[s] = kind
			e.stamp[s] = e.clock
			return s
		}
		if !e.valid[s] {
			if victimStamp != 0 {
				victim, victimStamp = s, 0
			}
			continue
		}
		if e.stamp[s] < victimStamp {
			victim, victimStamp = s, e.stamp[s]
		}
	}
	e.tags[victim] = tag
	e.targets[victim] = target
	e.kinds[victim] = kind
	// New entries start weakly taken: the branch just executed taken.
	e.counter[victim] = 2
	e.valid[victim] = true
	e.stamp[victim] = e.clock
	return victim
}

// StepBlock implements Engine, batching same-line sequential fetch runs
// (see base.stepBlock).
func (e *CoupledBTBEngine) StepBlock(recs []trace.Record) { e.stepBlock(recs, e.Step) }

// StepBlockRuns is StepBlock with the run boundaries precomputed for this
// engine's line size (see base.stepBlockRuns); nil runs falls back to the
// scanning path.
func (e *CoupledBTBEngine) StepBlockRuns(recs []trace.Record, runs []uint8) {
	if runs == nil {
		e.stepBlock(recs, e.Step)
		return
	}
	e.stepBlockRuns(recs, runs, e.Step)
}

// Step implements Engine.
func (e *CoupledBTBEngine) Step(rec trace.Record) {
	e.access(rec)
	if !rec.IsBreak() {
		return
	}
	e.m.Breaks++

	slot := e.find(rec.PC)
	if slot >= 0 {
		e.clock++
		e.stamp[slot] = e.clock
	}

	switch rec.Kind {
	case isa.CondBranch:
		e.m.CondBranches++
		// Coupled prediction: the entry's counter if present, static
		// not-taken otherwise — the defining weakness (§2: "branches
		// that miss in the BTB must use less accurate static
		// prediction").
		predTaken := slot >= 0 && e.counter[slot] >= 2
		dirRight := predTaken == rec.Taken
		if !dirRight {
			e.m.CondDirWrong++
			e.m.AddMispredict(rec.Kind)
		} else if rec.Taken && slot < 0 {
			e.m.AddMisfetch(rec.Kind)
		}
		if slot >= 0 {
			if rec.Taken {
				if e.counter[slot] < 3 {
					e.counter[slot]++
				}
			} else if e.counter[slot] > 0 {
				e.counter[slot]--
			}
		}

	case isa.UncondBranch:
		if slot < 0 {
			e.m.AddMisfetch(rec.Kind)
		}

	case isa.Call:
		if slot < 0 {
			e.m.AddMisfetch(rec.Kind)
		}
		e.rstack.Push(rec.PC.Next())

	case isa.IndirectJump:
		switch {
		case slot < 0:
			e.m.AddMisfetch(rec.Kind)
		case e.targets[slot] != rec.Target:
			e.m.AddMispredict(rec.Kind)
		}

	case isa.Return:
		top, ok := e.rstack.Pop()
		rasRight := ok && top == rec.Target
		switch {
		case slot >= 0 && rasRight:
		case !rasRight:
			e.m.AddMispredict(rec.Kind)
		default:
			e.m.AddMisfetch(rec.Kind)
		}
	}

	if rec.Taken {
		e.insert(rec.PC, rec.Target, rec.Kind)
	}
}
