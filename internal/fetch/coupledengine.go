package fetch

import (
	"math/bits"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/ras"
	"repro/internal/trace"
)

// coupledBTBPredictor implements TargetPredictor for the *coupled* BTB
// design of §2 — the Intel Pentium organization: each BTB entry carries its
// own 2-bit saturating direction counter, so dynamic direction prediction
// exists only for branches resident in the BTB; a conditional that misses
// the BTB falls back to static not-taken prediction
// (Traits{CoupledDirection}).
//
// The paper (and its predecessor, Calder & Grunwald 1994) uses this design
// as the baseline that the decoupled PHT improves on: under BTB capacity
// pressure, evicting an entry also forgets the branch's direction history.
// This predictor exists for that ablation; the paper's own BTB results use
// the decoupled btbPredictor.
type coupledBTBPredictor struct {
	cfg     btb.Config
	sets    int
	setMask uint32
	rstack  *ras.Stack

	tags    []uint32
	targets []isa.Addr
	kinds   []isa.Kind
	counter []uint8 // 2-bit saturating, >=2 predicts taken
	valid   []bool
	stamp   []uint64
	clock   uint64

	// The slot found by the last Lookup (-1 on a miss), consumed by the
	// counter update and by WrongPath.
	lastSlot int

	// track records which PCs ever entered the BTB, for cause attribution
	// only (nil until a probe enables tracking).
	track trainedSet
}

func newCoupledBTBPredictor(cfg btb.Config, rstack *ras.Stack) *coupledBTBPredictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Entries / cfg.Assoc
	return &coupledBTBPredictor{
		cfg:     cfg,
		sets:    sets,
		setMask: uint32(sets - 1),
		rstack:  rstack,
		tags:    make([]uint32, cfg.Entries),
		targets: make([]isa.Addr, cfg.Entries),
		kinds:   make([]isa.Kind, cfg.Entries),
		counter: make([]uint8, cfg.Entries),
		valid:   make([]bool, cfg.Entries),
		stamp:   make([]uint64, cfg.Entries),
	}
}

func (p *coupledBTBPredictor) setOf(pc isa.Addr) int { return int(pc.Word() & p.setMask) }

func (p *coupledBTBPredictor) tagOf(pc isa.Addr) uint32 {
	t := pc.Word()
	for s := p.sets; s > 1; s >>= 1 {
		t >>= 1
	}
	return t
}

// find returns the slot index of pc's entry, or -1.
func (p *coupledBTBPredictor) find(pc isa.Addr) int {
	set, tag := p.setOf(pc), p.tagOf(pc)
	for w := 0; w < p.cfg.Assoc; w++ {
		s := set*p.cfg.Assoc + w
		if p.valid[s] && p.tags[s] == tag {
			return s
		}
	}
	return -1
}

// insert allocates (or refreshes) an entry for a taken branch.
func (p *coupledBTBPredictor) insert(pc, target isa.Addr, kind isa.Kind) int {
	p.clock++
	set, tag := p.setOf(pc), p.tagOf(pc)
	victim, victimStamp := set*p.cfg.Assoc, ^uint64(0)
	for w := 0; w < p.cfg.Assoc; w++ {
		s := set*p.cfg.Assoc + w
		if p.valid[s] && p.tags[s] == tag {
			p.targets[s] = target
			p.kinds[s] = kind
			p.stamp[s] = p.clock
			return s
		}
		if !p.valid[s] {
			if victimStamp != 0 {
				victim, victimStamp = s, 0
			}
			continue
		}
		if p.stamp[s] < victimStamp {
			victim, victimStamp = s, p.stamp[s]
		}
	}
	p.tags[victim] = tag
	p.targets[victim] = target
	p.kinds[victim] = kind
	// New entries start weakly taken: the branch just executed taken.
	p.counter[victim] = 2
	p.valid[victim] = true
	p.stamp[victim] = p.clock
	return victim
}

// Lookup implements TargetPredictor.
func (p *coupledBTBPredictor) Lookup(rec trace.Record, _, _ int, _ bool) Outcome {
	slot := p.find(rec.PC)
	if slot >= 0 {
		p.clock++
		p.stamp[slot] = p.clock
	}
	p.lastSlot = slot
	hit := slot >= 0

	// Coupled prediction: the entry's counter if present, static
	// not-taken otherwise — the defining weakness (§2: "branches that
	// miss in the BTB must use less accurate static prediction").
	dirTaken := hit && p.counter[slot] >= 2

	var correct bool
	switch rec.Kind {
	case isa.CondBranch:
		correct = dirTaken == rec.Taken && (!rec.Taken || hit)
	case isa.UncondBranch, isa.Call:
		correct = hit
	case isa.IndirectJump:
		correct = hit && p.targets[slot] == rec.Target
	case isa.Return:
		top, ok := p.rstack.Top()
		correct = hit && ok && top == rec.Target
	}
	return Outcome{Correct: correct, Followed: hit, DirTaken: dirTaken}
}

// Update implements TargetPredictor: train the resident entry's direction
// counter, then allocate/refresh on taken (§2); full addresses need no
// deferral.
func (p *coupledBTBPredictor) Update(rec trace.Record) bool {
	if rec.Kind == isa.CondBranch && p.lastSlot >= 0 {
		if rec.Taken {
			if p.counter[p.lastSlot] < 3 {
				p.counter[p.lastSlot]++
			}
		} else if p.counter[p.lastSlot] > 0 {
			p.counter[p.lastSlot]--
		}
	}
	if rec.Taken {
		p.track.mark(rec.PC)
		p.insert(rec.PC, rec.Target, rec.Kind)
	}
	return false
}

// Resolve implements TargetPredictor (never deferred).
func (p *coupledBTBPredictor) Resolve(trace.Record, int) {}

// enableTracking implements causeExplainer.
func (p *coupledBTBPredictor) enableTracking() {
	if p.track == nil {
		p.track = make(trainedSet)
	}
}

// lastCause implements causeExplainer. The coupled design's defining
// weakness shows up here: a displaced entry loses the branch's direction
// history along with its target, so a previously-inserted branch that
// misses classifies as conflict loss, not cold. Conditional direction
// errors on a hit are left to the frontend's DirWrong labeling.
func (p *coupledBTBPredictor) lastCause(rec trace.Record, _ bool) Cause {
	if p.lastSlot < 0 {
		if p.track.has(rec.PC) {
			return CauseBTBConflict
		}
		return CauseCold
	}
	if rec.Kind == isa.CondBranch {
		return CauseNone // frontend labels the coupled counter's DirWrong
	}
	return CauseWrongTarget
}

// WrongPath implements TargetPredictor, approximating the wrong-path fetch
// as the predicted target on a hit, the fall-through otherwise.
func (p *coupledBTBPredictor) WrongPath(rec trace.Record) (isa.Addr, bool) {
	if p.lastSlot >= 0 {
		return p.targets[p.lastSlot], true
	}
	return rec.PC.Next(), true
}

// Name implements TargetPredictor.
func (p *coupledBTBPredictor) Name() string { return "coupled " + p.cfg.String() }

// SizeBits implements TargetPredictor: the decoupled BTB's cost per entry
// (see btb.BTB.SizeBits) plus the 2-bit coupled direction counter.
func (p *coupledBTBPredictor) SizeBits() int {
	tagBits := 30 - bits.TrailingZeros(uint(p.sets))
	return p.cfg.Entries * (tagBits + 30 + 3 + 1 + 2)
}

// Reset implements TargetPredictor.
func (p *coupledBTBPredictor) Reset() {
	for i := range p.valid {
		p.valid[i] = false
		p.stamp[i] = 0
	}
	p.clock = 0
	p.lastSlot = -1
	if p.track != nil {
		clear(p.track)
	}
}

// CoupledBTBEngine is the coupled (Pentium-style) BTB architecture: a
// Frontend driven by a coupledBTBPredictor.
type CoupledBTBEngine struct {
	Frontend
}

// NewCoupledBTBEngine builds a coupled-BTB architecture simulator.
func NewCoupledBTBEngine(g cache.Geometry, cfg btb.Config, rasDepth int) *CoupledBTBEngine {
	e := &CoupledBTBEngine{Frontend: newFrontend(g, noDir{}, rasDepth)}
	e.bind(newCoupledBTBPredictor(cfg, e.rstack), Traits{CoupledDirection: true})
	return e
}
