package fetch

import (
	"math/rand"
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/trace"
)

// randomTrace builds a random, well-chained trace over a compact code
// region with a bounded call stack — a property-test input generator for
// the engines.
func randomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := newTB(0x1000)
	var stack []isa.Addr
	regionTarget := func() isa.Addr {
		return isa.Addr(0x1000 + uint32(rng.Intn(512))*4)
	}
	for len(b.recs) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			b.plain(1 + rng.Intn(4))
		case 4, 5:
			taken := rng.Intn(2) == 0
			b.br(isa.CondBranch, taken, regionTarget())
		case 6:
			b.br(isa.UncondBranch, true, regionTarget())
		case 7:
			b.br(isa.IndirectJump, true, regionTarget())
		case 8:
			if len(stack) < 16 {
				ret := b.pc.Next()
				stack = append(stack, ret)
				b.br(isa.Call, true, regionTarget())
			} else {
				b.plain(1)
			}
		case 9:
			if len(stack) > 0 {
				ret := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				b.br(isa.Return, true, ret)
			} else {
				b.plain(1)
			}
		}
	}
	return &trace.Trace{Name: "random", Records: b.recs}
}

// TestQuickEngineInvariants drives random traces through every
// architecture and checks the accounting invariants that must hold for any
// input: penalties never exceed breaks, counters are internally
// consistent, and engines are deterministic.
func TestQuickEngineInvariants(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := randomTrace(seed, 400)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid trace: %v", seed, err)
		}
		mk := []func() Engine{
			func() Engine {
				return NewNLSTableEngine(smallGeom(), 256, pht.NewGShare(512, 0), 8)
			},
			func() Engine {
				return NewNLSCacheEngine(smallGeom(), 2, pht.NewGShare(512, 0), 8)
			},
			func() Engine {
				return NewBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 2},
					pht.NewGShare(512, 0), 8)
			},
			func() Engine {
				return NewCoupledBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 2}, 8)
			},
			func() Engine { return NewJohnsonEngine(smallGeom()) },
		}
		for _, f := range mk {
			a := f()
			ma := Run(a, tr)
			if ma.Misfetches+ma.Mispredicts > ma.Breaks {
				t.Fatalf("seed %d %s: penalties %d+%d exceed breaks %d",
					seed, a.Name(), ma.Misfetches, ma.Mispredicts, ma.Breaks)
			}
			if ma.Instructions != uint64(tr.Len()) {
				t.Fatalf("seed %d %s: instruction count", seed, a.Name())
			}
			if ma.CondDirWrong > ma.CondBranches {
				t.Fatalf("seed %d %s: dir-wrong exceeds conds", seed, a.Name())
			}
			var mfSum, mpSum uint64
			for k := isa.Kind(0); k < isa.NumKinds; k++ {
				mfSum += ma.MisfetchByKind[k]
				mpSum += ma.MispredictByKind[k]
			}
			if mfSum != ma.Misfetches || mpSum != ma.Mispredicts {
				t.Fatalf("seed %d %s: per-kind sums inconsistent", seed, a.Name())
			}
			// Determinism: a second engine gives identical counters.
			b := f()
			mb := Run(b, tr)
			if *ma != *mb {
				t.Fatalf("seed %d %s: nondeterministic", seed, a.Name())
			}
		}
	}
}

// TestQuickStepBlockPollutionEquivalence: StepBlock is defined as exactly
// per-record Step, and that must survive wrong-path pollution — whose cache
// touches interleave with prediction state — for every architecture.
func TestQuickStepBlockPollutionEquivalence(t *testing.T) {
	mk := []func() Engine{
		func() Engine {
			return NewNLSTableEngine(smallGeom(), 256, pht.NewGShare(512, 0), 8)
		},
		func() Engine {
			return NewNLSCacheEngine(smallGeom(), 2, pht.NewGShare(512, 0), 8)
		},
		func() Engine {
			return NewBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 2},
				pht.NewGShare(512, 0), 8)
		},
		func() Engine {
			return NewCoupledBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 2}, 8)
		},
		func() Engine { return NewJohnsonEngine(smallGeom()) },
	}
	for seed := int64(300); seed < 315; seed++ {
		tr := randomTrace(seed, 400)
		for _, f := range mk {
			stepped := f()
			stepped.(interface{ SetWrongPathPollution(bool) }).SetWrongPathPollution(true)
			for _, r := range tr.Records {
				stepped.Step(r)
			}
			blocked := f()
			blocked.(interface{ SetWrongPathPollution(bool) }).SetWrongPathPollution(true)
			blocked.StepBlock(tr.Records)
			if *stepped.Counters() != *blocked.Counters() {
				t.Fatalf("seed %d %s: StepBlock diverges from Step with pollution on:\n  step  %+v\n  block %+v",
					seed, stepped.Name(), *stepped.Counters(), *blocked.Counters())
			}
		}
	}
}

// TestQuickPHTSharedStateIndependence: the decoupled NLS and BTB engines
// agree exactly on conditional direction outcomes for any trace, since they
// update the identical PHT on the identical stream.
func TestQuickDirectionAgreement(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		tr := randomTrace(seed, 500)
		nls := NewNLSTableEngine(smallGeom(), 256, pht.NewGShare(512, 0), 8)
		bt := NewBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 1},
			pht.NewGShare(512, 0), 8)
		mn := Run(nls, tr)
		mb := Run(bt, tr)
		if mn.CondDirWrong != mb.CondDirWrong || mn.CondBranches != mb.CondBranches {
			t.Fatalf("seed %d: direction streams diverge (%d/%d vs %d/%d)",
				seed, mn.CondDirWrong, mn.CondBranches, mb.CondDirWrong, mb.CondBranches)
		}
	}
}

// TestQuickPerfectPredictionCeiling: a trace with no breaks incurs no
// penalties in any engine.
func TestQuickNoBreaksNoPenalties(t *testing.T) {
	b := newTB(0x1000)
	b.plain(500)
	tr := &trace.Trace{Name: "plain", Records: b.recs}
	engines := []Engine{
		NewNLSTableEngine(smallGeom(), 256, pht.NewGShare(512, 0), 8),
		NewNLSCacheEngine(smallGeom(), 2, pht.NewGShare(512, 0), 8),
		NewBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 1}, pht.NewGShare(512, 0), 8),
		NewCoupledBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 1}, 8),
		NewJohnsonEngine(smallGeom()),
	}
	for _, e := range engines {
		m := Run(e, tr)
		if m.Misfetches != 0 || m.Mispredicts != 0 || m.Breaks != 0 {
			t.Errorf("%s: penalties on a branch-free trace", e.Name())
		}
	}
}

// TestQuickCacheGeometryIndifferenceForBTB: the decoupled BTB's penalty
// counters are identical across arbitrary cache geometries for any trace.
func TestQuickBTBGeometryIndifference(t *testing.T) {
	geoms := []cache.Geometry{
		cache.MustGeometry(1024, 32, 1),
		cache.MustGeometry(4096, 32, 2),
		cache.MustGeometry(32*1024, 32, 4),
	}
	for seed := int64(200); seed < 210; seed++ {
		tr := randomTrace(seed, 400)
		var ref *Engine
		var refMf, refMp uint64
		for i, g := range geoms {
			e := NewBTBEngine(g, btb.Config{Entries: 32, Assoc: 2}, pht.NewGShare(512, 0), 8)
			m := Run(e, tr)
			if i == 0 {
				refMf, refMp = m.Misfetches, m.Mispredicts
			} else if m.Misfetches != refMf || m.Mispredicts != refMp {
				t.Fatalf("seed %d: BTB penalties vary with cache geometry", seed)
			}
			_ = ref
		}
	}
}
