// Package fetch implements the instruction fetch architectures the paper
// compares: the decoupled BTB design (§3), the NLS-table and NLS-cache
// designs (§4), and the Johnson successor-index baseline (§6.2). Each
// engine consumes an instruction trace and accounts misfetches and
// mispredictions per the paper's rules (see DESIGN.md §6):
//
//   - A branch is MISPREDICTED (4 cycles) when a predicted *value* was wrong
//     and could only be verified at execute: a wrong PHT direction, a wrong
//     return-stack target, or a wrong predicted indirect target.
//   - A branch is MISFETCHED (1 cycle) when the fetch went down the wrong
//     path but the correct next address became available at decode: the
//     predictor failed to identify the branch or supply its target (BTB
//     miss, invalid or aliased NLS entry), or — NLS only — the pointer
//     named a cache location that no longer holds the target line.
//   - A branch is never both ("a mispredicted branch is never counted as a
//     misfetched branch and visa versa", §5.2).
//
// Both architectures share the same decoupled PHT and return stack so the
// comparison isolates fetch (target) prediction, exactly as §5.1 sets up.
package fetch

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/ras"
	"repro/internal/trace"
)

// Engine is a fetch architecture simulator consuming a trace one record at
// a time.
type Engine interface {
	// Step processes one executed instruction.
	Step(rec trace.Record)
	// StepBlock processes a block of consecutive executed instructions,
	// equivalent to calling Step on each record in order. Engines
	// implement it as a direct loop over their own Step so the broadcast
	// replay path pays one dynamic dispatch per block rather than per
	// record.
	StepBlock(recs []trace.Record)
	// Counters returns the accumulated metrics. The returned pointer
	// stays valid and updates as more records are stepped.
	Counters() *metrics.Counters
	// Name identifies the configuration, e.g. "1024 NLS-table, 8K direct".
	Name() string
	// Reset restores the engine to its initial (cold) state.
	Reset()
}

// Run drives every record of a trace through the engine and returns its
// counters.
func Run(e Engine, t *trace.Trace) *metrics.Counters {
	for _, r := range t.Records {
		e.Step(r)
	}
	return e.Counters()
}

// RunChunks drives every record of a chunk source through the engine and
// returns its counters.
func RunChunks(e Engine, src trace.ChunkSource) *metrics.Counters {
	for blk := src.NextChunk(); len(blk) > 0; blk = src.NextChunk() {
		e.StepBlock(blk)
	}
	return e.Counters()
}

// RunSource drives up to n records from a trace source through the engine.
func RunSource(e Engine, src trace.Source, n int) *metrics.Counters {
	src.Run(n, e.Step)
	return e.Counters()
}

// base bundles the fetch-stage structures shared by every architecture: the
// instruction cache, the return stack, and the counters. The direction
// predictor lives in the branch-prediction stage (fetch.predictStage, see
// frontend.go) since DESIGN.md §14 split the frontend into explicit
// predict/FTQ/fetch stages.
type base struct {
	icache *cache.Cache
	geom   cache.Geometry // icache's geometry, cached off the hot paths
	rstack *ras.Stack
	m      metrics.Counters
}

// newBase builds the fetch-stage state.
func newBase(g cache.Geometry, rasDepth int) base {
	if rasDepth <= 0 {
		rasDepth = ras.DefaultDepth
	}
	return base{
		icache: cache.New(g),
		geom:   g,
		rstack: ras.New(rasDepth),
	}
}

// access fetches the record's instruction from the i-cache, counting the
// access, and returns where the line now resides.
func (b *base) access(rec trace.Record) (hit bool, way int) {
	b.m.Instructions++
	return b.icache.Access(rec.PC)
}

// Counters implements Engine; it synchronizes the i-cache counters first.
func (b *base) Counters() *metrics.Counters {
	b.m.ICacheAccesses = b.icache.Accesses()
	b.m.ICacheMisses = b.icache.Misses()
	b.m.ICacheColdMisses = b.icache.ColdMisses()
	st := b.icache.PrefetchStats()
	b.m.PrefIssued, b.m.PrefUseful, b.m.PrefLate = st.Issued, st.Useful, st.Late
	b.m.PrefDropped, b.m.PrefRedundant, b.m.PrefUnused = st.Dropped, st.Redundant, st.Unused
	return &b.m
}

// resetBase clears the shared state.
func (b *base) resetBase() {
	b.icache.Reset()
	b.rstack.Reset()
	b.m.Reset()
}

// ICache exposes the engine's instruction cache (for inspection in tests
// and the set-prediction ablation).
func (b *base) ICache() *cache.Cache { return b.icache }

// stepBlock implements StepBlock for every engine on top of its concrete
// Step. Run-leaders and branches go through step unchanged; the non-branch
// records that follow a non-break within the same cache line are pure
// sequential fetches — for all four architectures their Step reduces to
// {count the instruction, hit the just-accessed line, refresh LRU} — so the
// whole run is applied as one batched cache.AccessRun. State and counters
// evolve bit-identically to stepping each record (the engines' deferred
// "pending" updates are armed only by breaks and resolved by the next
// step()ed record, and batches never start until a step()ed non-break has
// cleared them).
//
// The batch target comes from cache.LastSlot rather than a fresh Probe:
// step(r) on a non-break record performs exactly one i-cache Access — of
// r.PC, which fills the line on a miss — so afterwards r.PC's line is
// resident at LastSlot by construction.
func (b *base) stepBlock(recs []trace.Record, step func(trace.Record)) {
	g := b.geom
	for i := 0; i < len(recs); {
		r := recs[i]
		step(r)
		i++
		if r.IsBreak() {
			// The break may have armed a deferred ("pending") update
			// that the next step()ed record resolves.
			continue
		}
		i = b.sameLineTail(g, recs, i, g.LineAddr(r.PC))
		// Straight-line stretch: until the next branch record, no
		// deferred update can be armed, so each line leader reduces to
		// exactly the non-branch Step body — count it and access its
		// line — with no dynamic dispatch.
		for i < len(recs) && recs[i].Kind == isa.NonBranch {
			b.m.Instructions++
			b.icache.Access(recs[i].PC)
			i++
			i = b.sameLineTail(g, recs, i, g.LineAddr(recs[i-1].PC))
		}
	}
}

// sameLineTail batches the records from i on that continue recs[i-1]'s
// sequential fetch run within line, returning the index after the run.
func (b *base) sameLineTail(g cache.Geometry, recs []trace.Record, i int, line uint32) int {
	j := i
	for j < len(recs) && recs[j].Kind == isa.NonBranch && g.LineAddr(recs[j].PC) == line {
		j++
	}
	if j > i {
		set, way := b.icache.LastSlot()
		b.icache.AccessRun(set, way, uint64(j-i))
		b.m.Instructions += uint64(j - i)
	}
	return j
}

// stepBlockRuns is stepBlock with the same-line run lengths precomputed
// (trace.Chunked.RunLens): the boundary scan is done once per chunk and
// shared by every engine replaying it, instead of re-derived per engine.
// runs must be parallel to recs and follow the RunChunkSource contract for
// this engine's i-cache line size; the replay is bit-identical to stepBlock
// (asserted by TestStepBlockRunsMatchesStepBlock).
func (b *base) stepBlockRuns(recs []trace.Record, runs []uint8, step func(trace.Record)) {
	for i := 0; i < len(recs); {
		r := recs[i]
		step(r)
		i++
		if r.IsBreak() {
			continue // next record must resolve any pending update
		}
		if n := uint64(runs[i-1]); n > 0 {
			set, way := b.icache.LastSlot()
			b.icache.AccessRun(set, way, n)
			b.m.Instructions += n
			i += int(n)
		}
		// Straight-line stretch, as in stepBlock but with the line
		// boundaries already annotated.
		for i < len(recs) && recs[i].Kind == isa.NonBranch {
			b.m.Instructions++
			b.icache.Access(recs[i].PC)
			i++
			if n := uint64(runs[i-1]); n > 0 {
				set, way := b.icache.LastSlot()
				b.icache.AccessRun(set, way, n)
				b.m.Instructions += n
				i += int(n)
			}
		}
	}
}
