// Package fetch implements the instruction fetch architectures the paper
// compares: the decoupled BTB design (§3), the NLS-table and NLS-cache
// designs (§4), and the Johnson successor-index baseline (§6.2). Each
// engine consumes an instruction trace and accounts misfetches and
// mispredictions per the paper's rules (see DESIGN.md §6):
//
//   - A branch is MISPREDICTED (4 cycles) when a predicted *value* was wrong
//     and could only be verified at execute: a wrong PHT direction, a wrong
//     return-stack target, or a wrong predicted indirect target.
//   - A branch is MISFETCHED (1 cycle) when the fetch went down the wrong
//     path but the correct next address became available at decode: the
//     predictor failed to identify the branch or supply its target (BTB
//     miss, invalid or aliased NLS entry), or — NLS only — the pointer
//     named a cache location that no longer holds the target line.
//   - A branch is never both ("a mispredicted branch is never counted as a
//     misfetched branch and visa versa", §5.2).
//
// Both architectures share the same decoupled PHT and return stack so the
// comparison isolates fetch (target) prediction, exactly as §5.1 sets up.
package fetch

import (
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/trace"
)

// Engine is a fetch architecture simulator consuming a trace one record at
// a time.
type Engine interface {
	// Step processes one executed instruction.
	Step(rec trace.Record)
	// Counters returns the accumulated metrics. The returned pointer
	// stays valid and updates as more records are stepped.
	Counters() *metrics.Counters
	// Name identifies the configuration, e.g. "1024 NLS-table, 8K direct".
	Name() string
	// Reset restores the engine to its initial (cold) state.
	Reset()
}

// Run drives every record of a trace through the engine and returns its
// counters.
func Run(e Engine, t *trace.Trace) *metrics.Counters {
	for _, r := range t.Records {
		e.Step(r)
	}
	return e.Counters()
}

// RunSource drives up to n records from a trace source through the engine.
func RunSource(e Engine, src trace.Source, n int) *metrics.Counters {
	src.Run(n, e.Step)
	return e.Counters()
}

// base bundles the structures shared by every architecture: the instruction
// cache, the decoupled direction predictor, the return stack, and the
// counters.
type base struct {
	icache *cache.Cache
	dir    pht.Predictor
	rstack *ras.Stack
	m      metrics.Counters
}

func newBase(g cache.Geometry, dir pht.Predictor, rasDepth int) base {
	if rasDepth <= 0 {
		rasDepth = ras.DefaultDepth
	}
	return base{
		icache: cache.New(g),
		dir:    dir,
		rstack: ras.New(rasDepth),
	}
}

// access fetches the record's instruction from the i-cache, counting the
// access, and returns where the line now resides.
func (b *base) access(rec trace.Record) (hit bool, way int) {
	b.m.Instructions++
	return b.icache.Access(rec.PC)
}

// Counters implements Engine; it synchronizes the i-cache counters first.
func (b *base) Counters() *metrics.Counters {
	b.m.ICacheAccesses = b.icache.Accesses()
	b.m.ICacheMisses = b.icache.Misses()
	return &b.m
}

// resetBase clears the shared state.
func (b *base) resetBase() {
	b.icache.Reset()
	b.dir.Reset()
	b.rstack.Reset()
	b.m.Reset()
}

// ICache exposes the engine's instruction cache (for inspection in tests
// and the set-prediction ablation).
func (b *base) ICache() *cache.Cache { return b.icache }
