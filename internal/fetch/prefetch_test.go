package fetch

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/trace"
)

// mkNLS builds the reference small NLS-table engine the prefetch tests
// decorate.
func mkNLS() *NLSEngine {
	return NewNLSTableEngine(smallGeom(), 256, pht.NewGShare(512, 0), 8)
}

// withFDIP decorates an engine with the FDIP prefetcher at the given FTQ
// depth, wiring the i-cache's MSHR model exactly as arch.Spec.Build does.
func withFDIP(e *NLSEngine, depth int) *NLSEngine {
	ic := e.ICache()
	ic.EnablePrefetch(8, 20)
	e.SetFTQDepth(depth)
	e.AttachPrefetcher(NewFDIPPrefetcher(ic))
	return e
}

func TestFTQUnit(t *testing.T) {
	var q FTQ
	// Depth 0: every push is refused, the queue stays empty.
	q.push(0x1000, 0)
	if !q.Empty() || q.Stats().Pushes != 0 {
		t.Fatalf("depth-0 queue accepted a push: %+v", q.Stats())
	}
	q.SetDepth(2)
	if q.Cap() != 2 || !q.Empty() || q.Full() {
		t.Fatalf("sized queue in wrong state: cap=%d", q.Cap())
	}
	q.push(0x1000, 0)
	q.push(0x2000, 8)
	if !q.Full() || q.Stats().Pushes != 2 {
		t.Fatalf("queue not full after 2 pushes")
	}
	q.push(0x3000, 16) // refused
	if q.Stats().Pushes != 2 {
		t.Fatalf("push into full queue was counted")
	}
	e, ok := q.peek()
	if !ok || e.addr != 0x1000 || e.pos != 0 {
		t.Fatalf("peek = %+v, %v", e, ok)
	}
	q.pop()
	q.push(0x3000, 16) // wraps around the ring
	if e, _ := q.peek(); e.addr != 0x2000 {
		t.Fatalf("FIFO order broken after wraparound: head=%#x", e.addr)
	}
	q.flush()
	if !q.Empty() || q.Stats().Flushes != 1 {
		t.Fatalf("flush did not empty/count: %+v", q.Stats())
	}
	q.flush() // empty flush is not counted
	if q.Stats().Flushes != 1 {
		t.Fatalf("empty flush was counted")
	}
	q.reset()
	if q.Stats() != (FTQStats{}) || q.Cap() != 2 {
		t.Fatalf("reset cleared depth or kept stats: %+v cap=%d", q.Stats(), q.Cap())
	}
}

// TestDecoupledNoPrefetcherMatchesFused: with an FTQ but no prefetcher, the
// three-stage pipeline is pure plumbing — every counter must equal the
// fused path's, for any trace, under both block and per-record stepping of
// the fused reference. This is the bit-identity half of the DESIGN.md §14
// refactor contract, exercised with the queue actually running ahead.
func TestDecoupledNoPrefetcherMatchesFused(t *testing.T) {
	for seed := int64(400); seed < 412; seed++ {
		tr := randomTrace(seed, 600)
		fused := mkNLS()
		Run(fused, tr)

		dec := mkNLS()
		dec.SetFTQDepth(8)
		dec.StepBlock(tr.Records)
		if *dec.Counters() != *fused.Counters() {
			t.Fatalf("seed %d: FTQ-only pipeline diverges from fused path:\n  fused %+v\n  ftq   %+v",
				seed, *fused.Counters(), *dec.Counters())
		}
		st := dec.FTQStats()
		if st.Pushes == 0 {
			t.Fatalf("seed %d: the BPU cursor never pushed", seed)
		}
		if st.Flushes == 0 {
			t.Fatalf("seed %d: no wrong break ever flushed the queue", seed)
		}
	}
}

// TestDecoupledStepMatchesBlockOfOne: per-record Step of a decoupled engine
// is defined as a single-record block (zero lookahead); two engines driven
// record-by-record and block-of-one must agree exactly.
func TestDecoupledStepMatchesBlockOfOne(t *testing.T) {
	tr := randomTrace(7, 500)
	a := withFDIP(mkNLS(), 8)
	for _, r := range tr.Records {
		a.Step(r)
	}
	b := withFDIP(mkNLS(), 8)
	for _, r := range tr.Records {
		b.StepBlock(tr.Records[:0]) // empty blocks are inert
		b.StepBlock([]trace.Record{r})
	}
	if *a.Counters() != *b.Counters() {
		t.Fatalf("Step diverges from StepBlock-of-one:\n  step  %+v\n  block %+v",
			*a.Counters(), *b.Counters())
	}
}

// TestFDIPAbsorbsColdMisses: on a straight-line trace the BPU cursor runs a
// full FTQ ahead of fetch, so every line after the first is prefetched with
// enough lead to beat the fill latency — useful fills appear and the cold
// (compulsory) bucket collapses toward the handful of lines the queue
// cannot lead (the very first, and the post-redirect restart).
func TestFDIPAbsorbsColdMisses(t *testing.T) {
	b := newTB(0x1000)
	b.plain(800)
	tr := &trace.Trace{Name: "plain", Records: b.recs}

	base := mkNLS()
	base.StepBlock(tr.Records)
	mb := base.Counters()

	fdip := withFDIP(mkNLS(), 8)
	fdip.StepBlock(tr.Records)
	mf := fdip.Counters()

	if mb.ICacheColdMisses == 0 {
		t.Fatalf("baseline has no cold misses; trace does not span lines")
	}
	if mf.PrefUseful == 0 {
		t.Fatalf("fdip produced no useful prefetches: %+v", *mf)
	}
	if mf.ICacheColdMisses >= mb.ICacheColdMisses {
		t.Fatalf("fdip cold misses %d did not improve on baseline %d",
			mf.ICacheColdMisses, mb.ICacheColdMisses)
	}
	if mf.Breaks != mb.Breaks || mf.Instructions != mb.Instructions {
		t.Fatalf("prefetching perturbed the replay: %+v vs %+v", *mf, *mb)
	}
}

// TestNextLineStepEqualsStepBlock: the next-line policy consumes only the
// demand stream, whose fetch-block transitions are identical however the
// trace is blocked — so per-record Step and one big StepBlock agree. (FDIP
// is deliberately excluded: its lookahead horizon is the block by design.)
func TestNextLineStepEqualsStepBlock(t *testing.T) {
	for seed := int64(430); seed < 438; seed++ {
		tr := randomTrace(seed, 500)
		mk := func() *NLSEngine {
			e := mkNLS()
			ic := e.ICache()
			ic.EnablePrefetch(8, 20)
			e.AttachPrefetcher(NewNextLinePrefetcher(ic, 2))
			return e
		}
		stepped := mk()
		for _, r := range tr.Records {
			stepped.Step(r)
		}
		blocked := mk()
		blocked.StepBlock(tr.Records)
		if *stepped.Counters() != *blocked.Counters() {
			t.Fatalf("seed %d: next-line StepBlock diverges from Step:\n  step  %+v\n  block %+v",
				seed, *stepped.Counters(), *blocked.Counters())
		}
	}
}

// TestPrefetchOracleIneligibility: a prefetching (or merely FTQ-decoupled)
// engine injects fills no shared fetch oracle models, so it must opt out of
// oracle grouping; a detached depth-0 engine stays eligible.
func TestPrefetchOracleIneligibility(t *testing.T) {
	e := mkNLS()
	if _, ok := e.OracleGroup(); !ok {
		t.Fatalf("plain engine ineligible for oracle sharing")
	}
	e.SetFTQDepth(4)
	if _, ok := e.OracleGroup(); ok {
		t.Fatalf("FTQ-decoupled engine still oracle-eligible")
	}
	e.SetFTQDepth(0)
	if _, ok := e.OracleGroup(); !ok {
		t.Fatalf("depth-0 engine did not regain eligibility")
	}
	ic := e.ICache()
	ic.EnablePrefetch(8, 20)
	e.AttachPrefetcher(NewNextLinePrefetcher(ic, 1))
	if _, ok := e.OracleGroup(); ok {
		t.Fatalf("prefetching engine still oracle-eligible")
	}
	e.AttachPrefetcher(nil)
	if _, ok := e.OracleGroup(); !ok {
		t.Fatalf("detached engine did not regain eligibility")
	}
}

// TestPrefetchResetDeterminism: Reset restores a prefetching engine to its
// cold state — a second identical run reproduces every counter, including
// the prefetch lifecycle stats and FTQ traffic.
func TestPrefetchResetDeterminism(t *testing.T) {
	tr := randomTrace(11, 600)
	e := withFDIP(mkNLS(), 8)
	e.StepBlock(tr.Records)
	first := *e.Counters()
	firstQ := e.FTQStats()
	if first.PrefIssued == 0 {
		t.Fatalf("run issued no prefetches; test is vacuous")
	}
	e.Reset()
	if got := *e.Counters(); got != (metrics.Counters{}) {
		t.Fatalf("Reset left counters behind: %+v", got)
	}
	e.StepBlock(tr.Records)
	if got := *e.Counters(); got != first {
		t.Fatalf("post-Reset run diverges:\n  first  %+v\n  second %+v", first, got)
	}
	if got := e.FTQStats(); got != firstQ {
		t.Fatalf("post-Reset FTQ stats diverge: %+v vs %+v", got, firstQ)
	}
}

// TestPrefetcherNames: the engine surfaces its prefetch policy in Name()
// and the policies describe their configuration.
func TestPrefetcherNames(t *testing.T) {
	e := mkNLS()
	ic := e.ICache()
	ic.EnablePrefetch(8, 20)
	if p := NewNextLinePrefetcher(ic, 1); p.Name() != "next-line" {
		t.Errorf("degree-1 name = %q", p.Name())
	}
	if p := NewNextLinePrefetcher(ic, 3); p.Name() != "next-line x3" {
		t.Errorf("degree-3 name = %q", p.Name())
	}
	e.AttachPrefetcher(NewFDIPPrefetcher(ic))
	if !strings.Contains(e.Name(), "fdip") {
		t.Errorf("engine name %q does not mention the prefetcher", e.Name())
	}
}
