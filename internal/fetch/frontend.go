package fetch

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/trace"
)

// This file implements the single fetch-frontend core shared by every
// architecture. The paper's normative accounting rules (DESIGN.md §6) —
// misfetch vs mispredict classification per branch kind, decode-time
// predictor updates, the RAS discipline, and optional wrong-path pollution
// — live here exactly once; the per-architecture half (what was predicted
// and whether the fetch went down the right path) is behind the narrow
// TargetPredictor interface. BTBEngine, NLSEngine, JohnsonEngine, and
// CoupledBTBEngine are thin adapters binding a predictor to a Frontend,
// and a new architecture is a new TargetPredictor, not a new engine.

// Outcome is a TargetPredictor's verdict on one break: how the front end
// fetched and whether that fetch was right.
type Outcome struct {
	// Correct reports that the front end fetched the actual next
	// instruction. Correct breaks incur no penalty; wrong ones are
	// classified misfetch or mispredict by the Frontend per DESIGN.md §6.
	Correct bool
	// Followed reports that a predicted target (NLS pointer, BTB
	// address, Johnson successor index) was followed. It separates a
	// *wrong* prediction — disproved only at execute, a mispredict —
	// from a *missing* one — redirected at decode, a misfetch — for the
	// indirect-class breaks.
	Followed bool
	// DirTaken is the predicted conditional direction, meaningful only
	// for predictors with Traits.CoupledDirection (Johnson's implicit
	// one-bit pointer, Pentium-style per-entry counters). Decoupled
	// predictors leave it false; the Frontend's shared PHT decides.
	DirTaken bool
}

// Traits declares the architectural capabilities of a TargetPredictor,
// read once when the predictor is bound to a Frontend.
type Traits struct {
	// CoupledDirection: direction prediction is embedded in the target
	// predictor state, so the Frontend bypasses its decoupled PHT for
	// both prediction and training.
	CoupledDirection bool
	// NoRAS: the architecture has no return-address-stack discipline
	// (Johnson §6.2): calls do not push, and returns classify like
	// indirect jumps instead of consulting the stack.
	NoRAS bool
}

// TargetPredictor is the per-architecture half of a fetch frontend: it
// owns the target-prediction state (BTB, NLS table, successor pointers)
// while the Frontend owns everything the paper holds constant across
// architectures — i-cache, decoupled PHT, RAS, counters — and the §6
// accounting that consumes them.
type TargetPredictor interface {
	// Lookup evaluates the prediction for the break rec, whose own
	// instruction resides at (set, way) of the frontend's i-cache.
	// dirTaken is the shared PHT's direction prediction for rec.PC
	// (false when Traits.CoupledDirection). Lookup may refresh
	// recency state, mirroring a real fetch-time probe.
	Lookup(rec trace.Record, set, way int, dirTaken bool) Outcome
	// Update trains the predictor once the break resolves at decode.
	// Returning true defers the update until the successor instruction
	// is fetched and its cache way is known; the Frontend then calls
	// Resolve with that way (hardware updates NLS pointers "after
	// instructions are decoded and the branch type and destinations
	// are resolved", §4).
	Update(rec trace.Record) (deferred bool)
	// Resolve completes a deferred Update for the break rec; way is the
	// i-cache way its successor was just fetched into.
	Resolve(rec trace.Record, way int)
	// WrongPath returns the address the front end actually fetched for
	// a wrong break, and whether anything was fetched at all. Called
	// only when wrong-path pollution is enabled, after the break's RAS
	// effects have been applied (the real front end would be reading
	// the post-update stack).
	WrongPath(rec trace.Record) (isa.Addr, bool)
	// Name identifies the predictor configuration, e.g. "1024 NLS-table".
	Name() string
	// SizeBits returns the predictor's storage cost in bits.
	SizeBits() int
	// Reset restores the initial (cold) state.
	Reset()
}

// predictStage is the branch-prediction unit of the decoupled frontend
// (DESIGN.md §14): it owns every structure that produces the predicted
// fetch stream — the direction predictor, the architecture's target
// predictor, and the fetch-target queue its run-ahead cursor feeds. In the
// fused configuration (FTQ depth 0, no prefetcher) the stage is consulted
// synchronously from the fetch stage, bit-identically to the pre-§14
// frontend; in the decoupled configuration its cursor runs ahead of fetch
// within the current block, emitting one FTQ entry per predicted fetch
// block.
//
// The run-ahead stream is modeled as exact between mispredictions: on a
// trace-driven simulator the BPU's predicted path coincides with the trace
// path until the next wrong break (every prediction the frontend would act
// on is resolved against the trace at that break), so the cursor walks the
// trace, and a wrong break flushes the queue and restarts the cursor at
// the resolved successor — exactly the redirect a hardware FTQ takes.
type predictStage struct {
	dir    pht.DirectionPredictor
	tp     TargetPredictor
	traits Traits

	// ftq buffers the predicted fetch-block addresses between the BPU
	// cursor and the fetch stage.
	ftq FTQ
	// aheadIdx is the block-relative index of the next record the
	// run-ahead cursor examines (reset at each block boundary; lookahead
	// is intra-block). aheadLine/haveLine track the last fetch block the
	// cursor entered, persisting across blocks so a block boundary does
	// not fabricate a fetch-block transition.
	aheadIdx  int
	aheadLine uint32
	haveLine  bool
}

// reset restores the stage's initial state, keeping the configured FTQ
// depth.
func (ps *predictStage) reset() {
	ps.dir.Reset()
	ps.tp.Reset()
	ps.ftq.reset()
	ps.aheadIdx = 0
	ps.haveLine = false
}

// Frontend is the shared fetch-engine core: one Step/StepBlock/pollution
// implementation of the paper's accounting, structured as the three-stage
// predict/FTQ/fetch pipeline of DESIGN.md §14 and driven by a
// TargetPredictor. It implements Engine.
type Frontend struct {
	base
	pollution
	// bpu is the branch-prediction stage; base is the fetch stage.
	bpu predictStage
	// probe, when non-nil, receives one BreakEvent per resolved break
	// (see probe.go). The unprobed fast path costs one nil check.
	probe Probe
	// pf, when non-nil, receives the demand-access and FTQ-push streams
	// (see prefetch.go). Like the probe it costs one nil check detached;
	// unlike the probe it selects the decoupled stepping path.
	pf Prefetcher

	// fetchLine/fetchLineValid track the last cache line the fetch stage
	// demanded, so prefetchers observe one OnAccess per fetch block
	// rather than one per instruction.
	fetchLine      uint32
	fetchLineValid bool

	// oneRec backs the decoupled single-record Step without allocating.
	oneRec [1]trace.Record

	// pending holds a break whose predictor update was deferred by
	// TargetPredictor.Update until the successor's cache way is known;
	// the next fetched record resolves it.
	pending struct {
		active bool
		rec    trace.Record
	}

	// dirShare, when non-nil, is the broadcast's shared direction-bit
	// stream for this engine's direction-predictor configuration (see
	// broadcast.go): identically configured cold predictors consuming the
	// identical break stream compute identical bits, so one owner engine
	// records them and the rest replay them. dirOwner marks the recorder;
	// dirPos is a consumer's cursor within the current chunk.
	dirShare *dirShare
	dirOwner bool
	dirPos   int
}

// newFrontend builds the architecture-independent half; bind attaches the
// predictor. dir may be a legacy pht.Predictor or a protocol-native
// pht.DirectionPredictor, promoted onto the protocol the predict stage
// drives (DESIGN.md §13).
func newFrontend(g cache.Geometry, dir pht.Directional, rasDepth int) Frontend {
	f := Frontend{base: newBase(g, rasDepth)}
	f.bpu.dir = pht.AsDirection(dir)
	return f
}

// bind attaches the architecture-specific predictor to the predict stage.
func (f *Frontend) bind(tp TargetPredictor, tr Traits) {
	f.bpu.tp = tp
	f.bpu.traits = tr
}

// AttachPrefetcher connects a prefetch policy (nil detaches). Attach before
// the run starts; a non-nil prefetcher selects the decoupled stepping path.
func (f *Frontend) AttachPrefetcher(p Prefetcher) { f.pf = p }

// SetFTQDepth sizes the fetch-target queue (0 keeps the fused path).
func (f *Frontend) SetFTQDepth(depth int) { f.bpu.ftq.SetDepth(depth) }

// FTQStats exposes the queue's traffic counters for tests and diagnostics.
func (f *Frontend) FTQStats() FTQStats { return f.bpu.ftq.Stats() }

// FTQLen returns the queue's current occupancy (entries predicted but not
// yet fetched) — the run-ahead depth the sim-time trace exporter samples.
func (f *Frontend) FTQLen() int { return f.bpu.ftq.Len() }

// Prefetcher returns the attached prefetch policy (nil when detached), so
// an observer can wrap it without knowing how the engine was built.
func (f *Frontend) Prefetcher() Prefetcher { return f.pf }

// decoupled reports whether the frontend steps through the three-stage
// pipeline. With no prefetcher and FTQ depth 0 the fused path runs instead
// — the exact pre-§14 code, so the refactor is bit-identical by
// construction.
func (f *Frontend) decoupled() bool { return f.pf != nil || f.bpu.ftq.Cap() > 0 }

// Name implements Engine.
func (f *Frontend) Name() string {
	n := fmt.Sprintf("%s + %s", f.bpu.tp.Name(), f.icache.Geometry())
	if f.pf != nil {
		n += " + " + f.pf.Name()
	}
	return n
}

// PredictorSizeBits returns the storage cost of the target-predictor state.
func (f *Frontend) PredictorSizeBits() int { return f.bpu.tp.SizeBits() }

// Reset implements Engine.
func (f *Frontend) Reset() {
	f.resetBase()
	f.bpu.reset()
	if f.pf != nil {
		f.pf.Reset()
	}
	f.fetchLineValid = false
	f.pending.active = false
}

// StepBlock implements Engine, batching same-line sequential fetch runs
// (see base.stepBlock).
func (f *Frontend) StepBlock(recs []trace.Record) {
	if f.decoupled() {
		f.stepBlockDecoupled(recs)
		return
	}
	f.stepBlock(recs, f.Step)
}

// StepBlockRuns is StepBlock with the run boundaries precomputed for this
// engine's line size (see base.stepBlockRuns); nil runs falls back to the
// scanning path. The decoupled pipeline steps per record and ignores the
// annotation.
func (f *Frontend) StepBlockRuns(recs []trace.Record, runs []uint8) {
	if f.decoupled() {
		f.stepBlockDecoupled(recs)
		return
	}
	if runs == nil {
		f.stepBlock(recs, f.Step)
		return
	}
	f.stepBlockRuns(recs, runs, f.Step)
}

// Step implements Engine, applying the accounting rules of DESIGN.md §6.
func (f *Frontend) Step(rec trace.Record) {
	if f.decoupled() {
		// A single-record block: the pipeline runs with zero lookahead
		// (the cursor cannot see past the record being fetched), which
		// keeps Step ≡ StepBlock-of-one.
		f.oneRec[0] = rec
		f.stepBlockDecoupled(f.oneRec[:])
		return
	}
	_, way := f.access(rec)

	// Resolve the deferred update for the previous break: this record IS
	// its successor, so the successor line's way is now known. (The
	// equality guard only matters for malformed, non-chained input.)
	if f.pending.active {
		if f.pending.rec.Next() == rec.PC {
			f.bpu.tp.Resolve(f.pending.rec, way)
		}
		f.pending.active = false
	}

	if !rec.IsBreak() {
		// Pre-decoded as non-branch: the fall-through fetch is always
		// correct (§4.2).
		return
	}
	f.stepBreak(rec, way)
}

// stepBlockDecoupled is the three-stage pipeline's block replay: for each
// record, the BPU cursor first runs as far ahead as the FTQ allows, then
// the fetch stage consumes one record (popping the FTQ entry predicted for
// it, if any). Lookahead is bounded by min(FTQ depth, records left in the
// block); the queue drains to empty at every block boundary because every
// queued position lies within the block.
func (f *Frontend) stepBlockDecoupled(recs []trace.Record) {
	f.bpu.aheadIdx = 0
	for i := range recs {
		f.runAhead(recs, i)
		f.fetchOne(recs, i)
	}
}

// runAhead advances the BPU cursor from its current position, pushing one
// FTQ entry (and notifying the prefetcher) per fetch block the predicted
// stream enters, until the queue is full or the block ends. i is the fetch
// stage's current position; the cursor never trails it.
func (f *Frontend) runAhead(recs []trace.Record, i int) {
	ps := &f.bpu
	if ps.ftq.Cap() == 0 {
		return
	}
	if ps.aheadIdx < i {
		ps.aheadIdx = i
	}
	for !ps.ftq.Full() && ps.aheadIdx < len(recs) {
		r := recs[ps.aheadIdx]
		line := f.geom.LineAddr(r.PC)
		if !ps.haveLine || line != ps.aheadLine {
			ps.aheadLine, ps.haveLine = line, true
			ps.ftq.push(r.PC, ps.aheadIdx)
			if f.pf != nil {
				f.pf.OnFTQPush(r.PC)
			}
		}
		ps.aheadIdx++
	}
}

// fetchOne is the fetch stage of the decoupled pipeline: consume the FTQ
// entry predicted for this record (exact position pairing, so stalls and
// flushes cannot misalign the streams), demand-fetch the instruction,
// resolve any deferred predictor update, and — on a wrong break — redirect
// the BPU: flush the queue and restart the cursor at the resolved
// successor.
func (f *Frontend) fetchOne(recs []trace.Record, i int) {
	rec := recs[i]
	if e, ok := f.bpu.ftq.peek(); ok && e.pos == i {
		f.bpu.ftq.pop()
	}
	hit, way := f.access(rec)
	if f.pf != nil {
		if line := f.geom.LineAddr(rec.PC); !f.fetchLineValid || line != f.fetchLine {
			f.fetchLine, f.fetchLineValid = line, true
			f.pf.OnAccess(rec.PC, hit)
		}
	}

	if f.pending.active {
		if f.pending.rec.Next() == rec.PC {
			f.bpu.tp.Resolve(f.pending.rec, way)
		}
		f.pending.active = false
	}

	if !rec.IsBreak() {
		return
	}
	if penalty := f.stepBreak(rec, way); penalty != PenaltyNone {
		f.bpu.ftq.flush()
		f.bpu.aheadIdx = i + 1
		f.bpu.aheadLine, f.bpu.haveLine = f.geom.LineAddr(rec.PC), true
	}
}

// stepBreak applies the §6 break accounting for rec, whose instruction
// resides in way of its i-cache set, and returns the penalty class the
// break incurred (the decoupled fetch stage redirects the BPU on any wrong
// break). It is the post-fetch half of Step, shared verbatim by the
// private-cache path (Step), the decoupled path (fetchOne), and the
// annotated oracle path (StepBlockAnnotated), so every replay classifies
// breaks through literally the same code.
func (f *Frontend) stepBreak(rec trace.Record, way int) PenaltyClass {
	return f.stepBreakAt(rec, way, f.geom.SetIndex(rec.PC))
}

// stepBreakAt is stepBreak with the break PC's set index precomputed by
// the caller (the event-list replay reads it off the oracle's break
// event; every other path derives it from the engine's own geometry).
func (f *Frontend) stepBreakAt(rec trace.Record, way, set int) PenaltyClass {
	f.m.Breaks++

	// Direction prediction through the pht.DirectionPredictor protocol
	// (DESIGN.md §13): a conditional branch OPENS a prediction (Predict
	// may shift speculative history and checkpoints for the Resolve
	// below); every other break only READS a direction — aliased
	// tag-less NLS entries consult it for target arbitration — so Query
	// keeps history-based predictors' speculative state untouched. For
	// legacy predictors both map to the same Predict call the
	// pre-protocol frontend made here, bit for bit.
	dirTaken := false
	var dirTok pht.Token
	isCond := rec.Kind == isa.CondBranch
	// dirFollower marks a break whose direction bit came from the
	// broadcast's shared stream: the engine's own predictor is neither
	// consulted nor trained (the owner's identical predictor already
	// computed this exact bit; the follower adopts its state when the
	// broadcast ends).
	dirFollower := false
	if !f.bpu.traits.CoupledDirection {
		if ds := f.dirShare; ds != nil && !f.dirOwner {
			dirFollower = true
			dirTaken = ds.at(f.dirPos)
			f.dirPos++
		} else if isCond {
			dirTaken, dirTok = f.bpu.dir.Predict(rec.PC)
		} else {
			dirTaken = f.bpu.dir.Query(rec.PC)
		}
		if f.dirShare != nil && f.dirOwner {
			f.dirShare.push(dirTaken)
		}
	}
	out := f.bpu.tp.Lookup(rec, set, way, dirTaken)
	if f.bpu.traits.CoupledDirection {
		dirTaken = out.DirTaken
	}

	// Classify a wrong fetch by its root cause (DESIGN.md §6) and keep
	// the architectural predictors trained.
	penalty := PenaltyNone
	switch rec.Kind {
	case isa.CondBranch:
		f.m.CondBranches++
		dirRight := dirTaken == rec.Taken
		if !dirRight {
			f.m.CondDirWrong++
		}
		if !out.Correct {
			if dirRight {
				// Direction was right but the target was
				// unavailable (or stale) until decode.
				f.m.AddMisfetch(rec.Kind)
				penalty = PenaltyMisfetch
			} else {
				f.m.AddMispredict(rec.Kind)
				penalty = PenaltyMispredict
			}
		}

	case isa.UncondBranch:
		if !out.Correct {
			f.m.AddMisfetch(rec.Kind)
			penalty = PenaltyMisfetch
		}

	case isa.Call:
		if !out.Correct {
			f.m.AddMisfetch(rec.Kind)
			penalty = PenaltyMisfetch
		}
		if !f.bpu.traits.NoRAS {
			f.rstack.Push(rec.PC.Next())
		}

	case isa.IndirectJump:
		if !out.Correct {
			if out.Followed {
				// A prediction was followed and disproved at
				// execute.
				f.m.AddMispredict(rec.Kind)
				penalty = PenaltyMispredict
			} else {
				f.m.AddMisfetch(rec.Kind)
				penalty = PenaltyMisfetch
			}
		}

	case isa.Return:
		if f.bpu.traits.NoRAS {
			// Moving target with no stack: classify like an
			// indirect jump (§6.2).
			if !out.Correct {
				if out.Followed {
					f.m.AddMispredict(rec.Kind)
					penalty = PenaltyMispredict
				} else {
					f.m.AddMisfetch(rec.Kind)
					penalty = PenaltyMisfetch
				}
			}
			break
		}
		top, ok := f.rstack.Pop()
		rasRight := ok && top == rec.Target
		if !out.Correct {
			if rasRight {
				// Not identified as a return until decode, but
				// the stack had the right address there.
				f.m.AddMisfetch(rec.Kind)
				penalty = PenaltyMisfetch
			} else {
				f.m.AddMispredict(rec.Kind)
				penalty = PenaltyMispredict
			}
		}
	}

	// Optional wrong-path pollution: touch what the front end actually
	// fetched before the redirect (see wrongpath.go), and report the
	// excursion to the direction predictor so history-based schemes can
	// model speculative-history corruption (repaired by the Resolve
	// below, or by their next Predict — the redirect).
	if f.pollution.enabled && !out.Correct {
		if wp, ok := f.bpu.tp.WrongPath(rec); ok {
			f.pollute(wp, penalty == PenaltyMispredict)
			f.bpu.dir.WrongPath(wp)
		}
	}

	// Attribution probe: emit after the break's architectural effects and
	// before the predictors train on it (see probe.go).
	if f.probe != nil {
		f.emitBreak(rec, out, dirTaken, penalty)
	}

	// Close the direction prediction opened above, after any wrong-path
	// report so recovery wipes the poison. For legacy predictors this is
	// the same Update call the pre-protocol frontend made inside the
	// conditional case — nothing between the two points reads their
	// state, so the move is invisible to them.
	if isCond && !f.bpu.traits.CoupledDirection && !dirFollower {
		f.bpu.dir.Resolve(rec.PC, dirTok, rec.Taken)
	}

	// Train the target predictor; a deferred update waits for the
	// successor's fetch to reveal its cache way.
	if f.bpu.tp.Update(rec) {
		f.pending.active = true
		f.pending.rec = rec
	}
	return penalty
}

// OracleGroup reports the geometry under which this engine may share a
// broadcast fetch oracle, and whether sharing is currently sound. Sharing
// requires the engine's i-cache accesses to be a pure function of the
// trace: wrong-path pollution forks the cache state per architecture
// (different engines touch different wrong-path lines), a probed run
// may want per-engine access behaviour observable in isolation, and a
// decoupled (prefetching) frontend injects prefetch fills no shared oracle
// models — all three keep the private-cache path (DESIGN.md §11, §14).
func (f *Frontend) OracleGroup() (cache.Geometry, bool) {
	return f.icache.Geometry(), !f.pollution.enabled && f.probe == nil && !f.decoupled()
}

// EchoFrontend exposes the Frontend for the broadcast echo dedup; timing
// or instrumentation wrappers forward it (returning nil when the wrapped
// engine has no Frontend).
func (f *Frontend) EchoFrontend() *Frontend { return f }

// EchoInvariant reports a key identifying everything this engine's break
// accounting depends on besides the trace itself, and whether the engine
// currently qualifies for break-metric echoing. Echoing is the broadcast's
// cross-geometry dedup (DESIGN.md §16): when a target predictor's break
// path never reads the i-cache — the BTB's full-address scheme, per §7 and
// Figure 7 of the paper — engines differing only in cache geometry produce
// bit-identical break metrics from the same trace, so the broadcast replays
// one of them and copies the result, crediting only the i-cache counters
// (which do differ per geometry) from each geometry's oracle annotation.
//
// Qualifying requires that every structure the break path reads or trains
// be provably trace-pure from here on: a geometry-invariant target
// predictor (asserted by its invariantKey, which also pins its config and
// cold state), a direction predictor exposing a cold StateKey (config
// including history width), an empty RAS, zero counters, no in-flight
// deferred update, and oracle eligibility (no pollution, probe, or
// prefetching — each forks per-engine state the echo would miss).
func (f *Frontend) EchoInvariant() (string, bool) {
	inv, ok := f.bpu.tp.(interface{ invariantKey() (string, bool) })
	if !ok {
		return "", false
	}
	if _, eligible := f.OracleGroup(); !eligible {
		return "", false
	}
	if f.m != (metrics.Counters{}) || f.pending.active || f.rstack.Depth() != 0 {
		return "", false
	}
	tkey, ok := inv.invariantKey()
	if !ok {
		return "", false
	}
	keyed, ok := pht.Unwrap(f.bpu.dir).(interface{ StateKey() (string, bool) })
	if !ok {
		return "", false
	}
	dkey, ok := keyed.StateKey()
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s|%s|ras%d", tkey, dkey, f.rstack.Cap()), true
}

// DirShareKey reports the configuration key under which this engine may
// share a broadcast direction-bit stream, and whether sharing is currently
// sound. Sharing requires a decoupled, deterministic direction predictor
// in its cold state (so identically keyed engines hold identical state
// throughout the replay), no wrong-path excursions feeding it, no probe
// observing it, and the ability to adopt the owner's trained state when
// the broadcast ends (AdoptState) so sharing stays invisible afterwards.
func (f *Frontend) DirShareKey() (string, bool) {
	if f.bpu.traits.CoupledDirection || f.pollution.enabled || f.probe != nil {
		return "", false
	}
	p, ok := pht.Unwrap(f.bpu.dir).(interface {
		StateKey() (string, bool)
		AdoptState(pht.Predictor) bool
	})
	if !ok {
		return "", false
	}
	return p.StateKey()
}

// setDirShare attaches the engine to a shared direction-bit stream;
// clearDirShare detaches it.
func (f *Frontend) setDirShare(ds *dirShare, owner bool) {
	f.dirShare, f.dirOwner, f.dirPos = ds, owner, 0
}
func (f *Frontend) clearDirShare() {
	f.dirShare, f.dirOwner, f.dirPos = nil, false, 0
}

// dirPredictor exposes the unwrapped legacy direction predictor for the
// teardown's state hand-off.
func (f *Frontend) dirPredictor() pht.Predictor { return pht.Unwrap(f.bpu.dir) }

// adoptDirState copies src's predictor state into this engine's direction
// predictor, leaving a stream follower exactly as if it had trained its
// own predictor through the broadcast.
func (f *Frontend) adoptDirState(src pht.Predictor) {
	if src == nil {
		return
	}
	if dst, ok := pht.Unwrap(f.bpu.dir).(interface{ AdoptState(pht.Predictor) bool }); ok {
		dst.AdoptState(src)
	}
}

// echoCredit bulk-credits one block's i-cache counters from this engine's
// geometry annotation — the only per-block work an echoed engine needs
// (its tag mirror is left stale: a geometry-invariant predictor never
// reads it, and Reset rebuilds it).
func (f *Frontend) echoCredit(n int, ann *cache.AccessAnnotations) {
	f.icache.AddAccesses(uint64(n), ann.Misses)
	f.icache.AddColdMisses(ann.ColdMisses)
}

// adoptBreakMetrics copies the replayed leader's counters after a
// broadcast. The i-cache and prefetch fields of m are don't-cares here:
// Counters() re-syncs them from this engine's own (bulk-credited) i-cache.
func (f *Frontend) adoptBreakMetrics(leader *Frontend) { f.m = leader.m }

// StepBlockAnnotated replays one block from a shared fetch oracle's access
// annotation instead of accessing the private i-cache per record
// (DESIGN.md §11). ann must come from an Oracle of this engine's geometry
// fed the identical block sequence, and runs must be the same run
// annotation (nil for the scanning path) the oracle consumed, so both
// sides agree on which records are run leaders.
//
// The private cache is kept as a tag mirror: annotated misses apply their
// fill (tags, valid bit, onReplace — everything predictor state couples
// to) via cache.ApplyFill, so mid-block content reads by the target
// predictor (NLS PointsTo/HoldsAt, LineCoupled's Probe) see exactly the
// state the private path would. LRU bookkeeping is skipped — the oracle
// owns replacement decisions — and the access/miss counters are credited
// in bulk per block, which is where the replay's speedup comes from.
func (f *Frontend) StepBlockAnnotated(recs []trace.Record, ann *cache.AccessAnnotations, runs []uint8) {
	slots := ann.Slots
	ic := f.icache
	g := f.geom
	for i := 0; i < len(recs); {
		r := recs[i]
		s := slots[i]
		way := int(s & cache.AnnWayMask)
		if s&cache.AnnHit == 0 {
			ic.ApplyFill(r.PC, way)
		}
		if f.pending.active {
			if f.pending.rec.Next() == r.PC {
				f.bpu.tp.Resolve(f.pending.rec, way)
			}
			f.pending.active = false
		}
		i++
		if r.IsBreak() {
			f.stepBreak(r, way)
			continue
		}
		// Same-line followers always hit the leader's line: no fill, no
		// pending update possible — skip them wholesale, exactly as the
		// private path batches them into one AccessRun.
		if runs != nil {
			if n := runs[i-1]; n > 0 {
				i += int(n)
			}
			for i < len(recs) && recs[i].Kind == isa.NonBranch {
				if s := slots[i]; s&cache.AnnHit == 0 {
					ic.ApplyFill(recs[i].PC, int(s&cache.AnnWayMask))
				}
				i++
				if n := runs[i-1]; n > 0 {
					i += int(n)
				}
			}
		} else {
			i = skipSameLine(g, recs, i, g.LineAddr(r.PC))
			for i < len(recs) && recs[i].Kind == isa.NonBranch {
				if s := slots[i]; s&cache.AnnHit == 0 {
					ic.ApplyFill(recs[i].PC, int(s&cache.AnnWayMask))
				}
				i++
				i = skipSameLine(g, recs, i, g.LineAddr(recs[i-1].PC))
			}
		}
	}
	f.m.Instructions += uint64(len(recs))
	ic.AddAccesses(uint64(len(recs)), ann.Misses)
	ic.AddColdMisses(ann.ColdMisses)
}

// StepBlockEvents is StepBlockAnnotated without the scan: it replays one
// block by walking the oracle's packed event list (fills, breaks, and the
// post-break resolution points) instead of visiting every record. The two
// are equivalent because every action the annotated scan takes happens at
// an event position: fills happen only at missing run leaders (EvtFill),
// break accounting only at breaks (EvtBreak), and a deferred predictor
// update can only be pending at the record after a break or the first
// record of a block — exactly the EvtPost positions. Hitting non-break
// leaders and all same-line followers need no per-record work (their
// counters are credited in bulk below), so the replay cost scales with the
// block's break + miss density rather than its record count.
func (f *Frontend) StepBlockEvents(recs []trace.Record, ann *cache.AccessAnnotations) {
	if ds := f.dirShare; ds != nil {
		// A new chunk begins: the owner starts a fresh bit stream, each
		// follower rewinds its cursor (the owner always replays first).
		if f.dirOwner {
			ds.reset()
		} else {
			f.dirPos = 0
		}
	}
	slots := ann.Slots
	ic := f.icache
	for _, ev := range ann.Events {
		i := int(ev >> cache.EvtShift & cache.EvtIdxMask)
		r := recs[i]
		way := int(slots[i] & cache.AnnWayMask)
		if ev&cache.EvtFill != 0 {
			ic.ApplyFill(r.PC, way)
		}
		if ev&cache.EvtPost != 0 && f.pending.active {
			// A break at the end of the PREVIOUS block deferred its
			// update to this block's first record.
			if f.pending.rec.Next() == r.PC {
				f.bpu.tp.Resolve(f.pending.rec, way)
			}
			f.pending.active = false
		}
		if ev&cache.EvtBreak != 0 {
			// The event carries the break PC's set index, computed once
			// by the oracle for the whole geometry group.
			f.stepBreakAt(r, way, int(ev>>cache.EvtSetShift))
			// A deferred update resolves inline with the successor's way
			// (the next record is always an annotated run leader), unless
			// the successor is in the next block. Resolving here instead
			// of after the successor's fill is invisible: if that fill
			// evicts the branch's line, both orders leave the coupled
			// entry invalidated; otherwise they train identical state.
			if f.pending.active && i+1 < len(recs) {
				f.bpu.tp.Resolve(f.pending.rec, int(slots[i+1]&cache.AnnWayMask))
				f.pending.active = false
			}
		}
	}
	f.m.Instructions += uint64(len(recs))
	ic.AddAccesses(uint64(len(recs)), ann.Misses)
	ic.AddColdMisses(ann.ColdMisses)
}

// skipSameLine returns the index after the same-line non-branch run
// starting at i (the stateless mirror of base.sameLineTail, for replays
// whose cache effects the oracle already applied).
func skipSameLine(g cache.Geometry, recs []trace.Record, i int, line uint32) int {
	for i < len(recs) && recs[i].Kind == isa.NonBranch && g.LineAddr(recs[i].PC) == line {
		i++
	}
	return i
}
