package fetch

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Per-branch attribution probes.
//
// The counters of package metrics answer "how often does each architecture
// pay a penalty"; they cannot answer "which branches pay it, and why" — the
// causal questions the paper's arguments turn on (NLS-cache state dies with
// evicted lines, the RAS saves returns, tag-less tables alias). A Probe
// attached to a Frontend receives one typed BreakEvent per resolved
// control-transfer instruction, carrying the predicted and actual direction
// and target plus a Cause classifying any penalty. The contract is
// zero-overhead when detached: the only cost on the unprobed hot path is a
// nil check per break (see DESIGN.md §10 and BenchmarkSweepBroadcast).
//
// Probes observe; they must not mutate engine state. Counters of a probed
// run are bit-identical to the same run without a probe (asserted by
// TestProbeCountersBitIdentical for every architecture).

// PenaltyClass is the §5.2 classification of one break's outcome.
type PenaltyClass uint8

const (
	// PenaltyNone: the front end fetched the correct next instruction.
	PenaltyNone PenaltyClass = iota
	// PenaltyMisfetch: wrong path until decode (1 cycle).
	PenaltyMisfetch
	// PenaltyMispredict: wrong value discovered at execute (4 cycles).
	PenaltyMispredict
)

// String names the penalty class.
func (p PenaltyClass) String() string {
	switch p {
	case PenaltyNone:
		return "none"
	case PenaltyMisfetch:
		return "misfetch"
	case PenaltyMispredict:
		return "mispredict"
	}
	return "?"
}

// Cause is the root-cause taxonomy of a wrong fetch. The frontend assigns
// the architecture-independent causes (wrong PHT direction, RAS misses);
// each TargetPredictor explains its own misses through the unexported
// causeExplainer hook. Classification of correct breaks is CauseNone.
type Cause uint8

const (
	// CauseNone: no penalty.
	CauseNone Cause = iota
	// CauseCold: the predictor held no state for this branch — first
	// encounter, or a never-taken branch no structure allocates for.
	CauseCold
	// CauseDirWrong: the direction prediction (decoupled PHT, or a coupled
	// per-entry counter) was wrong.
	CauseDirWrong
	// CauseStalePointer: an NLS/successor pointer (or an aliased tag-less
	// entry) was consulted and named the wrong cache location — aliasing,
	// a moved target, or a target line displaced from the cache (§7).
	CauseStalePointer
	// CauseEvictionLoss: line-coupled predictor state previously trained
	// for this branch was discarded when its cache line was replaced —
	// the NLS-cache's central weakness (§4.1, §6.1). Structurally zero
	// for the decoupled NLS-table, whose entries survive cache eviction.
	CauseEvictionLoss
	// CauseRASMiss: the return address stack underflowed or its top was
	// wrong for a return.
	CauseRASMiss
	// CauseBTBConflict: the branch was in the BTB before but its entry
	// was displaced by conflict or capacity pressure.
	CauseBTBConflict
	// CauseWrongTarget: a full-address target prediction was followed and
	// was wrong (moving indirect targets).
	CauseWrongTarget
	// NumCauses bounds arrays indexed by Cause.
	NumCauses
)

// String names the cause for reports.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseCold:
		return "cold"
	case CauseDirWrong:
		return "dir-wrong"
	case CauseStalePointer:
		return "stale-pointer"
	case CauseEvictionLoss:
		return "eviction-loss"
	case CauseRASMiss:
		return "ras-miss"
	case CauseBTBConflict:
		return "btb-conflict"
	case CauseWrongTarget:
		return "wrong-target"
	}
	return "?"
}

// BreakEvent is one resolved control-transfer instruction as the probe
// sees it: what the front end predicted, what actually happened, and — for
// wrong fetches — why.
type BreakEvent struct {
	// PC and Kind identify the static branch.
	PC   isa.Addr
	Kind isa.Kind
	// Taken and Target are the architectural outcome.
	Taken  bool
	Target isa.Addr
	// PredTaken is the predicted direction (PHT, or the coupled
	// predictor's own state), Followed whether a predicted target was
	// followed rather than the fall-through.
	PredTaken bool
	Followed  bool
	// Penalty classifies the fetch per §5.2; Cause explains it.
	Penalty PenaltyClass
	Cause   Cause
	// WrongPath is the address the front end actually fetched before the
	// redirect (valid when WrongPathKnown); Polluted reports that the
	// touch was applied to the i-cache (pollution modelling enabled).
	WrongPath      isa.Addr
	WrongPathKnown bool
	Polluted       bool
}

// Probe receives the event stream of one engine. Implementations are
// engine-private: the broadcast replay gives each engine (and so each
// probe) to exactly one worker goroutine.
type Probe interface {
	Break(ev BreakEvent)
}

// ProbeAttacher is implemented by engines that support attribution probes
// (every Frontend-based engine).
type ProbeAttacher interface {
	AttachProbe(Probe)
}

// causeExplainer is the optional per-predictor half of cause
// classification: lastCause explains the most recent Lookup for rec, and
// enableTracking switches on the shadow state (ever-trained sets) that
// separates cold misses from eviction and conflict losses. Tracking is off
// until a probe is attached, so the unprobed hot path never touches it.
type causeExplainer interface {
	lastCause(rec trace.Record, dirTaken bool) Cause
	enableTracking()
}

// AttachProbe connects a probe to the frontend (nil detaches). Attach
// before the run starts: cause tracking begins at attach time, and events
// for breaks stepped earlier are not replayed.
func (f *Frontend) AttachProbe(p Probe) {
	f.probe = p
	if p != nil {
		if ce, ok := f.bpu.tp.(causeExplainer); ok {
			ce.enableTracking()
		}
	}
}

// emitBreak builds and delivers the event for one resolved break. Called
// only when a probe is attached, after the break's architectural effects
// (RAS push/pop, pollution touches) and before the predictor trains on it —
// so cause tracking still describes the state the prediction was made from.
func (f *Frontend) emitBreak(rec trace.Record, out Outcome, dirTaken bool, penalty PenaltyClass) {
	ev := BreakEvent{
		PC: rec.PC, Kind: rec.Kind, Taken: rec.Taken, Target: rec.Target,
		PredTaken: dirTaken, Followed: out.Followed, Penalty: penalty,
	}
	if penalty != PenaltyNone {
		ev.Cause = f.classifyCause(rec, out, dirTaken, penalty)
		if wp, ok := f.bpu.tp.WrongPath(rec); ok {
			ev.WrongPath, ev.WrongPathKnown = wp, true
			ev.Polluted = f.pollution.enabled
		}
	}
	f.probe.Break(ev)
}

// classifyCause assigns the root cause of a penalized break. Two causes
// belong to frontend-owned state and are claimed before the predictor is
// consulted: a decoupled direction error is the PHT's fault regardless of
// target state, and under a RAS discipline a return mispredicts exactly when
// the stack was wrong (§6's accounting), so no target predictor could have
// saved it. Everything else defers to the predictor's own explanation, with
// architecture-independent fallbacks for predictors that offer none.
func (f *Frontend) classifyCause(rec trace.Record, out Outcome, dirTaken bool, penalty PenaltyClass) Cause {
	if !f.bpu.traits.CoupledDirection && rec.Kind == isa.CondBranch && dirTaken != rec.Taken {
		return CauseDirWrong
	}
	if !f.bpu.traits.NoRAS && rec.Kind == isa.Return && penalty == PenaltyMispredict {
		return CauseRASMiss
	}
	if ce, ok := f.bpu.tp.(causeExplainer); ok {
		if c := ce.lastCause(rec, dirTaken); c != CauseNone {
			return c
		}
	}
	if rec.Kind == isa.CondBranch && dirTaken != rec.Taken {
		return CauseDirWrong
	}
	if out.Followed {
		return CauseWrongTarget
	}
	return CauseCold
}

// trainedSet is the shadow "ever trained" state behind eviction- and
// conflict-loss attribution: nil (and untouched) until a probe enables
// tracking, so the unprobed hot path pays only a nil check per update.
type trainedSet map[isa.Addr]struct{}

func (t trainedSet) mark(pc isa.Addr) {
	if t != nil {
		t[pc] = struct{}{}
	}
}

func (t trainedSet) has(pc isa.Addr) bool {
	if t == nil {
		return false
	}
	_, ok := t[pc]
	return ok
}
