package fetch

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestStressBroadcastRandomWorkers hammers the broadcast fan-out with
// randomized worker counts, chunk sizes, and workloads, checking every
// round against the sequential (workers=1) replay. The seed is logged so a
// failure reproduces exactly; run under -race via `make stress`.
func TestStressBroadcastRandomWorkers(t *testing.T) {
	const seed = 0x6e6c7331 // fixed: stress variety comes from rounds, not runs
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %#x", seed)

	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	specs := workload.All()
	for round := 0; round < rounds; round++ {
		spec := specs[rng.Intn(len(specs))]
		insns := 20_000 + rng.Intn(40_000)
		chunk := 256 << rng.Intn(4) // 256..2048
		workers := 2 + rng.Intn(15) // 2..16

		tr := spec.MustTrace(insns)
		chunked := trace.Chunk(tr, chunk)

		seq, par := broadcastEngines()
		if n := BroadcastWorkers(chunked.Chunks(), 1, seq...); n != int64(tr.Len()) {
			t.Fatalf("round %d (%s): sequential replayed %d, want %d", round, spec.Name, n, tr.Len())
		}
		if n := BroadcastWorkers(chunked.Chunks(), workers, par...); n != int64(tr.Len()) {
			t.Fatalf("round %d (%s, workers=%d): replayed %d, want %d",
				round, spec.Name, workers, n, tr.Len())
		}
		for i := range seq {
			want := *seq[i].Counters()
			if got := *par[i].Counters(); got != want {
				t.Errorf("round %d: %s on %s with workers=%d chunk=%d diverges from sequential\n got %+v\nwant %+v",
					round, par[i].Name(), spec.Name, workers, chunk, got, want)
			}
		}
	}
}

// TestStressBroadcastSharedAnnotations repeats the randomized sweep over
// the precomputed-run-annotation source, the path the grid executor's
// shared fetch oracle uses.
func TestStressBroadcastSharedAnnotations(t *testing.T) {
	const seed = 0x6e6c7332
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %#x", seed)

	rounds := 4
	if testing.Short() {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		spec := workload.All()[rng.Intn(len(workload.All()))]
		insns := 20_000 + rng.Intn(20_000)
		workers := 2 + rng.Intn(7)

		tr := spec.MustTrace(insns)
		chunked := trace.Chunk(tr, 1024)

		seq, par := broadcastEngines()
		BroadcastWorkers(chunked.Chunks(), 1, seq...)
		if n := BroadcastWorkers(chunked.ChunksRuns(32), workers, par...); n != int64(tr.Len()) {
			t.Fatalf("round %d (%s): annotated replay %d records, want %d", round, spec.Name, n, tr.Len())
		}
		for i := range seq {
			want := *seq[i].Counters()
			if got := *par[i].Counters(); got != want {
				t.Errorf("round %d: %s on %s workers=%d: annotated fan-out diverges\n got %+v\nwant %+v",
					round, par[i].Name(), spec.Name, workers, got, want)
			}
		}
	}
}
