package fetch

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/trace"
)

// tb builds well-chained micro-traces for scripted engine scenarios.
type tb struct {
	recs []trace.Record
	pc   isa.Addr
}

func newTB(start isa.Addr) *tb { return &tb{pc: start} }

func (b *tb) plain(n int) *tb {
	for i := 0; i < n; i++ {
		b.recs = append(b.recs, trace.Record{PC: b.pc, Kind: isa.NonBranch})
		b.pc = b.pc.Next()
	}
	return b
}

func (b *tb) br(kind isa.Kind, taken bool, target isa.Addr) *tb {
	r := trace.Record{PC: b.pc, Kind: kind, Taken: taken, Target: target}
	b.recs = append(b.recs, r)
	b.pc = r.Next()
	return b
}

func (b *tb) trace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{Name: "micro", Records: b.recs}
	if err := tr.Validate(); err != nil {
		t.Fatalf("scripted trace invalid: %v", err)
	}
	return tr
}

// geometry for most scenarios: 1KB direct mapped, 32 sets.
func smallGeom() cache.Geometry { return cache.MustGeometry(1024, 32, 1) }

func counts(e Engine, tr *trace.Trace) (mf, mp uint64) {
	m := Run(e, tr)
	return m.Misfetches, m.Mispredicts
}

// ---------------------------------------------------------------- BTB ----

func TestBTBNonBranchesClean(t *testing.T) {
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{}, 8)
	mf, mp := counts(e, newTB(0x1000).plain(50).trace(t))
	if mf != 0 || mp != 0 {
		t.Errorf("plain instructions penalized: mf=%d mp=%d", mf, mp)
	}
	if e.Counters().Instructions != 50 || e.Counters().Breaks != 0 {
		t.Error("instruction accounting wrong")
	}
}

func TestBTBUncondFirstMisfetchThenClean(t *testing.T) {
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{}, 8)
	b := newTB(0x1000)
	b.br(isa.UncondBranch, true, 0x1010) // cold: misfetch
	b.plain(1)
	b.br(isa.UncondBranch, true, 0x1000) // cold: misfetch (site 0x1014)
	b.br(isa.UncondBranch, true, 0x1010) // warm: clean
	mf, mp := counts(e, b.trace(t))
	if mf != 2 || mp != 0 {
		t.Errorf("mf=%d mp=%d, want 2/0", mf, mp)
	}
}

func TestBTBCondTakenDirectionRight(t *testing.T) {
	// Static-taken PHT: direction always right for taken branches. The
	// first execution misses the BTB (misfetch); later ones hit.
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{Taken: true}, 8)
	b := newTB(0x1000)
	b.br(isa.CondBranch, true, 0x1010)
	b.br(isa.UncondBranch, true, 0x1000) // trained separately: 1 misfetch
	b.br(isa.CondBranch, true, 0x1010)   // now hits: clean
	mf, mp := counts(e, b.trace(t))
	if mf != 2 || mp != 0 {
		t.Errorf("mf=%d mp=%d, want 2/0", mf, mp)
	}
}

func TestBTBCondDirectionWrongIsMispredict(t *testing.T) {
	// Static-not-taken PHT mispredicts every taken conditional; those
	// are never also counted as misfetches.
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{Taken: false}, 8)
	// Sites at words 0x400 and 0x404: distinct sets of the 16-entry BTB.
	b := newTB(0x1000)
	for i := 0; i < 3; i++ {
		b.br(isa.CondBranch, true, 0x1010)
		b.br(isa.UncondBranch, true, 0x1000)
	}
	mf, mp := counts(e, b.trace(t))
	if mp != 3 {
		t.Errorf("mp=%d, want 3", mp)
	}
	if mf != 1 { // only the uncond's cold misfetch
		t.Errorf("mf=%d, want 1 (uncond cold miss)", mf)
	}
}

func TestBTBNotTakenCondClean(t *testing.T) {
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{Taken: false}, 8)
	b := newTB(0x1000)
	for i := 0; i < 5; i++ {
		b.br(isa.CondBranch, false, 0x2000)
		b.plain(1)
	}
	mf, mp := counts(e, b.trace(t))
	if mf != 0 || mp != 0 {
		t.Errorf("not-taken conditionals penalized: mf=%d mp=%d", mf, mp)
	}
}

func TestBTBIndirectScenarios(t *testing.T) {
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{}, 8)
	b := newTB(0x1000)
	b.br(isa.IndirectJump, true, 0x1010) // cold: misfetch
	b.br(isa.UncondBranch, true, 0x1000) // site 0x1010: cold misfetch
	b.br(isa.IndirectJump, true, 0x1010) // stable target: clean
	b.br(isa.UncondBranch, true, 0x1000)
	b.br(isa.IndirectJump, true, 0x1020) // moved target: mispredict
	b.br(isa.UncondBranch, true, 0x1000) // site 0x1020: cold misfetch
	b.br(isa.IndirectJump, true, 0x1020) // stable again: clean
	b.br(isa.UncondBranch, true, 0x1000)
	mf, mp := counts(e, b.trace(t))
	// misfetches: indirect cold + both uncond sites cold.
	if mf != 3 || mp != 1 {
		t.Errorf("mf=%d mp=%d, want 3/1", mf, mp)
	}
}

func TestBTBCallReturnRAS(t *testing.T) {
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{}, 8)
	b := newTB(0x1000)
	// Two passes over the same three sites: a call, its return, and the
	// loop-back jump. Cold pass misfetches all three; warm pass is
	// clean (BTB identifies the sites, RAS supplies the return).
	for i := 0; i < 2; i++ {
		b.br(isa.Call, true, 0x1010)         // site 0x1000, pushes 0x1004
		b.br(isa.Return, true, 0x1004)       // site 0x1010
		b.br(isa.UncondBranch, true, 0x1000) // site 0x1004
	}
	mf, mp := counts(e, b.trace(t))
	if mf != 3 || mp != 0 {
		t.Errorf("mf=%d mp=%d, want 3/0", mf, mp)
	}
}

func TestBTBReturnRASWrongIsMispredict(t *testing.T) {
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{}, 8)
	// A return with an empty RAS: no prediction possible — mispredict
	// whether or not the BTB identifies the return.
	b := newTB(0x1000)
	b.br(isa.Return, true, 0x1010)
	b.br(isa.UncondBranch, true, 0x1000)
	b.br(isa.Return, true, 0x1010) // now in BTB, but RAS still empty
	mf, mp := counts(e, b.trace(t))
	if mp != 2 {
		t.Errorf("mp=%d, want 2 (both empty-RAS returns)", mp)
	}
	if mf != 1 { // uncond cold
		t.Errorf("mf=%d, want 1", mf)
	}
}

func TestBTBBEPIndependentOfCache(t *testing.T) {
	// The BTB holds full addresses: its misfetch/mispredict counts must
	// be identical across instruction cache configurations (§7, the
	// flat BTB bars of Figure 7).
	b := newTB(0x1000)
	for i := 0; i < 40; i++ {
		b.br(isa.CondBranch, i%3 != 0, 0x1800)
		if i%3 != 0 {
			b.br(isa.UncondBranch, true, 0x1000)
		} else {
			b.plain(2)
			b.br(isa.UncondBranch, true, 0x1000)
		}
	}
	tr := b.trace(t)
	var prevMf, prevMp uint64
	for i, g := range []cache.Geometry{
		cache.MustGeometry(1024, 32, 1),
		cache.MustGeometry(8*1024, 32, 1),
		cache.MustGeometry(32*1024, 32, 4),
	} {
		e := NewBTBEngine(g, btb.Config{Entries: 16, Assoc: 1}, pht.NewGShare(256, 0), 8)
		mf, mp := counts(e, tr)
		if i > 0 && (mf != prevMf || mp != prevMp) {
			t.Errorf("BTB BEP depends on cache config: %d/%d vs %d/%d", mf, mp, prevMf, prevMp)
		}
		prevMf, prevMp = mf, mp
	}
}

func TestBTBCapacityThrashing(t *testing.T) {
	// More concurrently live taken branches than BTB entries: every
	// execution misses (misfetch with a correct static-taken direction).
	e := NewBTBEngine(cache.MustGeometry(32*1024, 32, 1), btb.Config{Entries: 4, Assoc: 1},
		pht.Static{Taken: true}, 8)
	b := newTB(0x1000)
	// 8 unconditional branches in a cycle, all mapping over 4 entries.
	targets := make([]isa.Addr, 8)
	for i := range targets {
		targets[i] = isa.Addr(0x1000 + 0x100*(i+1))
	}
	cur := isa.Addr(0x1000)
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			next := targets[i]
			if i == 7 {
				next = 0x1000
			}
			b.br(isa.UncondBranch, true, next)
			cur = next
			_ = cur
		}
	}
	mf, _ := counts(e, b.trace(t))
	// With 8 live sites in 4 direct-mapped entries, at least the four
	// conflicting sites miss every round.
	if mf < 30 {
		t.Errorf("mf=%d, expected heavy thrashing (>=30)", mf)
	}
}

// ---------------------------------------------------------------- NLS ----

func newNLS(g cache.Geometry, entries int, dir pht.Predictor) *NLSEngine {
	return NewNLSTableEngine(g, entries, dir, 8)
}

func TestNLSUncondTrainThenClean(t *testing.T) {
	// 1024-entry table: the two sites (word indices 0 and 64 mod 1024)
	// do not alias.
	e := newNLS(smallGeom(), 1024, pht.Static{})
	b := newTB(0x1000)
	b.br(isa.UncondBranch, true, 0x1100) // cold: misfetch
	b.br(isa.UncondBranch, true, 0x1000) // cold: misfetch
	b.br(isa.UncondBranch, true, 0x1100) // trained, resident: clean
	b.br(isa.UncondBranch, true, 0x1000) // trained: clean
	mf, mp := counts(e, b.trace(t))
	if mf != 2 || mp != 0 {
		t.Errorf("mf=%d mp=%d, want 2/0", mf, mp)
	}
}

func TestNLSDisplacedTargetMisfetch(t *testing.T) {
	// THE distinguishing NLS behaviour (§7): a trained pointer whose
	// target line was displaced from the cache misfetches; the BTB,
	// holding full addresses, never does.
	//
	// Cycle of three stable sites: H(set 0) → T(set 8) → E(set 8) → H.
	// T and E conflict in the 1KB direct-mapped cache, so each evicts
	// the other every cycle: H's pointer to T and T's pointer to E are
	// stale every cycle (2 NLS misfetches/cycle steady state), while
	// E's pointer to H stays clean.
	g := smallGeom()
	e := newNLS(g, 1024, pht.Static{})
	const (
		H = isa.Addr(0x1000)
		T = isa.Addr(0x1100)
		E = isa.Addr(0x1100 + 1024)
	)
	b := newTB(H)
	const cycles = 4
	for i := 0; i < cycles; i++ {
		b.br(isa.UncondBranch, true, T)
		b.br(isa.UncondBranch, true, E)
		b.br(isa.UncondBranch, true, H)
	}
	tr := b.trace(t)
	mf, mp := counts(e, tr)
	want := uint64(3 + 2*(cycles-1)) // 3 cold + 2 per steady cycle
	if mf != want || mp != 0 {
		t.Errorf("NLS mf=%d mp=%d, want %d/0", mf, mp, want)
	}

	// Control: the BTB only misfetches the three cold sites. (1024
	// entries so the cache-conflicting sites do not also conflict in
	// the BTB.)
	be := NewBTBEngine(g, btb.Config{Entries: 1024, Assoc: 1}, pht.Static{}, 8)
	bmf, _ := counts(be, tr)
	if bmf != 3 {
		t.Errorf("BTB mf=%d, want 3 (cold sites only)", bmf)
	}
}

func TestNLSCondPointerPreservedAcrossNotTaken(t *testing.T) {
	// §4: a not-taken execution must not erase the pointer.
	e := newNLS(smallGeom(), 1024, pht.Static{Taken: true})
	b := newTB(0x1000)
	b.br(isa.CondBranch, true, 0x1100)   // cold: misfetch, trains
	b.br(isa.UncondBranch, true, 0x1000) // cold: misfetch
	b.br(isa.CondBranch, false, 0x1100)  // static-taken wrong: mispredict
	b.plain(1)                           // fall-through to 0x1008
	b.br(isa.UncondBranch, true, 0x1000) // new site at 0x1008: misfetch
	b.br(isa.CondBranch, true, 0x1100)   // pointer preserved: clean
	mf, mp := counts(e, b.trace(t))
	if mf != 3 || mp != 1 {
		t.Errorf("mf=%d mp=%d, want 3/1", mf, mp)
	}
}

func TestNLSNotTakenCondClean(t *testing.T) {
	e := newNLS(smallGeom(), 64, pht.Static{Taken: false})
	b := newTB(0x1000)
	for i := 0; i < 5; i++ {
		b.br(isa.CondBranch, false, 0x2000)
	}
	mf, mp := counts(e, b.trace(t))
	if mf != 0 || mp != 0 {
		t.Errorf("mf=%d mp=%d, want 0/0", mf, mp)
	}
}

func TestNLSTaglessAliasing(t *testing.T) {
	// Two branches 64 words apart alias in a 64-entry table; each
	// taken execution overwrites the shared entry, so alternating
	// executions always misfetch.
	e := newNLS(cache.MustGeometry(8*1024, 32, 1), 64, pht.Static{})
	a := isa.Addr(0x1000)
	aliased := a + 64*4
	b := newTB(a)
	for i := 0; i < 4; i++ {
		b.br(isa.UncondBranch, true, aliased) // site A -> B
		b.br(isa.UncondBranch, true, a)       // site B -> A (aliases A's entry)
	}
	mf, _ := counts(e, b.trace(t))
	// Every execution misfetches: the alias rewrote the entry each time.
	if mf != 8 {
		t.Errorf("mf=%d, want 8 (every execution aliased)", mf)
	}
}

func TestNLSCallReturn(t *testing.T) {
	e := newNLS(smallGeom(), 1024, pht.Static{})
	b := newTB(0x1000)
	for i := 0; i < 2; i++ {
		b.br(isa.Call, true, 0x1200)         // pushes 0x1004
		b.br(isa.Return, true, 0x1004)       // RAS-predicted
		b.br(isa.UncondBranch, true, 0x1000) // loop back
	}
	mf, mp := counts(e, b.trace(t))
	// Cold pass: call misfetch, return misfetch (type unknown, RAS
	// right), loop-back misfetch. Warm pass: all clean.
	if mf != 3 || mp != 0 {
		t.Errorf("mf=%d mp=%d, want 3/0", mf, mp)
	}
}

func TestNLSReturnEmptyRASMispredict(t *testing.T) {
	e := newNLS(smallGeom(), 1024, pht.Static{})
	b := newTB(0x1000)
	b.br(isa.Return, true, 0x1100)
	b.br(isa.UncondBranch, true, 0x1000)
	b.br(isa.Return, true, 0x1100) // identified now, but RAS empty
	mf, mp := counts(e, b.trace(t))
	if mp != 2 {
		t.Errorf("mp=%d, want 2", mp)
	}
	_ = mf
}

func TestNLSIndirect(t *testing.T) {
	e := newNLS(smallGeom(), 1024, pht.Static{})
	b := newTB(0x1000)
	b.br(isa.IndirectJump, true, 0x1100) // cold: misfetch
	b.br(isa.UncondBranch, true, 0x1000) // cold: misfetch
	b.br(isa.IndirectJump, true, 0x1100) // stable: clean
	b.br(isa.UncondBranch, true, 0x1000)
	b.br(isa.IndirectJump, true, 0x1200) // moved: pointer followed, wrong: mispredict
	b.br(isa.UncondBranch, true, 0x1000) // new site at 0x1200: misfetch
	b.br(isa.IndirectJump, true, 0x1200) // retrained, resident: clean
	b.br(isa.UncondBranch, true, 0x1000)
	mf, mp := counts(e, b.trace(t))
	if mf != 3 || mp != 1 {
		t.Errorf("mf=%d mp=%d, want 3/1", mf, mp)
	}
}

func TestNLSWayPrediction(t *testing.T) {
	// 2-way cache: the target line moves to the *other way* while
	// staying resident; the stale way field alone causes the misfetch
	// (the paper's "may have been reloaded into a different set", §7).
	g := cache.MustGeometry(2048, 32, 2) // 32 sets
	e := newNLS(g, 1024, pht.Static{})
	var (
		siteA = isa.Addr(0x1000) // set 0
		tgt   = isa.Addr(0x1100) // set 8
		c1    = tgt + 2048       // set 8
		c2    = tgt + 4096       // set 8
		siteE = isa.Addr(0x1040) // set 2: a second site targeting tgt
	)
	b := newTB(siteA)
	b.br(isa.UncondBranch, true, tgt)   // 0: A trains ptr (tgt at way 0)
	b.br(isa.CondBranch, false, 0x2000) // 1: at tgt, falls through
	b.br(isa.UncondBranch, true, c1)    // 2: at tgt+4, fills set-8 way 1
	b.br(isa.UncondBranch, true, c2)    // 3: evicts tgt (LRU) from way 0
	b.br(isa.UncondBranch, true, siteE) // 4
	b.br(isa.UncondBranch, true, tgt)   // 5: tgt refills at way 1 (LRU = c1)
	b.br(isa.CondBranch, false, 0x2000) // 6: at tgt again, falls through
	b.br(isa.UncondBranch, true, siteA) // 7: at tgt+4, loop home
	b.br(isa.UncondBranch, true, tgt)   // 8: A again: tgt RESIDENT at way 1
	tr := b.trace(t)

	// Step through and examine the critical record (index 8).
	for _, rec := range tr.Records[:8] {
		e.Step(rec)
	}
	mfBefore := e.Counters().Misfetches
	// The target must be resident right now — if the final misfetch
	// fires, it is purely the stale way field.
	way, resident := e.ICache().Probe(tgt)
	if !resident || way != 1 {
		t.Fatalf("test setup broken: target resident=%v way=%d, want way 1", resident, way)
	}
	e.Step(tr.Records[8])
	if got := e.Counters().Misfetches - mfBefore; got != 1 {
		t.Errorf("way-moved target: misfetch delta = %d, want 1", got)
	}
	if e.Counters().Mispredicts != 0 {
		t.Errorf("mp=%d, want 0", e.Counters().Mispredicts)
	}
}

// ----------------------------------------------------------- NLS-cache ----

func TestNLSCacheLosesStateOnEviction(t *testing.T) {
	// The NLS-cache discards prediction state with the line (§4.1); the
	// NLS-table preserves it across cache misses. Cycle A→B→C→E→A where
	// B and E conflict in the cache: each cycle each evicts the other.
	//
	// Steady state per cycle:
	//   NLS-table: 2 misfetches — A's and C's pointers chase the
	//   evicted B and E lines; B's and E's *entries* stay trained.
	//   NLS-cache: 4 misfetches — additionally B's and E's predictor
	//   state dies with their lines, so their own branches misfetch
	//   too.
	g := smallGeom()
	const (
		A = isa.Addr(0x1000) // set 0
		B = isa.Addr(0x1100) // set 8
		C = isa.Addr(0x1040) // set 2
		E = isa.Addr(0x1500) // set 8: conflicts with B
	)
	const cycles = 5
	b := newTB(A)
	for i := 0; i < cycles; i++ {
		b.br(isa.UncondBranch, true, B)
		b.br(isa.UncondBranch, true, C)
		b.br(isa.UncondBranch, true, E)
		b.br(isa.UncondBranch, true, A)
	}
	tr := b.trace(t)

	table := newNLS(g, 1024, pht.Static{})
	tmf, _ := counts(table, tr)
	coupled := NewNLSCacheEngine(g, 2, pht.Static{}, 8)
	cmf, _ := counts(coupled, tr)
	if want := uint64(4 + 2*(cycles-1)); tmf != want {
		t.Errorf("NLS-table mf=%d, want %d", tmf, want)
	}
	if want := uint64(4 + 4*(cycles-1)); cmf != want {
		t.Errorf("NLS-cache mf=%d, want %d", cmf, want)
	}
}

func TestNLSCacheWorksWhenResident(t *testing.T) {
	e := NewNLSCacheEngine(smallGeom(), 2, pht.Static{}, 8)
	b := newTB(0x1000)
	b.br(isa.UncondBranch, true, 0x1100)
	b.br(isa.UncondBranch, true, 0x1000)
	b.br(isa.UncondBranch, true, 0x1100) // trained: clean
	b.br(isa.UncondBranch, true, 0x1000) // trained: clean
	mf, mp := counts(e, b.trace(t))
	if mf != 2 || mp != 0 {
		t.Errorf("mf=%d mp=%d, want 2/0", mf, mp)
	}
}

// ------------------------------------------------------------- Johnson ----

func TestJohnsonAlternatingCondMispredicts(t *testing.T) {
	// One-bit implicit direction: an alternating conditional mispredicts
	// every execution once warm (the pointer always encodes the last
	// direction, which is always wrong).
	e := NewJohnsonEngine(smallGeom())
	b := newTB(0x1000)
	for i := 0; i < 10; i++ {
		taken := i%2 == 0
		b.br(isa.CondBranch, taken, 0x1000+0x40)
		if taken {
			b.br(isa.UncondBranch, true, 0x1000)
		} else {
			b.plain(15)
			b.br(isa.UncondBranch, true, 0x1000)
		}
	}
	m := Run(e, b.trace(t))
	// Warm executions (after the first) of the alternating branch are
	// all wrong.
	if m.Mispredicts < 8 {
		t.Errorf("mp=%d, want >=8 for alternation under one-bit prediction", m.Mispredicts)
	}
}

func TestJohnsonStableUncondClean(t *testing.T) {
	e := NewJohnsonEngine(smallGeom())
	b := newTB(0x1000)
	for i := 0; i < 6; i++ {
		b.br(isa.UncondBranch, true, 0x1100)
		b.br(isa.UncondBranch, true, 0x1000)
	}
	m := Run(e, b.trace(t))
	if m.Misfetches != 2 || m.Mispredicts != 0 {
		t.Errorf("mf=%d mp=%d, want 2/0", m.Misfetches, m.Mispredicts)
	}
}

// --------------------------------------------------------------- shared ----

func TestEngineInvariants(t *testing.T) {
	// misfetch + mispredict <= breaks, and every engine resets cleanly.
	b := newTB(0x1000)
	for i := 0; i < 30; i++ {
		b.br(isa.CondBranch, i%2 == 0, 0x1400)
		if i%2 == 0 {
			b.br(isa.UncondBranch, true, 0x1000)
		} else {
			b.plain(3)
			b.br(isa.UncondBranch, true, 0x1000)
		}
	}
	tr := b.trace(t)
	engines := []Engine{
		NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 2}, pht.NewGShare(256, 0), 8),
		NewNLSTableEngine(smallGeom(), 64, pht.NewGShare(256, 0), 8),
		NewNLSCacheEngine(smallGeom(), 2, pht.NewGShare(256, 0), 8),
		NewJohnsonEngine(smallGeom()),
	}
	for _, e := range engines {
		m := Run(e, tr)
		if m.Misfetches+m.Mispredicts > m.Breaks {
			t.Errorf("%s: penalties exceed breaks", e.Name())
		}
		if m.Instructions != uint64(tr.Len()) {
			t.Errorf("%s: instructions %d != %d", e.Name(), m.Instructions, tr.Len())
		}
		before := *m
		e.Reset()
		if e.Counters().Instructions != 0 {
			t.Errorf("%s: Reset did not clear counters", e.Name())
		}
		// Re-running after reset reproduces identical counts
		// (determinism).
		m2 := Run(e, tr)
		if *m2 != before {
			t.Errorf("%s: rerun after Reset diverged", e.Name())
		}
	}
}

func TestRunSource(t *testing.T) {
	b := newTB(0x1000)
	b.plain(10)
	src := &trace.SliceSource{Records: b.recs}
	e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{}, 8)
	m := RunSource(e, src, 7)
	if m.Instructions != 7 {
		t.Errorf("RunSource processed %d, want 7", m.Instructions)
	}
}
