package fetch

import (
	"repro/internal/core"
	"repro/internal/isa"
)

// Wrong-path fetch pollution.
//
// §5.2 of the paper records instruction cache miss rates separately for the
// two architectures because "the NLS and BTB architectures may fetch
// different instructions, even for the same cache organization": until a
// misfetch or misprediction resolves, the front end fetches down the wrong
// path, and those fetches touch the cache. The engines model this
// optionally (off by default, so headline results isolate prediction
// behaviour; the `pollution` ablation turns it on): on a wrong fetch, the
// first wrong-path line is accessed — and for a misprediction, whose
// four-cycle shadow streams further, its sequential successor too.

// pollution centralizes the wrong-path touch logic for engines embedding
// base.
type pollution struct {
	enabled bool
}

// SetWrongPathPollution enables or disables wrong-path cache pollution
// modelling. Call before running the engine.
func (p *pollution) SetWrongPathPollution(on bool) { p.enabled = on }

// touch fetches the first wrong-path line (and, for the deeper mispredict
// shadow, the following line).
func (b *base) pollute(addr isa.Addr, mispredict bool) {
	b.icache.Access(addr)
	if mispredict {
		b.icache.Access(addr + isa.Addr(b.icache.Geometry().LineBytes()))
	}
}

// wrongPathNLS computes the address the NLS hardware actually fetched when
// its selected mechanism was wrong: the resident line at the predicted
// pointer slot, the fall-through, or the return-stack top.
func (e *NLSEngine) wrongPath(mode predMode, entry core.Entry, pc isa.Addr) (isa.Addr, bool) {
	switch mode {
	case modeFallThrough:
		return pc.Next(), true
	case modeRAS:
		if top, ok := e.rstack.Top(); ok {
			return top, true
		}
		return pc.Next(), true
	case modePointer:
		line, ok := e.icache.ResidentAt(int(entry.Set), int(entry.Way))
		if !ok {
			return 0, false // predicted slot empty: nothing fetched
		}
		g := e.icache.Geometry()
		return isa.Addr(line)*isa.Addr(g.LineBytes()) +
			isa.Addr(int(entry.Offset)*isa.InstrBytes), true
	}
	return 0, false
}
