package fetch

import (
	"repro/internal/isa"
)

// Wrong-path fetch pollution.
//
// §5.2 of the paper records instruction cache miss rates separately for the
// two architectures because "the NLS and BTB architectures may fetch
// different instructions, even for the same cache organization": until a
// misfetch or misprediction resolves, the front end fetches down the wrong
// path, and those fetches touch the cache. The Frontend models this
// optionally (off by default, so headline results isolate prediction
// behaviour; the `pollution` ablation turns it on): on a wrong fetch, the
// first wrong-path line is accessed — and for a misprediction, whose
// four-cycle shadow streams further, its sequential successor too. The
// wrong-path *address* is architecture-specific and comes from the
// TargetPredictor's WrongPath hook, called after the break's RAS effects
// have been applied.

// pollution centralizes the wrong-path touch logic for engines embedding
// base.
type pollution struct {
	enabled bool
}

// SetWrongPathPollution enables or disables wrong-path cache pollution
// modelling. Call before running the engine.
func (p *pollution) SetWrongPathPollution(on bool) { p.enabled = on }

// touch fetches the first wrong-path line (and, for the deeper mispredict
// shadow, the following line).
func (b *base) pollute(addr isa.Addr, mispredict bool) {
	b.icache.Access(addr)
	if mispredict {
		b.icache.Access(addr + isa.Addr(b.icache.Geometry().LineBytes()))
	}
}
