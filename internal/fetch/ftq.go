package fetch

import "repro/internal/isa"

// FTQ is the bounded fetch-target queue between the branch-prediction unit
// and the fetch stage (DESIGN.md §14): the BPU pushes the line address of
// each predicted fetch block as its run-ahead cursor enters it, the fetch
// stage pops the entry when it actually fetches that block, and a
// mispredicted break flushes everything the BPU had queued beyond it. Each
// entry remembers the block-relative record index it was predicted for, so
// the fetch stage consumes entries by exact position rather than by
// re-deriving line boundaries.
//
// A depth-0 FTQ never accepts a push; the frontend then keeps the fused
// fetch path, bit for bit (see Frontend.decoupled).
type FTQ struct {
	entries []ftqEntry
	head    int
	size    int

	pushes  uint64
	flushes uint64
}

// ftqEntry is one predicted fetch block: the address of its leading
// instruction and the index of that record within the current block.
type ftqEntry struct {
	addr isa.Addr
	pos  int
}

// FTQStats reports the queue's traffic for tests and diagnostics.
type FTQStats struct {
	Pushes  uint64
	Flushes uint64
}

// SetDepth sizes the queue (0 disables it) and flushes any content.
func (q *FTQ) SetDepth(depth int) {
	if depth <= 0 {
		q.entries = nil
	} else {
		q.entries = make([]ftqEntry, depth)
	}
	q.head, q.size = 0, 0
}

// Cap returns the configured depth.
func (q *FTQ) Cap() int { return len(q.entries) }

// Full reports whether another push would be refused.
func (q *FTQ) Full() bool { return q.size >= len(q.entries) }

// Empty reports whether the queue holds no entries.
func (q *FTQ) Empty() bool { return q.size == 0 }

// Len returns the number of queued entries (the queue's occupancy).
func (q *FTQ) Len() int { return q.size }

// Stats returns the queue's traffic counters.
func (q *FTQ) Stats() FTQStats { return FTQStats{Pushes: q.pushes, Flushes: q.flushes} }

// push appends a predicted fetch block. The caller checks Full first; a
// push into a full (or depth-0) queue is silently refused.
func (q *FTQ) push(addr isa.Addr, pos int) {
	if q.size >= len(q.entries) {
		return
	}
	q.entries[(q.head+q.size)%len(q.entries)] = ftqEntry{addr: addr, pos: pos}
	q.size++
	q.pushes++
}

// peek returns the oldest entry without consuming it.
func (q *FTQ) peek() (ftqEntry, bool) {
	if q.size == 0 {
		return ftqEntry{}, false
	}
	return q.entries[q.head], true
}

// pop consumes the oldest entry.
func (q *FTQ) pop() {
	if q.size == 0 {
		return
	}
	q.head = (q.head + 1) % len(q.entries)
	q.size--
}

// flush discards every queued entry (a fetch redirect: the BPU was running
// down a wrong path).
func (q *FTQ) flush() {
	if q.size > 0 {
		q.flushes++
	}
	q.head, q.size = 0, 0
}

// reset clears content and statistics, keeping the configured depth.
func (q *FTQ) reset() {
	q.head, q.size = 0, 0
	q.pushes, q.flushes = 0, 0
}
