package fetch

import (
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/trace"
)

// btbPredictor implements TargetPredictor for the decoupled BTB
// architecture of §3: a tagged, set-associative BTB holding full target
// addresses and branch types for taken branches, with direction prediction
// left to the Frontend's decoupled PHT and return targets to its RAS.
//
// Because the BTB holds full addresses, its fetch predictions never depend
// on instruction cache contents: a correct BTB target is a correct fetch
// even if the target line is absent (the miss just starts a cycle earlier
// than it would under NLS, §7). Consequently the BTB's branch execution
// penalty is independent of the cache configuration — the property the
// paper's Figure 7 calls out.
type btbPredictor struct {
	buf    *btb.BTB
	rstack *ras.Stack

	// The entry read by the last Lookup, retained for WrongPath.
	lastEntry btb.Entry
	lastHit   bool

	// track records which PCs ever entered the BTB, for cause attribution
	// only (nil until a probe enables tracking).
	track trainedSet
}

// Lookup implements TargetPredictor.
func (p *btbPredictor) Lookup(rec trace.Record, _, _ int, dirTaken bool) Outcome {
	entry, hit := p.buf.Lookup(rec.PC)
	p.lastEntry, p.lastHit = entry, hit

	// Full-address prediction, so correctness is pure address comparison
	// per kind; the Frontend's §6 classification does the rest.
	var correct bool
	switch rec.Kind {
	case isa.CondBranch:
		// A hit entry for a direct conditional always carries the
		// branch's (unique) target, so a right direction mispredicts
		// nothing and a taken prediction fetches right iff it hit.
		correct = dirTaken == rec.Taken && (!rec.Taken || hit)
	case isa.UncondBranch, isa.Call:
		correct = hit
	case isa.IndirectJump:
		correct = hit && entry.Target == rec.Target
	case isa.Return:
		// Identified as a return on a hit, so the fetch is right iff
		// the stack top (about to be popped by the Frontend) is right.
		top, ok := p.rstack.Top()
		correct = hit && ok && top == rec.Target
	}
	return Outcome{Correct: correct, Followed: hit}
}

// Update implements TargetPredictor: only taken branches enter or refresh
// the BTB (§3); full addresses need no deferral.
func (p *btbPredictor) Update(rec trace.Record) bool {
	if rec.Taken {
		p.track.mark(rec.PC)
		p.buf.RecordTaken(rec.PC, rec.Target, rec.Kind)
	}
	return false
}

// Resolve implements TargetPredictor (never deferred).
func (p *btbPredictor) Resolve(trace.Record, int) {}

// enableTracking implements causeExplainer.
func (p *btbPredictor) enableTracking() {
	if p.track == nil {
		p.track = make(trainedSet)
	}
}

// lastCause implements causeExplainer. A BTB miss for a branch that was
// inserted before means its entry was displaced by conflict or capacity
// pressure (§3's tagged, set-associative organization has no other way to
// lose an entry); the only penalized hit that reaches here is a moving
// indirect target (direction and return errors are the frontend's).
func (p *btbPredictor) lastCause(rec trace.Record, _ bool) Cause {
	if !p.lastHit {
		if p.track.has(rec.PC) {
			return CauseBTBConflict
		}
		return CauseCold
	}
	return CauseWrongTarget
}

// WrongPath implements TargetPredictor, approximating the wrong-path fetch
// as the predicted target on a hit, the fall-through otherwise.
func (p *btbPredictor) WrongPath(rec trace.Record) (isa.Addr, bool) {
	if p.lastHit {
		return p.lastEntry.Target, true
	}
	return rec.PC.Next(), true
}

// invariantKey implements the broadcast echo dedup's eligibility probe
// (see Frontend.EchoInvariant): the BTB's break accounting never reads the
// i-cache — correctness is pure address comparison against full stored
// targets plus the RAS — and Update never defers on the successor's cache
// way, so from a cold buffer the predictor's entire evolution is a function
// of the trace alone, identical under every cache geometry. The key pins
// the configuration; eligibility additionally requires the cold state and
// no attribution tracking (a probed run must observe real per-engine
// lookups).
func (p *btbPredictor) invariantKey() (string, bool) {
	if p.track != nil || !p.buf.Cold() {
		return "", false
	}
	return "btb:" + p.buf.Config().String(), true
}

// Name implements TargetPredictor.
func (p *btbPredictor) Name() string { return p.buf.Config().String() }

// SizeBits implements TargetPredictor.
func (p *btbPredictor) SizeBits() int { return p.buf.SizeBits() }

// Reset implements TargetPredictor.
func (p *btbPredictor) Reset() {
	p.buf.Reset()
	if p.track != nil {
		clear(p.track)
	}
}

// BTBEngine is the decoupled BTB architecture: a Frontend driven by a
// btbPredictor.
type BTBEngine struct {
	Frontend
}

// NewBTBEngine builds a BTB architecture simulator. dir is shared-use: pass
// a fresh predictor per engine.
func NewBTBEngine(g cache.Geometry, cfg btb.Config, dir pht.Directional, rasDepth int) *BTBEngine {
	e := &BTBEngine{Frontend: newFrontend(g, dir, rasDepth)}
	e.bind(&btbPredictor{buf: btb.New(cfg), rstack: e.rstack}, Traits{})
	return e
}

// BTB exposes the underlying buffer for tests.
func (e *BTBEngine) BTB() *btb.BTB { return e.bpu.tp.(*btbPredictor).buf }
