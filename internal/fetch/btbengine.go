package fetch

import (
	"fmt"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/trace"
)

// BTBEngine simulates the decoupled BTB architecture of §3: a tagged,
// set-associative BTB holding full target addresses and branch types for
// taken branches, a separate PHT for conditional directions, and a return
// stack.
//
// Because the BTB holds full addresses, its fetch predictions never depend
// on instruction cache contents: a correct BTB target is a correct fetch
// even if the target line is absent (the miss just starts a cycle earlier
// than it would under NLS, §7). Consequently the BTB's branch execution
// penalty is independent of the cache configuration — the property the
// paper's Figure 7 calls out.
type BTBEngine struct {
	base
	pollution
	buf *btb.BTB
}

// NewBTBEngine builds a BTB architecture simulator. dir is shared-use: pass
// a fresh predictor per engine.
func NewBTBEngine(g cache.Geometry, cfg btb.Config, dir pht.Predictor, rasDepth int) *BTBEngine {
	return &BTBEngine{
		base: newBase(g, dir, rasDepth),
		buf:  btb.New(cfg),
	}
}

// BTB exposes the underlying buffer for tests.
func (e *BTBEngine) BTB() *btb.BTB { return e.buf }

// Name implements Engine.
func (e *BTBEngine) Name() string {
	return fmt.Sprintf("%s + %s", e.buf.Config(), e.icache.Geometry())
}

// Reset implements Engine.
func (e *BTBEngine) Reset() {
	e.resetBase()
	e.buf.Reset()
}

// StepBlock implements Engine, batching same-line sequential fetch runs
// (see base.stepBlock).
func (e *BTBEngine) StepBlock(recs []trace.Record) { e.stepBlock(recs, e.Step) }

// StepBlockRuns is StepBlock with the run boundaries precomputed for this
// engine's line size (see base.stepBlockRuns); nil runs falls back to the
// scanning path.
func (e *BTBEngine) StepBlockRuns(recs []trace.Record, runs []uint8) {
	if runs == nil {
		e.stepBlock(recs, e.Step)
		return
	}
	e.stepBlockRuns(recs, runs, e.Step)
}

// Step implements Engine, applying the accounting rules of DESIGN.md §6.
func (e *BTBEngine) Step(rec trace.Record) {
	e.access(rec)
	if !rec.IsBreak() {
		// Non-branches never hit the tagged BTB; the fall-through
		// fetch is always correct.
		return
	}
	e.m.Breaks++

	entry, hit := e.buf.Lookup(rec.PC)

	mfBefore, mpBefore := e.m.Misfetches, e.m.Mispredicts
	switch rec.Kind {
	case isa.CondBranch:
		e.m.CondBranches++
		dirRight := e.dir.Predict(rec.PC) == rec.Taken
		if !dirRight {
			e.m.CondDirWrong++
			e.m.AddMispredict(rec.Kind)
		} else if rec.Taken && !hit {
			// Direction was predicted correctly but the target
			// address was unavailable until decode.
			e.m.AddMisfetch(rec.Kind)
		}
		// A hit entry for a direct conditional always carries the
		// branch's (unique) target, so hit && dirRight && taken is a
		// correct fetch.
		e.dir.Update(rec.PC, rec.Taken)

	case isa.UncondBranch:
		if !hit {
			e.m.AddMisfetch(rec.Kind)
		}

	case isa.Call:
		if !hit {
			e.m.AddMisfetch(rec.Kind)
		}
		e.rstack.Push(rec.PC.Next())

	case isa.IndirectJump:
		switch {
		case !hit:
			// No prediction: the register target is read at
			// decode; the fall-through fetch is discarded.
			e.m.AddMisfetch(rec.Kind)
		case entry.Target != rec.Target:
			// A stale predicted target is only disproved at
			// execute.
			e.m.AddMispredict(rec.Kind)
		}

	case isa.Return:
		top, ok := e.rstack.Pop()
		rasRight := ok && top == rec.Target
		switch {
		case hit && rasRight:
			// Identified as a return, stack correct.
		case !rasRight:
			// The stack value was used (at fetch on a hit, at
			// decode on a miss) and was wrong.
			e.m.AddMispredict(rec.Kind)
		default:
			// Stack right but the instruction was not identified
			// as a return until decode.
			e.m.AddMisfetch(rec.Kind)
		}
	}

	// Optional wrong-path pollution (wrongpath.go): approximate the
	// wrong-path fetch as the predicted target on a hit, the
	// fall-through otherwise.
	if e.pollution.enabled &&
		(e.m.Misfetches > mfBefore || e.m.Mispredicts > mpBefore) {
		wp := rec.PC.Next()
		if hit {
			wp = entry.Target
		}
		e.pollute(wp, e.m.Mispredicts > mpBefore)
	}

	// Only taken branches enter or refresh the BTB (§3).
	if rec.Taken {
		e.buf.RecordTaken(rec.PC, rec.Target, rec.Kind)
	}
}
