package fetch

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// johnsonPredictor implements TargetPredictor for the related-work baseline
// of §6.2: Johnson's cache-successor-index design as used by the TFP (MIPS
// R8000). One successor pointer per four instructions is coupled to each
// cache line and updated on every branch execution to the location
// execution continued at — taken target or fall-through — giving implicit
// one-bit direction prediction. There is no decoupled PHT, no type field,
// and no return stack: every branch follows its pointer when one is valid
// (Traits{CoupledDirection, NoRAS}).
//
// Comparing this predictor with nlsPredictor isolates the paper's two
// improvements over Johnson: updating pointers only on taken branches, and
// decoupling direction prediction into a two-level PHT.
type johnsonPredictor struct {
	store  *core.JohnsonCoupled
	icache *cache.Cache
	// geom mirrors icache.Geometry(), cached so the per-break Lookup does
	// not copy the geometry struct out of the cache on every call.
	geom cache.Geometry

	// The last Lookup's pointer state, retained for WrongPath.
	lastEntry    core.JohnsonEntry
	lastFollowed bool
	// The branch's fetch-time cache slot from the last Lookup, passed to
	// the deferred update as a residency hint.
	lastSet, lastWay int

	// track records which PCs ever wrote a successor pointer, for cause
	// attribution only (nil until a probe enables tracking).
	track trainedSet
}

// Lookup implements TargetPredictor.
func (p *johnsonPredictor) Lookup(rec trace.Record, set, way int, _ bool) Outcome {
	entry := p.store.Lookup(rec.PC, set, way)

	next := rec.Next()
	var correct, followed bool
	if entry.Valid {
		followed = true
		correct = entry.PointsTo(p.icache, next)
	} else {
		correct = next == rec.PC.Next()
	}
	p.lastEntry, p.lastFollowed = entry, followed
	p.lastSet, p.lastWay = set, way

	// The pointer encodes the last direction: pointing at the
	// fall-through location means "predict not taken".
	dirTaken := false
	if rec.Kind == isa.CondBranch {
		g := &p.geom
		fall := rec.PC.Next()
		dirTaken = followed &&
			!(int(entry.Set) == g.SetIndex(fall) && int(entry.Offset) == g.InstrOffset(fall))
	}
	return Outcome{Correct: correct, Followed: followed, DirTaken: dirTaken}
}

// Update implements TargetPredictor: Johnson updates the successor index on
// every branch execution (taken or not), deferring until the successor's
// way is known.
func (p *johnsonPredictor) Update(trace.Record) bool { return true }

// Resolve implements TargetPredictor, completing the deferred successor
// update now that the successor's cache way is known.
func (p *johnsonPredictor) Resolve(rec trace.Record, way int) {
	p.track.mark(rec.PC)
	p.store.UpdateAt(rec.PC, rec.Next(), way, p.lastSet, p.lastWay)
}

// enableTracking implements causeExplainer.
func (p *johnsonPredictor) enableTracking() {
	if p.track == nil {
		p.track = make(trainedSet)
	}
}

// lastCause implements causeExplainer. Johnson's successor pointers are
// line-coupled, so an invalid pointer for a branch that updated one before
// means the line (and its predictor state) was evicted. A followed pointer
// that encoded the wrong direction is the implicit one-bit direction
// predictor's fault (the frontend labels it DirWrong); any other followed
// miss is a stale cache-relative pointer.
func (p *johnsonPredictor) lastCause(rec trace.Record, dirTaken bool) Cause {
	if !p.lastFollowed {
		if p.track.has(rec.PC) {
			return CauseEvictionLoss
		}
		return CauseCold
	}
	if rec.Kind == isa.CondBranch && dirTaken != rec.Taken {
		return CauseNone // frontend labels the implicit direction error
	}
	return CauseStalePointer
}

// WrongPath implements TargetPredictor: the resident line at the followed
// pointer slot, or the fall-through when no pointer was valid.
func (p *johnsonPredictor) WrongPath(rec trace.Record) (isa.Addr, bool) {
	if !p.lastFollowed {
		return rec.PC.Next(), true
	}
	line, ok := p.icache.ResidentAt(int(p.lastEntry.Set), int(p.lastEntry.Way))
	if !ok {
		return 0, false // predicted slot empty: nothing fetched
	}
	g := p.icache.Geometry()
	return isa.Addr(line)*isa.Addr(g.LineBytes()) +
		isa.Addr(int(p.lastEntry.Offset)*isa.InstrBytes), true
}

// Name implements TargetPredictor.
func (p *johnsonPredictor) Name() string { return p.store.Name() }

// SizeBits implements TargetPredictor.
func (p *johnsonPredictor) SizeBits() int { return p.store.SizeBits() }

// Reset implements TargetPredictor.
func (p *johnsonPredictor) Reset() {
	p.store.Reset()
	if p.track != nil {
		clear(p.track)
	}
}

// noDir is a placeholder direction predictor for architectures without one.
type noDir struct{}

func (noDir) Predict(isa.Addr) bool { return false }
func (noDir) Update(isa.Addr, bool) {}
func (noDir) SizeBits() int         { return 0 }
func (noDir) Name() string          { return "none" }
func (noDir) Reset()                {}

// JohnsonEngine is the successor-index baseline: a Frontend driven by a
// johnsonPredictor with no PHT and no RAS.
type JohnsonEngine struct {
	Frontend
}

// NewJohnsonEngine builds the successor-index baseline. The base PHT slot
// is unused (Johnson has no separate direction predictor); the RAS is
// allocated but never consulted.
func NewJohnsonEngine(g cache.Geometry) *JohnsonEngine {
	e := &JohnsonEngine{Frontend: newFrontend(g, noDir{}, 1)}
	e.bind(&johnsonPredictor{
		store:  core.NewJohnson(e.icache),
		icache: e.icache,
		geom:   g,
	}, Traits{CoupledDirection: true, NoRAS: true})
	return e
}
