package fetch

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// JohnsonEngine simulates the related-work baseline of §6.2: Johnson's
// cache-successor-index design as used by the TFP (MIPS R8000). One
// successor pointer per four instructions is coupled to each cache line and
// updated on every branch execution to the location execution continued at
// — taken target or fall-through — giving implicit one-bit direction
// prediction. There is no decoupled PHT, no type field, and no return
// stack: every branch follows its pointer when one is valid.
//
// Comparing this engine with NLSEngine isolates the paper's two
// improvements over Johnson: updating pointers only on taken branches, and
// decoupling direction prediction into a two-level PHT.
type JohnsonEngine struct {
	base
	store *core.JohnsonCoupled

	pending struct {
		active bool
		pc     isa.Addr
		next   isa.Addr
	}
}

// NewJohnsonEngine builds the successor-index baseline. The base PHT slot
// is unused (Johnson has no separate direction predictor); the RAS is
// allocated but never consulted.
func NewJohnsonEngine(g cache.Geometry) *JohnsonEngine {
	e := &JohnsonEngine{base: newBase(g, noDir{}, 1)}
	e.store = core.NewJohnson(e.icache)
	return e
}

// noDir is a placeholder direction predictor for architectures without one.
type noDir struct{}

func (noDir) Predict(isa.Addr) bool { return false }
func (noDir) Update(isa.Addr, bool) {}
func (noDir) SizeBits() int         { return 0 }
func (noDir) Name() string          { return "none" }
func (noDir) Reset()                {}

// Name implements Engine.
func (e *JohnsonEngine) Name() string {
	return fmt.Sprintf("%s + %s", e.store.Name(), e.icache.Geometry())
}

// Reset implements Engine.
func (e *JohnsonEngine) Reset() {
	e.resetBase()
	e.store.Reset()
	e.pending.active = false
}

// StepBlock implements Engine, batching same-line sequential fetch runs
// (see base.stepBlock).
func (e *JohnsonEngine) StepBlock(recs []trace.Record) { e.stepBlock(recs, e.Step) }

// StepBlockRuns is StepBlock with the run boundaries precomputed for this
// engine's line size (see base.stepBlockRuns); nil runs falls back to the
// scanning path.
func (e *JohnsonEngine) StepBlockRuns(recs []trace.Record, runs []uint8) {
	if runs == nil {
		e.stepBlock(recs, e.Step)
		return
	}
	e.stepBlockRuns(recs, runs, e.Step)
}

// Step implements Engine.
func (e *JohnsonEngine) Step(rec trace.Record) {
	_, way := e.access(rec)

	if e.pending.active {
		if e.pending.next == rec.PC {
			e.store.Update(e.pending.pc, e.pending.next, way)
		}
		e.pending.active = false
	}

	if !rec.IsBreak() {
		return
	}
	e.m.Breaks++

	g := e.icache.Geometry()
	set := g.SetIndex(rec.PC)
	entry := e.store.Lookup(rec.PC, set, way)

	next := rec.Next()
	var correct, followedPointer bool
	if entry.Valid {
		followedPointer = true
		correct = entry.PointsTo(e.icache, next)
	} else {
		correct = next == rec.PC.Next()
	}

	switch rec.Kind {
	case isa.CondBranch:
		e.m.CondBranches++
		// The pointer encodes the last direction: pointing at the
		// fall-through location means "predict not taken".
		fall := rec.PC.Next()
		predictedTaken := followedPointer &&
			!(int(entry.Set) == g.SetIndex(fall) && int(entry.Offset) == g.InstrOffset(fall))
		dirRight := predictedTaken == rec.Taken
		if !dirRight {
			e.m.CondDirWrong++
		}
		if !correct {
			if dirRight {
				e.m.AddMisfetch(rec.Kind)
			} else {
				e.m.AddMispredict(rec.Kind)
			}
		}

	case isa.UncondBranch, isa.Call:
		if !correct {
			e.m.AddMisfetch(rec.Kind)
		}

	case isa.IndirectJump, isa.Return:
		// Moving targets with no stack: a wrong pointer is disproved
		// at execute; a missing pointer redirects at decode.
		if !correct {
			if followedPointer {
				e.m.AddMispredict(rec.Kind)
			} else {
				e.m.AddMisfetch(rec.Kind)
			}
		}
	}

	// Johnson updates the successor index on every branch execution
	// (taken or not), deferring until the successor's way is known.
	e.pending.active = true
	e.pending.pc = rec.PC
	e.pending.next = next
}
