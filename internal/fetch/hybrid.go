package fetch

import (
	"fmt"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/trace"
)

// hybridPredictor implements TargetPredictor for the NLS+BTB hybrid the
// ROADMAP sketches: the NLS-table pointer is the primary fetch predictor
// (fast, tag-less, cache-relative), and a small BTB is probed in parallel
// to supply a full target address exactly where full addresses win:
//
//   - an unknown branch (invalid NLS entry) whose target the BTB remembers,
//   - a taken branch whose NLS pointer names a cache slot that no longer
//     holds the target line (the displaced-line misfetch of §7) — the BTB's
//     full address validates the fetched line's tag and redirects, and
//   - a return the RAS cannot serve (stack underflow), where the BTB's
//     stored return address beats predicting nothing.
//
// The arbitration is implementable at fetch time: the NLS type field
// selects the mechanism as in §4, the BTB is read in the same cycle (small
// BTBs are fast, Figure 6), and a BTB hit either fills in for an invalid
// entry or tag-checks the line fetched through the NLS pointer. Direction
// prediction stays in the shared decoupled PHT and return addresses in the
// RAS, per §5.1's methodology.
type hybridPredictor struct {
	table  *core.Table
	buf    *btb.BTB
	icache *cache.Cache
	rstack *ras.Stack

	// The mechanism selected and entries read by the last Lookup,
	// retained for WrongPath.
	lastMode  hybMode
	lastEntry core.Entry
	lastB     btb.Entry
	lastBHit  bool
}

// hybMode is the fetch mechanism the hybrid followed for one break.
type hybMode uint8

const (
	hybFallThrough hybMode = iota // no prediction followed
	hybRAS                        // return served by the return stack
	hybPointer                    // NLS pointer followed (BTB validating)
	hybBTB                        // BTB full-address fallback followed
)

// Lookup implements TargetPredictor.
func (p *hybridPredictor) Lookup(rec trace.Record, set, way int, dirTaken bool) Outcome {
	entry := p.table.Lookup(rec.PC)
	bentry, bhit := p.buf.Lookup(rec.PC)

	// Select the fetch mechanism: the NLS type field first (§4), the BTB
	// filling in where the table predicts nothing it can act on.
	var mode hybMode
	switch entry.Type {
	case core.TypeInvalid:
		if bhit {
			mode = hybBTB
		} else {
			mode = hybFallThrough
		}
	case core.TypeReturn:
		if _, ok := p.rstack.Top(); ok {
			mode = hybRAS
		} else if bhit {
			mode = hybBTB // RAS underflow: the BTB's full address steps in
		} else {
			mode = hybFallThrough
		}
	case core.TypeCond:
		if dirTaken {
			mode = hybPointer
		} else {
			mode = hybFallThrough
		}
	case core.TypeOther:
		mode = hybPointer
	}
	p.lastMode, p.lastEntry, p.lastB, p.lastBHit = mode, entry, bentry, bhit

	next := rec.Next()
	var correct, followed bool
	switch mode {
	case hybFallThrough:
		correct = next == rec.PC.Next()
	case hybRAS:
		top, ok := p.rstack.Top()
		correct = ok && top == next
	case hybPointer:
		// The NLS pointer is followed; a parallel BTB hit tag-checks the
		// fetched line against its full address, so a displaced target
		// line is caught and redirected when the BTB knows the target.
		correct = entry.PointsTo(p.icache, next) || (bhit && bentry.Target == next)
		followed = true
	case hybBTB:
		followed = true
		switch rec.Kind {
		case isa.CondBranch:
			// A hit entry for a direct conditional carries its unique
			// target, so the fetch is right iff the direction was.
			correct = dirTaken == rec.Taken
		case isa.UncondBranch, isa.Call:
			correct = true
		case isa.IndirectJump:
			correct = bentry.Target == rec.Target
		case isa.Return:
			// Identified as a return: the RAS supplies the address when
			// it can, the BTB's last-seen return address otherwise.
			if top, ok := p.rstack.Top(); ok {
				correct = top == rec.Target
			} else {
				correct = bentry.Target == rec.Target
			}
		}
	}
	return Outcome{Correct: correct, Followed: followed}
}

// Update implements TargetPredictor: both halves train on every resolved
// break — the table's type field always, its pointer (deferred until the
// successor's way is known) and the BTB entry for taken branches.
func (p *hybridPredictor) Update(rec trace.Record) bool {
	if rec.Taken {
		p.buf.RecordTaken(rec.PC, rec.Target, rec.Kind)
		return true
	}
	p.table.Update(rec.PC, rec.Kind, false, 0, 0)
	return false
}

// Resolve implements TargetPredictor, completing the deferred taken-branch
// pointer update.
func (p *hybridPredictor) Resolve(rec trace.Record, way int) {
	p.table.Update(rec.PC, rec.Kind, true, rec.Target, way)
}

// enableTracking implements causeExplainer. The hybrid needs no shadow
// state: its table half is tag-less (a written entry never invalidates, so
// eviction loss is structurally impossible), and an invalid table entry
// implies the branch never trained — which also means its taken target never
// entered the BTB half.
func (p *hybridPredictor) enableTracking() {}

// lastCause implements causeExplainer, explaining the last Lookup's miss
// from the mechanism the hybrid followed. Decoupled direction errors never
// reach here (the frontend claims them first).
func (p *hybridPredictor) lastCause(rec trace.Record, _ bool) Cause {
	switch p.lastMode {
	case hybFallThrough:
		if p.lastEntry.Type == core.TypeInvalid {
			return CauseCold
		}
		// An aliased entry chose fall-through for a taken break.
		return CauseStalePointer
	case hybRAS, hybPointer:
		// hybRAS only reaches here for a non-return an aliased entry
		// routed to the stack (a return served wrong is the frontend's
		// RASMiss); hybPointer is a stale cache-relative pointer.
		return CauseStalePointer
	case hybBTB:
		return CauseWrongTarget
	}
	return CauseNone
}

// WrongPath implements TargetPredictor: the address actually fetched by the
// mechanism the hybrid followed.
func (p *hybridPredictor) WrongPath(rec trace.Record) (isa.Addr, bool) {
	switch p.lastMode {
	case hybFallThrough:
		return rec.PC.Next(), true
	case hybRAS:
		if top, ok := p.rstack.Top(); ok {
			return top, true
		}
		return rec.PC.Next(), true
	case hybBTB:
		return p.lastB.Target, true
	case hybPointer:
		if p.lastBHit {
			return p.lastB.Target, true // BTB validation redirected here
		}
		line, ok := p.icache.ResidentAt(int(p.lastEntry.Set), int(p.lastEntry.Way))
		if !ok {
			return 0, false // predicted slot empty: nothing fetched
		}
		g := p.icache.Geometry()
		return isa.Addr(line)*isa.Addr(g.LineBytes()) +
			isa.Addr(int(p.lastEntry.Offset)*isa.InstrBytes), true
	}
	return 0, false
}

// Name implements TargetPredictor.
func (p *hybridPredictor) Name() string {
	return fmt.Sprintf("%d NLS+%d BTB hybrid", p.table.Len(), p.buf.Config().Entries)
}

// SizeBits implements TargetPredictor: both halves count toward the
// equal-cost comparison.
func (p *hybridPredictor) SizeBits() int { return p.table.SizeBits() + p.buf.SizeBits() }

// Reset implements TargetPredictor.
func (p *hybridPredictor) Reset() {
	p.table.Reset()
	p.buf.Reset()
}

// HybridEngine is the NLS+BTB hybrid architecture: a Frontend driven by a
// hybridPredictor.
type HybridEngine struct {
	Frontend
}

// NewHybridEngine builds the hybrid fetch architecture: an NLS-table with
// tableEntries entries backed by a BTB of cfg, sharing the frontend's
// decoupled PHT and RAS. dir is shared-use: pass a fresh predictor per
// engine.
func NewHybridEngine(g cache.Geometry, tableEntries int, cfg btb.Config, dir pht.Directional, rasDepth int) *HybridEngine {
	e := &HybridEngine{Frontend: newFrontend(g, dir, rasDepth)}
	e.bind(&hybridPredictor{
		table:  core.NewTable(tableEntries, g),
		buf:    btb.New(cfg),
		icache: e.icache,
		rstack: e.rstack,
	}, Traits{})
	return e
}
