package fetch

import (
	"strconv"

	"repro/internal/cache"
	"repro/internal/isa"
)

// The fetch.Prefetcher protocol (DESIGN.md §14) mirrors the Probe contract:
// a nil-check fast path when detached, zero mutation of frontend state when
// attached. A prefetcher observes the two streams the decoupled pipeline
// exposes — the fetch stage's demand accesses and the BPU's FTQ pushes —
// and turns them into cache.Prefetch calls; all fill/MSHR modeling lives in
// internal/cache, so a prefetcher is pure policy.

// Prefetcher is a pluggable i-cache prefetch policy attached to a Frontend.
type Prefetcher interface {
	// OnAccess observes one demand fetch-block access (called once per
	// cache-line transition of the fetch stage, not per instruction), with
	// the access outcome.
	OnAccess(pc isa.Addr, hit bool)
	// OnFTQPush observes the BPU queueing one predicted fetch-block
	// address, ahead of the fetch stage.
	OnFTQPush(addr isa.Addr)
	// Name identifies the policy, e.g. "next-line x1" or "fdip".
	Name() string
	// Reset restores the initial state.
	Reset()
}

// PrefetchAttacher is implemented by engines whose frontend supports
// prefetching (every Frontend-based engine). arch.Spec.Build uses it to
// wire a validated PrefetchSpec without knowing the concrete engine type.
type PrefetchAttacher interface {
	AttachPrefetcher(Prefetcher)
	SetFTQDepth(int)
	ICache() *cache.Cache
}

// NextLinePrefetcher is the classic sequential policy (the ChampSim
// next-line baseline): every demand fetch-block access triggers prefetches
// of the next `degree` sequential lines. It ignores the FTQ stream and
// works with FTQ depth 0.
type NextLinePrefetcher struct {
	c         *cache.Cache
	lineBytes isa.Addr
	degree    int
}

// NewNextLinePrefetcher builds a next-line policy issuing `degree`
// sequential line prefetches per fetch-block access against c.
func NewNextLinePrefetcher(c *cache.Cache, degree int) *NextLinePrefetcher {
	return &NextLinePrefetcher{
		c:         c,
		lineBytes: isa.Addr(c.Geometry().LineBytes()),
		degree:    degree,
	}
}

// OnAccess implements Prefetcher: prefetch the `degree` lines sequentially
// following the accessed block, hit or miss (a pure next-line stream keeps
// the prefetcher one line ahead even while the demand stream hits).
func (p *NextLinePrefetcher) OnAccess(pc isa.Addr, hit bool) {
	for d := 1; d <= p.degree; d++ {
		p.c.Prefetch(pc + isa.Addr(d)*p.lineBytes)
	}
}

// OnFTQPush implements Prefetcher; the next-line policy ignores the BPU.
func (p *NextLinePrefetcher) OnFTQPush(isa.Addr) {}

// Name implements Prefetcher.
func (p *NextLinePrefetcher) Name() string {
	if p.degree == 1 {
		return "next-line"
	}
	return "next-line x" + strconv.Itoa(p.degree)
}

// Reset implements Prefetcher (the policy is stateless).
func (p *NextLinePrefetcher) Reset() {}

// FDIPPrefetcher is fetch-directed instruction prefetching: the predicted
// fetch-block addresses the BPU queues into the FTQ are prefetched the
// moment they are queued, so the prefetch lead equals however far the BPU
// runs ahead of fetch (bounded by the FTQ depth). It requires a decoupled
// frontend with FTQ depth >= 1; it ignores the demand stream.
type FDIPPrefetcher struct {
	c *cache.Cache
}

// NewFDIPPrefetcher builds the FDIP policy against c.
func NewFDIPPrefetcher(c *cache.Cache) *FDIPPrefetcher {
	return &FDIPPrefetcher{c: c}
}

// OnAccess implements Prefetcher; FDIP is driven by the BPU, not demand.
func (p *FDIPPrefetcher) OnAccess(isa.Addr, bool) {}

// OnFTQPush implements Prefetcher: prefetch every predicted fetch block as
// it enters the queue.
func (p *FDIPPrefetcher) OnFTQPush(addr isa.Addr) { p.c.Prefetch(addr) }

// Name implements Prefetcher.
func (p *FDIPPrefetcher) Name() string { return "fdip" }

// Reset implements Prefetcher (the policy is stateless).
func (p *FDIPPrefetcher) Reset() {}
