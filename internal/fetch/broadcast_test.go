package fetch

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/pht"
	"repro/internal/trace"
	"repro/internal/workload"
)

// broadcastEngines builds one engine of each architecture on a shared
// geometry, twice: a broadcast set and a per-engine oracle set.
func broadcastEngines() (bcast, oracle []Engine) {
	g := cache.MustGeometry(8*1024, 32, 1)
	mk := func() []Engine {
		return []Engine{
			NewNLSTableEngine(g, 512, pht.NewGShare(1024, 6), 32),
			NewNLSCacheEngine(g, 2, pht.NewGShare(1024, 6), 32),
			NewBTBEngine(g, btb.Config{Entries: 128, Assoc: 1}, pht.NewGShare(1024, 6), 32),
			NewCoupledBTBEngine(g, btb.Config{Entries: 128, Assoc: 4}, 32),
			NewJohnsonEngine(g),
		}
	}
	return mk(), mk()
}

// TestBroadcastMatchesRun: replaying a chunked trace once through Broadcast
// leaves every engine with exactly the counters the per-record Run path
// produces, at any worker count.
func TestBroadcastMatchesRun(t *testing.T) {
	tr := workload.Li().MustTrace(60_000)
	chunked := trace.Chunk(tr, 1024)

	for _, workers := range []int{0, 1, 2, 3, 16} {
		bcast, oracle := broadcastEngines()
		n := BroadcastWorkers(chunked.Chunks(), workers, bcast...)
		if n != int64(tr.Len()) {
			t.Fatalf("workers=%d: replayed %d records, want %d", workers, n, tr.Len())
		}
		for i, e := range oracle {
			want := *Run(e, tr)
			got := *bcast[i].Counters()
			if got != want {
				t.Errorf("workers=%d engine %s: counters diverge\n got %+v\nwant %+v",
					workers, bcast[i].Name(), got, want)
			}
		}
	}
}

// TestBroadcastRunsAnnotated: a ChunksRuns source (shared precomputed run
// annotations) is bit-identical to the plain replay at any worker count —
// the broadcaster routes matching-line-size engines through StepBlockRuns.
func TestBroadcastRunsAnnotated(t *testing.T) {
	tr := workload.Li().MustTrace(60_000)
	chunked := trace.Chunk(tr, 1024)

	for _, workers := range []int{1, 3} {
		bcast, oracle := broadcastEngines()
		n := BroadcastWorkers(chunked.ChunksRuns(32), workers, bcast...)
		if n != int64(tr.Len()) {
			t.Fatalf("workers=%d: replayed %d records, want %d", workers, n, tr.Len())
		}
		for i, e := range oracle {
			want := *Run(e, tr)
			if got := *bcast[i].Counters(); got != want {
				t.Errorf("workers=%d engine %s: annotated counters diverge\n got %+v\nwant %+v",
					workers, bcast[i].Name(), got, want)
			}
		}
	}
}

// TestStepBlockRunsMatchesStepBlock: the precomputed-run replay path is
// exactly the scanning path (and a plain Step loop) for every engine, with
// and without an annotation.
func TestStepBlockRunsMatchesStepBlock(t *testing.T) {
	tr := workload.Groff().MustTrace(30_000)
	chunked := trace.Chunk(tr, 1000)
	runs := chunked.RunLens(32)

	bcast, oracle := broadcastEngines()
	for i := range bcast {
		re, ok := bcast[i].(interface {
			StepBlockRuns(recs []trace.Record, runs []uint8)
		})
		if !ok {
			t.Fatalf("engine %s does not implement StepBlockRuns", bcast[i].Name())
		}
		for bi := 0; bi < chunked.NumChunks(); bi++ {
			if bi%2 == 0 {
				re.StepBlockRuns(chunked.Block(bi), runs[bi])
			} else {
				re.StepBlockRuns(chunked.Block(bi), nil) // fallback path
			}
		}
		want := *Run(oracle[i], tr)
		if got := *bcast[i].Counters(); got != want {
			t.Errorf("engine %s: StepBlockRuns diverges from Step", bcast[i].Name())
		}
	}
}

// TestBroadcastStreaming: a streaming source (no materialized trace)
// broadcast to several engines matches the materialized replay.
func TestBroadcastStreaming(t *testing.T) {
	const n = 60_000
	spec := workload.Espresso()
	tr := spec.MustTrace(n)
	src, err := spec.Source()
	if err != nil {
		t.Fatal(err)
	}

	bcast, oracle := broadcastEngines()
	got := BroadcastWorkers(trace.NewSourceChunks(src, n, 512), 2, bcast...)
	if got != n {
		t.Fatalf("streamed %d records, want %d", got, n)
	}
	for i, e := range oracle {
		want := *Run(e, tr)
		if g := *bcast[i].Counters(); g != want {
			t.Errorf("engine %s: streamed counters diverge from materialized", bcast[i].Name())
		}
	}
}

// TestBroadcastNoEngines: with no engines the source must not be consumed.
func TestBroadcastNoEngines(t *testing.T) {
	tr := trace.Chunk(workload.Li().MustTrace(2_000), 256)
	it := tr.Chunks()
	if n := Broadcast(it); n != 0 {
		t.Fatalf("replayed %d records with no engines", n)
	}
	if blk := it.NextChunk(); len(blk) != 256 {
		t.Fatalf("source was consumed: first chunk now %d records", len(blk))
	}
}

// TestStepBlockMatchesStep: StepBlock is exactly a Step loop for every
// engine.
func TestStepBlockMatchesStep(t *testing.T) {
	tr := workload.Groff().MustTrace(30_000)
	bcast, oracle := broadcastEngines()
	for i := range bcast {
		// Feed via StepBlock in uneven slices to cross block sizes.
		recs := tr.Records
		for len(recs) > 0 {
			k := 777
			if k > len(recs) {
				k = len(recs)
			}
			bcast[i].StepBlock(recs[:k])
			recs = recs[k:]
		}
		want := *Run(oracle[i], tr)
		if got := *bcast[i].Counters(); got != want {
			t.Errorf("engine %s: StepBlock diverges from Step", bcast[i].Name())
		}
	}
}
