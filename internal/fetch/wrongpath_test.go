package fetch

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/trace"
)

// nlsUnderTest returns an NLS-table engine plus its predictor, for driving
// the TargetPredictor protocol directly in scripted scenarios.
func nlsUnderTest() (*NLSEngine, *nlsPredictor[tableStore]) {
	e := NewNLSTableEngine(smallGeom(), 256, pht.NewGShare(512, 0), 8)
	return e, e.bpu.tp.(*nlsPredictor[tableStore])
}

// TestWrongPathFallThrough: with no NLS entry (or a not-taken direction
// prediction) the hardware fetches sequentially, so the wrong path is the
// fall-through address.
func TestWrongPathFallThrough(t *testing.T) {
	_, p := nlsUnderTest()
	rec := trace.Record{PC: 0x1000, Kind: isa.CondBranch, Taken: true, Target: 0x2000}
	out := p.Lookup(rec, 0, 0, false)
	if out.Correct {
		t.Fatal("invalid entry predicted a taken branch correctly")
	}
	addr, ok := p.WrongPath(rec)
	if !ok || addr != rec.PC.Next() {
		t.Errorf("fall-through wrong path = %#x, %v; want %#x, true", addr, ok, rec.PC.Next())
	}
}

// TestWrongPathRASTop: a return-typed entry selects the return stack, so
// the wrong path is whatever address its top holds.
func TestWrongPathRASTop(t *testing.T) {
	e, p := nlsUnderTest()
	rec := trace.Record{PC: 0x1000, Kind: isa.Return, Taken: true, Target: 0x2000}
	p.store.update(rec.PC, isa.Return, true, rec.Target, 0, 0, 0)
	e.rstack.Push(0x3000)
	out := p.Lookup(rec, 0, 0, false)
	if out.Correct {
		t.Fatal("stale RAS top counted as correct")
	}
	addr, ok := p.WrongPath(rec)
	if !ok || addr != 0x3000 {
		t.Errorf("RAS wrong path = %#x, %v; want 0x3000, true", addr, ok)
	}
}

// TestWrongPathRASEmpty: with an empty return stack the RAS mechanism has
// no address to supply, and fetch falls through sequentially.
func TestWrongPathRASEmpty(t *testing.T) {
	_, p := nlsUnderTest()
	rec := trace.Record{PC: 0x1000, Kind: isa.Return, Taken: true, Target: 0x2000}
	p.store.update(rec.PC, isa.Return, true, rec.Target, 0, 0, 0)
	if out := p.Lookup(rec, 0, 0, false); out.Correct {
		t.Fatal("empty RAS counted as correct")
	}
	addr, ok := p.WrongPath(rec)
	if !ok || addr != rec.PC.Next() {
		t.Errorf("empty-RAS wrong path = %#x, %v; want %#x, true", addr, ok, rec.PC.Next())
	}
}

// TestWrongPathResidentPointer: a stale pointer fetches whatever line now
// sits in the predicted cache slot — here, the slot still holds the old
// target while the branch has moved on.
func TestWrongPathResidentPointer(t *testing.T) {
	e, p := nlsUnderTest()
	oldTarget := isa.Addr(0x2000)
	_, way := e.icache.Access(oldTarget)
	rec := trace.Record{PC: 0x1000, Kind: isa.UncondBranch, Taken: true, Target: 0x2800}
	p.store.update(rec.PC, isa.UncondBranch, true, oldTarget, way, 0, 0)
	out := p.Lookup(rec, 0, 0, true)
	if out.Correct || !out.Followed {
		t.Fatalf("stale pointer outcome = %+v; want followed and wrong", out)
	}
	addr, ok := p.WrongPath(rec)
	if !ok || addr != oldTarget {
		t.Errorf("pointer wrong path = %#x, %v; want %#x, true", addr, ok, oldTarget)
	}
}

// TestWrongPathEmptySlot: a pointer into a cache slot that holds no line
// fetches nothing — WrongPath reports no address.
func TestWrongPathEmptySlot(t *testing.T) {
	_, p := nlsUnderTest()
	rec := trace.Record{PC: 0x1000, Kind: isa.UncondBranch, Taken: true, Target: 0x2000}
	p.store.update(rec.PC, isa.UncondBranch, true, rec.Target, 0, 0, 0) // cache never touched
	if out := p.Lookup(rec, 0, 0, true); out.Correct {
		t.Fatal("pointer into an empty cache counted as correct")
	}
	if addr, ok := p.WrongPath(rec); ok {
		t.Errorf("empty-slot wrong path = %#x, true; want none", addr)
	}
}

// TestPolluteMispredictDoubleTouch: a misfetch's one-cycle shadow touches
// the first wrong-path line only; a mispredict's deeper shadow also streams
// the sequential successor line.
func TestPolluteMispredictDoubleTouch(t *testing.T) {
	e, _ := nlsUnderTest()
	line := isa.Addr(e.icache.Geometry().LineBytes())

	before := e.icache.Accesses()
	e.pollute(0x2000, false)
	if got := e.icache.Accesses() - before; got != 1 {
		t.Errorf("misfetch pollute touched %d lines; want 1", got)
	}
	if _, resident := e.icache.Contains(0x2000); !resident {
		t.Error("misfetch pollute did not fetch the wrong-path line")
	}
	if _, resident := e.icache.Contains(0x2000 + line); resident {
		t.Error("misfetch pollute streamed past the first line")
	}

	before = e.icache.Accesses()
	e.pollute(0x4000, true)
	if got := e.icache.Accesses() - before; got != 2 {
		t.Errorf("mispredict pollute touched %d lines; want 2", got)
	}
	for _, a := range []isa.Addr{0x4000, 0x4000 + line} {
		if _, resident := e.icache.Contains(a); !resident {
			t.Errorf("mispredict pollute left %#x non-resident", a)
		}
	}
}
