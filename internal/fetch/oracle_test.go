package fetch

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestReplayPlanPartitioning: the broadcast planner groups exactly the
// engines whose cache state is a pure function of the trace — pollution-on
// engines, probed engines, and engines alone in their geometry must all
// keep the private-cache path (DESIGN.md §11).
func TestReplayPlanPartitioning(t *testing.T) {
	g1 := cache.MustGeometry(8*1024, 32, 1)
	g2 := cache.MustGeometry(4*1024, 16, 2)
	mk := func(g cache.Geometry) *NLSEngine {
		return NewNLSTableEngine(g, 512, pht.NewGShare(1024, 6), 32)
	}

	eligibleA := mk(g1)
	polluted := mk(g1)
	polluted.SetWrongPathPollution(true)
	eligibleB := NewJohnsonEngine(g1)
	probed := mk(g1)
	probed.AttachProbe(&collectProbe{})
	lone := mk(g2) // eligible, but a singleton group is pure overhead
	prefetched := mk(g1)
	prefetched.ICache().EnablePrefetch(8, 20)
	prefetched.SetFTQDepth(8)
	prefetched.AttachPrefetcher(NewFDIPPrefetcher(prefetched.ICache()))

	for _, e := range []interface {
		OracleGroup() (cache.Geometry, bool)
	}{eligibleA, eligibleB, lone} {
		if _, ok := e.OracleGroup(); !ok {
			t.Fatal("clean engine reported ineligible for oracle sharing")
		}
	}
	if _, ok := polluted.OracleGroup(); ok {
		t.Error("pollution-on engine reported eligible for oracle sharing")
	}
	if _, ok := probed.OracleGroup(); ok {
		t.Error("probed engine reported eligible for oracle sharing")
	}
	if _, ok := prefetched.OracleGroup(); ok {
		t.Error("prefetching engine reported eligible for oracle sharing")
	}

	engines := []Engine{eligibleA, polluted, eligibleB, probed, lone, prefetched}
	src := trace.Chunk(workload.Li().MustTrace(1_000), 256)
	_, private, groups := replayPlan(src.Chunks(), engines)

	if len(groups) != 1 {
		t.Fatalf("got %d oracle groups, want 1", len(groups))
	}
	grp := groups[0]
	if grp.oracle.Geometry() != g1 {
		t.Errorf("group oracle geometry %v, want %v", grp.oracle.Geometry(), g1)
	}
	if len(grp.members) != 2 || grp.members[0].idx != 0 || grp.members[1].idx != 2 {
		t.Errorf("group members %v, want engine indices [0 2]", grp.members)
	}
	// polluted, probed, the prefetching engine, and the demoted singleton
	// replay privately.
	if len(private) != 4 {
		t.Errorf("got %d private engines, want 4 (polluted, probed, singleton, prefetched)", len(private))
	}

	// Detaching the probe, the prefetcher (with its FTQ), and disabling
	// pollution restores full grouping: only the singleton stays private.
	polluted.SetWrongPathPollution(false)
	probed.AttachProbe(nil)
	prefetched.AttachPrefetcher(nil)
	prefetched.SetFTQDepth(0)
	_, private, groups = replayPlan(src.Chunks(), engines)
	if len(groups) != 1 || len(groups[0].members) != 5 || len(private) != 1 {
		t.Errorf("after detach: %d groups / %d members / %d private, want 1/5/1",
			len(groups), len(groups[0].members), len(private))
	}
}

// TestBroadcastMixedEligibility: a broadcast over engines mixing geometries,
// wrong-path pollution, and attached probes — so grouped, fallback, and
// singleton paths all run in one replay — is counter-for-counter identical
// to the per-engine Run path, at any worker count, with and without shared
// run annotations.
func TestBroadcastMixedEligibility(t *testing.T) {
	g1 := cache.MustGeometry(8*1024, 32, 1)
	g2 := cache.MustGeometry(4*1024, 16, 2)
	mkSet := func() []Engine {
		polluted := NewBTBEngine(g1, btb.Config{Entries: 128, Assoc: 1}, pht.NewGShare(1024, 6), 32)
		polluted.SetWrongPathPollution(true)
		probed := NewNLSCacheEngine(g1, 2, pht.NewGShare(1024, 6), 32)
		probed.AttachProbe(&collectProbe{})
		prefetched := NewNLSTableEngine(g1, 512, pht.NewGShare(1024, 6), 32)
		prefetched.ICache().EnablePrefetch(8, 20)
		prefetched.SetFTQDepth(8)
		prefetched.AttachPrefetcher(NewFDIPPrefetcher(prefetched.ICache()))
		return []Engine{
			NewNLSTableEngine(g1, 512, pht.NewGShare(1024, 6), 32), // grouped (g1)
			polluted,             // private: pollution forks cache state
			NewJohnsonEngine(g1), // grouped (g1)
			probed,               // private: probe attached
			NewJohnsonEngine(g2), // grouped (g2)
			NewNLSTableEngine(g2, 512, pht.NewGShare(1024, 6), 32), // grouped (g2)
			prefetched, // private: decoupled frontend prefetches
		}
	}

	tr := workload.Li().MustTrace(60_000)
	chunked := trace.Chunk(tr, 1024)
	sources := map[string]func() trace.ChunkSource{
		"plain": func() trace.ChunkSource { return chunked.Chunks() },
		"runs":  func() trace.ChunkSource { return chunked.ChunksRuns(32) },
	}
	// The prefetched engine's independent oracle replays the identical
	// chunking (its FTQ lookahead is bounded by the replay block, so
	// per-record Step is a different — also correct — configuration).
	oracleRun := func(i int, e Engine) metrics.Counters {
		if _, ok := e.(PrefetchAttacher); ok && i == 6 {
			return *RunChunks(e, chunked.Chunks())
		}
		return *Run(e, tr)
	}
	for name, mkSrc := range sources {
		for _, workers := range []int{1, 3} {
			bcast, oracle := mkSet(), mkSet()
			n := BroadcastWorkers(mkSrc(), workers, bcast...)
			if n != int64(tr.Len()) {
				t.Fatalf("%s workers=%d: replayed %d records, want %d", name, workers, n, tr.Len())
			}
			for i, e := range oracle {
				want := oracleRun(i, e)
				if got := *bcast[i].Counters(); got != want {
					t.Errorf("%s workers=%d engine %s: counters diverge\n got %+v\nwant %+v",
						name, workers, bcast[i].Name(), got, want)
				}
			}
		}
	}
}

// TestStepBlockAnnotatedLongRun: a straight-line run longer than the uint8
// RunLens cap (255) continues under a new leader; the oracle-annotated
// replay must agree with the per-record path across that boundary. 2048-byte
// lines hold 512 instructions, so one line spans two run segments.
func TestStepBlockAnnotatedLongRun(t *testing.T) {
	g := cache.MustGeometry(8*1024, 2048, 1)
	b := newTB(0x4000)
	for i := 0; i < 3; i++ {
		b.plain(400) // crosses the 255-cap inside one line
		b.br(isa.UncondBranch, true, b.pc+4*500)
	}
	b.plain(400)
	tr := b.trace(t)
	chunked := trace.Chunk(tr, 600) // runs also truncate at block boundaries

	mk := func() []Engine {
		return []Engine{
			NewNLSTableEngine(g, 512, pht.NewGShare(1024, 6), 32),
			NewJohnsonEngine(g),
		}
	}
	for name, src := range map[string]trace.ChunkSource{
		"plain": chunked.Chunks(),
		"runs":  chunked.ChunksRuns(2048),
	} {
		bcast, oracle := mk(), mk()
		BroadcastWorkers(src, 1, bcast...)
		for i, e := range oracle {
			want := *Run(e, tr)
			if got := *bcast[i].Counters(); got != want {
				t.Errorf("%s engine %s: counters diverge across 255-run boundary\n got %+v\nwant %+v",
					name, bcast[i].Name(), got, want)
			}
		}
	}
}

// recordingTP is a scripted TargetPredictor that defers every Update and
// records the Resolve calls it receives.
type recordingTP struct {
	resolved []struct {
		rec trace.Record
		way int
	}
}

func (p *recordingTP) Lookup(rec trace.Record, set, way int, dirTaken bool) Outcome {
	return Outcome{Correct: true}
}
func (p *recordingTP) Update(rec trace.Record) bool { return true }
func (p *recordingTP) Resolve(rec trace.Record, way int) {
	p.resolved = append(p.resolved, struct {
		rec trace.Record
		way int
	}{rec, way})
}
func (p *recordingTP) WrongPath(rec trace.Record) (isa.Addr, bool) { return 0, false }
func (p *recordingTP) Name() string                                { return "recording" }
func (p *recordingTP) SizeBits() int                               { return 0 }
func (p *recordingTP) Reset()                                      { p.resolved = nil }

// TestPendingResolveGuard: a deferred predictor update is resolved only by
// the break's actual successor. On well-chained input the next record IS
// the successor and Resolve fires with its cache way; on non-chained input
// (rec.PC != pending.rec.Next()) the guard must drop the update without
// calling Resolve — and the pending slot must clear either way.
func TestPendingResolveGuard(t *testing.T) {
	br := trace.Record{PC: 0x1000, Kind: isa.UncondBranch, Taken: true, Target: 0x2000}

	t.Run("chained", func(t *testing.T) {
		tp := &recordingTP{}
		f := newFrontend(smallGeom(), pht.Static{}, 8)
		f.bind(tp, Traits{})
		f.Step(br)
		f.Step(trace.Record{PC: br.Next(), Kind: isa.NonBranch})
		if len(tp.resolved) != 1 {
			t.Fatalf("got %d Resolve calls, want 1", len(tp.resolved))
		}
		got := tp.resolved[0]
		if got.rec.PC != br.PC {
			t.Errorf("resolved record PC %#x, want %#x", got.rec.PC, br.PC)
		}
		if w, hit := f.icache.Probe(br.Next()); !hit || got.way != w {
			t.Errorf("resolved way %d, want successor's resident way %d (hit=%v)", got.way, w, hit)
		}
		if f.pending.active {
			t.Error("pending update still active after resolve")
		}
	})

	t.Run("non-chained", func(t *testing.T) {
		tp := &recordingTP{}
		f := newFrontend(smallGeom(), pht.Static{}, 8)
		f.bind(tp, Traits{})
		f.Step(br)
		f.Step(trace.Record{PC: 0x3000, Kind: isa.NonBranch}) // not br.Next()
		if len(tp.resolved) != 0 {
			t.Fatalf("Resolve called %d times on non-chained successor, want 0", len(tp.resolved))
		}
		if f.pending.active {
			t.Error("pending update not cleared by non-chained record")
		}
		// The dropped update must not leak onto a later chained pair.
		f.Step(trace.Record{PC: 0x3004, Kind: isa.NonBranch})
		if len(tp.resolved) != 0 {
			t.Errorf("stale pending update resolved later: %d calls", len(tp.resolved))
		}
	})
}
