package fetch

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/pht"
	"repro/internal/trace"
	"repro/internal/workload"
)

// pipelineEngines builds one engine set spanning several geometries, so
// the pipelined annotator runs multiple per-geometry oracle passes
// concurrently (one goroutine each) for every chunk.
func pipelineEngines() []Engine {
	var engines []Engine
	for _, g := range []cache.Geometry{
		cache.MustGeometry(4*1024, 32, 1),
		cache.MustGeometry(8*1024, 32, 2),
		cache.MustGeometry(16*1024, 32, 4),
	} {
		engines = append(engines,
			NewNLSTableEngine(g, 512, pht.NewGShare(1024, 6), 32),
			NewNLSCacheEngine(g, 2, pht.NewGShare(1024, 6), 32),
			NewBTBEngine(g, btb.Config{Entries: 128, Assoc: 1}, pht.NewGShare(1024, 6), 32),
			NewJohnsonEngine(g),
		)
	}
	return engines
}

// runSequential replays the chunked trace on a fresh engine set through the
// workers=1 path with the pipeline gate forced to the given state, and
// returns the engines for counter comparison.
func runSequential(t *testing.T, chunked *trace.Chunked, pipelined bool, want int64) []Engine {
	t.Helper()
	defer func(old bool) { broadcastPipeline = old }(broadcastPipeline)
	broadcastPipeline = pipelined
	engines := pipelineEngines()
	if n := BroadcastWorkers(chunked.ChunksRuns(LineBytesOf(engines)), 1, engines...); n != want {
		t.Fatalf("pipelined=%v replayed %d records, want %d", pipelined, n, want)
	}
	return engines
}

// LineBytesOf returns the engines' common line size for the shared run
// annotation (all pipelineEngines geometries use one line size).
func LineBytesOf(engines []Engine) int {
	return engines[0].(interface{ ICache() *cache.Cache }).ICache().Geometry().LineBytes()
}

// TestPipelinedBroadcastMatchesInline forces the double-buffered
// annotation pipeline on and checks the replay leaves every engine with
// counters bit-identical to the inline sequential path, across workloads.
func TestPipelinedBroadcastMatchesInline(t *testing.T) {
	for _, spec := range workload.All() {
		tr := spec.MustTrace(30_000)
		chunked := trace.Chunk(tr, 1024)
		want := int64(tr.Len())
		inline := runSequential(t, chunked, false, want)
		piped := runSequential(t, chunked, true, want)
		for i := range inline {
			if got, wantC := *piped[i].Counters(), *inline[i].Counters(); got != wantC {
				t.Errorf("%s on %s: pipelined counters diverge from inline\n got %+v\nwant %+v",
					piped[i].Name(), spec.Name, got, wantC)
			}
		}
	}
}

// BenchmarkBroadcastOraclePipeline compares the inline sequential replay
// against the double-buffered annotation pipeline on a multi-geometry
// engine set (three oracle groups annotating concurrently, one chunk
// ahead of the replay). On a single-core host the two are expected to tie
// — the pipeline buys wall time only when annotator goroutines can run
// beside the replaying main goroutine.
func BenchmarkBroadcastOraclePipeline(b *testing.B) {
	tr := workload.Gcc().MustTrace(300_000)
	chunked := trace.Chunk(tr, trace.DefaultChunkRecords)
	for _, mode := range []struct {
		name      string
		pipelined bool
	}{{"inline", false}, {"pipelined", true}} {
		b.Run(mode.name, func(b *testing.B) {
			defer func(old bool) { broadcastPipeline = old }(broadcastPipeline)
			broadcastPipeline = mode.pipelined
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engines := pipelineEngines()
				n := BroadcastWorkers(chunked.ChunksRuns(LineBytesOf(engines)), 1, engines...)
				if n != int64(tr.Len()) {
					b.Fatalf("replayed %d records, want %d", n, tr.Len())
				}
			}
			steps := float64(len(pipelineEngines())) * float64(tr.Len()) * float64(b.N)
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(steps/s/1e6, "Mstep/s")
			}
		})
	}
}

// TestStressPipelinedAnnBufReuse hammers the double-buffered pipeline
// under randomized workloads and chunk sizes while a churner goroutine
// recycles trace annotation buffers through the shared pools as fast as it
// can, poisoning every buffer it touches. If the pipeline ever released a
// parity buffer still owned by an in-flight chunk — or handed two chunks
// aliasing slots/events storage — the churner's poison (and, under -race
// via `make stress`, the detector) exposes it; the counters must stay
// bit-identical to the inline path regardless.
func TestStressPipelinedAnnBufReuse(t *testing.T) {
	const seed = 0x6e6c7333
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %#x", seed)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			b := trace.GetAnnBuf(trace.DefaultChunkRecords)
			for i := range b {
				b[i] = 0xA5
			}
			trace.PutAnnBuf(b)
			e := trace.GetEvtBuf(trace.DefaultChunkRecords / 2)
			e = append(e, 0xA5A5A5A5)
			trace.PutEvtBuf(e)
		}
	}()
	defer churn.Wait()
	defer close(stop)

	rounds := 5
	if testing.Short() {
		rounds = 2
	}
	specs := workload.All()
	for round := 0; round < rounds; round++ {
		spec := specs[rng.Intn(len(specs))]
		insns := 20_000 + rng.Intn(30_000)
		chunk := 256 << rng.Intn(4) // 256..2048
		tr := spec.MustTrace(insns)
		chunked := trace.Chunk(tr, chunk)
		want := int64(tr.Len())
		inline := runSequential(t, chunked, false, want)
		piped := runSequential(t, chunked, true, want)
		for i := range inline {
			if got, wantC := *piped[i].Counters(), *inline[i].Counters(); got != wantC {
				t.Errorf("round %d: %s on %s chunk=%d diverges under pipeline\n got %+v\nwant %+v",
					round, piped[i].Name(), spec.Name, chunk, got, wantC)
			}
		}
	}
}
