package fetch

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/ras"
	"repro/internal/trace"
)

// nlsStore abstracts the two NLS organizations (table and line-coupled) so
// one predictor implements the NLS fetch architecture for both. The set and
// way arguments identify where the branch instruction itself resides in the
// cache (known at fetch time, since the branch was just fetched); the
// tag-less table ignores them.
type nlsStore interface {
	lookup(pc isa.Addr, set, way int) core.Entry
	// update trains the store after the branch at pc resolves. set/way
	// echo the slot the branch was fetched from (the last lookup's
	// arguments): line-coupled stores use them as a verified residency
	// hint (core.LineCoupled.UpdateAt); the tag-less table ignores them.
	update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, targetWay, set, way int)
	name() string
	reset()
	sizeBits() int
}

type tableStore struct{ t *core.Table }

func (s tableStore) lookup(pc isa.Addr, _, _ int) core.Entry { return s.t.Lookup(pc) }
func (s tableStore) update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, way, _, _ int) {
	s.t.Update(pc, kind, taken, target, way)
}
func (s tableStore) name() string  { return s.t.Name() }
func (s tableStore) reset()        { s.t.Reset() }
func (s tableStore) sizeBits() int { return s.t.SizeBits() }

type coupledStore struct{ l *core.LineCoupled }

func (s coupledStore) lookup(pc isa.Addr, set, way int) core.Entry {
	return s.l.Lookup(pc, set, way)
}
func (s coupledStore) update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, way, set, fway int) {
	s.l.UpdateAt(pc, kind, taken, target, way, set, fway)
}
func (s coupledStore) name() string  { return s.l.Name() }
func (s coupledStore) reset()        { s.l.Reset() }
func (s coupledStore) sizeBits() int { return s.l.SizeBits() }

// predMode is the fetch mechanism selected by the NLS type field (§4's
// type-field table).
type predMode uint8

const (
	modeFallThrough predMode = iota // invalid entry, or PHT says not taken
	modeRAS                         // type = return
	modePointer                     // pointer followed (taken cond / other)
)

// nlsPredictor implements TargetPredictor for the NLS fetch architecture of
// §4, over either NLS organization; instantiating it per concrete store
// type devirtualizes the store calls on the replay hot path. The instruction fetched is assumed
// identifiable as branch or non-branch during fetch (pre-decode bit, §4),
// so non-branches always fetch the fall-through line correctly and branches
// consult their NLS entry.
type nlsPredictor[S nlsStore] struct {
	store  S
	icache *cache.Cache
	rstack *ras.Stack

	// The mechanism selected and entry read by the last Lookup, retained
	// for WrongPath.
	lastMode  predMode
	lastEntry core.Entry
	// The branch's fetch-time cache slot from the last Lookup, passed to
	// the store's update as a residency hint (one break is in flight at a
	// time, so the pending update always belongs to the last lookup).
	lastSet, lastWay int

	// track records which PCs ever had NLS state written, for cause
	// attribution only (nil until a probe enables tracking).
	track trainedSet
}

// Lookup implements TargetPredictor.
func (p *nlsPredictor[S]) Lookup(rec trace.Record, set, way int, dirTaken bool) Outcome {
	entry := p.store.lookup(rec.PC, set, way)

	// Select the fetch mechanism from the type field (§4).
	var mode predMode
	switch entry.Type {
	case core.TypeInvalid:
		mode = modeFallThrough
	case core.TypeReturn:
		mode = modeRAS
	case core.TypeCond:
		if dirTaken {
			mode = modePointer
		} else {
			mode = modeFallThrough
		}
	case core.TypeOther:
		mode = modePointer
	}
	p.lastMode, p.lastEntry = mode, entry
	p.lastSet, p.lastWay = set, way

	// Was the fetch correct? Fall-through and return-stack predictions
	// carry full addresses (the fall-through address is precomputed and
	// the RAS stores full addresses), so they are address-checked; the
	// NLS pointer is a cache location and is correct only if the
	// predicted slot currently holds the actual next instruction.
	next := rec.Next()
	var correct bool
	switch mode {
	case modeFallThrough:
		correct = next == rec.PC.Next()
	case modeRAS:
		top, ok := p.rstack.Top()
		correct = ok && top == next
	case modePointer:
		correct = entry.PointsTo(p.icache, next)
	}
	return Outcome{Correct: correct, Followed: mode == modePointer}
}

// Update implements TargetPredictor: type always; pointer only for taken
// branches, deferred until the target's way is known.
func (p *nlsPredictor[S]) Update(rec trace.Record) bool {
	if rec.Taken {
		return true
	}
	p.track.mark(rec.PC)
	p.store.update(rec.PC, rec.Kind, false, 0, 0, p.lastSet, p.lastWay)
	return false
}

// Resolve implements TargetPredictor, completing the deferred taken-branch
// pointer update now that the target's cache way is known.
func (p *nlsPredictor[S]) Resolve(rec trace.Record, way int) {
	p.track.mark(rec.PC)
	p.store.update(rec.PC, rec.Kind, true, rec.Target, way, p.lastSet, p.lastWay)
}

// enableTracking implements causeExplainer.
func (p *nlsPredictor[S]) enableTracking() {
	if p.track == nil {
		p.track = make(trainedSet)
	}
}

// lastCause implements causeExplainer, explaining the last Lookup's miss
// from the mechanism it selected. An invalid entry for a branch that was
// trained before can only mean line-coupled state died with an evicted line
// (the tag-less table never invalidates a written entry), which is exactly
// the NLS-cache weakness the attribution report exists to expose.
func (p *nlsPredictor[S]) lastCause(rec trace.Record, _ bool) Cause {
	switch p.lastMode {
	case modeRAS:
		if rec.Kind == isa.Return {
			return CauseRASMiss
		}
		// An aliased (or stale line-coupled) entry mislabeled a
		// non-return as a return and routed it to the stack.
		return CauseStalePointer
	case modePointer:
		return CauseStalePointer
	case modeFallThrough:
		if p.lastEntry.Type == core.TypeInvalid {
			if p.track.has(rec.PC) {
				return CauseEvictionLoss
			}
			return CauseCold
		}
		// A valid entry chose fall-through and was wrong: a decoupled
		// direction error (the frontend labels it) or an aliased type.
		if rec.Kind == isa.CondBranch {
			return CauseNone
		}
		return CauseStalePointer
	}
	return CauseNone
}

// WrongPath implements TargetPredictor: the address the NLS hardware
// actually fetched when its selected mechanism was wrong — the resident
// line at the predicted pointer slot, the fall-through, or the return-stack
// top.
func (p *nlsPredictor[S]) WrongPath(rec trace.Record) (isa.Addr, bool) {
	switch p.lastMode {
	case modeFallThrough:
		return rec.PC.Next(), true
	case modeRAS:
		if top, ok := p.rstack.Top(); ok {
			return top, true
		}
		return rec.PC.Next(), true
	case modePointer:
		line, ok := p.icache.ResidentAt(int(p.lastEntry.Set), int(p.lastEntry.Way))
		if !ok {
			return 0, false // predicted slot empty: nothing fetched
		}
		g := p.icache.Geometry()
		return isa.Addr(line)*isa.Addr(g.LineBytes()) +
			isa.Addr(int(p.lastEntry.Offset)*isa.InstrBytes), true
	}
	return 0, false
}

// Name implements TargetPredictor.
func (p *nlsPredictor[S]) Name() string { return p.store.name() }

// SizeBits implements TargetPredictor.
func (p *nlsPredictor[S]) SizeBits() int { return p.store.sizeBits() }

// Reset implements TargetPredictor.
func (p *nlsPredictor[S]) Reset() {
	p.store.reset()
	if p.track != nil {
		clear(p.track)
	}
}

// NLSEngine is the NLS fetch architecture: a Frontend driven by an
// nlsPredictor over either NLS organization.
type NLSEngine struct {
	Frontend
}

func newNLSEngine[S nlsStore](g cache.Geometry, dir pht.Directional, rasDepth int, mk func(*cache.Cache) S) *NLSEngine {
	e := &NLSEngine{Frontend: newFrontend(g, dir, rasDepth)}
	e.bind(&nlsPredictor[S]{
		store:  mk(e.icache),
		icache: e.icache,
		rstack: e.rstack,
	}, Traits{})
	return e
}

// NewNLSTableEngine builds an NLS architecture using a tag-less NLS-table
// with the given number of entries (§4.1).
func NewNLSTableEngine(g cache.Geometry, tableEntries int, dir pht.Directional, rasDepth int) *NLSEngine {
	return newNLSEngine(g, dir, rasDepth, func(*cache.Cache) tableStore {
		return tableStore{core.NewTable(tableEntries, g)}
	})
}

// NewNLSCacheEngine builds an NLS architecture with predictors coupled to
// cache lines (the NLS-cache of §4.1), perLine predictors per line.
func NewNLSCacheEngine(g cache.Geometry, perLine int, dir pht.Directional, rasDepth int) *NLSEngine {
	return newNLSEngine(g, dir, rasDepth, func(c *cache.Cache) coupledStore {
		return coupledStore{core.NewLineCoupled(c, perLine)}
	})
}
