package fetch

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/trace"
)

// nlsStore abstracts the two NLS organizations (table and line-coupled) so
// one engine implements the NLS fetch architecture for both. The set and
// way arguments identify where the branch instruction itself resides in the
// cache (known at fetch time, since the branch was just fetched); the
// tag-less table ignores them.
type nlsStore interface {
	lookup(pc isa.Addr, set, way int) core.Entry
	update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, targetWay int)
	name() string
	reset()
	sizeBits() int
}

type tableStore struct{ t *core.Table }

func (s tableStore) lookup(pc isa.Addr, _, _ int) core.Entry { return s.t.Lookup(pc) }
func (s tableStore) update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, way int) {
	s.t.Update(pc, kind, taken, target, way)
}
func (s tableStore) name() string  { return s.t.Name() }
func (s tableStore) reset()        { s.t.Reset() }
func (s tableStore) sizeBits() int { return s.t.SizeBits() }

type coupledStore struct{ l *core.LineCoupled }

func (s coupledStore) lookup(pc isa.Addr, set, way int) core.Entry {
	return s.l.Lookup(pc, set, way)
}
func (s coupledStore) update(pc isa.Addr, kind isa.Kind, taken bool, target isa.Addr, way int) {
	s.l.Update(pc, kind, taken, target, way)
}
func (s coupledStore) name() string  { return s.l.Name() }
func (s coupledStore) reset()        { s.l.Reset() }
func (s coupledStore) sizeBits() int { return s.l.SizeBits() }

// predMode is the fetch mechanism selected by the NLS type field (§4's
// type-field table).
type predMode uint8

const (
	modeFallThrough predMode = iota // invalid entry, or PHT says not taken
	modeRAS                         // type = return
	modePointer                     // pointer followed (taken cond / other)
)

// NLSEngine simulates the NLS fetch architecture of §4 over either NLS
// organization. The instruction fetched is assumed identifiable as branch
// or non-branch during fetch (pre-decode bit, §4), so non-branches always
// fetch the fall-through line correctly and branches consult their NLS
// entry.
type NLSEngine struct {
	base
	pollution
	store nlsStore

	// pending defers the pointer part of an NLS update for a taken
	// branch until the target's fetch resolves its cache way: the
	// hardware updates entries "after instructions are decoded and the
	// branch type and destinations are resolved" (§4), by which time the
	// destination's location is known.
	pending struct {
		active bool
		pc     isa.Addr
		kind   isa.Kind
		target isa.Addr
	}
}

// NewNLSTableEngine builds an NLS architecture using a tag-less NLS-table
// with the given number of entries (§4.1).
func NewNLSTableEngine(g cache.Geometry, tableEntries int, dir pht.Predictor, rasDepth int) *NLSEngine {
	e := &NLSEngine{base: newBase(g, dir, rasDepth)}
	e.store = tableStore{core.NewTable(tableEntries, g)}
	return e
}

// NewNLSCacheEngine builds an NLS architecture with predictors coupled to
// cache lines (the NLS-cache of §4.1), perLine predictors per line.
func NewNLSCacheEngine(g cache.Geometry, perLine int, dir pht.Predictor, rasDepth int) *NLSEngine {
	e := &NLSEngine{base: newBase(g, dir, rasDepth)}
	e.store = coupledStore{core.NewLineCoupled(e.icache, perLine)}
	return e
}

// Name implements Engine.
func (e *NLSEngine) Name() string {
	return fmt.Sprintf("%s + %s", e.store.name(), e.icache.Geometry())
}

// PredictorSizeBits returns the storage cost of the NLS predictor state.
func (e *NLSEngine) PredictorSizeBits() int { return e.store.sizeBits() }

// Reset implements Engine.
func (e *NLSEngine) Reset() {
	e.resetBase()
	e.store.reset()
	e.pending.active = false
}

// StepBlock implements Engine, batching same-line sequential fetch runs
// (see base.stepBlock).
func (e *NLSEngine) StepBlock(recs []trace.Record) { e.stepBlock(recs, e.Step) }

// StepBlockRuns is StepBlock with the run boundaries precomputed for this
// engine's line size (see base.stepBlockRuns); nil runs falls back to the
// scanning path.
func (e *NLSEngine) StepBlockRuns(recs []trace.Record, runs []uint8) {
	if runs == nil {
		e.stepBlock(recs, e.Step)
		return
	}
	e.stepBlockRuns(recs, runs, e.Step)
}

// Step implements Engine.
func (e *NLSEngine) Step(rec trace.Record) {
	_, way := e.access(rec)

	// Resolve the deferred update for the previous taken branch: this
	// record IS its target, so the target line's way is now known. (The
	// equality guard only matters for malformed, non-chained input.)
	if e.pending.active {
		if e.pending.target == rec.PC {
			e.store.update(e.pending.pc, e.pending.kind, true, e.pending.target, way)
		}
		e.pending.active = false
	}

	if !rec.IsBreak() {
		// Pre-decoded as non-branch: fall-through fetch, always
		// correct (full fall-through address is precomputed, §4.2).
		return
	}
	e.m.Breaks++

	g := e.icache.Geometry()
	set := g.SetIndex(rec.PC)
	entry := e.store.lookup(rec.PC, set, way)

	// Select the fetch mechanism from the type field (§4).
	var mode predMode
	switch entry.Type {
	case core.TypeInvalid:
		mode = modeFallThrough
	case core.TypeReturn:
		mode = modeRAS
	case core.TypeCond:
		if e.dir.Predict(rec.PC) {
			mode = modePointer
		} else {
			mode = modeFallThrough
		}
	case core.TypeOther:
		mode = modePointer
	}

	// Was the fetch correct? Fall-through and return-stack predictions
	// carry full addresses (the fall-through address is precomputed and
	// the RAS stores full addresses), so they are address-checked; the
	// NLS pointer is a cache location and is correct only if the
	// predicted slot currently holds the actual next instruction.
	next := rec.Next()
	var correct bool
	switch mode {
	case modeFallThrough:
		correct = next == rec.PC.Next()
	case modeRAS:
		top, ok := e.rstack.Top()
		correct = ok && top == next
	case modePointer:
		correct = entry.PointsTo(e.icache, next)
	}

	// Classify a wrong fetch by its root cause (DESIGN.md §6) and keep
	// the architectural predictors trained.
	mpBefore := e.m.Mispredicts
	switch rec.Kind {
	case isa.CondBranch:
		e.m.CondBranches++
		dirRight := e.dir.Predict(rec.PC) == rec.Taken
		if !dirRight {
			e.m.CondDirWrong++
		}
		if !correct {
			if dirRight {
				e.m.AddMisfetch(rec.Kind)
			} else {
				e.m.AddMispredict(rec.Kind)
			}
		}
		e.dir.Update(rec.PC, rec.Taken)

	case isa.UncondBranch:
		if !correct {
			e.m.AddMisfetch(rec.Kind)
		}

	case isa.Call:
		if !correct {
			e.m.AddMisfetch(rec.Kind)
		}
		e.rstack.Push(rec.PC.Next())

	case isa.IndirectJump:
		if !correct {
			if mode == modePointer {
				// A pointer was followed and disproved at
				// execute.
				e.m.AddMispredict(rec.Kind)
			} else {
				e.m.AddMisfetch(rec.Kind)
			}
		}

	case isa.Return:
		top, ok := e.rstack.Pop()
		rasRight := ok && top == rec.Target
		if !correct {
			if rasRight {
				// Not identified as a return until decode,
				// but the stack had the right address there.
				e.m.AddMisfetch(rec.Kind)
			} else {
				e.m.AddMispredict(rec.Kind)
			}
		}
	}

	// Optional wrong-path pollution: touch what the front end actually
	// fetched before the redirect (see wrongpath.go).
	if e.pollution.enabled && !correct {
		if wp, ok := e.wrongPath(mode, entry, rec.PC); ok {
			e.pollute(wp, e.m.Mispredicts > mpBefore)
		}
	}

	// Train the NLS entry: type always; pointer only for taken branches
	// (deferred until the target's way is known).
	if rec.Taken {
		e.pending.active = true
		e.pending.pc = rec.PC
		e.pending.kind = rec.Kind
		e.pending.target = rec.Target
	} else {
		e.store.update(rec.PC, rec.Kind, false, 0, 0)
	}
}
