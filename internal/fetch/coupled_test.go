package fetch

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/workload"
)

func TestCoupledLearnsResidentBranch(t *testing.T) {
	e := NewCoupledBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, 8)
	b := newTB(0x1000)
	// A taken conditional executed repeatedly: after allocation the
	// 2-bit counter predicts taken and the target is known — clean.
	for i := 0; i < 5; i++ {
		b.br(isa.CondBranch, true, 0x1010)
		b.br(isa.UncondBranch, true, 0x1000)
	}
	m := Run(e, b.trace(t))
	// Cold: cond mispredicts once (static not-taken), uncond misfetches
	// once. Counter starts weakly-taken at allocation, so the rest are
	// clean.
	if m.Mispredicts != 1 {
		t.Errorf("mp=%d, want 1 (cold static misprediction only)", m.Mispredicts)
	}
	if m.Misfetches != 1 {
		t.Errorf("mf=%d, want 1", m.Misfetches)
	}
}

func TestCoupledMissingBranchUsesStatic(t *testing.T) {
	// The defining weakness (§2): a conditional NOT in the BTB is
	// predicted statically not-taken, so taken executions mispredict —
	// where the decoupled design's PHT would learn them.
	//
	// Keep the branch out of the BTB by evicting it every iteration
	// with a conflicting taken branch (16-entry direct BTB: words 16
	// apart conflict).
	cfgSmall := btb.Config{Entries: 16, Assoc: 1}
	b := newTB(0x1000)
	const iters = 60
	for i := 0; i < iters; i++ {
		b.br(isa.CondBranch, true, 0x1040)   // word 0x400: set 0
		b.br(isa.UncondBranch, true, 0x1000) // word 0x410: set 0 -> evicts the cond
	}
	tr := b.trace(t)

	coupled := NewCoupledBTBEngine(smallGeom(), cfgSmall, 8)
	mc := Run(coupled, tr)
	decoupled := NewBTBEngine(smallGeom(), cfgSmall, pht.NewGShare(256, 0), 8)
	md := Run(decoupled, tr)

	// Coupled: every cond execution alternates allocation/eviction; at
	// prediction time the entry is always gone -> static not-taken ->
	// mispredict on every iteration.
	if mc.MispredictByKind[isa.CondBranch] != iters {
		t.Errorf("coupled cond mispredicts = %d, want %d", mc.MispredictByKind[isa.CondBranch], iters)
	}
	// Decoupled: gshare learns the always-taken branch once every
	// history state has been seen (one warmup mispredict per state);
	// after that the BTB miss costs only a misfetch.
	if md.MispredictByKind[isa.CondBranch] > 10 {
		t.Errorf("decoupled cond mispredicts = %d, want warmup only", md.MispredictByKind[isa.CondBranch])
	}
	if md.MisfetchByKind[isa.CondBranch] < iters-10 {
		t.Errorf("decoupled cond misfetches = %d, want most executions", md.MisfetchByKind[isa.CondBranch])
	}
}

func TestCoupledResetAndRerun(t *testing.T) {
	e := NewCoupledBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 2}, 8)
	b := newTB(0x1000)
	for i := 0; i < 10; i++ {
		b.br(isa.CondBranch, i%2 == 0, 0x1010)
		if i%2 == 0 {
			b.br(isa.UncondBranch, true, 0x1000)
		} else {
			b.plain(2)
			b.br(isa.UncondBranch, true, 0x1000)
		}
	}
	tr := b.trace(t)
	m1 := *Run(e, tr)
	e.Reset()
	if e.Counters().Breaks != 0 {
		t.Fatal("Reset incomplete")
	}
	m2 := *Run(e, tr)
	if m1 != m2 {
		t.Error("coupled engine not deterministic across Reset")
	}
}

// TestCondMispredictsIdenticalAcrossArchitectures verifies the paper's
// methodological invariant (§5.1): with the same decoupled PHT, the NLS and
// BTB architectures mispredict exactly the same conditional branches — all
// BEP differences come from misfetches (and indirect/return targets).
func TestCondMispredictsIdenticalAcrossArchitectures(t *testing.T) {
	tr := workload.Li().MustTrace(200_000)
	g := smallGeom()
	nls := NewNLSTableEngine(g, 1024, pht.NewGShare(4096, 6), 32)
	bt := NewBTBEngine(g, btb.Config{Entries: 128, Assoc: 1}, pht.NewGShare(4096, 6), 32)
	mn := Run(nls, tr)
	mb := Run(bt, tr)
	if mn.CondDirWrong != mb.CondDirWrong {
		t.Errorf("conditional direction errors differ: NLS %d vs BTB %d",
			mn.CondDirWrong, mb.CondDirWrong)
	}
	// Counted conditional mispredicts may differ by a sliver: when an
	// aliased NLS pointer happens to fetch the correct path despite a
	// wrong direction prediction, no squash is needed and the NLS
	// engine charges nothing. Allow 0.5%.
	nm, bm := mn.MispredictByKind[isa.CondBranch], mb.MispredictByKind[isa.CondBranch]
	diff := int64(nm) - int64(bm)
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(bm/200) {
		t.Errorf("conditional mispredicts diverge: NLS %d vs BTB %d", nm, bm)
	}
	// Return mispredicts are also identical: both use the same RAS
	// discipline.
	if mn.MispredictByKind[isa.Return] != mb.MispredictByKind[isa.Return] {
		t.Errorf("return mispredicts differ: NLS %d vs BTB %d",
			mn.MispredictByKind[isa.Return], mb.MispredictByKind[isa.Return])
	}
}
