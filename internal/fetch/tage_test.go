package fetch

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pht"
)

// testTAGE builds a small protocol-native direction predictor for the
// frontend property tests. A fresh instance per engine: direction state is
// engine-private, exactly like the gshare instances in quick_test.go.
func testTAGE() *pht.TAGE {
	return pht.MustTAGE(pht.TAGEConfig{
		BaseEntries: 128, Tables: 4, Entries: 64, TagBits: 9, MinHist: 4, MaxHist: 64,
	})
}

// TestTAGEFrontendStepBlockEquivalence: StepBlock is defined as exactly
// per-record Step, and that must survive a direction predictor with
// speculative state — whose checkpoint/repair interleaves with every
// break — including under wrong-path pollution, where the frontend also
// feeds WrongPath excursions into the history. Run for the decoupled
// engines on both the NLS and BTB sides.
func TestTAGEFrontendStepBlockEquivalence(t *testing.T) {
	mk := []func() Engine{
		func() Engine { return NewNLSTableEngine(smallGeom(), 256, testTAGE(), 8) },
		func() Engine { return NewNLSCacheEngine(smallGeom(), 2, testTAGE(), 8) },
		func() Engine {
			return NewBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 2}, testTAGE(), 8)
		},
		func() Engine {
			return NewHybridEngine(smallGeom(), 128, btb.Config{Entries: 16, Assoc: 1}, testTAGE(), 8)
		},
	}
	for _, pollute := range []bool{false, true} {
		for seed := int64(700); seed < 712; seed++ {
			tr := randomTrace(seed, 400)
			for _, f := range mk {
				stepped := f()
				stepped.(interface{ SetWrongPathPollution(bool) }).SetWrongPathPollution(pollute)
				for _, r := range tr.Records {
					stepped.Step(r)
				}
				blocked := f()
				blocked.(interface{ SetWrongPathPollution(bool) }).SetWrongPathPollution(pollute)
				blocked.StepBlock(tr.Records)
				if *stepped.Counters() != *blocked.Counters() {
					t.Fatalf("seed %d %s pollution=%v: StepBlock diverges from Step:\n  step  %+v\n  block %+v",
						seed, stepped.Name(), pollute, *stepped.Counters(), *blocked.Counters())
				}
			}
		}
	}
}

// TestTAGEFrontendInvariantsAndDeterminism: the accounting invariants of
// TestQuickEngineInvariants hold for a TAGE-armed frontend, and two
// identical engines replay identically (the predictor's deterministic
// allocation contract, end to end).
func TestTAGEFrontendInvariantsAndDeterminism(t *testing.T) {
	for seed := int64(800); seed < 815; seed++ {
		tr := randomTrace(seed, 500)
		mk := func() Engine { return NewNLSTableEngine(smallGeom(), 256, testTAGE(), 8) }
		a := mk()
		ma := Run(a, tr)
		if ma.Misfetches+ma.Mispredicts > ma.Breaks {
			t.Fatalf("seed %d: penalties exceed breaks", seed)
		}
		if ma.CondDirWrong > ma.CondBranches {
			t.Fatalf("seed %d: dir-wrong exceeds conds", seed)
		}
		var mfSum, mpSum uint64
		for k := isa.Kind(0); k < isa.NumKinds; k++ {
			mfSum += ma.MisfetchByKind[k]
			mpSum += ma.MispredictByKind[k]
		}
		if mfSum != ma.Misfetches || mpSum != ma.Mispredicts {
			t.Fatalf("seed %d: per-kind sums inconsistent", seed)
		}
		b := mk()
		if mb := Run(b, tr); *ma != *mb {
			t.Fatalf("seed %d: nondeterministic TAGE replay", seed)
		}
	}
}

// TestTAGEDirectionAgreement: the decoupled NLS and BTB engines agree
// exactly on conditional direction outcomes when both carry a TAGE arm —
// i.e. the frontend drives the protocol (Predict/Query/Resolve/WrongPath)
// in an architecture-independent sequence, the §5.1 methodological
// requirement the gshare version of this test pins.
func TestTAGEDirectionAgreement(t *testing.T) {
	for seed := int64(900); seed < 912; seed++ {
		tr := randomTrace(seed, 500)
		nls := NewNLSTableEngine(smallGeom(), 256, testTAGE(), 8)
		bt := NewBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 1}, testTAGE(), 8)
		mn := Run(nls, tr)
		mb := Run(bt, tr)
		if mn.CondDirWrong != mb.CondDirWrong || mn.CondBranches != mb.CondBranches {
			t.Fatalf("seed %d: TAGE direction streams diverge (%d/%d vs %d/%d)",
				seed, mn.CondDirWrong, mn.CondBranches, mb.CondDirWrong, mb.CondBranches)
		}
	}
}

// TestTAGEFrontendReset: Reset returns a TAGE-armed engine to cold state —
// a second run replays the first bit-identically.
func TestTAGEFrontendReset(t *testing.T) {
	tr := randomTrace(42, 600)
	e := NewNLSTableEngine(smallGeom(), 256, testTAGE(), 8)
	first := *Run(e, tr)
	e.Reset()
	second := *Run(e, tr)
	if first != second {
		t.Fatalf("Reset did not restore cold state:\n  first  %+v\n  second %+v", first, second)
	}
}
