package fetch

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/trace"
)

// collectProbe records the event stream for inspection.
type collectProbe struct{ evs []BreakEvent }

func (p *collectProbe) Break(ev BreakEvent) { p.evs = append(p.evs, ev) }

// probeFactories covers every Frontend-based architecture, including the
// hybrid (which the quick-test lists predate).
func probeFactories() []func() Engine {
	return []func() Engine{
		func() Engine {
			return NewNLSTableEngine(smallGeom(), 256, pht.NewGShare(512, 0), 8)
		},
		func() Engine {
			return NewNLSCacheEngine(smallGeom(), 2, pht.NewGShare(512, 0), 8)
		},
		func() Engine {
			return NewBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 2},
				pht.NewGShare(512, 0), 8)
		},
		func() Engine {
			return NewCoupledBTBEngine(smallGeom(), btb.Config{Entries: 32, Assoc: 2}, 8)
		},
		func() Engine { return NewJohnsonEngine(smallGeom()) },
		func() Engine {
			return NewHybridEngine(smallGeom(), 256, btb.Config{Entries: 32, Assoc: 2},
				pht.NewGShare(512, 0), 8)
		},
	}
}

// TestProbeCountersBitIdentical: attaching a probe must not change a single
// counter for any architecture — probes observe, never perturb. Runs with
// wrong-path pollution on, so the WrongPath capture path is exercised too.
func TestProbeCountersBitIdentical(t *testing.T) {
	for seed := int64(400); seed < 410; seed++ {
		tr := randomTrace(seed, 400)
		for _, f := range probeFactories() {
			bare := f()
			bare.(interface{ SetWrongPathPollution(bool) }).SetWrongPathPollution(true)
			mBare := Run(bare, tr)

			probed := f()
			probed.(interface{ SetWrongPathPollution(bool) }).SetWrongPathPollution(true)
			cp := &collectProbe{}
			probed.(ProbeAttacher).AttachProbe(cp)
			mProbed := Run(probed, tr)

			if *mBare != *mProbed {
				t.Fatalf("seed %d %s: probe perturbed counters:\n  bare   %+v\n  probed %+v",
					seed, bare.Name(), *mBare, *mProbed)
			}
			if uint64(len(cp.evs)) != mProbed.Breaks {
				t.Fatalf("seed %d %s: %d events for %d breaks",
					seed, bare.Name(), len(cp.evs), mProbed.Breaks)
			}
		}
	}
}

// TestProbeStepBlockEquivalence extends the StepBlock≡Step property to the
// probed path: the batched stepper must deliver the identical event stream,
// not just identical counters (breaks never batch, so this should be exact).
func TestProbeStepBlockEquivalence(t *testing.T) {
	for seed := int64(500); seed < 510; seed++ {
		tr := randomTrace(seed, 400)
		for _, f := range probeFactories() {
			stepped := f()
			cpStep := &collectProbe{}
			stepped.(ProbeAttacher).AttachProbe(cpStep)
			for _, r := range tr.Records {
				stepped.Step(r)
			}

			blocked := f()
			cpBlock := &collectProbe{}
			blocked.(ProbeAttacher).AttachProbe(cpBlock)
			blocked.StepBlock(tr.Records)

			if *stepped.Counters() != *blocked.Counters() {
				t.Fatalf("seed %d %s: probed StepBlock diverges from Step",
					seed, stepped.Name())
			}
			if len(cpStep.evs) != len(cpBlock.evs) {
				t.Fatalf("seed %d %s: event counts differ: %d vs %d",
					seed, stepped.Name(), len(cpStep.evs), len(cpBlock.evs))
			}
			for i := range cpStep.evs {
				if cpStep.evs[i] != cpBlock.evs[i] {
					t.Fatalf("seed %d %s: event %d differs:\n  step  %+v\n  block %+v",
						seed, stepped.Name(), i, cpStep.evs[i], cpBlock.evs[i])
				}
			}
		}
	}
}

// TestProbeEventConsistency: the event stream must reconcile exactly with
// the counters it narrates — penalties sum to the misfetch/mispredict
// totals, and a cause is assigned iff a penalty was paid.
func TestProbeEventConsistency(t *testing.T) {
	for _, f := range probeFactories() {
		e := f()
		cp := &collectProbe{}
		e.(ProbeAttacher).AttachProbe(cp)
		m := Run(e, randomTrace(600, 600))

		var mf, mp uint64
		for i, ev := range cp.evs {
			switch ev.Penalty {
			case PenaltyMisfetch:
				mf++
			case PenaltyMispredict:
				mp++
			}
			if (ev.Cause == CauseNone) != (ev.Penalty == PenaltyNone) {
				t.Fatalf("%s: event %d cause %v inconsistent with penalty %v",
					e.Name(), i, ev.Cause, ev.Penalty)
			}
			if ev.Cause >= NumCauses {
				t.Fatalf("%s: event %d cause out of range", e.Name(), i)
			}
		}
		if mf != m.Misfetches || mp != m.Mispredicts {
			t.Fatalf("%s: event penalties %d/%d != counters %d/%d",
				e.Name(), mf, mp, m.Misfetches, m.Mispredicts)
		}
	}
}

// TestProbeDetachStopsEvents: AttachProbe(nil) restores the unprobed path.
func TestProbeDetachStopsEvents(t *testing.T) {
	tr := randomTrace(700, 200)
	e := probeFactories()[0]()
	cp := &collectProbe{}
	e.(ProbeAttacher).AttachProbe(cp)
	e.StepBlock(tr.Records)
	n := len(cp.evs)
	if n == 0 {
		t.Fatal("no events while attached")
	}
	e.(ProbeAttacher).AttachProbe(nil)
	e.StepBlock(tr.Records)
	if len(cp.evs) != n {
		t.Fatalf("events delivered after detach: %d -> %d", n, len(cp.evs))
	}
}

// TestProbeEvictionLossOnlyNLSCache pins the taxonomy's headline claim on
// the scripted scenario of TestNLSCacheLosesStateOnEviction: when B's and
// E's cache lines evict each other every cycle, the NLS-cache attributes
// their breaks to state lost with the line, while the tag-less NLS-table —
// whose entries survive eviction — never reports that cause.
func TestProbeEvictionLossOnlyNLSCache(t *testing.T) {
	g := smallGeom()
	const (
		A = isa.Addr(0x1000) // set 0
		B = isa.Addr(0x1100) // set 8
		C = isa.Addr(0x1040) // set 2
		E = isa.Addr(0x1500) // set 8: conflicts with B
	)
	b := newTB(A)
	for i := 0; i < 5; i++ {
		b.br(isa.UncondBranch, true, B)
		b.br(isa.UncondBranch, true, C)
		b.br(isa.UncondBranch, true, E)
		b.br(isa.UncondBranch, true, A)
	}
	tr := b.trace(t)

	causes := func(e Engine) [NumCauses]uint64 {
		cp := &collectProbe{}
		e.(ProbeAttacher).AttachProbe(cp)
		Run(e, tr)
		var n [NumCauses]uint64
		for _, ev := range cp.evs {
			n[ev.Cause]++
		}
		return n
	}

	coupled := causes(NewNLSCacheEngine(g, 2, pht.Static{}, 8))
	if coupled[CauseEvictionLoss] == 0 {
		t.Errorf("NLS-cache: no eviction-loss events on a line-thrashing trace: %v", coupled)
	}
	table := causes(NewNLSTableEngine(g, 1024, pht.Static{}, 8))
	if table[CauseEvictionLoss] != 0 {
		t.Errorf("NLS-table: %d eviction-loss events; tag-less entries cannot be evicted",
			table[CauseEvictionLoss])
	}
	// Both still pay for the stale pointers chasing the evicted lines.
	if table[CauseStalePointer] == 0 || coupled[CauseStalePointer] == 0 {
		t.Errorf("expected stale-pointer events: table %v, cache %v", table, coupled)
	}
}

// TestProbeCauseScenarios pins one representative event per cause on
// scripted micro-traces.
func TestProbeCauseScenarios(t *testing.T) {
	lastCauseOf := func(e Engine, tr *trace.Trace) Cause {
		cp := &collectProbe{}
		e.(ProbeAttacher).AttachProbe(cp)
		Run(e, tr)
		for i := len(cp.evs) - 1; i >= 0; i-- {
			if cp.evs[i].Penalty != PenaltyNone {
				return cp.evs[i].Cause
			}
		}
		return CauseNone
	}

	t.Run("dir-wrong", func(t *testing.T) {
		// Static not-taken PHT on a taken conditional: the direction is
		// the root cause regardless of target state.
		b := newTB(0x1000)
		b.br(isa.CondBranch, true, 0x1100)
		b.br(isa.UncondBranch, true, 0x1000)
		b.br(isa.CondBranch, true, 0x1100)
		e := NewNLSTableEngine(smallGeom(), 1024, pht.Static{Taken: false}, 8)
		if c := lastCauseOf(e, b.trace(t)); c != CauseDirWrong {
			t.Errorf("cause = %v, want dir-wrong", c)
		}
	})

	t.Run("ras-miss", func(t *testing.T) {
		// A warm return with an empty RAS.
		b := newTB(0x1000)
		b.br(isa.Return, true, 0x1100)
		b.br(isa.UncondBranch, true, 0x1000)
		b.br(isa.Return, true, 0x1100)
		e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 1}, pht.Static{}, 8)
		if c := lastCauseOf(e, b.trace(t)); c != CauseRASMiss {
			t.Errorf("cause = %v, want ras-miss", c)
		}
	})

	t.Run("btb-conflict", func(t *testing.T) {
		// Two trained sites aliasing one direct-mapped BTB entry: the
		// revisit misses on displaced — not cold — state.
		e := NewBTBEngine(smallGeom(), btb.Config{Entries: 4, Assoc: 1}, pht.Static{}, 8)
		a := isa.Addr(0x1000)
		alias := a + 4*4 // same entry in a 4-entry direct-mapped BTB
		b := newTB(a)
		for i := 0; i < 3; i++ {
			b.br(isa.UncondBranch, true, alias)
			b.br(isa.UncondBranch, true, a)
		}
		if c := lastCauseOf(e, b.trace(t)); c != CauseBTBConflict {
			t.Errorf("cause = %v, want btb-conflict", c)
		}
	})

	t.Run("wrong-target", func(t *testing.T) {
		// A moving indirect target the BTB followed.
		b := newTB(0x1000)
		b.br(isa.IndirectJump, true, 0x1100)
		b.br(isa.UncondBranch, true, 0x1000)
		b.br(isa.IndirectJump, true, 0x1200)
		b.plain(1)
		// 2-way so the intervening uncond (same BTB set) does not displace
		// the indirect's entry: the revisit must hit with a stale target.
		e := NewBTBEngine(smallGeom(), btb.Config{Entries: 16, Assoc: 2}, pht.Static{}, 8)
		if c := lastCauseOf(e, b.trace(t)); c != CauseWrongTarget {
			t.Errorf("cause = %v, want wrong-target", c)
		}
	})

	t.Run("stale-pointer", func(t *testing.T) {
		// The §7 displaced-target scenario: a trained NLS pointer chasing
		// an evicted line.
		const (
			H = isa.Addr(0x1000)
			T = isa.Addr(0x1100)
			E = isa.Addr(0x1100 + 1024)
		)
		b := newTB(H)
		for i := 0; i < 3; i++ {
			b.br(isa.UncondBranch, true, T)
			b.br(isa.UncondBranch, true, E)
			b.br(isa.UncondBranch, true, H)
		}
		e := NewNLSTableEngine(smallGeom(), 1024, pht.Static{}, 8)
		if c := lastCauseOf(e, b.trace(t)); c != CauseStalePointer {
			t.Errorf("cause = %v, want stale-pointer", c)
		}
	})

	t.Run("cold", func(t *testing.T) {
		b := newTB(0x1000)
		b.br(isa.UncondBranch, true, 0x1100)
		b.plain(1)
		e := NewNLSTableEngine(smallGeom(), 1024, pht.Static{}, 8)
		if c := lastCauseOf(e, b.trace(t)); c != CauseCold {
			t.Errorf("cause = %v, want cold", c)
		}
	})
}
