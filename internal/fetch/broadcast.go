package fetch

import (
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/trace"
)

// broadcastDepth is the per-worker channel capacity of the fan-out. Live
// memory of one broadcast is bounded by (workers*(broadcastDepth+1)+1)
// blocks regardless of trace length, which is what lets a streamed sweep
// run in O(chunk) memory.
const broadcastDepth = 4

// Broadcast replays a trace ONCE through every engine: each block drawn
// from src is fanned out to all engines before the next block is drawn, so
// a sweep cell of E engines reads the records one time instead of E times
// and each block is still cache-hot when the later engines replay it.
// Engines see exactly the record sequence of src, in order, via StepBlock.
// The worker pool is sized to min(GOMAXPROCS, len(engines)); use
// BroadcastWorkers to bound it explicitly. Returns the number of records
// replayed.
func Broadcast(src trace.ChunkSource, engines ...Engine) int64 {
	return BroadcastWorkers(src, runtime.GOMAXPROCS(0), engines...)
}

// annotated pairs a block with its optional shared run annotation.
type annotated struct {
	recs []trace.Record
	runs []uint8
}

// runStepper is the optional fast-path interface an engine satisfies to
// consume a RunChunkSource's shared annotations (all four built-in engines
// do, via base).
type runStepper interface {
	StepBlockRuns(recs []trace.Record, runs []uint8)
	ICache() *cache.Cache
}

// replayPlan resolves how blocks are drawn and how each engine replays
// them. When src annotates its blocks (trace.RunChunkSource) and an engine
// both accepts annotations and uses the line size they were computed for,
// that engine replays via StepBlockRuns — sharing the per-chunk boundary
// scan instead of re-deriving it; every other engine replays via StepBlock.
func replayPlan(src trace.ChunkSource, engines []Engine) (next func() annotated, step []func(annotated)) {
	rs, _ := src.(trace.RunChunkSource)
	if rs != nil && rs.RunLineBytes() > 0 {
		next = func() annotated {
			recs, runs := rs.NextChunkRuns()
			return annotated{recs, runs}
		}
	} else {
		rs = nil
		next = func() annotated { return annotated{recs: src.NextChunk()} }
	}
	step = make([]func(annotated), len(engines))
	for i, e := range engines {
		if re, ok := e.(runStepper); ok && rs != nil &&
			re.ICache().Geometry().LineBytes() == rs.RunLineBytes() {
			step[i] = func(b annotated) { re.StepBlockRuns(b.recs, b.runs) }
		} else {
			e := e
			step[i] = func(b annotated) { e.StepBlock(b.recs) }
		}
	}
	return next, step
}

// BroadcastWorkers is Broadcast with an explicit worker bound. Each engine
// is owned by exactly one worker for the whole replay, so every engine
// consumes blocks strictly in trace order with no per-record locking.
// workers <= 1 replays on the calling goroutine.
func BroadcastWorkers(src trace.ChunkSource, workers int, engines ...Engine) int64 {
	if len(engines) == 0 {
		return 0
	}
	next, step := replayPlan(src, engines)
	if workers > len(engines) {
		workers = len(engines)
	}
	if workers <= 1 {
		// Sequential chunk-major replay: block k visits every engine
		// while it is hot, then block k+1 is drawn.
		var n int64
		for blk := next(); len(blk.recs) > 0; blk = next() {
			for _, s := range step {
				s(blk)
			}
			n += int64(len(blk.recs))
		}
		return n
	}

	// Static round-robin partition of engines onto workers; each worker
	// drains its own bounded channel of shared (read-only) blocks.
	var wg sync.WaitGroup
	chans := make([]chan annotated, workers)
	for w := range chans {
		own := make([]func(annotated), 0, (len(engines)+workers-1)/workers)
		for i := w; i < len(engines); i += workers {
			own = append(own, step[i])
		}
		ch := make(chan annotated, broadcastDepth)
		chans[w] = ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blk := range ch {
				for _, s := range own {
					s(blk)
				}
			}
		}()
	}
	var n int64
	for blk := next(); len(blk.recs) > 0; blk = next() {
		n += int64(len(blk.recs))
		for _, ch := range chans {
			ch <- blk
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	return n
}
