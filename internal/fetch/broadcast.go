package fetch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/trace"
)

// broadcastDepth is the per-worker channel capacity of the fan-out. Live
// memory of one broadcast is bounded by (workers*(broadcastDepth+1)+1)
// blocks regardless of trace length, which is what lets a streamed sweep
// run in O(chunk) memory.
const broadcastDepth = 4

// Broadcast replays a trace ONCE through every engine: each block drawn
// from src is fanned out to all engines before the next block is drawn, so
// a sweep cell of E engines reads the records one time instead of E times
// and each block is still cache-hot when the later engines replay it.
// Engines see exactly the record sequence of src, in order, via StepBlock.
// The worker pool is sized to min(GOMAXPROCS, len(engines)); use
// BroadcastWorkers to bound it explicitly. Returns the number of records
// replayed.
func Broadcast(src trace.ChunkSource, engines ...Engine) int64 {
	return BroadcastWorkers(src, runtime.GOMAXPROCS(0), engines...)
}

// annotated pairs a block with its optional shared run annotation.
type annotated struct {
	recs []trace.Record
	runs []uint8
}

// runStepper is the optional fast-path interface an engine satisfies to
// consume a RunChunkSource's shared annotations (all four built-in engines
// do, via base).
type runStepper interface {
	StepBlockRuns(recs []trace.Record, runs []uint8)
	ICache() *cache.Cache
}

// annStepper is the optional interface an engine satisfies to replay from
// a shared fetch oracle's access annotations instead of simulating its own
// i-cache (Frontend implements it; see DESIGN.md §11). OracleGroup gates
// eligibility: engines whose cache state is not a pure function of the
// trace — wrong-path pollution on, or a probe attached — report ok=false
// and keep the private-cache path.
type annStepper interface {
	StepBlockAnnotated(recs []trace.Record, ann *cache.AccessAnnotations, runs []uint8)
	StepBlockEvents(recs []trace.Record, ann *cache.AccessAnnotations)
	OracleGroup() (cache.Geometry, bool)
}

// groupMember is one grouped engine: its broadcast index (for worker
// assignment) and its annotated-replay view.
type groupMember struct {
	idx int
	as  annStepper
}

// oracleGroup shares one fetch oracle among the eligible engines of equal
// geometry: the oracle simulates the group's i-cache once per block and
// every member consumes the resulting annotation.
type oracleGroup struct {
	oracle  *cache.Oracle
	members []groupMember
	// echoes are the engines of this geometry whose break metrics are
	// echoed from an equal-invariant leader in another group (see
	// Frontend.EchoInvariant): they skip replay entirely and only receive
	// this group's per-block i-cache bulk credits.
	echoes []*Frontend
	// runsOK records that the source's shared run annotation was computed
	// for this geometry's line size; otherwise members (and the oracle)
	// scan line boundaries themselves, with runs forced nil so both sides
	// agree on run-leader positions.
	runsOK bool
	// ann holds the group's reusable annotations on the sequential path:
	// one buffer for inline annotation, two when the double-buffered
	// pipeline annotates chunk k+1 while chunk k replays (the parity
	// token names which buffer a chunk owns).
	ann [2]cache.AccessAnnotations
}

// echoPair records one echoed engine and the replayed leader whose break
// metrics it adopts once the broadcast completes.
type echoPair struct {
	echo, leader *Frontend
}

// extractEchoes implements the cross-geometry echo dedup over a resolved
// group plan: among all grouped members, engines reporting equal
// EchoInvariant keys produce bit-identical break metrics from the same
// trace regardless of their cache geometry, so the first one found (the
// plan is deterministic: groups in first-seen geometry order, members in
// engine order) replays for real and every later one is demoted to an
// echo — removed from its group's member list, bulk-credited from its
// group's annotation each block, and patched with the leader's metrics at
// the end. Wrapped engines opt in by forwarding EchoFrontend.
func extractEchoes(groups []*oracleGroup) (pairs []echoPair) {
	leaders := make(map[string]*Frontend)
	for _, g := range groups {
		kept := g.members[:0]
		for _, m := range g.members {
			if es, ok := m.as.(interface{ EchoFrontend() *Frontend }); ok {
				if fr := es.EchoFrontend(); fr != nil {
					if key, ok := fr.EchoInvariant(); ok {
						if lead := leaders[key]; lead != nil {
							g.echoes = append(g.echoes, fr)
							pairs = append(pairs, echoPair{echo: fr, leader: lead})
							continue
						}
						leaders[key] = fr
					}
				}
			}
			kept = append(kept, m)
		}
		g.members = kept
	}
	return pairs
}

// dirShare is one chunk's direction-prediction bit stream, recorded by
// the owner engine and replayed by its followers (one bit per break, in
// break order). Identically configured cold direction predictors fed the
// identical break stream are bit-identical state machines, so the bits —
// and every counter derived from them — match what each follower's own
// predictor would have computed.
type dirShare struct {
	bits []uint64
	n    int
}

func (d *dirShare) reset() { d.bits, d.n = d.bits[:0], 0 }
func (d *dirShare) push(taken bool) {
	if d.n&63 == 0 {
		d.bits = append(d.bits, 0)
	}
	if taken {
		d.bits[d.n>>6] |= 1 << (d.n & 63)
	}
	d.n++
}
func (d *dirShare) at(i int) bool { return d.bits[i>>6]>>(i&63)&1 != 0 }

// dirSharePlan pairs a stream's owner with its followers for the
// end-of-broadcast state hand-off.
type dirSharePlan struct {
	owner     *Frontend
	followers []*Frontend
}

// extractDirShares groups the replaying members by direction-predictor
// configuration (Frontend.DirShareKey) and attaches each group with two or
// more engines to a shared bit stream; the first member in replay order
// becomes the owner, so its bits are always recorded before any follower
// consumes them. Only the sequential broadcast path may use this —
// parallel fan-out replays groups concurrently, with no owner-first
// ordering across them.
func extractDirShares(groups []*oracleGroup) []dirSharePlan {
	var plans []dirSharePlan
	owners := make(map[string]int)
	for _, g := range groups {
		for _, m := range g.members {
			es, ok := m.as.(interface{ EchoFrontend() *Frontend })
			if !ok {
				continue
			}
			fr := es.EchoFrontend()
			if fr == nil {
				continue
			}
			key, ok := fr.DirShareKey()
			if !ok {
				continue
			}
			if pi, seen := owners[key]; seen {
				plans[pi].followers = append(plans[pi].followers, fr)
			} else {
				owners[key] = len(plans)
				plans = append(plans, dirSharePlan{owner: fr})
			}
		}
	}
	kept := plans[:0]
	for _, p := range plans {
		if len(p.followers) == 0 {
			continue
		}
		ds := &dirShare{}
		p.owner.setDirShare(ds, true)
		for _, fr := range p.followers {
			fr.setDirShare(ds, false)
		}
		kept = append(kept, p)
	}
	return kept
}

// releaseDirShares detaches every engine from its shared stream and hands
// the owner's trained predictor state to the followers, leaving all of
// them exactly as if each had trained its own predictor.
func releaseDirShares(plans []dirSharePlan) {
	for _, p := range plans {
		src := p.owner.dirPredictor()
		p.owner.clearDirShare()
		for _, fr := range p.followers {
			fr.clearDirShare()
			fr.adoptDirState(src)
		}
	}
}

// broadcastPipeline gates the sequential path's double-buffered annotation
// pipeline. With a single P the annotator goroutines cannot overlap the
// replay and only add scheduling latency, so the pipeline engages exactly
// when spare parallelism exists; tests toggle the gate to exercise both
// paths on any machine.
var broadcastPipeline = runtime.GOMAXPROCS(0) > 1

// broadcastSequentialInline annotates and replays each chunk in one
// goroutine: annotate every group, replay every member, repeat.
func broadcastSequentialInline(next func() annotated, private []func(annotated), groups []*oracleGroup) int64 {
	var n int64
	for blk := next(); len(blk.recs) > 0; blk = next() {
		for _, g := range groups {
			runs := blk.runs
			if !g.runsOK {
				runs = nil
			}
			g.oracle.Annotate(blk.recs, runs, &g.ann[0])
			replayGroup(g, blk, &g.ann[0])
		}
		for _, s := range private {
			s(blk)
		}
		n += int64(len(blk.recs))
	}
	return n
}

// broadcastSequentialPipelined is broadcastSequentialInline with the
// annotation stage running one chunk ahead: an annotator goroutine fills
// the parity-p buffers of every group for chunk k+1 — each geometry
// group's oracle pass in its own goroutine, they share no state — while
// the main goroutine replays chunk k from the parity-(1-p) buffers. The
// two parity tokens circulate through the free channel, so a buffer is
// never annotated over until its chunk has fully replayed. Replay stays in
// the main goroutine in the exact order of the inline path, which keeps
// counters — and the shared direction-bit streams — bit-identical to it.
func broadcastSequentialPipelined(next func() annotated, private []func(annotated), groups []*oracleGroup) int64 {
	type slot struct {
		blk annotated
		par int
	}
	ready := make(chan slot, 1)
	free := make(chan int, 2)
	free <- 0
	free <- 1
	go func() {
		defer close(ready)
		for blk := next(); len(blk.recs) > 0; blk = next() {
			par := <-free
			var wg sync.WaitGroup
			for _, g := range groups {
				wg.Add(1)
				go func(g *oracleGroup) {
					defer wg.Done()
					runs := blk.runs
					if !g.runsOK {
						runs = nil
					}
					g.oracle.Annotate(blk.recs, runs, &g.ann[par])
				}(g)
			}
			wg.Wait()
			ready <- slot{blk, par}
		}
	}()
	var n int64
	for s := range ready {
		for _, g := range groups {
			replayGroup(g, s.blk, &g.ann[s.par])
		}
		for _, p := range private {
			p(s.blk)
		}
		n += int64(len(s.blk.recs))
		free <- s.par
	}
	return n
}

// replayGroup feeds one annotated chunk to a group's members and echoes.
func replayGroup(g *oracleGroup, blk annotated, ann *cache.AccessAnnotations) {
	for _, m := range g.members {
		m.as.StepBlockEvents(blk.recs, ann)
	}
	for _, ef := range g.echoes {
		ef.echoCredit(len(blk.recs), ann)
	}
}

// replayPlan resolves how blocks are drawn and how each engine replays
// them. Eligible engines (annStepper with OracleGroup ok) sharing a cache
// geometry with at least one other eligible engine form an oracleGroup and
// replay via StepBlockAnnotated from the group's shared oracle. Every
// other engine — pollution-on, probed, non-Frontend, or alone in its
// geometry (an oracle for one engine is pure overhead) — replays privately:
// via StepBlockRuns when src annotates blocks for its line size, else via
// StepBlock. private holds the private replay closures; groups the oracle
// groups (singletons already demoted).
func replayPlan(src trace.ChunkSource, engines []Engine) (next func() annotated, private []func(annotated), groups []*oracleGroup) {
	rs, _ := src.(trace.RunChunkSource)
	if rs != nil && rs.RunLineBytes() > 0 {
		next = func() annotated {
			recs, runs := rs.NextChunkRuns()
			return annotated{recs, runs}
		}
	} else {
		rs = nil
		next = func() annotated { return annotated{recs: src.NextChunk()} }
	}

	privateStep := func(e Engine) func(annotated) {
		if re, ok := e.(runStepper); ok && rs != nil &&
			re.ICache().Geometry().LineBytes() == rs.RunLineBytes() {
			return func(b annotated) { re.StepBlockRuns(b.recs, b.runs) }
		}
		return func(b annotated) { e.StepBlock(b.recs) }
	}

	// Tentatively group every eligible engine by geometry, in engine order
	// (map only for lookup, so the plan is deterministic).
	groupOf := make(map[cache.Geometry]*oracleGroup)
	for i, e := range engines {
		if as, ok := e.(annStepper); ok {
			if geom, eligible := as.OracleGroup(); eligible {
				g := groupOf[geom]
				if g == nil {
					g = &oracleGroup{
						oracle: cache.NewOracle(geom),
						runsOK: rs != nil && geom.LineBytes() == rs.RunLineBytes(),
					}
					groupOf[geom] = g
					groups = append(groups, g)
				}
				g.members = append(g.members, groupMember{idx: i, as: as})
				continue
			}
		}
		private = append(private, privateStep(e))
	}
	// Demote singleton groups: simulating an oracle plus one mirror is
	// strictly more work than one private cache.
	kept := groups[:0]
	for _, g := range groups {
		if len(g.members) < 2 {
			private = append(private, privateStep(engines[g.members[0].idx]))
			continue
		}
		kept = append(kept, g)
	}
	groups = kept
	return next, private, groups
}

// sharedAnn is one block's access annotation fanned to the workers owning
// a group's members; the last consumer recycles the slot buffer.
type sharedAnn struct {
	cache.AccessAnnotations
	refs atomic.Int32
}

// workItem is one unit handed to a parallel broadcast worker: a block for
// the worker's private engines (ann nil) or an annotated block for the
// worker's members of group gid.
type workItem struct {
	recs []trace.Record
	runs []uint8
	gid  int
	ann  *sharedAnn
}

// BroadcastWorkers is Broadcast with an explicit worker bound. Each engine
// is owned by exactly one worker for the whole replay, so every engine
// consumes blocks strictly in trace order with no per-record locking.
// workers <= 1 replays on the calling goroutine.
func BroadcastWorkers(src trace.ChunkSource, workers int, engines ...Engine) int64 {
	if len(engines) == 0 {
		return 0
	}
	next, private, groups := replayPlan(src, engines)
	echoes := extractEchoes(groups)
	if workers > len(engines) {
		workers = len(engines)
	}
	if workers <= 1 {
		// Sequential chunk-major replay: block k visits every engine
		// while it is hot, then block k+1 is drawn. Each group's oracle
		// annotates the block once into a reusable group buffer; its
		// members then consume the annotation back to back and its echoes
		// take only the bulk i-cache credit. Replay order is deterministic
		// here, so engines with identical direction predictors
		// additionally share one recorded bit stream per chunk.
		shares := extractDirShares(groups)
		var n int64
		if broadcastPipeline && len(groups) > 0 {
			n = broadcastSequentialPipelined(next, private, groups)
		} else {
			n = broadcastSequentialInline(next, private, groups)
		}
		for _, g := range groups {
			g.ann[0].Release()
			g.ann[1].Release()
		}
		for _, p := range echoes {
			p.echo.adoptBreakMetrics(p.leader)
		}
		releaseDirShares(shares)
		return n
	}

	// Parallel fan-out. Engines keep their static round-robin worker
	// assignment (engine i → worker i mod workers); each worker drains its
	// own bounded channel. Grouped engines add one producer goroutine per
	// group: it annotates each block once and fans the shared annotation
	// to exactly the workers owning members of that group, refcounted so
	// the last consumer recycles the buffer. The producer graph is acyclic
	// (main → group oracles → workers, main → workers), so the bounded
	// channels cannot deadlock.
	wch := make([]chan workItem, workers)
	ownPrivate := make([][]func(annotated), workers)
	ownGrouped := make([][][]groupMember, workers)
	for w := range wch {
		wch[w] = make(chan workItem, broadcastDepth)
		ownGrouped[w] = make([][]groupMember, len(groups))
	}
	// Private engines and group members round-robin onto workers by their
	// original engine index; private closures round-robin by position
	// (their engine indices are no longer needed).
	for i, s := range private {
		w := i % workers
		ownPrivate[w] = append(ownPrivate[w], s)
	}
	groupWorkers := make([][]int, len(groups))
	for gi, g := range groups {
		seen := make(map[int]bool, workers)
		for _, m := range g.members {
			w := m.idx % workers
			ownGrouped[w][gi] = append(ownGrouped[w][gi], m)
			if !seen[w] {
				seen[w] = true
				groupWorkers[gi] = append(groupWorkers[gi], w)
			}
		}
	}

	var wwg sync.WaitGroup
	for w := range wch {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for it := range wch[w] {
				if it.ann == nil {
					for _, s := range ownPrivate[w] {
						s(annotated{it.recs, it.runs})
					}
					continue
				}
				for _, m := range ownGrouped[w][it.gid] {
					m.as.StepBlockEvents(it.recs, &it.ann.AccessAnnotations)
				}
				if it.ann.refs.Add(-1) == 0 {
					it.ann.Release()
				}
			}
		}(w)
	}

	var gwg sync.WaitGroup
	gin := make([]chan annotated, len(groups))
	for gi, g := range groups {
		gin[gi] = make(chan annotated, broadcastDepth)
		targets := groupWorkers[gi]
		gwg.Add(1)
		go func(gi int, g *oracleGroup, targets []int) {
			defer gwg.Done()
			for blk := range gin[gi] {
				runs := blk.runs
				if !g.runsOK {
					runs = nil
				}
				ann := &sharedAnn{}
				g.oracle.Annotate(blk.recs, runs, &ann.AccessAnnotations)
				// The group's echoes are owned by this goroutine alone
				// (they appear in no worker's member list), so their bulk
				// credit happens here, before the annotation is shared.
				for _, ef := range g.echoes {
					ef.echoCredit(len(blk.recs), &ann.AccessAnnotations)
				}
				if len(targets) == 0 {
					// Every member of this geometry was echoed away; the
					// annotation existed only for the credit above.
					ann.Release()
					continue
				}
				ann.refs.Store(int32(len(targets)))
				for _, w := range targets {
					wch[w] <- workItem{recs: blk.recs, runs: runs, gid: gi, ann: ann}
				}
			}
		}(gi, g, targets)
	}

	anyPrivate := make([]bool, workers)
	for w := range anyPrivate {
		anyPrivate[w] = len(ownPrivate[w]) > 0
	}
	var n int64
	for blk := next(); len(blk.recs) > 0; blk = next() {
		n += int64(len(blk.recs))
		for gi := range gin {
			gin[gi] <- blk
		}
		for w, own := range anyPrivate {
			if own {
				wch[w] <- workItem{recs: blk.recs, runs: blk.runs, gid: -1}
			}
		}
	}
	for gi := range gin {
		close(gin[gi])
	}
	gwg.Wait()
	for _, ch := range wch {
		close(ch)
	}
	wwg.Wait()
	for _, p := range echoes {
		p.echo.adoptBreakMetrics(p.leader)
	}
	return n
}
