// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by the workload generators and executors.
//
// The simulator's experiments must be exactly reproducible across runs, Go
// releases, and platforms, so we implement splitmix64 (for seeding) and
// xoshiro256** (for the stream) directly rather than depending on math/rand,
// whose stream is not guaranteed stable across Go versions.
package xrand

import (
	"math"
	"math/bits"
)

// Rng is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Rng struct {
	s [4]uint64
}

// splitmix64 advances a seed state and returns the next output. It is the
// standard seeding recipe for xoshiro.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rng {
	r := &Rng{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 of any seed gives one
	// with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rng) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rng) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	thresh := -n % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rng) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Rng) Range(lo, hi int) int {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1), i.e. the number of trials up to and including the first success
// with success probability 1/m. Useful for basic-block lengths.
func (r *Rng) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	u := r.Float64()
	// Inverse CDF of the geometric distribution on {1, 2, ...}.
	n := int(math.Ceil(math.Log1p(-u) / math.Log(1-1/m)))
	if n < 1 {
		n = 1
	}
	return n
}

// Zipf samples an index in [0, n) with probability proportional to
// 1/(i+1)^alpha. It uses a cached weight table owned by the Zipfian struct;
// for one-off use see NewZipf.
type Zipf struct {
	cdf []float64
	rng *Rng
}

// NewZipf builds a Zipf sampler over n items with exponent alpha, drawing
// randomness from r. It panics if n <= 0.
func NewZipf(r *Rng, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Next returns the next Zipf-distributed index in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of items the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Shuffle permutes the first n indices using swaps provided by swap.
func (r *Rng) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
