package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d identical values of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnDistribution(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d samples, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(19)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func TestRangeInclusive(t *testing.T) {
	r := New(23)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("Range(3,5) never produced %d", v)
		}
	}
	if got := r.Range(7, 7); got != 7 {
		t.Errorf("Range(7,7) = %d", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const trials = 200000
	sum := 0
	for i := 0; i < trials; i++ {
		v := r.Geometric(5)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / trials
	if math.Abs(mean-5) > 0.25 {
		t.Errorf("Geometric(5) mean = %v", mean)
	}
	if got := r.Geometric(0.5); got != 1 {
		t.Errorf("Geometric(0.5) = %d, want 1", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if z.N() != 100 {
		t.Errorf("N() = %d", z.N())
	}
}

func TestZipfUniformAlphaZero(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < trials/10*8/10 || c > trials/10*12/10 {
			t.Errorf("alpha=0 bucket %d = %d, want about %d", i, c, trials/10)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(41)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("value %d duplicated after shuffle", v)
		}
		seen[v] = true
	}
}
