package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestBEPFormula(t *testing.T) {
	// §5.2 example: a BEP of 0.5 means the average branch incurs a
	// half-cycle penalty. With 100 breaks, 10 misfetches (1 cy) and 10
	// mispredicts (4 cy): BEP = (10·1 + 10·4)/100 = 0.5.
	var c Counters
	c.Breaks = 100
	for i := 0; i < 10; i++ {
		c.AddMisfetch(isa.CondBranch)
		c.AddMispredict(isa.CondBranch)
	}
	p := Default()
	if !almost(c.PctMisfetched(), 10) || !almost(c.PctMispredicted(), 10) {
		t.Fatalf("pct = %v/%v", c.PctMisfetched(), c.PctMispredicted())
	}
	if !almost(c.BEP(p), 0.5) {
		t.Errorf("BEP = %v, want 0.5", c.BEP(p))
	}
	if !almost(c.MisfetchBEP(p), 0.1) || !almost(c.MispredictBEP(p), 0.4) {
		t.Errorf("components = %v/%v", c.MisfetchBEP(p), c.MispredictBEP(p))
	}
	if !almost(c.MisfetchBEP(p)+c.MispredictBEP(p), c.BEP(p)) {
		t.Error("components do not sum to BEP")
	}
}

func TestCPIFormula(t *testing.T) {
	// CPI = (insns + BEP·breaks + misses·5) / insns.
	var c Counters
	c.Instructions = 1000
	c.Breaks = 100
	c.ICacheMisses = 20
	for i := 0; i < 10; i++ {
		c.AddMispredict(isa.CondBranch) // BEP = 0.4
	}
	p := Default()
	want := (1000.0 + 0.4*100 + 20*5) / 1000
	if !almost(c.CPI(p), want) {
		t.Errorf("CPI = %v, want %v", c.CPI(p), want)
	}
}

func TestCPIFloorIsOne(t *testing.T) {
	var c Counters
	c.Instructions = 500
	if got := c.CPI(Default()); !almost(got, 1) {
		t.Errorf("penalty-free CPI = %v, want 1", got)
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	var c Counters
	p := Default()
	if c.PctMisfetched() != 0 || c.PctMispredicted() != 0 || c.BEP(p) != 0 ||
		c.CPI(p) != 0 || c.ICacheMissRate() != 0 || c.CondAccuracy() != 0 {
		t.Error("zero counters produced nonzero metrics")
	}
}

func TestPerKindBreakdownConsistency(t *testing.T) {
	var c Counters
	c.Breaks = 10
	c.AddMisfetch(isa.Call)
	c.AddMisfetch(isa.Return)
	c.AddMispredict(isa.IndirectJump)
	var mf, mp uint64
	for k := isa.Kind(0); k < isa.NumKinds; k++ {
		mf += c.MisfetchByKind[k]
		mp += c.MispredictByKind[k]
	}
	if mf != c.Misfetches || mp != c.Mispredicts {
		t.Errorf("per-kind sums %d/%d != totals %d/%d", mf, mp, c.Misfetches, c.Mispredicts)
	}
}

func TestCondAccuracy(t *testing.T) {
	var c Counters
	c.CondBranches = 200
	c.CondDirWrong = 30
	if !almost(c.CondAccuracy(), 0.85) {
		t.Errorf("CondAccuracy = %v", c.CondAccuracy())
	}
}

func TestICacheMissRate(t *testing.T) {
	var c Counters
	c.ICacheAccesses = 1000
	c.ICacheMisses = 25
	if !almost(c.ICacheMissRate(), 0.025) {
		t.Errorf("miss rate = %v", c.ICacheMissRate())
	}
}

func TestSummaryContainsKeyFields(t *testing.T) {
	var c Counters
	c.Instructions = 100
	c.Breaks = 10
	s := c.Summary(Default())
	for _, field := range []string{"insns=100", "breaks=10", "BEP=", "CPI="} {
		if !strings.Contains(s, field) {
			t.Errorf("summary missing %q: %s", field, s)
		}
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.Instructions = 5
	c.AddMisfetch(isa.Call)
	c.Reset()
	if c.Instructions != 0 || c.Misfetches != 0 || c.MisfetchByKind[isa.Call] != 0 {
		t.Error("Reset incomplete")
	}
}

func TestDefaultPenalties(t *testing.T) {
	p := Default()
	if p.Misfetch != 1 || p.Mispredict != 4 || p.CacheMiss != 5 {
		t.Errorf("Default() = %+v, want the paper's 1/4/5", p)
	}
}

// TestEmptyRunRatesAreZero pins the zero-denominator contract: every
// derived rate of a zero-value (empty-run) Counters is exactly 0, never
// NaN or Inf, so reports and JSON for degenerate runs stay well-formed.
func TestEmptyRunRatesAreZero(t *testing.T) {
	var c Counters
	p := Default()
	rates := map[string]float64{
		"PctMisfetched":   c.PctMisfetched(),
		"PctMispredicted": c.PctMispredicted(),
		"Per100Breaks":    c.Per100Breaks(7),
		"BEP":             c.BEP(p),
		"MisfetchBEP":     c.MisfetchBEP(p),
		"MispredictBEP":   c.MispredictBEP(p),
		"ICacheMissRate":  c.ICacheMissRate(),
		"CondAccuracy":    c.CondAccuracy(),
		"CPI":             c.CPI(p),
		"PrefAccuracy":    c.PrefAccuracy(),
		"PrefCoverage":    c.PrefCoverage(),
		"PrefTimeliness":  c.PrefTimeliness(),
	}
	for name, v := range rates {
		if v != 0 {
			t.Errorf("%s on empty run = %v, want 0", name, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s on empty run is not finite: %v", name, v)
		}
	}
	if s := c.Summary(p); strings.Contains(s, "NaN") {
		t.Errorf("empty-run summary contains NaN: %s", s)
	}
}

// TestPer100Breaks checks the guarded helper against a direct computation.
func TestPer100Breaks(t *testing.T) {
	c := Counters{Breaks: 200}
	if got := c.Per100Breaks(3); got != 1.5 {
		t.Errorf("Per100Breaks(3) over 200 breaks = %v, want 1.5", got)
	}
}
