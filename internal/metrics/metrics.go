// Package metrics defines the performance accounting of §5.2 of the paper:
// misfetch and mispredict rates, the branch execution penalty (BEP), and
// cycles per instruction (CPI) for a single-issue machine.
package metrics

import (
	"fmt"

	"repro/internal/isa"
)

// Penalties holds the cycle costs of §5.2. The paper assumes a one-cycle
// misfetch penalty, a four-cycle mispredict penalty, and a five-cycle
// instruction-cache miss penalty. The JSON tags fix the wire form shared
// by the cell-store key document and the sweep service's job decoder.
type Penalties struct {
	Misfetch   float64 `json:"misfetch"`
	Mispredict float64 `json:"mispredict"`
	CacheMiss  float64 `json:"cache_miss"`
}

// Default returns the paper's penalty assumptions.
func Default() Penalties {
	return Penalties{Misfetch: 1, Mispredict: 4, CacheMiss: 5}
}

// Counters accumulates the raw event counts of one simulation. The JSON
// tags fix the serialized schema the content-addressed results store
// persists per grid cell; every derived metric (BEP, CPI, rates) is
// recomputable from these raw counts, so stored cells stay valid when
// penalty assumptions change (penalties are part of the cell key, not the
// cell value).
type Counters struct {
	// Instructions is the number of instructions executed.
	Instructions uint64 `json:"instructions"`
	// Breaks is the number of executed control-transfer instructions.
	Breaks uint64 `json:"breaks"`
	// Misfetches counts branches whose next fetch had to wait for decode
	// (target or type unavailable) although the direction was right.
	Misfetches uint64 `json:"misfetches"`
	// Mispredicts counts branches whose predicted direction or target
	// value was wrong, discovered at execute. A branch is never both
	// misfetched and mispredicted (§5.2).
	Mispredicts uint64 `json:"mispredicts"`
	// MisfetchByKind / MispredictByKind break the penalties down by
	// branch kind for diagnosis.
	MisfetchByKind   [isa.NumKinds]uint64 `json:"misfetch_by_kind"`
	MispredictByKind [isa.NumKinds]uint64 `json:"mispredict_by_kind"`
	// CondBranches and CondDirWrong track raw PHT direction accuracy.
	CondBranches uint64 `json:"cond_branches"`
	CondDirWrong uint64 `json:"cond_dir_wrong"`
	// ICacheAccesses and ICacheMisses are the instruction cache counters.
	ICacheAccesses uint64 `json:"icache_accesses"`
	ICacheMisses   uint64 `json:"icache_misses"`
	// ICacheColdMisses counts the compulsory subset of ICacheMisses: demand
	// misses on lines never touched before (a line whose compulsory miss
	// was absorbed by a useful prefetch never counts). omitempty keeps the
	// serialized cell schema byte-stable for stores written before the
	// field existed; see experiments.Store for how stale cells are aged.
	ICacheColdMisses uint64 `json:"icache_cold_misses,omitempty"`
	// Prefetch lifecycle counters (DESIGN.md §14), mirrored from
	// cache.PrefetchStats. All zero — and elided from JSON — when the
	// engine has no prefetcher.
	PrefIssued    uint64 `json:"pref_issued,omitempty"`
	PrefUseful    uint64 `json:"pref_useful,omitempty"`
	PrefLate      uint64 `json:"pref_late,omitempty"`
	PrefDropped   uint64 `json:"pref_dropped,omitempty"`
	PrefRedundant uint64 `json:"pref_redundant,omitempty"`
	PrefUnused    uint64 `json:"pref_unused,omitempty"`
}

// AddMisfetch records a misfetched branch of the given kind.
func (c *Counters) AddMisfetch(k isa.Kind) {
	c.Misfetches++
	c.MisfetchByKind[k]++
}

// AddMispredict records a mispredicted branch of the given kind.
func (c *Counters) AddMispredict(k isa.Kind) {
	c.Mispredicts++
	c.MispredictByKind[k]++
}

// Per100Breaks returns n per 100 executed breaks — the guarded division
// every per-break rate shares, so an empty run (zero breaks) reads as a
// zero rate rather than NaN in reports and JSON.
func (c *Counters) Per100Breaks(n uint64) float64 {
	if c.Breaks == 0 {
		return 0
	}
	return 100 * float64(n) / float64(c.Breaks)
}

// PctMisfetched returns %MfB: misfetched branches per 100 executed breaks.
func (c *Counters) PctMisfetched() float64 {
	return c.Per100Breaks(c.Misfetches)
}

// PctMispredicted returns %MpB: mispredicted branches per 100 executed
// breaks.
func (c *Counters) PctMispredicted() float64 {
	return c.Per100Breaks(c.Mispredicts)
}

// BEP returns the branch execution penalty of Yeh & Patt as used in §5.2:
//
//	BEP = (%MfB × misfetch penalty + %MpB × mispredict penalty) / 100
//
// i.e. the average penalty cycles suffered per executed break.
func (c *Counters) BEP(p Penalties) float64 {
	return (c.PctMisfetched()*p.Misfetch + c.PctMispredicted()*p.Mispredict) / 100
}

// MisfetchBEP returns the misfetch component of the BEP (the upper part of
// the paper's stacked bars).
func (c *Counters) MisfetchBEP(p Penalties) float64 {
	return c.PctMisfetched() * p.Misfetch / 100
}

// MispredictBEP returns the mispredict component of the BEP (the lower part
// of the stacked bars).
func (c *Counters) MispredictBEP(p Penalties) float64 {
	return c.PctMispredicted() * p.Mispredict / 100
}

// ICacheMissRate returns misses per access.
func (c *Counters) ICacheMissRate() float64 {
	if c.ICacheAccesses == 0 {
		return 0
	}
	return float64(c.ICacheMisses) / float64(c.ICacheAccesses)
}

// CondAccuracy returns the fraction of conditional branches whose direction
// was predicted correctly.
func (c *Counters) CondAccuracy() float64 {
	if c.CondBranches == 0 {
		return 0
	}
	return 1 - float64(c.CondDirWrong)/float64(c.CondBranches)
}

// PrefAccuracy returns the fraction of issued prefetches that were on-path:
// the line was demanded while in flight (late) or after fill (useful). The
// remainder were evicted unused or overwritten. Zero when nothing issued.
func (c *Counters) PrefAccuracy() float64 {
	if c.PrefIssued == 0 {
		return 0
	}
	return float64(c.PrefUseful+c.PrefLate) / float64(c.PrefIssued)
}

// PrefCoverage returns the fraction of would-be demand misses the
// prefetcher eliminated: useful prefetches over useful plus the demand
// misses that still happened. Zero on an empty run.
func (c *Counters) PrefCoverage() float64 {
	if c.PrefUseful+c.ICacheMisses == 0 {
		return 0
	}
	return float64(c.PrefUseful) / float64(c.PrefUseful+c.ICacheMisses)
}

// PrefTimeliness returns the fraction of on-path prefetches that arrived
// before the demand access (useful over useful plus late). Zero when no
// prefetch was ever on-path.
func (c *Counters) PrefTimeliness() float64 {
	if c.PrefUseful+c.PrefLate == 0 {
		return 0
	}
	return float64(c.PrefUseful) / float64(c.PrefUseful+c.PrefLate)
}

// CPI returns cycles per instruction for the single-issue machine of §5.2:
//
//	CPI = (#insns + BEP × #branches + #misses × miss penalty) / #insns
//
// CPI cannot be less than 1 and excludes data-cache and resource stalls.
func (c *Counters) CPI(p Penalties) float64 {
	if c.Instructions == 0 {
		return 0
	}
	cycles := float64(c.Instructions) +
		c.BEP(p)*float64(c.Breaks) +
		float64(c.ICacheMisses)*p.CacheMiss
	return cycles / float64(c.Instructions)
}

// Summary renders a one-line report.
func (c *Counters) Summary(p Penalties) string {
	return fmt.Sprintf("insns=%d breaks=%d %%MfB=%.2f %%MpB=%.2f BEP=%.3f CPI=%.3f icache-miss=%.2f%% cond-acc=%.2f%%",
		c.Instructions, c.Breaks, c.PctMisfetched(), c.PctMispredicted(),
		c.BEP(p), c.CPI(p), 100*c.ICacheMissRate(), 100*c.CondAccuracy())
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }
