package cache

import (
	"testing"

	"repro/internal/isa"
)

// line returns the address of line n of a 32-byte-line address space.
func line(n int) isa.Addr { return isa.Addr(n * 32) }

func TestPrefetchLifecycle(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	c.EnablePrefetch(8, 3) // 3-access fill latency

	// Timely: prefetch, then 3 demand accesses elsewhere to drain, then
	// the demand hit on the prefetched line.
	c.Prefetch(line(1))
	c.Access(line(10))
	c.Access(line(11))
	c.Access(line(12))
	if hit, _ := c.Access(line(1)); !hit {
		t.Fatalf("drained prefetch did not satisfy the demand access")
	}
	st := c.PrefetchStats()
	if st.Issued != 1 || st.Useful != 1 || st.Late != 0 {
		t.Fatalf("timely prefetch stats: %+v", st)
	}

	// Late: demand arrives while the prefetch is still in flight.
	c.Prefetch(line(2))
	if hit, _ := c.Access(line(2)); hit {
		t.Fatalf("in-flight prefetch satisfied a demand access")
	}
	if st = c.PrefetchStats(); st.Late != 1 {
		t.Fatalf("late prefetch stats: %+v", st)
	}

	// Redundant: the line is already resident, then already in flight.
	c.Prefetch(line(1))
	c.Prefetch(line(3))
	c.Prefetch(line(3))
	if st = c.PrefetchStats(); st.Redundant != 2 {
		t.Fatalf("redundant prefetch stats: %+v", st)
	}
}

func TestPrefetchMSHRCap(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	c.EnablePrefetch(2, 100)
	c.Prefetch(line(1))
	c.Prefetch(line(2))
	c.Prefetch(line(3)) // both MSHRs busy
	st := c.PrefetchStats()
	if st.Issued != 2 || st.Dropped != 1 {
		t.Fatalf("MSHR cap stats: %+v", st)
	}
	// A late demand frees the MSHR; capacity returns.
	c.Access(line(1))
	c.Prefetch(line(4))
	if st = c.PrefetchStats(); st.Issued != 3 || st.Dropped != 1 {
		t.Fatalf("post-free stats: %+v", st)
	}
}

func TestPrefetchUnusedEviction(t *testing.T) {
	// Direct-mapped 2-set cache (64 bytes): lines 0 and 2 collide in set 0.
	c := New(MustGeometry(64, 32, 1))
	c.EnablePrefetch(8, 1)
	c.Prefetch(line(2))
	c.Access(line(1)) // set 1: drains the fill of line 2 into set 0
	if _, resident := c.Contains(line(2)); !resident {
		t.Fatalf("prefetch fill did not land")
	}
	c.Access(line(0)) // evicts the never-demanded line 2
	st := c.PrefetchStats()
	if st.Unused != 1 || st.Useful != 0 {
		t.Fatalf("unused eviction stats: %+v", st)
	}
}

func TestColdMissTracking(t *testing.T) {
	c := New(MustGeometry(64, 32, 1))
	c.Access(line(0)) // first touch: cold
	c.Access(line(2)) // first touch, evicts line 0: cold
	c.Access(line(0)) // conflict miss, line already seen: not cold
	if c.Misses() != 3 || c.ColdMisses() != 2 {
		t.Fatalf("misses=%d cold=%d, want 3/2", c.Misses(), c.ColdMisses())
	}
}

// TestPrefetchAbsorbsColdMiss: a useful prefetch is the line's first touch,
// so the line never shows up in the cold bucket — the property the FDIP
// figure's cold column is built on.
func TestPrefetchAbsorbsColdMiss(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	c.EnablePrefetch(8, 1)
	c.Prefetch(line(5))
	c.Access(line(9)) // drains the fill (cold miss of line 9 itself)
	if hit, _ := c.Access(line(5)); !hit {
		t.Fatalf("prefetched line not resident")
	}
	if c.ColdMisses() != 1 {
		t.Fatalf("cold=%d, want 1 (only the draining access's own miss)", c.ColdMisses())
	}
	// An invariant the store's stale-cell detector relies on: any run with
	// misses has at least one cold miss.
	if c.Misses() > 0 && c.ColdMisses() == 0 {
		t.Fatalf("misses without cold misses")
	}
}

func TestPrefetchReset(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	c.EnablePrefetch(2, 5)
	c.Prefetch(line(1))
	c.Access(line(2))
	c.Reset()
	if st := c.PrefetchStats(); st != (PrefetchStats{}) {
		t.Fatalf("Reset kept prefetch stats: %+v", st)
	}
	if c.ColdMisses() != 0 {
		t.Fatalf("Reset kept cold misses")
	}
	if !c.PrefetchEnabled() {
		t.Fatalf("Reset disabled prefetching")
	}
	// The model still works after Reset.
	c.Prefetch(line(3))
	if st := c.PrefetchStats(); st.Issued != 1 {
		t.Fatalf("post-Reset issue: %+v", st)
	}
}
