package cache

import "repro/internal/isa"

// tagValid marks an occupied slot in the packed tag array. Line addresses
// are word addresses shifted down by at least lineShift >= 2 bits, so bit
// 31 is never part of a real line address and packing the valid bit there
// lets the hit check (and every content probe) touch one word instead of
// two parallel arrays.
const tagValid = 1 << 31

// Cache is an instruction cache with true-LRU replacement. It tracks only
// tags (the simulator never needs instruction bytes) and counts accesses and
// misses.
type Cache struct {
	geom Geometry

	// Flattened [set][way] arrays.
	tags []uint32 // tagValid | resident line address; 0 = empty slot
	// stamp is the LRU clock per slot (larger = more recently used),
	// allocated on first Access: a cache used only as the tag mirror of
	// an annotated replay (DESIGN.md §11) never makes LRU decisions and
	// never pays for the array.
	stamp []uint64

	clock uint64

	accesses uint64
	misses   uint64

	// Slot of the most recent Access (hit or fill), for batched replay:
	// a run of same-line fetches can refresh this slot without re-probing.
	lastSet, lastWay int

	// onReplace, if set, is invoked when a fill replaces the contents of
	// (set, way) — including filling a previously invalid slot. The
	// NLS-cache couples predictor state to cache lines and must discard
	// it when the line is replaced.
	onReplace func(set, way int)
}

// New builds an empty cache with the given geometry.
func New(g Geometry) *Cache {
	return &Cache{
		geom: g,
		tags: make([]uint32, g.NumSets()*g.Assoc()),
	}
}

// Geometry returns the cache's geometry.
func (c *Cache) Geometry() Geometry { return c.geom }

// SetOnReplace registers a callback invoked whenever a fill replaces the
// line in (set, way).
func (c *Cache) SetOnReplace(fn func(set, way int)) { c.onReplace = fn }

func (c *Cache) slot(set, way int) int { return set*c.geom.assoc + way }

// Probe looks up the line containing address a without changing any cache
// state (no LRU update, no fill, no statistics). It returns the way where
// the line resides.
func (c *Cache) Probe(a isa.Addr) (way int, hit bool) {
	want := c.geom.LineAddr(a) | tagValid
	base := int(want&c.geom.setMask) * c.geom.assoc
	for w := 0; w < c.geom.assoc; w++ {
		if c.tags[base+w] == want {
			return w, true
		}
	}
	return 0, false
}

// Access performs a fetch of the line containing a: on a hit it refreshes
// LRU state; on a miss it fills the line into the LRU way of its set. It
// returns whether the access hit and the way where the line now resides.
func (c *Cache) Access(a isa.Addr) (hit bool, way int) {
	c.accesses++
	if c.stamp == nil {
		c.stamp = make([]uint64, len(c.tags))
	}
	want := c.geom.LineAddr(a) | tagValid
	// setMask is well below the valid bit, so masking the packed tag
	// selects the set directly.
	set := int(want & c.geom.setMask)
	base := set * c.geom.assoc
	c.clock++
	// Hit check and LRU victim search in one pass.
	victim, victimStamp := 0, ^uint64(0)
	for w := 0; w < c.geom.assoc; w++ {
		s := base + w
		t := c.tags[s]
		if t == want {
			c.stamp[s] = c.clock
			c.lastSet, c.lastWay = set, w
			return true, w
		}
		if t&tagValid == 0 {
			// Prefer invalid slots; stamp 0 loses to any valid slot.
			if victimStamp != 0 {
				victim, victimStamp = w, 0
			}
			continue
		}
		if c.stamp[s] < victimStamp {
			victim, victimStamp = w, c.stamp[s]
		}
	}
	c.misses++
	s := base + victim
	c.tags[s] = want
	c.stamp[s] = c.clock
	c.lastSet, c.lastWay = set, victim
	if c.onReplace != nil {
		c.onReplace(set, victim)
	}
	return false, victim
}

// LastSlot returns the (set, way) of the most recent Access. The line
// accessed then is still resident there as long as no later Access has
// evicted it — in particular, immediately after an Access it always is.
func (c *Cache) LastSlot() (set, way int) { return c.lastSet, c.lastWay }

// AccessRun applies n consecutive fetches that all hit the line resident in
// (set, way): counters and LRU state end exactly as n individual Access
// calls to that line would leave them (each access advances the LRU clock;
// the slot's stamp is the clock after the last one). The caller must know
// the line is resident and untouched since it learned (set, way) — the
// batched replay path uses this for straight-line runs within one cache
// line, where the preceding access proved residency.
func (c *Cache) AccessRun(set, way int, n uint64) {
	c.accesses += n
	c.clock += n
	c.stamp[c.slot(set, way)] = c.clock
}

// ApplyFill installs the line containing a into way of its set, firing
// onReplace exactly as the fill path of Access does. It is the mirror half
// of the annotated replay (DESIGN.md §11): a shared fetch Oracle running
// the identical access stream decided this access misses and fills way, so
// the engine replays only the fill's architectural effect — tag contents
// and the replacement callback that predictor state is coupled to. LRU
// stamps and the access counters are deliberately NOT touched: annotated
// replay never consults this cache's LRU state (the oracle owns the
// replacement decisions) and credits counters in bulk via AddAccesses.
func (c *Cache) ApplyFill(a isa.Addr, way int) {
	line := c.geom.LineAddr(a)
	set := c.geom.SetOfLine(line)
	c.tags[c.slot(set, way)] = line | tagValid
	if c.onReplace != nil {
		c.onReplace(set, way)
	}
}

// AddAccesses credits n accesses, misses of them missing, to the counters
// in one step — the annotated replay's per-block bulk equivalent of the
// per-record counting inside Access.
func (c *Cache) AddAccesses(n, misses uint64) {
	c.accesses += n
	c.misses += misses
}

// Contains reports whether the line holding address a is resident, and if
// so, in which way. It never mutates state.
func (c *Cache) Contains(a isa.Addr) (way int, resident bool) {
	return c.Probe(a)
}

// ResidentAt reports which line address currently occupies (set, way).
func (c *Cache) ResidentAt(set, way int) (lineAddr uint32, ok bool) {
	t := c.tags[c.slot(set, way)]
	if t&tagValid == 0 {
		return 0, false
	}
	return t &^ tagValid, true
}

// HoldsAt reports whether the slot (set, way) currently holds the line
// containing address a. This is the check an NLS pointer prediction needs:
// the predicted location must contain the target's line for the fetch to be
// correct.
func (c *Cache) HoldsAt(set, way int, a isa.Addr) bool {
	if uint(set) >= uint(c.geom.numSets) || uint(way) >= uint(c.geom.assoc) {
		return false
	}
	return c.tags[set*c.geom.assoc+way] == c.geom.LineAddr(a)|tagValid
}

// Accesses returns the number of Access calls.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of Access calls that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset empties the cache and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.stamp {
		c.stamp[i] = 0
	}
	c.clock = 0
	c.accesses = 0
	c.misses = 0
	c.lastSet, c.lastWay = 0, 0
}
