package cache

import "repro/internal/isa"

// Cache is an instruction cache with true-LRU replacement. It tracks only
// tags (the simulator never needs instruction bytes) and counts accesses and
// misses.
type Cache struct {
	geom Geometry

	// Flattened [set][way] arrays.
	tags  []uint32 // line address resident in the slot
	valid []bool
	stamp []uint64 // LRU clock; larger = more recently used

	clock uint64

	accesses uint64
	misses   uint64

	// Slot of the most recent Access (hit or fill), for batched replay:
	// a run of same-line fetches can refresh this slot without re-probing.
	lastSet, lastWay int

	// onReplace, if set, is invoked when a fill replaces the contents of
	// (set, way) — including filling a previously invalid slot. The
	// NLS-cache couples predictor state to cache lines and must discard
	// it when the line is replaced.
	onReplace func(set, way int)
}

// New builds an empty cache with the given geometry.
func New(g Geometry) *Cache {
	n := g.NumSets() * g.Assoc()
	return &Cache{
		geom:  g,
		tags:  make([]uint32, n),
		valid: make([]bool, n),
		stamp: make([]uint64, n),
	}
}

// Geometry returns the cache's geometry.
func (c *Cache) Geometry() Geometry { return c.geom }

// SetOnReplace registers a callback invoked whenever a fill replaces the
// line in (set, way).
func (c *Cache) SetOnReplace(fn func(set, way int)) { c.onReplace = fn }

func (c *Cache) slot(set, way int) int { return set*c.geom.Assoc() + way }

// Probe looks up the line containing address a without changing any cache
// state (no LRU update, no fill, no statistics). It returns the way where
// the line resides.
func (c *Cache) Probe(a isa.Addr) (way int, hit bool) {
	line := c.geom.LineAddr(a)
	set := c.geom.SetOfLine(line)
	for w := 0; w < c.geom.Assoc(); w++ {
		s := c.slot(set, w)
		if c.valid[s] && c.tags[s] == line {
			return w, true
		}
	}
	return 0, false
}

// Access performs a fetch of the line containing a: on a hit it refreshes
// LRU state; on a miss it fills the line into the LRU way of its set. It
// returns whether the access hit and the way where the line now resides.
func (c *Cache) Access(a isa.Addr) (hit bool, way int) {
	c.accesses++
	line := c.geom.LineAddr(a)
	set := c.geom.SetOfLine(line)
	c.clock++
	// Hit check and LRU victim search in one pass.
	victim, victimStamp := 0, ^uint64(0)
	for w := 0; w < c.geom.Assoc(); w++ {
		s := c.slot(set, w)
		if c.valid[s] && c.tags[s] == line {
			c.stamp[s] = c.clock
			c.lastSet, c.lastWay = set, w
			return true, w
		}
		if !c.valid[s] {
			// Prefer invalid slots; stamp 0 loses to any valid slot.
			if victimStamp != 0 {
				victim, victimStamp = w, 0
			}
			continue
		}
		if c.stamp[s] < victimStamp {
			victim, victimStamp = w, c.stamp[s]
		}
	}
	c.misses++
	s := c.slot(set, victim)
	c.tags[s] = line
	c.valid[s] = true
	c.stamp[s] = c.clock
	c.lastSet, c.lastWay = set, victim
	if c.onReplace != nil {
		c.onReplace(set, victim)
	}
	return false, victim
}

// LastSlot returns the (set, way) of the most recent Access. The line
// accessed then is still resident there as long as no later Access has
// evicted it — in particular, immediately after an Access it always is.
func (c *Cache) LastSlot() (set, way int) { return c.lastSet, c.lastWay }

// AccessRun applies n consecutive fetches that all hit the line resident in
// (set, way): counters and LRU state end exactly as n individual Access
// calls to that line would leave them (each access advances the LRU clock;
// the slot's stamp is the clock after the last one). The caller must know
// the line is resident and untouched since it learned (set, way) — the
// batched replay path uses this for straight-line runs within one cache
// line, where the preceding access proved residency.
func (c *Cache) AccessRun(set, way int, n uint64) {
	c.accesses += n
	c.clock += n
	c.stamp[c.slot(set, way)] = c.clock
}

// Contains reports whether the line holding address a is resident, and if
// so, in which way. It never mutates state.
func (c *Cache) Contains(a isa.Addr) (way int, resident bool) {
	return c.Probe(a)
}

// ResidentAt reports which line address currently occupies (set, way).
func (c *Cache) ResidentAt(set, way int) (lineAddr uint32, ok bool) {
	s := c.slot(set, way)
	if !c.valid[s] {
		return 0, false
	}
	return c.tags[s], true
}

// HoldsAt reports whether the slot (set, way) currently holds the line
// containing address a. This is the check an NLS pointer prediction needs:
// the predicted location must contain the target's line for the fetch to be
// correct.
func (c *Cache) HoldsAt(set, way int, a isa.Addr) bool {
	if set < 0 || set >= c.geom.NumSets() || way < 0 || way >= c.geom.Assoc() {
		return false
	}
	s := c.slot(set, way)
	return c.valid[s] && c.tags[s] == c.geom.LineAddr(a)
}

// Accesses returns the number of Access calls.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of Access calls that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset empties the cache and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.stamp[i] = 0
		c.tags[i] = 0
	}
	c.clock = 0
	c.accesses = 0
	c.misses = 0
	c.lastSet, c.lastWay = 0, 0
}
