package cache

import "repro/internal/isa"

// tagValid marks an occupied slot in the packed tag array. Line addresses
// are word addresses shifted down by at least lineShift >= 2 bits, so bit
// 31 is never part of a real line address and packing the valid bit there
// lets the hit check (and every content probe) touch one word instead of
// two parallel arrays.
const tagValid = 1 << 31

// Cache is an instruction cache with true-LRU replacement. It tracks only
// tags (the simulator never needs instruction bytes) and counts accesses and
// misses.
type Cache struct {
	geom Geometry

	// Flattened [set][way] arrays.
	tags []uint32 // tagValid | resident line address; 0 = empty slot
	// stamp is the LRU clock per slot (larger = more recently used),
	// allocated on first Access: a cache used only as the tag mirror of
	// an annotated replay (DESIGN.md §11) never makes LRU decisions and
	// never pays for the array.
	stamp []uint64

	clock uint64

	accesses uint64
	misses   uint64

	// seen marks line tags that have had their compulsory (first-demand)
	// touch, and coldMisses counts the demand misses that were compulsory.
	// Both are maintained lazily off the hit path: a line enters seen when
	// its first demand touch is a miss (cold) or a useful prefetch hit
	// (never cold — the prefetch absorbed the compulsory miss).
	seen       map[uint32]struct{}
	coldMisses uint64

	// pf, when non-nil, is the prefetch/MSHR machinery (see prefetch.go).
	pf *prefetchState

	// Slot of the most recent Access (hit or fill), for batched replay:
	// a run of same-line fetches can refresh this slot without re-probing.
	lastSet, lastWay int

	// onReplace, if set, is invoked when a fill replaces the contents of
	// (set, way) — including filling a previously invalid slot. The
	// NLS-cache couples predictor state to cache lines and must discard
	// it when the line is replaced.
	onReplace func(set, way int)
}

// New builds an empty cache with the given geometry.
func New(g Geometry) *Cache {
	return &Cache{
		geom: g,
		tags: make([]uint32, g.NumSets()*g.Assoc()),
	}
}

// Geometry returns the cache's geometry.
func (c *Cache) Geometry() Geometry { return c.geom }

// SetOnReplace registers a callback invoked whenever a fill replaces the
// line in (set, way).
func (c *Cache) SetOnReplace(fn func(set, way int)) { c.onReplace = fn }

func (c *Cache) slot(set, way int) int { return set*c.geom.assoc + way }

// Probe looks up the line containing address a without changing any cache
// state (no LRU update, no fill, no statistics). It returns the way where
// the line resides.
func (c *Cache) Probe(a isa.Addr) (way int, hit bool) {
	want := c.geom.LineAddr(a) | tagValid
	base := int(want&c.geom.setMask) * c.geom.assoc
	for w := 0; w < c.geom.assoc; w++ {
		if c.tags[base+w] == want {
			return w, true
		}
	}
	return 0, false
}

// Access performs a fetch of the line containing a: on a hit it refreshes
// LRU state; on a miss it fills the line into the LRU way of its set. It
// returns whether the access hit and the way where the line now resides.
func (c *Cache) Access(a isa.Addr) (hit bool, way int) {
	c.accesses++
	// Direct-mapped fast path: with one way there is no victim choice, so
	// LRU stamps are unobservable and the hit check is a single tag
	// compare. Prefetching needs the full bookkeeping below.
	if c.geom.assoc == 1 && c.pf == nil {
		want := c.geom.LineAddr(a) | tagValid
		set := int(want & c.geom.setMask)
		c.clock++
		if c.tags[set] == want {
			c.lastSet, c.lastWay = set, 0
			return true, 0
		}
		c.misses++
		if _, known := c.seen[want]; !known {
			c.markSeen(want)
			c.coldMisses++
		}
		c.tags[set] = want
		c.lastSet, c.lastWay = set, 0
		if c.onReplace != nil {
			c.onReplace(set, 0)
		}
		return false, 0
	}
	if c.stamp == nil {
		c.stamp = make([]uint64, len(c.tags))
	}
	want := c.geom.LineAddr(a) | tagValid
	// setMask is well below the valid bit, so masking the packed tag
	// selects the set directly.
	set := int(want & c.geom.setMask)
	base := set * c.geom.assoc
	c.clock++
	if c.pf != nil {
		c.drainPrefetches()
	}
	// Hit check and LRU victim search in one pass.
	victim, victimStamp := 0, ^uint64(0)
	for w := 0; w < c.geom.assoc; w++ {
		s := base + w
		t := c.tags[s]
		if t == want {
			c.stamp[s] = c.clock
			c.lastSet, c.lastWay = set, w
			if c.pf != nil && c.pf.prefetched[s] {
				c.pf.prefetched[s] = false
				c.pf.stats.Useful++
				c.pf.emit(PrefetchUseful, want, c.clock)
				c.markSeen(want)
			}
			return true, w
		}
		if t&tagValid == 0 {
			// Prefer invalid slots; stamp 0 loses to any valid slot.
			if victimStamp != 0 {
				victim, victimStamp = w, 0
			}
			continue
		}
		if c.stamp[s] < victimStamp {
			victim, victimStamp = w, c.stamp[s]
		}
	}
	c.misses++
	if _, known := c.seen[want]; !known {
		c.markSeen(want)
		c.coldMisses++
	}
	s := base + victim
	if c.pf != nil {
		// A demand miss on an in-flight line: the prefetch was accurate
		// but late. The demand takes over the MSHR (the queue entry goes
		// stale) and the miss proceeds normally.
		if _, busy := c.pf.inflight[want]; busy {
			delete(c.pf.inflight, want)
			c.pf.stats.Late++
			c.pf.emit(PrefetchLate, want, c.clock)
		}
		if c.pf.prefetched[s] {
			c.pf.stats.Unused++
			c.pf.emit(PrefetchUnused, c.tags[s], c.clock)
			c.pf.prefetched[s] = false
		}
	}
	c.tags[s] = want
	c.stamp[s] = c.clock
	c.lastSet, c.lastWay = set, victim
	if c.onReplace != nil {
		c.onReplace(set, victim)
	}
	return false, victim
}

// markSeen records that the line with packed tag want has had its
// compulsory touch.
func (c *Cache) markSeen(want uint32) {
	if c.seen == nil {
		c.seen = make(map[uint32]struct{})
	}
	c.seen[want] = struct{}{}
}

// LastSlot returns the (set, way) of the most recent Access. The line
// accessed then is still resident there as long as no later Access has
// evicted it — in particular, immediately after an Access it always is.
func (c *Cache) LastSlot() (set, way int) { return c.lastSet, c.lastWay }

// AccessRun applies n consecutive fetches that all hit the line resident in
// (set, way): counters and LRU state end exactly as n individual Access
// calls to that line would leave them (each access advances the LRU clock;
// the slot's stamp is the clock after the last one). The caller must know
// the line is resident and untouched since it learned (set, way) — the
// batched replay path uses this for straight-line runs within one cache
// line, where the preceding access proved residency.
func (c *Cache) AccessRun(set, way int, n uint64) {
	c.accesses += n
	c.clock += n
	if c.stamp != nil {
		c.stamp[c.slot(set, way)] = c.clock
	}
}

// ApplyFill installs the line containing a into way of its set, firing
// onReplace exactly as the fill path of Access does. It is the mirror half
// of the annotated replay (DESIGN.md §11): a shared fetch Oracle running
// the identical access stream decided this access misses and fills way, so
// the engine replays only the fill's architectural effect — tag contents
// and the replacement callback that predictor state is coupled to. LRU
// stamps and the access counters are deliberately NOT touched: annotated
// replay never consults this cache's LRU state (the oracle owns the
// replacement decisions) and credits counters in bulk via AddAccesses.
func (c *Cache) ApplyFill(a isa.Addr, way int) {
	line := c.geom.LineAddr(a)
	set := c.geom.SetOfLine(line)
	c.tags[c.slot(set, way)] = line | tagValid
	if c.onReplace != nil {
		c.onReplace(set, way)
	}
}

// AddAccesses credits n accesses, misses of them missing, to the counters
// in one step — the annotated replay's per-block bulk equivalent of the
// per-record counting inside Access.
func (c *Cache) AddAccesses(n, misses uint64) {
	c.accesses += n
	c.misses += misses
}

// AddColdMisses credits n compulsory misses — the annotated replay's bulk
// equivalent of the first-touch tracking inside Access (the shared oracle
// tracks first touches once per geometry and publishes the block total).
func (c *Cache) AddColdMisses(n uint64) { c.coldMisses += n }

// Contains reports whether the line holding address a is resident, and if
// so, in which way. It never mutates state.
func (c *Cache) Contains(a isa.Addr) (way int, resident bool) {
	return c.Probe(a)
}

// ResidentAt reports which line address currently occupies (set, way).
func (c *Cache) ResidentAt(set, way int) (lineAddr uint32, ok bool) {
	t := c.tags[c.slot(set, way)]
	if t&tagValid == 0 {
		return 0, false
	}
	return t &^ tagValid, true
}

// HoldsAt reports whether the slot (set, way) currently holds the line
// containing address a. This is the check an NLS pointer prediction needs:
// the predicted location must contain the target's line for the fetch to be
// correct.
func (c *Cache) HoldsAt(set, way int, a isa.Addr) bool {
	if uint(set) >= uint(c.geom.numSets) || uint(way) >= uint(c.geom.assoc) {
		return false
	}
	return c.tags[set*c.geom.assoc+way] == c.geom.LineAddr(a)|tagValid
}

// PointsTo reports whether the NLS-style pointer (set, off, way) currently
// identifies the instruction at target: set and off must decompose target's
// address and (set, way) must actually hold target's line right now. This
// is Entry.PointsTo's check fused into one call so the predictors' hottest
// probe pays one address decomposition and no Geometry copy: when the set
// comparison passes, set is already bounds-proven by the mask, so only the
// way needs a range check before the tag read.
func (c *Cache) PointsTo(set, off, way int, target isa.Addr) bool {
	la := uint32(target) >> c.geom.lineShift
	if set != int(la&c.geom.setMask) || off != int((uint32(target)>>2)&c.geom.offMask) {
		return false
	}
	return uint(way) < uint(c.geom.assoc) && c.tags[set*c.geom.assoc+way] == la|tagValid
}

// Accesses returns the number of Access calls.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Clock returns the cache's access clock — the LRU timestamp source that
// also drives prefetch fills. It is the simulation's unit of fetch time,
// which the sim-time trace exporter uses as its timeline.
func (c *Cache) Clock() uint64 { return c.clock }

// Misses returns the number of Access calls that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// ColdMisses returns the number of compulsory demand misses: misses whose
// line had never been demand-touched before (the `cold` bucket of the
// fetch-side miss attribution; prefetch fills do not count as touches, so a
// prefetch that absorbs a line's first demand touch removes its cold miss).
func (c *Cache) ColdMisses() uint64 { return c.coldMisses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset empties the cache and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.stamp {
		c.stamp[i] = 0
	}
	c.clock = 0
	c.accesses = 0
	c.misses = 0
	clear(c.seen)
	c.coldMisses = 0
	if c.pf != nil {
		c.resetPrefetch()
	}
	c.lastSet, c.lastWay = 0, 0
}
