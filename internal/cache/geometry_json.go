package cache

import (
	"encoding/json"
	"fmt"
)

// geometryJSON is the wire form of a Geometry. The field names match
// arch.CacheSpec so a geometry reads the same everywhere a cache shape
// appears in JSON (specs, grids, service jobs).
type geometryJSON struct {
	SizeBytes int `json:"size_bytes"`
	LineBytes int `json:"line_bytes"`
	Assoc     int `json:"assoc"`
}

// MarshalJSON encodes the geometry as its three defining sizes.
func (g Geometry) MarshalJSON() ([]byte, error) {
	return json.Marshal(geometryJSON{g.sizeBytes, g.lineBytes, g.assoc})
}

// UnmarshalJSON decodes and validates a geometry. Every geometry that
// enters the process through JSON — service jobs in particular — passes
// NewGeometry, so code holding a decoded Geometry can rely on the same
// invariants a constructed one has (power-of-two sizes, precomputed
// masks). Malformed shapes are rejected here, before anything is built
// from them.
func (g *Geometry) UnmarshalJSON(data []byte) error {
	var w geometryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	ng, err := NewGeometry(w.SizeBytes, w.LineBytes, w.Assoc)
	if err != nil {
		return fmt.Errorf("cache: invalid geometry in JSON: %w", err)
	}
	*g = ng
	return nil
}
