package cache

// SetPredictor implements the second approach of §4.2 of the paper: every
// cache line carries a "set field" predicting the way where its fall-through
// successor line resides. On a sequential fetch that crosses a line
// boundary, the previous line's field predicts the way of the next access,
// so only one way is driven and the tag check can move to the decode stage,
// making an associative cache behave like a direct-mapped one on the common
// path.
//
// The predictor tracks its own accuracy; a wrong prediction means the other
// way(s) must be probed, which the paper notes costs like a misfetch. This
// mechanism is evaluated as an ablation (examples/setprediction), separate
// from the core BEP results, exactly as the paper leaves it ("these are
// beyond the scope of this paper" for >2-way recovery).
type SetPredictor struct {
	c    *Cache
	next []uint8 // [set*assoc+way] predicted way of the line's fall-through successor

	predictions uint64
	correct     uint64
}

// NewSetPredictor attaches a fall-through way predictor to a cache.
func NewSetPredictor(c *Cache) *SetPredictor {
	return &SetPredictor{
		c:    c,
		next: make([]uint8, c.geom.NumSets()*c.geom.Assoc()),
	}
}

// PredictNext returns the predicted way of the fall-through successor of the
// line at (set, way).
func (p *SetPredictor) PredictNext(set, way int) int {
	return int(p.next[p.c.slot(set, way)])
}

// Observe records a sequential line crossing: the line at (prevSet, prevWay)
// fell through and the successor line actually resided in (or was filled
// into) way actualWay. It scores the previous prediction and trains the
// field. resident indicates the successor was already in the cache; a miss
// is not scored as a wrong way prediction (the fetch stalls regardless).
func (p *SetPredictor) Observe(prevSet, prevWay, actualWay int, resident bool) {
	s := p.c.slot(prevSet, prevWay)
	if resident {
		p.predictions++
		if int(p.next[s]) == actualWay {
			p.correct++
		}
	}
	p.next[s] = uint8(actualWay)
}

// Accuracy returns the fraction of scored predictions that named the right
// way, or 1 before any prediction (a direct-mapped cache is always right).
func (p *SetPredictor) Accuracy() float64 {
	if p.predictions == 0 {
		return 1
	}
	return float64(p.correct) / float64(p.predictions)
}

// Predictions returns the number of scored (resident-successor) crossings.
func (p *SetPredictor) Predictions() uint64 { return p.predictions }
