package cache

import (
	"testing"

	"repro/internal/isa"
)

func BenchmarkAccessHit(b *testing.B) {
	c := New(MustGeometry(16*1024, 32, 2))
	c.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	c := New(MustGeometry(16*1024, 32, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(isa.Addr(uint32(i*4) & 0xfffffc))
	}
}

func BenchmarkProbe(b *testing.B) {
	c := New(MustGeometry(16*1024, 32, 4))
	for a := isa.Addr(0); a < 16*1024; a += 32 {
		c.Access(a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(isa.Addr(uint32(i*32) & 0x3fff))
	}
}
