package cache

import "repro/internal/isa"

// Prefetch-aware fill modeling (DESIGN.md §14). A prefetcher (next-line or
// the FDIP arm walking the fetch-target queue) issues line prefetches via
// Prefetch; each occupies one MSHR until its fill completes `latency`
// accesses later, measured on the cache's own access clock — the same clock
// LRU stamps advance on, so "20 accesses" is the model's unit of fetch
// time. Fills drain at the head of the demand Access path, in issue order,
// through the normal victim selection (a prefetch can pollute: it evicts
// whatever LRU picks and fires onReplace exactly like a demand fill).
//
// The model is deliberately minimal but sufficient to measure the three
// standard prefetch qualities:
//
//   - accuracy:  (Useful + Late) / Issued — how many issued prefetches named
//     a line the program actually demanded;
//   - coverage:  Useful / (Useful + demand misses) — what fraction of
//     would-be misses the prefetcher absorbed;
//   - timeliness: Useful / (Useful + Late) — of the accurate prefetches, how
//     many completed before the demand arrived.
//
// Everything here is gated on c.pf != nil: a cache without EnablePrefetch
// pays one nil check on the miss path and nothing on the hit path, keeping
// the fused frontend's replay bit-identical and inside the bench gate.

// PrefetchEventKind tags one transition of a prefetch's issue lifecycle,
// observed through SetPrefetchObserver (the sim-time trace exporter's
// seam; see internal/telemetry).
type PrefetchEventKind uint8

const (
	// PrefetchIssue: the request entered an MSHR.
	PrefetchIssue PrefetchEventKind = iota
	// PrefetchRedundant: the line was resident or already in flight.
	PrefetchRedundant
	// PrefetchDrop: every MSHR was busy.
	PrefetchDrop
	// PrefetchFill: the in-flight line's fill completed and was installed.
	PrefetchFill
	// PrefetchUseful: a demand access hit a prefetched line.
	PrefetchUseful
	// PrefetchLate: a demand miss arrived while the line was still in
	// flight (the demand takes over the MSHR).
	PrefetchLate
	// PrefetchUnused: a prefetched line was evicted untouched.
	PrefetchUnused
)

// String names the lifecycle transition.
func (k PrefetchEventKind) String() string {
	switch k {
	case PrefetchIssue:
		return "issue"
	case PrefetchRedundant:
		return "redundant"
	case PrefetchDrop:
		return "drop"
	case PrefetchFill:
		return "fill"
	case PrefetchUseful:
		return "useful"
	case PrefetchLate:
		return "late"
	case PrefetchUnused:
		return "unused"
	}
	return "?"
}

// PrefetchEvent is one lifecycle transition as the observer sees it: which
// line (packed line tag, unique per line address for a fixed geometry) and
// when on the cache's access clock.
type PrefetchEvent struct {
	Kind  PrefetchEventKind
	Line  uint32
	Clock uint64
}

// SetPrefetchObserver registers fn to receive one PrefetchEvent per
// lifecycle transition (nil detaches). Like the fetch probe, the observer
// only watches: every call site is already inside a c.pf-gated path, so a
// cache without EnablePrefetch — the entire bench-gated hot path — pays
// nothing, and an armed cache without an observer pays one nil check per
// transition. It must be set before the run starts.
func (c *Cache) SetPrefetchObserver(fn func(PrefetchEvent)) {
	if c.pf != nil {
		c.pf.obs = fn
	}
}

// PrefetchStats counts the lifecycle outcomes of issued prefetches.
type PrefetchStats struct {
	// Issued prefetches entered an MSHR. Redundant ones named a line
	// already resident or already in flight; Dropped ones found every
	// MSHR busy. Neither consumes a slot.
	Issued    uint64
	Redundant uint64
	Dropped   uint64
	// Useful fills were hit by a later demand access; Late prefetches were
	// still in flight when the demand arrived (the demand miss proceeds,
	// taking over the MSHR); Unused fills were evicted untouched.
	Useful uint64
	Late   uint64
	Unused uint64
}

// prefetchState is the per-cache prefetch machinery, allocated only by
// EnablePrefetch.
type prefetchState struct {
	mshrs   int
	latency uint64

	// inflight maps a packed line tag (line | tagValid) to the access-clock
	// value at which its fill completes. fifo preserves issue order for the
	// drain; entries whose map slot has been consumed (a late demand miss
	// took over the MSHR) are skipped as stale.
	inflight map[uint32]uint64
	fifo     []uint32
	head     int

	// prefetched marks slots filled by a prefetch and not yet demanded,
	// indexed like the tag array. A demand hit clears the bit (Useful); an
	// eviction of a marked slot counts Unused.
	prefetched []bool

	stats PrefetchStats

	// obs, when non-nil, receives one event per lifecycle transition (see
	// SetPrefetchObserver).
	obs func(PrefetchEvent)
}

// emit delivers one lifecycle event to the observer, if any.
func (pf *prefetchState) emit(kind PrefetchEventKind, line uint32, clock uint64) {
	if pf.obs != nil {
		pf.obs(PrefetchEvent{Kind: kind, Line: line &^ tagValid, Clock: clock})
	}
}

// EnablePrefetch arms the cache's prefetch machinery with the given number
// of MSHRs (in-flight prefetch slots) and fill latency in accesses. It must
// be called before the first Access of a run; Reset preserves the
// configuration and clears the in-flight and statistics state.
func (c *Cache) EnablePrefetch(mshrs int, latency uint64) {
	c.pf = &prefetchState{
		mshrs:      mshrs,
		latency:    latency,
		inflight:   make(map[uint32]uint64, mshrs),
		prefetched: make([]bool, len(c.tags)),
	}
}

// PrefetchEnabled reports whether EnablePrefetch has armed the cache.
func (c *Cache) PrefetchEnabled() bool { return c.pf != nil }

// PrefetchStats returns the prefetch lifecycle counters (zero-valued when
// prefetching is not enabled).
func (c *Cache) PrefetchStats() PrefetchStats {
	if c.pf == nil {
		return PrefetchStats{}
	}
	return c.pf.stats
}

// Prefetch requests the line containing a. Resident and already-in-flight
// lines are counted redundant; with every MSHR busy the request is dropped;
// otherwise it occupies an MSHR and its fill completes latency accesses from
// now. Calling Prefetch on a cache without EnablePrefetch is a no-op.
func (c *Cache) Prefetch(a isa.Addr) {
	pf := c.pf
	if pf == nil {
		return
	}
	want := c.geom.LineAddr(a) | tagValid
	base := int(want&c.geom.setMask) * c.geom.assoc
	for w := 0; w < c.geom.assoc; w++ {
		if c.tags[base+w] == want {
			pf.stats.Redundant++
			pf.emit(PrefetchRedundant, want, c.clock)
			return
		}
	}
	if _, busy := pf.inflight[want]; busy {
		pf.stats.Redundant++
		pf.emit(PrefetchRedundant, want, c.clock)
		return
	}
	if len(pf.inflight) >= pf.mshrs {
		pf.stats.Dropped++
		pf.emit(PrefetchDrop, want, c.clock)
		return
	}
	pf.stats.Issued++
	pf.emit(PrefetchIssue, want, c.clock)
	pf.inflight[want] = c.clock + pf.latency
	pf.fifo = append(pf.fifo, want)
}

// drainPrefetches completes every in-flight prefetch whose fill time has
// arrived, in issue order, filling each through the normal victim selection.
// Called from Access after the clock tick and before the hit scan, so a
// just-completed prefetch satisfies the very access that triggered the
// drain.
func (c *Cache) drainPrefetches() {
	pf := c.pf
	for pf.head < len(pf.fifo) {
		want := pf.fifo[pf.head]
		ready, ok := pf.inflight[want]
		if !ok {
			// A late demand miss consumed this MSHR; the queue entry
			// is stale.
			pf.head++
			continue
		}
		if ready > c.clock {
			break
		}
		pf.head++
		delete(pf.inflight, want)
		pf.emit(PrefetchFill, want, c.clock)
		c.fillPrefetch(want)
	}
	// Compact the queue once the consumed prefix dominates.
	if pf.head > 16 && pf.head*2 >= len(pf.fifo) {
		pf.fifo = pf.fifo[:copy(pf.fifo, pf.fifo[pf.head:])]
		pf.head = 0
	}
}

// fillPrefetch installs the line with packed tag want through LRU victim
// selection, exactly as a demand fill would — including onReplace, so
// line-coupled predictor state dies when a prefetch displaces its line —
// but without touching the access or miss counters (a prefetch fill is not
// a demand access).
func (c *Cache) fillPrefetch(want uint32) {
	set := int(want & c.geom.setMask)
	base := set * c.geom.assoc
	victim, victimStamp := 0, ^uint64(0)
	for w := 0; w < c.geom.assoc; w++ {
		s := base + w
		if c.tags[s] == want {
			return // demand-filled while in flight; nothing to do
		}
		if c.tags[s]&tagValid == 0 {
			if victimStamp != 0 {
				victim, victimStamp = w, 0
			}
			continue
		}
		if c.stamp[s] < victimStamp {
			victim, victimStamp = w, c.stamp[s]
		}
	}
	s := base + victim
	if c.pf.prefetched[s] {
		c.pf.stats.Unused++
		c.pf.emit(PrefetchUnused, c.tags[s], c.clock)
	}
	c.tags[s] = want
	c.stamp[s] = c.clock
	c.pf.prefetched[s] = true
	if c.onReplace != nil {
		c.onReplace(set, victim)
	}
}

// resetPrefetch clears the in-flight and statistics state, keeping the
// EnablePrefetch configuration.
func (c *Cache) resetPrefetch() {
	pf := c.pf
	clear(pf.inflight)
	pf.fifo = pf.fifo[:0]
	pf.head = 0
	clear(pf.prefetched)
	pf.stats = PrefetchStats{}
}
