package cache

import (
	"encoding/json"
	"testing"
)

func TestGeometryJSONRoundTrip(t *testing.T) {
	for _, g := range []Geometry{
		MustGeometry(8*1024, 32, 1),
		MustGeometry(16*1024, 32, 2),
		MustGeometry(32*1024, 64, 4),
	} {
		buf, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		var back Geometry
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", g, buf, err)
		}
		if back != g {
			t.Errorf("round trip changed the geometry: %s -> %s (via %s)", g, back, buf)
		}
	}
}

// TestGeometryJSONRejectsInvalid: a geometry cannot enter the process via
// JSON without passing NewGeometry's validation — the service's job
// decoder depends on this to reject adversarial shapes before anything is
// allocated from them.
func TestGeometryJSONRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		`{"size_bytes":0,"line_bytes":32,"assoc":1}`,
		`{"size_bytes":-8192,"line_bytes":32,"assoc":1}`,
		`{"size_bytes":12345,"line_bytes":32,"assoc":1}`, // not a power of two
		`{"size_bytes":8192,"line_bytes":3,"assoc":1}`,
		`{"size_bytes":8192,"line_bytes":32,"assoc":3}`,
		`{"size_bytes":32,"line_bytes":32,"assoc":4}`, // size < line*assoc
		`{"size_bytes":"big"}`,
		`[]`,
	} {
		var g Geometry
		if err := json.Unmarshal([]byte(bad), &g); err == nil {
			t.Errorf("unmarshal accepted invalid geometry %s -> %s", bad, g)
		}
	}
}
