package cache

import (
	"testing"

	"repro/internal/isa"
)

// TestAccessRunMatchesAccessLoop: AccessRun(set, way, n) on a resident line
// leaves the cache in exactly the state n individual Access calls to that
// line would — same counters, same LRU clock, same stamps — observable
// through subsequent replacement decisions.
func TestAccessRunMatchesAccessLoop(t *testing.T) {
	g := MustGeometry(1024, 32, 2)
	batched, looped := New(g), New(g)

	// Warm both caches identically: two lines in set 0.
	stride := isa.Addr(g.NumSets() * g.LineBytes()) // next line mapping to set 0
	a := isa.Addr(0x0000)
	b := a + stride
	c := b + stride // third line, will need a victim in set 0
	for _, ca := range []*Cache{batched, looped} {
		ca.Access(a)
		ca.Access(b)
	}

	// Touch a 5 more times: batched vs individually.
	way, hit := batched.Probe(a)
	if !hit {
		t.Fatal("warmed line not resident")
	}
	batched.AccessRun(g.SetIndex(a), way, 5)
	for i := 0; i < 5; i++ {
		looped.Access(a)
	}

	if batched.Accesses() != looped.Accesses() || batched.Misses() != looped.Misses() {
		t.Fatalf("counters diverge: batched %d/%d, looped %d/%d",
			batched.Accesses(), batched.Misses(), looped.Accesses(), looped.Misses())
	}

	// b is now LRU in both; accessing c must evict b, not a, in both.
	for _, tc := range []struct {
		name string
		c    *Cache
	}{{"batched", batched}, {"looped", looped}} {
		if hit, _ := tc.c.Access(c); hit {
			t.Fatalf("%s: line c unexpectedly resident", tc.name)
		}
		if _, resident := tc.c.Probe(a); !resident {
			t.Errorf("%s: MRU line a was evicted", tc.name)
		}
		if _, resident := tc.c.Probe(b); resident {
			t.Errorf("%s: LRU line b survived", tc.name)
		}
	}
}
