package cache

import (
	"testing"

	"repro/internal/isa"
)

// TestAccessRunMatchesAccessLoop: AccessRun(set, way, n) on a resident line
// leaves the cache in exactly the state n individual Access calls to that
// line would — same counters, same LRU clock, same stamps — observable
// through subsequent replacement decisions.
func TestAccessRunMatchesAccessLoop(t *testing.T) {
	g := MustGeometry(1024, 32, 2)
	batched, looped := New(g), New(g)

	// Warm both caches identically: two lines in set 0.
	stride := isa.Addr(g.NumSets() * g.LineBytes()) // next line mapping to set 0
	a := isa.Addr(0x0000)
	b := a + stride
	c := b + stride // third line, will need a victim in set 0
	for _, ca := range []*Cache{batched, looped} {
		ca.Access(a)
		ca.Access(b)
	}

	// Touch a 5 more times: batched vs individually.
	way, hit := batched.Probe(a)
	if !hit {
		t.Fatal("warmed line not resident")
	}
	batched.AccessRun(g.SetIndex(a), way, 5)
	for i := 0; i < 5; i++ {
		looped.Access(a)
	}

	if batched.Accesses() != looped.Accesses() || batched.Misses() != looped.Misses() {
		t.Fatalf("counters diverge: batched %d/%d, looped %d/%d",
			batched.Accesses(), batched.Misses(), looped.Accesses(), looped.Misses())
	}

	// b is now LRU in both; accessing c must evict b, not a, in both.
	for _, tc := range []struct {
		name string
		c    *Cache
	}{{"batched", batched}, {"looped", looped}} {
		if hit, _ := tc.c.Access(c); hit {
			t.Fatalf("%s: line c unexpectedly resident", tc.name)
		}
		if _, resident := tc.c.Probe(a); !resident {
			t.Errorf("%s: MRU line a was evicted", tc.name)
		}
		if _, resident := tc.c.Probe(b); resident {
			t.Errorf("%s: LRU line b survived", tc.name)
		}
	}
}

// TestAccessRunAtRunCapBoundary: the replay layers cap run annotations at
// 255 (trace.RunLens), so a longer straight-line stretch is applied as
// Access + AccessRun(255) + Access + AccessRun(rest) — the second leader
// re-deriving its slot from LastSlot after a 255-long batch. The split
// replay must leave counters, LRU clock, and stamps exactly as the looped
// per-record Accesses would. 2048-byte lines hold 512 instructions, so the
// whole stretch stays within one line.
func TestAccessRunAtRunCapBoundary(t *testing.T) {
	g := MustGeometry(8*1024, 2048, 2)
	batched, looped := New(g), New(g)

	const stretch = 400 // > 255: crosses the uint8 run cap
	lineBase := isa.Addr(0x4000)
	other := lineBase + isa.Addr(g.NumSets()*g.LineBytes()) // same set, different line

	for _, c := range []*Cache{batched, looped} {
		c.Access(other) // occupy the other way first so LRU order is observable
	}

	// Batched: leader access, 255-run, new leader at the cap boundary, rest.
	if hit, _ := batched.Access(lineBase); hit {
		t.Fatal("cold line unexpectedly resident")
	}
	set, way := batched.LastSlot()
	batched.AccessRun(set, way, 255)
	if hit, _ := batched.Access(lineBase + 256*isa.InstrBytes); !hit {
		t.Fatal("continuation leader missed inside its own line")
	}
	set, way = batched.LastSlot()
	batched.AccessRun(set, way, stretch-257)

	for i := 0; i < stretch; i++ {
		looped.Access(lineBase + isa.Addr(i)*isa.InstrBytes)
	}

	if batched.Accesses() != looped.Accesses() || batched.Misses() != looped.Misses() {
		t.Fatalf("counters diverge: batched %d/%d, looped %d/%d",
			batched.Accesses(), batched.Misses(), looped.Accesses(), looped.Misses())
	}
	if batched.clock != looped.clock {
		t.Fatalf("LRU clocks diverge: batched %d, looped %d", batched.clock, looped.clock)
	}
	// `other` is LRU in both: a third line mapping to the set must evict it
	// and keep the just-run line.
	third := other + isa.Addr(g.NumSets()*g.LineBytes())
	for _, tc := range []struct {
		name string
		c    *Cache
	}{{"batched", batched}, {"looped", looped}} {
		if hit, _ := tc.c.Access(third); hit {
			t.Fatalf("%s: third line unexpectedly resident", tc.name)
		}
		if _, resident := tc.c.Probe(lineBase); !resident {
			t.Errorf("%s: freshly-run line was evicted", tc.name)
		}
		if _, resident := tc.c.Probe(other); resident {
			t.Errorf("%s: LRU line survived", tc.name)
		}
	}
}
