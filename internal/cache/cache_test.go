package cache

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestGeometryValidation(t *testing.T) {
	cases := []struct {
		size, line, assoc int
		ok                bool
	}{
		{8192, 32, 1, true},
		{8192, 32, 2, true},
		{8192, 32, 4, true},
		{0, 32, 1, false},
		{8000, 32, 1, false}, // not a power of two
		{8192, 3, 1, false},
		{8192, 2, 1, false}, // line smaller than an instruction
		{8192, 32, 3, false},
		{8192, 32, 0, false},
		{32, 32, 4, false}, // too small for associativity
	}
	for _, c := range cases {
		_, err := NewGeometry(c.size, c.line, c.assoc)
		if (err == nil) != c.ok {
			t.Errorf("NewGeometry(%d,%d,%d) err=%v, want ok=%v", c.size, c.line, c.assoc, err, c.ok)
		}
	}
}

func TestGeometryDerived(t *testing.T) {
	g := MustGeometry(16*1024, 32, 2)
	if g.NumSets() != 256 {
		t.Errorf("NumSets = %d, want 256", g.NumSets())
	}
	if g.NumLines() != 512 {
		t.Errorf("NumLines = %d, want 512", g.NumLines())
	}
	if g.InstrsPerLine() != 8 {
		t.Errorf("InstrsPerLine = %d, want 8", g.InstrsPerLine())
	}
	if g.IndexBits() != 8 || g.OffsetBits() != 3 || g.WayBits() != 1 {
		t.Errorf("bits = %d/%d/%d, want 8/3/1", g.IndexBits(), g.OffsetBits(), g.WayBits())
	}
	if g.NLSPointerBits() != 12 {
		t.Errorf("NLSPointerBits = %d, want 12", g.NLSPointerBits())
	}
}

func TestGeometryAddressDecomposition(t *testing.T) {
	g := MustGeometry(8*1024, 32, 1) // 256 sets
	a := isa.Addr(0x0001_2345) &^ 3  // word aligned
	if got := g.LineAddr(a); got != uint32(a)>>5 {
		t.Errorf("LineAddr = %#x", got)
	}
	if got := g.SetIndex(a); got != int((uint32(a)>>5)&255) {
		t.Errorf("SetIndex = %d", got)
	}
	// Instruction offset: bits [4:2].
	if got := g.InstrOffset(isa.Addr(0x100c)); got != 3 {
		t.Errorf("InstrOffset(0x100c) = %d, want 3", got)
	}
}

func TestGeometryString(t *testing.T) {
	if got := MustGeometry(8192, 32, 1).String(); got != "8KB direct" {
		t.Errorf("String = %q", got)
	}
	if got := MustGeometry(32768, 32, 4).String(); got != "32KB 4-way" {
		t.Errorf("String = %q", got)
	}
}

func TestDirectMappedBasics(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1)) // 32 sets
	a := isa.Addr(0x1000)
	if hit, _ := c.Access(a); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(a); !hit {
		t.Error("warm access missed")
	}
	// Same line, different instruction: hit.
	if hit, _ := c.Access(a + 4); !hit {
		t.Error("same-line access missed")
	}
	// Conflicting line (same set, different tag): evicts.
	conflict := a + 1024
	if hit, _ := c.Access(conflict); hit {
		t.Error("conflicting access hit")
	}
	if hit, _ := c.Access(a); hit {
		t.Error("evicted line still resident")
	}
	if c.Accesses() != 5 || c.Misses() != 3 {
		t.Errorf("accesses=%d misses=%d, want 5/3", c.Accesses(), c.Misses())
	}
}

func TestLRUOrder2Way(t *testing.T) {
	c := New(MustGeometry(2048, 32, 2)) // 32 sets, 2 ways
	a := isa.Addr(0x1000)
	b := a + 2048 // same set
	d := a + 4096 // same set
	c.Access(a)   // miss, fills
	c.Access(b)   // miss, fills other way
	c.Access(a)   // refresh a: b becomes LRU
	c.Access(d)   // evicts b
	if _, hit := c.Probe(b); hit {
		t.Error("b should have been evicted (LRU)")
	}
	if _, hit := c.Probe(a); !hit {
		t.Error("a should still be resident (MRU)")
	}
	if _, hit := c.Probe(d); !hit {
		t.Error("d should be resident")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New(MustGeometry(2048, 32, 2))
	a := isa.Addr(0x1000)
	b := a + 2048
	d := a + 4096
	c.Access(a)
	c.Access(b)
	// Probing a must NOT refresh it.
	c.Probe(a)
	c.Access(d) // should evict a (it is LRU despite the probe)
	if _, hit := c.Probe(a); hit {
		t.Error("Probe refreshed LRU state")
	}
	if before := c.Accesses(); before != 3 {
		t.Errorf("Probe counted as access: %d", before)
	}
}

func TestHoldsAt(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	a := isa.Addr(0x1000)
	_, way := c.Access(a)
	set := c.Geometry().SetIndex(a)
	if !c.HoldsAt(set, way, a) {
		t.Error("HoldsAt false for resident line")
	}
	if !c.HoldsAt(set, way, a+4) {
		t.Error("HoldsAt should be true for any address in the line")
	}
	if c.HoldsAt(set, way, a+1024) {
		t.Error("HoldsAt true for conflicting line")
	}
	if c.HoldsAt(-1, 0, a) || c.HoldsAt(set, 5, a) || c.HoldsAt(10000, 0, a) {
		t.Error("HoldsAt true for out-of-range slot")
	}
}

func TestResidentAt(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	if _, ok := c.ResidentAt(0, 0); ok {
		t.Error("empty slot reported resident")
	}
	a := isa.Addr(0x1000)
	_, way := c.Access(a)
	line, ok := c.ResidentAt(c.Geometry().SetIndex(a), way)
	if !ok || line != c.Geometry().LineAddr(a) {
		t.Errorf("ResidentAt = %#x/%v", line, ok)
	}
}

func TestOnReplaceCallback(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	var calls []struct{ set, way int }
	c.SetOnReplace(func(set, way int) {
		calls = append(calls, struct{ set, way int }{set, way})
	})
	a := isa.Addr(0x1000)
	c.Access(a)        // fill: callback fires
	c.Access(a)        // hit: no callback
	c.Access(a + 1024) // replace: callback fires
	if len(calls) != 2 {
		t.Fatalf("callback fired %d times, want 2", len(calls))
	}
	want := c.Geometry().SetIndex(a)
	for _, call := range calls {
		if call.set != want || call.way != 0 {
			t.Errorf("callback got (%d,%d), want (%d,0)", call.set, call.way, want)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(MustGeometry(1024, 32, 2))
	c.Access(0x1000)
	c.Access(0x2000)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("stats not cleared")
	}
	if _, hit := c.Probe(0x1000); hit {
		t.Error("contents not cleared")
	}
}

func TestMissRate(t *testing.T) {
	c := New(MustGeometry(1024, 32, 1))
	if c.MissRate() != 0 {
		t.Error("MissRate nonzero before accesses")
	}
	c.Access(0x1000)
	c.Access(0x1000)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

// refCache is a trivially correct per-set LRU model used to cross-check the
// packed implementation under random workloads.
type refCache struct {
	g    Geometry
	sets []([]uint32) // MRU first
}

func newRef(g Geometry) *refCache {
	return &refCache{g: g, sets: make([][]uint32, g.NumSets())}
}

func (r *refCache) access(a isa.Addr) bool {
	line := r.g.LineAddr(a)
	set := r.g.SetOfLine(line)
	s := r.sets[set]
	for i, l := range s {
		if l == line {
			copy(s[1:i+1], s[:i])
			s[0] = line
			return true
		}
	}
	s = append([]uint32{line}, s...)
	if len(s) > r.g.Assoc() {
		s = s[:r.g.Assoc()]
	}
	r.sets[set] = s
	return false
}

func TestAgainstReferenceModel(t *testing.T) {
	for _, assoc := range []int{1, 2, 4} {
		g := MustGeometry(4096, 32, assoc)
		c := New(g)
		ref := newRef(g)
		rng := rand.New(rand.NewSource(int64(assoc)))
		for i := 0; i < 50000; i++ {
			// Addresses over 4x the cache size with locality bursts.
			base := isa.Addr(uint32(rng.Intn(16384)) &^ 3)
			for j := 0; j < 1+rng.Intn(4); j++ {
				a := base + isa.Addr(4*j)
				hit, _ := c.Access(a)
				if want := ref.access(a); hit != want {
					t.Fatalf("assoc=%d step=%d addr=%v: hit=%v ref=%v", assoc, i, a, hit, want)
				}
			}
		}
	}
}

func TestSetPredictor(t *testing.T) {
	c := New(MustGeometry(2048, 32, 2))
	sp := NewSetPredictor(c)
	if sp.Accuracy() != 1 {
		t.Error("initial accuracy should be 1")
	}
	// Line A at set 0; its successor B lands in some way. First crossing
	// with B resident: prediction (initialized 0) scored.
	a := isa.Addr(0x1000)
	b := isa.Addr(0x1020)
	_, wa := c.Access(a)
	_, wb := c.Access(b)
	sa := c.Geometry().SetIndex(a)
	sp.Observe(sa, wa, wb, true)
	if sp.Predictions() != 1 {
		t.Fatalf("predictions = %d", sp.Predictions())
	}
	// Trained: the next crossing predicts wb.
	if got := sp.PredictNext(sa, wa); got != wb {
		t.Errorf("PredictNext = %d, want %d", got, wb)
	}
	sp.Observe(sa, wa, wb, true)
	if sp.Accuracy() <= 0.4 {
		t.Errorf("accuracy after training = %v", sp.Accuracy())
	}
	// A non-resident successor is not scored.
	n := sp.Predictions()
	sp.Observe(sa, wa, 0, false)
	if sp.Predictions() != n {
		t.Error("miss crossing was scored")
	}
}
