package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// Property tests (testing/quick) on the cache's structural invariants.

// After any access sequence: at most Assoc distinct lines per set, every
// resident line maps to its own set, and a just-accessed line is resident.
func TestQuickCacheInvariants(t *testing.T) {
	for _, assoc := range []int{1, 2, 4} {
		g := MustGeometry(2048, 32, assoc)
		f := func(words []uint16) bool {
			c := New(g)
			for _, w := range words {
				a := isa.Addr(uint32(w) * 4)
				_, way := c.Access(a)
				if way < 0 || way >= g.Assoc() {
					return false
				}
				// The line just accessed must be resident at the
				// reported way.
				if !c.HoldsAt(g.SetIndex(a), way, a) {
					return false
				}
			}
			// Every resident line decodes back to its own set.
			for set := 0; set < g.NumSets(); set++ {
				for way := 0; way < g.Assoc(); way++ {
					line, ok := c.ResidentAt(set, way)
					if ok && g.SetOfLine(line) != set {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("assoc %d: %v", assoc, err)
		}
	}
}

// Misses never exceed accesses, and re-running the same sequence on a
// fresh cache reproduces the same counts (determinism).
func TestQuickCacheCountsDeterministic(t *testing.T) {
	g := MustGeometry(1024, 32, 2)
	f := func(words []uint16) bool {
		run := func() (uint64, uint64) {
			c := New(g)
			for _, w := range words {
				c.Access(isa.Addr(uint32(w) * 4))
			}
			return c.Accesses(), c.Misses()
		}
		a1, m1 := run()
		a2, m2 := run()
		return a1 == a2 && m1 == m2 && m1 <= a1 && a1 == uint64(len(words))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A probe between accesses never changes subsequent hit/miss behaviour.
func TestQuickProbePure(t *testing.T) {
	g := MustGeometry(1024, 32, 2)
	f := func(words []uint16, probes []uint16) bool {
		plain := New(g)
		probed := New(g)
		for i, w := range words {
			a := isa.Addr(uint32(w) * 4)
			h1, _ := plain.Access(a)
			if i < len(probes) {
				probed.Probe(isa.Addr(uint32(probes[i]) * 4))
			}
			h2, _ := probed.Access(a)
			if h1 != h2 {
				return false
			}
		}
		return plain.Misses() == probed.Misses()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
